/**
 * @file
 * Motif census of a social-network-like graph — the classic network
 * analysis workload the paper's introduction motivates (attack
 * detection, biology, software architecture all profile networks by
 * their motif spectra).
 *
 * Counts the induced embeddings of every connected 3- and 4-vertex
 * pattern and prints the census with per-motif shares.
 */

#include <cstdio>

#include "apps/gpm_apps.hh"
#include "engines/khuzdul_system.hh"
#include "graph/generators.hh"
#include "support/format.hh"

int
main()
{
    using namespace khuzdul;

    // A skewed "social network": heavy-tailed, clustered enough to
    // have interesting motif structure.
    const Graph graph = gen::rmat(8'000, 70'000, 0.57, 0.19, 0.19,
                                  /*seed=*/7);

    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(4);
    auto system = engines::KhuzdulSystem::kAutomine(graph, config);

    for (const int k : {3, 4}) {
        const auto census = apps::motifCount(*system, k);
        Count total = 0;
        for (const auto &motif : census)
            total += motif.count;
        std::printf("\n=== size-%d motif census (%zu motifs, %s "
                    "induced embeddings) ===\n",
                    k, census.size(), formatCount(total).c_str());
        for (const auto &motif : census) {
            const double share = total == 0 ? 0.0
                : static_cast<double>(motif.count)
                    / static_cast<double>(total);
            std::printf("  %-28s %16s  (%s)\n",
                        motif.pattern.toString().c_str(),
                        formatCount(motif.count).c_str(),
                        formatPercent(share).c_str());
        }
    }

    std::printf("\nmodeled cluster time: %s\n",
                formatTime(static_cast<std::uint64_t>(
                    system->stats().makespanNs())).c_str());
    return 0;
}
