/**
 * @file
 * Motif census of a social-network-like graph — the classic network
 * analysis workload the paper's introduction motivates (attack
 * detection, biology, software architecture all profile networks by
 * their motif spectra).
 *
 * Counts the induced embeddings of every connected 3- and 4-vertex
 * pattern.  Since PR 6 the census runs through the QueryService:
 * every motif is its own query session sharing one resident
 * GraphContext, so patterns mine concurrently (instead of
 * back-to-back) and later motifs observe the remote lists earlier
 * ones already pulled in (the cross-query shared-cache counters
 * printed at the end).
 */

#include <cstdio>

#include "apps/gpm_apps.hh"
#include "core/service/service.hh"
#include "engines/khuzdul_system.hh"
#include "graph/generators.hh"
#include "support/format.hh"

int
main()
{
    using namespace khuzdul;

    // A skewed "social network": heavy-tailed, clustered enough to
    // have interesting motif structure.
    const Graph graph = gen::rmat(8'000, 70'000, 0.57, 0.19, 0.19,
                                  /*seed=*/7);

    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(4);

    // One resident graph, one service; every motif is a session.
    core::GraphContext context(graph, config.graphSetup());
    core::ServiceOptions options;
    options.maxInFlight = 4;
    core::QueryService service(context, options);

    double modeled_ns = 0;
    for (const int k : {3, 4}) {
        const auto census = apps::motifCount(
            service, engines::CompilerStyle::Automine, k);
        Count total = 0;
        for (const auto &motif : census)
            total += motif.count;
        std::printf("\n=== size-%d motif census (%zu motifs, %s "
                    "induced embeddings) ===\n",
                    k, census.size(), formatCount(total).c_str());
        for (const auto &motif : census) {
            const double share = total == 0 ? 0.0
                : static_cast<double>(motif.count)
                    / static_cast<double>(total);
            std::printf("  %-28s %16s  (%s)\n",
                        motif.pattern.toString().c_str(),
                        formatCount(motif.count).c_str(),
                        formatPercent(share).c_str());
        }
    }

    // Per-query modeled time is deterministic; the census's modeled
    // cluster time is the sum over queries (they model independent
    // runs of the cluster).
    for (const auto &query : service.results())
        modeled_ns += query.stats.makespanNs();

    std::printf("\nmodeled cluster time (all motifs): %s\n",
                formatTime(static_cast<std::uint64_t>(modeled_ns))
                    .c_str());
    std::printf("cross-query shared-cache hits: %s of %s probes\n",
                formatCount(context.crossQueryHits()).c_str(),
                formatCount(context.crossQueryProbes()).c_str());
    return 0;
}
