/**
 * @file
 * Quickstart: build a graph, stand up a Khuzdul-based distributed
 * GPM system, and count some patterns.
 *
 * The public API in three steps:
 *   1. get a Graph (generators, edge-list files, or binary format);
 *   2. configure the engine (cluster shape + knobs) and pick a
 *      client system (k-Automine or k-GraphPi);
 *   3. count patterns / run apps and read the run statistics.
 */

#include <cstdio>

#include "apps/gpm_apps.hh"
#include "engines/khuzdul_system.hh"
#include "graph/generators.hh"
#include "support/format.hh"

int
main()
{
    using namespace khuzdul;

    // 1. A synthetic power-law graph: 20k vertices, ~150k edges.
    const Graph graph = gen::rmat(20'000, 150'000, 0.55, 0.2, 0.2,
                                  /*seed=*/42);
    std::printf("graph: %u vertices, %llu edges, max degree %llu\n",
                graph.numVertices(),
                static_cast<unsigned long long>(graph.numEdges()),
                static_cast<unsigned long long>(graph.maxDegree()));

    // 2. An 8-node simulated cluster with the paper's defaults.
    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(8);
    auto system = engines::KhuzdulSystem::kGraphPi(graph, config);

    // 3. Applications.
    const Count triangles = apps::triangleCount(*system);
    std::printf("triangles: %s\n", formatCount(triangles).c_str());

    const Count cliques4 = apps::cliqueCount(*system, 4);
    std::printf("4-cliques: %s\n", formatCount(cliques4).c_str());

    // Any custom pattern works; counting is exact.
    const Pattern diamond = Pattern::diamond();
    std::printf("diamonds:  %s\n",
                formatCount(system->count(diamond)).c_str());

    // Run statistics: modeled cluster time, traffic, reuse counters.
    std::printf("\n--- run statistics (all three apps) ---\n%s",
                system->stats().summary().c_str());
    return 0;
}
