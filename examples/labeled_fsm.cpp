/**
 * @file
 * Frequent subgraph mining on a labeled graph — the FSM workload of
 * §7.1, in the style of mining recurring interaction patterns from
 * a typed network (e.g. protein-interaction or transaction graphs).
 *
 * Labels model vertex types; the miner reports every labeled
 * pattern with at most 3 edges whose MNI support clears the
 * threshold.
 */

#include <cstdio>

#include "apps/fsm.hh"
#include "engines/khuzdul_system.hh"
#include "graph/generators.hh"
#include "support/format.hh"

int
main()
{
    using namespace khuzdul;

    // A typed network: 4 vertex types over a clustered topology.
    Graph graph = gen::smallWorld(12'000, 5, 0.15, /*seed=*/3);
    gen::randomizeLabels(graph, 4, /*seed=*/17);

    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(8);
    auto system = engines::KhuzdulSystem::kAutomine(graph, config);
    apps::KhuzdulFsmBackend backend(*system);

    apps::FsmConfig fsm;
    fsm.minSupport = 2'000;
    fsm.maxEdges = 3;
    const auto result =
        apps::mineFrequentSubgraphs(backend, graph, fsm);

    std::printf("evaluated %s candidate patterns; %zu are frequent "
                "(MNI support >= %s)\n\n",
                formatCount(result.patternsEvaluated).c_str(),
                result.frequent.size(),
                formatCount(fsm.minSupport).c_str());
    std::printf("%-34s %12s\n", "pattern (labels in braces)",
                "support");
    for (const auto &fp : result.frequent)
        std::printf("%-34s %12s\n", fp.pattern.toString().c_str(),
                    formatCount(fp.support).c_str());

    std::printf("\nmodeled cluster time: %s (includes one engine "
                "startup per candidate pattern — the FSM overhead "
                "the paper discusses in §7.2)\n",
                formatTime(static_cast<std::uint64_t>(
                    system->stats().makespanNs())).c_str());
    return 0;
}
