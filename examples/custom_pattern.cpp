/**
 * @file
 * Authoring custom patterns and inspecting compiled plans — the
 * "GPM system developer" view.  Shows how a pattern becomes an
 * EXTEND plan: the matching order, per-level dependency masks,
 * symmetry-breaking restrictions, vertical-sharing annotations and
 * (for the GraphPi compiler) the IEP terminal block.
 */

#include <cstdio>

#include "engines/khuzdul_system.hh"
#include "graph/generators.hh"
#include "pattern/planner.hh"
#include "support/format.hh"

int
main()
{
    using namespace khuzdul;

    // A custom 5-vertex pattern: a "house" (4-cycle with a roof).
    Pattern house(5);
    house.addEdge(0, 1); // floor
    house.addEdge(1, 2);
    house.addEdge(2, 3);
    house.addEdge(3, 0);
    house.addEdge(0, 4); // roof
    house.addEdge(1, 4);
    std::printf("pattern: %s, |Aut| matters for counting -- the\n"
                "compiler derives restrictions automatically.\n\n",
                house.toString().c_str());

    // Compare what the two client compilers emit.
    const ExtendPlan automine_plan = compileAutomine(house, {});
    std::printf("--- Automine-style plan ---\n%s\n",
                automine_plan.toString().c_str());

    const GraphProfile profile{100'000.0, 16.0};
    const ExtendPlan graphpi_plan =
        compileGraphPi(house, profile, {});
    std::printf("--- GraphPi-style plan (cost-searched order%s) ---\n"
                "%s\n",
                graphpi_plan.hasIep ? ", IEP" : "",
                graphpi_plan.toString().c_str());
    std::printf("estimated costs: automine %.3g, graphpi %.3g\n\n",
                estimatePlanCost(automine_plan, profile),
                estimatePlanCost(graphpi_plan, profile));

    // Both count identically; the engine checks the divisor math.
    const Graph graph = gen::rmat(10'000, 80'000, 0.55, 0.2, 0.2, 5);
    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(4);
    auto a = engines::KhuzdulSystem::kAutomine(graph, config);
    auto g = engines::KhuzdulSystem::kGraphPi(graph, config);
    const Count count_a = a->count(house);
    const Count count_g = g->count(house);
    std::printf("house embeddings: %s (k-Automine) == %s (k-GraphPi)\n",
                formatCount(count_a).c_str(),
                formatCount(count_g).c_str());
    return count_a == count_g ? 0 : 1;
}
