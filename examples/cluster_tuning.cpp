/**
 * @file
 * Capacity-planning study: how does one workload respond to cluster
 * size, chunk budget and cache size?  This is the workflow a
 * Khuzdul operator runs before committing hardware — all knobs are
 * plain EngineConfig fields and every run reports modeled time,
 * traffic and reuse counters.
 */

#include <cstdio>

#include "engines/khuzdul_system.hh"
#include "graph/generators.hh"
#include "support/format.hh"

namespace
{

using namespace khuzdul;

void
report(const char *label, engines::KhuzdulSystem &system)
{
    const auto &stats = system.stats();
    std::printf("  %-24s time %-9s traffic %-9s cache-hit %s\n",
                label,
                formatTime(static_cast<std::uint64_t>(
                    stats.makespanNs())).c_str(),
                formatBytes(stats.totalBytesSent()).c_str(),
                formatPercent(stats.staticCacheHitRate()).c_str());
}

} // namespace

int
main()
{
    using namespace khuzdul;

    const Graph graph = gen::rmat(16'000, 120'000, 0.58, 0.18, 0.18,
                                  /*seed=*/23);
    const Pattern workload = Pattern::clique(4);

    std::printf("workload: 4-clique counting on a %u-vertex skewed "
                "graph\n\n", graph.numVertices());

    std::printf("1) cluster size sweep (defaults otherwise):\n");
    for (const NodeId nodes : {1u, 2u, 4u, 8u, 16u}) {
        core::EngineConfig config;
        config.cluster = sim::ClusterConfig::paperDefault(nodes);
        auto system = engines::KhuzdulSystem::kGraphPi(graph, config);
        system->count(workload);
        char label[32];
        std::snprintf(label, sizeof(label), "%u node(s)", nodes);
        report(label, *system);
    }

    std::printf("\n2) chunk budget sweep (8 nodes):\n");
    for (const std::uint64_t chunk :
         {16ull << 10, 256ull << 10, 4ull << 20}) {
        core::EngineConfig config;
        config.cluster = sim::ClusterConfig::paperDefault(8);
        config.chunkBytes = chunk;
        auto system = engines::KhuzdulSystem::kGraphPi(graph, config);
        system->count(workload);
        report(formatBytes(chunk).c_str(), *system);
    }

    std::printf("\n3) cache fraction sweep (8 nodes):\n");
    for (const double fraction : {0.0, 0.05, 0.15, 0.40}) {
        core::EngineConfig config;
        config.cluster = sim::ClusterConfig::paperDefault(8);
        config.cacheFraction = fraction;
        if (fraction == 0.0)
            config.cachePolicy = core::CachePolicy::None;
        auto system = engines::KhuzdulSystem::kGraphPi(graph, config);
        system->count(workload);
        report(formatPercent(fraction).c_str(), *system);
    }

    std::printf("\nReading the output: pick the knee of each sweep — "
                "beyond it you pay memory (chunks/cache) or machines "
                "for little time.\n");
    return 0;
}
