/**
 * @file
 * Regenerates Table 4: FSM performance — k-Automine (1 node and 8
 * nodes) vs. AutomineIH, a Peregrine-like single-machine run, and
 * the pattern-oblivious Fractal-like distributed baseline.
 *
 * Expected shape (paper): 8-node k-Automine is the fastest;
 * single-node k-Automine trails AutomineIH because FSM evaluates
 * many candidate patterns and Khuzdul pays a per-pattern engine
 * startup; Fractal-like is slowest (per-instance isomorphism tax).
 */

#include <cstdio>

#include "apps/fsm.hh"
#include "bench_common.hh"
#include "engines/pattern_oblivious.hh"
#include "graph/generators.hh"

namespace
{

using namespace khuzdul;

/**
 * Labeled FSM stand-in graphs.  FSM enumerates hundreds of labeled
 * candidate patterns per run, so its stand-ins are scaled a further
 * ~8x below the main datasets (the paper's FSM runtimes are
 * likewise ~1000x its TC runtimes).
 */
Graph
labeledStandIn(const std::string &name)
{
    Graph g = name == "mc"
        ? gen::rmat(2'200, 19'000, 0.45, 0.2, 0.2, 3001)
        : gen::smallWorld(14'000, 6, 0.15, 3002);
    gen::randomizeLabels(g, 3, 0xf5 + name.size());
    return g;
}

double
singleMachineFsmNs(const Graph &g, const apps::FsmConfig &config,
                   double per_op_factor, std::size_t &frequent)
{
    apps::SingleMachineFsmBackend backend(g);
    const auto result = apps::mineFrequentSubgraphs(backend, g, config);
    frequent = result.frequent.size();
    sim::CostModel cost;
    const double work =
        static_cast<double>(backend.workItems()) * cost.intersectPerItemNs
        + static_cast<double>(backend.candidatesChecked())
            * cost.candidateCheckNs
        + static_cast<double>(backend.embeddingsVisited())
            * cost.embeddingCreateNs;
    const unsigned cores = 16;
    return work * per_op_factor / cores
        + cost.engineStartupNs * 0.1
            * static_cast<double>(result.patternsEvaluated);
}

} // namespace

int
main()
{
    bench::banner("Table 4: FSM performance",
                  "Table 4 (labeled stand-ins, 3 labels, patterns "
                  "with <= 3 edges)");

    struct WorkItem
    {
        std::string graph;
        Count threshold;
    };
    const std::vector<WorkItem> work_items = {
        {"mc", 150}, {"mc", 200}, {"mc", 250},
        {"pt", 600}, {"pt", 700}, {"pt", 800},
    };

    bench::TablePrinter table(
        {"Graph", "Support", "k-AM (1n)", "k-AM (8n)", "AutomineIH",
         "Peregrine~", "Fractal~", "frequent"},
        {5, 8, 10, 10, 11, 11, 10, 8});
    table.printHeader();

    std::string last_graph;
    for (const auto &item : work_items) {
        const Graph g = labeledStandIn(item.graph);
        apps::FsmConfig config;
        config.minSupport = item.threshold;
        config.maxEdges = 3;

        // k-Automine, single node and 8 nodes.
        double k1_ns = 0;
        double k8_ns = 0;
        std::size_t frequent = 0;
        for (const NodeId nodes : {1u, 8u}) {
            auto system = engines::KhuzdulSystem::kAutomine(
                g, bench::standInEngineConfig(nodes));
            system->resetStats();
            apps::KhuzdulFsmBackend backend(*system);
            const auto result =
                apps::mineFrequentSubgraphs(backend, g, config);
            frequent = result.frequent.size();
            (nodes == 1 ? k1_ns : k8_ns) =
                system->stats().makespanNs();
        }

        std::size_t sm_frequent = 0;
        const double automine_ns =
            singleMachineFsmNs(g, config, 1.0, sm_frequent);
        KHUZDUL_CHECK(sm_frequent == frequent,
                      "FSM result mismatch vs AutomineIH");
        const double peregrine_ns =
            singleMachineFsmNs(g, config, 1.2, sm_frequent);

        // Fractal-like pattern-oblivious distributed baseline.
        engines::PatternObliviousConfig oblivious_config;
        oblivious_config.cluster = sim::ClusterConfig::paperDefault(8);
        engines::PatternObliviousEngine oblivious(g, oblivious_config);
        const auto baseline =
            oblivious.mineFrequent(config.maxEdges, config.minSupport);
        KHUZDUL_CHECK(baseline.patterns.size() == frequent,
                      "FSM result mismatch vs Fractal-like");

        table.printRow({item.graph, formatCount(item.threshold),
                        bench::fmtTime(k1_ns), bench::fmtTime(k8_ns),
                        bench::fmtTime(automine_ns),
                        bench::fmtTime(peregrine_ns),
                        bench::fmtTime(baseline.makespanNs),
                        std::to_string(frequent)});
        last_graph = item.graph;
    }
    table.printRule();
    std::printf("\nExpected shape: k-Automine(8n) fastest; "
                "k-Automine(1n) slower than AutomineIH (per-pattern "
                "startup); Fractal-like slowest.\n");
    return 0;
}
