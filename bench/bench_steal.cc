/**
 * @file
 * Work-stealing straggler-mitigation harness (BENCH_steal.json).
 *
 * Runs the Table-2 application set (TC / 3-MC / 4-CC / 5-CC) on a
 * 16-unit simulated cluster (8 nodes x 2 sockets) in four
 * configurations: {healthy, one node degraded} x {--steal off, on}.
 * The degraded scenario reuses the PR-5 deterministic degrade fault
 * — every link touching node 7 runs at 1/6 bandwidth — so two of
 * the sixteen units straggle and the steal pass (DESIGN.md §11) can
 * rebalance their tail chunks onto healthy peers at fault-free
 * prices.
 *
 * `--check` turns the harness into a CI gate:
 *   - counts must be identical across all four configurations
 *     (stealing moves modeled time, never work);
 *   - under the degraded plan, stealing must win the makespan by
 *     >= 1.3x (straggler mitigation must actually mitigate);
 *   - on the healthy baseline, stealing must never lose (the
 *     planner only accepts strictly profitable migrations);
 *   - the degraded steal-on run must actually steal (no vacuous
 *     pass).
 * `--out FILE` overrides the JSON path.
 */

#include <cstring>
#include <fstream>

#include "bench_common.hh"

namespace
{

using namespace khuzdul;

/** One node of eight degraded to 1/6 bandwidth, both directions,
 *  for the whole run (factor >= 4 per the straggler scenario). */
std::vector<std::string>
degradedPlan()
{
    return {"degrade:7-*:factor=6:from=0",
            "degrade:*-7:factor=6:from=0"};
}

core::EngineConfig
stealBenchConfig(bool steal, bool degraded)
{
    core::EngineConfig config = bench::standInEngineConfig(8);
    // Smaller chunks than the stand-in default: chunk migration is
    // the unit of rebalancing, so the ledger needs enough entries
    // per unit for the greedy pass to shave the stragglers close.
    config.chunkBytes = 64ull << 10;
    config.stealEnabled = steal;
    if (degraded)
        for (const std::string &spec : degradedPlan())
            config.faults.add(spec);
    return config;
}

struct AppRow
{
    std::string app;
    Count count = 0;
    double makespanNs = 0;
    std::uint64_t chunksStolen = 0;
    std::uint64_t stealBytes = 0;
    double stealOverheadNs = 0;
    double recoveryNs = 0;
};

struct ConfigRow
{
    std::string name;
    bool steal = false;
    bool degraded = false;
    std::vector<AppRow> apps;
};

bool failed = false;

void
fail(const std::string &why)
{
    std::fprintf(stderr, "FAIL: %s\n", why.c_str());
    failed = true;
}

ConfigRow
runConfig(const Graph &g, const std::string &name, bool steal,
          bool degraded)
{
    ConfigRow row;
    row.name = name;
    row.steal = steal;
    row.degraded = degraded;
    auto system = engines::KhuzdulSystem::kGraphPi(
        g, stealBenchConfig(steal, degraded));
    for (const bench::App &app : bench::paperApps()) {
        bench::Cell cell = bench::runOnKhuzdul(*system, app);
        AppRow r;
        r.app = app.name;
        if (!cell.ok) {
            fail(app.name + " under '" + name + "': " + cell.error);
            row.apps.push_back(std::move(r));
            continue;
        }
        r.count = cell.count;
        r.makespanNs = cell.makespanNs;
        r.chunksStolen = cell.stats.totalChunksStolen();
        r.stealBytes = cell.stats.totalStealBytes();
        r.stealOverheadNs = cell.stats.totalStealOverheadNs();
        r.recoveryNs = cell.stats.totalRecoveryNs();
        row.apps.push_back(std::move(r));
    }
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_steal.json";
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
    }

    bench::banner("Work stealing under a straggling node",
                  "deterministic chunk donation (DESIGN.md 11) vs. "
                  "a node degraded to 1/6 bandwidth; counts stay "
                  "exact, the makespan fold prices steal traffic");

    const datasets::Dataset &mc = datasets::byName("mc");
    std::printf("workload: standin:mc, 16 execution units "
                "(8 nodes x 2 sockets), node 7 degraded x6 in the "
                "skewed scenario\n\n");

    std::vector<ConfigRow> rows;
    rows.push_back(runConfig(mc.graph, "healthy/off", false, false));
    rows.push_back(runConfig(mc.graph, "healthy/on", true, false));
    rows.push_back(runConfig(mc.graph, "degraded/off", false, true));
    rows.push_back(runConfig(mc.graph, "degraded/on", true, true));
    const ConfigRow &healthy_off = rows[0];
    const ConfigRow &healthy_on = rows[1];
    const ConfigRow &degraded_off = rows[2];
    const ConfigRow &degraded_on = rows[3];

    // --- Exactness: stealing and faults never change counts ------
    for (const ConfigRow &row : rows)
        for (std::size_t a = 0; a < row.apps.size(); ++a)
            if (row.apps[a].count != healthy_off.apps[a].count)
                fail(row.apps[a].app + ": count under '" + row.name
                     + "' differs from healthy/off");

    // --- Table ---------------------------------------------------
    bench::TablePrinter table(
        {"app", "healthy off", "healthy on", "degraded off",
         "degraded on", "steal win", "steals"},
        {5, 12, 12, 12, 12, 9, 7});
    table.printHeader();
    for (std::size_t a = 0; a < healthy_off.apps.size(); ++a) {
        const double off = degraded_off.apps[a].makespanNs;
        const double on = degraded_on.apps[a].makespanNs;
        char win[32];
        std::snprintf(win, sizeof win, "%.2fx",
                      on > 0 ? off / on : 0.0);
        table.printRow(
            {healthy_off.apps[a].app,
             bench::fmtTime(healthy_off.apps[a].makespanNs),
             bench::fmtTime(healthy_on.apps[a].makespanNs),
             bench::fmtTime(off), bench::fmtTime(on), win,
             std::to_string(degraded_on.apps[a].chunksStolen)});
    }
    table.printRule();

    // --- Gates ---------------------------------------------------
    std::uint64_t total_steals = 0;
    for (std::size_t a = 0; a < healthy_off.apps.size(); ++a) {
        const AppRow &h_off = healthy_off.apps[a];
        const AppRow &h_on = healthy_on.apps[a];
        const AppRow &d_off = degraded_off.apps[a];
        const AppRow &d_on = degraded_on.apps[a];

        // Stealing must never lose on the unskewed baseline: the
        // planner only accepts migrations that bound both parties
        // by the victim's old finish.
        if (h_on.makespanNs > h_off.makespanNs)
            fail(h_on.app + ": stealing loses on the healthy "
                 "baseline ("
                 + std::to_string(h_on.makespanNs) + " > "
                 + std::to_string(h_off.makespanNs) + ")");

        // Straggler mitigation: >= 1.3x makespan win under the
        // degraded node.
        if (d_on.makespanNs <= 0
            || d_off.makespanNs < 1.3 * d_on.makespanNs)
            fail(d_on.app + ": steal win under degrade is "
                 + std::to_string(d_on.makespanNs > 0
                                      ? d_off.makespanNs
                                          / d_on.makespanNs
                                      : 0.0)
                 + "x < 1.3x");

        total_steals += d_on.chunksStolen;
    }
    if (total_steals == 0)
        fail("degraded steal-on run stole nothing; the gate is "
             "vacuous");

    std::ofstream out(out_path);
    if (!out.is_open()) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    out.precision(15);
    out << "{\n  \"workload\": \"standin:mc\",\n"
        << "  \"units\": 16,\n"
        << "  \"degrade_factor\": 6,\n"
        << "  \"configs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ConfigRow &row = rows[i];
        out << (i == 0 ? "" : ",\n") << "    {\"config\": \""
            << row.name << "\", \"steal\": "
            << (row.steal ? "true" : "false") << ", \"degraded\": "
            << (row.degraded ? "true" : "false") << ", \"apps\": [";
        for (std::size_t a = 0; a < row.apps.size(); ++a) {
            const AppRow &r = row.apps[a];
            out << (a == 0 ? "" : ", ") << "{\"app\": \"" << r.app
                << "\", \"count\": " << r.count
                << ", \"makespan_ns\": " << r.makespanNs
                << ", \"chunks_stolen\": " << r.chunksStolen
                << ", \"steal_bytes\": " << r.stealBytes
                << ", \"steal_overhead_ns\": " << r.stealOverheadNs
                << ", \"recovery_ns\": " << r.recoveryNs << "}";
        }
        out << "]}";
    }
    out << "\n  ],\n  \"check_passed\": "
        << (failed ? "false" : "true") << "\n}\n";
    std::printf("wrote %s\n", out_path.c_str());

    if (check && failed)
        return 1;
    if (failed)
        std::fprintf(stderr, "(failures above; not gating without "
                             "--check)\n");
    return failed ? 1 : 0;
}
