/**
 * @file
 * Regenerates Figure 11: speedup from vertical computation sharing
 * (k-GraphPi, 4-CC and 5-CC, with vs. without reusing the parent's
 * intersection results).
 *
 * Expected shape (paper): ~2.1x average speedup (up to 4.4x),
 * small on Patents where extensions are too light to matter.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hh"

namespace
{

using namespace khuzdul;

} // namespace

int
main()
{
    bench::banner("Figure 11: speedup by vertical computation sharing",
                  "Fig 11 (k-GraphPi, 8 nodes)");

    bench::TablePrinter table(
        {"App", "Graph", "with VCS", "without VCS", "speedup",
         "reused results"},
        {5, 5, 10, 11, 8, 14});
    table.printHeader();

    double product = 1;
    int rows = 0;
    for (const std::string app_name : {"4-CC", "5-CC"}) {
        const bench::App app = bench::appByName(app_name);
        for (const std::string graph_name : {"mc", "pt", "lj", "fr"}) {
            const auto &dataset = datasets::byName(graph_name);

            auto system = engines::KhuzdulSystem::kGraphPi(
                dataset.graph, bench::standInEngineConfig(8));

            system->resetStats();
            PlanOptions with_vcs;
            Count count = 0;
            for (const Pattern &p : app.patterns)
                count += system->count(p, with_vcs);
            const double with_ns = system->stats().makespanNs();
            std::uint64_t reuses = 0;
            for (const auto &node : system->stats().nodes)
                reuses += node.verticalReuses;

            system->resetStats();
            PlanOptions without_vcs;
            without_vcs.verticalSharing = false;
            Count count2 = 0;
            for (const Pattern &p : app.patterns)
                count2 += system->count(p, without_vcs);
            const double without_ns = system->stats().makespanNs();
            KHUZDUL_CHECK(count == count2, "VCS changed counts");

            const double speedup = without_ns / with_ns;
            product *= speedup;
            ++rows;
            table.printRow({app_name, graph_name,
                            bench::fmtTime(with_ns),
                            bench::fmtTime(without_ns),
                            formatRatio(speedup), formatCount(reuses)});
        }
        table.printRule();
    }
    std::printf("\nGeometric-mean speedup: %s (paper: 2.10x average, "
                "up to 4.44x; weakest on pt)\n",
                formatRatio(std::pow(product, 1.0 / rows)).c_str());
    return 0;
}
