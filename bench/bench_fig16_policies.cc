/**
 * @file
 * Regenerates Figure 16: cache replacement policies (FIFO / LIFO /
 * LRU / MRU / STATIC) compared on traffic and runtime, normalized
 * to STATIC (k-GraphPi).
 *
 * Expected shape (paper): replacement policies sometimes save a
 * little traffic (they adapt to temporal shifts) but lose about an
 * order of magnitude in runtime to bookkeeping and allocator
 * churn; STATIC wins everywhere on time.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

using namespace khuzdul;

} // namespace

int
main()
{
    bench::banner("Figure 16: comparing cache replacement policies",
                  "Fig 16 (k-GraphPi, 8 nodes; normalized to STATIC)");

    const std::vector<core::CachePolicy> policies = {
        core::CachePolicy::Fifo, core::CachePolicy::Lifo,
        core::CachePolicy::Lru, core::CachePolicy::Mru,
        core::CachePolicy::Static,
    };

    bench::TablePrinter table(
        {"Workload", "Policy", "norm. traffic", "norm. runtime"},
        {9, 7, 13, 13});
    table.printHeader();

    const std::vector<std::pair<std::string, std::string>> workloads = {
        {"lj", "TC"},    {"lj", "3-MC"}, {"lj", "4-CC"},
        {"lj", "5-CC"},  {"fr", "TC"},   {"fr", "3-MC"},
        {"fr", "4-CC"},  {"fr", "5-CC"},
    };

    for (const auto &[graph_name, app_name] : workloads) {
        const auto &dataset = datasets::byName(graph_name);
        const bench::App app = bench::appByName(app_name);

        // STATIC baseline first.
        auto static_config = bench::cacheRegimeConfig(8);
        auto static_system = engines::KhuzdulSystem::kGraphPi(
            dataset.graph, static_config);
        const auto baseline = bench::runOnKhuzdul(*static_system, app);
        const double base_traffic =
            static_cast<double>(baseline.stats.totalBytesSent());
        const double base_time = baseline.makespanNs;

        for (const auto policy : policies) {
            if (policy == core::CachePolicy::Static) {
                table.printRow({graph_name + "-" + app_name, "STATIC",
                                formatPercent(1.0),
                                formatPercent(1.0)});
                continue;
            }
            auto config = bench::cacheRegimeConfig(8);
            config.cachePolicy = policy;
            auto system = engines::KhuzdulSystem::kGraphPi(
                dataset.graph, config);
            const auto cell = bench::runOnKhuzdul(*system, app);
            KHUZDUL_CHECK(cell.count == baseline.count,
                          "policy changed counts");
            table.printRow(
                {graph_name + "-" + app_name,
                 core::cachePolicyName(policy),
                 formatPercent(
                     static_cast<double>(cell.stats.totalBytesSent())
                     / base_traffic),
                 formatPercent(cell.makespanNs / base_time)});
        }
        table.printRule();
    }
    std::printf("\nExpected shape: replacement policies pay ~an order "
                "of magnitude in runtime for at best similar traffic "
                "(paper §7.6).\n");
    return 0;
}
