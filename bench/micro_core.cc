/**
 * @file
 * Google-benchmark microbenchmarks for the engine's hot primitives:
 * sorted-list intersection kernels, the horizontal dedup table,
 * chunk arena append/reset, cache probes and plan compilation.
 */

#include <benchmark/benchmark.h>

#include "core/cache.hh"
#include "core/chunk.hh"
#include "core/horizontal.hh"
#include "core/kernels/kernels.hh"
#include "graph/generators.hh"
#include "pattern/planner.hh"
#include "support/rng.hh"

namespace
{

using namespace khuzdul;

std::vector<VertexId>
sortedRandomList(std::size_t size, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<VertexId> list(size);
    for (auto &v : list)
        v = static_cast<VertexId>(rng.nextBounded(1 << 20));
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    return list;
}

void
BM_IntersectPair(benchmark::State &state)
{
    const auto a = sortedRandomList(state.range(0), 1);
    const auto b = sortedRandomList(state.range(0), 2);
    std::vector<VertexId> out;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::intersectInto(a, b, out));
    }
    state.SetItemsProcessed(state.iterations()
                            * (a.size() + b.size()));
}
BENCHMARK(BM_IntersectPair)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_IntersectCount(benchmark::State &state)
{
    const auto a = sortedRandomList(state.range(0), 3);
    const auto b = sortedRandomList(state.range(0), 4);
    for (auto _ : state) {
        Count count = 0;
        benchmark::DoNotOptimize(core::intersectCount(a, b, count));
    }
    state.SetItemsProcessed(state.iterations()
                            * (a.size() + b.size()));
}
BENCHMARK(BM_IntersectCount)->Arg(1024)->Arg(16384);

void
BM_IntersectMany(benchmark::State &state)
{
    std::vector<std::vector<VertexId>> lists;
    for (int i = 0; i < state.range(0); ++i)
        lists.push_back(sortedRandomList(4096, 10 + i));
    std::vector<std::span<const VertexId>> spans(lists.begin(),
                                                 lists.end());
    std::vector<VertexId> out;
    std::vector<VertexId> scratch;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::intersectMany({spans.data(), spans.size()}, out,
                                scratch));
    }
}
BENCHMARK(BM_IntersectMany)->Arg(2)->Arg(4)->Arg(6);

/**
 * Skewed-ratio intersections: a small list against one range(0)
 * times larger.  Run per kernel so the crossover points behind the
 * dispatch heuristics (kGallopRatio) are visible side by side.
 */
void
BM_IntersectSkewMerge(benchmark::State &state)
{
    const auto small = sortedRandomList(256, 21);
    const auto large =
        sortedRandomList(256 * state.range(0), 22);
    std::vector<VertexId> out;
    for (auto _ : state)
        benchmark::DoNotOptimize(core::intersectInto(small, large, out));
    state.SetItemsProcessed(state.iterations()
                            * (small.size() + large.size()));
}
BENCHMARK(BM_IntersectSkewMerge)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void
BM_IntersectSkewGallop(benchmark::State &state)
{
    const auto small = sortedRandomList(256, 21);
    const auto large =
        sortedRandomList(256 * state.range(0), 22);
    std::vector<VertexId> out;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core::gallopIntersectInto(small, large, out));
    state.SetItemsProcessed(state.iterations()
                            * (small.size() + large.size()));
}
BENCHMARK(BM_IntersectSkewGallop)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void
BM_IntersectSkewDispatch(benchmark::State &state)
{
    const auto small = sortedRandomList(256, 21);
    const auto large =
        sortedRandomList(256 * state.range(0), 22);
    core::KernelDispatcher dispatcher;
    std::vector<VertexId> out;
    for (auto _ : state)
        benchmark::DoNotOptimize(dispatcher.intersectInto(
            core::ListRef(small), core::ListRef(large), out));
    state.SetItemsProcessed(state.iterations()
                            * (small.size() + large.size()));
}
BENCHMARK(BM_IntersectSkewDispatch)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void
BM_IntersectBlocked(benchmark::State &state)
{
    const auto a = sortedRandomList(state.range(0), 1);
    const auto b = sortedRandomList(state.range(0), 2);
    std::vector<VertexId> out;
    for (auto _ : state)
        benchmark::DoNotOptimize(core::blockedIntersectInto(a, b, out));
    state.SetItemsProcessed(state.iterations()
                            * (a.size() + b.size()));
}
BENCHMARK(BM_IntersectBlocked)->Arg(64)->Arg(1024)->Arg(16384);

/** AVX2 block merge on near-equal lists (scalar fallback when the
 *  host lacks AVX2 — compare against BM_IntersectPair). */
void
BM_IntersectSimdMerge(benchmark::State &state)
{
    const auto a = sortedRandomList(state.range(0), 1);
    const auto b = sortedRandomList(state.range(0), 2);
    std::vector<VertexId> out;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core::simdMergeIntersectInto(a, b, out));
    state.SetItemsProcessed(state.iterations()
                            * (a.size() + b.size()));
}
BENCHMARK(BM_IntersectSimdMerge)->Arg(64)->Arg(1024)->Arg(16384);

/** SIMD gallop on the skew sweep (compare BM_IntersectSkewGallop). */
void
BM_IntersectSkewSimdGallop(benchmark::State &state)
{
    const auto small = sortedRandomList(256, 21);
    const auto large =
        sortedRandomList(256 * state.range(0), 22);
    std::vector<VertexId> out;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core::simdGallopIntersectInto(small, large, out));
    state.SetItemsProcessed(state.iterations()
                            * (small.size() + large.size()));
}
BENCHMARK(BM_IntersectSkewSimdGallop)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

/** Bitmap kernel against a real hub row on a skewed rmat graph. */
void
BM_IntersectBitmapHub(benchmark::State &state)
{
    const Graph g = gen::rmat(16384, 262144, 0.6, 0.15, 0.15, 11);
    g.buildHubBitmaps(32, 32ull << 20);
    VertexId hub = 0;
    for (VertexId v = 1; v < g.numVertices(); ++v)
        if (g.degree(v) > g.degree(hub))
            hub = v;
    const auto small = sortedRandomList(state.range(0), 23);
    const auto hub_list = g.neighbors(hub);
    const std::uint64_t *row = g.hubBitmapRow(hub);
    std::vector<VertexId> out;
    for (auto _ : state)
        benchmark::DoNotOptimize(core::bitmapIntersectInto(
            small, hub_list, row, out));
    state.SetItemsProcessed(state.iterations()
                            * (small.size() + hub_list.size()));
}
BENCHMARK(BM_IntersectBitmapHub)->Arg(16)->Arg(64)->Arg(256);

/**
 * Membership probe at list sizes around kContainsLinearCutoff: the
 * linear/binary pair this sweep sizes the cutoff from, plus the
 * dispatching contains() itself.
 */
void
BM_ContainsLinear(benchmark::State &state)
{
    const auto list = sortedRandomList(state.range(0), 31);
    Rng rng(32);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::containsLinear(
            list, static_cast<VertexId>(rng.nextBounded(1 << 20))));
}
BENCHMARK(BM_ContainsLinear)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void
BM_ContainsBinary(benchmark::State &state)
{
    const auto list = sortedRandomList(state.range(0), 31);
    Rng rng(32);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::containsBinary(
            list, static_cast<VertexId>(rng.nextBounded(1 << 20))));
}
BENCHMARK(BM_ContainsBinary)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void
BM_Contains(benchmark::State &state)
{
    const auto list = sortedRandomList(state.range(0), 31);
    Rng rng(32);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::contains(
            list, static_cast<VertexId>(rng.nextBounded(1 << 20))));
}
BENCHMARK(BM_Contains)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void
BM_HorizontalTable(benchmark::State &state)
{
    core::HorizontalTable table(1 << 15);
    Rng rng(7);
    std::vector<VertexId> vertices(4096);
    for (auto &v : vertices)
        v = static_cast<VertexId>(rng.nextBounded(1 << 16));
    for (auto _ : state) {
        table.clear();
        for (const VertexId v : vertices)
            benchmark::DoNotOptimize(table.offer(v));
    }
    state.SetItemsProcessed(state.iterations() * vertices.size());
}
BENCHMARK(BM_HorizontalTable);

void
BM_ChunkAppendReset(benchmark::State &state)
{
    core::Chunk chunk(64 << 20);
    for (auto _ : state) {
        for (std::uint32_t i = 0; i < 4096; ++i)
            chunk.add(i, i / 8, true);
        chunk.reset();
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ChunkAppendReset);

void
BM_StaticCacheProbe(benchmark::State &state)
{
    const Graph g = gen::rmat(4096, 32768, 0.55, 0.2, 0.2, 5);
    core::DataCache cache(g, core::CachePolicy::Static,
                          g.sizeBytes() / 4, 16);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        cache.insert(v);
    Rng rng(9);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(
            static_cast<VertexId>(rng.nextBounded(g.numVertices()))));
    }
}
BENCHMARK(BM_StaticCacheProbe);

void
BM_LruCacheProbe(benchmark::State &state)
{
    const Graph g = gen::rmat(4096, 32768, 0.55, 0.2, 0.2, 5);
    core::DataCache cache(g, core::CachePolicy::Lru,
                          g.sizeBytes() / 4, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        cache.insert(v);
    Rng rng(9);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(
            static_cast<VertexId>(rng.nextBounded(g.numVertices()))));
    }
}
BENCHMARK(BM_LruCacheProbe);

void
BM_CompilePlanAutomine(benchmark::State &state)
{
    const Pattern p = Pattern::clique(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(compileAutomine(p, {}));
}
BENCHMARK(BM_CompilePlanAutomine);

void
BM_CompilePlanGraphPi(benchmark::State &state)
{
    const Pattern p = Pattern::clique(4);
    const GraphProfile profile{100000.0, 20.0};
    for (auto _ : state)
        benchmark::DoNotOptimize(compileGraphPi(p, profile, {}));
}
BENCHMARK(BM_CompilePlanGraphPi);

} // namespace

BENCHMARK_MAIN();
