/**
 * @file
 * Regenerates Figure 13: inter-node scalability on the LiveJournal
 * stand-in — k-GraphPi vs. replicated GraphPi over 1/2/4/8 nodes
 * for TC, 3-MC, 4-CC and 5-CC.
 *
 * Expected shape (paper): k-GraphPi scales almost perfectly
 * (average 6.77x at 8 nodes); GraphPi's coarse static task split
 * reaches only ~4x.
 */

#include <cstdio>

#include "bench_common.hh"
#include "engines/graphpi_rep.hh"

namespace
{

using namespace khuzdul;

} // namespace

int
main()
{
    bench::banner("Figure 13: inter-node scalability (lj)",
                  "Fig 13 (1-8 nodes; runtime per app, plus speedup "
                  "vs 1 node)");

    const auto &dataset = datasets::byName("lj");
    const std::vector<unsigned> node_counts = {1, 2, 4, 8};

    bench::TablePrinter table(
        {"App", "System", "1 node", "2 nodes", "4 nodes", "8 nodes",
         "speedup@8"},
        {5, 12, 9, 9, 9, 9, 9});
    table.printHeader();

    double khuzdul_sum = 0;
    double rep_sum = 0;
    int apps_counted = 0;

    for (const std::string app_name : {"TC", "3-MC", "4-CC", "5-CC"}) {
        const bench::App app = bench::appByName(app_name);

        std::vector<std::string> krow = {app_name, "k-GraphPi"};
        std::vector<std::string> grow = {"", "GraphPi(rep)"};
        double k_first = 0;
        double k_last = 0;
        double g_first = 0;
        double g_last = 0;
        for (const unsigned nodes : node_counts) {
            auto system = engines::KhuzdulSystem::kGraphPi(
                dataset.graph, bench::standInEngineConfig(nodes));
            const auto cell = bench::runOnKhuzdul(*system, app);
            krow.push_back(bench::fmtTime(cell.makespanNs));
            if (nodes == 1)
                k_first = cell.makespanNs;
            k_last = cell.makespanNs;

            engines::GraphPiRepConfig config;
            config.cluster = sim::ClusterConfig::paperDefault(nodes);
            engines::GraphPiRepEngine rep(dataset.graph, config);
            double total = 0;
            PlanOptions options;
            options.induced = app.induced;
            for (const Pattern &p : app.patterns)
                total += rep.count(p, options).makespanNs;
            grow.push_back(bench::fmtTime(total));
            if (nodes == 1)
                g_first = total;
            g_last = total;
        }
        krow.push_back(formatRatio(k_first / k_last));
        grow.push_back(formatRatio(g_first / g_last));
        table.printRow(krow);
        table.printRow(grow);
        table.printRule();
        khuzdul_sum += k_first / k_last;
        rep_sum += g_first / g_last;
        ++apps_counted;
    }
    std::printf("\nAverage speedup at 8 nodes: k-GraphPi %s, "
                "GraphPi(rep) %s (paper: 6.77x vs 4.04x)\n",
                formatRatio(khuzdul_sum / apps_counted).c_str(),
                formatRatio(rep_sum / apps_counted).c_str());
    return 0;
}
