/**
 * @file
 * Regenerates Table 3: single-node k-Automine vs. single-machine
 * systems (AutomineIH, Peregrine-like, Pangolin-like).
 *
 * Expected shape (paper): k-Automine is within a small factor of
 * the native single-machine systems (its chunked engine adds some
 * overhead on cheap workloads like Patents), and the Pangolin-like
 * engine's orientation optimization wins big for TC on skewed
 * graphs (uk / tw).
 */

#include <cstdio>

#include "bench_common.hh"
#include "engines/single_machine.hh"

namespace
{

using namespace khuzdul;

double
runSingleMachine(engines::SingleMachineEngine &engine,
                 const bench::App &app, Count &count)
{
    double total = 0;
    count = 0;
    PlanOptions options;
    options.induced = app.induced;
    for (const Pattern &p : app.patterns) {
        const auto result = engine.count(p, options);
        total += result.runtimeNs;
        count += result.count;
    }
    return total;
}

} // namespace

int
main()
{
    bench::banner("Table 3: comparison with single-machine systems",
                  "Table 3 (one node, 16 cores)");

    const std::vector<std::pair<std::string, std::vector<std::string>>>
        workloads = {
            {"TC", {"mc", "pt", "lj", "uk", "tw", "fr"}},
            {"3-MC", {"mc", "pt", "lj", "fr"}},
            {"4-CC", {"mc", "pt", "lj", "fr"}},
            {"5-CC", {"mc", "pt", "lj", "fr"}},
        };

    bench::TablePrinter table(
        {"App", "Graph", "k-Automine", "AutomineIH", "Peregrine~",
         "Pangolin~", "embeddings"},
        {5, 5, 11, 11, 11, 11, 16});
    table.printHeader();

    for (const auto &[app_name, graphs] : workloads) {
        const bench::App app = bench::appByName(app_name);
        for (const std::string &graph_name : graphs) {
            const auto &dataset = datasets::byName(graph_name);

            // k-Automine in single-node mode (still dual-socket).
            auto khuzdul = engines::KhuzdulSystem::kAutomine(
                dataset.graph, bench::standInEngineConfig(1));
            const auto cell = bench::runOnKhuzdul(*khuzdul, app);

            engines::SingleMachineConfig config;
            Count count = 0;
            engines::SingleMachineEngine automine(
                dataset.graph, engines::SingleMachineStyle::AutomineIH,
                config);
            const double automine_ns =
                runSingleMachine(automine, app, count);
            KHUZDUL_CHECK(count == cell.count, "count mismatch");

            engines::SingleMachineEngine peregrine(
                dataset.graph,
                engines::SingleMachineStyle::PeregrineLike, config);
            const double peregrine_ns =
                runSingleMachine(peregrine, app, count);
            KHUZDUL_CHECK(count == cell.count, "count mismatch");

            engines::SingleMachineEngine pangolin(
                dataset.graph,
                engines::SingleMachineStyle::PangolinLike, config);
            const double pangolin_ns =
                runSingleMachine(pangolin, app, count);
            KHUZDUL_CHECK(count == cell.count, "count mismatch");

            table.printRow({app_name, graph_name,
                            bench::fmtTime(cell.makespanNs),
                            bench::fmtTime(automine_ns),
                            bench::fmtTime(peregrine_ns),
                            bench::fmtTime(pangolin_ns),
                            formatCount(cell.count)});
        }
        table.printRule();
    }
    std::printf("\nExpected shape: k-Automine ~= native single-machine "
                "systems; Pangolin-like (orientation) wins TC on the "
                "skewed uk/tw stand-ins.\n");
    return 0;
}
