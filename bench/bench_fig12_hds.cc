/**
 * @file
 * Regenerates Figure 12: the effect of horizontal data sharing on
 * network traffic and critical-path communication time (k-GraphPi,
 * 4-CC and 5-CC, with vs. without the per-chunk dedup table).
 *
 * Expected shape (paper): ~70% traffic and ~68% comm-time cuts on
 * average (up to 99%+); moderate on the low-skew Patents graph
 * (fewer hot vertices repeat within a chunk).
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

using namespace khuzdul;

} // namespace

int
main()
{
    bench::banner("Figure 12: effect of horizontal data sharing",
                  "Fig 12 (k-GraphPi, 8 nodes; normalized to the "
                  "no-HDS run)");

    bench::TablePrinter table(
        {"App", "Graph", "norm. traffic", "norm. comm time",
         "HDS hits", "drops"},
        {5, 5, 13, 15, 12, 8});
    table.printHeader();

    for (const std::string app_name : {"4-CC", "5-CC"}) {
        const bench::App app = bench::appByName(app_name);
        for (const std::string graph_name : {"mc", "pt", "lj", "fr"}) {
            const auto &dataset = datasets::byName(graph_name);

            // Cache off isolates the HDS effect, mirroring the
            // figure's normalized deltas.
            auto config = bench::standInEngineConfig(8);
            config.cachePolicy = core::CachePolicy::None;
            auto with_hds = engines::KhuzdulSystem::kGraphPi(
                dataset.graph, config);
            const auto with_cell =
                bench::runOnKhuzdul(*with_hds, app);
            std::uint64_t hits = 0;
            std::uint64_t drops = 0;
            for (const auto &node : with_cell.stats.nodes) {
                hits += node.horizontalHits;
                drops += node.horizontalDrops;
            }

            auto bare_config = config;
            bare_config.horizontalSharing = false;
            auto without_hds = engines::KhuzdulSystem::kGraphPi(
                dataset.graph, bare_config);
            const auto without_cell =
                bench::runOnKhuzdul(*without_hds, app);
            KHUZDUL_CHECK(with_cell.count == without_cell.count,
                          "HDS changed counts");

            const double traffic_ratio =
                static_cast<double>(with_cell.stats.totalBytesSent())
                / static_cast<double>(
                    without_cell.stats.totalBytesSent());
            const double comm_ratio =
                with_cell.stats.totalCommExposedNs()
                / std::max(1.0,
                           without_cell.stats.totalCommExposedNs());
            table.printRow({app_name, graph_name,
                            formatPercent(traffic_ratio),
                            formatPercent(comm_ratio),
                            formatCount(hits), formatCount(drops)});
        }
        table.printRule();
    }
    std::printf("\nExpected shape: large cuts everywhere; the pt "
                "stand-in keeps the most traffic (paper: only "
                "20-24%% reduction there).\n");
    return 0;
}
