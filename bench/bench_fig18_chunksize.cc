/**
 * @file
 * Regenerates Figure 18: sensitivity to the chunk size of the
 * BFS-DFS hybrid exploration (k-GraphPi on lj), sweeping chunk
 * budgets across four orders of magnitude.
 *
 * Expected shape (paper): runtime falls as chunks grow (more
 * parallelism, more horizontal reuse) and then flattens; memory
 * use grows with the chunk budget, which is what eventually forces
 * the paper's 4 GB default.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

using namespace khuzdul;

} // namespace

int
main()
{
    bench::banner("Figure 18: varying the chunk size (lj)",
                  "Fig 18 (k-GraphPi; the paper sweeps 1MB-16GB on "
                  "~1000x larger data -> 1KB-16MB here)");

    const auto &dataset = datasets::byName("lj");
    const std::vector<std::uint64_t> chunk_sizes = {
        1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20,
        4 << 20, 16 << 20,
    };

    bench::TablePrinter table(
        {"App", "chunk", "runtime", "exposed comm", "HDS hits",
         "peak chunk mem"},
        {5, 7, 10, 12, 12, 14});
    table.printHeader();

    for (const std::string app_name : {"TC", "3-MC", "4-CC", "5-CC"}) {
        const bench::App app = bench::appByName(app_name);
        for (const std::uint64_t chunk : chunk_sizes) {
            auto config = bench::standInEngineConfig(8);
            config.chunkBytes = chunk;
            auto system = engines::KhuzdulSystem::kGraphPi(
                dataset.graph, config);
            const auto cell = bench::runOnKhuzdul(*system, app);
            std::uint64_t hits = 0;
            std::uint64_t peak = 0;
            for (const auto &node : cell.stats.nodes) {
                hits += node.horizontalHits;
                peak = std::max(peak, node.peakChunkBytes);
            }
            table.printRow({app_name, formatBytes(chunk),
                            bench::fmtTime(cell.makespanNs),
                            bench::fmtTime(
                                cell.stats.totalCommExposedNs()),
                            formatCount(hits), formatBytes(peak)});
        }
        table.printRule();
    }
    std::printf("\nExpected shape: larger chunks help until the "
                "curve flattens; memory overhead is bounded by "
                "chunk x (levels-1) regardless of graph size.\n");
    return 0;
}
