/**
 * @file
 * Regenerates Figure 14: intra-node scalability and the COST
 * metric — k-Automine on one node with 5..16 total cores (4 always
 * reserved for communication), TC / 3-MC / 4-CC on lj, against the
 * best single-thread reference.
 *
 * Expected shape (paper): near-linear scaling (10.7-11.6x at 16
 * cores over the 1-compute-core point) and COST of 6-8 cores.
 */

#include <cstdio>

#include "bench_common.hh"
#include "engines/single_machine.hh"

namespace
{

using namespace khuzdul;

/** Best single-thread reference runtime (McSherry's COST). */
double
referenceSingleThreadNs(const Graph &g, const bench::App &app)
{
    double best = 0;
    bool have = false;
    engines::SingleMachineConfig config;
    config.cores = 1;
    for (const auto style : {engines::SingleMachineStyle::AutomineIH,
                             engines::SingleMachineStyle::PeregrineLike,
                             engines::SingleMachineStyle::PangolinLike}) {
        engines::SingleMachineEngine engine(g, style, config);
        double total = 0;
        PlanOptions options;
        options.induced = app.induced;
        for (const Pattern &p : app.patterns)
            total += engine.count(p, options).runtimeNs;
        if (!have || total < best) {
            best = total;
            have = true;
        }
    }
    return best;
}

} // namespace

int
main()
{
    bench::banner("Figure 14: intra-node scalability and COST",
                  "Fig 14 (k-Automine, 1 node, cores 5-16 with 4 "
                  "reserved for communication; graph lj)");

    const auto &dataset = datasets::byName("lj");
    const std::vector<unsigned> core_counts = {5, 6, 8, 12, 16};

    bench::TablePrinter table(
        {"App", "5c", "6c", "8c", "12c", "16c", "speedup",
         "ref 1-thread", "COST"},
        {5, 9, 9, 9, 9, 9, 8, 12, 5});
    table.printHeader();

    for (const std::string app_name : {"TC", "3-MC", "4-CC"}) {
        const bench::App app = bench::appByName(app_name);
        std::vector<std::string> row = {app_name};
        const double reference =
            referenceSingleThreadNs(dataset.graph, app);
        double first = 0;
        double last = 0;
        unsigned cost_metric = 0;
        for (const unsigned cores : core_counts) {
            auto config = bench::standInEngineConfig(1);
            // One socket carrying all cores; 4 reserved for comm.
            config.cluster.socketsPerNode = 1;
            config.cluster.coresPerSocket = cores;
            config.cluster.commCoresPerNode = 4;
            auto system = engines::KhuzdulSystem::kAutomine(
                dataset.graph, config);
            const auto cell = bench::runOnKhuzdul(*system, app);
            row.push_back(bench::fmtTime(cell.makespanNs));
            if (cores == core_counts.front())
                first = cell.makespanNs;
            last = cell.makespanNs;
            if (cost_metric == 0 && cell.makespanNs < reference)
                cost_metric = cores;
        }
        row.push_back(formatRatio(first / last * 1.0
                                  * (core_counts.front() - 4)));
        row.push_back(bench::fmtTime(reference));
        row.push_back(cost_metric == 0 ? ">16"
                                       : std::to_string(cost_metric));
        table.printRow(row);
    }
    table.printRule();
    std::printf("\nExpected shape: ~linear scaling in compute cores "
                "(paper: 10.7-11.6x at 16 cores) and COST around "
                "6-8 cores.\n");
    return 0;
}
