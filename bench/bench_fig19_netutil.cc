/**
 * @file
 * Regenerates Figure 19: network bandwidth utilization of
 * k-GraphPi across applications and graphs.
 *
 * Expected shape (paper): the system is compute-bound nearly
 * everywhere, so utilization stays below ~50%; Patents is the
 * outlier whose many small poorly-batched requests keep the
 * network busy on copies yet underutilized on payload.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

using namespace khuzdul;

} // namespace

int
main()
{
    bench::banner("Figure 19: network bandwidth utilization",
                  "Fig 19 (k-GraphPi, 8 nodes)");

    bench::TablePrinter table(
        {"App", "Graph", "traffic", "makespan", "utilization"},
        {5, 5, 10, 10, 11});
    table.printHeader();

    sim::CostModel cost;
    for (const std::string app_name : {"TC", "3-MC", "4-CC", "5-CC"}) {
        const bench::App app = bench::appByName(app_name);
        for (const std::string graph_name : {"mc", "pt", "lj", "fr"}) {
            const auto &dataset = datasets::byName(graph_name);
            auto system = engines::KhuzdulSystem::kGraphPi(
                dataset.graph, bench::standInEngineConfig(8));
            const auto cell = bench::runOnKhuzdul(*system, app);
            table.printRow(
                {app_name, graph_name,
                 formatBytes(cell.stats.totalBytesSent()),
                 bench::fmtTime(cell.makespanNs),
                 formatPercent(cell.stats.networkUtilization(
                     cost.netBytesPerNs))});
        }
        table.printRule();
    }
    std::printf("\nExpected shape: compute-bound workloads leave the "
                "network well under saturation (paper: < 50%% "
                "everywhere).\n");
    return 0;
}
