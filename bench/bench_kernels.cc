/**
 * @file
 * Set-kernel benchmark harness (BENCH_kernels.json).
 *
 * Four sections:
 *   1. Pair sweeps — one small list against larger lists across a
 *      size-ratio sweep, wall-clocking every kernel (merge, blocked,
 *      gallop, SIMD merge, SIMD gallop, adaptive dispatcher) on
 *      identical inputs and checking outputs and canonical charges
 *      agree.
 *   2. SIMD sweep — 4k x 4k equal-size races isolating the AVX2
 *      block merge against the scalar reference.
 *   3. Hub-bitmap sweep — the same race against a real hub vertex's
 *      neighbor list with its precomputed bitset, plus the memory
 *      accounting of the bitmap index.
 *   4. Engine A/B — full `count` runs per --kernel mode, asserting
 *      counts and modeled makespans are mode-invariant while
 *      reporting host wall-clock per mode.
 *
 * `--check` turns the harness into a CI perf-smoke gate.  It fails
 * (exit 1) if any invariance check fails, if the adaptive dispatcher
 * falls below 0.95x the best single kernel on any sweep row (rows
 * that miss are re-raced up to twice to filter scheduler noise), or
 * if — with AVX2 available — the SIMD merge is not at least 1.5x the
 * scalar merge on the 4k x 4k equal-size sweep.  `--out FILE`
 * overrides the JSON path.
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "bench_common.hh"
#include "core/kernels/kernels.hh"
#include "support/rng.hh"
#include "support/timer.hh"

namespace
{

using namespace khuzdul;

std::vector<VertexId>
sortedRandomList(std::size_t size, VertexId universe, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<VertexId> list(size);
    for (auto &v : list)
        v = static_cast<VertexId>(rng.nextBounded(universe));
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    return list;
}

/** Wall-clock one kernel invocation, auto-calibrating iterations to
 *  a ~20 ms measurement window.  Returns ns per call. */
template <typename Fn>
double
timeKernel(Fn &&fn)
{
    Timer probe;
    fn();
    const std::uint64_t once = std::max<std::uint64_t>(
        probe.elapsedNs(), 50);
    const std::uint64_t iters =
        std::clamp<std::uint64_t>(20'000'000 / once, 10, 200'000);
    Timer timer;
    for (std::uint64_t i = 0; i < iters; ++i)
        fn();
    return static_cast<double>(timer.elapsedNs())
        / static_cast<double>(iters);
}

struct SweepRow
{
    std::size_t small = 0;
    std::size_t large = 0;
    std::size_t ratio = 0;
    bool bitmap_backed = false;
    double mergeNs = 0;
    double blockedNs = 0;
    double gallopNs = 0;
    double bitmapNs = -1; ///< -1 = no hub row for this input
    double simdMergeNs = -1; ///< -1 = SIMD tier unavailable
    double simdGallopNs = -1;
    double autoNs = 0;

    /** Fastest single kernel on this row (the bar `auto` must hold). */
    double
    bestSingleNs() const
    {
        double best = std::min({mergeNs, blockedNs, gallopNs});
        if (bitmapNs > 0)
            best = std::min(best, bitmapNs);
        if (simdMergeNs > 0)
            best = std::min(best, std::min(simdMergeNs, simdGallopNs));
        return best;
    }
};

/** One raced input pair, kept so gate misses can be re-raced. */
struct PairCase
{
    std::vector<VertexId> small;
    std::vector<VertexId> large;
    const Graph *graph = nullptr;
    VertexId hub = kInvalidVertex;
};

bool failed = false;

void
fail(const std::string &why)
{
    std::fprintf(stderr, "FAIL: %s\n", why.c_str());
    failed = true;
}

/** Race every kernel on (small, large); verify agreement, time each. */
SweepRow
racePair(std::span<const VertexId> small, std::span<const VertexId> large,
         const Graph *graph, VertexId hub_source)
{
    SweepRow row;
    row.small = small.size();
    row.large = large.size();
    row.ratio = small.empty() ? 0 : large.size() / small.size();

    std::vector<VertexId> ref;
    std::vector<VertexId> out;
    const core::WorkItems ref_work =
        core::intersectInto(small, large, ref);

    const auto check = [&](const char *kernel, core::WorkItems work) {
        if (out != ref)
            fail(std::string(kernel) + " output mismatch");
        if (work != ref_work)
            fail(std::string(kernel) + " charge mismatch");
    };
    if (core::canonicalIntersectWork(small, large) != ref_work)
        fail("canonical work formula disagrees with merge loop");
    check("blocked", core::blockedIntersectInto(small, large, out));
    check("gallop", core::gallopIntersectInto(small, large, out));
    check("simd_merge", core::simdMergeIntersectInto(small, large, out));
    check("simd_gallop",
          core::simdGallopIntersectInto(small, large, out));

    row.mergeNs = timeKernel(
        [&] { core::intersectInto(small, large, out); });
    row.blockedNs = timeKernel(
        [&] { core::blockedIntersectInto(small, large, out); });
    row.gallopNs = timeKernel(
        [&] { core::gallopIntersectInto(small, large, out); });
    if (core::simdAvailable()) {
        row.simdMergeNs = timeKernel(
            [&] { core::simdMergeIntersectInto(small, large, out); });
        row.simdGallopNs = timeKernel(
            [&] { core::simdGallopIntersectInto(small, large, out); });
    }

    const std::uint64_t *row_bits =
        graph ? graph->hubBitmapRow(hub_source) : nullptr;
    if (row_bits) {
        row.bitmap_backed = true;
        check("bitmap",
              core::bitmapIntersectInto(small, large, row_bits, out));
        row.bitmapNs = timeKernel([&] {
            core::bitmapIntersectInto(small, large, row_bits, out);
        });
    }

    core::KernelDispatcher dispatcher(core::KernelMode::Auto, graph);
    check("dispatcher",
          dispatcher.intersectInto(core::ListRef(small),
                                   core::ListRef(large, hub_source),
                                   out));
    row.autoNs = timeKernel([&] {
        dispatcher.intersectInto(core::ListRef(small),
                                 core::ListRef(large, hub_source), out);
    });
    return row;
}

struct EngineRow
{
    std::string graph;
    std::string pattern;
    std::string mode;
    Count count = 0;
    double makespanNs = 0;
    std::uint64_t wallNs = 0;
    std::array<std::uint64_t, core::kNumKernelKinds> kernelCalls{};
};

EngineRow
runEngine(const std::string &graph_name, const Graph &g,
          const Pattern &pattern, core::KernelMode mode)
{
    EngineRow row;
    row.graph = graph_name;
    row.pattern = pattern.toString();
    row.mode = core::kernelModeName(mode);
    core::EngineConfig config = bench::standInEngineConfig();
    config.kernelMode = mode;
    auto system = engines::KhuzdulSystem::kGraphPi(g, config);
    Timer timer;
    row.count = system->count(pattern, {});
    row.wallNs = timer.elapsedNs();
    row.makespanNs = system->stats().makespanNs();
    for (const sim::NodeStats &node : system->stats().nodes)
        for (std::size_t k = 0; k < row.kernelCalls.size(); ++k)
            row.kernelCalls[k] += node.kernelCalls[k];
    return row;
}

std::string
sweepJson(const std::vector<SweepRow> &rows)
{
    std::ostringstream os;
    os.precision(15);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SweepRow &r = rows[i];
        os << (i == 0 ? "" : ",\n")
           << "    {\"small\": " << r.small << ", \"large\": " << r.large
           << ", \"ratio\": " << r.ratio
           << ", \"bitmap_backed\": " << (r.bitmap_backed ? "true"
                                                          : "false")
           << ", \"merge_ns\": " << r.mergeNs
           << ", \"blocked_ns\": " << r.blockedNs
           << ", \"gallop_ns\": " << r.gallopNs
           << ", \"bitmap_ns\": " << r.bitmapNs
           << ", \"simd_merge_ns\": " << r.simdMergeNs
           << ", \"simd_gallop_ns\": " << r.simdGallopNs
           << ", \"auto_ns\": " << r.autoNs
           << ", \"speedup_auto_vs_merge\": "
           << (r.autoNs > 0 ? r.mergeNs / r.autoNs : 0)
           << ", \"speedup_auto_vs_best\": "
           << (r.autoNs > 0 ? r.bestSingleNs() / r.autoNs : 0) << "}";
    }
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_kernels.json";
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
    }

    bench::banner("Set-kernel suite",
                  "kernel dispatch microarchitecture (DESIGN.md 5.6)");
    std::printf("SIMD tier: %s\n",
                core::simdAvailable()        ? "avx2"
                    : core::simdCompiled()   ? "compiled, CPU lacks avx2"
                                             : "compiled out");

    // --- 1. Synthetic pair sweeps across size ratios -------------
    const std::size_t kSmall = 256;
    const VertexId kUniverse = 1 << 20;
    std::vector<PairCase> sweep_cases;
    std::vector<SweepRow> sweeps;
    bench::TablePrinter table({"ratio", "merge", "gallop", "simd_mrg",
                               "simd_gal", "auto", "speedup"},
                              {6, 10, 10, 10, 10, 10, 8});
    table.printHeader();
    const auto fmtMaybe = [](double ns) {
        return ns > 0 ? bench::fmtTime(ns) : std::string("n/a");
    };
    for (const std::size_t ratio : {1ull, 4ull, 16ull, 64ull, 256ull}) {
        PairCase c;
        c.small = sortedRandomList(kSmall, kUniverse, 11);
        c.large = sortedRandomList(kSmall * ratio, kUniverse, 12 + ratio);
        SweepRow row = racePair(c.small, c.large, nullptr, kInvalidVertex);
        sweep_cases.push_back(std::move(c));
        sweeps.push_back(row);
        char speedup[32];
        std::snprintf(speedup, sizeof speedup, "%.2fx",
                      row.mergeNs / row.autoNs);
        table.printRow({std::to_string(ratio),
                        bench::fmtTime(row.mergeNs),
                        bench::fmtTime(row.gallopNs),
                        fmtMaybe(row.simdMergeNs),
                        fmtMaybe(row.simdGallopNs),
                        bench::fmtTime(row.autoNs), speedup});
    }
    table.printRule();

    // --- 1b. 4k x 4k equal-size SIMD sweep -----------------------
    // The AVX2 block merge's home turf: near-equal lists too big for
    // galloping to help.  Gated at >= 1.5x the scalar merge.
    std::vector<PairCase> simd_cases;
    std::vector<SweepRow> simd_sweeps;
    std::printf("\nsimd merge, 4k x 4k equal-size lists:\n");
    for (const std::uint64_t seed : {21ull, 22ull, 23ull}) {
        PairCase c;
        c.small = sortedRandomList(4096, kUniverse, seed);
        c.large = sortedRandomList(4096, kUniverse, 100 + seed);
        SweepRow row = racePair(c.small, c.large, nullptr, kInvalidVertex);
        std::printf("  merge %-10s simd %-10s (%.2fx)\n",
                    bench::fmtTime(row.mergeNs).c_str(),
                    (row.simdMergeNs > 0
                         ? bench::fmtTime(row.simdMergeNs)
                         : std::string("n/a"))
                        .c_str(),
                    row.simdMergeNs > 0 ? row.mergeNs / row.simdMergeNs
                                        : 0.0);
        simd_cases.push_back(std::move(c));
        simd_sweeps.push_back(row);
    }

    // --- 2. Hub-bitmap sweep on a stand-in graph -----------------
    const datasets::Dataset &uk = datasets::byName("uk");
    const Graph &g = uk.graph;
    g.buildHubBitmaps(32, 32ull << 20);
    VertexId hub = 0;
    for (VertexId v = 1; v < g.numVertices(); ++v)
        if (g.degree(v) > g.degree(hub))
            hub = v;
    std::printf("\nhub bitmaps on standin:uk — %zu rows, %s "
                "(graph %s; hottest hub degree %llu)\n",
                g.hubBitmapCount(),
                formatBytes(g.hubBitmapBytes()).c_str(),
                formatBytes(g.sizeBytes()).c_str(),
                static_cast<unsigned long long>(g.degree(hub)));
    std::vector<PairCase> hub_cases;
    std::vector<SweepRow> hub_sweeps;
    for (const std::size_t size : {16u, 64u, 256u}) {
        PairCase c;
        c.small = sortedRandomList(size, g.numVertices(), 13 + size);
        const auto hub_list = g.neighbors(hub);
        c.large.assign(hub_list.begin(), hub_list.end());
        c.graph = &g;
        c.hub = hub;
        hub_sweeps.push_back(racePair(c.small, c.large, &g, hub));
        hub_cases.push_back(std::move(c));
    }

    // --- 3. Engine A/B across --kernel modes ---------------------
    const datasets::Dataset &mc = datasets::byName("mc");
    std::vector<EngineRow> engine_rows;
    const core::KernelMode modes[] = {
        core::KernelMode::Auto, core::KernelMode::Merge,
        core::KernelMode::Gallop, core::KernelMode::Bitmap,
        core::KernelMode::Simd};
    std::printf("\nengine A/B (standin:mc, 4-CC, graphpi plan):\n");
    for (const core::KernelMode mode : modes) {
        engine_rows.push_back(
            runEngine("standin:mc", mc.graph, Pattern::clique(4), mode));
        const EngineRow &r = engine_rows.back();
        std::printf("  %-6s count %-12s makespan %-10s wall %s\n",
                    r.mode.c_str(), formatCount(r.count).c_str(),
                    bench::fmtTime(r.makespanNs).c_str(),
                    formatTime(r.wallNs).c_str());
    }
    for (const EngineRow &r : engine_rows) {
        if (r.count != engine_rows[0].count)
            fail("engine count differs across kernel modes");
        if (r.makespanNs != engine_rows[0].makespanNs)
            fail("modeled makespan differs across kernel modes");
    }

    // --- Gates + JSON --------------------------------------------
    const auto raceCase = [](const PairCase &c) {
        return racePair(c.small, c.large, c.graph, c.hub);
    };

    // Gate 1: the adaptive dispatcher must hold >= 0.95x the best
    // single kernel on EVERY row (this subsumes the old >3x-vs-merge
    // bound — merge is one of the single kernels).  A row that
    // misses is re-raced up to twice first: single-shot wall-clock
    // on a shared host is noisy, a real retune regression is not.
    double best_skewed_speedup = 0;
    double worst_auto_vs_best = 1e30;
    struct Section
    {
        std::vector<SweepRow> *rows;
        std::vector<PairCase> *cases;
        const char *name;
    };
    for (const Section s : {Section{&sweeps, &sweep_cases, "pair"},
                            Section{&simd_sweeps, &simd_cases, "simd"},
                            Section{&hub_sweeps, &hub_cases, "hub"}}) {
        for (std::size_t i = 0; i < s.rows->size(); ++i) {
            SweepRow &r = (*s.rows)[i];
            for (int attempt = 0;
                 r.bestSingleNs() < 0.95 * r.autoNs && attempt < 2;
                 ++attempt)
                r = raceCase((*s.cases)[i]);
            if (r.ratio >= core::kGallopRatio)
                best_skewed_speedup = std::max(best_skewed_speedup,
                                               r.mergeNs / r.autoNs);
            const double vs_best = r.bestSingleNs() / r.autoNs;
            worst_auto_vs_best = std::min(worst_auto_vs_best, vs_best);
            if (vs_best < 0.95)
                fail(std::string(s.name) + " sweep: auto only "
                     + std::to_string(vs_best)
                     + "x of the best single kernel (ratio "
                     + std::to_string(r.ratio) + ")");
        }
    }
    std::printf("\nbest skewed-sweep speedup (auto vs merge): %.2fx\n",
                best_skewed_speedup);
    std::printf("worst auto vs best single kernel: %.2fx\n",
                worst_auto_vs_best);

    // Gate 2: with AVX2 live, the SIMD merge must clear 1.5x the
    // scalar merge somewhere on its 4k x 4k home-turf sweep.
    double simd_speedup_4k = 0;
    if (core::simdAvailable()) {
        for (std::size_t i = 0; i < simd_sweeps.size(); ++i) {
            SweepRow &r = simd_sweeps[i];
            for (int attempt = 0;
                 r.mergeNs < 1.5 * r.simdMergeNs && attempt < 2;
                 ++attempt)
                r = raceCase(simd_cases[i]);
            if (r.simdMergeNs > 0)
                simd_speedup_4k = std::max(simd_speedup_4k,
                                           r.mergeNs / r.simdMergeNs);
        }
        std::printf("simd merge vs scalar merge at 4k x 4k: %.2fx\n",
                    simd_speedup_4k);
        if (simd_speedup_4k < 1.5)
            fail("simd merge below 1.5x scalar merge on the 4k x 4k "
                 "sweep");
    }

    std::ofstream out(out_path);
    if (!out.is_open()) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    out.precision(15);
    out << "{\n  \"simd_available\": "
        << (core::simdAvailable() ? "true" : "false")
        << ",\n  \"pair_sweeps\": [\n" << sweepJson(sweeps)
        << "\n  ],\n  \"simd_sweeps\": [\n" << sweepJson(simd_sweeps)
        << "\n  ],\n  \"hub_sweeps\": [\n" << sweepJson(hub_sweeps)
        << "\n  ],\n  \"hub_bitmap\": {\"graph\": \"standin:uk\", "
        << "\"rows\": " << g.hubBitmapCount()
        << ", \"bytes\": " << g.hubBitmapBytes()
        << ", \"degree_threshold\": " << g.hubBitmapDegreeThreshold()
        << ", \"graph_bytes\": " << g.sizeBytes()
        << ", \"overhead_vs_graph\": "
        << (static_cast<double>(g.hubBitmapBytes())
            / static_cast<double>(g.sizeBytes()))
        << "},\n  \"engine_ab\": [\n";
    for (std::size_t i = 0; i < engine_rows.size(); ++i) {
        const EngineRow &r = engine_rows[i];
        out << (i == 0 ? "" : ",\n")
            << "    {\"graph\": \"" << r.graph << "\", \"pattern\": \""
            << r.pattern << "\", \"mode\": \"" << r.mode
            << "\", \"count\": " << r.count
            << ", \"makespan_ns\": " << r.makespanNs
            << ", \"wall_ns\": " << r.wallNs << ", \"kernel_calls\": {";
        for (std::size_t k = 0; k < r.kernelCalls.size(); ++k)
            out << (k == 0 ? "" : ", ") << "\""
                << core::kernelKindName(
                       static_cast<core::KernelKind>(k))
                << "\": " << r.kernelCalls[k];
        out << "}}";
    }
    out << "\n  ],\n  \"best_skewed_speedup\": " << best_skewed_speedup
        << ",\n  \"worst_auto_vs_best\": " << worst_auto_vs_best
        << ",\n  \"simd_speedup_4k\": " << simd_speedup_4k
        << ",\n  \"check_passed\": " << (failed ? "false" : "true")
        << "\n}\n";
    std::printf("wrote %s\n", out_path.c_str());

    if (check && failed)
        return 1;
    if (failed)
        std::fprintf(stderr,
                     "(invariance failures above; not gating "
                     "without --check)\n");
    return failed ? 1 : 0;
}
