/**
 * @file
 * Regenerates Table 7: NUMA-aware support (k-GraphPi, one node,
 * two sockets; per-socket sub-partitions + split cache vs. a
 * NUMA-oblivious single partition).
 *
 * Expected shape (paper): 1.0-1.5x gains from NUMA awareness,
 * larger where extension work is heavier.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

using namespace khuzdul;

} // namespace

int
main()
{
    bench::banner("Table 7: NUMA-aware support",
                  "Table 7 (k-GraphPi, single dual-socket node)");

    const std::vector<std::pair<std::string, std::vector<std::string>>>
        workloads = {
            {"4-CC", {"pt", "lj", "fr"}},
            {"5-CC", {"pt", "lj", "fr"}},
        };

    bench::TablePrinter table(
        {"App", "Graph", "NUMA-aware", "oblivious", "gain"},
        {5, 5, 11, 11, 6});
    table.printHeader();

    for (const auto &[app_name, graphs] : workloads) {
        const bench::App app = bench::appByName(app_name);
        for (const std::string &graph_name : graphs) {
            const auto &dataset = datasets::byName(graph_name);

            auto aware_config = bench::standInEngineConfig(1);
            aware_config.numaAware = true;
            auto aware = engines::KhuzdulSystem::kGraphPi(
                dataset.graph, aware_config);
            const auto with_numa = bench::runOnKhuzdul(*aware, app);

            auto oblivious_config = bench::standInEngineConfig(1);
            oblivious_config.numaAware = false;
            auto oblivious = engines::KhuzdulSystem::kGraphPi(
                dataset.graph, oblivious_config);
            const auto without_numa =
                bench::runOnKhuzdul(*oblivious, app);
            KHUZDUL_CHECK(with_numa.count == without_numa.count,
                          "NUMA mode changed counts");

            table.printRow(
                {app_name, graph_name,
                 bench::fmtTime(with_numa.makespanNs),
                 bench::fmtTime(without_numa.makespanNs),
                 formatRatio(without_numa.makespanNs
                             / with_numa.makespanNs)});
        }
        table.printRule();
    }
    std::printf("\nExpected shape: NUMA awareness gains 1.0-1.5x "
                "(paper average: 1.26x).\n");
    return 0;
}
