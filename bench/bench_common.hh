/**
 * @file
 * Shared infrastructure for the per-table / per-figure benchmark
 * harnesses.  Every bench binary regenerates one artifact of the
 * paper's evaluation (§7); helpers here standardize dataset access,
 * engine configuration at stand-in scale, the application set
 * (TC / 3-MC / 4-CC / 5-CC) and paper-style table printing.
 */

#ifndef KHUZDUL_BENCH_BENCH_COMMON_HH
#define KHUZDUL_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/gpm_apps.hh"
#include "engines/khuzdul_system.hh"
#include "graph/datasets.hh"
#include "pattern/pattern.hh"
#include "sim/stats.hh"
#include "support/format.hh"

namespace khuzdul
{
namespace bench
{

/** The paper's application set (Table 2 rows). */
struct App
{
    std::string name;
    /** Patterns counted; k-MC uses induced matching. */
    std::vector<Pattern> patterns;
    bool induced = false;
};

/** TC, 3-MC, 4-CC, 5-CC as used throughout §7. */
inline std::vector<App>
paperApps()
{
    std::vector<App> apps;
    apps.push_back({"TC", {Pattern::triangle()}, false});
    App mc3{"3-MC", {}, true};
    mc3.patterns.push_back(Pattern::pathOf(3));
    mc3.patterns.push_back(Pattern::triangle());
    apps.push_back(mc3);
    apps.push_back({"4-CC", {Pattern::clique(4)}, false});
    apps.push_back({"5-CC", {Pattern::clique(5)}, false});
    return apps;
}

/** Look up one app from paperApps() by name. */
inline App
appByName(const std::string &name)
{
    for (const App &app : paperApps())
        if (app.name == name)
            return app;
    std::fprintf(stderr, "unknown app %s\n", name.c_str());
    std::abort();
}

/**
 * Engine configuration at stand-in scale: the paper's defaults
 * (4 GB chunks, 15% cache, threshold 64) scaled ~1000x down with
 * the datasets.
 */
inline core::EngineConfig
standInEngineConfig(NodeId nodes = 8)
{
    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(nodes);
    // Scaled from the paper's 4 GB default (~1000x smaller data).
    config.chunkBytes = 1ull << 20;
    config.cacheFraction = 0.15;
    config.cacheDegreeThreshold = 32;
    return config;
}

/**
 * Configuration for the cache-focused experiments (Table 6, Figs
 * 16/17).  The paper's cache regime has a fetch-stream hundreds of
 * times larger than a chunk (so lists are refetched across chunks)
 * and a hot set far smaller than the cache.  Scale compression
 * shrinks the stream quadratically but chunks only linearly, so
 * these runs use proportionally smaller chunks, and a cache sized
 * against the stand-ins' (relatively fatter) hot set.
 */
inline core::EngineConfig
cacheRegimeConfig(NodeId nodes = 8)
{
    core::EngineConfig config = standInEngineConfig(nodes);
    config.chunkBytes = 4ull << 10;
    config.cacheFraction = 0.45;
    config.cacheDegreeThreshold = 64;
    return config;
}

/** Outcome of one (system, app, graph) cell. */
struct Cell
{
    bool ok = false;
    std::string error;    ///< "OOM" / "CRASHED" style marker
    Count count = 0;
    double makespanNs = 0;
    sim::RunStats stats;
};

/** Run all of an app's patterns on a Khuzdul system, fresh stats. */
inline Cell
runOnKhuzdul(engines::KhuzdulSystem &system, const App &app)
{
    Cell cell;
    system.resetStats();
    PlanOptions options;
    options.induced = app.induced;
    for (const Pattern &p : app.patterns)
        cell.count += system.count(p, options);
    cell.stats = system.stats();
    cell.makespanNs = cell.stats.makespanNs();
    cell.ok = true;
    return cell;
}

/** Paper-style table printer. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers,
                          std::vector<int> widths)
        : headers_(std::move(headers)), widths_(std::move(widths))
    {}

    void
    printHeader() const
    {
        printRule();
        std::string line = "|";
        for (std::size_t i = 0; i < headers_.size(); ++i)
            line += " " + padRight(headers_[i], widths_[i]) + " |";
        std::printf("%s\n", line.c_str());
        printRule();
    }

    void
    printRow(const std::vector<std::string> &cells) const
    {
        std::string line = "|";
        for (std::size_t i = 0; i < cells.size(); ++i)
            line += " " + padLeft(cells[i], widths_[i]) + " |";
        std::printf("%s\n", line.c_str());
    }

    void
    printRule() const
    {
        std::string line = "+";
        for (const int width : widths_)
            line += std::string(width + 2, '-') + "+";
        std::printf("%s\n", line.c_str());
    }

  private:
    std::vector<std::string> headers_;
    std::vector<int> widths_;
};

/** Banner naming the regenerated artifact. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("(stand-in datasets, modeled cluster time; see "
                "DESIGN.md for the substitution table)\n\n");
}

/** Format a modeled makespan like the paper's runtime cells. */
inline std::string
fmtTime(double ns)
{
    return formatTime(static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
}

} // namespace bench
} // namespace khuzdul

#endif // KHUZDUL_BENCH_BENCH_COMMON_HH
