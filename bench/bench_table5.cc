/**
 * @file
 * Regenerates Table 5: Khuzdul on massive graphs (cl, uk14, wdc
 * stand-ins) with the 18-node cluster, TC and 4-CC, orientation
 * preprocessing enabled for both systems like the paper.
 *
 * Expected shape (paper): the graphs exceed one node's memory, so
 * replication-based systems cannot run at all; k-Automine on 18
 * nodes beats the big single machine (AutomineIH on a 64-core,
 * 1 TB host) by 2-4.5x through cluster-wide parallelism.
 */

#include <cstdio>

#include "bench_common.hh"
#include "engines/graphpi_rep.hh"
#include "engines/single_machine.hh"
#include "graph/orientation.hh"

namespace
{

using namespace khuzdul;

} // namespace

int
main()
{
    bench::banner("Table 5: performance on large-scale graphs",
                  "Table 5 (18 nodes; orientation preprocessing; "
                  "replication-based systems out of memory)");

    bench::TablePrinter table(
        {"Graph", "App", "k-Automine(18n)", "AutomineIH(big)",
         "GraphPi(rep)", "speedup", "embeddings"},
        {5, 5, 15, 15, 12, 8, 18});
    table.printHeader();

    for (const std::string graph_name : {"cl", "uk14", "wdc"}) {
        const auto &dataset = datasets::byName(graph_name);
        // Orientation is a preprocessing step shared by both
        // systems (§7.2): it turns clique counting into DAG
        // counting with no symmetry breaking needed.
        const Graph dag = graph::orient(dataset.graph);

        for (const std::string app_name : {"TC", "4-CC"}) {
            const int k = app_name == "TC" ? 3 : 4;

            // k-Automine on the 18-node cluster, counting on the
            // DAG (divisor 1, no restrictions).
            core::EngineConfig config = bench::standInEngineConfig(18);
            config.cluster = sim::ClusterConfig::largeCluster(18);
            // Massive graphs get a smaller relative cache (§7.6:
            // 3-4% for WDC12-scale data).
            config.cacheFraction = graph_name == "wdc" ? 0.04 : 0.08;
            core::Engine engine(dag, config);
            PlanOptions options;
            options.symmetryBreaking = false;
            options.useIep = false;
            ExtendPlan plan = compileAutomine(Pattern::clique(k),
                                              options);
            plan.countDivisor = 1;
            const Count count = engine.run(plan);
            const double khuzdul_ns = engine.stats().makespanNs();

            // AutomineIH on the paper's big 64-core machine.
            engines::SingleMachineConfig big;
            big.cores = 64;
            big.memoryBytes = 1ull << 40;
            engines::SingleMachineEngine automine(
                dataset.graph,
                engines::SingleMachineStyle::PangolinLike, big);
            const auto single = automine.count(Pattern::clique(k));
            KHUZDUL_CHECK(single.count == count, "count mismatch");

            // Replicated GraphPi: per-node memory scaled with the
            // stand-ins (64 GB for ~10 GB graphs -> the massive
            // stand-ins exceed it by the same ratio).
            std::string rep_cell;
            engines::GraphPiRepConfig rep_config;
            rep_config.cluster = sim::ClusterConfig::largeCluster(18);
            rep_config.cluster.memoryBytesPerNode =
                dataset.graph.sizeBytes() / 2; // mirrors the paper's
                                               // does-not-fit ratio
            engines::GraphPiRepEngine rep(dataset.graph, rep_config);
            try {
                rep.count(Pattern::clique(k));
                rep_cell = "ran?";
            } catch (const FatalError &) {
                rep_cell = "OOM";
            }

            table.printRow(
                {graph_name, app_name, bench::fmtTime(khuzdul_ns),
                 bench::fmtTime(single.runtimeNs), rep_cell,
                 formatRatio(single.runtimeNs / khuzdul_ns),
                 formatCount(count)});
        }
        table.printRule();
    }
    std::printf("\nExpected shape: replication is impossible (OOM); "
                "k-Automine beats the big single machine ~2-4.5x "
                "(paper: 3.2x average).\n");
    return 0;
}
