/**
 * @file
 * Regenerates Figure 17: sweeping the static cache size from 1% to
 * 50% of the graph size (k-GraphPi) and reporting normalized
 * traffic, hit rate and normalized runtime.
 *
 * Expected shape (paper): traffic falls and hit rate rises with
 * cache size, with a point of diminishing returns once
 * communication is fully hidden.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

using namespace khuzdul;

} // namespace

int
main()
{
    bench::banner("Figure 17: varying the cache size",
                  "Fig 17 (k-GraphPi, 8 nodes; normalized to the "
                  "1% cache)");

    const std::vector<double> fractions = {0.01, 0.05, 0.10, 0.20,
                                           0.30, 0.50};
    const std::vector<std::pair<std::string, std::string>> workloads = {
        {"lj", "TC"},  {"lj", "4-CC"}, {"fr", "TC"},
        {"fr", "4-CC"}, {"uk", "TC"},
    };

    bench::TablePrinter table(
        {"Workload", "cache/graph", "norm. traffic", "hit rate",
         "norm. runtime"},
        {9, 11, 13, 8, 13});
    table.printHeader();

    for (const auto &[graph_name, app_name] : workloads) {
        const auto &dataset = datasets::byName(graph_name);
        const bench::App app = bench::appByName(app_name);
        double base_traffic = 0;
        double base_time = 0;
        for (const double fraction : fractions) {
            auto config = bench::cacheRegimeConfig(8);
            config.cacheFraction = fraction;
            // Small caches should still prefer hot lists; keep the
            // paper's threshold.
            auto system = engines::KhuzdulSystem::kGraphPi(
                dataset.graph, config);
            const auto cell = bench::runOnKhuzdul(*system, app);
            if (fraction == fractions.front()) {
                base_traffic =
                    static_cast<double>(cell.stats.totalBytesSent());
                base_time = cell.makespanNs;
            }
            table.printRow(
                {graph_name + "-" + app_name,
                 formatPercent(fraction),
                 formatPercent(
                     static_cast<double>(cell.stats.totalBytesSent())
                     / base_traffic),
                 formatPercent(cell.stats.staticCacheHitRate()),
                 formatPercent(cell.makespanNs / base_time)});
        }
        table.printRule();
    }
    std::printf("\nExpected shape: monotone traffic cuts and hit-rate "
                "growth; runtime flattens at the point of "
                "diminishing returns (paper: ~10%% for uk-TC).\n");
    return 0;
}
