/**
 * @file
 * Host-parallel scaling harness (BENCH_parallel.json).
 *
 * Runs the Table-2 application set (TC / 3-MC / 4-CC / 5-CC) on an
 * 18-unit simulated cluster (9 nodes x 2 sockets) while sweeping the
 * host thread count {1, 2, 4, 8}, wall-clocking each app and
 * verifying the determinism contract of the parallel unit runtime
 * (DESIGN.md §6): counts, modeled makespans and the full modeled
 * RunStats dump must be byte-identical for every thread count.
 *
 * `--check` turns the harness into a CI gate: determinism failures
 * always fail it; the speedup floor (>= 1.5x at 4 threads) is only
 * enforced when the host actually has >= 4 hardware threads, so the
 * gate is meaningful on CI runners and silent on starved boxes.
 * `--out FILE` overrides the JSON path.
 */

#include <cstring>
#include <fstream>
#include <thread>

#include "bench_common.hh"
#include "support/timer.hh"

namespace
{

using namespace khuzdul;

struct AppRow
{
    std::string app;
    Count count = 0;
    double makespanNs = 0;
    std::uint64_t wallNs = 0;
    std::string modeledJson; ///< toJson(false), the determinism key
};

struct SweepRow
{
    unsigned threads = 0;
    std::vector<AppRow> apps;
    std::uint64_t totalWallNs = 0;
};

bool failed = false;

void
fail(const std::string &why)
{
    std::fprintf(stderr, "FAIL: %s\n", why.c_str());
    failed = true;
}

SweepRow
runSweep(const Graph &g, unsigned threads)
{
    SweepRow row;
    row.threads = threads;
    core::EngineConfig config = bench::standInEngineConfig(9);
    config.hostThreads = threads;
    auto system = engines::KhuzdulSystem::kGraphPi(g, config);
    for (const bench::App &app : bench::paperApps()) {
        Timer timer;
        bench::Cell cell = bench::runOnKhuzdul(*system, app);
        AppRow r;
        r.app = app.name;
        r.count = cell.count;
        r.makespanNs = cell.makespanNs;
        r.wallNs = timer.elapsedNs();
        r.modeledJson = cell.stats.toJson(false);
        row.totalWallNs += r.wallNs;
        row.apps.push_back(std::move(r));
    }
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_parallel.json";
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
    }

    bench::banner("Host-parallel unit runtime scaling",
                  "host-side scaling of the simulation itself "
                  "(DESIGN.md 6); modeled results are thread-count "
                  "invariant by construction");

    const unsigned hw = std::thread::hardware_concurrency();
    const datasets::Dataset &mc = datasets::byName("mc");
    std::printf("workload: standin:mc, 18 execution units "
                "(9 nodes x 2 sockets); host has %u hardware "
                "threads\n\n", hw);

    std::vector<SweepRow> sweep;
    for (const unsigned threads : {1u, 2u, 4u, 8u})
        sweep.push_back(runSweep(mc.graph, threads));
    const SweepRow &reference = sweep.front();

    // --- Determinism: every modeled result matches threads=1 -----
    for (const SweepRow &row : sweep) {
        for (std::size_t a = 0; a < row.apps.size(); ++a) {
            const AppRow &r = row.apps[a];
            const AppRow &ref = reference.apps[a];
            if (r.count != ref.count)
                fail(r.app + ": count differs at "
                     + std::to_string(row.threads) + " threads");
            if (r.makespanNs != ref.makespanNs)
                fail(r.app + ": modeled makespan differs at "
                     + std::to_string(row.threads) + " threads");
            if (r.modeledJson != ref.modeledJson)
                fail(r.app + ": modeled stats dump differs at "
                     + std::to_string(row.threads) + " threads");
        }
    }

    // --- Scaling table -------------------------------------------
    bench::TablePrinter table({"threads", "TC", "3-MC", "4-CC", "5-CC",
                               "total", "speedup"},
                              {7, 9, 9, 9, 9, 9, 8});
    table.printHeader();
    const auto speedup_of = [&](const SweepRow &row) {
        return row.totalWallNs == 0
            ? 0.0
            : static_cast<double>(reference.totalWallNs)
                / static_cast<double>(row.totalWallNs);
    };
    for (const SweepRow &row : sweep) {
        std::vector<std::string> cells{std::to_string(row.threads)};
        for (const AppRow &r : row.apps)
            cells.push_back(formatTime(r.wallNs));
        cells.push_back(formatTime(row.totalWallNs));
        char speedup[32];
        std::snprintf(speedup, sizeof speedup, "%.2fx",
                      speedup_of(row));
        cells.push_back(speedup);
        table.printRow(cells);
    }
    table.printRule();

    // --- Gate ----------------------------------------------------
    double speedup_at4 = 0;
    for (const SweepRow &row : sweep)
        if (row.threads == 4)
            speedup_at4 = speedup_of(row);
    const bool gate_speedup = hw >= 4;
    if (gate_speedup) {
        if (speedup_at4 < 1.5)
            fail("speedup at 4 threads "
                 + std::to_string(speedup_at4) + "x < 1.5x");
    } else {
        std::printf("\n(speedup floor skipped: host has %u < 4 "
                    "hardware threads; determinism still "
                    "enforced)\n", hw);
    }

    std::ofstream out(out_path);
    if (!out.is_open()) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    out.precision(15);
    out << "{\n  \"workload\": \"standin:mc\",\n"
        << "  \"units\": 18,\n"
        << "  \"hardware_threads\": " << hw << ",\n"
        << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const SweepRow &row = sweep[i];
        out << (i == 0 ? "" : ",\n") << "    {\"threads\": "
            << row.threads << ", \"total_wall_ns\": "
            << row.totalWallNs << ", \"speedup_vs_1\": "
            << speedup_of(row) << ", \"apps\": [";
        for (std::size_t a = 0; a < row.apps.size(); ++a) {
            const AppRow &r = row.apps[a];
            out << (a == 0 ? "" : ", ") << "{\"app\": \"" << r.app
                << "\", \"count\": " << r.count
                << ", \"wall_ns\": " << r.wallNs
                << ", \"makespan_ns\": " << r.makespanNs << "}";
        }
        out << "]}";
    }
    out << "\n  ],\n  \"speedup_at_4_threads\": " << speedup_at4
        << ",\n  \"speedup_gate_enforced\": "
        << (gate_speedup ? "true" : "false")
        << ",\n  \"check_passed\": " << (failed ? "false" : "true")
        << "\n}\n";
    std::printf("wrote %s\n", out_path.c_str());

    if (check && failed)
        return 1;
    if (failed)
        std::fprintf(stderr, "(failures above; not gating without "
                             "--check)\n");
    return failed ? 1 : 0;
}
