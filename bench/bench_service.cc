/**
 * @file
 * Multi-query serving harness (BENCH_service.json).
 *
 * Runs a mixed 100-query workload (eight pattern shapes, cycled)
 * through one QueryService over a shared resident graph, twice:
 * serial (admission bound 1, one host thread) and concurrent
 * (admission bound 4, all host threads).  Reports throughput
 * (queries/sec) of both runs, the concurrency lift, and the
 * cross-query shared-cache hit rate the residency directory
 * observed — the operational win of serving from one GraphContext
 * instead of one engine per query.
 *
 * `--check` turns the harness into a CI gate: the service
 * determinism contract (per-query modeled dumps identical between
 * the serial and concurrent runs) always gates; the throughput
 * floor (concurrent >= serial) is only enforced when the host has
 * >= 4 hardware threads, mirroring bench_parallel_scaling.
 * `--out FILE` overrides the JSON path.
 */

#include <cstring>
#include <fstream>
#include <thread>

#include "bench_common.hh"
#include "core/service/service.hh"
#include "graph/generators.hh"
#include "pattern/planner.hh"
#include "support/timer.hh"

namespace
{

using namespace khuzdul;

constexpr std::size_t kQueries = 100;

bool failed = false;

void
fail(const std::string &why)
{
    std::fprintf(stderr, "FAIL: %s\n", why.c_str());
    failed = true;
}

/** The mixed workload: eight shapes, cycled to kQueries entries. */
std::vector<Pattern>
workload()
{
    const std::vector<Pattern> shapes = {
        Pattern::triangle(),       Pattern::pathOf(3),
        Pattern::cycleOf(4),       Pattern::diamond(),
        Pattern::tailedTriangle(), Pattern::clique(4),
        Pattern::starOf(4),        Pattern::pathOf(4)};
    std::vector<Pattern> queries;
    for (std::size_t i = 0; i < kQueries; ++i)
        queries.push_back(shapes[i % shapes.size()]);
    return queries;
}

struct ServeRow
{
    std::string mode;
    std::uint64_t wallNs = 0;
    double qps = 0;
    std::uint64_t crossHits = 0;
    std::uint64_t crossProbes = 0;
    std::vector<Count> counts;
    std::vector<std::string> modeledJson;
};

ServeRow
serveAll(const Graph &g, const core::GraphSetup &setup,
         const std::vector<ExtendPlan> &plans, unsigned in_flight,
         unsigned host_threads, const std::string &mode)
{
    ServeRow row;
    row.mode = mode;
    core::GraphContext context(g, setup);
    core::ServiceOptions options;
    options.maxInFlight = in_flight;
    options.hostThreads = host_threads;
    core::QueryService service(context, options);
    Timer timer;
    for (const ExtendPlan &plan : plans)
        service.submit(plan);
    service.wait();
    row.wallNs = timer.elapsedNs();
    row.qps = row.wallNs == 0
        ? 0.0
        : static_cast<double>(plans.size()) * 1e9
            / static_cast<double>(row.wallNs);
    row.crossHits = context.crossQueryHits();
    row.crossProbes = context.crossQueryProbes();
    for (const auto &query : service.results()) {
        if (query.failed)
            fail(mode + ": query " + std::to_string(query.id)
                 + " failed: " + query.error);
        row.counts.push_back(query.count);
        row.modeledJson.push_back(query.modeledJson);
    }
    return row;
}

double
hitRate(const ServeRow &row)
{
    return row.crossProbes == 0
        ? 0.0
        : static_cast<double>(row.crossHits)
            / static_cast<double>(row.crossProbes);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_service.json";
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
    }

    bench::banner("Multi-query service throughput",
                  "one resident GraphContext serving a mixed "
                  "workload (DESIGN.md 10); per-query modeled "
                  "results are mix-invariant by construction");

    const unsigned hw = std::thread::hardware_concurrency();
    const Graph g = gen::rmat(1'500, 9'000, 0.57, 0.19, 0.19, 11);
    core::GraphSetup setup;
    setup.cluster = sim::ClusterConfig::paperDefault(8);
    setup.cacheDegreeThreshold = 8;
    std::printf("workload: %zu queries (8 shapes, cycled) on an "
                "rmat graph (%u vertices); host has %u hardware "
                "threads\n\n",
                kQueries, g.numVertices(), hw);

    std::vector<ExtendPlan> plans;
    for (const Pattern &p : workload())
        plans.push_back(compileAutomine(p, {}));

    const ServeRow serial =
        serveAll(g, setup, plans, 1, 1, "serial");
    const ServeRow concurrent =
        serveAll(g, setup, plans, 4, 0, "concurrent");

    // --- Determinism: modeled results are mix-invariant ----------
    for (std::size_t id = 0; id < plans.size(); ++id) {
        if (concurrent.counts[id] != serial.counts[id])
            fail("query " + std::to_string(id)
                 + ": count differs between serial and concurrent");
        if (concurrent.modeledJson[id] != serial.modeledJson[id])
            fail("query " + std::to_string(id)
                 + ": modeled dump differs between serial and "
                   "concurrent");
    }
    // The directory sees the same probe stream either way; only
    // interleaving (and so the hit split) may differ.
    if (concurrent.crossProbes != serial.crossProbes)
        fail("cross-query probe totals differ between runs");

    // --- Table ---------------------------------------------------
    bench::TablePrinter table(
        {"mode", "wall", "queries/s", "xq hits", "xq probes",
         "hit rate"},
        {12, 9, 10, 10, 10, 9});
    table.printHeader();
    for (const ServeRow *row : {&serial, &concurrent}) {
        char qps[32];
        std::snprintf(qps, sizeof qps, "%.1f", row->qps);
        table.printRow({row->mode, formatTime(row->wallNs), qps,
                        formatCount(row->crossHits),
                        formatCount(row->crossProbes),
                        formatPercent(hitRate(*row))});
    }
    table.printRule();

    const double lift = serial.qps == 0
        ? 0.0 : concurrent.qps / serial.qps;
    std::printf("concurrency throughput lift: %.2fx\n", lift);

    // --- Gate ----------------------------------------------------
    const bool gate_throughput = hw >= 4;
    if (gate_throughput) {
        if (concurrent.qps < serial.qps)
            fail("concurrent throughput below serial ("
                 + std::to_string(concurrent.qps) + " < "
                 + std::to_string(serial.qps) + " queries/s)");
    } else {
        std::printf("(throughput floor skipped: host has %u < 4 "
                    "hardware threads; determinism still "
                    "enforced)\n", hw);
    }
    if (serial.crossHits == 0)
        fail("mixed workload produced no cross-query cache hits");

    std::ofstream out(out_path);
    if (!out.is_open()) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    out.precision(15);
    out << "{\n  \"queries\": " << kQueries << ",\n"
        << "  \"hardware_threads\": " << hw << ",\n  \"modes\": [\n";
    bool first = true;
    for (const ServeRow *row : {&serial, &concurrent}) {
        out << (first ? "" : ",\n") << "    {\"mode\": \""
            << row->mode << "\", \"wall_ns\": " << row->wallNs
            << ", \"queries_per_sec\": " << row->qps
            << ", \"cross_query_hits\": " << row->crossHits
            << ", \"cross_query_probes\": " << row->crossProbes
            << ", \"hit_rate\": " << hitRate(*row) << "}";
        first = false;
    }
    out << "\n  ],\n  \"throughput_lift\": " << lift
        << ",\n  \"throughput_gate_enforced\": "
        << (gate_throughput ? "true" : "false")
        << ",\n  \"check_passed\": " << (failed ? "false" : "true")
        << "\n}\n";
    std::printf("wrote %s\n", out_path.c_str());

    if (check && failed)
        return 1;
    if (failed)
        std::fprintf(stderr, "(failures above; not gating without "
                             "--check)\n");
    return failed ? 1 : 0;
}
