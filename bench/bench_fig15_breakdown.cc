/**
 * @file
 * Regenerates Figure 15: runtime breakdown of G-thinker vs.
 * k-Automine (network / compute / scheduler / cache shares) on the
 * MiCo, Patents and LiveJournal stand-ins.
 *
 * Expected shape (paper): G-thinker spends ~41% in cache
 * maintenance and ~45% in its scheduler with only ~9% compute;
 * k-Automine is compute-dominated (~59% average) except on Patents,
 * whose light extensions cannot amortize scheduling or hide
 * communication.
 */

#include <cstdio>

#include "bench_common.hh"
#include "engines/gthinker.hh"

namespace
{

using namespace khuzdul;

void
printBreakdownRow(bench::TablePrinter &table, const std::string &system,
                  const std::string &app, const std::string &graph,
                  const sim::RunStats &stats)
{
    const double compute = stats.totalComputeNs();
    const double network = stats.totalCommExposedNs();
    const double scheduler = stats.totalSchedulerNs();
    const double cache = stats.totalCacheNs();
    const double total = compute + network + scheduler + cache;
    table.printRow({system, app, graph,
                    formatPercent(compute / total),
                    formatPercent(network / total),
                    formatPercent(scheduler / total),
                    formatPercent(cache / total)});
}

} // namespace

int
main()
{
    bench::banner("Figure 15: runtime breakdown, G-thinker vs "
                  "k-Automine",
                  "Fig 15 (8 nodes, single socket like the paper's "
                  "G-thinker runs)");

    bench::TablePrinter table(
        {"System", "App", "Graph", "compute", "network", "scheduler",
         "cache"},
        {10, 5, 5, 8, 8, 9, 7});
    table.printHeader();

    const std::vector<std::pair<std::string, std::vector<std::string>>>
        workloads = {
            {"TC", {"mc", "pt", "lj"}},
            {"3-MC", {"mc", "pt", "lj"}},
            {"4-CC", {"mc", "pt", "lj"}},
            {"5-CC", {"mc", "pt"}}, // 5-CC on lj: G-thinker crashes
                                    // in the paper; we follow suit
        };

    double gt_overhead_sum = 0;
    double ka_compute_sum = 0;
    int rows = 0;

    for (const auto &[app_name, graphs] : workloads) {
        const bench::App app = bench::appByName(app_name);
        for (const std::string &graph_name : graphs) {
            const auto &dataset = datasets::byName(graph_name);

            engines::GThinkerConfig gt_config;
            gt_config.cluster = sim::ClusterConfig::singleSocket(8);
            engines::GThinkerEngine gthinker(dataset.graph, gt_config);
            sim::RunStats gt_stats;
            PlanOptions options;
            options.induced = app.induced;
            Count gt_count = 0;
            for (const Pattern &p : app.patterns) {
                const auto result = gthinker.count(p, options);
                gt_stats.accumulate(result.stats);
                gt_count += result.count;
            }
            printBreakdownRow(table, "G-thinker", app_name, graph_name,
                              gt_stats);

            auto config = bench::standInEngineConfig(8);
            config.cluster = sim::ClusterConfig::singleSocket(8);
            auto system = engines::KhuzdulSystem::kAutomine(
                dataset.graph, config);
            const auto cell = bench::runOnKhuzdul(*system, app);
            KHUZDUL_CHECK(cell.count == gt_count, "count mismatch");
            printBreakdownRow(table, "k-Automine", app_name,
                              graph_name, cell.stats);

            const double gt_total = gt_stats.totalComputeNs()
                + gt_stats.totalCommExposedNs()
                + gt_stats.totalSchedulerNs()
                + gt_stats.totalCacheNs();
            gt_overhead_sum += (gt_stats.totalSchedulerNs()
                                + gt_stats.totalCacheNs())
                / gt_total;
            const double ka_total = cell.stats.totalComputeNs()
                + cell.stats.totalCommExposedNs()
                + cell.stats.totalSchedulerNs()
                + cell.stats.totalCacheNs();
            ka_compute_sum += cell.stats.totalComputeNs() / ka_total;
            ++rows;
        }
        table.printRule();
    }
    std::printf("\nAverages: G-thinker scheduler+cache %s of runtime "
                "(paper: 86.5%%); k-Automine compute %s (paper: "
                "59.5%%).\n",
                formatPercent(gt_overhead_sum / rows).c_str(),
                formatPercent(ka_compute_sum / rows).c_str());
    return 0;
}
