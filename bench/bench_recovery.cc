/**
 * @file
 * Fault-recovery overhead harness (BENCH_recovery.json).
 *
 * Runs the Table-2 application set (TC / 3-MC / 4-CC / 5-CC) on an
 * 18-unit simulated cluster (9 nodes x 2 sockets) under fault plans
 * of increasing intensity (DESIGN.md §9) and reports the modeled
 * makespan inflation each plan causes versus the fault-free run.
 * Counts must be exact under every plan — recovery replays exhausted
 * chunks, it never drops them.
 *
 * `--check` turns the harness into a CI gate: a count mismatch
 * always fails it, and the moderate plan's makespan must stay under
 * 2x the fault-free makespan per app (the recovery ladder absorbs
 * faults; it must not double the run).  `--out FILE` overrides the
 * JSON path.
 */

#include <cstring>
#include <fstream>

#include "bench_common.hh"

namespace
{

using namespace khuzdul;

struct Intensity
{
    std::string name;
    std::vector<std::string> specs;
    bool gated = false;  ///< makespan bound enforced under --check
    double bound = 2.0;  ///< inflation ceiling when gated
};

std::vector<Intensity>
intensities()
{
    return {
        {"none", {}, false},
        {"light",
         {"drop:0-1:msg=1",
          "degrade:*-*:factor=2:from=0:until=200000"},
         false},
        // Gated plan: per-link faults sized so the ladder absorbs
        // them — a wildcard timeout plan would trivially blow the 2x
        // bound because one modeled timeout (1 ms) rivals the whole
        // fault-free makespan of the stand-in workload.
        {"moderate",
         {"drop:0-1:msg=1", "drop:2-3:msg=1", "drop:4-5:msg=2",
          "degrade:6-7:factor=3:from=0"},
         true, 2.0},
        // Gated crash plan (DESIGN.md §9): one execution unit dies
        // at mid-depth; survivors re-execute from the last
        // checkpoint and adopt its orphaned chunks.  The replay is
        // double-paid by design, so the ceiling is looser than the
        // fetch-retry ladder's — but a single crash out of 18 units
        // must never 2.5x the whole run.
        {"crash", {"crash:5:level=1:chunk=1"}, true, 2.5},
        {"heavy",
         {"drop:*-*:msg=1:count=4", "timeout:*-*:msg=6:count=3",
          "degrade:*-*:factor=4:from=0", "down:node=8:from=0"},
         false},
    };
}

struct AppRow
{
    std::string app;
    Count count = 0;
    double makespanNs = 0;
    std::uint64_t faultsInjected = 0;
    std::uint64_t chunksReplayed = 0;
    double recoveryNs = 0;
    std::uint64_t unitCrashes = 0;
    std::uint64_t chunksAdopted = 0;
};

struct PlanRow
{
    std::string intensity;
    std::vector<AppRow> apps;
};

bool failed = false;

void
fail(const std::string &why)
{
    std::fprintf(stderr, "FAIL: %s\n", why.c_str());
    failed = true;
}

PlanRow
runPlan(const Graph &g, const Intensity &intensity)
{
    PlanRow row;
    row.intensity = intensity.name;
    core::EngineConfig config = bench::standInEngineConfig(9);
    for (const std::string &spec : intensity.specs)
        config.faults.add(spec);
    auto system = engines::KhuzdulSystem::kGraphPi(g, config);
    for (const bench::App &app : bench::paperApps()) {
        bench::Cell cell = bench::runOnKhuzdul(*system, app);
        AppRow r;
        r.app = app.name;
        if (!cell.ok) {
            fail(app.name + " under plan '" + intensity.name
                 + "': " + cell.error);
            row.apps.push_back(std::move(r));
            continue;
        }
        r.count = cell.count;
        r.makespanNs = cell.makespanNs;
        r.faultsInjected = cell.stats.totalFaultsInjected();
        r.chunksReplayed = cell.stats.totalChunksReplayed();
        r.recoveryNs = cell.stats.totalRecoveryNs();
        r.unitCrashes = cell.stats.totalUnitCrashes();
        r.chunksAdopted = cell.stats.totalChunksAdopted();
        row.apps.push_back(std::move(r));
    }
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_recovery.json";
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
    }

    bench::banner("Fault-injection recovery overhead",
                  "modeled makespan inflation under deterministic "
                  "fault plans (DESIGN.md 9); counts stay exact "
                  "because exhausted chunks replay");

    const datasets::Dataset &mc = datasets::byName("mc");
    std::printf("workload: standin:mc, 18 execution units "
                "(9 nodes x 2 sockets), default retry budget\n\n");

    std::vector<PlanRow> plans;
    for (const Intensity &intensity : intensities())
        plans.push_back(runPlan(mc.graph, intensity));
    const PlanRow &baseline = plans.front();

    // --- Exactness: every plan reproduces the fault-free counts ---
    for (const PlanRow &row : plans) {
        for (std::size_t a = 0; a < row.apps.size(); ++a) {
            if (row.apps[a].count != baseline.apps[a].count)
                fail(row.apps[a].app + ": count under plan '"
                     + row.intensity + "' differs from fault-free");
        }
    }

    // --- Inflation table -----------------------------------------
    bench::TablePrinter table({"plan", "TC", "3-MC", "4-CC", "5-CC",
                               "faults", "replays"},
                              {9, 9, 9, 9, 9, 8, 8});
    table.printHeader();
    for (const PlanRow &row : plans) {
        std::vector<std::string> cells{row.intensity};
        std::uint64_t faults = 0;
        std::uint64_t replays = 0;
        for (std::size_t a = 0; a < row.apps.size(); ++a) {
            const double base = baseline.apps[a].makespanNs;
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.2fx",
                          base > 0 ? row.apps[a].makespanNs / base
                                   : 0.0);
            cells.push_back(buf);
            faults += row.apps[a].faultsInjected;
            replays += row.apps[a].chunksReplayed;
        }
        cells.push_back(std::to_string(faults));
        cells.push_back(std::to_string(replays));
        table.printRow(cells);
    }
    table.printRule();

    // --- Gates: each gated plan stays under its inflation bound --
    for (const PlanRow &row : plans) {
        bool gated = false;
        double bound = 2.0;
        for (const Intensity &intensity : intensities())
            if (intensity.name == row.intensity) {
                gated = intensity.gated;
                bound = intensity.bound;
            }
        if (!gated)
            continue;
        std::uint64_t injected = 0;
        std::uint64_t crashed = 0;
        for (std::size_t a = 0; a < row.apps.size(); ++a) {
            injected += row.apps[a].faultsInjected;
            crashed += row.apps[a].unitCrashes;
            const double base = baseline.apps[a].makespanNs;
            if (base > 0 && row.apps[a].makespanNs >= bound * base)
                fail(row.apps[a].app + ": plan '" + row.intensity
                     + "' inflates makespan "
                     + std::to_string(row.apps[a].makespanNs / base)
                     + "x >= " + std::to_string(bound) + "x");
        }
        if (injected + crashed == 0)
            fail("plan '" + row.intensity
                 + "' injected no faults; the gate is vacuous");
        if (row.intensity == "crash" && crashed == 0)
            fail("crash plan never killed a unit; the gate is "
                 "vacuous");
    }

    // --- Gate: checkpoint overhead on a fault-free run < 5% ------
    // With --checkpoint armed but no crash plan, every level-0
    // chunk close pays CostModel::checkpointNs; insurance has to
    // stay cheap relative to the run it protects.  Overhead is
    // measured where it matters — on the critical path: the armed
    // run's makespan must stay under 1.05x the unarmed one (the
    // summed per-unit charge lands mostly in parallel slack).
    struct CkptRow
    {
        std::string app;
        double makespanNs = 0;
        double overheadNs = 0;
        std::uint64_t checkpoints = 0;
    };
    std::vector<CkptRow> ckpt_rows;
    {
        core::EngineConfig config = bench::standInEngineConfig(9);
        config.checkpointEnabled = true;
        auto system = engines::KhuzdulSystem::kGraphPi(mc.graph,
                                                       config);
        std::size_t a = 0;
        for (const bench::App &app : bench::paperApps()) {
            bench::Cell cell = bench::runOnKhuzdul(*system, app);
            if (!cell.ok) {
                fail(app.name + " with --checkpoint: " + cell.error);
                ++a;
                continue;
            }
            CkptRow r;
            r.app = app.name;
            r.makespanNs = cell.makespanNs;
            r.overheadNs = cell.stats.totalCheckpointOverheadNs();
            r.checkpoints = cell.stats.totalCheckpoints();
            if (cell.count != baseline.apps[a].count)
                fail(app.name
                     + ": checkpointing changed the count");
            if (r.checkpoints == 0)
                fail(app.name + ": checkpointing armed but no "
                               "checkpoints taken (vacuous gate)");
            const double base = baseline.apps[a].makespanNs;
            if (base > 0 && r.makespanNs >= 1.05 * base)
                fail(app.name + ": checkpointing inflates makespan "
                     + std::to_string(r.makespanNs / base)
                     + "x >= 1.05x");
            ckpt_rows.push_back(std::move(r));
            ++a;
        }
    }
    std::printf("\ncheckpoint overhead (fault-free, --checkpoint):\n");
    for (std::size_t i = 0; i < ckpt_rows.size(); ++i) {
        const CkptRow &r = ckpt_rows[i];
        const double base = baseline.apps[i].makespanNs;
        std::printf("  %-6s %6llu checkpoints, makespan %.3fx "
                    "unarmed\n",
                    r.app.c_str(),
                    static_cast<unsigned long long>(r.checkpoints),
                    base > 0 ? r.makespanNs / base : 0.0);
    }

    std::ofstream out(out_path);
    if (!out.is_open()) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    out.precision(15);
    out << "{\n  \"workload\": \"standin:mc\",\n"
        << "  \"units\": 18,\n"
        << "  \"plans\": [\n";
    for (std::size_t i = 0; i < plans.size(); ++i) {
        const PlanRow &row = plans[i];
        out << (i == 0 ? "" : ",\n") << "    {\"plan\": \""
            << row.intensity << "\", \"apps\": [";
        for (std::size_t a = 0; a < row.apps.size(); ++a) {
            const AppRow &r = row.apps[a];
            const double base = baseline.apps[a].makespanNs;
            out << (a == 0 ? "" : ", ") << "{\"app\": \"" << r.app
                << "\", \"count\": " << r.count
                << ", \"makespan_ns\": " << r.makespanNs
                << ", \"inflation_vs_healthy\": "
                << (base > 0 ? r.makespanNs / base : 0.0)
                << ", \"faults_injected\": " << r.faultsInjected
                << ", \"chunks_replayed\": " << r.chunksReplayed
                << ", \"recovery_ns\": " << r.recoveryNs
                << ", \"unit_crashes\": " << r.unitCrashes
                << ", \"chunks_adopted\": " << r.chunksAdopted << "}";
        }
        out << "]}";
    }
    out << "\n  ],\n  \"checkpoint_overhead\": [";
    for (std::size_t i = 0; i < ckpt_rows.size(); ++i) {
        const CkptRow &r = ckpt_rows[i];
        out << (i == 0 ? "" : ", ") << "{\"app\": \"" << r.app
            << "\", \"checkpoints\": " << r.checkpoints
            << ", \"overhead_ns\": " << r.overheadNs
            << ", \"makespan_ns\": " << r.makespanNs << "}";
    }
    out << "],\n  \"check_passed\": "
        << (failed ? "false" : "true") << "\n}\n";
    std::printf("wrote %s\n", out_path.c_str());

    if (check && failed)
        return 1;
    if (failed)
        std::fprintf(stderr, "(failures above; not gating without "
                             "--check)\n");
    return failed ? 1 : 0;
}
