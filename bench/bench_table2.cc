/**
 * @file
 * Regenerates Table 2: k-Automine / k-GraphPi (Khuzdul, partitioned
 * graph) vs. GraphPi (replicated graph) vs. G-thinker (partitioned)
 * on the 8-node cluster, for TC / 3-MC / 4-CC / 5-CC.
 *
 * Expected shape (paper): Khuzdul systems beat G-thinker by one to
 * two orders of magnitude (average ~19x), and match or beat
 * replicated GraphPi; the win over G-thinker is largest on the
 * low-skew Patents graph where its cache/scheduler overhead cannot
 * be amortized.  G-thinker is run single-socket like the paper's
 * parenthesised numbers (its shared structures degrade on two
 * sockets).
 */

#include <cstdio>

#include "bench_common.hh"
#include "engines/graphpi_rep.hh"
#include "engines/gthinker.hh"

namespace
{

using namespace khuzdul;

struct Row
{
    std::string app;
    std::string graph;
    double kAutomineNs = 0;
    double kGraphPiNs = 0;
    double graphPiNs = 0;
    double gthinkerNs = 0;
    Count count = 0;
};

} // namespace

int
main()
{
    bench::banner("Table 2: comparison with distributed GPM systems",
                  "Table 2 (8 nodes; G-thinker single-socket like the "
                  "paper's parentheses)");

    const std::vector<std::pair<std::string, std::vector<std::string>>>
        workloads = {
            {"TC", {"mc", "pt", "lj", "uk", "tw", "fr"}},
            {"3-MC", {"mc", "pt", "lj", "uk", "tw", "fr"}},
            {"4-CC", {"mc", "pt", "lj", "uk", "tw", "fr"}},
            {"5-CC", {"mc", "pt", "lj", "fr"}},
        };

    bench::TablePrinter table(
        {"App", "Graph", "k-Automine", "k-GraphPi", "GraphPi(rep)",
         "G-thinker", "speedup vs G-t", "embeddings"},
        {5, 5, 11, 11, 12, 11, 14, 16});
    table.printHeader();

    double sum_speedup = 0;
    double max_speedup = 0;
    int speedup_rows = 0;

    for (const auto &[app_name, graphs] : workloads) {
        const bench::App app = bench::appByName(app_name);
        for (const std::string &graph_name : graphs) {
            const auto &dataset = datasets::byName(graph_name);
            Row row;
            row.app = app_name;
            row.graph = graph_name;

            auto automine = engines::KhuzdulSystem::kAutomine(
                dataset.graph, bench::standInEngineConfig(8));
            const auto a = bench::runOnKhuzdul(*automine, app);
            row.kAutomineNs = a.makespanNs;
            row.count = a.count;

            auto graphpi = engines::KhuzdulSystem::kGraphPi(
                dataset.graph, bench::standInEngineConfig(8));
            const auto g = bench::runOnKhuzdul(*graphpi, app);
            row.kGraphPiNs = g.makespanNs;

            std::string rep_cell;
            {
                engines::GraphPiRepConfig config;
                config.cluster = sim::ClusterConfig::paperDefault(8);
                // The paper's replication wall: nodes have 64 GB and
                // graphs up to 14 GB; scaled stand-ins mirror the
                // ratio, so mid-size graphs still fit.
                engines::GraphPiRepEngine engine(dataset.graph, config);
                double total = 0;
                Count count = 0;
                try {
                    PlanOptions options;
                    options.induced = app.induced;
                    for (const Pattern &p : app.patterns) {
                        const auto result = engine.count(p, options);
                        total += result.makespanNs;
                        count += result.count;
                    }
                    KHUZDUL_CHECK(count == row.count,
                                  "count mismatch GraphPi(rep)");
                    row.graphPiNs = total;
                    rep_cell = bench::fmtTime(total);
                } catch (const FatalError &) {
                    rep_cell = "OOM";
                }
            }

            // The public G-thinker crashes on the larger graphs
            // (uk/tw/fr, and lj for 5-CC) due to an internal bug
            // the paper reports; mirror those cells.
            const bool gthinker_crashes =
                graph_name == "uk" || graph_name == "tw"
                || graph_name == "fr"
                || (app_name == "5-CC" && graph_name == "lj");
            std::string gt_cell;
            if (gthinker_crashes) {
                gt_cell = "CRASHED";
            } else {
                engines::GThinkerConfig config;
                config.cluster = sim::ClusterConfig::singleSocket(8);
                engines::GThinkerEngine engine(dataset.graph, config);
                double total = 0;
                Count count = 0;
                PlanOptions options;
                options.induced = app.induced;
                for (const Pattern &p : app.patterns) {
                    const auto result = engine.count(p, options);
                    total += result.makespanNs;
                    count += result.count;
                }
                KHUZDUL_CHECK(count == row.count,
                              "count mismatch G-thinker");
                row.gthinkerNs = total;
                gt_cell = bench::fmtTime(total);
            }

            std::string speedup_cell = "-";
            if (!gthinker_crashes) {
                const double best_khuzdul =
                    std::min(row.kAutomineNs, row.kGraphPiNs);
                const double speedup = row.gthinkerNs / best_khuzdul;
                sum_speedup += speedup;
                max_speedup = std::max(max_speedup, speedup);
                ++speedup_rows;
                speedup_cell = formatRatio(speedup);
            }

            table.printRow({row.app, row.graph,
                            bench::fmtTime(row.kAutomineNs),
                            bench::fmtTime(row.kGraphPiNs), rep_cell,
                            gt_cell, speedup_cell,
                            formatCount(row.count)});
        }
        table.printRule();
    }

    std::printf("\nKhuzdul vs G-thinker speedup: average %s, max %s "
                "(paper: avg 17.7-20.3x, max 75.5x)\n",
                formatRatio(sum_speedup / speedup_rows).c_str(),
                formatRatio(max_speedup).c_str());
    return 0;
}
