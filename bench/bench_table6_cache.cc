/**
 * @file
 * Regenerates Table 6: the static data cache's effect on network
 * traffic and runtime (k-GraphPi, cache on vs. off).
 *
 * Expected shape (paper): large traffic reductions everywhere,
 * dramatic on highly skewed graphs (uk TC: >99% traffic cut, 3.7x
 * runtime); little runtime change where communication was already
 * hidden by computation (4-CC on lj).
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

using namespace khuzdul;

} // namespace

int
main()
{
    bench::banner("Table 6: analyzing the static data cache",
                  "Table 6 (k-GraphPi, 8 nodes)");

    const std::vector<std::pair<std::string, std::vector<std::string>>>
        workloads = {
            {"TC", {"pt", "lj", "uk", "fr"}},
            {"4-CC", {"pt", "lj", "fr"}},
            {"5-CC", {"pt", "lj", "fr"}},
        };

    bench::TablePrinter table(
        {"App", "Graph", "traffic(cache)", "traffic(none)",
         "time(cache)", "time(none)", "traffic cut"},
        {5, 5, 14, 13, 11, 10, 11});
    table.printHeader();

    for (const auto &[app_name, graphs] : workloads) {
        const bench::App app = bench::appByName(app_name);
        for (const std::string &graph_name : graphs) {
            const auto &dataset = datasets::byName(graph_name);

            auto with_config = bench::cacheRegimeConfig(8);
            auto system =
                engines::KhuzdulSystem::kGraphPi(dataset.graph,
                                                 with_config);
            const auto cached = bench::runOnKhuzdul(*system, app);

            auto without_config = with_config;
            without_config.cachePolicy = core::CachePolicy::None;
            auto bare = engines::KhuzdulSystem::kGraphPi(
                dataset.graph, without_config);
            const auto uncached = bench::runOnKhuzdul(*bare, app);
            KHUZDUL_CHECK(cached.count == uncached.count,
                          "cache changed counts");

            const auto t_with = cached.stats.totalBytesSent();
            const auto t_without = uncached.stats.totalBytesSent();
            table.printRow(
                {app_name, graph_name, formatBytes(t_with),
                 formatBytes(t_without),
                 bench::fmtTime(cached.makespanNs),
                 bench::fmtTime(uncached.makespanNs),
                 formatPercent(1.0
                               - static_cast<double>(t_with)
                                   / static_cast<double>(t_without))});
        }
        table.printRule();
    }
    std::printf("\nExpected shape: traffic drops everywhere, most on "
                "the skewed uk stand-in (paper: 57.7TB -> 487GB); "
                "runtime follows only where comm was exposed.\n");
    return 0;
}
