/**
 * @file
 * Regenerates Figure 10: triangle counting against the aDFS-like
 * "moving computation to data" engine on the Skitter / Orkut /
 * Friendster stand-ins.
 *
 * Expected shape (paper): k-Automine and k-GraphPi beat aDFS by up
 * to an order of magnitude even with fewer cores, because shipping
 * embeddings plus their active edge lists wastes bandwidth and
 * forfeits data reuse.
 */

#include <cstdio>

#include "bench_common.hh"
#include "engines/move_computation.hh"

namespace
{

using namespace khuzdul;

} // namespace

int
main()
{
    bench::banner("Figure 10: comparison with aDFS",
                  "Fig 10 (TC; aDFS-like moving-computation engine "
                  "on 8 nodes)");

    bench::TablePrinter table(
        {"Graph", "aDFS~", "k-Automine", "k-GraphPi", "with stealing",
         "aDFS traffic", "Khuzdul traffic", "speedup"},
        {9, 9, 11, 11, 13, 12, 15, 8});
    table.printHeader();

    const bench::App tc = bench::appByName("TC");
    for (const std::string graph_name : {"skitter", "orkut", "fr"}) {
        const auto &dataset = datasets::byName(graph_name);

        engines::MoveComputationConfig adfs_config;
        adfs_config.cluster = sim::ClusterConfig::paperDefault(8);
        engines::MoveComputationEngine adfs(dataset.graph, adfs_config);
        const auto moved = adfs.count(Pattern::triangle());

        auto automine = engines::KhuzdulSystem::kAutomine(
            dataset.graph, bench::standInEngineConfig(8));
        const auto a = bench::runOnKhuzdul(*automine, tc);
        KHUZDUL_CHECK(a.count == moved.count, "count mismatch");

        auto graphpi = engines::KhuzdulSystem::kGraphPi(
            dataset.graph, bench::standInEngineConfig(8));
        const auto g = bench::runOnKhuzdul(*graphpi, tc);

        // Same engine with the post-barrier steal pass on
        // (DESIGN.md §11): the planner only accepts strictly
        // profitable migrations, so on this healthy fabric the
        // column must never exceed plain k-GraphPi.
        core::EngineConfig steal_config = bench::standInEngineConfig(8);
        steal_config.stealEnabled = true;
        auto stealing = engines::KhuzdulSystem::kGraphPi(
            dataset.graph, steal_config);
        const auto s = bench::runOnKhuzdul(*stealing, tc);
        KHUZDUL_CHECK(s.count == moved.count, "count mismatch");
        KHUZDUL_CHECK(s.makespanNs <= g.makespanNs,
                      "stealing lost on a healthy fabric");

        const double best = std::min({a.makespanNs, g.makespanNs,
                                      s.makespanNs});
        table.printRow({graph_name, bench::fmtTime(moved.makespanNs),
                        bench::fmtTime(a.makespanNs),
                        bench::fmtTime(g.makespanNs),
                        bench::fmtTime(s.makespanNs),
                        formatBytes(moved.stats.totalBytesSent()),
                        formatBytes(a.stats.totalBytesSent()),
                        formatRatio(moved.makespanNs / best)});
    }
    table.printRule();
    std::printf("\nExpected shape: Khuzdul up to ~an order of "
                "magnitude faster than the moving-computation "
                "policy.\n");
    return 0;
}
