# Empty dependencies file for khuzdul.
# This may be replaced when dependencies are built.
