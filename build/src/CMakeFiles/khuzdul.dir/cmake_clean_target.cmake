file(REMOVE_RECURSE
  "libkhuzdul.a"
)
