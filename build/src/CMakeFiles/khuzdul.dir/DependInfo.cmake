
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/fsm.cc" "src/CMakeFiles/khuzdul.dir/apps/fsm.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/apps/fsm.cc.o.d"
  "/root/repo/src/apps/gpm_apps.cc" "src/CMakeFiles/khuzdul.dir/apps/gpm_apps.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/apps/gpm_apps.cc.o.d"
  "/root/repo/src/core/cache.cc" "src/CMakeFiles/khuzdul.dir/core/cache.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/core/cache.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/khuzdul.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/core/engine.cc.o.d"
  "/root/repo/src/core/intersect.cc" "src/CMakeFiles/khuzdul.dir/core/intersect.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/core/intersect.cc.o.d"
  "/root/repo/src/core/plan_runner.cc" "src/CMakeFiles/khuzdul.dir/core/plan_runner.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/core/plan_runner.cc.o.d"
  "/root/repo/src/engines/graphpi_rep.cc" "src/CMakeFiles/khuzdul.dir/engines/graphpi_rep.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/engines/graphpi_rep.cc.o.d"
  "/root/repo/src/engines/gthinker.cc" "src/CMakeFiles/khuzdul.dir/engines/gthinker.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/engines/gthinker.cc.o.d"
  "/root/repo/src/engines/khuzdul_system.cc" "src/CMakeFiles/khuzdul.dir/engines/khuzdul_system.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/engines/khuzdul_system.cc.o.d"
  "/root/repo/src/engines/move_computation.cc" "src/CMakeFiles/khuzdul.dir/engines/move_computation.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/engines/move_computation.cc.o.d"
  "/root/repo/src/engines/pattern_oblivious.cc" "src/CMakeFiles/khuzdul.dir/engines/pattern_oblivious.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/engines/pattern_oblivious.cc.o.d"
  "/root/repo/src/engines/single_machine.cc" "src/CMakeFiles/khuzdul.dir/engines/single_machine.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/engines/single_machine.cc.o.d"
  "/root/repo/src/graph/builder.cc" "src/CMakeFiles/khuzdul.dir/graph/builder.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/graph/builder.cc.o.d"
  "/root/repo/src/graph/datasets.cc" "src/CMakeFiles/khuzdul.dir/graph/datasets.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/graph/datasets.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/khuzdul.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/khuzdul.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/khuzdul.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/orientation.cc" "src/CMakeFiles/khuzdul.dir/graph/orientation.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/graph/orientation.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/CMakeFiles/khuzdul.dir/graph/partition.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/graph/partition.cc.o.d"
  "/root/repo/src/pattern/bruteforce.cc" "src/CMakeFiles/khuzdul.dir/pattern/bruteforce.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/pattern/bruteforce.cc.o.d"
  "/root/repo/src/pattern/generation.cc" "src/CMakeFiles/khuzdul.dir/pattern/generation.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/pattern/generation.cc.o.d"
  "/root/repo/src/pattern/isomorphism.cc" "src/CMakeFiles/khuzdul.dir/pattern/isomorphism.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/pattern/isomorphism.cc.o.d"
  "/root/repo/src/pattern/pattern.cc" "src/CMakeFiles/khuzdul.dir/pattern/pattern.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/pattern/pattern.cc.o.d"
  "/root/repo/src/pattern/planner.cc" "src/CMakeFiles/khuzdul.dir/pattern/planner.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/pattern/planner.cc.o.d"
  "/root/repo/src/sim/fabric.cc" "src/CMakeFiles/khuzdul.dir/sim/fabric.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/sim/fabric.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/khuzdul.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/sim/stats.cc.o.d"
  "/root/repo/src/support/check.cc" "src/CMakeFiles/khuzdul.dir/support/check.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/support/check.cc.o.d"
  "/root/repo/src/support/format.cc" "src/CMakeFiles/khuzdul.dir/support/format.cc.o" "gcc" "src/CMakeFiles/khuzdul.dir/support/format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
