# Empty compiler generated dependencies file for khuzdul.
# This may be replaced when dependencies are built.
