file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_chunksize.dir/bench_fig18_chunksize.cc.o"
  "CMakeFiles/bench_fig18_chunksize.dir/bench_fig18_chunksize.cc.o.d"
  "bench_fig18_chunksize"
  "bench_fig18_chunksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_chunksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
