# Empty dependencies file for bench_fig19_netutil.
# This may be replaced when dependencies are built.
