file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_netutil.dir/bench_fig19_netutil.cc.o"
  "CMakeFiles/bench_fig19_netutil.dir/bench_fig19_netutil.cc.o.d"
  "bench_fig19_netutil"
  "bench_fig19_netutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_netutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
