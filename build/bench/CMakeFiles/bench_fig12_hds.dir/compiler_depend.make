# Empty compiler generated dependencies file for bench_fig12_hds.
# This may be replaced when dependencies are built.
