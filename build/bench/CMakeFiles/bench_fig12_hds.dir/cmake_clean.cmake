file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_hds.dir/bench_fig12_hds.cc.o"
  "CMakeFiles/bench_fig12_hds.dir/bench_fig12_hds.cc.o.d"
  "bench_fig12_hds"
  "bench_fig12_hds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_hds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
