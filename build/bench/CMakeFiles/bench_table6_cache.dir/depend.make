# Empty dependencies file for bench_table6_cache.
# This may be replaced when dependencies are built.
