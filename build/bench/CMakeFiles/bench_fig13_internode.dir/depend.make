# Empty dependencies file for bench_fig13_internode.
# This may be replaced when dependencies are built.
