file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_internode.dir/bench_fig13_internode.cc.o"
  "CMakeFiles/bench_fig13_internode.dir/bench_fig13_internode.cc.o.d"
  "bench_fig13_internode"
  "bench_fig13_internode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_internode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
