file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_cachesize.dir/bench_fig17_cachesize.cc.o"
  "CMakeFiles/bench_fig17_cachesize.dir/bench_fig17_cachesize.cc.o.d"
  "bench_fig17_cachesize"
  "bench_fig17_cachesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_cachesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
