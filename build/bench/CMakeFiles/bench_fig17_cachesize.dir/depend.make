# Empty dependencies file for bench_fig17_cachesize.
# This may be replaced when dependencies are built.
