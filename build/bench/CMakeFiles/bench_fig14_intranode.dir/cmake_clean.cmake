file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_intranode.dir/bench_fig14_intranode.cc.o"
  "CMakeFiles/bench_fig14_intranode.dir/bench_fig14_intranode.cc.o.d"
  "bench_fig14_intranode"
  "bench_fig14_intranode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_intranode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
