file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_numa.dir/bench_table7_numa.cc.o"
  "CMakeFiles/bench_table7_numa.dir/bench_table7_numa.cc.o.d"
  "bench_table7_numa"
  "bench_table7_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
