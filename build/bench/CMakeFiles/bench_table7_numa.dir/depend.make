# Empty dependencies file for bench_table7_numa.
# This may be replaced when dependencies are built.
