file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_vcs.dir/bench_fig11_vcs.cc.o"
  "CMakeFiles/bench_fig11_vcs.dir/bench_fig11_vcs.cc.o.d"
  "bench_fig11_vcs"
  "bench_fig11_vcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_vcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
