file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_adfs.dir/bench_fig10_adfs.cc.o"
  "CMakeFiles/bench_fig10_adfs.dir/bench_fig10_adfs.cc.o.d"
  "bench_fig10_adfs"
  "bench_fig10_adfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_adfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
