# Empty dependencies file for bench_fig10_adfs.
# This may be replaced when dependencies are built.
