# Empty compiler generated dependencies file for core_primitives_test.
# This may be replaced when dependencies are built.
