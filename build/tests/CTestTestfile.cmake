# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/pattern_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/runner_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/engines_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_primitives_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
