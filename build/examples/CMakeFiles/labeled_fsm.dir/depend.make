# Empty dependencies file for labeled_fsm.
# This may be replaced when dependencies are built.
