file(REMOVE_RECURSE
  "CMakeFiles/labeled_fsm.dir/labeled_fsm.cpp.o"
  "CMakeFiles/labeled_fsm.dir/labeled_fsm.cpp.o.d"
  "labeled_fsm"
  "labeled_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labeled_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
