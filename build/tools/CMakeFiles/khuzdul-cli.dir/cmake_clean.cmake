file(REMOVE_RECURSE
  "CMakeFiles/khuzdul-cli.dir/khuzdul_cli.cc.o"
  "CMakeFiles/khuzdul-cli.dir/khuzdul_cli.cc.o.d"
  "khuzdul"
  "khuzdul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/khuzdul-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
