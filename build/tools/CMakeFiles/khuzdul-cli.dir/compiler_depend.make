# Empty compiler generated dependencies file for khuzdul-cli.
# This may be replaced when dependencies are built.
