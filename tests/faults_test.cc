/**
 * @file
 * Fault-injection and recovery tests (DESIGN.md §9): the --fault
 * spec grammar, FaultSession trigger semantics on deterministic
 * ledger state, and the engine-side recovery ladder — retry with
 * modeled backoff, chunk-granular replay, local CSR reconstruction
 * and replica rerouting.  Counts must stay exact under every plan.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/engine.hh"
#include "graph/generators.hh"
#include "pattern/bruteforce.hh"
#include "pattern/planner.hh"
#include "sim/faults.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace
{

Graph
testGraph()
{
    return gen::rmat(300, 2000, 0.55, 0.2, 0.2, 2024);
}

core::EngineConfig
faultConfig(NodeId nodes = 4)
{
    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(nodes);
    config.chunkBytes = 64 << 10;
    config.cacheDegreeThreshold = 8;
    return config;
}

// ----------------------------------------------------------------
// Spec grammar.
// ----------------------------------------------------------------

TEST(FaultPlan, ParsesEveryKind)
{
    sim::FaultPlan plan;
    plan.add("drop:0-1:msg=3");
    plan.add("timeout:*-2:msg=1:count=5");
    plan.add("degrade:*-*:factor=2.5:from=1000:until=9000");
    plan.add("down:node=3:from=500");
    ASSERT_EQ(plan.specs().size(), 4u);
    EXPECT_FALSE(plan.empty());

    const auto &drop = plan.specs()[0];
    EXPECT_EQ(drop.kind, sim::FaultKind::Drop);
    EXPECT_EQ(drop.src, 0u);
    EXPECT_EQ(drop.dst, 1u);
    EXPECT_EQ(drop.firstMsg, 3u);
    EXPECT_EQ(drop.count, 1u);

    const auto &timeout = plan.specs()[1];
    EXPECT_EQ(timeout.kind, sim::FaultKind::Timeout);
    EXPECT_EQ(timeout.src, sim::kAnyNode);
    EXPECT_EQ(timeout.dst, 2u);
    EXPECT_EQ(timeout.count, 5u);

    const auto &degrade = plan.specs()[2];
    EXPECT_EQ(degrade.kind, sim::FaultKind::Degrade);
    EXPECT_DOUBLE_EQ(degrade.factor, 2.5);
    EXPECT_DOUBLE_EQ(degrade.fromNs, 1000.0);
    EXPECT_DOUBLE_EQ(degrade.untilNs, 9000.0);

    const auto &down = plan.specs()[3];
    EXPECT_EQ(down.kind, sim::FaultKind::NodeDown);
    EXPECT_EQ(down.node, 3u);
    EXPECT_DOUBLE_EQ(down.fromNs, 500.0);
    EXPECT_DOUBLE_EQ(down.untilNs, sim::kForeverNs);
}

TEST(FaultPlan, ParsesCrashSpecs)
{
    sim::FaultPlan plan;
    plan.add("crash:5:level=2:chunk=3");
    plan.add("crash:0:level=0");
    ASSERT_EQ(plan.specs().size(), 2u);
    EXPECT_TRUE(plan.hasCrash());

    const auto &full = plan.specs()[0];
    EXPECT_EQ(full.kind, sim::FaultKind::Crash);
    EXPECT_EQ(full.unit, 5u);
    EXPECT_EQ(full.level, 2);
    EXPECT_EQ(full.chunk, 3u);

    const auto &defaulted = plan.specs()[1];
    EXPECT_EQ(defaulted.unit, 0u);
    EXPECT_EQ(defaulted.level, 0);
    EXPECT_EQ(defaulted.chunk, 1u); // chunk defaults to the first

    sim::FaultPlan no_crash;
    no_crash.add("drop:0-1:msg=1");
    EXPECT_FALSE(no_crash.hasCrash());
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    const char *bad[] = {
        "",                          // empty
        "explode:0-1:msg=1",         // unknown kind
        "drop:0-1",                  // missing msg
        "drop:01:msg=1",             // malformed link
        "drop:x-y:msg=1",            // non-numeric endpoint
        "timeout:0-1:msg=0",         // ordinals are 1-based
        "degrade:0-1:factor=0.5",    // factor < 1 would speed links up
        "degrade:0-1",               // missing factor
        "down:from=10",              // missing node
        "drop:0-1:msg=1:bogus=3",    // unknown field
        "crash:3",                   // missing level
        "crash:level=1",             // missing unit
        "crash:3:level=1:chunk=0",   // chunk ordinals are 1-based
    };
    for (const char *spec : bad) {
        sim::FaultPlan plan;
        EXPECT_THROW(plan.add(spec), FatalError) << spec;
    }
}

TEST(FaultPlan, RejectsZeroCount)
{
    // count=0 would parse as a spec that can never fire; reject it
    // loudly instead of silently running fault-free.
    sim::FaultPlan plan;
    EXPECT_THROW(plan.add("drop:0-1:msg=1:count=0"), FatalError);
    EXPECT_THROW(plan.add("timeout:*-*:msg=2:count=0"), FatalError);
}

TEST(FaultPlan, RejectsSelfLinks)
{
    // Local accesses bypass the fabric, so a 2-2 link spec can
    // never match a transfer.
    sim::FaultPlan plan;
    EXPECT_THROW(plan.add("drop:2-2:msg=1"), FatalError);
    EXPECT_THROW(plan.add("timeout:0-0:msg=1"), FatalError);
    // Wildcards may still cover loop-free pairs.
    plan.add("drop:*-2:msg=1");
    plan.add("drop:2-*:msg=1");
    EXPECT_EQ(plan.specs().size(), 2u);
}

TEST(FaultPlan, ValidateRejectsOutOfRangeIds)
{
    const auto reject = [](const char *spec) {
        sim::FaultPlan plan;
        plan.add(spec);
        EXPECT_THROW(plan.validate(4, 8), FatalError) << spec;
    };
    reject("crash:8:level=0");          // units are 0..7
    reject("down:node=4:from=0");       // nodes are 0..3
    reject("drop:4-1:msg=1");           // src out of range
    reject("timeout:1-9:msg=1");        // dst out of range

    // In-range ids (and wildcards) pass.
    sim::FaultPlan plan;
    plan.add("crash:7:level=1");
    plan.add("down:node=3:from=0");
    plan.add("drop:*-3:msg=1");
    plan.validate(4, 8);
}

// ----------------------------------------------------------------
// FaultSession trigger semantics.
// ----------------------------------------------------------------

TEST(FaultSession, DropFiresOnExactMessageOrdinal)
{
    sim::FaultPlan plan;
    plan.add("drop:0-1:msg=2:count=2");
    sim::FaultSession session(plan, 4);
    // Message 1 on link 0->1 passes, 2 and 3 drop, 4 passes again.
    EXPECT_FALSE(session.onTransfer(0, 1, 100, 1e6).faulted);
    const auto hit = session.onTransfer(0, 1, 100, 1e6);
    EXPECT_TRUE(hit.faulted);
    EXPECT_EQ(hit.kind, sim::FaultKind::Drop);
    // A drop wastes the transfer itself: the base cost is charged.
    EXPECT_DOUBLE_EQ(hit.chargeNs, 100.0);
    EXPECT_TRUE(session.onTransfer(0, 1, 100, 1e6).faulted);
    EXPECT_FALSE(session.onTransfer(0, 1, 100, 1e6).faulted);
    // Other links keep independent ordinals.
    EXPECT_FALSE(session.onTransfer(1, 0, 100, 1e6).faulted);
}

TEST(FaultSession, TimeoutChargesTheConfiguredTimeout)
{
    sim::FaultPlan plan;
    plan.add("timeout:*-*:msg=1");
    sim::FaultSession session(plan, 2);
    const auto hit = session.onTransfer(0, 1, 100, 5e5);
    EXPECT_TRUE(hit.faulted);
    EXPECT_EQ(hit.kind, sim::FaultKind::Timeout);
    EXPECT_DOUBLE_EQ(hit.chargeNs, 5e5);
}

TEST(FaultSession, DegradeMultipliesInsideItsWindow)
{
    sim::FaultPlan plan;
    plan.add("degrade:0-1:factor=3:from=0:until=250");
    sim::FaultSession session(plan, 2);
    // Inside the window: not a fault, but 3x the base charge.
    auto o = session.onTransfer(0, 1, 100, 1e6);
    EXPECT_FALSE(o.faulted);
    EXPECT_TRUE(o.degraded);
    EXPECT_DOUBLE_EQ(o.chargeNs, 300.0);
    // The charge advanced the modeled clock to 300 >= 250: the
    // window has closed and transfers price normally again.
    EXPECT_DOUBLE_EQ(session.clockNs(), 300.0);
    o = session.onTransfer(0, 1, 100, 1e6);
    EXPECT_FALSE(o.degraded);
    EXPECT_DOUBLE_EQ(o.chargeNs, 100.0);
}

TEST(FaultSession, NodeDownDominatesAndHonorsWindows)
{
    sim::FaultPlan plan;
    plan.add("down:node=1:from=0:until=1000");
    plan.add("down:node=2:from=5000");
    sim::FaultSession session(plan, 4);
    // Transfers into a down node fault regardless of link specs.
    EXPECT_TRUE(session.onTransfer(0, 1, 10, 400).faulted);
    // Windowed downtime is never "permanent" for rerouting.
    EXPECT_FALSE(session.nodePermanentlyDown(1));
    // The second spec has not opened yet at clock 400.
    EXPECT_FALSE(session.nodePermanentlyDown(2));
    session.advance(5000);
    EXPECT_TRUE(session.nodePermanentlyDown(2));
    EXPECT_TRUE(session.onTransfer(0, 2, 10, 400).faulted);
    // Node 1's window has closed meanwhile.
    EXPECT_FALSE(session.onTransfer(0, 1, 10, 400).faulted);
}

TEST(FaultSession, ResetRestartsOrdinalsAndClock)
{
    sim::FaultPlan plan;
    plan.add("drop:0-1:msg=1");
    sim::FaultSession session(plan, 2);
    EXPECT_TRUE(session.onTransfer(0, 1, 100, 1e6).faulted);
    EXPECT_FALSE(session.onTransfer(0, 1, 100, 1e6).faulted);
    session.reset();
    EXPECT_DOUBLE_EQ(session.clockNs(), 0.0);
    EXPECT_TRUE(session.onTransfer(0, 1, 100, 1e6).faulted);
}

// ----------------------------------------------------------------
// Engine recovery: counts stay exact, recovery is observable.
// ----------------------------------------------------------------

TEST(FaultRecovery, CountsAreExactUnderEveryFaultKind)
{
    const Graph g = testGraph();
    const auto plan = compileAutomine(Pattern::clique(4), {});
    const Count expected =
        brute::countEmbeddings(g, Pattern::clique(4), false);
    const char *specs[] = {
        "drop:*-*:msg=1:count=2",
        "timeout:0-1:msg=1:count=4",
        "degrade:*-*:factor=8:from=0",
        "down:node=3:from=0",
    };
    for (const char *spec : specs) {
        auto config = faultConfig();
        config.faults.add(spec);
        core::Engine engine(g, config);
        EXPECT_EQ(engine.run(plan), expected) << spec;
    }
}

TEST(FaultRecovery, RetriesAreCountedAndCharged)
{
    const Graph g = testGraph();
    auto config = faultConfig();
    config.faults.add("drop:*-*:msg=1:count=2");
    core::Engine engine(g, config);
    engine.run(compileAutomine(Pattern::triangle(), {}));
    const auto &stats = engine.stats();
    EXPECT_GT(stats.totalFaultsInjected(), 0u);
    EXPECT_GT(stats.totalFaultsRecovered(), 0u);
    EXPECT_GT(stats.totalRecoveryNs(), 0.0);
    // Recovered batches surface in the trace with matching tallies.
    const auto &trace = engine.traceCounts();
    EXPECT_EQ(trace.count(sim::PhaseEvent::FaultInjected),
              stats.totalFaultsInjected());
    EXPECT_EQ(trace.count(sim::PhaseEvent::FetchRecovered),
              stats.totalFaultsRecovered());
    // A faulted run costs more modeled time than a healthy one.
    core::Engine healthy(g, faultConfig());
    healthy.run(compileAutomine(Pattern::triangle(), {}));
    EXPECT_GT(stats.makespanNs(), healthy.stats().makespanNs());
    EXPECT_EQ(healthy.stats().totalFaultsInjected(), 0u);
}

TEST(FaultRecovery, ExhaustedChunksAreReplayedNeverDropped)
{
    // count=4 beats the default 3 retries, so at least one fetch
    // phase exhausts its batch and the chunk must replay — and the
    // count still has to be exact.
    const Graph g = testGraph();
    const auto plan = compileAutomine(Pattern::triangle(), {});
    const Count expected =
        brute::countEmbeddings(g, Pattern::triangle(), false);
    auto config = faultConfig();
    config.faults.add("drop:*-*:msg=1:count=4");
    core::Engine engine(g, config);
    EXPECT_EQ(engine.run(plan), expected);
    const auto &stats = engine.stats();
    EXPECT_GT(stats.totalChunksReplayed(), 0u);
    EXPECT_EQ(engine.traceCounts().count(sim::PhaseEvent::ChunkReplayed),
              stats.totalChunksReplayed());
}

TEST(FaultRecovery, RetryBudgetIsConfigurable)
{
    // With a deeper retry budget the same plan recovers without ever
    // exhausting a batch, so no chunk replays.
    const Graph g = testGraph();
    auto config = faultConfig();
    config.faults.add("drop:*-*:msg=1:count=4");
    config.faults.maxRetries = 6;
    core::Engine engine(g, config);
    engine.run(compileAutomine(Pattern::triangle(), {}));
    EXPECT_EQ(engine.stats().totalChunksReplayed(), 0u);
    EXPECT_GT(engine.stats().totalFaultsRecovered(), 0u);
}

TEST(FaultRecovery, DownNodeReroutesToLiveReplica)
{
    const Graph g = testGraph();
    const auto plan = compileAutomine(Pattern::clique(4), {});
    const Count expected =
        brute::countEmbeddings(g, Pattern::clique(4), false);
    auto config = faultConfig();
    config.faults.add("down:node=2:from=0");
    core::Engine engine(g, config);
    EXPECT_EQ(engine.run(plan), expected);
    const auto &stats = engine.stats();
    std::uint64_t rerouted = 0;
    std::uint64_t reconstructed = 0;
    for (const auto &node : stats.nodes) {
        rerouted += node.reroutedFetches;
        reconstructed += node.reconstructedLists;
    }
    // The ladder was exercised: every fetch that would have gone to
    // node 2 either rebuilt locally or rerouted to a replica.
    EXPECT_GT(rerouted + reconstructed, 0u);
}

TEST(FaultRecovery, AllReplicasDownIsAHardFault)
{
    const Graph g = testGraph();
    auto config = faultConfig(2);
    config.faults.add("down:node=0:from=0");
    config.faults.add("down:node=1:from=0");
    core::Engine engine(g, config);
    EXPECT_THROW(engine.run(compileAutomine(Pattern::triangle(), {})),
                 sim::FabricFault);
}

TEST(FaultRecovery, ResetStatsRestartsTheFaultSessions)
{
    // Two identical runs separated by resetStats must price
    // identically: the sessions' ordinals and clocks restart with
    // the ledger.  The cache is disabled because it (deliberately)
    // persists across resetStats and would warm the second run.
    const Graph g = testGraph();
    const auto plan = compileAutomine(Pattern::triangle(), {});
    auto config = faultConfig();
    config.cachePolicy = core::CachePolicy::None;
    config.faults.add("drop:*-*:msg=1:count=2");
    core::Engine engine(g, config);
    engine.run(plan);
    const std::string first = engine.stats().toJson(false);
    engine.resetStats();
    engine.run(plan);
    EXPECT_EQ(engine.stats().toJson(false), first);
}

// ----------------------------------------------------------------
// Crash recovery (DESIGN.md §9): checkpoints, adoption, resilience.
// ----------------------------------------------------------------

TEST(CrashRecovery, CountsExactAndAdoptionObservable)
{
    const Graph g = testGraph();
    const auto plan = compileAutomine(Pattern::triangle(), {});
    const Count expected =
        brute::countEmbeddings(g, Pattern::triangle(), false);
    auto config = faultConfig();
    config.faults.add("crash:1:level=1:chunk=1");
    core::Engine engine(g, config);
    EXPECT_EQ(engine.run(plan), expected);

    const auto &stats = engine.stats();
    EXPECT_EQ(stats.totalUnitCrashes(), 1u);
    EXPECT_GT(stats.totalCheckpoints(), 0u);
    EXPECT_GT(stats.totalChunksAdopted(), 0u);
    EXPECT_GT(stats.totalCheckpointOverheadNs(), 0.0);
    EXPECT_GT(stats.totalAdoptionNs(), 0.0);
    // The dead unit keeps nothing past its snapshot; survivors pay
    // for what they adopted, so the run costs more than healthy.
    core::Engine healthy(g, faultConfig());
    healthy.run(plan);
    EXPECT_GT(stats.makespanNs(), healthy.stats().makespanNs());
    // Trace tallies mirror the stats ledger exactly.
    const auto &trace = engine.traceCounts();
    EXPECT_EQ(trace.count(sim::PhaseEvent::UnitCrashed), 1u);
    EXPECT_EQ(trace.count(sim::PhaseEvent::ChunkAdopted),
              stats.totalChunksAdopted());
    EXPECT_EQ(trace.count(sim::PhaseEvent::Checkpoint),
              stats.totalCheckpoints());
    // And the JSON block reports the same story.
    const std::string json = engine.stats().toJson(false);
    EXPECT_NE(json.find("\"recovery\": {\"checkpoints\": "),
              std::string::npos);
    EXPECT_EQ(json.find("\"crashes\": 0"), std::string::npos);
}

TEST(CrashRecovery, CrashWithStealStaysExact)
{
    const Graph g = testGraph();
    const auto plan = compileAutomine(Pattern::clique(4), {});
    const Count expected =
        brute::countEmbeddings(g, Pattern::clique(4), false);
    auto config = faultConfig();
    config.faults.add("crash:2:level=1:chunk=1");
    config.stealEnabled = true;
    config.stealBacklogThresholdNs = 2.0e3;
    core::Engine engine(g, config);
    EXPECT_EQ(engine.run(plan), expected);
    EXPECT_EQ(engine.stats().totalUnitCrashes(), 1u);
}

TEST(CrashRecovery, ResetStatsRestartsCrashState)
{
    const Graph g = testGraph();
    const auto plan = compileAutomine(Pattern::triangle(), {});
    auto config = faultConfig();
    config.cachePolicy = core::CachePolicy::None;
    config.faults.add("crash:0:level=0:chunk=1");
    core::Engine engine(g, config);
    engine.run(plan);
    const std::string first = engine.stats().toJson(false);
    engine.resetStats();
    engine.run(plan);
    EXPECT_EQ(engine.stats().toJson(false), first);
}

TEST(CrashRecovery, NoSurvivorsIsAHardFault)
{
    // Every unit of a 1-node cluster crashes at its first chunk:
    // nobody is left to adopt, which is unrecoverable by design.
    const Graph g = testGraph();
    auto config = faultConfig(1);
    const unsigned units = config.cluster.socketsPerNode;
    for (unsigned u = 0; u < units; ++u)
        config.faults.add("crash:" + std::to_string(u)
                          + ":level=0:chunk=1");
    core::Engine engine(g, config);
    EXPECT_THROW(engine.run(compileAutomine(Pattern::triangle(), {})),
                 sim::FabricFault);
}

TEST(CrashRecovery, OutOfRangeCrashUnitRejectedAtConstruction)
{
    const Graph g = testGraph();
    auto config = faultConfig(); // 4 nodes x 2 sockets = 8 units
    config.faults.add("crash:8:level=0");
    EXPECT_THROW(core::Engine(g, config), FatalError);
}

TEST(CrashRecovery, CheckpointsChargeOnlyWhenArmed)
{
    const Graph g = testGraph();
    const auto plan = compileAutomine(Pattern::triangle(), {});
    core::Engine off(g, faultConfig());
    const Count expected = off.run(plan);
    const double off_makespan = off.stats().makespanNs();
    EXPECT_EQ(off.stats().totalCheckpoints(), 0u);
    EXPECT_DOUBLE_EQ(off.stats().totalCheckpointOverheadNs(), 0.0);

    auto config = faultConfig();
    config.checkpointEnabled = true;
    core::Engine on(g, config);
    EXPECT_EQ(on.run(plan), expected);
    EXPECT_GT(on.stats().totalCheckpoints(), 0u);
    EXPECT_GT(on.stats().totalCheckpointOverheadNs(), 0.0);
    EXPECT_GT(on.stats().makespanNs(), off_makespan);
}

TEST(CrashRecovery, DeadlineThrowsTypedError)
{
    const Graph g = testGraph();
    auto config = faultConfig();
    config.deadlineNs = 1.0; // far below any real modeled run
    core::Engine engine(g, config);
    EXPECT_THROW(engine.run(compileAutomine(Pattern::triangle(), {})),
                 sim::DeadlineExceeded);

    // A generous deadline never fires and never perturbs the run.
    auto relaxed = faultConfig();
    relaxed.deadlineNs = 1.0e18;
    core::Engine slack(g, relaxed);
    core::Engine plain(g, faultConfig());
    const auto plan = compileAutomine(Pattern::triangle(), {});
    EXPECT_EQ(slack.run(plan), plain.run(plan));
    EXPECT_EQ(slack.stats().toJson(false),
              plain.stats().toJson(false));
}

TEST(FaultRecovery, FaultsBlockAppearsInJson)
{
    const Graph g = testGraph();
    auto config = faultConfig();
    config.faults.add("timeout:*-*:msg=1:count=2");
    core::Engine engine(g, config);
    engine.run(compileAutomine(Pattern::triangle(), {}));
    const std::string json = engine.stats().toJson(false);
    EXPECT_NE(json.find("\"faults\": {\"injected\": "),
              std::string::npos);
    EXPECT_NE(json.find("\"chunks_replayed\": "), std::string::npos);
    EXPECT_NE(json.find("\"recovery_ns\": "), std::string::npos);
    EXPECT_EQ(json.find("\"injected\": 0"), std::string::npos);
}

} // namespace
} // namespace khuzdul
