/**
 * @file
 * Unit tests for the simulation substrate: cost model arithmetic,
 * cluster configuration, the fabric's traffic ledger and fault
 * injection, and RunStats aggregation.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hh"
#include "graph/partition.hh"
#include "sim/cluster.hh"
#include "sim/cost_model.hh"
#include "sim/fabric.hh"
#include "sim/stats.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace
{

TEST(CostModel, TransferTimeScalesWithBytes)
{
    sim::CostModel cost;
    const double small = cost.transferNs(1024, 1);
    const double large = cost.transferNs(1024 * 1024, 1);
    EXPECT_GT(large, small);
    EXPECT_GT(small, cost.netLatencyNs); // latency floor
}

TEST(CostModel, NumaTransferIsCheaperThanNetwork)
{
    sim::CostModel cost;
    EXPECT_LT(cost.numaTransferNs(64 << 10, 16),
              cost.transferNs(64 << 10, 16));
}

TEST(ClusterConfig, CoreAccounting)
{
    sim::ClusterConfig config = sim::ClusterConfig::paperDefault();
    EXPECT_EQ(config.coresPerNode(), 16u);
    EXPECT_EQ(config.computeCoresPerNode(), 12u);
    sim::ClusterConfig large = sim::ClusterConfig::largeCluster();
    EXPECT_EQ(large.numNodes, 18u);
    EXPECT_EQ(large.coresPerNode(), 32u);
}

TEST(ClusterConfig, RejectsAllCommCores)
{
    sim::ClusterConfig config;
    config.socketsPerNode = 1;
    config.coresPerSocket = 2;
    config.commCoresPerNode = 2;
    EXPECT_THROW(config.computeCoresPerNode(), FatalError);
}

TEST(Fabric, LedgerTracksPerLinkTraffic)
{
    const Graph g = gen::cycle(64);
    const Partition partition(g, 4, 1);
    sim::CostModel cost;
    sim::Fabric fabric(partition, cost);

    fabric.recordTransfer(0, 1, 1000, 2);
    fabric.recordTransfer(0, 1, 500, 1);
    fabric.recordTransfer(2, 3, 99, 1);
    EXPECT_EQ(fabric.linkBytes(0, 1), 1500u);
    EXPECT_EQ(fabric.linkMessages(0, 1), 2u);
    EXPECT_EQ(fabric.linkBytes(1, 0), 0u);
    EXPECT_EQ(fabric.totalBytes(), 1599u);
}

TEST(Fabric, SameNodeTransfersAreNotNetworkTraffic)
{
    const Graph g = gen::cycle(64);
    const Partition partition(g, 2, 2);
    sim::CostModel cost;
    sim::Fabric fabric(partition, cost);
    const double numa_time = fabric.recordTransfer(1, 1, 4096, 4);
    EXPECT_EQ(fabric.totalBytes(), 0u);
    EXPECT_GT(numa_time, 0.0);
    EXPECT_LT(numa_time, fabric.recordTransfer(1, 0, 4096, 4));
}

TEST(Fabric, ByteCapInjectsFailure)
{
    const Graph g = gen::cycle(64);
    const Partition partition(g, 2, 1);
    sim::CostModel cost;
    sim::Fabric fabric(partition, cost);
    fabric.setByteCap(1000);
    fabric.recordTransfer(0, 1, 900, 1);
    EXPECT_THROW(fabric.recordTransfer(0, 1, 200, 1),
                 sim::ByteCapExceededFault);
}

TEST(Fabric, ResetClearsLedger)
{
    const Graph g = gen::cycle(64);
    const Partition partition(g, 2, 1);
    sim::CostModel cost;
    sim::Fabric fabric(partition, cost);
    fabric.recordTransfer(0, 1, 4096, 4);
    fabric.reset();
    EXPECT_EQ(fabric.totalBytes(), 0u);
    EXPECT_EQ(fabric.linkMessages(0, 1), 0u);
}

TEST(Fabric, ResetClearsByteCapProgress)
{
    const Graph g = gen::cycle(64);
    const Partition partition(g, 2, 1);
    sim::CostModel cost;
    sim::Fabric fabric(partition, cost);
    fabric.setByteCap(1000);
    fabric.recordTransfer(0, 1, 900, 1);
    fabric.reset();
    // The cap stays armed but its progress counter restarts, so the
    // same volume fits again before the fault fires.
    EXPECT_NO_THROW(fabric.recordTransfer(0, 1, 900, 1));
    EXPECT_THROW(fabric.recordTransfer(0, 1, 200, 1),
                 sim::ByteCapExceededFault);
}

TEST(Fabric, ByteCapArmsMidRun)
{
    const Graph g = gen::cycle(64);
    const Partition partition(g, 2, 1);
    sim::CostModel cost;
    sim::Fabric fabric(partition, cost);
    // With the cap disabled any volume passes, but it still counts:
    // arming mid-run compares against all bytes moved so far.
    fabric.recordTransfer(0, 1, 5000, 2);
    fabric.setByteCap(1000);
    EXPECT_THROW(fabric.recordTransfer(0, 1, 1, 1),
                 sim::ByteCapExceededFault);
    // Same-node (NUMA) traffic never counts against the cap.
    EXPECT_NO_THROW(fabric.recordTransfer(1, 1, 4096, 1));
}

TEST(Fabric, PerLinkLedgerSumsToTotal)
{
    const Graph g = gen::cycle(64);
    const Partition partition(g, 4, 1);
    sim::CostModel cost;
    sim::Fabric fabric(partition, cost);
    fabric.recordTransfer(0, 1, 100, 1);
    fabric.recordTransfer(1, 2, 200, 2);
    fabric.recordTransfer(3, 0, 300, 1);
    fabric.recordTransfer(2, 2, 999, 1); // same-node: not network
    std::uint64_t bytes = 0;
    for (NodeId src = 0; src < 4; ++src)
        for (NodeId dst = 0; dst < 4; ++dst)
            if (src != dst)
                bytes += fabric.linkBytes(src, dst);
    // Off-diagonal links sum to the cross-node total; the diagonal
    // (NUMA traffic) is ledgered but never counts as network bytes.
    EXPECT_EQ(bytes, fabric.totalBytes());
    EXPECT_EQ(bytes, 600u);
    EXPECT_EQ(fabric.linkBytes(2, 2), 999u);
}

TEST(RunStats, MakespanIsSlowestNodePlusStartup)
{
    sim::RunStats stats;
    stats.nodes.resize(3);
    stats.nodes[0].computeNs = 100;
    stats.nodes[1].computeNs = 60;
    stats.nodes[1].commExposedNs = 90;
    stats.nodes[2].schedulerNs = 20;
    stats.startupNs = 5;
    EXPECT_DOUBLE_EQ(stats.makespanNs(), 155.0);
}

TEST(RunStats, AccumulateMergesFieldwise)
{
    sim::RunStats a;
    a.nodes.resize(2);
    a.nodes[0].computeNs = 10;
    a.nodes[0].bytesSent = 100;
    a.nodes[1].peakChunkBytes = 50;
    sim::RunStats b;
    b.nodes.resize(2);
    b.nodes[0].computeNs = 5;
    b.nodes[0].bytesSent = 11;
    b.nodes[1].peakChunkBytes = 80;
    b.startupNs = 7;
    a.accumulate(b);
    EXPECT_DOUBLE_EQ(a.nodes[0].computeNs, 15.0);
    EXPECT_EQ(a.nodes[0].bytesSent, 111u);
    EXPECT_EQ(a.nodes[1].peakChunkBytes, 80u); // max, not sum
    EXPECT_DOUBLE_EQ(a.startupNs, 7.0);
}

TEST(RunStats, HitRateAndUtilization)
{
    sim::RunStats stats;
    stats.nodes.resize(2);
    stats.nodes[0].staticCacheHits = 30;
    stats.nodes[0].staticCacheMisses = 10;
    stats.nodes[1].staticCacheMisses = 10;
    EXPECT_DOUBLE_EQ(stats.staticCacheHitRate(), 0.6);

    stats.nodes[0].computeNs = 1000;
    stats.nodes[0].bytesSent = 3500;
    // busiest node sends 3500B over 1000ns at 7B/ns capacity: 50%.
    EXPECT_NEAR(stats.networkUtilization(7.0), 0.5, 1e-9);
}

TEST(RunStats, ToJsonCarriesTotalsAndNodes)
{
    sim::RunStats stats;
    stats.nodes.resize(2);
    stats.startupNs = 5;
    stats.nodes[0].computeNs = 100;
    stats.nodes[0].bytesSent = 1234;
    stats.nodes[0].messagesSent = 3;
    stats.nodes[1].staticCacheHits = 3;
    stats.nodes[1].staticCacheMisses = 1;
    stats.nodes[0].kernelCalls = {7, 0, 2, 1, 5, 0};
    stats.nodes[1].kernelCalls = {1, 0, 0, 0, 0, 2};
    const std::string json = stats.toJson();
    EXPECT_NE(json.find("\"makespan_ns\": 105"), std::string::npos);
    EXPECT_NE(json.find("\"bytes_sent\": 1234"), std::string::npos);
    EXPECT_NE(json.find("\"messages\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"static_cache_hit_rate\": 0.75"),
              std::string::npos);
    EXPECT_NE(json.find("\"kernel_calls\": {\"merge\": 8, "
                        "\"blocked\": 0, \"gallop\": 2, "
                        "\"bitmap\": 1, \"simd_merge\": 5, "
                        "\"simd_gallop\": 2}"),
              std::string::npos);
    EXPECT_NE(json.find("\"nodes\": ["), std::string::npos);
    // One object per node, plus the root, kernel_calls, faults,
    // steals and recovery objects.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 7);
    EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 7);
    // The steals and recovery blocks are always present, even
    // all-zero, so JSON consumers can rely on the keys.
    EXPECT_NE(json.find("\"steals\": {\"stolen\": 0, \"donated\": 0, "
                        "\"bytes\": 0, \"overhead_ns\": 0}"),
              std::string::npos);
    EXPECT_NE(json.find("\"recovery\": {\"checkpoints\": 0, "
                        "\"crashes\": 0, \"adopted\": 0, "
                        "\"orphaned\": 0, \"adoption_bytes\": 0, "
                        "\"checkpoint_ns\": 0, \"adoption_ns\": 0, "
                        "\"query_retries\": 0}"),
              std::string::npos);

    // The kernel split is a host-side fact (it depends on CPU
    // features), so the modeled dump omits it entirely — top-level
    // block and per-node arrays both.
    const std::string modeled = stats.toJson(false);
    EXPECT_EQ(modeled.find("kernel_calls"), std::string::npos);
    EXPECT_NE(modeled.find("\"makespan_ns\": 105"), std::string::npos);
}

TEST(RunStats, EmptyStatsAreSafe)
{
    sim::RunStats stats;
    EXPECT_DOUBLE_EQ(stats.makespanNs(), 0.0);
    EXPECT_DOUBLE_EQ(stats.staticCacheHitRate(), 0.0);
    EXPECT_DOUBLE_EQ(stats.networkUtilization(7.0), 0.0);
    EXPECT_FALSE(stats.summary().empty());
}

} // namespace
} // namespace khuzdul
