/**
 * @file
 * Baseline-engine tests: every engine (k-Automine, k-GraphPi,
 * AutomineIH, Peregrine/Pangolin-like, replicated GraphPi,
 * G-thinker, aDFS-like) must produce identical exact counts, and
 * each engine's characteristic cost structure must show up in its
 * modeled statistics.
 */

#include <gtest/gtest.h>

#include "engines/graphpi_rep.hh"
#include "engines/gthinker.hh"
#include "engines/khuzdul_system.hh"
#include "engines/move_computation.hh"
#include "engines/pattern_oblivious.hh"
#include "engines/single_machine.hh"
#include "graph/generators.hh"
#include "pattern/bruteforce.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace
{

Graph
testGraph()
{
    return gen::rmat(300, 2200, 0.55, 0.2, 0.2, 888);
}

core::EngineConfig
engineConfig(NodeId nodes = 4)
{
    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(nodes);
    config.chunkBytes = 64 << 10;
    return config;
}

TEST(KhuzdulSystem, BothStylesAgreeWithBruteForce)
{
    const Graph g = testGraph();
    for (const auto &p : {Pattern::triangle(), Pattern::clique(4),
                          Pattern::pathOf(4), Pattern::diamond()}) {
        const Count expected = brute::countEmbeddings(g, p, false);
        auto automine =
            engines::KhuzdulSystem::kAutomine(g, engineConfig());
        auto graphpi =
            engines::KhuzdulSystem::kGraphPi(g, engineConfig());
        EXPECT_EQ(automine->count(p), expected) << p.toString();
        EXPECT_EQ(graphpi->count(p), expected) << p.toString();
    }
}

TEST(KhuzdulSystem, GraphPiStyleUsesIepPlans)
{
    const Graph g = testGraph();
    auto system = engines::KhuzdulSystem::kGraphPi(g, engineConfig());
    const auto plan = system->compile(Pattern::clique(4));
    EXPECT_TRUE(plan.hasIep);
    const auto automine_plan = engines::KhuzdulSystem::kAutomine(
        g, engineConfig())->compile(Pattern::clique(4));
    EXPECT_FALSE(automine_plan.hasIep);
}

TEST(KhuzdulSystem, EnumerateDeliversAllEmbeddings)
{
    const Graph g = gen::complete(6);
    auto system = engines::KhuzdulSystem::kGraphPi(g, engineConfig(2));
    class CountVisitor : public core::MatchVisitor
    {
      public:
        Count seen = 0;
        void match(std::span<const VertexId>) override { ++seen; }
    } visitor;
    // Even the GraphPi-style system must fall back to a
    // visitor-compatible plan here.
    EXPECT_EQ(system->enumerate(Pattern::triangle(), &visitor), 20u);
    EXPECT_EQ(visitor.seen, 20u);
}

TEST(SingleMachine, AllStylesAgreeWithBruteForce)
{
    const Graph g = testGraph();
    engines::SingleMachineConfig config;
    for (const auto style : {engines::SingleMachineStyle::AutomineIH,
                             engines::SingleMachineStyle::PeregrineLike,
                             engines::SingleMachineStyle::PangolinLike}) {
        engines::SingleMachineEngine engine(g, style, config);
        for (const auto &p : {Pattern::triangle(), Pattern::clique(4),
                              Pattern::tailedTriangle()}) {
            EXPECT_EQ(engine.count(p).count,
                      brute::countEmbeddings(g, p, false))
                << p.toString();
        }
    }
}

TEST(SingleMachine, OrientationAppliesOnlyToCliques)
{
    const Graph g = testGraph();
    engines::SingleMachineConfig config;
    engines::SingleMachineEngine pangolin(
        g, engines::SingleMachineStyle::PangolinLike, config);
    EXPECT_TRUE(pangolin.usesOrientation(Pattern::triangle()));
    EXPECT_TRUE(pangolin.usesOrientation(Pattern::clique(5)));
    EXPECT_FALSE(pangolin.usesOrientation(Pattern::pathOf(4)));
    engines::SingleMachineEngine automine(
        g, engines::SingleMachineStyle::AutomineIH, config);
    EXPECT_FALSE(automine.usesOrientation(Pattern::triangle()));
}

TEST(SingleMachine, OrientationCutsTriangleWork)
{
    const Graph g = gen::rmat(600, 9000, 0.62, 0.16, 0.16, 7);
    engines::SingleMachineConfig config;
    engines::SingleMachineEngine pangolin(
        g, engines::SingleMachineStyle::PangolinLike, config);
    engines::SingleMachineEngine automine(
        g, engines::SingleMachineStyle::AutomineIH, config);
    const auto fast = pangolin.count(Pattern::triangle());
    const auto slow = automine.count(Pattern::triangle());
    EXPECT_EQ(fast.count, slow.count);
    EXPECT_LT(fast.work.workItems, slow.work.workItems);
}

TEST(SingleMachine, MemoryLimitEnforced)
{
    const Graph g = testGraph();
    engines::SingleMachineConfig config;
    config.memoryBytes = 64; // absurdly small
    engines::SingleMachineEngine engine(
        g, engines::SingleMachineStyle::AutomineIH, config);
    EXPECT_THROW(engine.count(Pattern::triangle()), FatalError);
}

TEST(GraphPiRep, CountsMatchAndMemoryIsChecked)
{
    const Graph g = testGraph();
    engines::GraphPiRepConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(4);
    engines::GraphPiRepEngine engine(g, config);
    const auto result = engine.count(Pattern::clique(4));
    EXPECT_EQ(result.count,
              brute::countEmbeddings(g, Pattern::clique(4), false));
    EXPECT_GT(result.makespanNs, 0.0);

    engines::GraphPiRepConfig tiny = config;
    tiny.cluster.memoryBytesPerNode = 128;
    engines::GraphPiRepEngine oom(g, tiny);
    EXPECT_THROW(oom.count(Pattern::triangle()), FatalError);
}

TEST(GraphPiRep, NoNetworkTraffic)
{
    const Graph g = testGraph();
    engines::GraphPiRepConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(4);
    engines::GraphPiRepEngine engine(g, config);
    const auto result = engine.count(Pattern::triangle());
    EXPECT_EQ(result.stats.totalBytesSent(), 0u);
}

TEST(GThinker, CountsMatchBruteForce)
{
    const Graph g = testGraph();
    engines::GThinkerConfig config;
    config.cluster = sim::ClusterConfig::singleSocket(4);
    engines::GThinkerEngine engine(g, config);
    for (const auto &p : {Pattern::triangle(), Pattern::clique(4)}) {
        EXPECT_EQ(engine.count(p).count,
                  brute::countEmbeddings(g, p, false))
            << p.toString();
    }
}

TEST(GThinker, OverheadDominatesRuntime)
{
    // The paper's Fig 15: cache + scheduler take ~86% of G-thinker
    // runtime; compute and network are small.
    const Graph g = testGraph();
    engines::GThinkerConfig config;
    config.cluster = sim::ClusterConfig::singleSocket(4);
    engines::GThinkerEngine engine(g, config);
    const auto result = engine.count(Pattern::triangle());
    const double total = result.stats.totalComputeNs()
        + result.stats.totalCommExposedNs()
        + result.stats.totalSchedulerNs()
        + result.stats.totalCacheNs();
    const double overhead = result.stats.totalSchedulerNs()
        + result.stats.totalCacheNs();
    EXPECT_GT(overhead / total, 0.5);
}

TEST(GThinker, DualSocketIsSlower)
{
    const Graph g = testGraph();
    engines::GThinkerConfig single;
    single.cluster = sim::ClusterConfig::singleSocket(4);
    engines::GThinkerConfig dual;
    dual.cluster = sim::ClusterConfig::paperDefault(4);
    engines::GThinkerEngine a(g, single);
    engines::GThinkerEngine b(g, dual);
    EXPECT_LT(a.count(Pattern::triangle()).makespanNs,
              b.count(Pattern::triangle()).makespanNs);
}

TEST(MoveComputation, CountsMatchAndTrafficIsHeavy)
{
    const Graph g = testGraph();
    engines::MoveComputationConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(4);
    engines::MoveComputationEngine engine(g, config);
    const auto result = engine.count(Pattern::triangle());
    EXPECT_EQ(result.count,
              brute::countEmbeddings(g, Pattern::triangle(), false));
    // Shipping embeddings + edge lists moves more data than the
    // equivalent Khuzdul run fetches.
    auto khuzdul = engines::KhuzdulSystem::kAutomine(g, engineConfig(4));
    khuzdul->count(Pattern::triangle());
    EXPECT_GT(result.stats.totalBytesSent(),
              khuzdul->stats().totalBytesSent());
}

TEST(PatternOblivious, SubgraphCensusOnSmallGraphs)
{
    // K4 has 6 edges; connected edge subsets: 6 single edges, 12
    // two-edge paths (wedges: 4 vertices choose center...) -- check
    // against an independent brute count.
    const Graph g = gen::complete(4);
    engines::PatternObliviousConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(2);
    engines::PatternObliviousEngine engine(g, config);
    const auto result = engine.mineFrequent(2, 0);
    // 1-edge subsets: 6.  2-edge subsets: pairs of adjacent edges =
    // per vertex C(3,2)=3 wedges x 4 vertices = 12.
    EXPECT_EQ(result.totalInstances, 6u + 12u);
}

TEST(PatternOblivious, MatchesIndependentSubsetEnumeration)
{
    // Exhaustive cross-check of the edge-ESU enumerator: count
    // connected edge subsets of random small graphs by brute force
    // over all subsets.
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        const Graph g = gen::erdosRenyi(10, 16, seed);
        std::vector<std::pair<VertexId, VertexId>> edges;
        for (VertexId u = 0; u < g.numVertices(); ++u)
            for (const VertexId v : g.neighbors(u))
                if (u < v)
                    edges.emplace_back(u, v);
        const int m = static_cast<int>(edges.size());
        Count expected = 0;
        for (std::uint32_t mask = 1; mask < (1u << m); ++mask) {
            if (std::popcount(mask) > 3)
                continue;
            // Connectivity check over the chosen edges.
            std::vector<int> picked;
            for (int e = 0; e < m; ++e)
                if ((mask >> e) & 1u)
                    picked.push_back(e);
            std::vector<int> comp(picked.size());
            for (std::size_t i = 0; i < picked.size(); ++i)
                comp[i] = static_cast<int>(i);
            bool changed = true;
            while (changed) {
                changed = false;
                for (std::size_t i = 0; i < picked.size(); ++i) {
                    for (std::size_t j = i + 1; j < picked.size(); ++j) {
                        const auto &a = edges[picked[i]];
                        const auto &b = edges[picked[j]];
                        const bool touch = a.first == b.first
                            || a.first == b.second
                            || a.second == b.first
                            || a.second == b.second;
                        if (touch && comp[i] != comp[j]) {
                            const int from = std::max(comp[i], comp[j]);
                            const int to = std::min(comp[i], comp[j]);
                            for (auto &c : comp)
                                if (c == from)
                                    c = to;
                            changed = true;
                        }
                    }
                }
            }
            bool connected = true;
            for (const int c : comp)
                if (c != 0)
                    connected = false;
            if (connected)
                ++expected;
        }
        engines::PatternObliviousConfig config;
        config.cluster = sim::ClusterConfig::paperDefault(2);
        engines::PatternObliviousEngine engine(g, config);
        EXPECT_EQ(engine.mineFrequent(3, 0).totalInstances, expected)
            << "seed " << seed;
    }
}

TEST(PatternOblivious, SupportsMatchLabeledExpectations)
{
    // A 4-cycle labeled alternately: the A-B edge pattern has MNI
    // support 2 (two A vertices, two B vertices).
    Graph g = gen::cycle(4);
    g.setLabels({0, 1, 0, 1});
    engines::PatternObliviousConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(1);
    engines::PatternObliviousEngine engine(g, config);
    const auto result = engine.mineFrequent(1, 1);
    ASSERT_EQ(result.patterns.size(), 1u);
    EXPECT_EQ(result.patterns[0].support, 2u);
    EXPECT_EQ(result.patterns[0].instances, 4u);
}

} // namespace
} // namespace khuzdul
