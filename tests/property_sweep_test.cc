/**
 * @file
 * Parameterized property sweeps (TEST_P): exact-count invariance of
 * the distributed engine across the full configuration lattice
 * (cluster shape x chunk budget x cache policy x sharing switches),
 * cross-engine agreement over a pattern zoo, and plan-compiler
 * invariants over random patterns.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/engine.hh"
#include "core/service/service.hh"
#include "engines/graphpi_rep.hh"
#include "engines/gthinker.hh"
#include "engines/khuzdul_system.hh"
#include "engines/move_computation.hh"
#include "engines/single_machine.hh"
#include "graph/generators.hh"
#include "pattern/bruteforce.hh"
#include "pattern/isomorphism.hh"
#include "pattern/planner.hh"
#include "support/rng.hh"

namespace khuzdul
{
namespace
{

const Graph &
sweepGraph()
{
    static const Graph g = gen::rmat(220, 1500, 0.55, 0.2, 0.2, 4242);
    return g;
}

Count
oracle(const Pattern &p)
{
    static std::map<std::string, Count> memo;
    const std::string key = p.toString();
    auto it = memo.find(key);
    if (it == memo.end())
        it = memo.emplace(key,
                          brute::countEmbeddings(sweepGraph(), p,
                                                 false)).first;
    return it->second;
}

/** (nodes, sockets, chunkBytes, policy, hds, numa) */
using EngineAxis =
    std::tuple<NodeId, unsigned, std::uint64_t, core::CachePolicy,
               bool, bool>;

class EngineConfigSweep : public testing::TestWithParam<EngineAxis>
{
};

TEST_P(EngineConfigSweep, CountsAreConfigurationInvariant)
{
    const auto [nodes, sockets, chunk, policy, hds, numa] = GetParam();
    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(nodes);
    config.cluster.socketsPerNode = sockets;
    config.cluster.commCoresPerNode = 2;
    config.chunkBytes = chunk;
    config.cachePolicy = policy;
    config.horizontalSharing = hds;
    config.numaAware = numa;
    config.cacheDegreeThreshold = 8;
    core::Engine engine(sweepGraph(), config);
    for (const Pattern &p :
         {Pattern::triangle(), Pattern::clique(4), Pattern::diamond()}) {
        const auto plan = compileAutomine(p, {});
        EXPECT_EQ(engine.run(plan), oracle(p)) << p.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(
    ClusterShapes, EngineConfigSweep,
    testing::Combine(
        testing::Values<NodeId>(1, 2, 5, 8),
        testing::Values<unsigned>(1, 2),
        testing::Values<std::uint64_t>(2 << 10, 1 << 20),
        testing::Values(core::CachePolicy::Static),
        testing::Values(true),
        testing::Values(true, false)));

INSTANTIATE_TEST_SUITE_P(
    CacheAndSharing, EngineConfigSweep,
    testing::Combine(
        testing::Values<NodeId>(4),
        testing::Values<unsigned>(2),
        testing::Values<std::uint64_t>(8 << 10),
        testing::Values(core::CachePolicy::None,
                        core::CachePolicy::Static,
                        core::CachePolicy::Fifo,
                        core::CachePolicy::Lifo,
                        core::CachePolicy::Lru,
                        core::CachePolicy::Mru),
        testing::Values(true, false),
        testing::Values(true)));

/** Every engine in the repository agrees on every zoo pattern. */
class EngineZoo : public testing::TestWithParam<int>
{
  public:
    static std::vector<Pattern>
    zoo()
    {
        return {Pattern::triangle(),       Pattern::clique(4),
                Pattern::clique(5),        Pattern::pathOf(4),
                Pattern::cycleOf(4),       Pattern::cycleOf(5),
                Pattern::starOf(4),        Pattern::tailedTriangle(),
                Pattern::diamond()};
    }
};

TEST_P(EngineZoo, AllEnginesAgree)
{
    const Pattern p = zoo()[GetParam()];
    const Graph &g = sweepGraph();
    const Count expected = oracle(p);

    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(3);
    config.chunkBytes = 16 << 10;
    auto automine = engines::KhuzdulSystem::kAutomine(g, config);
    EXPECT_EQ(automine->count(p), expected) << "k-Automine";
    auto graphpi = engines::KhuzdulSystem::kGraphPi(g, config);
    EXPECT_EQ(graphpi->count(p), expected) << "k-GraphPi";

    engines::GraphPiRepConfig rep_config;
    rep_config.cluster = sim::ClusterConfig::paperDefault(3);
    engines::GraphPiRepEngine rep(g, rep_config);
    EXPECT_EQ(rep.count(p).count, expected) << "GraphPi(rep)";

    engines::GThinkerConfig gt_config;
    gt_config.cluster = sim::ClusterConfig::singleSocket(3);
    engines::GThinkerEngine gthinker(g, gt_config);
    EXPECT_EQ(gthinker.count(p).count, expected) << "G-thinker";

    engines::MoveComputationConfig mc_config;
    mc_config.cluster = sim::ClusterConfig::paperDefault(3);
    engines::MoveComputationEngine mover(g, mc_config);
    EXPECT_EQ(mover.count(p).count, expected) << "aDFS-like";

    engines::SingleMachineConfig sm_config;
    for (const auto style :
         {engines::SingleMachineStyle::AutomineIH,
          engines::SingleMachineStyle::PeregrineLike,
          engines::SingleMachineStyle::PangolinLike}) {
        engines::SingleMachineEngine sm(g, style, sm_config);
        EXPECT_EQ(sm.count(p).count, expected)
            << "single-machine style "
            << static_cast<int>(style);
    }
}

INSTANTIATE_TEST_SUITE_P(PatternZoo, EngineZoo,
                         testing::Range(0, 9));

/** Random-pattern plan-compiler invariants. */
class RandomPatternPlans : public testing::TestWithParam<int>
{
  public:
    static Pattern
    randomConnectedPattern(std::uint64_t seed)
    {
        Rng rng(seed);
        const int n = 3 + static_cast<int>(rng.nextBounded(3));
        while (true) {
            Pattern p(n);
            for (int u = 0; u < n; ++u)
                for (int v = u + 1; v < n; ++v)
                    if (rng.coin(0.55))
                        p.addEdge(u, v);
            if (p.connected())
                return p;
        }
    }
};

TEST_P(RandomPatternPlans, CompilersAgreeWithOracle)
{
    const Pattern p = randomConnectedPattern(9000 + GetParam());
    const Graph &g = sweepGraph();
    const Count expected = oracle(p);
    const GraphProfile profile = GraphProfile::fromGraph(g);

    const auto automine_plan = compileAutomine(p, {});
    EXPECT_EQ(core::countWithPlan(g, automine_plan), expected)
        << p.toString();
    const auto graphpi_plan = compileGraphPi(p, profile, {});
    EXPECT_EQ(core::countWithPlan(g, graphpi_plan), expected)
        << p.toString();
}

TEST_P(RandomPatternPlans, RestrictionCountTimesAutEqualsOrdered)
{
    // The fundamental symmetry-breaking identity: restricted count
    // x |Aut| == unrestricted ordered count.
    const Pattern p = randomConnectedPattern(7000 + GetParam());
    const Graph &g = sweepGraph();

    PlanOptions no_breaking;
    no_breaking.symmetryBreaking = false;
    no_breaking.useIep = false;
    const auto free_plan = compileAutomine(p, no_breaking);
    std::vector<VertexId> roots(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        roots[v] = v;
    const auto free_run = core::runPlanDfs(g, free_plan, roots);

    const auto strict_plan = compileAutomine(p, {});
    const auto strict_run = core::runPlanDfs(g, strict_plan, roots);

    const auto aut = static_cast<std::int64_t>(
        iso::automorphisms(p).size());
    EXPECT_EQ(strict_run.rawCount * aut, free_run.rawCount)
        << p.toString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPatternPlans,
                         testing::Range(0, 12));

/**
 * Kernel-choice invariance: under every --kernel mode — and with the
 * SIMD tier forced off via the kill switch — the engine's counts
 * match the brute-force oracle, and every modeled artifact (the full
 * host-free RunStats dump, the per-link fabric ledger, the ordered
 * phase-event tallies) is bit-identical.  Kernels only change host
 * wall-clock, never the simulated machine (DESIGN.md §5.6).
 */
class KernelModeSweep : public testing::TestWithParam<core::KernelMode>
{
};

TEST_P(KernelModeSweep, CountsAndModeledTimeAreModeInvariant)
{
    const Graph &g = sweepGraph();
    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(4);
    config.chunkBytes = 16 << 10;
    config.hubBitmapDegreeThreshold = 8;

    core::EngineConfig reference_config = config;
    reference_config.kernelMode = core::KernelMode::Merge;
    config.kernelMode = GetParam();

    const auto expectModeledArtifactsEqual =
        [&](core::Engine &engine, core::Engine &reference,
            const char *what) {
            EXPECT_EQ(engine.stats().toJson(false),
                      reference.stats().toJson(false))
                << what;
            const NodeId nodes = config.cluster.numNodes;
            for (NodeId src = 0; src < nodes; ++src)
                for (NodeId dst = 0; dst < nodes; ++dst) {
                    EXPECT_EQ(engine.fabric().linkBytes(src, dst),
                              reference.fabric().linkBytes(src, dst))
                        << what << " " << src << "<-" << dst;
                    EXPECT_EQ(engine.fabric().linkMessages(src, dst),
                              reference.fabric().linkMessages(src, dst))
                        << what << " " << src << "<-" << dst;
                }
            for (std::size_t e = 0; e < sim::kNumPhaseEvents; ++e) {
                const auto event = static_cast<sim::PhaseEvent>(e);
                EXPECT_EQ(engine.traceCounts().count(event),
                          reference.traceCounts().count(event))
                    << what << " " << sim::phaseEventName(event);
                EXPECT_EQ(engine.traceCounts().valueSum(event),
                          reference.traceCounts().valueSum(event))
                    << what << " " << sim::phaseEventName(event);
            }
        };

    for (const Pattern &p :
         {Pattern::triangle(), Pattern::clique(4), Pattern::cycleOf(4),
          Pattern::diamond()}) {
        const auto plan = compileAutomine(p, {});
        core::Engine reference(g, reference_config);
        core::Engine engine(g, config);
        // Dispatchers snapshot SIMD availability at construction, so
        // building this engine after flipping the kill switch runs
        // the same mode on the scalar fallback path.
        core::setSimdEnabled(false);
        core::Engine scalar_engine(g, config);
        core::setSimdEnabled(true);

        EXPECT_EQ(engine.run(plan), oracle(p)) << p.toString();
        ASSERT_EQ(reference.run(plan), oracle(p)) << p.toString();
        EXPECT_EQ(scalar_engine.run(plan), oracle(p)) << p.toString();
        EXPECT_EQ(engine.stats().makespanNs(),
                  reference.stats().makespanNs())
            << p.toString();
        std::uint64_t items = 0;
        std::uint64_t ref_items = 0;
        for (std::size_t u = 0; u < engine.stats().nodes.size(); ++u) {
            items += engine.stats().nodes[u].intersectionItems;
            ref_items += reference.stats().nodes[u].intersectionItems;
        }
        EXPECT_EQ(items, ref_items) << p.toString();

        expectModeledArtifactsEqual(engine, reference, p.toString().c_str());
        expectModeledArtifactsEqual(scalar_engine, reference,
                                    p.toString().c_str());
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, KernelModeSweep,
                         testing::Values(core::KernelMode::Auto,
                                         core::KernelMode::Merge,
                                         core::KernelMode::Gallop,
                                         core::KernelMode::Bitmap,
                                         core::KernelMode::Simd));

/**
 * Host-thread invariance: running the simulated units on any number
 * of host threads (0 = all hardware threads) must leave every
 * modeled result — counts, the full RunStats dump, the per-link
 * fabric ledger, the phase-event tallies — byte-identical to the
 * sequential run.  This is the determinism contract of the parallel
 * unit runtime (DESIGN.md §6).
 */
class HostThreadSweep : public testing::TestWithParam<unsigned>
{
};

TEST_P(HostThreadSweep, ModeledResultsAreThreadCountInvariant)
{
    const Graph &g = sweepGraph();
    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(4);
    config.chunkBytes = 16 << 10;
    config.cacheDegreeThreshold = 8;

    core::EngineConfig reference_config = config;
    reference_config.hostThreads = 1;
    config.hostThreads = GetParam();

    core::Engine reference(g, reference_config);
    core::Engine engine(g, config);
    for (const Pattern &p :
         {Pattern::triangle(), Pattern::clique(4), Pattern::cycleOf(4),
          Pattern::diamond()}) {
        const auto plan = compileAutomine(p, {});
        ASSERT_EQ(reference.run(plan), oracle(p)) << p.toString();
        EXPECT_EQ(engine.run(plan), oracle(p)) << p.toString();
    }

    // The purely modeled dump (host block excluded) is compared as
    // one string: any drifting double or counter shows up here.
    EXPECT_EQ(engine.stats().toJson(false),
              reference.stats().toJson(false));

    // Per-link fabric ledger, byte for byte and message for message.
    const NodeId nodes = config.cluster.numNodes;
    EXPECT_EQ(engine.fabric().totalBytes(),
              reference.fabric().totalBytes());
    for (NodeId src = 0; src < nodes; ++src)
        for (NodeId dst = 0; dst < nodes; ++dst) {
            EXPECT_EQ(engine.fabric().linkBytes(src, dst),
                      reference.fabric().linkBytes(src, dst))
                << src << "<-" << dst;
            EXPECT_EQ(engine.fabric().linkMessages(src, dst),
                      reference.fabric().linkMessages(src, dst))
                << src << "<-" << dst;
        }

    // The ordered trace replay reproduces the sequential stream.
    for (std::size_t e = 0; e < sim::kNumPhaseEvents; ++e) {
        const auto event = static_cast<sim::PhaseEvent>(e);
        EXPECT_EQ(engine.traceCounts().count(event),
                  reference.traceCounts().count(event))
            << sim::phaseEventName(event);
        EXPECT_EQ(engine.traceCounts().valueSum(event),
                  reference.traceCounts().valueSum(event))
            << sim::phaseEventName(event);
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, HostThreadSweep,
                         testing::Values(1u, 2u, 4u, 0u));

/**
 * Fault plans x steal x host threads: injected faults and the
 * recovery ladder must preserve exact counts, and for a fixed plan
 * the whole modeled result must stay byte-identical at every thread
 * count (DESIGN.md §9) — fault triggers read only per-unit ledger
 * state, never host conditions.  The steal axis crosses every plan
 * (degrade and down included) with the post-barrier steal pass: the
 * planner prices backlogs that the faults themselves created, and
 * the determinism contract must hold through that interaction too.
 */
using FaultAxis = std::tuple<const char *, bool, unsigned>;

class FaultSweep : public testing::TestWithParam<FaultAxis>
{
};

TEST_P(FaultSweep, FaultedRunsKeepCountsAndThreadInvariance)
{
    const auto [spec, steal, threads] = GetParam();
    const Graph &g = sweepGraph();
    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(4);
    config.chunkBytes = 16 << 10;
    config.cacheDegreeThreshold = 8;
    config.stealEnabled = steal;
    config.stealBacklogThresholdNs = 2.0e3;
    config.faults.add(spec);

    core::EngineConfig reference_config = config;
    reference_config.hostThreads = 1;
    config.hostThreads = threads;

    core::Engine reference(g, reference_config);
    core::Engine engine(g, config);
    for (const Pattern &p :
         {Pattern::triangle(), Pattern::clique(4),
          Pattern::cycleOf(4), Pattern::diamond()}) {
        const auto plan = compileAutomine(p, {});
        // Counts under faults equal the fault-free oracle exactly.
        ASSERT_EQ(reference.run(plan), oracle(p)) << p.toString();
        EXPECT_EQ(engine.run(plan), oracle(p)) << p.toString();
    }

    // Same plan, different thread count: bit-identical modeled dump
    // (including the faults block), ledger and trace tallies.
    EXPECT_EQ(engine.stats().toJson(false),
              reference.stats().toJson(false));
    const NodeId nodes = config.cluster.numNodes;
    for (NodeId src = 0; src < nodes; ++src)
        for (NodeId dst = 0; dst < nodes; ++dst)
            EXPECT_EQ(engine.fabric().linkBytes(src, dst),
                      reference.fabric().linkBytes(src, dst))
                << src << "<-" << dst;
    for (std::size_t e = 0; e < sim::kNumPhaseEvents; ++e) {
        const auto event = static_cast<sim::PhaseEvent>(e);
        EXPECT_EQ(engine.traceCounts().count(event),
                  reference.traceCounts().count(event))
            << sim::phaseEventName(event);
        EXPECT_EQ(engine.traceCounts().valueSum(event),
                  reference.traceCounts().valueSum(event))
            << sim::phaseEventName(event);
    }

    // The plan actually did something on the reference run.
    EXPECT_GT(reference.stats().totalFaultsInjected()
                  + reference.stats().totalRecoveryNs(),
              0.0);
}

INSTANTIATE_TEST_SUITE_P(
    PlansAndThreads, FaultSweep,
    testing::Combine(
        testing::Values("drop:*-*:msg=1:count=2",
                        "timeout:0-1:msg=1:count=6",
                        "degrade:*-*:factor=5:from=0",
                        "down:node=3:from=0",
                        "drop:*-*:msg=1:count=4"),
        testing::Bool(),
        testing::Values(1u, 2u, 4u, 8u)));

/**
 * Steal pass x fault plans x host threads (DESIGN.md §11): with the
 * deterministic post-barrier steal pass enabled, counts must still
 * equal the fault-free oracle AND the steal-off run of the same
 * plan, and every modeled artifact — the full host-free stats dump
 * (including the steals block), the per-link fabric ledger (steal
 * commits record transfers), the ordered StealIssued/StealCompleted
 * trace tallies — must be bit-identical at every host thread count.
 * The planner reads only merged modeled state, so the stolen
 * schedule is as reproducible as the unstolen one.
 */
using StealAxis = std::tuple<const char *, unsigned>;

class StealSweep : public testing::TestWithParam<StealAxis>
{
};

TEST_P(StealSweep, StolenRunsKeepCountsAndThreadInvariance)
{
    const auto [spec, threads] = GetParam();
    const Graph &g = sweepGraph();
    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(4);
    config.chunkBytes = 4 << 10;
    config.cacheDegreeThreshold = 8;
    config.stealEnabled = true;
    // The sweep graph is ~1000x smaller than the bench stand-ins, so
    // the default 100us backlog threshold would gate every donation;
    // drop it to the scale of this graph's chunk ledgers.
    config.stealBacklogThresholdNs = 2.0e3;
    if (*spec)
        config.faults.add(spec);

    core::EngineConfig reference_config = config;
    reference_config.hostThreads = 1;
    config.hostThreads = threads;

    core::EngineConfig off_config = reference_config;
    off_config.stealEnabled = false;

    core::Engine reference(g, reference_config);
    core::Engine engine(g, config);
    core::Engine no_steal(g, off_config);
    for (const Pattern &p :
         {Pattern::triangle(), Pattern::clique(4),
          Pattern::cycleOf(4), Pattern::diamond()}) {
        const auto plan = compileAutomine(p, {});
        // Stealing moves modeled time, never work: counts equal the
        // fault-free oracle and the steal-off run exactly.
        ASSERT_EQ(reference.run(plan), oracle(p)) << p.toString();
        EXPECT_EQ(engine.run(plan), oracle(p)) << p.toString();
        EXPECT_EQ(no_steal.run(plan), oracle(p)) << p.toString();
    }

    // Same plan, different thread count: bit-identical modeled dump
    // (including the steals block), ledger and trace tallies.
    EXPECT_EQ(engine.stats().toJson(false),
              reference.stats().toJson(false));
    const NodeId nodes = config.cluster.numNodes;
    for (NodeId src = 0; src < nodes; ++src)
        for (NodeId dst = 0; dst < nodes; ++dst) {
            EXPECT_EQ(engine.fabric().linkBytes(src, dst),
                      reference.fabric().linkBytes(src, dst))
                << src << "<-" << dst;
            EXPECT_EQ(engine.fabric().linkMessages(src, dst),
                      reference.fabric().linkMessages(src, dst))
                << src << "<-" << dst;
        }
    for (std::size_t e = 0; e < sim::kNumPhaseEvents; ++e) {
        const auto event = static_cast<sim::PhaseEvent>(e);
        EXPECT_EQ(engine.traceCounts().count(event),
                  reference.traceCounts().count(event))
            << sim::phaseEventName(event);
        EXPECT_EQ(engine.traceCounts().valueSum(event),
                  reference.traceCounts().valueSum(event))
            << sim::phaseEventName(event);
    }

    // Issued/completed pair up, and the stats block agrees with the
    // trace stream.
    EXPECT_EQ(reference.traceCounts().count(
                  sim::PhaseEvent::StealIssued),
              reference.traceCounts().count(
                  sim::PhaseEvent::StealCompleted));
    EXPECT_EQ(reference.stats().totalChunksStolen(),
              reference.traceCounts().count(
                  sim::PhaseEvent::StealIssued));

    // Non-vacuous under the degraded plan: the straggling node's
    // tail chunks actually migrate.
    if (std::string(spec).rfind("degrade", 0) == 0) {
        EXPECT_GT(reference.stats().totalChunksStolen(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    PlansAndThreads, StealSweep,
    testing::Combine(
        testing::Values("",
                        "degrade:3-*:factor=5:from=0",
                        "drop:*-*:msg=1:count=4"),
        testing::Values(1u, 2u, 4u, 8u)));

/**
 * Crash plans x steal x host threads (DESIGN.md §9): killing an
 * execution unit at a modeled chunk boundary and adopting its
 * orphaned chunks onto survivors must preserve exact counts, and
 * the full modeled result — the stats dump with its recovery
 * block, the fabric ledger (adoption transfers are priced through
 * it), the Checkpoint/UnitCrashed/ChunkAdopted trace tallies —
 * must stay byte-identical at every host thread count, with and
 * without the steal pass in the same run.  The crash trigger reads
 * only the unit's own chunk ordinals, so WHERE the unit dies is as
 * deterministic as everything else.
 */
using CrashAxis = std::tuple<const char *, bool, unsigned>;

class CrashSweep : public testing::TestWithParam<CrashAxis>
{
};

TEST_P(CrashSweep, CrashedRunsKeepCountsAndThreadInvariance)
{
    const auto [spec, steal, threads] = GetParam();
    const Graph &g = sweepGraph();
    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(4);
    config.chunkBytes = 4 << 10;
    config.cacheDegreeThreshold = 8;
    config.stealEnabled = steal;
    config.stealBacklogThresholdNs = 2.0e3;
    config.faults.add(spec);

    core::EngineConfig reference_config = config;
    reference_config.hostThreads = 1;
    config.hostThreads = threads;

    core::Engine reference(g, reference_config);
    core::Engine engine(g, config);
    for (const Pattern &p :
         {Pattern::triangle(), Pattern::clique(4),
          Pattern::cycleOf(4), Pattern::diamond()}) {
        const auto plan = compileAutomine(p, {});
        // A crash re-attributes modeled time; it never loses work.
        ASSERT_EQ(reference.run(plan), oracle(p)) << p.toString();
        EXPECT_EQ(engine.run(plan), oracle(p)) << p.toString();
    }

    // Same plan, different thread count: bit-identical modeled dump
    // (including the recovery block), ledger and trace tallies.
    EXPECT_EQ(engine.stats().toJson(false),
              reference.stats().toJson(false));
    const NodeId nodes = config.cluster.numNodes;
    for (NodeId src = 0; src < nodes; ++src)
        for (NodeId dst = 0; dst < nodes; ++dst) {
            EXPECT_EQ(engine.fabric().linkBytes(src, dst),
                      reference.fabric().linkBytes(src, dst))
                << src << "<-" << dst;
            EXPECT_EQ(engine.fabric().linkMessages(src, dst),
                      reference.fabric().linkMessages(src, dst))
                << src << "<-" << dst;
        }
    for (std::size_t e = 0; e < sim::kNumPhaseEvents; ++e) {
        const auto event = static_cast<sim::PhaseEvent>(e);
        EXPECT_EQ(engine.traceCounts().count(event),
                  reference.traceCounts().count(event))
            << sim::phaseEventName(event);
        EXPECT_EQ(engine.traceCounts().valueSum(event),
                  reference.traceCounts().valueSum(event))
            << sim::phaseEventName(event);
    }

    // Non-vacuous: the unit really died (in at least one pattern
    // run; level-2 specs cannot fire on the 3-level triangle) and
    // survivors really adopted, and the stats ledger agrees with
    // the trace stream event for event.
    const auto &stats = reference.stats();
    EXPECT_GE(stats.totalUnitCrashes(), 1u);
    EXPECT_LE(stats.totalUnitCrashes(), 4u);
    EXPECT_GT(stats.totalChunksAdopted(), 0u);
    EXPECT_GT(stats.totalCheckpoints(), 0u);
    EXPECT_EQ(reference.traceCounts().count(
                  sim::PhaseEvent::UnitCrashed),
              stats.totalUnitCrashes());
    EXPECT_EQ(reference.traceCounts().count(
                  sim::PhaseEvent::ChunkAdopted),
              stats.totalChunksAdopted());
    EXPECT_EQ(reference.traceCounts().count(
                  sim::PhaseEvent::Checkpoint),
              stats.totalCheckpoints());
}

INSTANTIATE_TEST_SUITE_P(
    PlansAndThreads, CrashSweep,
    testing::Combine(
        testing::Values("crash:1:level=1:chunk=1",
                        "crash:5:level=0:chunk=1",
                        "crash:3:level=2:chunk=1"),
        testing::Bool(),
        testing::Values(1u, 2u, 4u, 8u)));

/**
 * Service-level determinism (DESIGN.md §10): every query's modeled
 * results through the QueryService — count, stats.toJson(false),
 * phase-event tallies — are bit-identical to a solo engine run of
 * the same plan, regardless of the co-runner mix, the admission
 * order, the admission bound, or the shared pool's width.  The
 * cross-query residency directory may only ever surface in the
 * excluded host block.
 */
using ServiceAxis = std::tuple<unsigned /*hostThreads*/,
                               unsigned /*maxInFlight*/,
                               bool /*reversed submission*/>;

class ServiceSweep : public testing::TestWithParam<ServiceAxis>
{
};

TEST_P(ServiceSweep, PerQueryModeledResultsAreMixInvariant)
{
    const auto [threads, in_flight, reversed] = GetParam();
    const Graph &g = sweepGraph();
    core::GraphSetup setup;
    setup.cluster = sim::ClusterConfig::paperDefault(4);
    setup.cacheDegreeThreshold = 8;
    core::SessionConfig session;
    session.chunkBytes = 16 << 10;

    // The workload mixes duplicates so queries genuinely co-run
    // against both distinct and identical plans.
    std::vector<Pattern> workload = {
        Pattern::triangle(),  Pattern::clique(4),
        Pattern::cycleOf(4),  Pattern::diamond(),
        Pattern::triangle(),  Pattern::clique(4)};
    if (reversed)
        std::reverse(workload.begin(), workload.end());

    core::GraphContext context(g, setup);
    core::ServiceOptions options;
    options.maxInFlight = in_flight;
    options.hostThreads = threads;
    core::QueryService service(context, options);
    for (const Pattern &p : workload)
        service.submit(compileAutomine(p, {}), session);
    service.wait();

    for (std::size_t id = 0; id < workload.size(); ++id) {
        const Pattern &p = workload[id];
        const core::QueryResult &query = service.result(id);
        ASSERT_FALSE(query.failed) << query.error;
        EXPECT_EQ(query.count, oracle(p)) << p.toString();

        // Solo reference: one fresh session over a private context.
        core::GraphContext solo_context(g, setup);
        core::Engine solo(solo_context, session);
        ASSERT_EQ(solo.run(compileAutomine(p, {})), oracle(p))
            << p.toString();
        EXPECT_EQ(query.modeledJson, solo.stats().toJson(false))
            << p.toString();
        ASSERT_EQ(query.traceCounts.size(), sim::kNumPhaseEvents);
        for (std::size_t e = 0; e < sim::kNumPhaseEvents; ++e)
            EXPECT_EQ(query.traceCounts[e],
                      solo.traceCounts().count(
                          static_cast<sim::PhaseEvent>(e)))
                << p.toString() << " "
                << sim::phaseEventName(
                       static_cast<sim::PhaseEvent>(e));
    }
}

INSTANTIATE_TEST_SUITE_P(
    MixesAndWidths, ServiceSweep,
    testing::Combine(testing::Values(1u, 2u, 4u),
                     testing::Values(1u, 3u),
                     testing::Values(false, true)));

} // namespace
} // namespace khuzdul
