/**
 * @file
 * Differential and property tests for the set-kernel suite
 * (core/kernels): every kernel must agree element-for-element with
 * the reference two-pointer merge and charge the identical canonical
 * WorkItems on randomized and adversarial inputs; the dispatcher
 * must be mode-invariant in outputs and charges; the hub-bitmap
 * index must be correct, capped and deterministic.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/kernels/kernels.hh"
#include "graph/generators.hh"
#include "support/rng.hh"

namespace khuzdul
{
namespace
{

std::vector<VertexId>
sortedUnique(std::vector<VertexId> values)
{
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()),
                 values.end());
    return values;
}

std::vector<VertexId>
randomList(std::size_t size, VertexId universe, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<VertexId> list(size);
    for (auto &v : list)
        v = static_cast<VertexId>(rng.nextBounded(universe));
    return sortedUnique(std::move(list));
}

/** Adversarial (a, b) pairs: empties, extreme skew, overlap at span
 *  boundaries (equal first/last elements), disjoint ranges, dense
 *  all-common lists. */
std::vector<std::pair<std::vector<VertexId>, std::vector<VertexId>>>
adversarialPairs()
{
    std::vector<std::pair<std::vector<VertexId>, std::vector<VertexId>>>
        pairs;
    pairs.push_back({{}, {}});
    pairs.push_back({{}, {1, 2, 3}});
    pairs.push_back({{5}, {1, 2, 3, 4, 5, 6, 7, 8, 9}});
    pairs.push_back({{9}, {1, 2, 3}});           // a past b's end
    pairs.push_back({{1, 2, 3}, {4, 5, 6}});     // disjoint, adjacent
    pairs.push_back({{4, 5, 6}, {1, 2, 3}});     // disjoint, reversed
    pairs.push_back({{1, 100}, randomList(5000, 1 << 16, 3)});
    // Boundary-equal elements: spans meeting exactly at their ends.
    pairs.push_back({{1, 2, 3, 10}, {10, 11, 12}});
    pairs.push_back({{10, 11, 12}, {1, 2, 3, 10}});
    pairs.push_back({{1, 5, 9}, {1, 5, 9}});     // identical lists
    // Dense common prefix, then divergence.
    std::vector<VertexId> dense_a;
    std::vector<VertexId> dense_b;
    for (VertexId v = 0; v < 600; ++v) {
        dense_a.push_back(v);
        dense_b.push_back(v < 300 ? v : v + 1000);
    }
    pairs.push_back({dense_a, dense_b});
    // Extreme skew: 3 elements vs 100k.
    pairs.push_back({{7, 70'000, 99'999},
                     randomList(100'000, 1 << 20, 17)});
    return pairs;
}

void
expectKernelAgreement(std::span<const VertexId> a,
                      std::span<const VertexId> b)
{
    std::vector<VertexId> ref;
    std::vector<VertexId> out;
    Count count = 0;
    const core::WorkItems work = core::intersectInto(a, b, ref);

    EXPECT_EQ(core::canonicalIntersectWork(a, b), work);
    EXPECT_EQ(core::intersectCount(a, b, count), work);
    EXPECT_EQ(count, ref.size());

    EXPECT_EQ(core::blockedIntersectInto(a, b, out), work);
    EXPECT_EQ(out, ref);
    EXPECT_EQ(core::blockedIntersectCount(a, b, count), work);
    EXPECT_EQ(count, ref.size());

    EXPECT_EQ(core::gallopIntersectInto(a, b, out), work);
    EXPECT_EQ(out, ref);
    EXPECT_EQ(core::gallopIntersectCount(a, b, count), work);
    EXPECT_EQ(count, ref.size());

    EXPECT_EQ(core::simdMergeIntersectInto(a, b, out), work);
    EXPECT_EQ(out, ref);
    EXPECT_EQ(core::simdMergeIntersectCount(a, b, count), work);
    EXPECT_EQ(count, ref.size());

    EXPECT_EQ(core::simdGallopIntersectInto(a, b, out), work);
    EXPECT_EQ(out, ref);
    EXPECT_EQ(core::simdGallopIntersectCount(a, b, count), work);
    EXPECT_EQ(count, ref.size());

    // Subtraction: gallop and SIMD gallop against the reference.
    std::vector<VertexId> sub_ref;
    const core::WorkItems sub_work = core::subtractInto(a, b, sub_ref);
    EXPECT_EQ(core::canonicalSubtractWork(a, b), sub_work);
    EXPECT_EQ(core::gallopSubtractInto(a, b, out), sub_work);
    EXPECT_EQ(out, sub_ref);
    EXPECT_EQ(core::simdGallopSubtractInto(a, b, out), sub_work);
    EXPECT_EQ(out, sub_ref);
}

TEST(Kernels, AdversarialPairsAgree)
{
    for (const auto &[a, b] : adversarialPairs()) {
        SCOPED_TRACE("sizes " + std::to_string(a.size()) + " x "
                     + std::to_string(b.size()));
        expectKernelAgreement(a, b);
        expectKernelAgreement(b, a);
    }
}

TEST(Kernels, RandomizedPairsAgree)
{
    Rng rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t size_a = rng.nextBounded(400);
        const std::size_t size_b = 1 + rng.nextBounded(4000);
        const VertexId universe =
            1 + static_cast<VertexId>(rng.nextBounded(8000));
        const auto a = randomList(size_a, universe, 1000 + trial);
        const auto b = randomList(size_b, universe, 2000 + trial);
        SCOPED_TRACE("trial " + std::to_string(trial));
        expectKernelAgreement(a, b);
    }
}

/**
 * Exhaustive residue/alignment sweep for the SIMD tier: the AVX2
 * merge consumes 8-wide blocks with a scalar tail and the gallop
 * probe loads an 8-lane window, so every tail residue mod 8 (0..7)
 * of BOTH lists and misaligned span starts must agree byte-for-byte
 * with the scalar kernels, including empty and singleton lists.
 */
TEST(Kernels, SimdResidueAndAlignmentSweep)
{
    for (const std::size_t base_a : {0ul, 8ul, 64ul, 248ul})
        for (std::size_t ra = 0; ra < 8; ++ra)
            for (const std::size_t base_b : {0ul, 8ul, 512ul})
                for (std::size_t rb = 0; rb < 8; rb += 3) {
                    const std::size_t na = base_a + ra;
                    const std::size_t nb = base_b + rb;
                    const auto a = randomList(na, 2048, 7000 + na);
                    const auto b = randomList(nb, 2048, 8000 + nb);
                    SCOPED_TRACE("sizes " + std::to_string(a.size())
                                 + " x " + std::to_string(b.size()));
                    expectKernelAgreement(a, b);
                    // Misaligned starts: drop the first element so
                    // the span no longer begins on the vector's
                    // natural boundary.
                    if (!a.empty() && !b.empty())
                        expectKernelAgreement(
                            std::span<const VertexId>(a).subspan(1),
                            std::span<const VertexId>(b).subspan(1));
                }
}

/**
 * The host-side kill switch must force the scalar fallback inside an
 * AVX2 binary with byte-identical outputs and charges — this is the
 * same code path a non-AVX2 host takes, so the sweep proves the
 * fallback cannot rot even when CI only has wide machines.
 */
TEST(Kernels, SimdKillSwitchFallbackIsByteIdentical)
{
    const bool was_available = core::simdAvailable();
    const auto a = randomList(517, 4096, 31);   // residue 5
    const auto b = randomList(4096, 8192, 32);  // skewed partner

    std::vector<VertexId> simd_out, scalar_out;
    const core::WorkItems w_on =
        core::simdMergeIntersectInto(a, b, simd_out);

    core::setSimdEnabled(false);
    EXPECT_FALSE(core::simdAvailable());
    const core::WorkItems w_off =
        core::simdMergeIntersectInto(a, b, scalar_out);
    EXPECT_EQ(w_on, w_off);
    EXPECT_EQ(simd_out, scalar_out);

    // The whole agreement battery must also hold with the tier off.
    expectKernelAgreement(a, b);
    expectKernelAgreement(b, a);

    core::setSimdEnabled(true);
    EXPECT_EQ(core::simdAvailable(), was_available);
    if (!was_available)
        return; // scalar-only build/host: nothing more to compare
    expectKernelAgreement(a, b);

    const core::WorkItems w_back =
        core::simdGallopIntersectInto(a, b, simd_out);
    core::setSimdEnabled(false);
    EXPECT_EQ(core::simdGallopIntersectInto(a, b, scalar_out), w_back);
    EXPECT_EQ(simd_out, scalar_out);
    core::setSimdEnabled(true);
}

/**
 * Word-parallel bitmap probes (gather + variable shift) vs. the
 * scalar bit-test loop, across driving-list residues and both filter
 * polarities (intersect keeps members, subtract drops them).
 */
TEST(Kernels, SimdBitmapPathMatchesScalarOnHubLists)
{
    const Graph g = gen::rmat(2048, 20000, 0.57, 0.19, 0.19, 5);
    g.buildHubBitmaps(8, 32ull << 20);
    VertexId hub = 0;
    for (VertexId v = 1; v < g.numVertices(); ++v)
        if (g.degree(v) > g.degree(hub))
            hub = v;
    const std::uint64_t *row = g.hubBitmapRow(hub);
    ASSERT_NE(row, nullptr);
    const auto hub_list = g.neighbors(hub);

    for (std::size_t size = core::kSimdMinSize;
         size < core::kSimdMinSize + 8; ++size) {
        const auto a = randomList(size, g.numVertices(), 600 + size);
        SCOPED_TRACE("driver size " + std::to_string(a.size()));

        std::vector<VertexId> ref, out;
        Count count = 0;
        const core::WorkItems work =
            core::intersectInto(a, hub_list, ref);
        EXPECT_EQ(core::bitmapIntersectInto(a, hub_list, row, out),
                  work);
        EXPECT_EQ(out, ref);
        EXPECT_EQ(core::bitmapIntersectCount(a, hub_list, row, count),
                  work);
        EXPECT_EQ(count, ref.size());

        std::vector<VertexId> sub_ref;
        const core::WorkItems sub_work =
            core::subtractInto(a, hub_list, sub_ref);
        EXPECT_EQ(core::bitmapSubtractInto(a, hub_list, row, out),
                  sub_work);
        EXPECT_EQ(out, sub_ref);

        // Same inputs with the tier off: identical bytes and charges.
        core::setSimdEnabled(false);
        EXPECT_EQ(core::bitmapIntersectInto(a, hub_list, row, out),
                  work);
        EXPECT_EQ(out, ref);
        EXPECT_EQ(core::bitmapSubtractInto(a, hub_list, row, out),
                  sub_work);
        EXPECT_EQ(out, sub_ref);
        core::setSimdEnabled(true);
    }
}

TEST(Kernels, BitmapKernelsMatchReferenceOnHubLists)
{
    const Graph g = gen::rmat(2048, 20000, 0.57, 0.19, 0.19, 5);
    g.buildHubBitmaps(8, 32ull << 20);
    ASSERT_GT(g.hubBitmapCount(), 0u);
    Rng rng(7);
    int tested = 0;
    for (VertexId v = 0; v < g.numVertices() && tested < 50; ++v) {
        const std::uint64_t *row = g.hubBitmapRow(v);
        if (!row)
            continue;
        ++tested;
        const auto hub_list = g.neighbors(v);
        const auto a = randomList(1 + rng.nextBounded(64),
                                  g.numVertices(), 300 + v);
        std::vector<VertexId> ref;
        std::vector<VertexId> out;
        Count count = 0;
        const core::WorkItems work =
            core::intersectInto(a, hub_list, ref);
        EXPECT_EQ(core::bitmapIntersectInto(a, hub_list, row, out),
                  work);
        EXPECT_EQ(out, ref);
        EXPECT_EQ(core::bitmapIntersectCount(a, hub_list, row, count),
                  work);
        EXPECT_EQ(count, ref.size());

        std::vector<VertexId> sub_ref;
        const core::WorkItems sub_work =
            core::subtractInto(a, hub_list, sub_ref);
        EXPECT_EQ(core::bitmapSubtractInto(a, hub_list, row, out),
                  sub_work);
        EXPECT_EQ(out, sub_ref);
    }
    EXPECT_EQ(tested, 50);
}

TEST(Kernels, DispatcherIsModeInvariant)
{
    const Graph g = gen::rmat(2048, 20000, 0.57, 0.19, 0.19, 5);
    g.buildHubBitmaps(8, 32ull << 20);
    VertexId hub = 0;
    for (VertexId v = 1; v < g.numVertices(); ++v)
        if (g.degree(v) > g.degree(hub))
            hub = v;
    ASSERT_NE(g.hubBitmapRow(hub), nullptr);

    const core::ListRef hub_ref(g.neighbors(hub), hub);
    const auto small = randomList(24, g.numVertices(), 42);
    std::vector<VertexId> ref;
    std::vector<VertexId> out;
    const core::WorkItems work =
        core::intersectInto(small, hub_ref.list, ref);

    for (const core::KernelMode mode :
         {core::KernelMode::Auto, core::KernelMode::Merge,
          core::KernelMode::Gallop, core::KernelMode::Bitmap,
          core::KernelMode::Simd}) {
        core::KernelDispatcher dispatcher(mode, &g);
        EXPECT_EQ(dispatcher.intersectInto(core::ListRef(small),
                                           hub_ref, out),
                  work)
            << core::kernelModeName(mode);
        EXPECT_EQ(out, ref) << core::kernelModeName(mode);
        EXPECT_EQ(dispatcher.counters().total(), 1u);
    }
}

TEST(Kernels, DispatcherCountersAttributeKernels)
{
    const Graph g = gen::rmat(2048, 20000, 0.57, 0.19, 0.19, 5);
    g.buildHubBitmaps(8, 32ull << 20);
    VertexId hub = 0;
    for (VertexId v = 1; v < g.numVertices(); ++v)
        if (g.degree(v) > g.degree(hub))
            hub = v;
    const EdgeId hub_degree = g.degree(hub);
    ASSERT_GE(hub_degree, core::kBitmapRatio * 4);

    core::KernelDispatcher dispatcher(core::KernelMode::Auto, &g);
    std::vector<VertexId> out;

    // Tiny vs hub with a row: bitmap.
    const auto tiny = randomList(4, g.numVertices(), 1);
    dispatcher.intersectInto(core::ListRef(tiny),
                             {g.neighbors(hub), hub}, out);
    EXPECT_EQ(dispatcher.counters()[core::KernelKind::Bitmap], 1u);

    // Same skew but no source vertex: gallop (if ratio suffices).
    if (g.neighbors(hub).size() >= core::kGallopRatio * tiny.size()) {
        dispatcher.intersectInto(core::ListRef(tiny),
                                 core::ListRef(g.neighbors(hub)), out);
        EXPECT_EQ(dispatcher.counters()[core::KernelKind::Gallop], 1u);
    }

    // Near-equal large lists: SIMD merge when the tier is live,
    // plain merge otherwise (blocked was demoted from Auto — the
    // calibration sweep showed it losing to merge on every row).
    const auto a = randomList(500, 4096, 2);
    const auto b = randomList(500, 4096, 3);
    dispatcher.intersectInto(core::ListRef(a), core::ListRef(b), out);
    EXPECT_EQ(dispatcher.counters()[core::KernelKind::Blocked], 0u);
    if (core::simdAvailable())
        EXPECT_EQ(dispatcher.counters()[core::KernelKind::SimdMerge],
                  1u);
    else
        EXPECT_EQ(dispatcher.counters()[core::KernelKind::Merge], 1u);

    // Tiny near-equal lists (below kSimdMinSize): reference merge.
    const core::KernelCounters before = dispatcher.counters();
    const auto sa = randomList(8, 64, 4);
    const auto sb = randomList(8, 64, 5);
    dispatcher.intersectInto(core::ListRef(sa), core::ListRef(sb), out);
    EXPECT_EQ(dispatcher.counters()[core::KernelKind::Merge],
              before[core::KernelKind::Merge] + 1);
}

TEST(Kernels, ManyListFoldsMatchAcrossDispatchAndReference)
{
    Rng rng(55);
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t n = 1 + rng.nextBounded(5);
        std::vector<std::vector<VertexId>> storage;
        for (std::size_t i = 0; i < n; ++i)
            storage.push_back(randomList(1 + rng.nextBounded(800),
                                         2000, 70 * trial + i));
        std::vector<std::span<const VertexId>> spans(storage.begin(),
                                                     storage.end());
        std::vector<core::ListRef> refs(storage.begin(), storage.end());

        std::vector<VertexId> ref_out, out, scratch;
        const core::WorkItems ref_work = core::intersectMany(
            {spans.data(), spans.size()}, ref_out, scratch);

        core::KernelDispatcher dispatcher;
        EXPECT_EQ(dispatcher.intersectMany({refs.data(), refs.size()},
                                           out, scratch),
                  ref_work)
            << "trial " << trial;
        EXPECT_EQ(out, ref_out) << "trial " << trial;

        Count ref_count = 0, count = 0;
        std::vector<VertexId> sa, sb;
        const core::WorkItems ref_count_work = core::intersectManyCount(
            {spans.data(), spans.size()}, ref_count, sa, sb);
        EXPECT_EQ(dispatcher.intersectManyCount(
                      {refs.data(), refs.size()}, count, sa, sb),
                  ref_count_work)
            << "trial " << trial;
        EXPECT_EQ(count, ref_count) << "trial " << trial;
    }
}

TEST(Kernels, SingleListConventionsCopyChargesAndProbeIsFree)
{
    const auto list = randomList(100, 1000, 8);
    std::vector<std::span<const VertexId>> spans = {list};
    std::vector<VertexId> out, scratch;
    // The materialized pass-through copy charges 1 WorkItem/element.
    EXPECT_EQ(core::intersectMany({spans.data(), 1}, out, scratch),
              list.size());
    EXPECT_EQ(out, list);
    // The count-only size probe is O(1) and charges nothing.
    Count count = 0;
    std::vector<VertexId> sa, sb;
    EXPECT_EQ(core::intersectManyCount({spans.data(), 1}, count, sa,
                                       sb),
              0u);
    EXPECT_EQ(count, list.size());
}

TEST(Kernels, ContainsAgreesAcrossCutoff)
{
    for (const std::size_t size :
         {0ul, 1ul, 31ul, 32ul, 33ul, 500ul}) {
        const auto list = randomList(size, 700, 60 + size);
        for (VertexId v = 0; v < 700; v += 7) {
            const bool expected = std::binary_search(list.begin(),
                                                     list.end(), v);
            EXPECT_EQ(core::containsLinear(list, v), expected);
            EXPECT_EQ(core::containsBinary(list, v), expected);
            EXPECT_EQ(core::contains(list, v), expected);
        }
    }
}

TEST(Kernels, HubBitmapAdmissionIsCappedAndHottestFirst)
{
    const Graph g = gen::rmat(4096, 60000, 0.6, 0.15, 0.15, 21);
    const std::size_t row_bytes = ((g.numVertices() + 63) / 64) * 8;

    // Uncapped: every vertex at/above threshold has a row.
    g.buildHubBitmaps(16, 1ull << 30);
    std::size_t eligible = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        const bool has_row = g.hubBitmapRow(v) != nullptr;
        EXPECT_EQ(has_row, g.degree(v) >= 16) << "vertex " << v;
        eligible += g.degree(v) >= 16;
    }
    EXPECT_EQ(g.hubBitmapCount(), eligible);
    EXPECT_EQ(g.hubBitmapBytes(), eligible * row_bytes);
    ASSERT_GT(eligible, 8u);

    // Capped to 8 rows: only the 8 hottest keep rows, and no vertex
    // with a row is colder than any vertex without one.
    g.buildHubBitmaps(16, 8 * row_bytes);
    EXPECT_EQ(g.hubBitmapCount(), 8u);
    EXPECT_LE(g.hubBitmapBytes(), 8 * row_bytes);
    EdgeId coldest_admitted = ~EdgeId{0};
    EdgeId hottest_rejected = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (g.hubBitmapRow(v))
            coldest_admitted = std::min(coldest_admitted, g.degree(v));
        else if (g.degree(v) >= 16)
            hottest_rejected = std::max(hottest_rejected, g.degree(v));
    }
    EXPECT_GE(coldest_admitted, hottest_rejected);

    // Zero cap disables the index entirely.
    g.buildHubBitmaps(16, 0);
    EXPECT_EQ(g.hubBitmapCount(), 0u);
    EXPECT_EQ(g.hubBitmapBytes(), 0u);
    EXPECT_EQ(g.hubBitmapRow(0), nullptr);
}

TEST(Kernels, ModeNamesRoundTrip)
{
    for (const core::KernelMode mode :
         {core::KernelMode::Auto, core::KernelMode::Merge,
          core::KernelMode::Gallop, core::KernelMode::Bitmap,
          core::KernelMode::Simd})
        EXPECT_EQ(core::parseKernelMode(core::kernelModeName(mode)),
                  mode);
    EXPECT_THROW(core::parseKernelMode("avx2"), FatalError);
    EXPECT_THROW(core::parseKernelMode("blocked"), FatalError);
}

} // namespace
} // namespace khuzdul
