/**
 * @file
 * End-to-end tests of the `khuzdul` command-line tool: each test
 * shells out to the real binary (path injected by CMake) and checks
 * exit codes and output fragments.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#ifndef KHUZDUL_CLI_PATH
#error "KHUZDUL_CLI_PATH must be defined by the build"
#endif

namespace
{

/** Run a CLI invocation, capturing stdout+stderr and exit code. */
std::pair<int, std::string>
runCli(const std::string &args)
{
    const std::string command =
        std::string(KHUZDUL_CLI_PATH) + " " + args + " 2>&1";
    FILE *pipe = popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string output;
    std::array<char, 4096> buffer;
    while (fgets(buffer.data(), buffer.size(), pipe))
        output += buffer.data();
    const int status = pclose(pipe);
    return {WEXITSTATUS(status), output};
}

TEST(Cli, HelpListsSubcommands)
{
    const auto [code, out] = runCli("help");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("count"), std::string::npos);
    EXPECT_NE(out.find("fsm"), std::string::npos);
}

TEST(Cli, HelpTopicPrintsUsage)
{
    const auto [code, out] = runCli("help count");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("--pattern"), std::string::npos);
    EXPECT_NE(out.find("--stats-json"), std::string::npos);
}

TEST(Cli, UnknownSubcommandFails)
{
    // Exit 1, like every other bad invocation: exit 2 is reserved
    // for unrecoverable modeled faults (see ExitCodeTwo... below).
    const auto [code, out] = runCli("frobnicate");
    EXPECT_EQ(code, 1);
    EXPECT_NE(out.find("unknown subcommand"), std::string::npos);
}

TEST(Cli, CountTrianglesOnGeneratedGraph)
{
    const auto [code, out] =
        runCli("count --graph er:500:2000:3 --pattern triangle "
               "--nodes 2");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("embeddings of P3[0-1,0-2,1-2]"),
              std::string::npos);
    EXPECT_NE(out.find("modeled cluster time"), std::string::npos);
}

TEST(Cli, CountMatchesAcrossSystems)
{
    const auto a = runCli("count --graph rmat:800:4000:0.5:9 "
                          "--pattern clique4 --system automine");
    const auto b = runCli("count --graph rmat:800:4000:0.5:9 "
                          "--pattern clique4 --system graphpi");
    EXPECT_EQ(a.first, 0);
    EXPECT_EQ(b.first, 0);
    // First line carries the count; it must be identical.
    EXPECT_EQ(a.second.substr(0, a.second.find('\n')),
              b.second.substr(0, b.second.find('\n')));
}

TEST(Cli, KernelModesAreObservationallyEquivalent)
{
    // Every --kernel mode must report the same count AND the same
    // modeled cluster time: kernels change wall-clock only, never
    // the simulated machine.  Also exercises the --key=value form.
    const auto modeled = [](const std::string &out) {
        // Everything up to (but excluding) the host wall-time line,
        // the only nondeterministic part of the report.
        const auto pos = out.find("host wall time");
        EXPECT_NE(pos, std::string::npos);
        return out.substr(0, pos);
    };
    const std::string base = "count --graph rmat:800:4000:0.5:9 "
                             "--pattern clique4 --nodes 2 ";
    const auto reference = runCli(base + "--kernel merge");
    ASSERT_EQ(reference.first, 0);
    EXPECT_NE(reference.second.find("modeled cluster time"),
              std::string::npos);
    for (const std::string flag :
         {"--kernel auto", "--kernel=gallop", "--kernel=bitmap",
          "--kernel simd"}) {
        const auto [code, out] = runCli(base + flag);
        EXPECT_EQ(code, 0) << flag;
        EXPECT_EQ(modeled(out), modeled(reference.second)) << flag;
    }
    // Unknown kernel names still abort with the usage string.
    EXPECT_EQ(runCli(base + "--kernel avx2").first, 1);
}

TEST(Cli, PlanPrintsLevels)
{
    const auto [code, out] =
        runCli("plan --pattern 0-1,1-2,2-0 --system automine");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("L1:"), std::string::npos);
    EXPECT_NE(out.find("divisor=1"), std::string::npos);
}

TEST(Cli, GenerateConvertInfoRoundTrip)
{
    const std::string el = testing::TempDir() + "/cli_test.el";
    const std::string bin = testing::TempDir() + "/cli_test.bin";
    auto [gcode, gout] =
        runCli("generate --spec sw:1000:3:0.1:5 --out " + el);
    EXPECT_EQ(gcode, 0);
    auto [ccode, cout_] =
        runCli("convert --in " + el + " --out " + bin
               + " --format binary");
    EXPECT_EQ(ccode, 0);
    auto [icode, iout] = runCli("info --graph " + bin);
    EXPECT_EQ(icode, 0);
    EXPECT_NE(iout.find("vertices:    1,000"), std::string::npos);
    std::remove(el.c_str());
    std::remove(bin.c_str());
}

TEST(Cli, MotifsAndFsmRun)
{
    const auto motifs =
        runCli("motifs --graph er:400:1600:2 --size 3 --nodes 2");
    EXPECT_EQ(motifs.first, 0);
    // Both size-3 motifs appear (wedge + triangle).
    EXPECT_NE(motifs.second.find("P3[0-1,0-2,1-2]"),
              std::string::npos);

    const auto fsm = runCli("fsm --graph er:400:1600:2 --labels 2 "
                            "--support 50 --max-edges 2 --nodes 2");
    EXPECT_EQ(fsm.first, 0);
    EXPECT_NE(fsm.second.find("frequent patterns"), std::string::npos);
}

TEST(Cli, ServeRunsQueriesConcurrently)
{
    const auto [code, out] =
        runCli("serve --graph rmat:800:4000:0.5:9 "
               "--query triangle --query triangle --query diamond "
               "--nodes 3 --max-in-flight 2");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("query 0"), std::string::npos);
    EXPECT_NE(out.find("query 2"), std::string::npos);
    EXPECT_NE(out.find("3 queries"), std::string::npos);
    EXPECT_NE(out.find("cross-query shared-cache hits"),
              std::string::npos);
    // The determinism contract in action: the identical queries 0
    // and 1 print identical count + modeled-time lines.
    const auto line_of = [&out](const std::string &prefix) {
        const std::size_t at = out.find(prefix);
        EXPECT_NE(at, std::string::npos) << prefix;
        return out.substr(at + prefix.size(),
                          out.find('\n', at) - at - prefix.size());
    };
    EXPECT_EQ(line_of("query 0"), line_of("query 1"));
}

TEST(Cli, ServeCountsMatchSingleQueryCount)
{
    const auto serve =
        runCli("serve --graph er:500:2000:3 --query clique4 "
               "--nodes 2");
    const auto count =
        runCli("count --graph er:500:2000:3 --pattern clique4 "
               "--nodes 2");
    EXPECT_EQ(serve.first, 0);
    EXPECT_EQ(count.first, 0);
    // `count` prints "N embeddings of ..."; the serve row must
    // contain the same formatted N.
    const std::size_t end = count.second.find(" embeddings of");
    ASSERT_NE(end, std::string::npos);
    const std::string n = count.second.substr(0, end);
    EXPECT_NE(serve.second.find(n + " embeddings"),
              std::string::npos)
        << serve.second;
}

TEST(Cli, ServeRequiresAQuery)
{
    const auto [code, out] =
        runCli("serve --graph er:200:800:3");
    EXPECT_EQ(code, 1);
    EXPECT_NE(out.find("--query"), std::string::npos);
}

TEST(Cli, HelpDocumentsServe)
{
    const auto [code, out] = runCli("help serve");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("--max-in-flight"), std::string::npos);
    EXPECT_NE(out.find("bit-identical"), std::string::npos);
}

TEST(Cli, StatsJsonWritesMachineReadableDump)
{
    const std::string path = testing::TempDir() + "/cli_stats.json";
    const auto [code, out] =
        runCli("count --graph er:500:2000:3 --pattern triangle "
               "--nodes 2 --stats-json " + path);
    EXPECT_EQ(code, 0);
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream content;
    content << in.rdbuf();
    const std::string json = content.str();
    EXPECT_NE(json.find("\"makespan_ns\":"), std::string::npos);
    EXPECT_NE(json.find("\"bytes_sent\":"), std::string::npos);
    EXPECT_NE(json.find("\"nodes\": ["), std::string::npos);
    std::remove(path.c_str());
}

TEST(Cli, ThreadsFlagIsParsedAndResultInvariant)
{
    // The first line (count) and the modeled cluster time must be
    // identical for every --threads value; both spellings of the
    // flag parse; garbage is rejected.
    const auto modeled = [](const std::string &out) {
        const auto pos = out.find("host wall time");
        EXPECT_NE(pos, std::string::npos);
        return out.substr(0, pos);
    };
    const std::string base = "count --graph rmat:800:4000:0.5:9 "
                             "--pattern clique4 --nodes 2 ";
    const auto reference = runCli(base + "--threads 1");
    ASSERT_EQ(reference.first, 0);
    for (const std::string flag :
         {"--threads 2", "--threads=4", "--threads 0"}) {
        const auto [code, out] = runCli(base + flag);
        EXPECT_EQ(code, 0) << flag;
        EXPECT_EQ(modeled(out), modeled(reference.second)) << flag;
    }
    EXPECT_EQ(runCli(base + "--threads lots").first, 1);
}

TEST(Cli, StatsJsonReportsHostThreads)
{
    // --nodes 2 with the default two sockets gives four execution
    // units, so a three-thread request is used as-is.
    const std::string path = testing::TempDir() + "/cli_host.json";
    const auto [code, out] =
        runCli("count --graph er:500:2000:3 --pattern triangle "
               "--nodes 2 --threads 3 --stats-json " + path);
    EXPECT_EQ(code, 0);
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream content;
    content << in.rdbuf();
    const std::string json = content.str();
    EXPECT_NE(json.find("\"host\": {\"threads\": 3"),
              std::string::npos);
    EXPECT_NE(json.find("\"wall_ns\":"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Cli, TraceWritesJsonLines)
{
    const std::string path = testing::TempDir() + "/cli_trace.jsonl";
    const auto [code, out] =
        runCli("count --graph er:500:2000:3 --pattern triangle "
               "--nodes 2 --trace " + path);
    EXPECT_EQ(code, 0);
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
    EXPECT_EQ(line.rfind("{\"event\":\"", 0), 0u);
    EXPECT_NE(line.find("\"unit\":"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Cli, FaultPlanRoundTripsIntoStatsJson)
{
    // --fault is repeatable; every spec lands in the plan and the
    // run reports its recovery work in the faults block — with the
    // count unchanged from the healthy run.
    const std::string path = testing::TempDir() + "/cli_faults.json";
    const std::string base =
        "count --graph er:500:2000:3 --pattern triangle --nodes 4 ";
    const auto healthy = runCli(base);
    ASSERT_EQ(healthy.first, 0);
    const auto [code, out] =
        runCli(base
               + "--fault drop:0-1:msg=1:count=2 "
                 "--fault 'timeout:*-*:msg=2' --stats-json " + path);
    EXPECT_EQ(code, 0);
    // First line carries the count; faults must not change it.
    EXPECT_EQ(out.substr(0, out.find('\n')),
              healthy.second.substr(0, healthy.second.find('\n')));
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream content;
    content << in.rdbuf();
    const std::string json = content.str();
    EXPECT_NE(json.find("\"faults\": {\"injected\": "),
              std::string::npos);
    EXPECT_NE(json.find("\"recovery_ns\": "), std::string::npos);
    EXPECT_EQ(json.find("\"injected\": 0,"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Cli, FaultedStatsAreThreadCountInvariant)
{
    const std::string base =
        "count --graph er:500:2000:3 --pattern triangle --nodes 4 "
        "--fault 'drop:*-*:msg=1:count=4' --fault down:node=2:from=0 ";
    const auto modeled = [](const std::string &out) {
        const auto pos = out.find("host wall time");
        EXPECT_NE(pos, std::string::npos);
        return out.substr(0, pos);
    };
    const auto reference = runCli(base + "--threads 1");
    ASSERT_EQ(reference.first, 0);
    for (const std::string flag : {"--threads 2", "--threads 8"}) {
        const auto [code, out] = runCli(base + flag);
        EXPECT_EQ(code, 0) << flag;
        EXPECT_EQ(modeled(out), modeled(reference.second)) << flag;
    }
}

TEST(Cli, MalformedFaultSpecsAreRejected)
{
    const std::string base =
        "count --graph er:200:800:3 --pattern triangle ";
    for (const std::string spec :
         {"drop:0-1", "explode:0-1:msg=1", "degrade:0-1:factor=0.5",
          "down:from=10"}) {
        const auto [code, out] = runCli(base + "--fault '" + spec + "'");
        EXPECT_EQ(code, 1) << spec;
        EXPECT_NE(out.find("fault"), std::string::npos) << spec;
    }
}

TEST(Cli, HelpDocumentsFaultGrammar)
{
    const auto [code, out] = runCli("help count");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("--fault"), std::string::npos);
    EXPECT_NE(out.find("drop:SRC-DST:msg=N"), std::string::npos);
    EXPECT_NE(out.find("--fault-retries"), std::string::npos);
}

TEST(Cli, HelpDocumentsKernelFaultAndStealFlagsEverywhere)
{
    // PRs 5-7 grew the engine flags; every counting subcommand's
    // help must document them, not just `count`.
    for (const std::string topic :
         {"help count", "help motifs", "help fsm"}) {
        const auto [code, out] = runCli(topic);
        EXPECT_EQ(code, 0) << topic;
        EXPECT_NE(out.find("--kernel"), std::string::npos) << topic;
        EXPECT_NE(out.find("--fault"), std::string::npos) << topic;
        EXPECT_NE(out.find("--threads"), std::string::npos) << topic;
        EXPECT_NE(out.find("--steal"), std::string::npos) << topic;
        EXPECT_NE(out.find("--steal-threshold"), std::string::npos)
            << topic;
    }
}

TEST(Cli, StealFlagKeepsCountsAndReportsStealsBlock)
{
    // --steal on must leave the count untouched, and the stats dump
    // must carry the steals block (present even when nothing was
    // stolen, so consumers can rely on the key).
    const std::string path = testing::TempDir() + "/cli_steal.json";
    const std::string base =
        "count --graph rmat:800:4000:0.5:9 --pattern clique4 "
        "--nodes 4 ";
    const auto off = runCli(base + "--steal off");
    ASSERT_EQ(off.first, 0);
    const auto [code, out] =
        runCli(base + "--steal on --stats-json " + path);
    EXPECT_EQ(code, 0);
    // First line carries the count; stealing moves modeled time,
    // never work.
    EXPECT_EQ(out.substr(0, out.find('\n')),
              off.second.substr(0, off.second.find('\n')));
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream content;
    content << in.rdbuf();
    const std::string json = content.str();
    EXPECT_NE(json.find("\"steals\": {\"stolen\": "),
              std::string::npos);
    EXPECT_NE(json.find("\"chunks_stolen\": "), std::string::npos);
    std::remove(path.c_str());

    // Garbage values are rejected with the flag named.
    const auto bad = runCli(base + "--steal banana");
    EXPECT_EQ(bad.first, 1);
    EXPECT_NE(bad.second.find("--steal"), std::string::npos);
}

TEST(Cli, StolenStatsAreThreadCountInvariant)
{
    const std::string base =
        "count --graph er:500:2000:3 --pattern triangle --nodes 4 "
        "--steal on --fault 'degrade:3-*:factor=5:from=0' ";
    const auto modeled = [](const std::string &out) {
        const auto pos = out.find("host wall time");
        EXPECT_NE(pos, std::string::npos);
        return out.substr(0, pos);
    };
    const auto reference = runCli(base + "--threads 1");
    ASSERT_EQ(reference.first, 0);
    for (const std::string flag : {"--threads 2", "--threads 8"}) {
        const auto [code, out] = runCli(base + flag);
        EXPECT_EQ(code, 0) << flag;
        EXPECT_EQ(modeled(out), modeled(reference.second)) << flag;
    }
}

TEST(Cli, CrashFaultKeepsCountAndReportsRecoveryBlock)
{
    const std::string path = testing::TempDir() + "/cli_crash.json";
    const std::string base =
        "count --graph er:500:2000:3 --pattern triangle --nodes 4 "
        "--chunk-bytes 65536 ";
    const auto healthy = runCli(base);
    ASSERT_EQ(healthy.first, 0);
    const auto [code, out] =
        runCli(base + "--fault crash:1:level=1:chunk=1 --stats-json "
               + path);
    EXPECT_EQ(code, 0);
    // First line carries the count; a crash re-attributes modeled
    // time, it never loses work.
    EXPECT_EQ(out.substr(0, out.find('\n')),
              healthy.second.substr(0, healthy.second.find('\n')));
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream content;
    content << in.rdbuf();
    const std::string json = content.str();
    EXPECT_NE(json.find("\"recovery\": {\"checkpoints\": "),
              std::string::npos);
    EXPECT_NE(json.find("\"crashes\": 1"), std::string::npos);
    EXPECT_EQ(json.find("\"adopted\": 0,"), std::string::npos);
    std::remove(path.c_str());

    // Out-of-range unit and malformed crash specs fail loudly.
    EXPECT_EQ(runCli(base + "--fault crash:99:level=0").first, 1);
    EXPECT_EQ(runCli(base + "--fault crash:1").first, 1);
}

TEST(Cli, ExitCodeTwoForUnrecoverableModeledFault)
{
    // A plan with no recovery path (every retry of every batch is
    // dropped) must surface as one clean error line and the
    // documented exit code 2 — never an abort or a zero exit.
    const auto [code, out] =
        runCli("count --graph er:500:2000:3 --pattern triangle "
               "--nodes 4 --fault 'drop:*-*:msg=1:count=100000' "
               "--fault-retries 0");
    EXPECT_EQ(code, 2);
    EXPECT_NE(out.find("unrecoverable modeled fault:"),
              std::string::npos);
    // One line, no stack trace / assertion spew.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);

    // A crash plan that kills every unit is equally unrecoverable.
    const auto all_dead =
        runCli("serve --graph er:200:800:3 --nodes 1 --sockets 1 "
               "--query triangle --fault crash:0:level=0");
    EXPECT_EQ(all_dead.first, 1); // serve reports it per-query
    EXPECT_NE(all_dead.second.find("FAILED"), std::string::npos);
}

TEST(Cli, ServeExitsNonzeroWhenAnyQueryFails)
{
    // One healthy query + one that exceeds a tiny modeled deadline:
    // the run prints both rows but must not exit 0.
    const auto [code, out] =
        runCli("serve --graph er:500:2000:3 --nodes 2 "
               "--query triangle --query clique4 --deadline 10");
    EXPECT_EQ(code, 1);
    EXPECT_NE(out.find("FAILED"), std::string::npos);
    EXPECT_NE(out.find("deadline"), std::string::npos);
    EXPECT_NE(out.find("queries failed"), std::string::npos);

    // All-healthy serve keeps exiting 0 (regression guard for the
    // new failure accounting).
    const auto ok =
        runCli("serve --graph er:500:2000:3 --nodes 2 "
               "--query triangle");
    EXPECT_EQ(ok.first, 0);
}

TEST(Cli, ServeRetriesAreBoundedAndReported)
{
    // Deterministic failures fail every attempt: the retry budget
    // is spent and the final error says so.
    const auto [code, out] =
        runCli("serve --graph er:500:2000:3 --nodes 2 "
               "--query triangle --deadline 10 --query-retries 2");
    EXPECT_EQ(code, 1);
    EXPECT_NE(out.find("retry budget exhausted after 3 attempts"),
              std::string::npos);
}

TEST(Cli, HelpDocumentsRecoveryFlagsEverywhere)
{
    for (const std::string topic :
         {"help count", "help motifs", "help fsm"}) {
        const auto [code, out] = runCli(topic);
        EXPECT_EQ(code, 0) << topic;
        EXPECT_NE(out.find("crash:UNIT:level=L"), std::string::npos)
            << topic;
        EXPECT_NE(out.find("--checkpoint"), std::string::npos)
            << topic;
        EXPECT_NE(out.find("--deadline"), std::string::npos) << topic;
    }
    const auto count = runCli("help count");
    EXPECT_NE(count.second.find("exit codes"), std::string::npos);
    const auto serve = runCli("help serve");
    EXPECT_EQ(serve.first, 0);
    EXPECT_NE(serve.second.find("--query-retries"),
              std::string::npos);
    EXPECT_NE(serve.second.find("--deadline"), std::string::npos);
}

TEST(Cli, BadInputsReportErrors)
{
    EXPECT_EQ(runCli("count --graph /nonexistent.el "
                     "--pattern triangle").first, 1);
    EXPECT_EQ(runCli("count --graph er:100:200 "
                     "--pattern bogus+spec").first, 1);
    EXPECT_EQ(runCli("plan --pattern 0-1,2-3").first, 1); // disconnected
}

} // namespace
