/**
 * @file
 * khuzdul_lint analyzer tests: fixture snippets fed through
 * analyzeSource (one positive and one suppressed case per rule),
 * allowlist parsing, stale-suppression detection and the --json
 * report shape.  The real-tree gate itself is the khuzdul_lint_src
 * ctest registered in tools/CMakeLists.txt.
 */

#include "tools/lint/analyzer.hh"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

namespace lint = khuzdul::lint;

namespace
{

lint::Report
run(const std::string &path, const std::string &source,
    std::vector<lint::AllowlistEntry> *allowlist = nullptr)
{
    lint::Report report;
    lint::analyzeSource(path, source, allowlist, report);
    return report;
}

int
liveCount(const lint::Report &report, const std::string &rule)
{
    int n = 0;
    for (const lint::Finding &f : report.findings)
        if (f.rule == rule && f.live())
            ++n;
    return n;
}

int
suppressedCount(const lint::Report &report, const std::string &rule)
{
    int n = 0;
    for (const lint::Finding &f : report.findings)
        if (f.rule == rule && !f.live())
            ++n;
    return n;
}

} // namespace

// ----------------------------------------------------------------
// Rules table.
// ----------------------------------------------------------------

TEST(LintRules, TableListsEveryContractRule)
{
    std::vector<std::string> ids;
    for (const lint::RuleInfo &r : lint::rules())
        ids.push_back(r.id);
    const std::vector<std::string> expected = {
        "wall-clock",   "prng",         "unordered-iter",
        "thread-primitive", "fabric-mutation", "fault-modeled-state",
        "simd-intrinsics",
        "header-guard", "using-namespace-header",
        "taint-wall-clock", "taint-prng", "taint-unordered-iter",
        "taint-thread-primitive", "taint-fabric-mutation",
        "taint-host-time", "layering"};
    EXPECT_EQ(ids, expected);
    for (const std::string &id : ids)
        EXPECT_TRUE(lint::isRuleId(id));
    EXPECT_FALSE(lint::isRuleId("no-such-rule"));
}

// ----------------------------------------------------------------
// wall-clock.
// ----------------------------------------------------------------

TEST(LintWallClock, FlagsSteadyClockAnywhereUnderSrc)
{
    const auto r = run("src/graph/io.cc",
                       "auto t = std::chrono::steady_clock::now();\n");
    EXPECT_EQ(liveCount(r, "wall-clock"), 1);
    EXPECT_EQ(r.findings[0].line, 1);
}

TEST(LintWallClock, SameLineAnnotationSuppressesWithReason)
{
    const auto r = run(
        "src/core/engine.cc",
        "auto t = std::chrono::steady_clock::now(); "
        "// khuzdul-lint: allow(wall-clock) host wall-time only\n");
    EXPECT_EQ(liveCount(r, "wall-clock"), 0);
    EXPECT_EQ(suppressedCount(r, "wall-clock"), 1);
    EXPECT_EQ(r.findings[0].suppression,
              lint::SuppressionKind::Annotation);
    EXPECT_EQ(r.findings[0].reason, "host wall-time only");
    EXPECT_TRUE(r.passes(true));
}

TEST(LintWallClock, CommentsAndStringsAreNotCode)
{
    const auto r = run("src/core/engine.cc",
                       "// steady_clock mentioned in prose\n"
                       "/* system_clock too */\n"
                       "const char *s = \"random_device\";\n");
    EXPECT_TRUE(r.findings.empty());
}

// ----------------------------------------------------------------
// prng.
// ----------------------------------------------------------------

TEST(LintPrng, FlagsStdRandomSources)
{
    const auto r = run("src/graph/generators.cc",
                       "#include <random>\n"
                       "std::random_device rd;\n"
                       "int x = rand() % 7;\n");
    EXPECT_EQ(liveCount(r, "prng"), 3);
}

TEST(LintPrng, PreviousLineAnnotationSuppresses)
{
    const auto r =
        run("src/graph/generators.cc",
            "// khuzdul-lint: allow(prng) seeding jitter for the "
            "host-only warmup path\n"
            "std::random_device rd;\n");
    EXPECT_EQ(liveCount(r, "prng"), 0);
    EXPECT_EQ(suppressedCount(r, "prng"), 1);
}

TEST(LintPrng, DoesNotFlagWordsContainingRand)
{
    const auto r = run("src/core/extender.cc",
                       "int operand = 3; auto rando = operand;\n");
    EXPECT_EQ(liveCount(r, "prng"), 0);
}

// ----------------------------------------------------------------
// unordered-iter.
// ----------------------------------------------------------------

TEST(LintUnordered, FlagsUseInModeledZoneButNotOutside)
{
    const std::string code =
        "std::unordered_map<int, int> m;\n";
    EXPECT_EQ(liveCount(run("src/sim/stats.cc", code),
                        "unordered-iter"),
              1);
    EXPECT_EQ(liveCount(run("src/core/provider.cc", code),
                        "unordered-iter"),
              1);
    EXPECT_EQ(liveCount(run("src/engines/gthinker.cc", code),
                        "unordered-iter"),
              1);
    // graph/, pattern/, apps/, support/ are outside the modeled
    // zones; hash containers are fine there.
    EXPECT_EQ(liveCount(run("src/graph/builder.cc", code),
                        "unordered-iter"),
              0);
    EXPECT_EQ(liveCount(run("src/apps/fsm.cc", code),
                        "unordered-iter"),
              0);
}

TEST(LintUnordered, IncludeLinesAreNotUses)
{
    const auto r = run("src/sim/stats.cc",
                       "#include <unordered_map>\n");
    EXPECT_EQ(liveCount(r, "unordered-iter"), 0);
}

TEST(LintUnordered, LookupOnlyAnnotationSuppresses)
{
    const auto r = run(
        "src/core/cache.hh",
        "#ifndef X\n"
        "// khuzdul-lint: allow(unordered-iter) lookup-only residency "
        "map; order lives elsewhere\n"
        "std::unordered_map<int, int> entries_;\n"
        "#endif\n");
    EXPECT_EQ(liveCount(r, "unordered-iter"), 0);
    EXPECT_EQ(suppressedCount(r, "unordered-iter"), 1);
}

// ----------------------------------------------------------------
// thread-primitive.
// ----------------------------------------------------------------

TEST(LintThread, FlagsPrimitivesInModeledZones)
{
    const auto r = run("src/core/extender.cc",
                       "std::mutex m;\n"
                       "std::atomic<int> a{0};\n"
                       "auto id = std::this_thread::get_id();\n"
                       "#include <thread>\n");
    EXPECT_EQ(liveCount(r, "thread-primitive"), 4);
}

TEST(LintThread, ParallelRuntimeDirIsExempt)
{
    const auto r = run("src/core/parallel/thread_pool.cc",
                       "std::mutex m;\n"
                       "std::condition_variable cv;\n");
    EXPECT_EQ(liveCount(r, "thread-primitive"), 0);
}

TEST(LintThread, ServiceRuntimeDirIsExempt)
{
    // The service layer is host-side scheduling machinery like the
    // pool: thread primitives are its job, not a contract breach.
    const auto r = run("src/core/service/service.cc",
                       "std::mutex m;\n"
                       "std::condition_variable cv;\n"
                       "std::thread dispatcher;\n");
    EXPECT_EQ(liveCount(r, "thread-primitive"), 0);
}

TEST(LintThread, ServiceRuntimeKeepsModeledRules)
{
    // Only thread-primitive is relaxed there: the service must not
    // read wall clocks or iterate unordered containers any more
    // than the engine may.
    const auto r = run(
        "src/core/service/service.cc",
        "auto t = std::chrono::steady_clock::now();\n"
        "for (const auto &kv : map_) use(kv);\n");
    EXPECT_EQ(liveCount(r, "wall-clock"), 1);
    const auto r2 = run("src/core/service/service.hh",
                        "std::unordered_map<int, int> results_;\n"
                        "for (const auto &kv : results_) emit(kv);\n");
    EXPECT_EQ(liveCount(r2, "unordered-iter"), 1);
}

TEST(LintThread, PlainIdentifiersDoNotMatch)
{
    const auto r = run("src/core/engine.cc",
                       "unsigned threads = config.hostThreads;\n"
                       "ThreadPool pool(threads);\n");
    EXPECT_EQ(liveCount(r, "thread-primitive"), 0);
}

TEST(LintThread, AnnotationSuppresses)
{
    const auto r = run("src/sim/trace.cc",
                       "// khuzdul-lint: allow(thread-primitive) "
                       "per-unit flush token, merged in unit order\n"
                       "std::atomic<bool> flushed{false};\n");
    EXPECT_EQ(liveCount(r, "thread-primitive"), 0);
    EXPECT_EQ(suppressedCount(r, "thread-primitive"), 1);
}

// ----------------------------------------------------------------
// fabric-mutation.
// ----------------------------------------------------------------

TEST(LintFabric, FlagsRawMutatorsOutsideFabricImpl)
{
    const auto r = run("src/engines/khuzdul_system.cc",
                       "fabric.setByteCap(1024);\n"
                       "double ns = f.recordTransfer(0, 1, 64, 1);\n"
                       "fabric_.reset();\n"
                       "fabric_.apply(delta);\n");
    EXPECT_EQ(liveCount(r, "fabric-mutation"), 3); // apply is fine
}

TEST(LintFabric, FabricImplAndAnnotationAreExempt)
{
    const std::string mutators = "setByteCap(0);\n"
                                 "recordTransfer(0, 1, 64, 1);\n";
    EXPECT_EQ(liveCount(run("src/sim/fabric.cc", mutators),
                        "fabric-mutation"),
              0);
    const auto r = run("src/core/circulant.cc",
                       "// khuzdul-lint: allow(fabric-mutation) issue "
                       "is the sanctioned entry point\n"
                       "batch.commNs = recorder.recordTransfer(n, d, "
                       "b, l);\n");
    EXPECT_EQ(liveCount(r, "fabric-mutation"), 0);
    EXPECT_EQ(suppressedCount(r, "fabric-mutation"), 1);
}

// ----------------------------------------------------------------
// fault-modeled-state.
// ----------------------------------------------------------------

TEST(LintFaultState, FlagsHostTimeSymbolsInRecoveryPaths)
{
    // The quoted-include form is invisible to token rules (string
    // contents are blanked), but using the header requires naming
    // Timer/elapsedNs, which the rule does see.
    const std::string code = "Timer t;\n"
                             "double ns = t.elapsedNs();\n"
                             "stats.hostWallNs += ns;\n";
    EXPECT_EQ(liveCount(run("src/sim/faults.cc", code),
                        "fault-modeled-state"),
              3);
    EXPECT_EQ(liveCount(run("src/core/provider.cc", code),
                        "fault-modeled-state"),
              3);
    EXPECT_EQ(liveCount(run("src/core/circulant.hh", code),
                        "fault-modeled-state"),
              3);
}

TEST(LintFaultState, OtherModeledFilesAreOutOfScope)
{
    // engine.cc's hostWallNs accounting is policed by the wall-clock
    // rule; this rule fences the fault/recovery TUs specifically.
    const std::string code = "stats.hostWallNs += 1;\n";
    EXPECT_EQ(liveCount(run("src/sim/stats.cc", code),
                        "fault-modeled-state"),
              0);
    EXPECT_EQ(liveCount(run("src/core/engine.cc", code),
                        "fault-modeled-state"),
              0);
    EXPECT_EQ(liveCount(run("src/core/circulant_helper.cc", code),
                        "fault-modeled-state"),
              0);
}

TEST(LintFaultState, StealZoneIsFenced)
{
    // core/steal/ plans migrations from merged modeled ledgers; a
    // host-time read there would make stolen schedules depend on
    // the machine the simulation ran on.
    const std::string code = "Timer t;\n"
                             "double ns = t.elapsedNs();\n"
                             "stats.hostWallNs += ns;\n";
    EXPECT_EQ(liveCount(run("src/core/steal/steal.cc", code),
                        "fault-modeled-state"),
              3);
    EXPECT_EQ(liveCount(run("src/core/steal/steal.hh", code),
                        "fault-modeled-state"),
              3);
    // The thread-primitive fence applies automatically: core/steal/
    // is a modeled zone and not part of the parallel runtime.
    EXPECT_EQ(liveCount(run("src/core/steal/steal.cc",
                            "std::mutex m;\n"
                            "std::atomic<int> n{0};\n"),
                        "thread-primitive"),
              2);
}

TEST(LintFaultState, ModeledClockIdentifiersDoNotMatch)
{
    const auto r = run("src/sim/faults.cc",
                       "clockNs_ += charge.chargeNs;\n"
                       "double backoff = cost->retryBackoffNs;\n"
                       "faults->advance(backoff);\n");
    EXPECT_EQ(liveCount(r, "fault-modeled-state"), 0);
}

TEST(LintFaultState, AnnotationSuppressesWithReason)
{
    const auto r = run("src/core/provider.cc",
                       "// khuzdul-lint: allow(fault-modeled-state) "
                       "host-side debug counter, not a trigger input\n"
                       "double w = t.elapsedNs();\n");
    EXPECT_EQ(liveCount(r, "fault-modeled-state"), 0);
    EXPECT_EQ(suppressedCount(r, "fault-modeled-state"), 1);
}

// ----------------------------------------------------------------
// simd-intrinsics.
// ----------------------------------------------------------------

TEST(LintSimdIntrinsics, FlagsIntrinsicsOutsideKernelTier)
{
    const std::string code = "#include <immintrin.h>\n"
                             "__m256i v = _mm256_loadu_si256(p);\n"
                             "int m = __builtin_ia32_pmovmskb256(x);\n";
    EXPECT_EQ(liveCount(run("src/core/extender.cc", code),
                        "simd-intrinsics"),
              3);
    EXPECT_EQ(liveCount(run("src/graph/graph.cc", code),
                        "simd-intrinsics"),
              3);
    EXPECT_EQ(liveCount(run("src/sim/fabric.cc", code),
                        "simd-intrinsics"),
              3);
}

TEST(LintSimdIntrinsics, KernelTierIsExempt)
{
    const std::string code = "#include <immintrin.h>\n"
                             "__m256i v = _mm256_setzero_si256();\n";
    EXPECT_EQ(liveCount(run("src/core/kernels/simd.cc", code),
                        "simd-intrinsics"),
              0);
    EXPECT_EQ(liveCount(run("src/core/kernels/bitmap.cc", code),
                        "simd-intrinsics"),
              0);
}

TEST(LintSimdIntrinsics, ScalarMentionsAreNotIntrinsics)
{
    // Prose, strings and near-miss identifiers must not trip the
    // token rules; real intrinsic calls in comments are still prose.
    const auto r = run("src/core/engine.cc",
                       "// _mm256_add_epi32 mentioned in prose\n"
                       "const char *s = \"__m256i\";\n"
                       "int simd_merge_calls = 0;\n"
                       "int mm_total = mm_count(3);\n");
    EXPECT_EQ(liveCount(r, "simd-intrinsics"), 0);
}

TEST(LintSimdIntrinsics, AnnotationSuppressesWithReason)
{
    const auto r = run("src/graph/builder.cc",
                       "// khuzdul-lint: allow(simd-intrinsics) "
                       "prefetch hint only, no data-dependent lanes\n"
                       "_mm_prefetch(ptr, 1);\n");
    EXPECT_EQ(liveCount(r, "simd-intrinsics"), 0);
    EXPECT_EQ(suppressedCount(r, "simd-intrinsics"), 1);
}

// ----------------------------------------------------------------
// header hygiene.
// ----------------------------------------------------------------

TEST(LintHeaderGuard, FlagsUnguardedHeader)
{
    const auto r = run("src/graph/new_thing.hh",
                       "/* prose */\n"
                       "int f();\n");
    EXPECT_EQ(liveCount(r, "header-guard"), 1);
    EXPECT_EQ(r.findings[0].line, 2);
}

TEST(LintHeaderGuard, AcceptsGuardOrPragmaAfterComments)
{
    EXPECT_TRUE(run("src/a.hh",
                    "/** @file doc */\n"
                    "#ifndef A_HH\n#define A_HH\n#endif\n")
                    .findings.empty());
    EXPECT_TRUE(
        run("src/b.hh", "#pragma once\nint f();\n").findings.empty());
    // .cc files need no guard.
    EXPECT_TRUE(run("src/c.cc", "int f() { return 0; }\n")
                    .findings.empty());
}

TEST(LintHeaderGuard, AllowlistSuppresses)
{
    std::vector<lint::AllowlistEntry> allow;
    std::vector<std::string> errors;
    allow = lint::parseAllowlist(
        "src/graph/legacy.hh header-guard vendored header kept "
        "verbatim\n",
        "allow.txt", errors);
    ASSERT_TRUE(errors.empty());
    const auto r = run("src/graph/legacy.hh", "int f();\n", &allow);
    EXPECT_EQ(liveCount(r, "header-guard"), 0);
    EXPECT_EQ(suppressedCount(r, "header-guard"), 1);
    EXPECT_EQ(r.findings[0].suppression,
              lint::SuppressionKind::Allowlist);
    EXPECT_TRUE(allow[0].used);
}

TEST(LintUsingNamespace, FlagsHeadersOnly)
{
    const std::string code = "#pragma once\nusing namespace std;\n";
    EXPECT_EQ(liveCount(run("src/core/x.hh", code),
                        "using-namespace-header"),
              1);
    EXPECT_EQ(liveCount(run("src/core/x.cc", "using namespace std;\n"),
                        "using-namespace-header"),
              0);
}

TEST(LintUsingNamespace, AnnotationSuppresses)
{
    const auto r = run("src/core/x.hh",
                       "#pragma once\n"
                       "// khuzdul-lint: allow(using-namespace-header) "
                       "literal operators need it in this TU\n"
                       "using namespace std::literals;\n");
    EXPECT_EQ(liveCount(r, "using-namespace-header"), 0);
    EXPECT_EQ(suppressedCount(r, "using-namespace-header"), 1);
}

// ----------------------------------------------------------------
// Annotation grammar and staleness.
// ----------------------------------------------------------------

TEST(LintAnnotations, UnknownRuleAndMissingReasonAreErrors)
{
    const auto unknown = run("src/core/a.cc",
                             "// khuzdul-lint: allow(bogus-rule) x\n");
    ASSERT_EQ(unknown.errors.size(), 1u);
    EXPECT_NE(unknown.errors[0].find("unknown rule"),
              std::string::npos);
    EXPECT_FALSE(unknown.passes(false));

    const auto bare = run("src/core/a.cc",
                          "std::unordered_map<int,int> m; "
                          "// khuzdul-lint: allow(unordered-iter)\n");
    ASSERT_EQ(bare.errors.size(), 1u);
    EXPECT_NE(bare.errors[0].find("missing its written reason"),
              std::string::npos);
    // The finding stays live: a reasonless annotation grants nothing.
    EXPECT_EQ(liveCount(bare, "unordered-iter"), 1);
}

TEST(LintAnnotations, UnusedAnnotationIsStale)
{
    const auto r = run("src/core/a.cc",
                       "// khuzdul-lint: allow(wall-clock) leftover\n"
                       "int x = 0;\n");
    ASSERT_EQ(r.stale.size(), 1u);
    EXPECT_EQ(r.stale[0].rule, "wall-clock");
    EXPECT_EQ(r.stale[0].line, 1);
    EXPECT_TRUE(r.passes(false));  // advisory by default...
    EXPECT_FALSE(r.passes(true));  // ...fatal under --strict
}

// ----------------------------------------------------------------
// Allowlist parsing.
// ----------------------------------------------------------------

TEST(LintAllowlist, ParsesEntriesSkipsCommentsRejectsMalformed)
{
    std::vector<std::string> errors;
    const auto entries = lint::parseAllowlist(
        "# comment\n"
        "\n"
        "src/support/timer.hh wall-clock host-only stopwatch\n"
        "just-a-path\n"
        "src/a.cc bogus-rule why\n"
        "src/b.cc prng\n",
        "allow.txt", errors);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].path, "src/support/timer.hh");
    EXPECT_EQ(entries[0].rule, "wall-clock");
    EXPECT_EQ(entries[0].reason, "host-only stopwatch");
    EXPECT_EQ(entries[0].line, 3);
    ASSERT_EQ(errors.size(), 3u);
    EXPECT_NE(errors[0].find("allow.txt:4"), std::string::npos);
    EXPECT_NE(errors[1].find("unknown rule"), std::string::npos);
    EXPECT_NE(errors[2].find("missing its written reason"),
              std::string::npos);
}

TEST(LintAllowlist, MatchesAnchoredPathSuffixOnly)
{
    std::vector<std::string> errors;
    auto allow = lint::parseAllowlist(
        "core/engine.cc wall-clock host wall time\n", "allow.txt",
        errors);
    ASSERT_TRUE(errors.empty());
    const std::string clock = "auto t = std::chrono::steady_clock::now();\n";
    // Anchored suffix: matches under any prefix directory...
    EXPECT_EQ(liveCount(run("repo/src/core/engine.cc", clock, &allow),
                        "wall-clock"),
              0);
    // ...but not a partial component.
    EXPECT_EQ(liveCount(run("src/xcore/engine.cc", clock, &allow),
                        "wall-clock"),
              1);
}

// ----------------------------------------------------------------
// Tree scan + JSON shape.
// ----------------------------------------------------------------

namespace
{

/** Temp fixture tree; removed on destruction. */
class FixtureTree
{
  public:
    FixtureTree()
    {
        root_ = std::filesystem::temp_directory_path()
            / ("khuzdul_lint_test_" + std::to_string(::getpid()));
        std::filesystem::remove_all(root_);
        std::filesystem::create_directories(root_);
    }

    ~FixtureTree() { std::filesystem::remove_all(root_); }

    std::string
    write(const std::string &rel, const std::string &content)
    {
        const std::filesystem::path p = root_ / rel;
        std::filesystem::create_directories(p.parent_path());
        std::ofstream out(p);
        out << content;
        return p.generic_string();
    }

    std::string path() const { return root_.generic_string(); }

  private:
    std::filesystem::path root_;
};

} // namespace

TEST(LintTree, ScansRecursivelyAndReportsStaleAllowlist)
{
    FixtureTree tree;
    tree.write("src/sim/bad.cc", "std::unordered_set<int> s;\n");
    tree.write("src/core/ok.cc", "int f() { return 1; }\n");
    tree.write("src/notes.txt", "steady_clock\n"); // not a source
    std::vector<std::string> errors;
    auto allow = lint::parseAllowlist(
        "src/support/timer.hh wall-clock host-only stopwatch\n",
        "allow.txt", errors);
    ASSERT_TRUE(errors.empty());

    const lint::Report report =
        lint::analyzePaths({tree.path()}, std::move(allow),
                           "allow.txt");
    EXPECT_EQ(report.filesScanned, 2u);
    EXPECT_EQ(report.violations(), 1u);
    ASSERT_EQ(report.stale.size(), 1u);
    EXPECT_EQ(report.stale[0].file, "allow.txt");
    EXPECT_FALSE(report.passes(false));
    EXPECT_FALSE(report.passes(true));
}

TEST(LintTree, MissingPathIsAnError)
{
    const lint::Report report =
        lint::analyzePaths({"/no/such/path"}, {}, "");
    ASSERT_EQ(report.errors.size(), 1u);
    EXPECT_FALSE(report.passes(false));
}

TEST(LintJson, ShapeAndEscaping)
{
    lint::Report report;
    lint::analyzeSource(
        "src/sim/bad.cc",
        "std::unordered_map<int, std::string> m; // \"quoted\"\n",
        nullptr, report);
    const std::string json = lint::toJson(report, true);
    EXPECT_NE(json.find("\"tool\": \"khuzdul_lint\""),
              std::string::npos);
    EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"strict\": true"), std::string::npos);
    EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
    // Cross-TU summary keys are always present (zero when the
    // per-file seam is used), and every finding carries a chain
    // array (empty for token findings).
    EXPECT_NE(json.find("\"functions\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"call_edges\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"fact_seeds\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"chain\": []"), std::string::npos);
    EXPECT_NE(json.find("\"violations\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"passed\": false"), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"unordered-iter\""),
              std::string::npos);
    EXPECT_NE(json.find("\"suppression\": \"none\""),
              std::string::npos);
    // The snippet's quotes must arrive escaped.
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\"stale_suppressions\": []"),
              std::string::npos);
    EXPECT_NE(json.find("\"errors\": []"), std::string::npos);
}

TEST(LintJson, SuppressedFindingCarriesReasonAndKind)
{
    lint::Report report;
    lint::analyzeSource(
        "src/core/engine.cc",
        "auto t = std::chrono::steady_clock::now(); "
        "// khuzdul-lint: allow(wall-clock) host wall time\n",
        nullptr, report);
    const std::string json = lint::toJson(report, false);
    EXPECT_NE(json.find("\"suppression\": \"annotation\""),
              std::string::npos);
    EXPECT_NE(json.find("\"reason\": \"host wall time\""),
              std::string::npos);
    EXPECT_NE(json.find("\"passed\": true"), std::string::npos);
}

// ----------------------------------------------------------------
// Cross-TU analysis: extraction, call graph, taint, layering.
// ----------------------------------------------------------------

namespace
{

lint::Analysis
runProgram(const FixtureTree &tree, const lint::Options &options)
{
    return lint::analyzeProgram({tree.path()}, {}, "allow.txt",
                                options);
}

int
liveCount(const lint::Analysis &analysis, const std::string &rule)
{
    return liveCount(analysis.report, rule);
}

const lint::FunctionDef *
findFunction(const lint::Program &program, const std::string &qualified)
{
    for (const lint::FunctionDef &fn : program.functions)
        if (fn.qualified == qualified)
            return &fn;
    return nullptr;
}

} // namespace

TEST(LintExtract, NestedNamespacesQualifyNames)
{
    FixtureTree tree;
    tree.write("src/support/util.hh",
               "#ifndef U_HH\n#define U_HH\n"
               "namespace outer\n{\nnamespace inner\n{\n"
               "inline int\nanswer()\n{\n    return 42;\n}\n"
               "}\n}\n"
               "namespace outer::compact\n{\n"
               "struct Box\n{\n    int get() { return 1; }\n};\n"
               "}\n"
               "#endif\n");
    const auto analysis = runProgram(tree, lint::Options{});
    EXPECT_NE(findFunction(analysis.program, "outer::inner::answer"),
              nullptr);
    const lint::FunctionDef *method =
        findFunction(analysis.program, "outer::compact::Box::get");
    ASSERT_NE(method, nullptr);
    EXPECT_TRUE(method->method);
    EXPECT_EQ(analysis.report.functionsExtracted, 2u);
}

TEST(LintExtract, OverloadSetsLinkEveryCandidate)
{
    FixtureTree tree;
    tree.write("src/support/over.hh",
               "#ifndef O_HH\n#define O_HH\n#include <chrono>\n"
               "namespace fx\n{\n"
               "inline double scale(int v) { return v * 1.0; }\n"
               "inline double scale(double v)\n{\n"
               "    // khuzdul-lint: allow(wall-clock) host-only overload\n"
               "    return v + std::chrono::steady_clock::now()"
               ".time_since_epoch().count();\n"
               "}\n}\n#endif\n");
    tree.write("src/core/use.cc",
               "#include \"support/over.hh\"\n"
               "namespace fx\n{\n"
               "double use() { return scale(3); }\n"
               "}\n");
    const auto analysis = runProgram(tree, lint::Options{});
    int overloads = 0;
    for (const lint::FunctionDef &fn : analysis.program.functions)
        if (fn.qualified == "fx::scale")
            ++overloads;
    EXPECT_EQ(overloads, 2);
    // Name resolution cannot pick an overload, so the call links to
    // the whole set — and the tainted overload flags the caller.
    EXPECT_EQ(liveCount(analysis, "taint-wall-clock"), 1);
}

TEST(LintExtract, SharedHeaderFlagsOnlyTheModeledIncluder)
{
    FixtureTree tree;
    const std::string shared =
        "#ifndef S_HH\n#define S_HH\n#include <chrono>\n"
        "namespace fx\n{\n"
        "inline long tick()\n{\n"
        "    // khuzdul-lint: allow(wall-clock) host-only helper\n"
        "    return std::chrono::steady_clock::now()"
        ".time_since_epoch().count();\n"
        "}\n}\n#endif\n";
    tree.write("src/support/shared.hh", shared);
    tree.write("src/apps/report.cc",
               "#include \"support/shared.hh\"\n"
               "namespace fx\n{\n"
               "long hostReport() { return tick(); }\n"
               "}\n");
    tree.write("src/engines/run.cc",
               "#include \"support/shared.hh\"\n"
               "namespace fx\n{\n"
               "long modeledRun() { return tick(); }\n"
               "}\n");
    const auto analysis = runProgram(tree, lint::Options{});
    ASSERT_EQ(liveCount(analysis, "taint-wall-clock"), 1);
    const lint::Finding *taint = nullptr;
    for (const lint::Finding &f : analysis.report.findings)
        if (f.rule == "taint-wall-clock")
            taint = &f;
    ASSERT_NE(taint, nullptr);
    // Same helper, two includers: only the modeled zone is fenced.
    EXPECT_NE(taint->file.find("src/engines/run.cc"),
              std::string::npos);
    EXPECT_NE(taint->message.find("fx::modeledRun"),
              std::string::npos);
}

TEST(LintExtract, RecursiveCallCyclesTerminate)
{
    FixtureTree tree;
    tree.write("src/support/recur.hh",
               "#ifndef R_HH\n#define R_HH\n#include <cstdlib>\n"
               "namespace fx\n{\n"
               "inline int noise()\n{\n"
               "    // khuzdul-lint: allow(prng) host-only jitter\n"
               "    return std::rand();\n"
               "}\n"
               "int pong(int n);\n"
               "inline int ping(int n) { return n <= 0 ? noise() : "
               "pong(n - 1); }\n"
               "inline int pong(int n) { return ping(n - 1); }\n"
               "}\n#endif\n");
    tree.write("src/core/drive.cc",
               "#include \"support/recur.hh\"\n"
               "namespace fx\n{\n"
               "int drive() { return ping(8); }\n"
               "}\n");
    const auto analysis = runProgram(tree, lint::Options{});
    // The ping <-> pong cycle must not loop the BFS or duplicate
    // the frontier finding.
    EXPECT_EQ(liveCount(analysis, "taint-prng"), 1);
}

TEST(LintTaint, TwoHopChainFlaggedAndHopRemovalUnflags)
{
    const std::string clockUtil =
        "#ifndef C_HH\n#define C_HH\n#include <chrono>\n"
        "namespace fx\n{\n"
        "inline double nowSeconds()\n{\n"
        "    // khuzdul-lint: allow(wall-clock) host-only helper\n"
        "    return std::chrono::duration<double>(std::chrono::"
        "steady_clock::now().time_since_epoch()).count();\n"
        "}\n}\n#endif\n";
    const std::string extender =
        "#include \"support/format.hh\"\n"
        "namespace fx\n{\n"
        "double extendBudget() { return stampSeconds() * 2.0; }\n"
        "}\n";

    FixtureTree withHop;
    withHop.write("src/support/clock_util.hh", clockUtil);
    withHop.write("src/support/format.hh",
                  "#ifndef F_HH\n#define F_HH\n"
                  "#include \"support/clock_util.hh\"\n"
                  "namespace fx\n{\n"
                  "inline double stampSeconds() { return "
                  "nowSeconds(); }\n"
                  "}\n#endif\n");
    withHop.write("src/core/extender.cc", extender);
    const auto flagged = runProgram(withHop, lint::Options{});
    ASSERT_EQ(liveCount(flagged, "taint-wall-clock"), 1);
    const lint::Finding *taint = nullptr;
    for (const lint::Finding &f : flagged.report.findings)
        if (f.rule == "taint-wall-clock")
            taint = &f;
    ASSERT_NE(taint, nullptr);
    // The full two-hop chain rides in the message and the finding.
    ASSERT_EQ(taint->chain.size(), 3u);
    EXPECT_NE(taint->chain[0].find("fx::extendBudget"),
              std::string::npos);
    EXPECT_NE(taint->chain[1].find("fx::stampSeconds"),
              std::string::npos);
    EXPECT_NE(taint->chain[2].find("fx::nowSeconds"),
              std::string::npos);
    EXPECT_NE(taint->message.find("fx::extendBudget"),
              std::string::npos);
    EXPECT_NE(taint->message.find("fx::stampSeconds"),
              std::string::npos);
    EXPECT_NE(taint->message.find("fx::nowSeconds"),
              std::string::npos);
    EXPECT_GT(flagged.report.callEdges, 0u);
    EXPECT_GT(flagged.report.factSeeds, 0u);

    // Cut the middle hop: same files, but the formatter no longer
    // calls the clock helper — the chain breaks, the finding goes.
    FixtureTree withoutHop;
    withoutHop.write("src/support/clock_util.hh", clockUtil);
    withoutHop.write("src/support/format.hh",
                     "#ifndef F_HH\n#define F_HH\n"
                     "#include \"support/clock_util.hh\"\n"
                     "namespace fx\n{\n"
                     "inline double stampSeconds() { return 0.0; }\n"
                     "}\n#endif\n");
    withoutHop.write("src/core/extender.cc", extender);
    const auto clean = runProgram(withoutHop, lint::Options{});
    EXPECT_EQ(liveCount(clean, "taint-wall-clock"), 0);
}

TEST(LintTaint, ModeledZoneAnnotationSanctionsItsSeed)
{
    // An annotated fact site *inside* the restricted zone is a
    // reviewed carve-out: it does not seed, so callers stay clean.
    FixtureTree tree;
    tree.write("src/core/obs.hh",
               "#ifndef OB_HH\n#define OB_HH\n#include <chrono>\n"
               "namespace fx\n{\n"
               "inline double hostNow()\n{\n"
               "    // khuzdul-lint: allow(wall-clock) host "
               "observability, excluded from modeled stats\n"
               "    return std::chrono::duration<double>(std::chrono::"
               "steady_clock::now().time_since_epoch()).count();\n"
               "}\n}\n#endif\n");
    tree.write("src/core/run.cc",
               "#include \"core/obs.hh\"\n"
               "namespace fx\n{\n"
               "double run() { return hostNow(); }\n"
               "}\n");
    const auto analysis = runProgram(tree, lint::Options{});
    EXPECT_EQ(liveCount(analysis, "taint-wall-clock"), 0);
    EXPECT_EQ(analysis.report.factSeeds, 0u);
    EXPECT_TRUE(analysis.report.passes(true));
}

TEST(LintTaint, FrontierReportsFirstRestrictedFunctionOnly)
{
    // support seed <- core helper <- core caller: the helper is the
    // taint frontier; the caller above it is not re-flagged.
    FixtureTree tree;
    tree.write("src/support/seed.hh",
               "#ifndef SD_HH\n#define SD_HH\n#include <cstdlib>\n"
               "namespace fx\n{\n"
               "inline int jitter()\n{\n"
               "    // khuzdul-lint: allow(prng) host-only jitter\n"
               "    return std::rand();\n"
               "}\n}\n#endif\n");
    tree.write("src/core/mid.hh",
               "#ifndef MID_HH\n#define MID_HH\n"
               "#include \"support/seed.hh\"\n"
               "namespace fx\n{\n"
               "inline int middle() { return jitter(); }\n"
               "}\n#endif\n");
    tree.write("src/core/top.cc",
               "#include \"core/mid.hh\"\n"
               "namespace fx\n{\n"
               "int top() { return middle(); }\n"
               "}\n");
    const auto analysis = runProgram(tree, lint::Options{});
    ASSERT_EQ(liveCount(analysis, "taint-prng"), 1);
    const lint::Finding *taint = nullptr;
    for (const lint::Finding &f : analysis.report.findings)
        if (f.rule == "taint-prng")
            taint = &f;
    ASSERT_NE(taint, nullptr);
    EXPECT_NE(taint->message.find("fx::middle"), std::string::npos);
    EXPECT_EQ(taint->message.find("fx::top"), std::string::npos);
}

TEST(LintTaint, WhyTextExplainsChainsAndUnknownSymbols)
{
    FixtureTree tree;
    tree.write("src/support/clock_util.hh",
               "#ifndef C_HH\n#define C_HH\n#include <chrono>\n"
               "namespace fx\n{\n"
               "inline double nowSeconds()\n{\n"
               "    // khuzdul-lint: allow(wall-clock) host-only\n"
               "    return std::chrono::duration<double>(std::chrono::"
               "steady_clock::now().time_since_epoch()).count();\n"
               "}\n"
               "inline double stamp() { return nowSeconds(); }\n"
               "}\n#endif\n");
    const auto analysis = runProgram(tree, lint::Options{});
    bool found = false;
    const std::string why = lint::whyText(
        analysis.program, analysis.taint, "stamp", found);
    EXPECT_TRUE(found);
    EXPECT_NE(why.find("fx::stamp"), std::string::npos);
    EXPECT_NE(why.find("wall-clock"), std::string::npos);
    EXPECT_NE(why.find("fx::nowSeconds"), std::string::npos);

    const std::string seed = [&] {
        bool seedFound = false;
        return lint::whyText(analysis.program, analysis.taint,
                             "fx::nowSeconds", seedFound);
    }();
    EXPECT_NE(seed.find("direct seed"), std::string::npos);

    bool missing = true;
    lint::whyText(analysis.program, analysis.taint, "noSuchFn",
                  missing);
    EXPECT_FALSE(missing);
}

TEST(LintTaint, FactsJsonIsDeterministic)
{
    FixtureTree tree;
    tree.write("src/support/a.hh",
               "#ifndef A_HH\n#define A_HH\n#include <cstdlib>\n"
               "namespace fx\n{\n"
               "inline int a()\n{\n"
               "    // khuzdul-lint: allow(prng) host-only\n"
               "    return std::rand();\n"
               "}\n}\n#endif\n");
    tree.write("src/core/b.cc",
               "#include \"support/a.hh\"\n"
               "namespace fx\n{\n"
               "int b() { return a(); }\n"
               "}\n");
    const auto first = runProgram(tree, lint::Options{});
    const auto second = runProgram(tree, lint::Options{});
    const std::string json1 = lint::factsJson(
        first.program, first.graph, first.taint);
    const std::string json2 = lint::factsJson(
        second.program, second.graph, second.taint);
    EXPECT_EQ(json1, json2);
    EXPECT_NE(json1.find("\"schema_version\": 2"), std::string::npos);
    EXPECT_NE(json1.find("\"fact\": \"prng\""), std::string::npos);
    EXPECT_NE(json1.find("fx::a"), std::string::npos);
}

TEST(LintLayering, UpwardIncludeFlagsDownwardIsFine)
{
    lint::Options options;
    options.taint = false;
    options.layering = true;

    FixtureTree tree;
    tree.write("src/support/util.hh",
               "#ifndef U_HH\n#define U_HH\n"
               "#include \"core/engine.hh\"\n"
               "#endif\n");
    tree.write("src/core/engine.hh",
               "#ifndef E_HH\n#define E_HH\n"
               "#include \"support/other.hh\"\n"
               "#include \"sim/fabric.hh\"\n"
               "#endif\n");
    tree.write("src/support/other.hh",
               "#ifndef OT_HH\n#define OT_HH\n#endif\n");
    tree.write("src/sim/fabric.hh",
               "#ifndef FB_HH\n#define FB_HH\n"
               "#include \"support/other.hh\"\n"
               "#endif\n");
    const auto analysis = runProgram(tree, options);
    ASSERT_EQ(liveCount(analysis, "layering"), 1);
    const lint::Finding &f = analysis.report.findings[0];
    EXPECT_NE(f.file.find("src/support/util.hh"), std::string::npos);
    EXPECT_EQ(f.line, 3);
    EXPECT_NE(f.message.find("'support'"), std::string::npos);
    EXPECT_NE(f.message.find("'core'"), std::string::npos);
}

TEST(LintLayering, IncludeCyclesAreFlagged)
{
    lint::Options options;
    options.taint = false;
    options.layering = true;

    FixtureTree tree;
    tree.write("src/core/a.hh",
               "#ifndef A_HH\n#define A_HH\n"
               "#include \"core/b.hh\"\n"
               "#endif\n");
    tree.write("src/core/b.hh",
               "#ifndef B_HH\n#define B_HH\n"
               "#include \"core/a.hh\"\n"
               "#endif\n");
    const auto analysis = runProgram(tree, options);
    ASSERT_EQ(liveCount(analysis, "layering"), 1);
    EXPECT_NE(analysis.report.findings[0].message.find(
                  "include cycle"),
              std::string::npos);
}

TEST(LintLayering, AnnotationSuppressesWithReason)
{
    lint::Options options;
    options.taint = false;
    options.layering = true;

    FixtureTree tree;
    tree.write("src/support/shim.hh",
               "#ifndef SH_HH\n#define SH_HH\n"
               "#include \"core/engine.hh\" // khuzdul-lint: "
               "allow(layering) transitional shim, tracked in ROADMAP\n"
               "#endif\n");
    tree.write("src/core/engine.hh",
               "#ifndef E_HH\n#define E_HH\n#endif\n");
    const auto analysis = runProgram(tree, options);
    EXPECT_EQ(liveCount(analysis, "layering"), 0);
    EXPECT_EQ(suppressedCount(analysis.report, "layering"), 1);
    EXPECT_TRUE(analysis.report.passes(true));
}

// ----------------------------------------------------------------
// CLI surfaces: --rules snapshot, --help exit-code contract.
// ----------------------------------------------------------------

TEST(LintCli, RulesTextSnapshot)
{
    const std::string text = lint::rulesText();
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    // Header, one row per rule, a blank line, two grammar lines.
    ASSERT_EQ(lines.size(), 2 + lint::rules().size() + 3);
    EXPECT_EQ(lines[0],
              "rule                     scope     contract");
    EXPECT_EQ(lines[1],
              "----                     -----     --------");
    for (std::size_t i = 0; i < lint::rules().size(); ++i)
        EXPECT_EQ(lines[2 + i].rfind(lint::rules()[i].id, 0), 0u)
            << "row " << i << " must lead with the rule id";
    EXPECT_NE(text.find("taint-wall-clock"), std::string::npos);
    EXPECT_NE(text.find("layering"), std::string::npos);
    EXPECT_NE(text.find("suppress one line:"), std::string::npos);
    EXPECT_NE(text.find("suppress one file:"), std::string::npos);
}

TEST(LintCli, UsageDocumentsOptionsAndExitCodes)
{
    const std::string usage = lint::usageText();
    EXPECT_EQ(usage.rfind("usage: khuzdul_lint", 0), 0u);
    for (const char *flag :
         {"--allowlist", "--strict", "--json", "--layering",
          "--no-taint", "--facts", "--why", "--rules", "--help"})
        EXPECT_NE(usage.find(flag), std::string::npos) << flag;
    // The exit-code contract is part of --help (ISSUE 9 satellite).
    EXPECT_NE(usage.find("exit status:"), std::string::npos);
    EXPECT_NE(usage.find("0  clean"), std::string::npos);
    EXPECT_NE(usage.find("1  contract violations"), std::string::npos);
    EXPECT_NE(usage.find("2  usage error"), std::string::npos);
}
