/**
 * @file
 * khuzdul_lint analyzer tests: fixture snippets fed through
 * analyzeSource (one positive and one suppressed case per rule),
 * allowlist parsing, stale-suppression detection and the --json
 * report shape.  The real-tree gate itself is the khuzdul_lint_src
 * ctest registered in tools/CMakeLists.txt.
 */

#include "tools/lint/analyzer.hh"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

namespace lint = khuzdul::lint;

namespace
{

lint::Report
run(const std::string &path, const std::string &source,
    std::vector<lint::AllowlistEntry> *allowlist = nullptr)
{
    lint::Report report;
    lint::analyzeSource(path, source, allowlist, report);
    return report;
}

int
liveCount(const lint::Report &report, const std::string &rule)
{
    int n = 0;
    for (const lint::Finding &f : report.findings)
        if (f.rule == rule && f.live())
            ++n;
    return n;
}

int
suppressedCount(const lint::Report &report, const std::string &rule)
{
    int n = 0;
    for (const lint::Finding &f : report.findings)
        if (f.rule == rule && !f.live())
            ++n;
    return n;
}

} // namespace

// ----------------------------------------------------------------
// Rules table.
// ----------------------------------------------------------------

TEST(LintRules, TableListsEveryContractRule)
{
    std::vector<std::string> ids;
    for (const lint::RuleInfo &r : lint::rules())
        ids.push_back(r.id);
    const std::vector<std::string> expected = {
        "wall-clock",   "prng",         "unordered-iter",
        "thread-primitive", "fabric-mutation", "fault-modeled-state",
        "simd-intrinsics",
        "header-guard", "using-namespace-header"};
    EXPECT_EQ(ids, expected);
    for (const std::string &id : ids)
        EXPECT_TRUE(lint::isRuleId(id));
    EXPECT_FALSE(lint::isRuleId("no-such-rule"));
}

// ----------------------------------------------------------------
// wall-clock.
// ----------------------------------------------------------------

TEST(LintWallClock, FlagsSteadyClockAnywhereUnderSrc)
{
    const auto r = run("src/graph/io.cc",
                       "auto t = std::chrono::steady_clock::now();\n");
    EXPECT_EQ(liveCount(r, "wall-clock"), 1);
    EXPECT_EQ(r.findings[0].line, 1);
}

TEST(LintWallClock, SameLineAnnotationSuppressesWithReason)
{
    const auto r = run(
        "src/core/engine.cc",
        "auto t = std::chrono::steady_clock::now(); "
        "// khuzdul-lint: allow(wall-clock) host wall-time only\n");
    EXPECT_EQ(liveCount(r, "wall-clock"), 0);
    EXPECT_EQ(suppressedCount(r, "wall-clock"), 1);
    EXPECT_EQ(r.findings[0].suppression,
              lint::SuppressionKind::Annotation);
    EXPECT_EQ(r.findings[0].reason, "host wall-time only");
    EXPECT_TRUE(r.passes(true));
}

TEST(LintWallClock, CommentsAndStringsAreNotCode)
{
    const auto r = run("src/core/engine.cc",
                       "// steady_clock mentioned in prose\n"
                       "/* system_clock too */\n"
                       "const char *s = \"random_device\";\n");
    EXPECT_TRUE(r.findings.empty());
}

// ----------------------------------------------------------------
// prng.
// ----------------------------------------------------------------

TEST(LintPrng, FlagsStdRandomSources)
{
    const auto r = run("src/graph/generators.cc",
                       "#include <random>\n"
                       "std::random_device rd;\n"
                       "int x = rand() % 7;\n");
    EXPECT_EQ(liveCount(r, "prng"), 3);
}

TEST(LintPrng, PreviousLineAnnotationSuppresses)
{
    const auto r =
        run("src/graph/generators.cc",
            "// khuzdul-lint: allow(prng) seeding jitter for the "
            "host-only warmup path\n"
            "std::random_device rd;\n");
    EXPECT_EQ(liveCount(r, "prng"), 0);
    EXPECT_EQ(suppressedCount(r, "prng"), 1);
}

TEST(LintPrng, DoesNotFlagWordsContainingRand)
{
    const auto r = run("src/core/extender.cc",
                       "int operand = 3; auto rando = operand;\n");
    EXPECT_EQ(liveCount(r, "prng"), 0);
}

// ----------------------------------------------------------------
// unordered-iter.
// ----------------------------------------------------------------

TEST(LintUnordered, FlagsUseInModeledZoneButNotOutside)
{
    const std::string code =
        "std::unordered_map<int, int> m;\n";
    EXPECT_EQ(liveCount(run("src/sim/stats.cc", code),
                        "unordered-iter"),
              1);
    EXPECT_EQ(liveCount(run("src/core/provider.cc", code),
                        "unordered-iter"),
              1);
    EXPECT_EQ(liveCount(run("src/engines/gthinker.cc", code),
                        "unordered-iter"),
              1);
    // graph/, pattern/, apps/, support/ are outside the modeled
    // zones; hash containers are fine there.
    EXPECT_EQ(liveCount(run("src/graph/builder.cc", code),
                        "unordered-iter"),
              0);
    EXPECT_EQ(liveCount(run("src/apps/fsm.cc", code),
                        "unordered-iter"),
              0);
}

TEST(LintUnordered, IncludeLinesAreNotUses)
{
    const auto r = run("src/sim/stats.cc",
                       "#include <unordered_map>\n");
    EXPECT_EQ(liveCount(r, "unordered-iter"), 0);
}

TEST(LintUnordered, LookupOnlyAnnotationSuppresses)
{
    const auto r = run(
        "src/core/cache.hh",
        "#ifndef X\n"
        "// khuzdul-lint: allow(unordered-iter) lookup-only residency "
        "map; order lives elsewhere\n"
        "std::unordered_map<int, int> entries_;\n"
        "#endif\n");
    EXPECT_EQ(liveCount(r, "unordered-iter"), 0);
    EXPECT_EQ(suppressedCount(r, "unordered-iter"), 1);
}

// ----------------------------------------------------------------
// thread-primitive.
// ----------------------------------------------------------------

TEST(LintThread, FlagsPrimitivesInModeledZones)
{
    const auto r = run("src/core/extender.cc",
                       "std::mutex m;\n"
                       "std::atomic<int> a{0};\n"
                       "auto id = std::this_thread::get_id();\n"
                       "#include <thread>\n");
    EXPECT_EQ(liveCount(r, "thread-primitive"), 4);
}

TEST(LintThread, ParallelRuntimeDirIsExempt)
{
    const auto r = run("src/core/parallel/thread_pool.cc",
                       "std::mutex m;\n"
                       "std::condition_variable cv;\n");
    EXPECT_EQ(liveCount(r, "thread-primitive"), 0);
}

TEST(LintThread, ServiceRuntimeDirIsExempt)
{
    // The service layer is host-side scheduling machinery like the
    // pool: thread primitives are its job, not a contract breach.
    const auto r = run("src/core/service/service.cc",
                       "std::mutex m;\n"
                       "std::condition_variable cv;\n"
                       "std::thread dispatcher;\n");
    EXPECT_EQ(liveCount(r, "thread-primitive"), 0);
}

TEST(LintThread, ServiceRuntimeKeepsModeledRules)
{
    // Only thread-primitive is relaxed there: the service must not
    // read wall clocks or iterate unordered containers any more
    // than the engine may.
    const auto r = run(
        "src/core/service/service.cc",
        "auto t = std::chrono::steady_clock::now();\n"
        "for (const auto &kv : map_) use(kv);\n");
    EXPECT_EQ(liveCount(r, "wall-clock"), 1);
    const auto r2 = run("src/core/service/service.hh",
                        "std::unordered_map<int, int> results_;\n"
                        "for (const auto &kv : results_) emit(kv);\n");
    EXPECT_EQ(liveCount(r2, "unordered-iter"), 1);
}

TEST(LintThread, PlainIdentifiersDoNotMatch)
{
    const auto r = run("src/core/engine.cc",
                       "unsigned threads = config.hostThreads;\n"
                       "ThreadPool pool(threads);\n");
    EXPECT_EQ(liveCount(r, "thread-primitive"), 0);
}

TEST(LintThread, AnnotationSuppresses)
{
    const auto r = run("src/sim/trace.cc",
                       "// khuzdul-lint: allow(thread-primitive) "
                       "per-unit flush token, merged in unit order\n"
                       "std::atomic<bool> flushed{false};\n");
    EXPECT_EQ(liveCount(r, "thread-primitive"), 0);
    EXPECT_EQ(suppressedCount(r, "thread-primitive"), 1);
}

// ----------------------------------------------------------------
// fabric-mutation.
// ----------------------------------------------------------------

TEST(LintFabric, FlagsRawMutatorsOutsideFabricImpl)
{
    const auto r = run("src/engines/khuzdul_system.cc",
                       "fabric.setByteCap(1024);\n"
                       "double ns = f.recordTransfer(0, 1, 64, 1);\n"
                       "fabric_.reset();\n"
                       "fabric_.apply(delta);\n");
    EXPECT_EQ(liveCount(r, "fabric-mutation"), 3); // apply is fine
}

TEST(LintFabric, FabricImplAndAnnotationAreExempt)
{
    const std::string mutators = "setByteCap(0);\n"
                                 "recordTransfer(0, 1, 64, 1);\n";
    EXPECT_EQ(liveCount(run("src/sim/fabric.cc", mutators),
                        "fabric-mutation"),
              0);
    const auto r = run("src/core/circulant.cc",
                       "// khuzdul-lint: allow(fabric-mutation) issue "
                       "is the sanctioned entry point\n"
                       "batch.commNs = recorder.recordTransfer(n, d, "
                       "b, l);\n");
    EXPECT_EQ(liveCount(r, "fabric-mutation"), 0);
    EXPECT_EQ(suppressedCount(r, "fabric-mutation"), 1);
}

// ----------------------------------------------------------------
// fault-modeled-state.
// ----------------------------------------------------------------

TEST(LintFaultState, FlagsHostTimeSymbolsInRecoveryPaths)
{
    // The quoted-include form is invisible to token rules (string
    // contents are blanked), but using the header requires naming
    // Timer/elapsedNs, which the rule does see.
    const std::string code = "Timer t;\n"
                             "double ns = t.elapsedNs();\n"
                             "stats.hostWallNs += ns;\n";
    EXPECT_EQ(liveCount(run("src/sim/faults.cc", code),
                        "fault-modeled-state"),
              3);
    EXPECT_EQ(liveCount(run("src/core/provider.cc", code),
                        "fault-modeled-state"),
              3);
    EXPECT_EQ(liveCount(run("src/core/circulant.hh", code),
                        "fault-modeled-state"),
              3);
}

TEST(LintFaultState, OtherModeledFilesAreOutOfScope)
{
    // engine.cc's hostWallNs accounting is policed by the wall-clock
    // rule; this rule fences the fault/recovery TUs specifically.
    const std::string code = "stats.hostWallNs += 1;\n";
    EXPECT_EQ(liveCount(run("src/sim/stats.cc", code),
                        "fault-modeled-state"),
              0);
    EXPECT_EQ(liveCount(run("src/core/engine.cc", code),
                        "fault-modeled-state"),
              0);
    EXPECT_EQ(liveCount(run("src/core/circulant_helper.cc", code),
                        "fault-modeled-state"),
              0);
}

TEST(LintFaultState, StealZoneIsFenced)
{
    // core/steal/ plans migrations from merged modeled ledgers; a
    // host-time read there would make stolen schedules depend on
    // the machine the simulation ran on.
    const std::string code = "Timer t;\n"
                             "double ns = t.elapsedNs();\n"
                             "stats.hostWallNs += ns;\n";
    EXPECT_EQ(liveCount(run("src/core/steal/steal.cc", code),
                        "fault-modeled-state"),
              3);
    EXPECT_EQ(liveCount(run("src/core/steal/steal.hh", code),
                        "fault-modeled-state"),
              3);
    // The thread-primitive fence applies automatically: core/steal/
    // is a modeled zone and not part of the parallel runtime.
    EXPECT_EQ(liveCount(run("src/core/steal/steal.cc",
                            "std::mutex m;\n"
                            "std::atomic<int> n{0};\n"),
                        "thread-primitive"),
              2);
}

TEST(LintFaultState, ModeledClockIdentifiersDoNotMatch)
{
    const auto r = run("src/sim/faults.cc",
                       "clockNs_ += charge.chargeNs;\n"
                       "double backoff = cost->retryBackoffNs;\n"
                       "faults->advance(backoff);\n");
    EXPECT_EQ(liveCount(r, "fault-modeled-state"), 0);
}

TEST(LintFaultState, AnnotationSuppressesWithReason)
{
    const auto r = run("src/core/provider.cc",
                       "// khuzdul-lint: allow(fault-modeled-state) "
                       "host-side debug counter, not a trigger input\n"
                       "double w = t.elapsedNs();\n");
    EXPECT_EQ(liveCount(r, "fault-modeled-state"), 0);
    EXPECT_EQ(suppressedCount(r, "fault-modeled-state"), 1);
}

// ----------------------------------------------------------------
// simd-intrinsics.
// ----------------------------------------------------------------

TEST(LintSimdIntrinsics, FlagsIntrinsicsOutsideKernelTier)
{
    const std::string code = "#include <immintrin.h>\n"
                             "__m256i v = _mm256_loadu_si256(p);\n"
                             "int m = __builtin_ia32_pmovmskb256(x);\n";
    EXPECT_EQ(liveCount(run("src/core/extender.cc", code),
                        "simd-intrinsics"),
              3);
    EXPECT_EQ(liveCount(run("src/graph/graph.cc", code),
                        "simd-intrinsics"),
              3);
    EXPECT_EQ(liveCount(run("src/sim/fabric.cc", code),
                        "simd-intrinsics"),
              3);
}

TEST(LintSimdIntrinsics, KernelTierIsExempt)
{
    const std::string code = "#include <immintrin.h>\n"
                             "__m256i v = _mm256_setzero_si256();\n";
    EXPECT_EQ(liveCount(run("src/core/kernels/simd.cc", code),
                        "simd-intrinsics"),
              0);
    EXPECT_EQ(liveCount(run("src/core/kernels/bitmap.cc", code),
                        "simd-intrinsics"),
              0);
}

TEST(LintSimdIntrinsics, ScalarMentionsAreNotIntrinsics)
{
    // Prose, strings and near-miss identifiers must not trip the
    // token rules; real intrinsic calls in comments are still prose.
    const auto r = run("src/core/engine.cc",
                       "// _mm256_add_epi32 mentioned in prose\n"
                       "const char *s = \"__m256i\";\n"
                       "int simd_merge_calls = 0;\n"
                       "int mm_total = mm_count(3);\n");
    EXPECT_EQ(liveCount(r, "simd-intrinsics"), 0);
}

TEST(LintSimdIntrinsics, AnnotationSuppressesWithReason)
{
    const auto r = run("src/graph/builder.cc",
                       "// khuzdul-lint: allow(simd-intrinsics) "
                       "prefetch hint only, no data-dependent lanes\n"
                       "_mm_prefetch(ptr, 1);\n");
    EXPECT_EQ(liveCount(r, "simd-intrinsics"), 0);
    EXPECT_EQ(suppressedCount(r, "simd-intrinsics"), 1);
}

// ----------------------------------------------------------------
// header hygiene.
// ----------------------------------------------------------------

TEST(LintHeaderGuard, FlagsUnguardedHeader)
{
    const auto r = run("src/graph/new_thing.hh",
                       "/* prose */\n"
                       "int f();\n");
    EXPECT_EQ(liveCount(r, "header-guard"), 1);
    EXPECT_EQ(r.findings[0].line, 2);
}

TEST(LintHeaderGuard, AcceptsGuardOrPragmaAfterComments)
{
    EXPECT_TRUE(run("src/a.hh",
                    "/** @file doc */\n"
                    "#ifndef A_HH\n#define A_HH\n#endif\n")
                    .findings.empty());
    EXPECT_TRUE(
        run("src/b.hh", "#pragma once\nint f();\n").findings.empty());
    // .cc files need no guard.
    EXPECT_TRUE(run("src/c.cc", "int f() { return 0; }\n")
                    .findings.empty());
}

TEST(LintHeaderGuard, AllowlistSuppresses)
{
    std::vector<lint::AllowlistEntry> allow;
    std::vector<std::string> errors;
    allow = lint::parseAllowlist(
        "src/graph/legacy.hh header-guard vendored header kept "
        "verbatim\n",
        "allow.txt", errors);
    ASSERT_TRUE(errors.empty());
    const auto r = run("src/graph/legacy.hh", "int f();\n", &allow);
    EXPECT_EQ(liveCount(r, "header-guard"), 0);
    EXPECT_EQ(suppressedCount(r, "header-guard"), 1);
    EXPECT_EQ(r.findings[0].suppression,
              lint::SuppressionKind::Allowlist);
    EXPECT_TRUE(allow[0].used);
}

TEST(LintUsingNamespace, FlagsHeadersOnly)
{
    const std::string code = "#pragma once\nusing namespace std;\n";
    EXPECT_EQ(liveCount(run("src/core/x.hh", code),
                        "using-namespace-header"),
              1);
    EXPECT_EQ(liveCount(run("src/core/x.cc", "using namespace std;\n"),
                        "using-namespace-header"),
              0);
}

TEST(LintUsingNamespace, AnnotationSuppresses)
{
    const auto r = run("src/core/x.hh",
                       "#pragma once\n"
                       "// khuzdul-lint: allow(using-namespace-header) "
                       "literal operators need it in this TU\n"
                       "using namespace std::literals;\n");
    EXPECT_EQ(liveCount(r, "using-namespace-header"), 0);
    EXPECT_EQ(suppressedCount(r, "using-namespace-header"), 1);
}

// ----------------------------------------------------------------
// Annotation grammar and staleness.
// ----------------------------------------------------------------

TEST(LintAnnotations, UnknownRuleAndMissingReasonAreErrors)
{
    const auto unknown = run("src/core/a.cc",
                             "// khuzdul-lint: allow(bogus-rule) x\n");
    ASSERT_EQ(unknown.errors.size(), 1u);
    EXPECT_NE(unknown.errors[0].find("unknown rule"),
              std::string::npos);
    EXPECT_FALSE(unknown.passes(false));

    const auto bare = run("src/core/a.cc",
                          "std::unordered_map<int,int> m; "
                          "// khuzdul-lint: allow(unordered-iter)\n");
    ASSERT_EQ(bare.errors.size(), 1u);
    EXPECT_NE(bare.errors[0].find("missing its written reason"),
              std::string::npos);
    // The finding stays live: a reasonless annotation grants nothing.
    EXPECT_EQ(liveCount(bare, "unordered-iter"), 1);
}

TEST(LintAnnotations, UnusedAnnotationIsStale)
{
    const auto r = run("src/core/a.cc",
                       "// khuzdul-lint: allow(wall-clock) leftover\n"
                       "int x = 0;\n");
    ASSERT_EQ(r.stale.size(), 1u);
    EXPECT_EQ(r.stale[0].rule, "wall-clock");
    EXPECT_EQ(r.stale[0].line, 1);
    EXPECT_TRUE(r.passes(false));  // advisory by default...
    EXPECT_FALSE(r.passes(true));  // ...fatal under --strict
}

// ----------------------------------------------------------------
// Allowlist parsing.
// ----------------------------------------------------------------

TEST(LintAllowlist, ParsesEntriesSkipsCommentsRejectsMalformed)
{
    std::vector<std::string> errors;
    const auto entries = lint::parseAllowlist(
        "# comment\n"
        "\n"
        "src/support/timer.hh wall-clock host-only stopwatch\n"
        "just-a-path\n"
        "src/a.cc bogus-rule why\n"
        "src/b.cc prng\n",
        "allow.txt", errors);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].path, "src/support/timer.hh");
    EXPECT_EQ(entries[0].rule, "wall-clock");
    EXPECT_EQ(entries[0].reason, "host-only stopwatch");
    EXPECT_EQ(entries[0].line, 3);
    ASSERT_EQ(errors.size(), 3u);
    EXPECT_NE(errors[0].find("allow.txt:4"), std::string::npos);
    EXPECT_NE(errors[1].find("unknown rule"), std::string::npos);
    EXPECT_NE(errors[2].find("missing its written reason"),
              std::string::npos);
}

TEST(LintAllowlist, MatchesAnchoredPathSuffixOnly)
{
    std::vector<std::string> errors;
    auto allow = lint::parseAllowlist(
        "core/engine.cc wall-clock host wall time\n", "allow.txt",
        errors);
    ASSERT_TRUE(errors.empty());
    const std::string clock = "auto t = std::chrono::steady_clock::now();\n";
    // Anchored suffix: matches under any prefix directory...
    EXPECT_EQ(liveCount(run("repo/src/core/engine.cc", clock, &allow),
                        "wall-clock"),
              0);
    // ...but not a partial component.
    EXPECT_EQ(liveCount(run("src/xcore/engine.cc", clock, &allow),
                        "wall-clock"),
              1);
}

// ----------------------------------------------------------------
// Tree scan + JSON shape.
// ----------------------------------------------------------------

namespace
{

/** Temp fixture tree; removed on destruction. */
class FixtureTree
{
  public:
    FixtureTree()
    {
        root_ = std::filesystem::temp_directory_path()
            / ("khuzdul_lint_test_" + std::to_string(::getpid()));
        std::filesystem::remove_all(root_);
        std::filesystem::create_directories(root_);
    }

    ~FixtureTree() { std::filesystem::remove_all(root_); }

    std::string
    write(const std::string &rel, const std::string &content)
    {
        const std::filesystem::path p = root_ / rel;
        std::filesystem::create_directories(p.parent_path());
        std::ofstream out(p);
        out << content;
        return p.generic_string();
    }

    std::string path() const { return root_.generic_string(); }

  private:
    std::filesystem::path root_;
};

} // namespace

TEST(LintTree, ScansRecursivelyAndReportsStaleAllowlist)
{
    FixtureTree tree;
    tree.write("src/sim/bad.cc", "std::unordered_set<int> s;\n");
    tree.write("src/core/ok.cc", "int f() { return 1; }\n");
    tree.write("src/notes.txt", "steady_clock\n"); // not a source
    std::vector<std::string> errors;
    auto allow = lint::parseAllowlist(
        "src/support/timer.hh wall-clock host-only stopwatch\n",
        "allow.txt", errors);
    ASSERT_TRUE(errors.empty());

    const lint::Report report =
        lint::analyzePaths({tree.path()}, std::move(allow),
                           "allow.txt");
    EXPECT_EQ(report.filesScanned, 2u);
    EXPECT_EQ(report.violations(), 1u);
    ASSERT_EQ(report.stale.size(), 1u);
    EXPECT_EQ(report.stale[0].file, "allow.txt");
    EXPECT_FALSE(report.passes(false));
    EXPECT_FALSE(report.passes(true));
}

TEST(LintTree, MissingPathIsAnError)
{
    const lint::Report report =
        lint::analyzePaths({"/no/such/path"}, {}, "");
    ASSERT_EQ(report.errors.size(), 1u);
    EXPECT_FALSE(report.passes(false));
}

TEST(LintJson, ShapeAndEscaping)
{
    lint::Report report;
    lint::analyzeSource(
        "src/sim/bad.cc",
        "std::unordered_map<int, std::string> m; // \"quoted\"\n",
        nullptr, report);
    const std::string json = lint::toJson(report, true);
    EXPECT_NE(json.find("\"tool\": \"khuzdul_lint\""),
              std::string::npos);
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"strict\": true"), std::string::npos);
    EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"violations\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"passed\": false"), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"unordered-iter\""),
              std::string::npos);
    EXPECT_NE(json.find("\"suppression\": \"none\""),
              std::string::npos);
    // The snippet's quotes must arrive escaped.
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\"stale_suppressions\": []"),
              std::string::npos);
    EXPECT_NE(json.find("\"errors\": []"), std::string::npos);
}

TEST(LintJson, SuppressedFindingCarriesReasonAndKind)
{
    lint::Report report;
    lint::analyzeSource(
        "src/core/engine.cc",
        "auto t = std::chrono::steady_clock::now(); "
        "// khuzdul-lint: allow(wall-clock) host wall time\n",
        nullptr, report);
    const std::string json = lint::toJson(report, false);
    EXPECT_NE(json.find("\"suppression\": \"annotation\""),
              std::string::npos);
    EXPECT_NE(json.find("\"reason\": \"host wall time\""),
              std::string::npos);
    EXPECT_NE(json.find("\"passed\": true"), std::string::npos);
}
