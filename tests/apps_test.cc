/**
 * @file
 * Application-level tests: TC / k-CC / k-MC closed forms and oracle
 * agreement, and FSM (MNI supports, anti-monotone level-wise
 * mining, agreement with the pattern-oblivious baseline).
 */

#include <gtest/gtest.h>

#include "apps/fsm.hh"
#include "apps/gpm_apps.hh"
#include "engines/pattern_oblivious.hh"
#include "graph/generators.hh"
#include "pattern/bruteforce.hh"
#include "pattern/isomorphism.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace
{

core::EngineConfig
engineConfig(NodeId nodes = 2)
{
    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(nodes);
    config.chunkBytes = 64 << 10;
    return config;
}

TEST(Apps, TriangleCountClosedForm)
{
    const Graph g = gen::complete(10);
    auto system = engines::KhuzdulSystem::kAutomine(g, engineConfig());
    EXPECT_EQ(apps::triangleCount(*system), 120u); // C(10,3)
}

TEST(Apps, CliqueCountsOnRandomGraph)
{
    const Graph g = gen::rmat(250, 1800, 0.55, 0.2, 0.2, 99);
    auto system = engines::KhuzdulSystem::kGraphPi(g, engineConfig());
    for (int k = 3; k <= 5; ++k)
        EXPECT_EQ(apps::cliqueCount(*system, k),
                  brute::countEmbeddings(g, Pattern::clique(k), false))
            << k << "-clique";
}

TEST(Apps, MotifCensusSize3)
{
    const Graph g = gen::rmat(150, 900, 0.5, 0.2, 0.2, 11);
    auto system = engines::KhuzdulSystem::kAutomine(g, engineConfig());
    const auto census = apps::motifCount(*system, 3);
    ASSERT_EQ(census.size(), 2u);
    for (const auto &motif : census)
        EXPECT_EQ(motif.count,
                  brute::countEmbeddings(g, motif.pattern, true))
            << motif.pattern.toString();
}

TEST(Apps, MotifCensusSize4CoversAllSixMotifs)
{
    const Graph g = gen::rmat(100, 500, 0.5, 0.2, 0.2, 12);
    auto system = engines::KhuzdulSystem::kGraphPi(g, engineConfig());
    const auto census = apps::motifCount(*system, 4);
    ASSERT_EQ(census.size(), 6u);
    Count total = 0;
    for (const auto &motif : census) {
        EXPECT_EQ(motif.count,
                  brute::countEmbeddings(g, motif.pattern, true))
            << motif.pattern.toString();
        total += motif.count;
    }
    EXPECT_GT(total, 0u);
}

TEST(Apps, MotifRejectsUnsupportedSizes)
{
    const Graph g = gen::cycle(5);
    auto system = engines::KhuzdulSystem::kAutomine(g, engineConfig());
    EXPECT_THROW(apps::motifCount(*system, 2), FatalError);
    EXPECT_THROW(apps::motifCount(*system, 6), FatalError);
    EXPECT_THROW(apps::cliqueCount(*system, 1), FatalError);
}

TEST(Fsm, MniSupportOnLabeledCycle)
{
    Graph g = gen::cycle(4);
    g.setLabels({0, 1, 0, 1});
    auto system = engines::KhuzdulSystem::kAutomine(g, engineConfig(1));
    apps::KhuzdulFsmBackend backend(*system);
    Pattern edge(2, {{0, 1}});
    edge.setLabel(0, 0);
    edge.setLabel(1, 1);
    EXPECT_EQ(apps::mniSupport(backend, edge), 2u);
    Pattern same(2, {{0, 1}});
    same.setLabel(0, 0);
    same.setLabel(1, 0);
    EXPECT_EQ(apps::mniSupport(backend, same), 0u);
}

TEST(Fsm, MniSupportMergesOrbits)
{
    // Star with one hub (label 0) and 4 leaves (label 1): the A-B
    // edge has hub domain {hub} and leaf domain of size 4; MNI = 1.
    Graph g = gen::star(5);
    g.setLabels({0, 1, 1, 1, 1});
    auto system = engines::KhuzdulSystem::kAutomine(g, engineConfig(1));
    apps::KhuzdulFsmBackend backend(*system);
    Pattern edge(2, {{0, 1}});
    edge.setLabel(0, 0);
    edge.setLabel(1, 1);
    EXPECT_EQ(apps::mniSupport(backend, edge), 1u);
    // Symmetric wedge leaf-hub-leaf: leaves form one orbit whose
    // merged domain is all 4 leaves; hub domain is 1; MNI = 1.
    Pattern wedge(3, {{0, 1}, {0, 2}});
    wedge.setLabel(0, 0);
    wedge.setLabel(1, 1);
    wedge.setLabel(2, 1);
    EXPECT_EQ(apps::mniSupport(backend, wedge), 1u);
}

TEST(Fsm, RequiresLabeledGraph)
{
    const Graph g = gen::cycle(5);
    auto system = engines::KhuzdulSystem::kAutomine(g, engineConfig(1));
    apps::KhuzdulFsmBackend backend(*system);
    EXPECT_THROW(
        apps::mineFrequentSubgraphs(backend, g, {1, 3}),
        FatalError);
}

TEST(Fsm, AgreesWithPatternObliviousBaseline)
{
    Graph g = gen::rmat(120, 500, 0.5, 0.2, 0.2, 321);
    gen::randomizeLabels(g, 2, 5);

    auto system = engines::KhuzdulSystem::kAutomine(g, engineConfig(2));
    apps::KhuzdulFsmBackend backend(*system);
    apps::FsmConfig config;
    config.minSupport = 5;
    config.maxEdges = 2;
    const auto aware = apps::mineFrequentSubgraphs(backend, g, config);

    engines::PatternObliviousConfig oblivious_config;
    oblivious_config.cluster = sim::ClusterConfig::paperDefault(2);
    engines::PatternObliviousEngine oblivious(g, oblivious_config);
    const auto baseline = oblivious.mineFrequent(2, config.minSupport);

    // Same frequent pattern sets with the same supports.
    ASSERT_EQ(aware.frequent.size(), baseline.patterns.size());
    for (const auto &fp : aware.frequent) {
        bool found = false;
        for (const auto &bp : baseline.patterns) {
            if (iso::isomorphic(fp.pattern, bp.pattern)) {
                EXPECT_EQ(fp.support, bp.support)
                    << fp.pattern.toString();
                found = true;
            }
        }
        EXPECT_TRUE(found) << fp.pattern.toString();
    }
}

TEST(Fsm, SingleMachineBackendMatchesKhuzdulBackend)
{
    Graph g = gen::rmat(100, 420, 0.5, 0.2, 0.2, 77);
    gen::randomizeLabels(g, 3, 9);
    auto system = engines::KhuzdulSystem::kAutomine(g, engineConfig(3));
    apps::KhuzdulFsmBackend distributed(*system);
    apps::SingleMachineFsmBackend local(g);
    apps::FsmConfig config;
    config.minSupport = 3;
    config.maxEdges = 3;
    const auto a = apps::mineFrequentSubgraphs(distributed, g, config);
    const auto b = apps::mineFrequentSubgraphs(local, g, config);
    ASSERT_EQ(a.frequent.size(), b.frequent.size());
    EXPECT_EQ(a.patternsEvaluated, b.patternsEvaluated);
    EXPECT_GT(local.workItems(), 0u);
}

TEST(Fsm, HigherThresholdYieldsSubset)
{
    Graph g = gen::rmat(150, 700, 0.55, 0.2, 0.2, 55);
    gen::randomizeLabels(g, 2, 3);
    auto system = engines::KhuzdulSystem::kAutomine(g, engineConfig(2));
    apps::KhuzdulFsmBackend backend(*system);
    const auto low = apps::mineFrequentSubgraphs(backend, g, {2, 3});
    const auto high = apps::mineFrequentSubgraphs(backend, g, {40, 3});
    EXPECT_LE(high.frequent.size(), low.frequent.size());
    for (const auto &fp : high.frequent)
        EXPECT_GE(fp.support, 40u);
}

} // namespace
} // namespace khuzdul
