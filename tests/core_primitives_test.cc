/**
 * @file
 * Unit tests for the engine's building blocks: set kernels, the
 * chunk arena, the horizontal (collision-dropping) table and the
 * data caches with every replacement policy.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>

#include "core/cache.hh"
#include "core/chunk.hh"
#include "core/horizontal.hh"
#include "core/kernels/kernels.hh"
#include "graph/generators.hh"
#include "support/rng.hh"

namespace khuzdul
{
namespace
{

using core::Chunk;
using core::DataCache;
using core::HorizontalTable;

std::vector<VertexId>
sortedList(std::initializer_list<VertexId> values)
{
    return values;
}

TEST(Intersect, PairBasics)
{
    std::vector<VertexId> out;
    core::intersectInto(sortedList({1, 3, 5, 7}),
                        sortedList({2, 3, 4, 7, 9}), out);
    EXPECT_EQ(out, sortedList({3, 7}));
    core::intersectInto(sortedList({1, 2}), sortedList({3, 4}), out);
    EXPECT_TRUE(out.empty());
    core::intersectInto({}, sortedList({1}), out);
    EXPECT_TRUE(out.empty());
}

TEST(Intersect, CountMatchesMaterialized)
{
    Rng rng(3);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<VertexId> a;
        std::vector<VertexId> b;
        for (int i = 0; i < 300; ++i) {
            if (rng.coin(0.4))
                a.push_back(i);
            if (rng.coin(0.4))
                b.push_back(i);
        }
        std::vector<VertexId> out;
        core::intersectInto(a, b, out);
        Count count = 0;
        core::intersectCount(a, b, count);
        EXPECT_EQ(count, out.size());
    }
}

TEST(Intersect, SubtractBasics)
{
    std::vector<VertexId> out;
    core::subtractInto(sortedList({1, 2, 3, 4, 5}),
                       sortedList({2, 4, 6}), out);
    EXPECT_EQ(out, sortedList({1, 3, 5}));
    core::subtractInto(sortedList({1, 2}), {}, out);
    EXPECT_EQ(out, sortedList({1, 2}));
}

TEST(Intersect, ManyListsFoldCorrectly)
{
    const auto a = sortedList({1, 2, 3, 4, 5, 6, 7, 8});
    const auto b = sortedList({2, 4, 6, 8, 10});
    const auto c = sortedList({4, 8, 12});
    std::array<std::span<const VertexId>, 3> lists{a, b, c};
    std::vector<VertexId> out;
    std::vector<VertexId> scratch;
    core::intersectMany({lists.data(), 3}, out, scratch);
    EXPECT_EQ(out, sortedList({4, 8}));
    Count count = 0;
    std::vector<VertexId> s2;
    core::intersectManyCount({lists.data(), 3}, count, out, s2);
    EXPECT_EQ(count, 2u);
}

TEST(Intersect, SingleListPassesThrough)
{
    const auto a = sortedList({5, 9});
    std::array<std::span<const VertexId>, 1> lists{a};
    std::vector<VertexId> out;
    std::vector<VertexId> scratch;
    core::intersectMany({lists.data(), 1}, out, scratch);
    EXPECT_EQ(out, a);
}

TEST(Intersect, ContainsBinarySearch)
{
    const auto list = sortedList({2, 4, 8, 16});
    EXPECT_TRUE(core::contains(list, 8));
    EXPECT_FALSE(core::contains(list, 7));
    EXPECT_FALSE(core::contains({}, 1));
}

TEST(Chunk, AppendAndRecover)
{
    Chunk chunk(1 << 20);
    const auto i0 = chunk.add(10, core::kNoParent, true);
    const auto i1 = chunk.add(20, i0, false);
    EXPECT_EQ(chunk.size(), 2u);
    EXPECT_EQ(chunk.vertex(i1), 20u);
    EXPECT_EQ(chunk.parent(i1), i0);
    EXPECT_TRUE(chunk.needsFetch(i0));
    EXPECT_FALSE(chunk.needsFetch(i1));
}

TEST(Chunk, FrontierColumnsExposeContiguousLayout)
{
    // The level-wise frontier layout: vertex/parent columns are
    // index-aligned spans over the whole chunk, and the fetch list is
    // the ascending index column of exactly the entries added with
    // needs_fetch — the fetch phase walks it as one contiguous run.
    Chunk chunk(1 << 20);
    const auto i0 = chunk.add(10, core::kNoParent, true);
    const auto i1 = chunk.add(20, i0, false);
    const auto i2 = chunk.add(30, i0, true);
    const auto i3 = chunk.add(40, i1, true);

    const auto verts = chunk.vertexColumn();
    const auto parents = chunk.parentColumn();
    ASSERT_EQ(verts.size(), chunk.size());
    ASSERT_EQ(parents.size(), chunk.size());
    for (std::uint32_t i = 0; i < chunk.size(); ++i) {
        EXPECT_EQ(verts[i], chunk.vertex(i));
        EXPECT_EQ(parents[i], chunk.parent(i));
    }

    const auto fetch = chunk.fetchList();
    EXPECT_EQ(std::vector<std::uint32_t>(fetch.begin(), fetch.end()),
              (std::vector<std::uint32_t>{i0, i2, i3}));
    EXPECT_TRUE(std::is_sorted(fetch.begin(), fetch.end()));

    chunk.reset();
    EXPECT_TRUE(chunk.fetchList().empty());
    EXPECT_TRUE(chunk.vertexColumn().empty());
}

TEST(Chunk, BudgetGatesFullness)
{
    Chunk chunk(Chunk::kEntryBytes * 3);
    EXPECT_FALSE(chunk.full());
    chunk.add(1, core::kNoParent, false);
    chunk.add(2, core::kNoParent, false);
    EXPECT_FALSE(chunk.full());
    chunk.add(3, core::kNoParent, false);
    EXPECT_TRUE(chunk.full());
    chunk.reset();
    EXPECT_FALSE(chunk.full());
    EXPECT_EQ(chunk.size(), 0u);
}

TEST(Chunk, SharedResultsAreReadableByAllSiblings)
{
    Chunk chunk(1 << 20);
    const auto a = chunk.add(1, core::kNoParent, false);
    const auto b = chunk.add(2, core::kNoParent, false);
    const auto result = sortedList({7, 8, 9});
    const auto offset = chunk.appendResult(result);
    chunk.setResultRef(a, offset, 3);
    chunk.setResultRef(b, offset, 3);
    EXPECT_EQ(std::vector<VertexId>(chunk.result(a).begin(),
                                    chunk.result(a).end()),
              result);
    EXPECT_EQ(chunk.result(b).data(), chunk.result(a).data());
}

TEST(Chunk, FetchedBytesCountTowardBudget)
{
    Chunk chunk(100);
    chunk.add(1, core::kNoParent, true);
    EXPECT_FALSE(chunk.full());
    chunk.addFetchedBytes(80);
    EXPECT_TRUE(chunk.full());
}

TEST(Horizontal, HitClaimDropSemantics)
{
    HorizontalTable table(64);
    const auto first = table.offer(5);
    EXPECT_EQ(first, HorizontalTable::Probe::Claimed);
    EXPECT_EQ(table.offer(5), HorizontalTable::Probe::Hit);
    // Find a colliding vertex (same slot, different id).
    VertexId collider = kInvalidVertex;
    for (VertexId v = 6; v < 100'000; ++v) {
        if (v != 5 && mix64(v) % 64 == mix64(5) % 64) {
            collider = v;
            break;
        }
    }
    ASSERT_NE(collider, kInvalidVertex);
    EXPECT_EQ(table.offer(collider), HorizontalTable::Probe::Dropped);
    table.clear();
    EXPECT_EQ(table.offer(collider), HorizontalTable::Probe::Claimed);
}

TEST(Cache, StaticRespectsDegreeThresholdAndFreeze)
{
    const Graph g = gen::star(100); // hub degree 99, leaves 1
    DataCache cache(g, core::CachePolicy::Static, 1 << 10, 10);
    EXPECT_FALSE(cache.insert(5));  // leaf: below threshold
    EXPECT_TRUE(cache.insert(0));   // hub qualifies
    EXPECT_TRUE(cache.lookup(0));
    EXPECT_FALSE(cache.lookup(5));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, StaticFreezesWhenFull)
{
    const Graph g = gen::complete(32); // all degrees 31 (124B each)
    DataCache cache(g, core::CachePolicy::Static, 300, 4);
    EXPECT_TRUE(cache.insert(0));
    EXPECT_TRUE(cache.insert(1));
    EXPECT_FALSE(cache.insert(2)); // would exceed capacity: freeze
    EXPECT_TRUE(cache.fullForever());
    EXPECT_FALSE(cache.insert(3)); // frozen forever
    EXPECT_TRUE(cache.lookup(0));
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    const Graph g = gen::complete(32);
    DataCache cache(g, core::CachePolicy::Lru, 300, 0);
    cache.insert(0);
    cache.insert(1);
    EXPECT_TRUE(cache.lookup(0)); // 0 is now most recent
    cache.insert(2);              // evicts 1
    EXPECT_TRUE(cache.lookup(0));
    EXPECT_FALSE(cache.lookup(1));
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(Cache, MruEvictsMostRecentlyUsed)
{
    const Graph g = gen::complete(32);
    DataCache cache(g, core::CachePolicy::Mru, 300, 0);
    cache.insert(0);
    cache.insert(1);
    EXPECT_TRUE(cache.lookup(0)); // 0 becomes most recent
    cache.insert(2);              // evicts 0
    EXPECT_FALSE(cache.lookup(0));
    EXPECT_TRUE(cache.lookup(1));
}

TEST(Cache, FifoAndLifoEvictionOrder)
{
    const Graph g = gen::complete(32);
    DataCache fifo(g, core::CachePolicy::Fifo, 300, 0);
    fifo.insert(0);
    fifo.insert(1);
    fifo.insert(2); // evicts 0 (first in)
    EXPECT_FALSE(fifo.lookup(0));
    EXPECT_TRUE(fifo.lookup(1));

    DataCache lifo(g, core::CachePolicy::Lifo, 300, 0);
    lifo.insert(0);
    lifo.insert(1);
    lifo.insert(2); // evicts 1 (last in)
    EXPECT_TRUE(lifo.lookup(0));
    EXPECT_FALSE(lifo.lookup(1));
}

TEST(Cache, ZeroCapacityDisables)
{
    const Graph g = gen::complete(8);
    DataCache cache(g, core::CachePolicy::Static, 0, 0);
    EXPECT_EQ(cache.policy(), core::CachePolicy::None);
    EXPECT_FALSE(cache.insert(0));
    EXPECT_FALSE(cache.lookup(0));
}

TEST(Cache, OversizedListIsRejectedWithoutEvictionStorm)
{
    const Graph g = gen::star(1000); // hub list ~4KB
    DataCache cache(g, core::CachePolicy::Lru, 64, 0);
    cache.insert(5); // leaf fits
    EXPECT_FALSE(cache.insert(0)); // hub larger than whole cache
    EXPECT_TRUE(cache.lookup(5));  // nothing was evicted for it
}

} // namespace
} // namespace khuzdul
