/**
 * @file
 * Phase-event tracing tests: the sink implementations in isolation,
 * the cross-check between the engine's internal event tallies and
 * its RunStats counters, and the observation-only guarantee (a run
 * is bit-exact with tracing enabled or disabled).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.hh"
#include "graph/generators.hh"
#include "pattern/planner.hh"
#include "sim/trace.hh"

namespace khuzdul
{
namespace
{

core::EngineConfig
traceConfig()
{
    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(4);
    config.cluster.socketsPerNode = 1;
    config.chunkBytes = 64 << 10;
    config.cacheDegreeThreshold = 8;
    return config;
}

TEST(Trace, PhaseEventNamesAreStable)
{
    EXPECT_STREQ(phaseEventName(sim::PhaseEvent::ChunkOpen),
                 "chunk_open");
    EXPECT_STREQ(phaseEventName(sim::PhaseEvent::FetchBatchIssued),
                 "fetch_batch_issued");
    EXPECT_STREQ(phaseEventName(sim::PhaseEvent::CacheMiss),
                 "cache_miss");
    EXPECT_STREQ(phaseEventName(sim::PhaseEvent::KernelDispatch),
                 "kernel_dispatch");
}

TEST(Trace, CountingSinkTalliesPerEvent)
{
    sim::CountingTraceSink sink;
    sink.emit({sim::PhaseEvent::ChunkOpen, 0, 0, 10, 0});
    sink.emit({sim::PhaseEvent::ChunkOpen, 1, 2, 5, 0});
    sink.emit({sim::PhaseEvent::CacheHit, 0, 0, 42, 0});
    EXPECT_EQ(sink.count(sim::PhaseEvent::ChunkOpen), 2u);
    EXPECT_EQ(sink.valueSum(sim::PhaseEvent::ChunkOpen), 15u);
    EXPECT_EQ(sink.count(sim::PhaseEvent::CacheHit), 1u);
    EXPECT_EQ(sink.total(), 3u);
    sink.reset();
    EXPECT_EQ(sink.total(), 0u);
    EXPECT_EQ(sink.valueSum(sim::PhaseEvent::ChunkOpen), 0u);
}

TEST(Trace, JsonLinesSinkFormat)
{
    std::ostringstream out;
    sim::JsonLinesTraceSink sink(out);
    sink.emit({sim::PhaseEvent::FetchBatchIssued, 3, 2, 77, 5});
    EXPECT_EQ(out.str(),
              "{\"event\":\"fetch_batch_issued\",\"unit\":3,"
              "\"level\":2,\"value\":77,\"aux\":5}\n");
}

TEST(Trace, TeeFansOutToOptionalSecondary)
{
    sim::CountingTraceSink primary;
    sim::CountingTraceSink secondary;
    sim::TeeTraceSink tee(primary);
    tee.emit({sim::PhaseEvent::ExtendStart, 0, 0, 1, 0});
    tee.secondary(&secondary);
    tee.emit({sim::PhaseEvent::ExtendStart, 0, 0, 1, 0});
    tee.secondary(nullptr);
    tee.emit({sim::PhaseEvent::ExtendStart, 0, 0, 1, 0});
    EXPECT_EQ(primary.count(sim::PhaseEvent::ExtendStart), 3u);
    EXPECT_EQ(secondary.count(sim::PhaseEvent::ExtendStart), 1u);
}

TEST(Trace, EngineEventsCrossCheckRunStats)
{
    const Graph g = gen::rmat(300, 2000, 0.55, 0.2, 0.2, 2024);
    core::Engine engine(g, traceConfig());
    engine.run(compileAutomine(Pattern::clique(4), {}));

    const sim::CountingTraceSink &t = engine.traceCounts();
    std::uint64_t chunks = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (const auto &node : engine.stats().nodes) {
        chunks += node.chunksProcessed;
        hits += node.staticCacheHits;
        misses += node.staticCacheMisses;
    }
    EXPECT_GT(chunks, 0u);
    EXPECT_EQ(t.count(sim::PhaseEvent::ChunkOpen), chunks);
    EXPECT_EQ(t.count(sim::PhaseEvent::ChunkClose), chunks);
    EXPECT_EQ(t.count(sim::PhaseEvent::ExtendStart), chunks);
    EXPECT_EQ(t.count(sim::PhaseEvent::ExtendEnd), chunks);
    EXPECT_EQ(t.count(sim::PhaseEvent::CacheHit), hits);
    EXPECT_EQ(t.count(sim::PhaseEvent::CacheMiss), misses);
    // One socket per node: every issued batch crosses the network,
    // so issued events match the message count, and the issued
    // payload sum matches the bytes on the wire.
    EXPECT_EQ(t.count(sim::PhaseEvent::FetchBatchIssued),
              engine.stats().totalMessages());
    EXPECT_EQ(t.count(sim::PhaseEvent::FetchBatchCompleted),
              t.count(sim::PhaseEvent::FetchBatchIssued));
    EXPECT_EQ(t.valueSum(sim::PhaseEvent::FetchBatchIssued),
              engine.stats().totalBytesSent());
    // Kernel-dispatch events carry per-chunk call deltas whose sum
    // must equal the kernel-call totals accumulated in RunStats.
    std::uint64_t kernel_calls = 0;
    for (const auto &node : engine.stats().nodes)
        for (const std::uint64_t calls : node.kernelCalls)
            kernel_calls += calls;
    EXPECT_GT(kernel_calls, 0u);
    EXPECT_EQ(t.valueSum(sim::PhaseEvent::KernelDispatch),
              kernel_calls);
}

TEST(Trace, TracingIsObservationOnly)
{
    const Graph g = gen::rmat(300, 2000, 0.55, 0.2, 0.2, 2024);
    const auto plan = compileAutomine(Pattern::clique(4), {});

    core::Engine plain(g, traceConfig());
    const Count count_plain = plain.run(plan);

    core::Engine traced(g, traceConfig());
    std::ostringstream out;
    sim::JsonLinesTraceSink sink(out);
    traced.setTraceSink(&sink);
    const Count count_traced = traced.run(plan);

    EXPECT_EQ(count_traced, count_plain);
    EXPECT_FALSE(out.str().empty());
    // Bit-exact stats: attaching a sink must not perturb the run.
    EXPECT_DOUBLE_EQ(traced.stats().makespanNs(),
                     plain.stats().makespanNs());
    EXPECT_DOUBLE_EQ(traced.stats().totalComputeNs(),
                     plain.stats().totalComputeNs());
    EXPECT_DOUBLE_EQ(traced.stats().totalCacheNs(),
                     plain.stats().totalCacheNs());
    EXPECT_EQ(traced.stats().totalBytesSent(),
              plain.stats().totalBytesSent());
    EXPECT_EQ(traced.stats().totalMessages(),
              plain.stats().totalMessages());
    EXPECT_EQ(traced.stats().totalEmbeddings(),
              plain.stats().totalEmbeddings());
    EXPECT_EQ(traced.traceCounts().total(),
              plain.traceCounts().total());
}

TEST(Trace, ResetStatsClearsEventCounts)
{
    const Graph g = gen::rmat(300, 2000, 0.55, 0.2, 0.2, 2024);
    core::Engine engine(g, traceConfig());
    engine.run(compileAutomine(Pattern::triangle(), {}));
    EXPECT_GT(engine.traceCounts().total(), 0u);
    engine.resetStats();
    EXPECT_EQ(engine.traceCounts().total(), 0u);
}

} // namespace
} // namespace khuzdul
