/**
 * @file
 * Distributed-engine correctness and accounting tests: exact counts
 * under every configuration axis (node count, NUMA, chunk size,
 * cache policy, sharing ablations), plus statistics/traffic sanity.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/engine.hh"
#include "graph/generators.hh"
#include "pattern/bruteforce.hh"
#include "pattern/generation.hh"
#include "pattern/planner.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace
{

Graph
testGraph()
{
    return gen::rmat(300, 2000, 0.55, 0.2, 0.2, 2024);
}

core::EngineConfig
smallConfig(NodeId nodes = 4)
{
    core::EngineConfig config;
    config.cluster = sim::ClusterConfig::paperDefault(nodes);
    config.chunkBytes = 64 << 10;
    config.cacheDegreeThreshold = 8;
    return config;
}

TEST(Engine, TriangleCountMatchesBruteForce)
{
    const Graph g = testGraph();
    const Count expected =
        brute::countEmbeddings(g, Pattern::triangle(), false);
    core::Engine engine(g, smallConfig());
    const auto plan = compileAutomine(Pattern::triangle(), {});
    EXPECT_EQ(engine.run(plan), expected);
}

TEST(Engine, CountsInvariantAcrossNodeCounts)
{
    const Graph g = testGraph();
    const auto plan = compileAutomine(Pattern::clique(4), {});
    Count reference = 0;
    for (const NodeId nodes : {1u, 2u, 3u, 8u}) {
        core::Engine engine(g, smallConfig(nodes));
        const Count count = engine.run(plan);
        if (nodes == 1)
            reference = count;
        else
            EXPECT_EQ(count, reference) << nodes << " nodes";
    }
    EXPECT_EQ(reference, brute::countEmbeddings(g, Pattern::clique(4),
                                                false));
}

TEST(Engine, CountsInvariantAcrossChunkSizes)
{
    const Graph g = testGraph();
    const auto plan = compileAutomine(Pattern::clique(4), {});
    const Count expected =
        brute::countEmbeddings(g, Pattern::clique(4), false);
    for (const std::uint64_t chunk : {1u << 10, 16u << 10, 4u << 20}) {
        auto config = smallConfig();
        config.chunkBytes = chunk;
        core::Engine engine(g, config);
        EXPECT_EQ(engine.run(plan), expected) << "chunk " << chunk;
    }
}

TEST(Engine, CountsInvariantAcrossCachePolicies)
{
    const Graph g = testGraph();
    const auto plan = compileAutomine(Pattern::triangle(), {});
    const Count expected =
        brute::countEmbeddings(g, Pattern::triangle(), false);
    using core::CachePolicy;
    for (const auto policy :
         {CachePolicy::None, CachePolicy::Static, CachePolicy::Fifo,
          CachePolicy::Lifo, CachePolicy::Lru, CachePolicy::Mru}) {
        auto config = smallConfig();
        config.cachePolicy = policy;
        core::Engine engine(g, config);
        EXPECT_EQ(engine.run(plan), expected)
            << core::cachePolicyName(policy);
    }
}

TEST(Engine, CountsInvariantAcrossSharingAblations)
{
    const Graph g = testGraph();
    const Count expected =
        brute::countEmbeddings(g, Pattern::clique(5), false);
    for (const bool hds : {false, true}) {
        for (const bool vcs : {false, true}) {
            auto config = smallConfig();
            config.horizontalSharing = hds;
            PlanOptions options;
            options.verticalSharing = vcs;
            core::Engine engine(g, config);
            const auto plan = compileAutomine(Pattern::clique(5),
                                              options);
            EXPECT_EQ(engine.run(plan), expected)
                << "hds=" << hds << " vcs=" << vcs;
        }
    }
}

TEST(Engine, CountsInvariantAcrossNumaModes)
{
    const Graph g = testGraph();
    const auto plan = compileAutomine(Pattern::clique(4), {});
    const Count expected =
        brute::countEmbeddings(g, Pattern::clique(4), false);
    for (const bool numa : {false, true}) {
        auto config = smallConfig();
        config.numaAware = numa;
        core::Engine engine(g, config);
        EXPECT_EQ(engine.run(plan), expected) << "numa=" << numa;
    }
}

TEST(Engine, IepPlansProduceIdenticalCounts)
{
    const Graph g = testGraph();
    const GraphProfile profile = GraphProfile::fromGraph(g);
    core::Engine materialized(g, smallConfig());
    core::Engine folded(g, smallConfig());
    for (const auto &p : gen::connectedPatterns(4)) {
        const auto automine_plan = compileAutomine(p, {});
        const auto graphpi_plan = compileGraphPi(p, profile, {});
        EXPECT_EQ(materialized.run(automine_plan),
                  folded.run(graphpi_plan))
            << p.toString();
    }
}

TEST(Engine, IepVerticalSharingPreservesCounts)
{
    // The GraphPi compiler folds vertical sharing into the IEP
    // terminal block; with sharing disabled the same plan recomputes
    // every intersection -- counts must be identical.
    const Graph g = testGraph();
    const GraphProfile profile = GraphProfile::fromGraph(g);
    for (const auto &p : gen::connectedPatterns(5)) {
        PlanOptions with_vcs;
        PlanOptions without_vcs;
        without_vcs.verticalSharing = false;
        core::Engine a(g, smallConfig());
        core::Engine b(g, smallConfig());
        EXPECT_EQ(a.run(compileGraphPi(p, profile, with_vcs)),
                  b.run(compileGraphPi(p, profile, without_vcs)))
            << p.toString();
    }
}

TEST(EngineProperty, AllSize4PatternsMatchBruteForce)
{
    const Graph g = gen::rmat(150, 900, 0.5, 0.2, 0.2, 555);
    core::Engine engine(g, smallConfig(3));
    for (const auto &p : gen::connectedPatterns(4)) {
        const auto plan = compileAutomine(p, {});
        EXPECT_EQ(engine.run(plan), brute::countEmbeddings(g, p, false))
            << p.toString();
    }
}

TEST(EngineProperty, InducedMatchingOnEngine)
{
    const Graph g = gen::rmat(120, 600, 0.5, 0.2, 0.2, 321);
    core::Engine engine(g, smallConfig(2));
    PlanOptions induced;
    induced.induced = true;
    for (const auto &p : gen::connectedPatterns(4)) {
        const auto plan = compileAutomine(p, induced);
        EXPECT_EQ(engine.run(plan), brute::countEmbeddings(g, p, true))
            << p.toString();
    }
}

TEST(Engine, VisitorDeliversEmbeddings)
{
    const Graph g = gen::complete(7);
    core::Engine engine(g, smallConfig(2));
    const auto plan = compileAutomine(Pattern::triangle(), {});
    class CountVisitor : public core::MatchVisitor
    {
      public:
        Count seen = 0;
        void
        match(std::span<const VertexId> positions) override
        {
            EXPECT_EQ(positions.size(), 3u);
            ++seen;
        }
    } visitor;
    EXPECT_EQ(engine.run(plan, &visitor), 35u);
    EXPECT_EQ(visitor.seen, 35u);
}

TEST(Engine, StatsAccumulateAndReset)
{
    const Graph g = testGraph();
    core::Engine engine(g, smallConfig());
    const auto plan = compileAutomine(Pattern::triangle(), {});
    engine.run(plan);
    EXPECT_GT(engine.stats().makespanNs(), 0.0);
    EXPECT_GT(engine.stats().totalEmbeddings(), 0u);
    EXPECT_GT(engine.stats().totalBytesSent(), 0u);
    engine.resetStats();
    EXPECT_EQ(engine.stats().totalBytesSent(), 0u);
    EXPECT_EQ(engine.stats().totalEmbeddings(), 0u);
    // The fabric ledger and every per-unit counter zero too.
    EXPECT_EQ(engine.fabric().totalBytes(), 0u);
    for (const auto &node : engine.stats().nodes) {
        EXPECT_EQ(node.bytesReceived, 0u);
        EXPECT_EQ(node.staticCacheMisses, 0u);
        EXPECT_DOUBLE_EQ(node.computeNs, 0.0);
    }
}

TEST(Engine, ResetStatsKeepsCachesWarm)
{
    // resetStats() zeroes counters and the fabric ledger but leaves
    // cache *contents* resident: a repeat of the same pattern must
    // admit nothing new, miss less, and move fewer bytes.
    const Graph g = gen::rmat(400, 4000, 0.65, 0.15, 0.15, 43);
    auto config = smallConfig(8);
    config.horizontalSharing = false;
    config.cacheDegreeThreshold = 32;
    config.cacheFraction = 0.3;
    core::Engine engine(g, config);
    const auto plan = compileAutomine(Pattern::clique(4), {});

    engine.run(plan);
    std::uint64_t cold_misses = 0;
    std::uint64_t cold_insertions = 0;
    for (const auto &node : engine.stats().nodes) {
        cold_misses += node.staticCacheMisses;
        cold_insertions += node.staticCacheInsertions;
    }
    const std::uint64_t cold_bytes = engine.stats().totalBytesSent();
    EXPECT_GT(cold_insertions, 0u);

    engine.resetStats();
    engine.run(plan);
    std::uint64_t warm_misses = 0;
    std::uint64_t warm_insertions = 0;
    std::uint64_t warm_hits = 0;
    for (const auto &node : engine.stats().nodes) {
        warm_misses += node.staticCacheMisses;
        warm_insertions += node.staticCacheInsertions;
        warm_hits += node.staticCacheHits;
    }
    EXPECT_EQ(warm_insertions, 0u); // static cache: nothing re-admitted
    EXPECT_LT(warm_misses, cold_misses);
    EXPECT_GT(warm_hits, 0u);
    EXPECT_LT(engine.stats().totalBytesSent(), cold_bytes);
}

TEST(Engine, ClearCachesRestoresColdStart)
{
    // clearCaches() + resetStats() is the full cold restart: the
    // re-run's modeled dump must reproduce the first run's byte for
    // byte even under a warming cache policy (resetStats alone
    // keeps contents resident, see ResetStatsKeepsCachesWarm).
    const Graph g = gen::rmat(400, 4000, 0.65, 0.15, 0.15, 43);
    auto config = smallConfig(8);
    config.cacheDegreeThreshold = 32;
    config.cacheFraction = 0.3;
    core::Engine engine(g, config);
    const auto plan = compileAutomine(Pattern::clique(4), {});

    const Count cold_count = engine.run(plan);
    const std::string cold_json = engine.stats().toJson(false);

    // A warm repeat genuinely differs: the caches persisted.
    engine.resetStats();
    engine.run(plan);
    EXPECT_NE(engine.stats().toJson(false), cold_json);

    engine.clearCaches();
    engine.resetStats();
    EXPECT_EQ(engine.run(plan), cold_count);
    EXPECT_EQ(engine.stats().toJson(false), cold_json);
}

TEST(Engine, SingleNodeHasNoNetworkTraffic)
{
    const Graph g = testGraph();
    auto config = smallConfig(1);
    config.cluster.socketsPerNode = 1;
    core::Engine engine(g, config);
    engine.run(compileAutomine(Pattern::clique(4), {}));
    EXPECT_EQ(engine.stats().totalBytesSent(), 0u);
    EXPECT_EQ(engine.fabric().totalBytes(), 0u);
}

TEST(Engine, HorizontalSharingReducesTraffic)
{
    const Graph g = gen::rmat(400, 4000, 0.6, 0.15, 0.15, 42);
    const auto plan = compileAutomine(Pattern::clique(4), {});

    auto with_config = smallConfig(8);
    with_config.cachePolicy = core::CachePolicy::None;
    core::Engine with_hds(g, with_config);
    with_hds.run(plan);

    auto without_config = with_config;
    without_config.horizontalSharing = false;
    core::Engine without_hds(g, without_config);
    without_hds.run(plan);

    EXPECT_LT(with_hds.stats().totalBytesSent(),
              without_hds.stats().totalBytesSent() / 2);
}

TEST(Engine, StaticCacheReducesTraffic)
{
    const Graph g = gen::rmat(400, 4000, 0.65, 0.15, 0.15, 43);
    const auto plan = compileAutomine(Pattern::clique(4), {});

    auto cached_config = smallConfig(8);
    cached_config.horizontalSharing = false;
    // Admit only genuinely hot vertices so capacity is not wasted
    // on mid-degree lists (the paper's threshold rationale).
    cached_config.cacheDegreeThreshold = 32;
    cached_config.cacheFraction = 0.3;
    core::Engine cached(g, cached_config);
    cached.run(plan);

    auto uncached_config = cached_config;
    uncached_config.cachePolicy = core::CachePolicy::None;
    core::Engine uncached(g, uncached_config);
    uncached.run(plan);

    EXPECT_LT(cached.stats().totalBytesSent(),
              uncached.stats().totalBytesSent());
    EXPECT_GT(cached.stats().staticCacheHitRate(), 0.1);
}

TEST(Engine, TrafficLedgerIsConsistent)
{
    const Graph g = testGraph();
    core::Engine engine(g, smallConfig(4));
    engine.run(compileAutomine(Pattern::clique(4), {}));
    std::uint64_t received = 0;
    std::uint64_t sent = 0;
    for (const auto &node : engine.stats().nodes) {
        received += node.bytesReceived;
        sent += node.bytesSent;
    }
    EXPECT_EQ(received, sent);
    EXPECT_EQ(received, engine.fabric().totalBytes());
}

TEST(Engine, ChunkMemoryStaysNearBudget)
{
    const Graph g = testGraph();
    auto config = smallConfig(2);
    config.chunkBytes = 8 << 10;
    core::Engine engine(g, config);
    engine.run(compileAutomine(Pattern::clique(4), {}));
    std::uint64_t peak = 0;
    for (const auto &node : engine.stats().nodes)
        peak = std::max(peak, node.peakChunkBytes);
    // Soft bound: one extension may overshoot, but not by orders of
    // magnitude.
    EXPECT_LT(peak, 40 * config.chunkBytes);
    EXPECT_GT(peak, 0u);
}

TEST(Engine, FaultInjectionByteCapFires)
{
    const Graph g = gen::rmat(400, 4000, 0.6, 0.15, 0.15, 44);
    auto config = smallConfig(8);
    config.cachePolicy = core::CachePolicy::None;
    config.horizontalSharing = false;
    core::Engine engine(g, config);
    engine.fabric().setByteCap(1024);
    EXPECT_THROW(engine.run(compileAutomine(Pattern::clique(4), {})),
                 sim::ByteCapExceededFault);
}

TEST(Engine, MoreNodesShortenModeledMakespan)
{
    const Graph g = gen::rmat(1000, 12000, 0.55, 0.2, 0.2, 45);
    const auto plan = compileAutomine(Pattern::clique(4), {});
    core::Engine one(g, smallConfig(1));
    one.run(plan);
    core::Engine eight(g, smallConfig(8));
    eight.run(plan);
    EXPECT_LT(eight.stats().makespanNs(), one.stats().makespanNs());
}

TEST(Engine, ParallelRunKeepsVisitorsSequential)
{
    // MatchVisitor is client code of unknown thread-safety, so a
    // visitor run must force one host thread even when more are
    // configured — and still deliver every embedding.
    const Graph g = gen::complete(7);
    auto config = smallConfig(2);
    config.hostThreads = 4;
    core::Engine engine(g, config);
    const auto plan = compileAutomine(Pattern::triangle(), {});
    class CountVisitor : public core::MatchVisitor
    {
      public:
        Count seen = 0;
        void match(std::span<const VertexId>) override { ++seen; }
    } visitor;
    EXPECT_EQ(engine.run(plan, &visitor), 35u);
    EXPECT_EQ(visitor.seen, 35u);
    EXPECT_EQ(engine.stats().hostThreads, 1u);
}

TEST(Engine, ParallelRunReportsHostThreads)
{
    const Graph g = testGraph();
    auto config = smallConfig(4); // 4 nodes x 2 sockets = 8 units
    config.hostThreads = 3;
    core::Engine engine(g, config);
    engine.run(compileAutomine(Pattern::triangle(), {}));
    EXPECT_EQ(engine.stats().hostThreads, 3u);
    EXPECT_GT(engine.stats().hostWallNs, 0.0);
    // The host block appears in the default dump, never in the
    // purely modeled one.
    EXPECT_NE(engine.stats().toJson().find("\"host\":"),
              std::string::npos);
    EXPECT_EQ(engine.stats().toJson(false).find("\"host\":"),
              std::string::npos);
}

TEST(Engine, ByteCapFiresUnderParallelRun)
{
    // The fault injection point moves to the ordered merge, but the
    // fault still surfaces from run() itself.
    const Graph g = gen::rmat(400, 4000, 0.6, 0.15, 0.15, 44);
    auto config = smallConfig(8);
    config.cachePolicy = core::CachePolicy::None;
    config.horizontalSharing = false;
    config.hostThreads = 4;
    core::Engine engine(g, config);
    engine.fabric().setByteCap(1024);
    EXPECT_THROW(engine.run(compileAutomine(Pattern::clique(4), {})),
                 sim::ByteCapExceededFault);
}

TEST(Engine, TraceStreamIsThreadCountInvariant)
{
    // The ordered per-unit flush must reproduce the sequential
    // event stream byte for byte, not just in aggregate.
    const Graph g = testGraph();
    const auto plan = compileAutomine(Pattern::clique(4), {});
    const auto stream = [&](unsigned threads) {
        auto config = smallConfig(4);
        config.hostThreads = threads;
        core::Engine engine(g, config);
        std::ostringstream out;
        sim::JsonLinesTraceSink sink(out);
        engine.setTraceSink(&sink);
        engine.run(plan);
        return out.str();
    };
    const std::string sequential = stream(1);
    EXPECT_FALSE(sequential.empty());
    EXPECT_EQ(stream(4), sequential);
}

TEST(Engine, VisitorRequiresCompleteSymmetryBreaking)
{
    const Graph g = gen::complete(5);
    core::Engine engine(g, smallConfig(1));
    PlanOptions options;
    options.symmetryBreaking = false;
    const auto plan = compileAutomine(Pattern::triangle(), options);
    class Nop : public core::MatchVisitor
    {
        void match(std::span<const VertexId>) override {}
    } visitor;
    EXPECT_THROW(engine.run(plan, &visitor), FatalError);
}

} // namespace
} // namespace khuzdul
