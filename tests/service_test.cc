/**
 * @file
 * QueryService tests: admission control (bounded in-flight, FIFO
 * admission order), per-query results matching a solo engine run
 * bit-for-bit, cross-query shared-cache accounting, trace sink
 * wiring, and the reset-vs-clear cache contract on GraphContext.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.hh"
#include "core/service/service.hh"
#include "graph/generators.hh"
#include "pattern/planner.hh"
#include "sim/trace.hh"

namespace khuzdul
{
namespace
{

const Graph &
serviceGraph()
{
    static const Graph g = gen::rmat(300, 2200, 0.55, 0.2, 0.2, 77);
    return g;
}

core::GraphSetup
serviceSetup()
{
    core::GraphSetup setup;
    setup.cluster = sim::ClusterConfig::paperDefault(4);
    setup.cacheDegreeThreshold = 8;
    return setup;
}

std::vector<Pattern>
workloadPatterns()
{
    return {Pattern::triangle(), Pattern::clique(4),
            Pattern::cycleOf(4), Pattern::diamond()};
}

TEST(QueryService, CompletesEveryQueryWithFifoAdmission)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    core::ServiceOptions options;
    options.maxInFlight = 2;
    core::QueryService service(context, options);

    const auto patterns = workloadPatterns();
    std::vector<std::size_t> ids;
    for (int round = 0; round < 3; ++round)
        for (const Pattern &p : patterns)
            ids.push_back(service.submit(compileAutomine(p, {})));
    service.wait();

    EXPECT_EQ(service.submitted(), ids.size());
    EXPECT_EQ(service.completed(), ids.size());
    // Admission control: never more than the bound in flight.
    EXPECT_GE(service.peakInFlight(), 1u);
    EXPECT_LE(service.peakInFlight(), options.maxInFlight);
    for (const std::size_t id : ids) {
        EXPECT_TRUE(service.finished(id));
        const core::QueryResult &query = service.result(id);
        EXPECT_FALSE(query.failed) << query.error;
        // FIFO: queries are admitted strictly in submission order.
        EXPECT_EQ(query.admissionIndex, query.id);
    }
}

TEST(QueryService, ResultsMatchSoloEngineBitForBit)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    core::QueryService service(context);

    const auto patterns = workloadPatterns();
    for (const Pattern &p : patterns)
        service.submit(compileAutomine(p, {}));
    service.wait();

    for (std::size_t id = 0; id < patterns.size(); ++id) {
        // The solo reference: a fresh session over its own context
        // with the same graph-half and session-half configuration.
        core::GraphContext solo_context(serviceGraph(),
                                        serviceSetup());
        core::Engine solo(solo_context);
        const Count expected =
            solo.run(compileAutomine(patterns[id], {}));

        const core::QueryResult &query = service.result(id);
        EXPECT_EQ(query.count, expected)
            << patterns[id].toString();
        EXPECT_EQ(query.modeledJson, solo.stats().toJson(false))
            << patterns[id].toString();
        ASSERT_EQ(query.traceCounts.size(), sim::kNumPhaseEvents);
        for (std::size_t e = 0; e < sim::kNumPhaseEvents; ++e)
            EXPECT_EQ(query.traceCounts[e],
                      solo.traceCounts().count(
                          static_cast<sim::PhaseEvent>(e)))
                << patterns[id].toString() << " "
                << sim::phaseEventName(
                       static_cast<sim::PhaseEvent>(e));
    }
}

TEST(QueryService, SharedCacheAccountingAccumulates)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    core::ServiceOptions options;
    // Serial admission makes the hit pattern easy to reason about:
    // the second identical query probes lists the first pulled in.
    options.maxInFlight = 1;
    core::QueryService service(context, options);

    const auto plan = compileAutomine(Pattern::clique(4), {});
    service.submit(plan);
    service.submit(plan);
    service.wait();

    const auto &first = service.result(0);
    const auto &second = service.result(1);
    // Modeled results are identical — sharing is host-side only.
    EXPECT_EQ(first.count, second.count);
    EXPECT_EQ(first.modeledJson, second.modeledJson);

    // The directory was probed, and the re-run query hit it.
    EXPECT_GT(context.crossQueryProbes(), 0u);
    EXPECT_GT(second.stats.sharedCacheHits, 0u);
    EXPECT_GE(second.stats.sharedCacheHits,
              first.stats.sharedCacheHits);
    // Per-query tallies partition the directory-wide counters.
    EXPECT_EQ(first.stats.sharedCacheProbes
                  + second.stats.sharedCacheProbes,
              context.crossQueryProbes());
    EXPECT_EQ(first.stats.sharedCacheHits
                  + second.stats.sharedCacheHits,
              context.crossQueryHits());

    // clearCaches() empties the directory for a cold restart.
    context.clearCaches();
    EXPECT_EQ(context.crossQueryProbes(), 0u);
    EXPECT_EQ(context.crossQueryHits(), 0u);
    EXPECT_EQ(context.sharedTotalBytes(), 0u);
}

TEST(QueryService, AbsorbsEveryQuerysFabricTraffic)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    core::QueryService service(context);
    for (const Pattern &p : workloadPatterns())
        service.submit(compileAutomine(p, {}));
    service.wait();

    // The context's ledger is the sum of every session's fabric;
    // solo runs of the same queries reproduce it exactly.
    std::uint64_t expected_bytes = 0;
    for (const Pattern &p : workloadPatterns()) {
        core::GraphContext solo_context(serviceGraph(),
                                        serviceSetup());
        core::Engine solo(solo_context);
        solo.run(compileAutomine(p, {}));
        expected_bytes += solo.fabric().totalBytes();
    }
    EXPECT_GT(expected_bytes, 0u);
    EXPECT_EQ(context.sharedTotalBytes(), expected_bytes);
}

TEST(QueryService, TraceSinkObservesTheQuerysStream)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    core::QueryService service(context);

    sim::CountingTraceSink sink;
    const auto plan = compileAutomine(Pattern::triangle(), {});
    const std::size_t id = service.submit(plan, {}, &sink);
    service.wait();

    const core::QueryResult &query = service.result(id);
    EXPECT_GT(sink.total(), 0u);
    for (std::size_t e = 0; e < sim::kNumPhaseEvents; ++e)
        EXPECT_EQ(sink.count(static_cast<sim::PhaseEvent>(e)),
                  query.traceCounts[e])
            << sim::phaseEventName(static_cast<sim::PhaseEvent>(e));
}

TEST(QueryService, DestructorDrainsPendingQueries)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    std::uint64_t absorbed = 0;
    {
        core::ServiceOptions options;
        options.maxInFlight = 1;
        core::QueryService service(context, options);
        for (int i = 0; i < 6; ++i)
            service.submit(compileAutomine(Pattern::triangle(), {}));
        // No wait(): destruction must run everything queued.
    }
    absorbed = context.sharedTotalBytes();
    EXPECT_GT(absorbed, 0u);
}

TEST(QueryService, PerQueryTunablesAreHonored)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    core::QueryService service(context);

    // Two sessions of the same plan with different chunk budgets
    // model different executions — the session half of the config
    // is genuinely per-query.
    core::SessionConfig coarse;
    coarse.chunkBytes = 1 << 20;
    core::SessionConfig fine;
    fine.chunkBytes = 2 << 10;
    const auto plan = compileAutomine(Pattern::clique(4), {});
    const std::size_t a = service.submit(plan, coarse);
    const std::size_t b = service.submit(plan, fine);
    service.wait();

    EXPECT_EQ(service.result(a).count, service.result(b).count);
    EXPECT_NE(service.result(a).modeledJson,
              service.result(b).modeledJson);
}

} // namespace
} // namespace khuzdul
