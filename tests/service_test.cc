/**
 * @file
 * QueryService tests: admission control (bounded in-flight, FIFO
 * admission order), per-query results matching a solo engine run
 * bit-for-bit, cross-query shared-cache accounting, trace sink
 * wiring, and the reset-vs-clear cache contract on GraphContext.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.hh"
#include "core/service/service.hh"
#include "graph/generators.hh"
#include "pattern/planner.hh"
#include "sim/trace.hh"

namespace khuzdul
{
namespace
{

const Graph &
serviceGraph()
{
    static const Graph g = gen::rmat(300, 2200, 0.55, 0.2, 0.2, 77);
    return g;
}

core::GraphSetup
serviceSetup()
{
    core::GraphSetup setup;
    setup.cluster = sim::ClusterConfig::paperDefault(4);
    setup.cacheDegreeThreshold = 8;
    return setup;
}

std::vector<Pattern>
workloadPatterns()
{
    return {Pattern::triangle(), Pattern::clique(4),
            Pattern::cycleOf(4), Pattern::diamond()};
}

TEST(QueryService, CompletesEveryQueryWithFifoAdmission)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    core::ServiceOptions options;
    options.maxInFlight = 2;
    core::QueryService service(context, options);

    const auto patterns = workloadPatterns();
    std::vector<std::size_t> ids;
    for (int round = 0; round < 3; ++round)
        for (const Pattern &p : patterns)
            ids.push_back(service.submit(compileAutomine(p, {})));
    service.wait();

    EXPECT_EQ(service.submitted(), ids.size());
    EXPECT_EQ(service.completed(), ids.size());
    // Admission control: never more than the bound in flight.
    EXPECT_GE(service.peakInFlight(), 1u);
    EXPECT_LE(service.peakInFlight(), options.maxInFlight);
    for (const std::size_t id : ids) {
        EXPECT_TRUE(service.finished(id));
        const core::QueryResult &query = service.result(id);
        EXPECT_FALSE(query.failed) << query.error;
        // FIFO: queries are admitted strictly in submission order.
        EXPECT_EQ(query.admissionIndex, query.id);
    }
}

TEST(QueryService, ResultsMatchSoloEngineBitForBit)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    core::QueryService service(context);

    const auto patterns = workloadPatterns();
    for (const Pattern &p : patterns)
        service.submit(compileAutomine(p, {}));
    service.wait();

    for (std::size_t id = 0; id < patterns.size(); ++id) {
        // The solo reference: a fresh session over its own context
        // with the same graph-half and session-half configuration.
        core::GraphContext solo_context(serviceGraph(),
                                        serviceSetup());
        core::Engine solo(solo_context);
        const Count expected =
            solo.run(compileAutomine(patterns[id], {}));

        const core::QueryResult &query = service.result(id);
        EXPECT_EQ(query.count, expected)
            << patterns[id].toString();
        EXPECT_EQ(query.modeledJson, solo.stats().toJson(false))
            << patterns[id].toString();
        ASSERT_EQ(query.traceCounts.size(), sim::kNumPhaseEvents);
        for (std::size_t e = 0; e < sim::kNumPhaseEvents; ++e)
            EXPECT_EQ(query.traceCounts[e],
                      solo.traceCounts().count(
                          static_cast<sim::PhaseEvent>(e)))
                << patterns[id].toString() << " "
                << sim::phaseEventName(
                       static_cast<sim::PhaseEvent>(e));
    }
}

TEST(QueryService, SharedCacheAccountingAccumulates)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    core::ServiceOptions options;
    // Serial admission makes the hit pattern easy to reason about:
    // the second identical query probes lists the first pulled in.
    options.maxInFlight = 1;
    core::QueryService service(context, options);

    const auto plan = compileAutomine(Pattern::clique(4), {});
    service.submit(plan);
    service.submit(plan);
    service.wait();

    const auto &first = service.result(0);
    const auto &second = service.result(1);
    // Modeled results are identical — sharing is host-side only.
    EXPECT_EQ(first.count, second.count);
    EXPECT_EQ(first.modeledJson, second.modeledJson);

    // The directory was probed, and the re-run query hit it.
    EXPECT_GT(context.crossQueryProbes(), 0u);
    EXPECT_GT(second.stats.sharedCacheHits, 0u);
    EXPECT_GE(second.stats.sharedCacheHits,
              first.stats.sharedCacheHits);
    // Per-query tallies partition the directory-wide counters.
    EXPECT_EQ(first.stats.sharedCacheProbes
                  + second.stats.sharedCacheProbes,
              context.crossQueryProbes());
    EXPECT_EQ(first.stats.sharedCacheHits
                  + second.stats.sharedCacheHits,
              context.crossQueryHits());

    // clearCaches() empties the directory for a cold restart.
    context.clearCaches();
    EXPECT_EQ(context.crossQueryProbes(), 0u);
    EXPECT_EQ(context.crossQueryHits(), 0u);
    EXPECT_EQ(context.sharedTotalBytes(), 0u);
}

TEST(QueryService, AbsorbsEveryQuerysFabricTraffic)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    core::QueryService service(context);
    for (const Pattern &p : workloadPatterns())
        service.submit(compileAutomine(p, {}));
    service.wait();

    // The context's ledger is the sum of every session's fabric;
    // solo runs of the same queries reproduce it exactly.
    std::uint64_t expected_bytes = 0;
    for (const Pattern &p : workloadPatterns()) {
        core::GraphContext solo_context(serviceGraph(),
                                        serviceSetup());
        core::Engine solo(solo_context);
        solo.run(compileAutomine(p, {}));
        expected_bytes += solo.fabric().totalBytes();
    }
    EXPECT_GT(expected_bytes, 0u);
    EXPECT_EQ(context.sharedTotalBytes(), expected_bytes);
}

TEST(QueryService, TraceSinkObservesTheQuerysStream)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    core::QueryService service(context);

    sim::CountingTraceSink sink;
    const auto plan = compileAutomine(Pattern::triangle(), {});
    const std::size_t id = service.submit(plan, {}, &sink);
    service.wait();

    const core::QueryResult &query = service.result(id);
    EXPECT_GT(sink.total(), 0u);
    for (std::size_t e = 0; e < sim::kNumPhaseEvents; ++e)
        EXPECT_EQ(sink.count(static_cast<sim::PhaseEvent>(e)),
                  query.traceCounts[e])
            << sim::phaseEventName(static_cast<sim::PhaseEvent>(e));
}

TEST(QueryService, DestructorDrainsPendingQueries)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    std::uint64_t absorbed = 0;
    {
        core::ServiceOptions options;
        options.maxInFlight = 1;
        core::QueryService service(context, options);
        for (int i = 0; i < 6; ++i)
            service.submit(compileAutomine(Pattern::triangle(), {}));
        // No wait(): destruction must run everything queued.
    }
    absorbed = context.sharedTotalBytes();
    EXPECT_GT(absorbed, 0u);
}

TEST(QueryService, PerQueryTunablesAreHonored)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    core::QueryService service(context);

    // Two sessions of the same plan with different chunk budgets
    // model different executions — the session half of the config
    // is genuinely per-query.
    core::SessionConfig coarse;
    coarse.chunkBytes = 1 << 20;
    core::SessionConfig fine;
    fine.chunkBytes = 2 << 10;
    const auto plan = compileAutomine(Pattern::clique(4), {});
    const std::size_t a = service.submit(plan, coarse);
    const std::size_t b = service.submit(plan, fine);
    service.wait();

    EXPECT_EQ(service.result(a).count, service.result(b).count);
    EXPECT_NE(service.result(a).modeledJson,
              service.result(b).modeledJson);
}

// ----------------------------------------------------------------
// Query-level resilience (DESIGN.md §9): deadlines, bounded retry,
// cooperative cancellation.
// ----------------------------------------------------------------

TEST(QueryResilience, DeadlineSurfacesAsTypedFailure)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    core::QueryService service(context);

    core::SessionConfig doomed;
    doomed.deadlineNs = 1.0; // below any real modeled run
    const auto plan = compileAutomine(Pattern::triangle(), {});
    const std::size_t id = service.submit(plan, doomed);
    service.wait();

    const core::QueryResult &query = service.result(id);
    EXPECT_TRUE(query.failed);
    EXPECT_NE(query.error.find("deadline"), std::string::npos)
        << query.error;
    EXPECT_EQ(query.retries, 0u);

    // A failed query must not poison the service: the next healthy
    // submission completes normally.
    const std::size_t ok = service.submit(plan);
    service.wait();
    EXPECT_FALSE(service.result(ok).failed);
    EXPECT_GT(service.result(ok).count, 0u);
}

TEST(QueryResilience, RetryBudgetIsSpentAndReported)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    core::QueryService service(context);

    // Deterministic failures fail every attempt identically, so a
    // retry budget of 2 means exactly 3 attempts then a typed
    // exhaustion error that preserves the last underlying message.
    core::SessionConfig doomed;
    doomed.deadlineNs = 1.0;
    doomed.maxQueryRetries = 2;
    const std::size_t id = service.submit(
        compileAutomine(Pattern::triangle(), {}), doomed);
    service.wait();

    const core::QueryResult &query = service.result(id);
    EXPECT_TRUE(query.failed);
    EXPECT_EQ(query.retries, 2u);
    EXPECT_NE(query.error.find(
                  "retry budget exhausted after 3 attempts"),
              std::string::npos)
        << query.error;
    EXPECT_NE(query.error.find("deadline"), std::string::npos)
        << query.error;
    // The surviving stats carry the full retry history: one
    // QueryRetried charge per prior failed attempt.
    EXPECT_EQ(query.stats.queryRetries, 2u);
    EXPECT_EQ(query.traceCounts[static_cast<std::size_t>(
                  sim::PhaseEvent::QueryRetried)],
              2u);
    EXPECT_NE(query.modeledJson.find("\"query_retries\": 2"),
              std::string::npos);
}

TEST(QueryResilience, SuccessfulRunIsIdenticalWithRetryBudget)
{
    // An unused retry budget must not perturb the modeled result:
    // the session only pays backoff for attempts that happened.
    core::GraphContext plain_context(serviceGraph(), serviceSetup());
    core::QueryService plain(plain_context);
    core::SessionConfig session;
    const auto plan = compileAutomine(Pattern::clique(4), {});
    const std::size_t a = plain.submit(plan, session);
    session.maxQueryRetries = 5;
    const std::size_t b = plain.submit(plan, session);
    plain.wait();

    EXPECT_FALSE(plain.result(a).failed);
    EXPECT_FALSE(plain.result(b).failed);
    EXPECT_EQ(plain.result(a).modeledJson, plain.result(b).modeledJson);
    EXPECT_EQ(plain.result(b).retries, 0u);
    EXPECT_EQ(plain.result(b).stats.queryRetries, 0u);
}

TEST(QueryResilience, CancelledQueryFailsTypedAndIsNeverRetried)
{
    core::GraphContext context(serviceGraph(), serviceSetup());
    core::ServiceOptions options;
    options.maxInFlight = 1;
    core::QueryService service(context, options);

    // Cancel before the dispatcher can pick the query up: the run
    // fails at its first chunk boundary.  A generous retry budget
    // must NOT be spent on it — cancellation is a user decision.
    core::SessionConfig session;
    session.maxQueryRetries = 3;
    const auto plan = compileAutomine(Pattern::clique(4), {});
    std::vector<std::size_t> ids;
    for (int i = 0; i < 4; ++i)
        ids.push_back(service.submit(plan, session));
    service.cancel(ids.back());
    service.wait();

    const core::QueryResult &cancelled = service.result(ids.back());
    EXPECT_TRUE(cancelled.failed);
    EXPECT_NE(cancelled.error.find("cancelled"), std::string::npos)
        << cancelled.error;
    EXPECT_EQ(cancelled.retries, 0u);
    EXPECT_EQ(cancelled.stats.queryRetries, 0u);
    // Queries ahead of it in the FIFO were untouched.
    for (std::size_t i = 0; i + 1 < ids.size(); ++i)
        EXPECT_FALSE(service.result(ids[i]).failed);
}

TEST(QueryResilience, CrashPlanQueriesMatchSoloEngineBitForBit)
{
    // The §10 solo-vs-service contract extends to crash plans: a
    // query whose session kills a unit and adopts its chunks is
    // bit-identical through the service.
    core::GraphContext context(serviceGraph(), serviceSetup());
    core::SessionConfig session;
    session.faults.add("crash:1:level=1:chunk=1");

    core::QueryService service(context);
    const auto plan = compileAutomine(Pattern::triangle(), {});
    const std::size_t id = service.submit(plan, session);
    service.wait();
    const core::QueryResult &query = service.result(id);
    ASSERT_FALSE(query.failed) << query.error;

    core::Engine solo(context, session);
    const Count solo_count = solo.run(plan);
    EXPECT_EQ(query.count, solo_count);
    EXPECT_EQ(query.modeledJson, solo.stats().toJson(false));
    EXPECT_GT(query.stats.totalUnitCrashes(), 0u);
}

} // namespace
} // namespace khuzdul
