/**
 * @file
 * Unit tests for the deterministic steal planner (DESIGN.md §11):
 * decision determinism, the makespan-never-increases invariant,
 * threshold gating, tie-breaking, the fault-free base pipeline the
 * planner prices migrations with, and the column wire format.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/circulant.hh"
#include "core/steal/steal.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"
#include "sim/cost_model.hh"
#include "sim/fabric.hh"
#include "sim/faults.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace khuzdul
{
namespace
{

/** Four single-socket nodes: unit u == node u. */
struct PlannerRig
{
    Graph g = gen::cycle(64);
    Partition partition{g, 4, 1};
    sim::CostModel cost;
    sim::Fabric fabric{partition, cost};
};

core::ChunkRecord
chunk(unsigned unit, double compute_ns, double exposed_ns,
      std::uint32_t embeddings = 100, int level = 1)
{
    core::ChunkRecord rec;
    rec.unit = unit;
    rec.level = level;
    rec.embeddings = embeddings;
    rec.columnBytes = core::columnWireBytes(embeddings, level);
    rec.computeNs = compute_ns;
    rec.exposedNs = exposed_ns;
    rec.commNs = exposed_ns * 1.2;
    // Fault-free prices a healthy thief would pay.
    rec.baseCommNs = rec.commNs * 0.8;
    rec.baseExposedNs = exposed_ns * 0.8;
    return rec;
}

TEST(ColumnWireBytes, CountsPrefixPathPlusFlagWord)
{
    // level+1 vertices per embedding plus one 32-bit word.
    EXPECT_EQ(core::columnWireBytes(10, 2),
              10u * (3 * sizeof(VertexId) + sizeof(std::uint32_t)));
    EXPECT_EQ(core::columnWireBytes(0, 5), 0u);
    EXPECT_EQ(core::columnWireBytes(1, 0),
              sizeof(VertexId) + sizeof(std::uint32_t));
}

TEST(StealPlanner, DrainsTheStragglerOntoIdlePeers)
{
    PlannerRig rig;
    const core::StealPlanner planner(rig.fabric, 1.0e5);

    std::vector<std::vector<core::ChunkRecord>> pending(4);
    for (int i = 0; i < 3; ++i)
        pending[3].push_back(chunk(3, 2.0e5, 5.0e4));
    std::vector<double> finish = {1.0e5, 1.0e5, 1.0e5, 2.0e6};

    const auto decisions = planner.plan(pending, finish);
    ASSERT_EQ(decisions.size(), 3u);
    for (const core::StealDecision &d : decisions) {
        EXPECT_EQ(d.victim, 3u);
        EXPECT_GT(d.transferNs, 0.0);
        EXPECT_EQ(d.chunk.columnBytes,
                  core::columnWireBytes(d.chunk.embeddings,
                                        d.chunk.level));
    }
    // The earliest-finish thief rotates as each one absorbs a chunk.
    EXPECT_EQ(decisions[0].thief, 0u);
    EXPECT_EQ(decisions[1].thief, 1u);
    EXPECT_EQ(decisions[2].thief, 2u);
}

TEST(StealPlanner, PlanIsDeterministic)
{
    PlannerRig rig;
    const core::StealPlanner planner(rig.fabric, 1.0e4);

    std::vector<std::vector<core::ChunkRecord>> pending(4);
    for (int i = 0; i < 4; ++i)
        pending[2].push_back(chunk(2, 1.0e5 + i * 7.0e3, 3.0e4));
    pending[1].push_back(chunk(1, 9.0e4, 1.0e4));
    const std::vector<double> finish = {5.0e4, 6.0e5, 1.4e6, 8.0e4};

    const auto a = planner.plan(pending, finish);
    const auto b = planner.plan(pending, finish);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].thief, b[i].thief) << i;
        EXPECT_EQ(a[i].victim, b[i].victim) << i;
        EXPECT_EQ(a[i].transferNs, b[i].transferNs) << i;
        EXPECT_EQ(a[i].chunk.computeNs, b[i].chunk.computeNs) << i;
    }
    EXPECT_FALSE(a.empty());
}

TEST(StealPlanner, MakespanNeverIncreases)
{
    PlannerRig rig;
    const core::StealPlanner planner(rig.fabric, 1.0e4);
    const double handshake = rig.cost.stealHandshakeNs;

    std::vector<std::vector<core::ChunkRecord>> pending(4);
    for (int i = 0; i < 5; ++i)
        pending[0].push_back(chunk(0, 1.5e5, 4.0e4, 200 + 50 * i));
    pending[2].push_back(chunk(2, 8.0e4, 2.0e4));
    std::vector<double> finish = {1.8e6, 2.0e5, 9.0e5, 1.0e5};
    const double before =
        *std::max_element(finish.begin(), finish.end());

    const auto decisions = planner.plan(pending, finish);
    ASSERT_FALSE(decisions.empty());
    // Replay the commit arithmetic the engine applies per decision.
    for (const core::StealDecision &d : decisions) {
        finish[d.thief] += handshake + d.transferNs
            + d.chunk.computeNs + d.chunk.baseExposedNs;
        finish[d.victim] +=
            handshake - (d.chunk.computeNs + d.chunk.exposedNs);
    }
    const double after =
        *std::max_element(finish.begin(), finish.end());
    EXPECT_LE(after, before);
}

TEST(StealPlanner, ThresholdGatesDonation)
{
    PlannerRig rig;
    std::vector<std::vector<core::ChunkRecord>> pending(4);
    for (int i = 0; i < 3; ++i)
        pending[3].push_back(chunk(3, 2.0e5, 5.0e4));
    const std::vector<double> finish = {1.0e5, 1.0e5, 1.0e5, 2.0e6};

    // The same scenario that yields three migrations above plans
    // nothing once the backlog threshold exceeds the ledger.
    const core::StealPlanner strict(rig.fabric, 1.0e9);
    EXPECT_TRUE(strict.plan(pending, finish).empty());
    const core::StealPlanner lax(rig.fabric, 1.0e5);
    EXPECT_EQ(lax.plan(pending, finish).size(), 3u);
}

TEST(StealPlanner, TieBreaksPickLowestUnitIndex)
{
    PlannerRig rig;
    const core::StealPlanner planner(rig.fabric, 1.0e4);

    // Units 1 and 2 carry identical backlogs; every unit finishes at
    // the same time.  The victim must be 1 (lowest of the richest)
    // and the thief 0 (lowest of the earliest finishers).
    std::vector<std::vector<core::ChunkRecord>> pending(4);
    pending[1].push_back(chunk(1, 3.0e5, 5.0e4));
    pending[2].push_back(chunk(2, 3.0e5, 5.0e4));
    const std::vector<double> finish = {4.0e5, 9.0e5, 9.0e5, 4.0e5};

    const auto decisions = planner.plan(pending, finish);
    ASSERT_FALSE(decisions.empty());
    EXPECT_EQ(decisions[0].victim, 1u);
    EXPECT_EQ(decisions[0].thief, 0u);
}

TEST(StealPlanner, UnprofitableMigrationsAreRejected)
{
    PlannerRig rig;
    const core::StealPlanner planner(rig.fabric, 1.0e3);

    // Shedding a chunk cheaper than the handshake can only hurt the
    // victim; the planner must leave it alone.
    std::vector<std::vector<core::ChunkRecord>> pending(4);
    pending[3].push_back(
        chunk(3, rig.cost.stealHandshakeNs * 0.4,
              rig.cost.stealHandshakeNs * 0.4));
    const std::vector<double> finish = {0, 0, 0, 1.0e6};
    EXPECT_TRUE(planner.plan(pending, finish).empty());
}

TEST(StealPlanner, FewerThanTwoUnitsPlanNothing)
{
    PlannerRig rig;
    const core::StealPlanner planner(rig.fabric, 0.0);
    std::vector<std::vector<core::ChunkRecord>> pending(1);
    pending[0].push_back(chunk(0, 1.0e6, 1.0e5));
    EXPECT_TRUE(planner.plan(pending, {5.0e6}).empty());
    EXPECT_TRUE(planner.plan({}, {}).empty());
}

TEST(BasePipeline, MatchesPipelineOnAHealthyFabric)
{
    // With no faults the successful attempt is the only attempt, so
    // the clean prices equal the charged prices exactly.
    const Graph g = gen::cycle(64);
    const Partition partition(g, 2, 1);
    const sim::CostModel cost;
    sim::Fabric fabric(partition, cost);
    sim::RunStats run;
    run.nodes.resize(2);

    core::CirculantScheduler sched(0, 2, 1);
    sched.begin(2);
    sched.noteRemote(0, 1, 1024);
    sched.noteRemote(1, 1, 2048);
    sched.issue(fabric, run, sim::nullTraceSink(), 0);
    sched.chargeWork(0, 500);
    sched.chargeWork(1, 700);

    const auto full = sched.pipeline(2, 1.0);
    const auto base = sched.basePipeline(2, 1.0);
    EXPECT_DOUBLE_EQ(base.computeNs, full.computeNs);
    EXPECT_DOUBLE_EQ(base.commNs, full.commNs);
    EXPECT_DOUBLE_EQ(base.exposedNs, full.exposedNs);
}

TEST(BasePipeline, ChargesCleanPricesUnderDegrade)
{
    // A degraded link inflates the charged transfer but not the
    // fault-free base price the steal planner hands a healthy thief.
    const Graph g = gen::cycle(64);
    const Partition partition(g, 2, 1);
    const sim::CostModel cost;
    sim::Fabric fabric(partition, cost);
    sim::NodeStats stats;
    std::vector<std::uint64_t> sent(2, 0);

    sim::FaultPlan plan;
    plan.add("degrade:*-*:factor=4:from=0");
    sim::FaultSession session(plan, 2);

    core::CirculantScheduler sched(0, 2, 1);
    sched.begin(1);
    sched.noteRemote(0, 1, 4096);
    ASSERT_TRUE(sched.issue(fabric, stats,
                            std::span<std::uint64_t>(sent),
                            sim::nullTraceSink(), 0, &session,
                            &cost));
    sched.chargeWork(0, 100);

    const auto full = sched.pipeline(1, 1.0);
    const auto base = sched.basePipeline(1, 1.0);
    const double clean = cost.transferNs(4096, 1);
    EXPECT_DOUBLE_EQ(base.commNs, clean);
    EXPECT_GT(full.commNs, base.commNs);
    EXPECT_DOUBLE_EQ(base.computeNs, full.computeNs);
    EXPECT_LE(base.exposedNs, full.exposedNs);
}

} // namespace
} // namespace khuzdul
