/**
 * @file
 * Unit tests of the work-stealing host thread pool: completion of
 * every task, reuse across runs, oversubscription (more tasks than
 * workers), deterministic exception surfacing, and the 0-means-all
 * thread-count resolution convention.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel/thread_pool.hh"

namespace khuzdul
{
namespace
{

TEST(ThreadPool, ExecutesEveryTaskExactlyOnce)
{
    core::ThreadPool pool(4);
    constexpr std::size_t kTasks = 128;
    std::vector<std::atomic<int>> hits(kTasks);
    pool.run(kTasks, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kTasks; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ReusableAcrossRuns)
{
    core::ThreadPool pool(3);
    std::vector<int> out(10, 0);
    for (int round = 1; round <= 4; ++round)
        pool.run(out.size(),
                 [&](std::size_t i) { out[i] = round; });
    for (const int v : out)
        EXPECT_EQ(v, 4);
    pool.run(0, [](std::size_t) { FAIL() << "no tasks to run"; });
}

TEST(ThreadPool, MoreWorkersThanTasks)
{
    core::ThreadPool pool(8);
    std::atomic<int> sum{0};
    pool.run(3, [&](std::size_t i) {
        sum += static_cast<int>(i) + 1;
    });
    EXPECT_EQ(sum.load(), 6);
}

TEST(ThreadPool, SingleWorkerCompletesEveryTask)
{
    // Execution order is deliberately unspecified (the owner pops
    // LIFO and may race the seeding loop); completeness is not.
    core::ThreadPool pool(1);
    std::vector<std::size_t> ran;
    pool.run(6, [&](std::size_t i) { ran.push_back(i); });
    std::sort(ran.begin(), ran.end());
    std::vector<std::size_t> expected(6);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(ran, expected);
}

TEST(ThreadPool, LowestIndexedExceptionWins)
{
    core::ThreadPool pool(4);
    const auto throw_from = [&](std::size_t task) {
        try {
            pool.run(64, [&](std::size_t i) {
                if (i >= task)
                    throw std::runtime_error(
                        "task " + std::to_string(i));
            });
        } catch (const std::runtime_error &e) {
            return std::string(e.what());
        }
        return std::string();
    };
    // Every task from 40 up throws; the surfaced error must be the
    // lowest index regardless of which worker hit it first.
    EXPECT_EQ(throw_from(40), "task 40");
    // The pool stays usable after a failed run.
    std::atomic<int> ran{0};
    pool.run(8, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, RunIsReentrantAcrossClientThreads)
{
    // The service layer dispatches several engine sessions onto one
    // shared pool concurrently: run() must be callable from many
    // client threads at once, and every client must see exactly its
    // own tasks complete.
    core::ThreadPool pool(4);
    constexpr std::size_t kClients = 6;
    constexpr std::size_t kTasks = 96;
    constexpr int kRounds = 3;
    std::vector<std::vector<int>> hits(
        kClients, std::vector<int>(kTasks, 0));
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c)
        clients.emplace_back([&hits, &pool, c] {
            for (int round = 0; round < kRounds; ++round)
                pool.run(kTasks,
                         [&hits, c](std::size_t i) { ++hits[c][i]; });
        });
    for (auto &client : clients)
        client.join();
    for (std::size_t c = 0; c < kClients; ++c)
        for (std::size_t i = 0; i < kTasks; ++i)
            EXPECT_EQ(hits[c][i], kRounds) << c << ":" << i;
}

TEST(ThreadPool, ConcurrentClientExceptionsStayIsolated)
{
    // One client's failing job must not poison a co-running job.
    core::ThreadPool pool(4);
    std::atomic<int> good{0};
    std::string thrown;
    std::thread bad([&pool, &thrown] {
        try {
            pool.run(32, [](std::size_t i) {
                if (i == 7)
                    throw std::runtime_error("task 7");
            });
        } catch (const std::runtime_error &e) {
            thrown = e.what();
        }
    });
    std::thread fine([&pool, &good] {
        for (int round = 0; round < 8; ++round)
            pool.run(32, [&good](std::size_t) { ++good; });
    });
    bad.join();
    fine.join();
    EXPECT_EQ(thrown, "task 7");
    EXPECT_EQ(good.load(), 8 * 32);
}

TEST(ThreadPool, ResolveThreadCount)
{
    EXPECT_EQ(core::ThreadPool::resolveThreadCount(1), 1u);
    EXPECT_EQ(core::ThreadPool::resolveThreadCount(7), 7u);
    EXPECT_GE(core::ThreadPool::resolveThreadCount(0), 1u);
}

} // namespace
} // namespace khuzdul
