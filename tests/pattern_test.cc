/**
 * @file
 * Unit tests for pattern machinery: pattern construction,
 * isomorphism, automorphism groups, canonical codes and pattern-set
 * generation.
 */

#include <gtest/gtest.h>

#include "pattern/generation.hh"
#include "pattern/isomorphism.hh"
#include "pattern/pattern.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace
{

TEST(Pattern, BasicConstruction)
{
    const Pattern p(3, {{0, 1}, {1, 2}});
    EXPECT_EQ(p.size(), 3);
    EXPECT_EQ(p.numEdges(), 2);
    EXPECT_TRUE(p.hasEdge(0, 1));
    EXPECT_TRUE(p.hasEdge(1, 0));
    EXPECT_FALSE(p.hasEdge(0, 2));
    EXPECT_EQ(p.degree(1), 2);
    EXPECT_TRUE(p.connected());
}

TEST(Pattern, ConnectivityDetection)
{
    Pattern p(4, {{0, 1}, {2, 3}});
    EXPECT_FALSE(p.connected());
    p.addEdge(1, 2);
    EXPECT_TRUE(p.connected());
    EXPECT_FALSE(Pattern(0).connected());
    EXPECT_TRUE(Pattern(1).connected());
}

TEST(Pattern, RejectsBadEdges)
{
    Pattern p(3);
    EXPECT_THROW(p.addEdge(0, 0), FatalError);
    EXPECT_THROW(p.addEdge(0, 3), FatalError);
    EXPECT_THROW(Pattern(9), FatalError);
}

TEST(Pattern, NamedConstructors)
{
    EXPECT_EQ(Pattern::triangle().numEdges(), 3);
    EXPECT_EQ(Pattern::clique(5).numEdges(), 10);
    EXPECT_EQ(Pattern::pathOf(4).numEdges(), 3);
    EXPECT_EQ(Pattern::cycleOf(5).numEdges(), 5);
    EXPECT_EQ(Pattern::starOf(5).numEdges(), 4);
    EXPECT_EQ(Pattern::tailedTriangle().numEdges(), 4);
    EXPECT_EQ(Pattern::diamond().numEdges(), 5);
}

TEST(Pattern, PermutedPreservesStructure)
{
    const Pattern p = Pattern::pathOf(3); // 0-1-2
    iso::Permutation perm{};
    perm[0] = 2;
    perm[1] = 0;
    perm[2] = 1;
    const Pattern q = p.permuted(perm);
    // Center (old 1) is now vertex 0.
    EXPECT_EQ(q.degree(0), 2);
    EXPECT_TRUE(q.hasEdge(0, 2));
    EXPECT_TRUE(q.hasEdge(0, 1));
    EXPECT_FALSE(q.hasEdge(1, 2));
}

TEST(Pattern, LabeledEquality)
{
    Pattern a(2, {{0, 1}});
    Pattern b(2, {{0, 1}});
    EXPECT_TRUE(a == b);
    a.setLabel(0, 1);
    EXPECT_FALSE(a == b);
    b.setLabel(0, 1);
    EXPECT_TRUE(a == b);
}

TEST(Isomorphism, DetectsIsomorphicPaths)
{
    const Pattern a(4, {{0, 1}, {1, 2}, {2, 3}});
    const Pattern b(4, {{2, 0}, {0, 3}, {3, 1}});
    EXPECT_TRUE(iso::isomorphic(a, b));
}

TEST(Isomorphism, DistinguishesPathFromStar)
{
    EXPECT_FALSE(iso::isomorphic(Pattern::pathOf(4), Pattern::starOf(4)));
    EXPECT_FALSE(iso::isomorphic(Pattern::cycleOf(4),
                                 Pattern::pathOf(4)));
}

TEST(Isomorphism, LabelsMatter)
{
    Pattern a(2, {{0, 1}});
    Pattern b(2, {{0, 1}});
    a.setLabel(0, 1);
    a.setLabel(1, 2);
    b.setLabel(0, 2);
    b.setLabel(1, 1);
    EXPECT_TRUE(iso::isomorphic(a, b)); // swap is an isomorphism
    b.setLabel(1, 2);
    b.setLabel(0, 2);
    EXPECT_FALSE(iso::isomorphic(a, b));
}

TEST(Isomorphism, AutomorphismGroupSizes)
{
    EXPECT_EQ(iso::automorphisms(Pattern::triangle()).size(), 6u);
    EXPECT_EQ(iso::automorphisms(Pattern::clique(4)).size(), 24u);
    EXPECT_EQ(iso::automorphisms(Pattern::clique(5)).size(), 120u);
    EXPECT_EQ(iso::automorphisms(Pattern::pathOf(4)).size(), 2u);
    EXPECT_EQ(iso::automorphisms(Pattern::cycleOf(4)).size(), 8u);
    EXPECT_EQ(iso::automorphisms(Pattern::cycleOf(5)).size(), 10u);
    EXPECT_EQ(iso::automorphisms(Pattern::starOf(5)).size(), 24u);
    EXPECT_EQ(iso::automorphisms(Pattern::tailedTriangle()).size(), 2u);
    EXPECT_EQ(iso::automorphisms(Pattern::diamond()).size(), 4u);
}

TEST(Isomorphism, LabeledAutomorphisms)
{
    Pattern p = Pattern::triangle();
    EXPECT_EQ(iso::automorphisms(p).size(), 6u);
    p.setLabel(0, 1); // one distinguished vertex: only the swap of
    p.setLabel(1, 0); // the two label-0 vertices survives
    p.setLabel(2, 0);
    EXPECT_EQ(iso::automorphisms(p).size(), 2u);
}

TEST(Isomorphism, CanonicalCodeEqualIffIsomorphic)
{
    const Pattern a(4, {{0, 1}, {1, 2}, {2, 3}});
    const Pattern b(4, {{2, 0}, {0, 3}, {3, 1}});
    EXPECT_EQ(iso::canonicalCode(a), iso::canonicalCode(b));
    EXPECT_NE(iso::canonicalCode(a),
              iso::canonicalCode(Pattern::starOf(4)));
}

TEST(Isomorphism, CanonicalFormIsIsomorphicAndIdempotent)
{
    const Pattern p(5, {{0, 2}, {2, 4}, {4, 1}, {1, 3}});
    const Pattern canon = iso::canonicalForm(p);
    EXPECT_TRUE(iso::isomorphic(p, canon));
    EXPECT_TRUE(canon == iso::canonicalForm(canon));
}

TEST(Generation, ConnectedPatternCounts)
{
    // Known counts of connected graphs on n unlabeled vertices.
    EXPECT_EQ(gen::connectedPatterns(1).size(), 1u);
    EXPECT_EQ(gen::connectedPatterns(2).size(), 1u);
    EXPECT_EQ(gen::connectedPatterns(3).size(), 2u);
    EXPECT_EQ(gen::connectedPatterns(4).size(), 6u);
    EXPECT_EQ(gen::connectedPatterns(5).size(), 21u);
}

TEST(Generation, GeneratedPatternsAreConnectedAndDistinct)
{
    const auto patterns = gen::connectedPatterns(4);
    for (std::size_t i = 0; i < patterns.size(); ++i) {
        EXPECT_TRUE(patterns[i].connected());
        for (std::size_t j = i + 1; j < patterns.size(); ++j)
            EXPECT_FALSE(iso::isomorphic(patterns[i], patterns[j]));
    }
}

TEST(Generation, UpToEdgesMatchesKnownCounts)
{
    // Connected graphs with at most 3 edges: edge; path3; triangle,
    // path4, star4 -> 5 total.
    EXPECT_EQ(gen::connectedPatternsUpToEdges(1).size(), 1u);
    EXPECT_EQ(gen::connectedPatternsUpToEdges(2).size(), 2u);
    EXPECT_EQ(gen::connectedPatternsUpToEdges(3).size(), 5u);
}

TEST(Generation, LabelingsOfAnEdge)
{
    // Unordered label pairs from an alphabet of 3: C(3,2)+3 = 6.
    const auto labeled = gen::labelings(Pattern::pathOf(2), 3);
    EXPECT_EQ(labeled.size(), 6u);
}

TEST(Generation, LabelingsOfTriangle)
{
    // Multisets of size 3 from 2 labels: 4.
    const auto labeled = gen::labelings(Pattern::triangle(), 2);
    EXPECT_EQ(labeled.size(), 4u);
}

} // namespace
} // namespace khuzdul
