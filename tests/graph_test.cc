/**
 * @file
 * Unit tests for the graph substrate: builder preprocessing, CSR
 * invariants, generators, serialization, orientation and the 1-D
 * hash partitioner.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "graph/builder.hh"
#include "graph/datasets.hh"
#include "graph/generators.hh"
#include "graph/graph.hh"
#include "graph/io.hh"
#include "graph/orientation.hh"
#include "graph/partition.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace
{

void
expectCsrInvariants(const Graph &g)
{
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        const auto list = g.neighbors(v);
        for (std::size_t i = 0; i < list.size(); ++i) {
            EXPECT_NE(list[i], v) << "self loop at " << v;
            if (i > 0) {
                EXPECT_LT(list[i - 1], list[i])
                    << "unsorted/duplicate at " << v;
            }
        }
        if (!g.directed()) {
            for (const VertexId u : list)
                EXPECT_TRUE(g.hasEdge(u, v)) << "asymmetric " << u;
        }
    }
}

TEST(Builder, RemovesSelfLoopsAndDuplicates)
{
    GraphBuilder builder(4);
    builder.addEdge(0, 1);
    builder.addEdge(1, 0); // duplicate, reversed
    builder.addEdge(0, 1); // duplicate
    builder.addEdge(2, 2); // self loop
    builder.addEdge(2, 3);
    const Graph g = builder.build();
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(3, 2));
    EXPECT_FALSE(g.hasEdge(2, 2));
    expectCsrInvariants(g);
}

TEST(Builder, RejectsOutOfRangeEndpoint)
{
    GraphBuilder builder(3);
    EXPECT_THROW(builder.addEdge(0, 3), FatalError);
}

TEST(Graph, DegreeAndMaxDegree)
{
    const Graph g = gen::star(5);
    EXPECT_EQ(g.degree(0), 4u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.maxDegree(), 4u);
    EXPECT_EQ(g.numEdges(), 4u);
}

TEST(Graph, LabelsRoundTrip)
{
    Graph g = gen::cycle(4);
    EXPECT_FALSE(g.labeled());
    g.setLabels({0, 1, 2, 1});
    EXPECT_TRUE(g.labeled());
    EXPECT_EQ(g.label(2), 2u);
    EXPECT_EQ(g.numLabels(), 3u);
}

TEST(Graph, LabelSizeMismatchRejected)
{
    Graph g = gen::cycle(4);
    EXPECT_THROW(g.setLabels({0, 1}), FatalError);
}

TEST(Generators, CompleteGraph)
{
    const Graph g = gen::complete(6);
    EXPECT_EQ(g.numEdges(), 15u);
    expectCsrInvariants(g);
}

TEST(Generators, CycleAndPathAndGrid)
{
    EXPECT_EQ(gen::cycle(7).numEdges(), 7u);
    EXPECT_EQ(gen::path(7).numEdges(), 6u);
    const Graph g = gen::grid(3, 4);
    EXPECT_EQ(g.numVertices(), 12u);
    EXPECT_EQ(g.numEdges(), 3u * 3 + 2u * 4);
    expectCsrInvariants(g);
}

TEST(Generators, RmatIsDeterministicAndClean)
{
    const Graph a = gen::rmat(1024, 4096, 0.57, 0.19, 0.19, 99);
    const Graph b = gen::rmat(1024, 4096, 0.57, 0.19, 0.19, 99);
    EXPECT_EQ(a.numEdges(), b.numEdges());
    EXPECT_GT(a.numEdges(), 1000u);
    expectCsrInvariants(a);
}

TEST(Generators, RmatSkewGrowsWithA)
{
    const Graph skewed = gen::rmat(2048, 16384, 0.65, 0.15, 0.15, 7);
    const Graph flat = gen::erdosRenyi(2048, 16384, 7);
    const double skew_ratio = static_cast<double>(skewed.maxDegree())
        / (2.0 * skewed.numEdges() / skewed.numVertices());
    const double flat_ratio = static_cast<double>(flat.maxDegree())
        / (2.0 * flat.numEdges() / flat.numVertices());
    EXPECT_GT(skew_ratio, 4 * flat_ratio);
}

TEST(Generators, CitationIsLightTailed)
{
    const Graph g = gen::citation(4096, 6, 5);
    const double avg = 2.0 * g.numEdges() / g.numVertices();
    EXPECT_LT(static_cast<double>(g.maxDegree()), 12 * avg);
    expectCsrInvariants(g);
}

TEST(Generators, SmallWorldIsClusteredAndLightTailed)
{
    const Graph g = gen::smallWorld(4000, 5, 0.2, 6);
    // Light tail: max degree within a few x of the average.
    const double avg = 2.0 * g.numEdges() / g.numVertices();
    EXPECT_LT(static_cast<double>(g.maxDegree()), 4 * avg);
    // High clustering: far more triangles than an Erdos-Renyi graph
    // of the same size.
    const Graph er = gen::erdosRenyi(4000, g.numEdges(), 6);
    Count sw_triangles = 0;
    Count er_triangles = 0;
    for (VertexId v = 0; v < 4000; ++v) {
        for (const VertexId a : g.neighbors(v))
            for (const VertexId b : g.neighbors(v))
                if (a < b && g.hasEdge(a, b) && v < a)
                    ++sw_triangles;
        for (const VertexId a : er.neighbors(v))
            for (const VertexId b : er.neighbors(v))
                if (a < b && er.hasEdge(a, b) && v < a)
                    ++er_triangles;
    }
    EXPECT_GT(sw_triangles, 10 * er_triangles);
}

TEST(Generators, SmallWorldValidatesArguments)
{
    EXPECT_THROW(gen::smallWorld(8, 4, 0.1, 1), FatalError);
    EXPECT_THROW(gen::smallWorld(100, 4, 1.5, 1), FatalError);
}

TEST(Generators, RandomLabels)
{
    Graph g = gen::erdosRenyi(500, 2000, 3);
    gen::randomizeLabels(g, 4, 11);
    EXPECT_TRUE(g.labeled());
    EXPECT_LE(g.numLabels(), 4u);
    std::array<int, 4> histogram{};
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ++histogram[g.label(v)];
    for (const int count : histogram)
        EXPECT_GT(count, 50);
}

TEST(Io, EdgeListRoundTrip)
{
    const Graph g = gen::rmat(256, 1024, 0.5, 0.2, 0.2, 1);
    std::stringstream ss;
    io::writeEdgeList(g, ss);
    const Graph back = io::readEdgeList(ss);
    EXPECT_EQ(back.numEdges(), g.numEdges());
    // Trailing isolated vertices are not representable in an edge
    // list, so the round-tripped graph may be shorter.
    ASSERT_LE(back.numVertices(), g.numVertices());
    for (VertexId v = 0; v < back.numVertices(); ++v)
        EXPECT_EQ(back.degree(v), g.degree(v));
    for (VertexId v = back.numVertices(); v < g.numVertices(); ++v)
        EXPECT_EQ(g.degree(v), 0u);
}

TEST(Io, EdgeListSkipsComments)
{
    std::stringstream ss("# comment\n% other\n0 1\n1 2\n");
    const Graph g = io::readEdgeList(ss);
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_EQ(g.numEdges(), 2u);
}

TEST(Io, MalformedLineRejected)
{
    std::stringstream ss("0 x\n");
    EXPECT_THROW(io::readEdgeList(ss), FatalError);
}

TEST(Io, BinaryRoundTripWithLabels)
{
    Graph g = gen::rmat(128, 512, 0.5, 0.2, 0.2, 2);
    gen::randomizeLabels(g, 3, 4);
    std::stringstream ss;
    io::writeBinary(g, ss);
    const Graph back = io::readBinary(ss);
    EXPECT_EQ(back.numEdges(), g.numEdges());
    EXPECT_TRUE(back.labeled());
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(back.degree(v), g.degree(v));
        EXPECT_EQ(back.label(v), g.label(v));
    }
}

TEST(Io, BadMagicRejected)
{
    std::stringstream ss("not a graph at all, truly");
    EXPECT_THROW(io::readBinary(ss), FatalError);
}

TEST(Orientation, ProducesDagWithHalfTheArcs)
{
    const Graph g = gen::rmat(512, 2048, 0.57, 0.19, 0.19, 3);
    const Graph dag = graph::orient(g);
    EXPECT_TRUE(dag.directed());
    EXPECT_EQ(dag.numArcs() * 2, g.numArcs());
    // Each undirected edge appears in exactly one direction.
    for (VertexId v = 0; v < g.numVertices(); ++v)
        for (const VertexId u : dag.neighbors(v))
            EXPECT_FALSE(dag.hasEdge(u, v));
}

TEST(Orientation, OrientsTowardHigherDegree)
{
    const Graph g = gen::star(5);
    const Graph dag = graph::orient(g);
    // Leaves (degree 1) point at the hub (degree 4).
    EXPECT_EQ(dag.degree(0), 0u);
    for (VertexId v = 1; v < 5; ++v)
        EXPECT_TRUE(dag.hasEdge(v, 0));
}

TEST(Partition, CoversAllVerticesOnce)
{
    const Graph g = gen::rmat(1000, 4000, 0.5, 0.2, 0.2, 9);
    const Partition part(g, 4, 2);
    EXPECT_EQ(part.numUnits(), 8u);
    std::vector<int> seen(g.numVertices(), 0);
    for (unsigned u = 0; u < part.numUnits(); ++u)
        for (const VertexId v : part.ownedVertices(u)) {
            EXPECT_EQ(part.ownerUnit(v), u);
            ++seen[v];
        }
    for (const int count : seen)
        EXPECT_EQ(count, 1);
}

TEST(Partition, OwnerNodeConsistentWithUnit)
{
    const Graph g = gen::erdosRenyi(512, 2048, 1);
    const Partition part(g, 3, 2);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(part.ownerNode(v), part.ownerUnit(v) / 2);
        EXPECT_EQ(part.ownerSocket(v), part.ownerUnit(v) % 2);
        EXPECT_LT(part.ownerNode(v), 3u);
    }
}

TEST(Partition, RoughlyBalanced)
{
    const Graph g = gen::erdosRenyi(8000, 32000, 2);
    const Partition part(g, 8, 1);
    for (NodeId n = 0; n < 8; ++n) {
        const double share = static_cast<double>(part.nodeVertexCount(n))
            / g.numVertices();
        EXPECT_NEAR(share, 1.0 / 8, 0.03);
    }
}

TEST(Partition, ResidentBytesSumsOwnedLists)
{
    const Graph g = gen::cycle(10);
    const Partition part(g, 2, 1);
    const std::uint64_t total = part.nodeResidentBytes(0)
        + part.nodeResidentBytes(1);
    // Every vertex has degree 2: 8 bytes of payload + 8 of metadata.
    EXPECT_EQ(total, 10u * (2 * sizeof(VertexId) + sizeof(EdgeId)));
}

TEST(Datasets, KnownNamesGenerate)
{
    for (const char *name : {"mc", "pt", "lj"}) {
        const auto &dataset = datasets::byName(name);
        EXPECT_EQ(dataset.abbr, name);
        EXPECT_GT(dataset.graph.numEdges(), 1000u);
    }
}

TEST(Datasets, MemoizesGeneration)
{
    const auto &a = datasets::byName("mc");
    const auto &b = datasets::byName("mc");
    EXPECT_EQ(&a, &b);
}

TEST(Datasets, UnknownNameRejected)
{
    EXPECT_THROW(datasets::byName("nope"), FatalError);
}

TEST(Datasets, PatentsStandInIsLessSkewedThanLiveJournal)
{
    const auto &pt = datasets::byName("pt");
    const auto &lj = datasets::byName("lj");
    const double pt_skew = static_cast<double>(pt.graph.maxDegree())
        / (2.0 * pt.graph.numEdges() / pt.graph.numVertices());
    const double lj_skew = static_cast<double>(lj.graph.maxDegree())
        / (2.0 * lj.graph.numEdges() / lj.graph.numVertices());
    EXPECT_LT(pt_skew * 5, lj_skew);
}

} // namespace
} // namespace khuzdul
