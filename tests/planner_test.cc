/**
 * @file
 * Plan-compilation correctness: symmetry-breaking restrictions, the
 * count divisor, IEP terminal blocks, vertical-sharing annotations
 * and the cost model.  The key properties are verified against the
 * brute-force oracle over every connected pattern of size 3-5 and
 * every valid matching order.
 */

#include <gtest/gtest.h>

#include <bit>

#include "core/plan_runner.hh"
#include "graph/generators.hh"
#include "pattern/bruteforce.hh"
#include "pattern/generation.hh"
#include "pattern/isomorphism.hh"
#include "pattern/planner.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace
{

Graph
testGraph()
{
    // Small but structurally rich: skewed, with many cliques.
    return gen::rmat(200, 1400, 0.55, 0.2, 0.2, 1234);
}

std::vector<std::vector<int>>
allValidOrders(const Pattern &p)
{
    std::vector<int> order(p.size());
    for (int i = 0; i < p.size(); ++i)
        order[i] = i;
    std::vector<std::vector<int>> result;
    std::sort(order.begin(), order.end());
    do {
        std::uint32_t seen = 1u << order[0];
        bool ok = true;
        for (int i = 1; i < p.size() && ok; ++i) {
            if ((p.adjacency(order[i]) & seen) == 0)
                ok = false;
            seen |= 1u << order[i];
        }
        if (ok)
            result.push_back(order);
    } while (std::next_permutation(order.begin(), order.end()));
    return result;
}

TEST(Planner, SetPartitionsBellNumbers)
{
    EXPECT_EQ(setPartitions(1).size(), 1u);
    EXPECT_EQ(setPartitions(2).size(), 2u);
    EXPECT_EQ(setPartitions(3).size(), 5u);
    EXPECT_EQ(setPartitions(4).size(), 15u);
    EXPECT_EQ(setPartitions(5).size(), 52u);
}

TEST(Planner, TriangleRestrictionsAreTotalOrder)
{
    const auto plan = compileAutomine(Pattern::triangle(), {});
    EXPECT_EQ(plan.countDivisor, 1);
    EXPECT_EQ(plan.levels[1].greaterThanMask, 0b001u);
    EXPECT_EQ(plan.levels[2].greaterThanMask, 0b011u);
}

TEST(Planner, WedgeRestrictionBreaksLeafSwap)
{
    // Path3 matched center-first: the two leaves are symmetric.
    const auto plan = buildPlan(Pattern::pathOf(3), {1, 0, 2}, {});
    EXPECT_EQ(plan.countDivisor, 1);
    EXPECT_EQ(plan.levels[1].greaterThanMask, 0u);
    EXPECT_EQ(plan.levels[2].greaterThanMask, 0b010u);
}

TEST(Planner, InvalidOrdersRejected)
{
    EXPECT_THROW(buildPlan(Pattern::pathOf(3), {0, 2, 1}, {}),
                 FatalError); // prefix {0,2} disconnected
    EXPECT_THROW(buildPlan(Pattern::triangle(), {0, 0, 1}, {}),
                 FatalError); // not a permutation
    EXPECT_THROW(buildPlan(Pattern::triangle(), {0, 1, 2}, {}, 3),
                 FatalError); // IEP cannot swallow the whole pattern
    PlanOptions induced;
    induced.induced = true;
    EXPECT_THROW(buildPlan(Pattern::triangle(), {0, 1, 2}, induced, 1),
                 FatalError); // IEP is incompatible with induced
}

TEST(Planner, IepSuffixMustBeIndependent)
{
    // Triangle suffix of 2 is adjacent -> rejected.
    EXPECT_THROW(buildPlan(Pattern::triangle(), {0, 1, 2}, {}, 2),
                 FatalError);
    // Star suffix of 2 leaves is fine.
    EXPECT_NO_THROW(buildPlan(Pattern::starOf(3), {0, 1, 2}, {}, 2));
}

TEST(Planner, ActiveMasksAreAntiMonotone)
{
    for (const auto &p : gen::connectedPatterns(5)) {
        const auto plan = compileAutomine(p, {});
        for (std::size_t i = 1; i < plan.levels.size(); ++i) {
            const PositionMask prev = plan.levels[i - 1].activeMask
                | (1u << i);
            EXPECT_EQ(plan.levels[i].activeMask & ~prev, 0u)
                << "activeness resurrected at level " << i << " of "
                << p.toString();
        }
    }
}

TEST(Planner, CliquePlansAnnotateVerticalSharing)
{
    const auto plan = compileAutomine(Pattern::clique(5), {});
    // 4- and 5-clique levels extend the parent's intersection.
    EXPECT_TRUE(plan.levels[3].reuseParent);
    EXPECT_TRUE(plan.levels[2].storeResult);
    EXPECT_EQ(std::popcount(plan.levels[3].extraDepMask), 1);
}

TEST(Planner, GraphPiPicksIepForClique)
{
    GraphProfile profile{10000.0, 20.0};
    const auto plan = compileGraphPi(Pattern::clique(4), profile, {});
    EXPECT_TRUE(plan.hasIep);
    EXPECT_EQ(plan.iep.suffixSize, 1);
}

TEST(Planner, GraphPiUsesLargerIepOnSparsePatterns)
{
    GraphProfile profile{10000.0, 20.0};
    const auto plan = compileGraphPi(Pattern::starOf(4), profile, {});
    EXPECT_TRUE(plan.hasIep);
    EXPECT_GE(plan.iep.suffixSize, 2);
}

/**
 * The central correctness property: for every connected pattern of
 * size 3..5 and every valid matching order, the restricted plan
 * counts exactly the brute-force embedding count.
 */
TEST(PlannerProperty, AllOrdersAllPatternsMatchBruteForce)
{
    const Graph g = gen::rmat(60, 240, 0.5, 0.2, 0.2, 77);
    for (int size = 3; size <= 5; ++size) {
        for (const auto &p : gen::connectedPatterns(size)) {
            const Count expected = brute::countEmbeddings(g, p, false);
            for (const auto &order : allValidOrders(p)) {
                const auto plan = buildPlan(p, order, {});
                EXPECT_EQ(core::countWithPlan(g, plan), expected)
                    << p.toString() << " order "
                    << testing::PrintToString(order);
            }
        }
    }
}

/** IEP counting agrees with materialized counting on every order
 *  and every admissible suffix size. */
TEST(PlannerProperty, IepMatchesBruteForce)
{
    const Graph g = gen::rmat(60, 300, 0.55, 0.2, 0.2, 91);
    for (int size = 3; size <= 5; ++size) {
        for (const auto &p : gen::connectedPatterns(size)) {
            const Count expected = brute::countEmbeddings(g, p, false);
            for (const auto &order : allValidOrders(p)) {
                for (int suffix = 1; suffix < size; ++suffix) {
                    bool independent = true;
                    for (int a = size - suffix; a < size; ++a)
                        for (int b = a + 1; b < size; ++b)
                            if (p.hasEdge(order[a], order[b]))
                                independent = false;
                    if (!independent)
                        continue;
                    const auto plan = buildPlan(p, order, {}, suffix);
                    EXPECT_EQ(core::countWithPlan(g, plan), expected)
                        << p.toString() << " order "
                        << testing::PrintToString(order)
                        << " suffix " << suffix;
                }
            }
        }
    }
}

/** Disabling symmetry breaking must not change counts (divisor
 *  compensates). */
TEST(PlannerProperty, NoSymmetryBreakingStillExact)
{
    const Graph g = gen::rmat(80, 400, 0.5, 0.2, 0.2, 5);
    PlanOptions options;
    options.symmetryBreaking = false;
    for (const auto &p : gen::connectedPatterns(4)) {
        const Count expected = brute::countEmbeddings(g, p, false);
        const auto plan = compileAutomine(p, options);
        EXPECT_EQ(plan.countDivisor,
                  static_cast<std::int64_t>(
                      iso::automorphisms(plan.pattern).size()));
        EXPECT_EQ(core::countWithPlan(g, plan), expected)
            << p.toString();
    }
}

/** Induced matching agrees with the brute-force induced oracle. */
TEST(PlannerProperty, InducedCountsMatchBruteForce)
{
    const Graph g = gen::rmat(70, 320, 0.5, 0.2, 0.2, 21);
    PlanOptions options;
    options.induced = true;
    for (int size = 3; size <= 4; ++size) {
        for (const auto &p : gen::connectedPatterns(size)) {
            const Count expected = brute::countEmbeddings(g, p, true);
            const auto plan = compileAutomine(p, options);
            EXPECT_EQ(core::countWithPlan(g, plan), expected)
                << p.toString();
        }
    }
}

/** Vertical computation sharing must be a pure optimization. */
TEST(PlannerProperty, VerticalSharingPreservesCounts)
{
    const Graph g = testGraph();
    PlanOptions without;
    without.verticalSharing = false;
    for (const auto &p : gen::connectedPatterns(5)) {
        const auto with_plan = compileAutomine(p, {});
        const auto without_plan = compileAutomine(p, without);
        EXPECT_EQ(core::countWithPlan(g, with_plan),
                  core::countWithPlan(g, without_plan))
            << p.toString();
    }
}

/** Labeled plans only count label-consistent embeddings. */
TEST(PlannerProperty, LabeledCountsMatchBruteForce)
{
    Graph g = gen::rmat(80, 400, 0.5, 0.2, 0.2, 31);
    gen::randomizeLabels(g, 3, 8);
    for (const auto &base : gen::connectedPatterns(3)) {
        for (const auto &p : gen::labelings(base, 3)) {
            const Count expected = brute::countEmbeddings(g, p, false);
            const auto plan = compileAutomine(p, {});
            EXPECT_EQ(core::countWithPlan(g, plan), expected)
                << p.toString();
        }
    }
}

TEST(Planner, CostEstimatePrefersCheaperOrder)
{
    // Tailed triangle: closing the triangle early (two-list
    // intersections sooner) keeps intermediate match counts low.
    GraphProfile profile{100000.0, 16.0};
    const Pattern p = Pattern::tailedTriangle();
    const auto triangle_first = buildPlan(p, {0, 1, 2, 3}, {});
    const auto tail_first = buildPlan(p, {3, 2, 1, 0}, {});
    EXPECT_LT(estimatePlanCost(triangle_first, profile),
              estimatePlanCost(tail_first, profile));
}

TEST(Planner, PlanToStringMentionsStructure)
{
    const auto plan = compileAutomine(Pattern::clique(4), {});
    const std::string text = plan.toString();
    EXPECT_NE(text.find("divisor"), std::string::npos);
    EXPECT_NE(text.find("L1"), std::string::npos);
}

} // namespace
} // namespace khuzdul
