/**
 * @file
 * Tests for the DFS plan runner and the brute-force oracle itself:
 * closed-form counts on structured graphs, visitor semantics, and
 * work accounting.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/plan_runner.hh"
#include "graph/generators.hh"
#include "pattern/bruteforce.hh"
#include "pattern/planner.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace
{

Count
binomial(Count n, Count k)
{
    if (k > n)
        return 0;
    Count result = 1;
    for (Count i = 0; i < k; ++i)
        result = result * (n - i) / (i + 1);
    return result;
}

TEST(BruteForce, TrianglesInCompleteGraph)
{
    const Graph g = gen::complete(7);
    EXPECT_EQ(brute::countEmbeddings(g, Pattern::triangle(), false),
              binomial(7, 3));
}

TEST(BruteForce, CliquesInCompleteGraph)
{
    const Graph g = gen::complete(8);
    EXPECT_EQ(brute::countEmbeddings(g, Pattern::clique(4), false),
              binomial(8, 4));
    EXPECT_EQ(brute::countEmbeddings(g, Pattern::clique(5), false),
              binomial(8, 5));
}

TEST(BruteForce, NoTrianglesInCycle)
{
    const Graph g = gen::cycle(10);
    EXPECT_EQ(brute::countEmbeddings(g, Pattern::triangle(), false), 0u);
    // A C10 contains exactly one embedding of C10.
    EXPECT_EQ(brute::countEmbeddings(g, Pattern::cycleOf(5), false), 0u);
}

TEST(BruteForce, WedgesInStar)
{
    const Graph g = gen::star(6); // hub + 5 leaves
    EXPECT_EQ(brute::countEmbeddings(g, Pattern::pathOf(3), false),
              binomial(5, 2));
}

TEST(BruteForce, PathsInPath)
{
    const Graph g = gen::path(10);
    EXPECT_EQ(brute::countEmbeddings(g, Pattern::pathOf(4), false), 7u);
}

TEST(BruteForce, InducedVersusNonInduced)
{
    const Graph g = gen::complete(5);
    // K5 has C(5,3) triangles but no induced wedge.
    EXPECT_EQ(brute::countEmbeddings(g, Pattern::pathOf(3), true), 0u);
    EXPECT_GT(brute::countEmbeddings(g, Pattern::pathOf(3), false), 0u);
}

TEST(BruteForce, LabeledMatchRespectsLabels)
{
    Graph g = gen::cycle(4);
    g.setLabels({0, 1, 0, 1});
    Pattern edge01(2, {{0, 1}});
    edge01.setLabel(0, 0);
    edge01.setLabel(1, 1);
    EXPECT_EQ(brute::countEmbeddings(g, edge01, false), 4u);
    Pattern edge00(2, {{0, 1}});
    edge00.setLabel(0, 0);
    edge00.setLabel(1, 0);
    EXPECT_EQ(brute::countEmbeddings(g, edge00, false), 0u);
}

TEST(Runner, MatchesClosedFormsOnStructuredGraphs)
{
    const Graph k8 = gen::complete(8);
    for (int k = 3; k <= 5; ++k) {
        const auto plan = compileAutomine(Pattern::clique(k), {});
        EXPECT_EQ(core::countWithPlan(k8, plan), binomial(8, k));
    }
    const Graph c12 = gen::cycle(12);
    const auto cycle_plan = compileAutomine(Pattern::cycleOf(4), {});
    EXPECT_EQ(core::countWithPlan(c12, cycle_plan), 0u);
    const Graph grid = gen::grid(4, 5);
    // Each unit square of the grid is a 4-cycle: 3x4 squares.
    EXPECT_EQ(core::countWithPlan(grid, cycle_plan), 12u);
}

TEST(Runner, SingleVertexAndEdgePatterns)
{
    const Graph g = gen::rmat(100, 300, 0.5, 0.2, 0.2, 9);
    const auto v_plan = compileAutomine(Pattern(1), {});
    EXPECT_EQ(core::countWithPlan(g, v_plan), g.numVertices());
    const auto e_plan = compileAutomine(Pattern::pathOf(2), {});
    EXPECT_EQ(core::countWithPlan(g, e_plan), g.numEdges());
}

TEST(Runner, VisitorSeesEveryEmbeddingOnce)
{
    const Graph g = gen::complete(6);
    const auto plan = compileAutomine(Pattern::triangle(), {});
    std::set<std::set<VertexId>> seen;
    class Collect : public core::MatchVisitor
    {
      public:
        explicit Collect(std::set<std::set<VertexId>> &out) : out_(out) {}
        void
        match(std::span<const VertexId> positions) override
        {
            std::set<VertexId> key(positions.begin(), positions.end());
            EXPECT_EQ(key.size(), positions.size()) << "repeated vertex";
            EXPECT_TRUE(out_.insert(key).second) << "duplicate embedding";
        }

      private:
        std::set<std::set<VertexId>> &out_;
    } collector(seen);
    std::vector<VertexId> roots(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        roots[v] = v;
    core::runPlanDfs(g, plan, roots, &collector);
    EXPECT_EQ(seen.size(), 20u); // C(6,3)
}

TEST(Runner, VisitorRejectsIepPlans)
{
    const Graph g = gen::complete(5);
    GraphProfile profile{5.0, 4.0};
    const auto plan = compileGraphPi(Pattern::triangle(), profile, {});
    ASSERT_TRUE(plan.hasIep);
    class Nop : public core::MatchVisitor
    {
        void match(std::span<const VertexId>) override {}
    } visitor;
    std::vector<VertexId> roots{0};
    EXPECT_THROW(core::runPlanDfs(g, plan, roots, &visitor), FatalError);
}

TEST(Runner, WorkCountersArePopulated)
{
    const Graph g = gen::rmat(300, 2400, 0.55, 0.2, 0.2, 4);
    const auto plan = compileAutomine(Pattern::clique(4), {});
    std::vector<VertexId> roots(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        roots[v] = v;
    const auto result = core::runPlanDfs(g, plan, roots);
    EXPECT_GT(result.workItems, 0u);
    EXPECT_GT(result.candidatesChecked, 0u);
    EXPECT_GT(result.embeddingsVisited, g.numVertices());
}

TEST(Runner, HooksObserveEdgeListAccesses)
{
    const Graph g = gen::complete(5);
    const auto plan = compileAutomine(Pattern::triangle(), {});
    class CountAccess : public core::RunnerHooks
    {
      public:
        Count accesses = 0;
        void onEdgeListAccess(VertexId) override { ++accesses; }
    } hooks;
    std::vector<VertexId> roots(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        roots[v] = v;
    core::runPlanDfs(g, plan, roots, nullptr, &hooks);
    EXPECT_GT(hooks.accesses, 0u);
}

TEST(Runner, PartialRootsCoverSubsetOfTrees)
{
    const Graph g = gen::complete(6);
    const auto plan = compileAutomine(Pattern::triangle(), {});
    // Restrictions force v0 < v1 < v2, so trees rooted at the three
    // smallest vertices contain all triangles of {0..3}.
    std::vector<VertexId> all(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        all[v] = v;
    const auto full = core::runPlanDfs(g, plan, all);
    std::vector<VertexId> half{0, 1, 2};
    const auto partial = core::runPlanDfs(g, plan, half);
    EXPECT_LT(partial.rawCount, full.rawCount);
    EXPECT_GT(partial.rawCount, 0);
}

} // namespace
} // namespace khuzdul
