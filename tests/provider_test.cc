/**
 * @file
 * Unit tests for the edge-list resolution chain: each link of
 * local -> cache -> horizontal share -> remote in isolation, the
 * probe-cost charging, the per-policy cost schedule, and the cache
 * trace events.
 */

#include <gtest/gtest.h>

#include "core/provider.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"
#include "sim/trace.hh"

namespace khuzdul
{
namespace
{

/** First vertex owned by @p unit. */
VertexId
vertexOwnedBy(const Partition &partition, unsigned unit)
{
    return partition.ownedVertices(unit).front();
}

TEST(Provider, LocalResolutionIsFree)
{
    const Graph g = gen::cycle(64);
    const Partition partition(g, 4, 1);
    core::DataCache cache(g, core::CachePolicy::Static, 1 << 20, 1);
    core::EdgeListProvider provider(
        g, partition, &cache, true,
        {.cacheProbeNs = 10, .cacheAdmitNs = 5, .hashProbeNs = 3});

    sim::NodeStats stats;
    const core::Resolution r =
        provider.resolve(2, vertexOwnedBy(partition, 2), nullptr,
                         stats);
    EXPECT_EQ(r.kind, core::ResolutionKind::Local);
    EXPECT_EQ(r.bytes, 0u);
    EXPECT_EQ(stats.listsServedLocal, 1u);
    // Local short-circuits the chain: no probe costs, no counters.
    EXPECT_DOUBLE_EQ(stats.cacheNs, 0.0);
    EXPECT_EQ(stats.staticCacheMisses, 0u);
}

TEST(Provider, RemoteCarriesOwnerAndWireBytes)
{
    const Graph g = gen::cycle(64);
    const Partition partition(g, 4, 1);
    core::EdgeListProvider provider(g, partition, nullptr, false, {});

    const VertexId v = vertexOwnedBy(partition, 3);
    sim::NodeStats stats;
    const core::Resolution r = provider.resolve(0, v, nullptr, stats);
    EXPECT_EQ(r.kind, core::ResolutionKind::Remote);
    EXPECT_EQ(r.owner, 3u);
    EXPECT_EQ(r.bytes, g.edgeListBytes(v));
    EXPECT_FALSE(r.admitted);
    // Without a cache there is nothing to probe or charge.
    EXPECT_DOUBLE_EQ(stats.cacheNs, 0.0);
}

TEST(Provider, CacheAdmitsOnMissThenHits)
{
    const Graph g = gen::cycle(64);
    const Partition partition(g, 4, 1);
    core::DataCache cache(g, core::CachePolicy::Static, 1 << 20, 1);
    core::EdgeListProvider provider(
        g, partition, &cache, false,
        {.cacheProbeNs = 10, .cacheAdmitNs = 5, .hashProbeNs = 0});

    const VertexId v = vertexOwnedBy(partition, 1);
    sim::NodeStats stats;
    const core::Resolution miss = provider.resolve(0, v, nullptr, stats);
    EXPECT_EQ(miss.kind, core::ResolutionKind::Remote);
    EXPECT_TRUE(miss.admitted);
    EXPECT_EQ(stats.staticCacheMisses, 1u);
    EXPECT_EQ(stats.staticCacheInsertions, 1u);
    EXPECT_DOUBLE_EQ(stats.cacheNs, 15.0); // probe + admit

    const core::Resolution hit = provider.resolve(0, v, nullptr, stats);
    EXPECT_EQ(hit.kind, core::ResolutionKind::CacheHit);
    EXPECT_EQ(hit.bytes, 0u);
    EXPECT_EQ(stats.staticCacheHits, 1u);
    EXPECT_DOUBLE_EQ(stats.cacheNs, 25.0); // + second probe
}

TEST(Provider, HorizontalTableSharesAndDrops)
{
    const Graph g = gen::cycle(64);
    const Partition partition(g, 4, 1);
    core::EdgeListProvider provider(
        g, partition, nullptr, true,
        {.cacheProbeNs = 0, .cacheAdmitNs = 0, .hashProbeNs = 3});

    // A one-slot table forces every vertex onto the same slot:
    // second offer of v1 shares, any other vertex collides.
    core::HorizontalTable table(1);
    const VertexId v1 = partition.ownedVertices(1)[0];
    const VertexId v2 = partition.ownedVertices(1)[1];
    sim::NodeStats stats;

    EXPECT_EQ(provider.resolve(0, v1, &table, stats).kind,
              core::ResolutionKind::Remote);
    const core::Resolution shared =
        provider.resolve(0, v1, &table, stats);
    EXPECT_EQ(shared.kind, core::ResolutionKind::Shared);
    EXPECT_EQ(shared.owner, 1u);
    EXPECT_EQ(stats.horizontalHits, 1u);

    EXPECT_EQ(provider.resolve(0, v2, &table, stats).kind,
              core::ResolutionKind::Remote);
    EXPECT_EQ(stats.horizontalDrops, 1u);
    EXPECT_DOUBLE_EQ(stats.cacheNs, 9.0); // three hash probes

    // A null table skips the horizontal step entirely.
    EXPECT_EQ(provider.resolve(0, v1, nullptr, stats).kind,
              core::ResolutionKind::Remote);
    EXPECT_DOUBLE_EQ(stats.cacheNs, 9.0);
}

TEST(Provider, EngineCostsFollowCachePolicy)
{
    const Graph g = gen::cycle(64);
    const sim::CostModel cost;

    core::DataCache static_cache(g, core::CachePolicy::Static, 1 << 20,
                                 1);
    const auto s = core::EdgeListProvider::engineCosts(cost,
                                                       static_cache);
    EXPECT_DOUBLE_EQ(s.cacheProbeNs, cost.staticCacheProbeNs);
    EXPECT_DOUBLE_EQ(s.cacheAdmitNs, 0.0);
    EXPECT_DOUBLE_EQ(s.hashProbeNs, cost.hashProbeNs);

    core::DataCache lru_cache(g, core::CachePolicy::Lru, 1 << 20, 1);
    const auto r = core::EdgeListProvider::engineCosts(cost, lru_cache);
    EXPECT_DOUBLE_EQ(r.cacheProbeNs, cost.replacementCacheProbeNs);
    EXPECT_DOUBLE_EQ(r.cacheAdmitNs, cost.replacementAllocNs);
}

TEST(Provider, EmitsCacheTraceEvents)
{
    const Graph g = gen::cycle(64);
    const Partition partition(g, 4, 1);
    core::DataCache cache(g, core::CachePolicy::Static, 1 << 20, 1);
    sim::CountingTraceSink trace;
    core::EdgeListProvider provider(g, partition, &cache, false, {},
                                    trace);

    const VertexId v = vertexOwnedBy(partition, 1);
    sim::NodeStats stats;
    provider.resolve(0, v, nullptr, stats);
    provider.resolve(0, v, nullptr, stats);
    provider.resolve(0, vertexOwnedBy(partition, 0), nullptr, stats);
    EXPECT_EQ(trace.count(sim::PhaseEvent::CacheMiss), 1u);
    EXPECT_EQ(trace.count(sim::PhaseEvent::CacheHit), 1u);
    EXPECT_EQ(trace.total(), 2u); // local resolution emits nothing
}

} // namespace
} // namespace khuzdul
