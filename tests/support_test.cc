/**
 * @file
 * Unit tests for the support module: deterministic RNG, formatting
 * helpers and the error-handling macros.
 */

#include <gtest/gtest.h>

#include "support/check.hh"
#include "support/format.hh"
#include "support/rng.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace
{

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(11);
    std::array<int, 8> histogram{};
    for (int i = 0; i < 8000; ++i)
        ++histogram[rng.nextBounded(8)];
    for (const int count : histogram)
        EXPECT_GT(count, 700); // near-uniform
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, Mix64IsStateless)
{
    EXPECT_EQ(mix64(123), mix64(123));
    EXPECT_NE(mix64(123), mix64(124));
}

TEST(Format, Time)
{
    EXPECT_EQ(formatTime(500), "500ns");
    EXPECT_EQ(formatTime(35'300'000), "35.3ms");
    EXPECT_EQ(formatTime(2'200'000'000ULL), "2.2s");
    EXPECT_EQ(formatTime(4'000'000'000'000ULL), "1.1h");
}

TEST(Format, Bytes)
{
    EXPECT_EQ(formatBytes(512), "512B");
    EXPECT_EQ(formatBytes(33ull << 30), "33.0GB");
    EXPECT_EQ(formatBytes(5ull << 40), "5.0TB");
}

TEST(Format, Count)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(1234567), "1,234,567");
}

TEST(Format, RatioAndPercent)
{
    EXPECT_EQ(formatRatio(75.5), "75.5x");
    EXPECT_EQ(formatRatio(123.4), "123x");
    EXPECT_EQ(formatPercent(0.93), "93.0%");
}

TEST(Format, Padding)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcdef", 4), "abcdef");
}

TEST(Check, PanicThrowsLogicError)
{
    EXPECT_THROW(KHUZDUL_PANIC("boom"), PanicError);
}

TEST(Check, FatalThrowsRuntimeError)
{
    EXPECT_THROW(KHUZDUL_FATAL("bad input"), FatalError);
}

TEST(Check, CheckPassesAndFails)
{
    EXPECT_NO_THROW(KHUZDUL_CHECK(1 + 1 == 2, "fine"));
    EXPECT_THROW(KHUZDUL_CHECK(1 + 1 == 3, "broken"), PanicError);
}

TEST(Check, RequireReportsMessage)
{
    try {
        KHUZDUL_REQUIRE(false, "value was " << 42);
        FAIL() << "should have thrown";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value was 42"),
                  std::string::npos);
    }
}

} // namespace
} // namespace khuzdul
