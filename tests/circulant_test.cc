/**
 * @file
 * Unit tests for the circulant batch scheduler: slot arithmetic,
 * batch bookkeeping, traffic attribution through the fabric, and
 * the pipelined comm/compute timeline fold.
 */

#include <gtest/gtest.h>

#include "core/circulant.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"
#include "sim/fabric.hh"
#include "sim/trace.hh"

namespace khuzdul
{
namespace
{

TEST(Circulant, SlotArithmeticIsCirculant)
{
    const core::CirculantScheduler sched(2, 8, 1);
    EXPECT_EQ(sched.slotOf(2), 0u); // self is slot 0 (local)
    EXPECT_EQ(sched.slotOf(3), 1u);
    EXPECT_EQ(sched.slotOf(1), 7u); // wraps around
    for (unsigned owner = 0; owner < 8; ++owner)
        EXPECT_EQ(sched.ownerOf(sched.slotOf(owner)), owner);
}

TEST(Circulant, DispatchOverheadCountsMiniBatches)
{
    // 100 embeddings in mini-batches of 32 -> 4 dispatches of 150ns
    // amortized over 4 cores.
    EXPECT_DOUBLE_EQ(core::CirculantScheduler::dispatchOverheadNs(
                         100, 32, 150.0, 4),
                     150.0);
    EXPECT_DOUBLE_EQ(core::CirculantScheduler::dispatchOverheadNs(
                         0, 32, 150.0, 4),
                     0.0);
}

TEST(Circulant, IssueAttributesTrafficBothWays)
{
    const Graph g = gen::cycle(64);
    const Partition partition(g, 4, 1);
    const sim::CostModel cost;
    sim::Fabric fabric(partition, cost);
    sim::RunStats run;
    run.nodes.resize(4);
    sim::CountingTraceSink trace;

    core::CirculantScheduler sched(0, 4, 1);
    sched.begin(4);
    sched.noteRemote(0, 1, 100);
    sched.noteRemote(1, 1, 50);
    sched.noteRemote(2, 3, 10);
    sched.issue(fabric, run, trace, 0);

    // Receiver side: everything lands on unit 0.
    EXPECT_EQ(run.nodes[0].bytesReceived, 160u);
    EXPECT_EQ(run.nodes[0].messagesSent, 2u); // one batch per owner
    EXPECT_EQ(run.nodes[0].listsFetchedRemote, 3u);
    // Send side is attributed to the owning units.
    EXPECT_EQ(run.nodes[1].bytesSent, 150u);
    EXPECT_EQ(run.nodes[3].bytesSent, 10u);
    // The fabric ledger sees the same per-link volumes.
    EXPECT_EQ(fabric.linkBytes(0, 1), 150u);
    EXPECT_EQ(fabric.linkBytes(0, 3), 10u);
    EXPECT_EQ(fabric.totalBytes(), 160u);
    // One issued/completed event pair per non-empty batch.
    EXPECT_EQ(trace.count(sim::PhaseEvent::FetchBatchIssued), 2u);
    EXPECT_EQ(trace.count(sim::PhaseEvent::FetchBatchCompleted), 2u);
    EXPECT_EQ(trace.valueSum(sim::PhaseEvent::FetchBatchIssued), 160u);
}

TEST(Circulant, SameNodeBatchesAreNotNetworkTraffic)
{
    // 2 nodes x 2 sockets: units 0 and 1 share node 0, so a fetch
    // from unit 1 moves over NUMA, not the network.
    const Graph g = gen::cycle(64);
    const Partition partition(g, 2, 2);
    const sim::CostModel cost;
    sim::Fabric fabric(partition, cost);
    sim::RunStats run;
    run.nodes.resize(4);

    core::CirculantScheduler sched(0, 4, 2);
    sched.begin(1);
    sched.noteRemote(0, 1, 512);
    sched.issue(fabric, run, sim::nullTraceSink(), 0);
    EXPECT_EQ(run.nodes[0].bytesReceived, 0u);
    EXPECT_EQ(run.nodes[1].bytesSent, 0u);
    EXPECT_EQ(fabric.totalBytes(), 0u);
}

TEST(Circulant, PipelineOverlapsCommWithCompute)
{
    const Graph g = gen::cycle(64);
    const Partition partition(g, 3, 1);
    const sim::CostModel cost;
    sim::Fabric fabric(partition, cost);
    sim::RunStats run;
    run.nodes.resize(3);

    core::CirculantScheduler sched(0, 3, 1);
    sched.begin(2);
    // Embedding 0 stays local (slot 0); embedding 1 fetches from
    // unit 1.
    sched.noteRemote(1, 1, 1024);
    sched.issue(fabric, run, sim::nullTraceSink(), 0);
    sched.chargeWork(0, 100);
    sched.chargeWork(1, 200);

    const auto t = sched.pipeline(/*cores=*/2, /*penalty=*/1.0);
    const double comm = cost.transferNs(1024, 1);
    EXPECT_DOUBLE_EQ(t.computeNs, 150.0); // (100 + 200) / 2 cores
    EXPECT_DOUBLE_EQ(t.commNs, comm);
    // Slot 0's 50ns of work overlaps the transfer; the rest of the
    // transfer is exposed.
    EXPECT_DOUBLE_EQ(t.exposedNs, std::max(50.0, comm) - 50.0);
    EXPECT_GT(t.exposedNs, 0.0);
    EXPECT_LT(t.exposedNs, t.commNs);
}

TEST(Circulant, PenaltyScalesBothPaths)
{
    const Graph g = gen::cycle(64);
    const Partition partition(g, 2, 1);
    const sim::CostModel cost;
    sim::Fabric fabric(partition, cost);
    sim::RunStats run;
    run.nodes.resize(2);

    core::CirculantScheduler sched(0, 2, 1);
    sched.begin(1);
    sched.noteRemote(0, 1, 256);
    sched.issue(fabric, run, sim::nullTraceSink(), 0);
    sched.chargeWork(0, 300);

    const auto base = sched.pipeline(1, 1.0);
    const auto slowed = sched.pipeline(1, 1.5);
    EXPECT_DOUBLE_EQ(slowed.computeNs, base.computeNs * 1.5);
    EXPECT_DOUBLE_EQ(slowed.commNs, base.commNs * 1.5);
}

TEST(Circulant, BeginClearsLedgers)
{
    const Graph g = gen::cycle(64);
    const Partition partition(g, 2, 1);
    const sim::CostModel cost;
    sim::Fabric fabric(partition, cost);
    sim::RunStats run;
    run.nodes.resize(2);

    core::CirculantScheduler sched(0, 2, 1);
    sched.begin(1);
    sched.noteRemote(0, 1, 4096);
    sched.issue(fabric, run, sim::nullTraceSink(), 0);
    sched.chargeWork(0, 1000);

    sched.begin(1);
    const auto t = sched.pipeline(1, 1.0);
    EXPECT_DOUBLE_EQ(t.computeNs, 0.0);
    EXPECT_DOUBLE_EQ(t.commNs, 0.0);
    EXPECT_DOUBLE_EQ(t.exposedNs, 0.0);
}

} // namespace
} // namespace khuzdul
