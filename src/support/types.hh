/**
 * @file
 * Fundamental integer types and limits shared across the Khuzdul
 * reproduction.
 */

#ifndef KHUZDUL_SUPPORT_TYPES_HH
#define KHUZDUL_SUPPORT_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <limits>

namespace khuzdul
{

/** Vertex identifier of the input graph (supports < 2^32 vertices). */
using VertexId = std::uint32_t;

/** Edge identifier / edge count type. */
using EdgeId = std::uint64_t;

/** Embedding / subgraph counters; GPM counts overflow 32 bits fast. */
using Count = std::uint64_t;

/** Vertex label for labeled mining (FSM). */
using Label = std::uint32_t;

/** Simulated node (machine) identifier within a cluster. */
using NodeId = std::uint32_t;

/** Simulated time in nanoseconds. */
using SimTime = std::uint64_t;

/** Sentinel for "no vertex". */
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/** Maximum number of vertices in a mined pattern. */
inline constexpr int kMaxPatternSize = 8;

} // namespace khuzdul

#endif // KHUZDUL_SUPPORT_TYPES_HH
