/**
 * @file
 * Human-readable formatting helpers used by the benchmark harnesses
 * to print paper-style tables (runtimes, byte volumes, ratios).
 */

#ifndef KHUZDUL_SUPPORT_FORMAT_HH
#define KHUZDUL_SUPPORT_FORMAT_HH

#include <cstdint>
#include <string>

namespace khuzdul
{

/** Format nanoseconds as e.g. "35.3ms", "2.2s", "1.1h". */
std::string formatTime(std::uint64_t ns);

/** Format a byte count as e.g. "962.1MB", "4.4TB". */
std::string formatBytes(std::uint64_t bytes);

/** Format a count with thousands separators. */
std::string formatCount(std::uint64_t value);

/** Format a ratio as e.g. "75.5x". */
std::string formatRatio(double ratio);

/** Format a fraction as a percentage, e.g. "93.0%". */
std::string formatPercent(double fraction);

/** Left-pad @p s to @p width characters. */
std::string padLeft(const std::string &s, std::size_t width);

/** Right-pad @p s to @p width characters. */
std::string padRight(const std::string &s, std::size_t width);

} // namespace khuzdul

#endif // KHUZDUL_SUPPORT_FORMAT_HH
