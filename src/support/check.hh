/**
 * @file
 * Error handling helpers in the spirit of gem5's panic()/fatal():
 * panic() flags internal invariant violations (bugs), fatal() flags
 * unusable user input or configuration.
 */

#ifndef KHUZDUL_SUPPORT_CHECK_HH
#define KHUZDUL_SUPPORT_CHECK_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace khuzdul
{

/** Thrown on internal invariant violations (engine bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what)
    {}
};

/** Thrown on invalid user input or configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

} // namespace detail

} // namespace khuzdul

/** Abort with a PanicError; use for conditions that indicate a bug. */
#define KHUZDUL_PANIC(msg)                                              \
    ::khuzdul::detail::panicImpl(__FILE__, __LINE__,                    \
        (std::ostringstream() << msg).str())

/** Abort with a FatalError; use for bad user input/configuration. */
#define KHUZDUL_FATAL(msg)                                              \
    ::khuzdul::detail::fatalImpl(__FILE__, __LINE__,                    \
        (std::ostringstream() << msg).str())

/** Checked invariant: panics when the condition is false. */
#define KHUZDUL_CHECK(cond, msg)                                        \
    do {                                                                \
        if (!(cond))                                                    \
            KHUZDUL_PANIC("check failed: " #cond ": " << msg);          \
    } while (0)

/** Validate user-facing arguments: fatal when the condition is false. */
#define KHUZDUL_REQUIRE(cond, msg)                                      \
    do {                                                                \
        if (!(cond))                                                    \
            KHUZDUL_FATAL("requirement failed: " #cond ": " << msg);    \
    } while (0)

#endif // KHUZDUL_SUPPORT_CHECK_HH
