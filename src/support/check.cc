#include "support/check.hh"

#include <sstream>

namespace khuzdul
{
namespace detail
{

namespace
{

std::string
decorate(const char *kind, const char *file, int line,
         const std::string &msg)
{
    std::ostringstream os;
    os << kind << " at " << file << ":" << line << ": " << msg;
    return os.str();
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    throw PanicError(decorate("panic", file, line, msg));
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    throw FatalError(decorate("fatal", file, line, msg));
}

} // namespace detail
} // namespace khuzdul
