/**
 * @file
 * Wall-clock timing helper.  Benches report *modeled* cluster time
 * from sim::RunStats; the wall timer exists to report host-side
 * execution cost alongside it.
 *
 * HOST-ONLY: nothing under src/ may instantiate Timer — only
 * bench/ and tools/ do.  A Timer reaching a modeled path would
 * make results a function of host speed, which the determinism
 * contract (DESIGN.md §8) forbids; the three steady_clock sites
 * below carry per-line annotations on that basis (narrowed from a
 * whole-file allowlist entry once the cross-TU taint pass could
 * verify the claim).  The annotations silence only the per-line
 * rule: the taint pass still seeds wall-clock here, so a call
 * chain from any modeled zone into Timer is a lint failure with
 * the full chain in the message.
 */

#ifndef KHUZDUL_SUPPORT_TIMER_HH
#define KHUZDUL_SUPPORT_TIMER_HH

#include <chrono>
#include <cstdint>

namespace khuzdul
{

/** Simple monotonic stopwatch. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    // khuzdul-lint: allow(wall-clock) host-only stopwatch; bench/ and tools/ only
    void reset() { start_ = std::chrono::steady_clock::now(); }

    /** Elapsed nanoseconds since construction or reset(). */
    std::uint64_t
    elapsedNs() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                // khuzdul-lint: allow(wall-clock) host-only stopwatch; bench/ and tools/ only
                std::chrono::steady_clock::now() - start_)
                .count());
    }

    /** Elapsed seconds. */
    double
    elapsedSeconds() const
    {
        return static_cast<double>(elapsedNs()) * 1e-9;
    }

  private:
    // khuzdul-lint: allow(wall-clock) host-only stopwatch; bench/ and tools/ only
    std::chrono::steady_clock::time_point start_;
};

} // namespace khuzdul

#endif // KHUZDUL_SUPPORT_TIMER_HH
