/**
 * @file
 * Deterministic pseudo-random number generation.  Every stochastic
 * component of the reproduction (graph generators, label synthesis,
 * workload shuffles) derives from these so results are bit-exact
 * across runs.
 */

#ifndef KHUZDUL_SUPPORT_RNG_HH
#define KHUZDUL_SUPPORT_RNG_HH

#include <cstdint>

#include "support/check.hh"

namespace khuzdul
{

/** SplitMix64 — used to seed and for one-shot hashing. */
inline std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless 64-bit mix; good for hash partitioning. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    std::uint64_t s = x;
    return splitMix64(s);
}

/**
 * xoshiro256** PRNG.  Small, fast and high-quality; seeded via
 * SplitMix64 so any 64-bit seed works.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x7f4a7c15ULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        KHUZDUL_CHECK(bound > 0, "nextBounded needs a positive bound");
        // Rejection-free bias is negligible for our bounds; use the
        // widening-multiply trick for speed.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool coin(double p) { return nextDouble() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace khuzdul

#endif // KHUZDUL_SUPPORT_RNG_HH
