#include "support/format.hh"

#include <cmath>
#include <cstdio>

namespace khuzdul
{

namespace
{

std::string
withUnit(double value, const char *unit)
{
    char buf[64];
    if (value >= 100)
        std::snprintf(buf, sizeof(buf), "%.0f%s", value, unit);
    else
        std::snprintf(buf, sizeof(buf), "%.1f%s", value, unit);
    return buf;
}

} // namespace

std::string
formatTime(std::uint64_t ns)
{
    const double v = static_cast<double>(ns);
    if (v < 1e3)
        return withUnit(v, "ns");
    if (v < 1e6)
        return withUnit(v / 1e3, "us");
    if (v < 1e9)
        return withUnit(v / 1e6, "ms");
    if (v < 3600e9)
        return withUnit(v / 1e9, "s");
    return withUnit(v / 3600e9, "h");
}

std::string
formatBytes(std::uint64_t bytes)
{
    const double v = static_cast<double>(bytes);
    if (v < 1024.0)
        return withUnit(v, "B");
    if (v < 1024.0 * 1024)
        return withUnit(v / 1024.0, "KB");
    if (v < 1024.0 * 1024 * 1024)
        return withUnit(v / (1024.0 * 1024), "MB");
    if (v < 1024.0 * 1024 * 1024 * 1024)
        return withUnit(v / (1024.0 * 1024 * 1024), "GB");
    return withUnit(v / (1024.0 * 1024 * 1024 * 1024), "TB");
}

std::string
formatCount(std::uint64_t value)
{
    std::string raw = std::to_string(value);
    std::string out;
    const std::size_t n = raw.size();
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(raw[i]);
        const std::size_t remaining = n - i - 1;
        if (remaining > 0 && remaining % 3 == 0)
            out.push_back(',');
    }
    return out;
}

std::string
formatRatio(double ratio)
{
    char buf[64];
    if (ratio >= 100)
        std::snprintf(buf, sizeof(buf), "%.0fx", ratio);
    else
        std::snprintf(buf, sizeof(buf), "%.1fx", ratio);
    return buf;
}

std::string
formatPercent(double fraction)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    return buf;
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

} // namespace khuzdul
