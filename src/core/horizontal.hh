/**
 * @file
 * Horizontal data sharing (§5.2): a per-level, collision-dropping
 * hash table that deduplicates remote edge-list fetches among the
 * extendable embeddings of one chunk.  No collision chains are
 * built — when two hot vertices hash to the same slot the later one
 * is simply fetched redundantly, trading a little traffic for a
 * much cheaper table.
 */

#ifndef KHUZDUL_CORE_HORIZONTAL_HH
#define KHUZDUL_CORE_HORIZONTAL_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/rng.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace core
{

/** Chunk-scoped fetch-dedup table. */
class HorizontalTable
{
  public:
    /** @param num_slots table size (power of two recommended). */
    explicit HorizontalTable(std::size_t num_slots = 1 << 16)
        : slots_(num_slots, kInvalidVertex)
    {}

    /** Outcome of offering a vertex to the table. */
    enum class Probe
    {
        Hit,      ///< same vertex already present: share the fetch
        Claimed,  ///< slot was empty: caller fetches, others share
        Dropped,  ///< slot taken by a different vertex: fetch anyway
    };

    /** Probe/claim the slot for @p v (one hash, no chains). */
    Probe
    offer(VertexId v)
    {
        const std::size_t slot = mix64(v) % slots_.size();
        if (slots_[slot] == v)
            return Probe::Hit;
        if (slots_[slot] == kInvalidVertex) {
            slots_[slot] = v;
            return Probe::Claimed;
        }
        return Probe::Dropped;
    }

    /** Forget everything (called when a chunk is released). */
    void
    clear()
    {
        std::fill(slots_.begin(), slots_.end(), kInvalidVertex);
    }

    std::size_t numSlots() const { return slots_.size(); }

  private:
    std::vector<VertexId> slots_;
};

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_HORIZONTAL_HH
