#include "core/context.hh"

#include "graph/orientation.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace core
{

namespace
{

std::uint64_t
perUnitCacheBytes(const Graph &g, const GraphSetup &setup,
                  const Partition &partition)
{
    const double per_node =
        setup.cacheFraction * static_cast<double>(g.sizeBytes());
    return static_cast<std::uint64_t>(per_node
                                      / partition.socketsPerNode());
}

} // namespace

GraphContext::GraphContext(const Graph &g, const GraphSetup &setup)
    : graph_(&g), setup_(setup),
      partition_(g, setup.cluster.numNodes,
                 setup.numaAware ? setup.cluster.socketsPerNode : 1),
      residency_(g, partition_.numUnits(),
                 setup.cachePolicy == CachePolicy::None
                     ? 0
                     : perUnitCacheBytes(g, setup, partition_),
                 setup.cacheDegreeThreshold),
      sharedFabric_(partition_, setup_.cost)
{
}

unsigned
GraphContext::computeCoresPerUnit() const
{
    const unsigned per_node = setup_.cluster.computeCoresPerNode();
    if (!setup_.numaAware)
        return per_node;
    return std::max(1u, per_node / setup_.cluster.socketsPerNode);
}

std::uint64_t
GraphContext::cacheBytesPerUnit() const
{
    return perUnitCacheBytes(*graph_, setup_, partition_);
}

void
GraphContext::ensureHubBitmaps()
{
    if (setup_.hubBitmapMaxBytes == 0)
        return;
    // Graph::buildHubBitmaps mutates lazily-built mutable state and
    // needs external synchronization when sessions spin up
    // concurrently; the context is that synchronization point.
    // khuzdul-lint: allow(thread-primitive) build-once guard for the shared hub bitmaps; host-side only
    std::lock_guard<std::mutex> lock(mutex_);
    if (hubBitmapsBuilt_)
        return;
    graph_->buildHubBitmaps(setup_.hubBitmapDegreeThreshold,
                            setup_.hubBitmapMaxBytes);
    hubBitmapsBuilt_ = true;
}

const GraphProfile &
GraphContext::profile()
{
    // khuzdul-lint: allow(thread-primitive) build-once guard for the shared planner profile; host-side only
    std::lock_guard<std::mutex> lock(mutex_);
    if (!profile_)
        profile_ = std::make_unique<GraphProfile>(
            GraphProfile::fromGraph(*graph_));
    return *profile_;
}

const Graph &
GraphContext::orientedGraph()
{
    // khuzdul-lint: allow(thread-primitive) build-once guard for the shared oriented DAG; host-side only
    std::lock_guard<std::mutex> lock(mutex_);
    if (!oriented_)
        oriented_ = std::make_unique<Graph>(graph::orient(*graph_));
    return *oriented_;
}

void
GraphContext::absorbTraffic(const sim::Fabric &query_ledger)
{
    // khuzdul-lint: allow(thread-primitive) cumulative ledger fold; per-link uint64 sums are admission-order independent
    std::lock_guard<std::mutex> lock(mutex_);
    sharedFabric_.absorb(query_ledger);
}

std::uint64_t
GraphContext::sharedTotalBytes() const
{
    // khuzdul-lint: allow(thread-primitive) observability read of the cumulative ledger
    std::lock_guard<std::mutex> lock(mutex_);
    return sharedFabric_.totalBytes();
}

std::uint64_t
GraphContext::sharedLinkBytes(NodeId src, NodeId dst) const
{
    // khuzdul-lint: allow(thread-primitive) observability read of the cumulative ledger
    std::lock_guard<std::mutex> lock(mutex_);
    return sharedFabric_.linkBytes(src, dst);
}

std::uint64_t
GraphContext::sharedLinkMessages(NodeId src, NodeId dst) const
{
    // khuzdul-lint: allow(thread-primitive) observability read of the cumulative ledger
    std::lock_guard<std::mutex> lock(mutex_);
    return sharedFabric_.linkMessages(src, dst);
}

void
GraphContext::absorbSteals(std::uint64_t chunks, std::uint64_t bytes)
{
    // khuzdul-lint: allow(thread-primitive) cumulative registry fold; uint64 sums are admission-order independent
    std::lock_guard<std::mutex> lock(mutex_);
    sharedStealChunks_ += chunks;
    sharedStealBytes_ += bytes;
}

std::uint64_t
GraphContext::sharedStealCount() const
{
    // khuzdul-lint: allow(thread-primitive) observability read of the cumulative steal registry
    std::lock_guard<std::mutex> lock(mutex_);
    return sharedStealChunks_;
}

std::uint64_t
GraphContext::sharedStealBytes() const
{
    // khuzdul-lint: allow(thread-primitive) observability read of the cumulative steal registry
    std::lock_guard<std::mutex> lock(mutex_);
    return sharedStealBytes_;
}

void
GraphContext::clearCaches()
{
    residency_.clear();
    // khuzdul-lint: allow(thread-primitive) cumulative ledger wipe alongside the residency directory
    std::lock_guard<std::mutex> lock(mutex_);
    sharedFabric_.reset();
    sharedStealChunks_ = 0;
    sharedStealBytes_ = 0;
}

} // namespace core
} // namespace khuzdul
