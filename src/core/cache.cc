#include "core/cache.hh"

#include "support/check.hh"

namespace khuzdul
{
namespace core
{

std::string
cachePolicyName(CachePolicy policy)
{
    switch (policy) {
      case CachePolicy::None:
        return "NONE";
      case CachePolicy::Static:
        return "STATIC";
      case CachePolicy::Fifo:
        return "FIFO";
      case CachePolicy::Lifo:
        return "LIFO";
      case CachePolicy::Lru:
        return "LRU";
      case CachePolicy::Mru:
        return "MRU";
    }
    KHUZDUL_PANIC("unreachable cache policy");
}

DataCache::DataCache(const Graph &g, CachePolicy policy,
                     std::uint64_t capacity_bytes, EdgeId degree_threshold)
    : graph_(&g), policy_(policy), capacityBytes_(capacity_bytes),
      degreeThreshold_(degree_threshold)
{
    if (capacityBytes_ == 0)
        policy_ = CachePolicy::None;
}

bool
DataCache::lookup(VertexId v)
{
    if (policy_ == CachePolicy::None) {
        ++misses_;
        return false;
    }
    auto it = entries_.find(v);
    if (it == entries_.end()) {
        ++misses_;
        return false;
    }
    ++hits_;
    if (policy_ == CachePolicy::Lru || policy_ == CachePolicy::Mru) {
        // Recency update: move to the back (most recent).
        order_.splice(order_.end(), order_, it->second);
    }
    return true;
}

bool
DataCache::insert(VertexId v)
{
    if (policy_ == CachePolicy::None || entries_.contains(v))
        return false;
    const std::uint64_t bytes = graph_->edgeListBytes(v);
    if (bytes > capacityBytes_)
        return false;

    if (policy_ == CachePolicy::Static) {
        // §5.3: admit hot vertices only, and once the cache fills it
        // is frozen forever — no eviction, no further bookkeeping.
        if (fullForever_ || graph_->degree(v) < degreeThreshold_)
            return false;
        if (usedBytes_ + bytes > capacityBytes_) {
            fullForever_ = true;
            return false;
        }
    } else {
        while (usedBytes_ + bytes > capacityBytes_)
            evictOne();
    }

    order_.push_back(v);
    entries_.emplace(v, std::prev(order_.end()));
    usedBytes_ += bytes;
    ++insertions_;
    return true;
}

void
DataCache::evictOne()
{
    KHUZDUL_CHECK(!order_.empty(), "evicting from an empty cache");
    // order_ is maintained in insertion order (FIFO/LIFO) or
    // recency order with back = most recent (LRU/MRU).
    VertexId victim;
    if (policy_ == CachePolicy::Fifo || policy_ == CachePolicy::Lru) {
        victim = order_.front();
        order_.pop_front();
    } else {
        victim = order_.back();
        order_.pop_back();
    }
    entries_.erase(victim);
    usedBytes_ -= graph_->edgeListBytes(victim);
    ++evictions_;
}

} // namespace core
} // namespace khuzdul
