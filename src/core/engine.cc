#include "core/engine.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/chunk.hh"
#include "core/horizontal.hh"
#include "core/intersect.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace core
{

namespace
{

/** Transient per-chunk batch ledger (one per source unit). */
struct Batch
{
    double commNs = 0;   ///< modeled transfer time of this batch
    double workNs = 0;   ///< raw single-core extension work
    std::uint64_t bytes = 0;
    std::uint64_t lists = 0;
};

} // namespace

/**
 * Per-execution-unit run state: the chunk stack, horizontal tables
 * and the BFS-DFS traversal itself.  Lives for one (unit, plan)
 * pair.
 */
class UnitRun
{
  public:
    UnitRun(Engine &engine, unsigned unit, const ExtendPlan &plan,
            MatchVisitor *visitor, sim::NodeStats &stats)
        : engine_(engine), graph_(*engine.graph_), plan_(plan),
          visitor_(visitor), unit_(unit),
          node_(unit / unitsPerNode()), stats_(stats),
          cache_(*engine.caches_[unit]),
          numUnits_(engine.partition_.numUnits()),
          cores_(engine.computeCoresPerUnit())
    {
        const int n = plan.pattern.size();
        chunkedLevels_ = plan.hasIep ? plan.numMaterializedLevels()
                                     : std::max(1, n - 1);
        for (int i = 0; i < chunkedLevels_; ++i) {
            chunks_.emplace_back(engine.config_.chunkBytes);
            tables_.emplace_back(engine.config_.horizontalSlots);
            batchIds_.emplace_back();
        }
        penalty_ = 1.0;
        if (!engine.config_.numaAware
            && engine.config_.cluster.socketsPerNode >= 2)
            penalty_ = engine.config_.numaComputePenalty;
    }

    /** Explore every tree rooted at this unit's owned vertices. */
    std::int64_t
    run()
    {
        const auto &roots = engine_.partition_.ownedVertices(unit_);
        const PlanLevel &root_level = plan_.levels[0];

        if (plan_.pattern.size() == 1) {
            for (const VertexId v : roots)
                if (!root_level.hasLabelFilter
                    || graph_.label(v) == root_level.labelFilter)
                    ++raw_;
            return raw_;
        }

        std::size_t cursor = 0;
        while (cursor < roots.size()) {
            Chunk &chunk0 = chunks_[0];
            while (cursor < roots.size() && !chunk0.full()) {
                const VertexId v = roots[cursor++];
                if (root_level.hasLabelFilter
                    && graph_.label(v) != root_level.labelFilter)
                    continue;
                chunk0.add(v, kNoParent, root_level.fetchEdgeList);
                ++stats_.embeddingsCreated;
            }
            if (!chunk0.empty())
                processLevel(0);
            chunk0.reset();
            tables_[0].clear();
        }
        return raw_;
    }

  private:
    unsigned
    unitsPerNode() const
    {
        return engine_.partition_.socketsPerNode();
    }

    /** Circulant position of owner unit @p o relative to us (§4.3). */
    unsigned
    circulantIndex(unsigned owner) const
    {
        return (owner + numUnits_ - unit_) % numUnits_;
    }

    /**
     * Communication phase of one chunk: classify every embedding's
     * new edge list as local / cached / horizontally shared /
     * remote, group remote fetches by owner unit in circulant
     * order, and record the modeled transfers.
     */
    void
    fetchPhase(int level, std::vector<Batch> &batches)
    {
        Chunk &chunk = chunks_[level];
        HorizontalTable &table = tables_[level];
        auto &batch_ids = batchIds_[level];
        batch_ids.assign(chunk.size(), 0);
        batches.assign(numUnits_, Batch{});
        const sim::CostModel &cost = engine_.config_.cost;
        const bool replacement =
            cache_.policy() != CachePolicy::Static
            && cache_.policy() != CachePolicy::None;

        // Owner units of pending transfers, for per-batch ledgers.
        std::vector<unsigned> owners(numUnits_);
        for (unsigned i = 0; i < numUnits_; ++i)
            owners[(i + numUnits_ - unit_) % numUnits_] = i;

        for (std::uint32_t idx = 0; idx < chunk.size(); ++idx) {
            if (!chunk.needsFetch(idx))
                continue;
            const VertexId v = chunk.vertex(idx);
            const unsigned owner = engine_.partition_.ownerUnit(v);
            if (owner == unit_) {
                ++stats_.listsServedLocal;
                continue;
            }
            // Static cache first (§5.3): cached lists cost one probe.
            stats_.cacheNs += replacement
                ? cost.replacementCacheProbeNs
                : cost.staticCacheProbeNs;
            if (cache_.lookup(v)) {
                ++stats_.staticCacheHits;
                continue;
            }
            ++stats_.staticCacheMisses;
            // Horizontal sharing (§5.2): dedup within the chunk.
            if (engine_.config_.horizontalSharing) {
                stats_.cacheNs += cost.hashProbeNs;
                const auto probe = table.offer(v);
                if (probe == HorizontalTable::Probe::Hit) {
                    ++stats_.horizontalHits;
                    batch_ids[idx] =
                        static_cast<std::uint16_t>(circulantIndex(owner));
                    continue;
                }
                if (probe == HorizontalTable::Probe::Dropped)
                    ++stats_.horizontalDrops;
            }
            const std::uint64_t bytes = graph_.edgeListBytes(v);
            const unsigned slot = circulantIndex(owner);
            batch_ids[idx] = static_cast<std::uint16_t>(slot);
            batches[slot].bytes += bytes;
            batches[slot].lists += 1;
            chunk.addFetchedBytes(bytes);
            // Admission attempt after the fetch.
            if (cache_.insert(v)) {
                ++stats_.staticCacheInsertions;
                if (replacement)
                    stats_.cacheNs += cost.replacementAllocNs;
            }
        }

        for (unsigned slot = 1; slot < numUnits_; ++slot) {
            Batch &batch = batches[slot];
            if (batch.lists == 0)
                continue;
            const unsigned owner = owners[slot];
            const NodeId dst = owner / unitsPerNode();
            batch.commNs = engine_.fabric_.recordTransfer(
                node_, dst, batch.bytes, batch.lists);
            if (dst != node_) {
                stats_.bytesReceived += batch.bytes;
                ++stats_.messagesSent;
                stats_.listsFetchedRemote += batch.lists;
                // Attribute send-side bytes to the owner unit.
                engine_.stats_.nodes[owner].bytesSent += batch.bytes;
            }
        }
    }

    /**
     * Process a filled chunk: fetch, then extend level by level
     * (descending whenever the child chunk fills, §4.2), and fold
     * the batch timeline through the circulant pipeline (§4.3).
     */
    void
    processLevel(int level)
    {
        Chunk &chunk = chunks_[level];
        const sim::CostModel &cost = engine_.config_.cost;
        ++stats_.chunksProcessed;
        stats_.schedulerNs += cost.chunkSetupNs;
        stats_.peakChunkBytes =
            std::max(stats_.peakChunkBytes, chunk.modeledBytes());

        std::vector<Batch> batches;
        fetchPhase(level, batches);

        // Mini-batch dynamic dispatch overhead (§6).
        const auto mini_batches = (chunk.size()
            + engine_.config_.miniBatchSize - 1)
            / engine_.config_.miniBatchSize;
        stats_.schedulerNs += static_cast<double>(mini_batches)
            * cost.miniBatchDispatchNs / cores_;

        const bool terminal = level == chunkedLevels_ - 1;
        for (std::uint32_t idx = 0; idx < chunk.size(); ++idx) {
            const double work_before = workNsScratch_;
            workNsScratch_ = 0;
            if (terminal)
                extendTerminal(level, idx);
            else
                extendInner(level, idx);
            batches[batchIds_[level][idx]].workNs += workNsScratch_;
            workNsScratch_ = work_before;

            if (!terminal && chunks_[level + 1].full()) {
                processLevel(level + 1);
                chunks_[level + 1].reset();
                tables_[level + 1].clear();
            }
        }
        if (!terminal && !chunks_[level + 1].empty()) {
            processLevel(level + 1);
            chunks_[level + 1].reset();
            tables_[level + 1].clear();
        }

        // Circulant pipeline: computation of batch i overlaps the
        // fetch of batch i+1; fetches are issued eagerly in order.
        double comm_done = 0;
        double finish = 0;
        double total_work = 0;
        double total_comm = 0;
        for (unsigned slot = 0; slot < numUnits_; ++slot) {
            // Without NUMA awareness, communication buffers and the
            // graph partition live in interleaved memory, slowing
            // the transfer path along with computation.
            const double comm = batches[slot].commNs * penalty_;
            comm_done += comm;
            total_comm += comm;
            const double work = batches[slot].workNs / cores_ * penalty_;

            total_work += work;
            finish = std::max(finish, comm_done) + work;
        }
        stats_.computeNs += total_work;
        stats_.commTotalNs += total_comm;
        stats_.commExposedNs += finish - total_work;
    }

    /** Walk parent pointers to recover the embedding's vertices. */
    void
    recoverVertices(int level, std::uint32_t idx)
    {
        std::uint32_t cursor = idx;
        for (int l = level; l >= 0; --l) {
            vertices_[l] = chunks_[l].vertex(cursor);
            cursor = chunks_[l].parent(cursor);
        }
    }

    /**
     * Materialize the candidate set for position @p t of the
     * embedding (level @p t - 1, index @p idx) into out.
     */
    void
    buildCandidates(int t, std::uint32_t idx, std::vector<VertexId> &out)
    {
        const PlanLevel &level = plan_.levels[t];
        const sim::CostModel &cost = engine_.config_.cost;
        WorkItems work = 0;
        PositionMask dep = level.depMask;
        if (level.reuseParent) {
            const auto stored = chunks_[t - 1].result(idx);
            out.assign(stored.begin(), stored.end());
            dep = level.extraDepMask;
            ++stats_.verticalReuses;
        } else {
            std::size_t lists = 0;
            for (int j = 0; j < t; ++j)
                if ((dep >> j) & 1u)
                    listBuf_[lists++] = graph_.neighbors(vertices_[j]);
            work += intersectMany({listBuf_.data(), lists}, out,
                                  scratchA_);
            dep = 0;
        }
        for (int j = 0; j < t; ++j) {
            if ((dep >> j) & 1u) {
                scratchB_.clear();
                work += intersectInto(out, graph_.neighbors(vertices_[j]),
                                      scratchB_);
                out.swap(scratchB_);
            }
        }
        const PositionMask anti = level.reuseParent ? level.extraAntiMask
                                                    : level.antiMask;
        for (int j = 0; j < t; ++j) {
            if ((anti >> j) & 1u) {
                scratchB_.clear();
                work += subtractInto(out, graph_.neighbors(vertices_[j]),
                                     scratchB_);
                out.swap(scratchB_);
            }
        }
        stats_.intersectionItems += work;
        workNsScratch_ += static_cast<double>(work)
            * cost.intersectPerItemNs;
    }

    /** Per-candidate filters (distinctness, restrictions, labels). */
    bool
    accept(int t, VertexId candidate)
    {
        const PlanLevel &level = plan_.levels[t];
        workNsScratch_ += engine_.config_.cost.candidateCheckNs;
        if (level.hasLabelFilter
            && graph_.label(candidate) != level.labelFilter)
            return false;
        for (int j = 0; j < t; ++j) {
            if (vertices_[j] == candidate)
                return false;
            if (((level.greaterThanMask >> j) & 1u)
                && candidate <= vertices_[j])
                return false;
        }
        return true;
    }

    /** Extend a non-terminal embedding, filling the child chunk. */
    void
    extendInner(int level, std::uint32_t idx)
    {
        recoverVertices(level, idx);
        const int t = level + 1;
        const PlanLevel &next = plan_.levels[t];
        buildCandidates(t, idx, candidates_);
        Chunk &child = chunks_[t];
        // Siblings share one stored copy of the candidate set; it is
        // appended lazily when the first child materializes.
        std::uint32_t result_offset = 0;
        bool result_stored = false;
        for (const VertexId candidate : candidates_) {
            if (!accept(t, candidate))
                continue;
            const std::uint32_t child_idx =
                child.add(candidate, idx, next.fetchEdgeList);
            ++stats_.embeddingsCreated;
            workNsScratch_ += engine_.config_.cost.embeddingCreateNs;
            if (next.storeResult) {
                if (!result_stored) {
                    result_offset = child.appendResult(candidates_);
                    result_stored = true;
                }
                child.setResultRef(
                    child_idx, result_offset,
                    static_cast<std::uint32_t>(candidates_.size()));
            }
        }
    }

    /** Terminal extension: scan-count or IEP (no materialization). */
    void
    extendTerminal(int level, std::uint32_t idx)
    {
        recoverVertices(level, idx);
        if (plan_.hasIep) {
            terminalIep(level + 1, idx);
            return;
        }
        const int t = plan_.pattern.size() - 1;
        buildCandidates(t, idx, candidates_);
        for (const VertexId candidate : candidates_) {
            if (!accept(t, candidate))
                continue;
            ++raw_;
            workNsScratch_ += engine_.config_.cost.terminalNs;
            if (visitor_) {
                vertices_[t] = candidate;
                visitor_->match({vertices_.data(),
                                 static_cast<std::size_t>(t + 1)});
            }
        }
    }

    /** IEP terminal block over the matched prefix (GraphPi, §IEP). */
    void
    terminalIep(int prefix_len, std::uint32_t idx)
    {
        const sim::CostModel &cost = engine_.config_.cost;
        std::array<std::int64_t, 32> sizes{};
        for (std::size_t m = 0; m < plan_.iep.masks.size(); ++m) {
            const PositionMask mask = plan_.iep.masks[m];
            const bool reuse = !plan_.iep.maskReuse.empty()
                && plan_.iep.maskReuse[m];
            std::size_t lists = 0;
            if (reuse) {
                // Vertical sharing into the IEP: start from this
                // embedding's stored candidate set.
                listBuf_[lists++] =
                    chunks_[prefix_len - 1].result(idx);
                ++stats_.verticalReuses;
                for (int j = 0; j < prefix_len; ++j)
                    if ((plan_.iep.maskExtra[m] >> j) & 1u)
                        listBuf_[lists++] =
                            graph_.neighbors(vertices_[j]);
            } else {
                for (int j = 0; j < prefix_len; ++j)
                    if ((mask >> j) & 1u)
                        listBuf_[lists++] =
                            graph_.neighbors(vertices_[j]);
            }
            Count count = 0;
            const WorkItems work = intersectManyCount(
                {listBuf_.data(), lists}, count, scratchA_, scratchB_);
            stats_.intersectionItems += work;
            workNsScratch_ += static_cast<double>(work)
                * cost.intersectPerItemNs;
            std::int64_t size = static_cast<std::int64_t>(count);
            for (int j = 0; j < prefix_len; ++j) {
                bool inside = true;
                for (std::size_t l = 0; l < lists && inside; ++l)
                    inside = contains(listBuf_[l], vertices_[j]);
                if (inside)
                    --size;
            }
            sizes[m] = size;
        }
        for (const IepBlock::Term &term : plan_.iep.terms) {
            std::int64_t product = term.coefficient;
            for (const int mask_idx : term.maskIndex)
                product *= sizes[mask_idx];
            raw_ += product;
        }
        workNsScratch_ += cost.terminalNs;
    }

    Engine &engine_;
    const Graph &graph_;
    const ExtendPlan &plan_;
    MatchVisitor *visitor_;
    unsigned unit_;
    NodeId node_;
    sim::NodeStats &stats_;
    DataCache &cache_;
    unsigned numUnits_;
    unsigned cores_;
    double penalty_ = 1.0;
    int chunkedLevels_ = 0;

    std::vector<Chunk> chunks_;
    std::vector<HorizontalTable> tables_;
    std::vector<std::vector<std::uint16_t>> batchIds_;

    std::array<VertexId, kMaxPatternSize> vertices_{};
    std::array<std::span<const VertexId>, kMaxPatternSize> listBuf_{};
    std::vector<VertexId> candidates_;
    std::vector<VertexId> scratchA_;
    std::vector<VertexId> scratchB_;

    std::int64_t raw_ = 0;
    double workNsScratch_ = 0;
};

Engine::Engine(const Graph &g, const EngineConfig &config)
    : graph_(&g), config_(config),
      partition_(g, config.cluster.numNodes,
                 config.numaAware ? config.cluster.socketsPerNode : 1),
      fabric_(partition_, config_.cost)
{
    stats_.nodes.resize(partition_.numUnits());
    const double per_node = config_.cacheFraction
        * static_cast<double>(g.sizeBytes());
    const std::uint64_t per_unit = static_cast<std::uint64_t>(
        per_node / partition_.socketsPerNode());
    for (unsigned u = 0; u < partition_.numUnits(); ++u)
        caches_.push_back(std::make_unique<DataCache>(
            g, config_.cachePolicy, per_unit,
            config_.cacheDegreeThreshold));
}

Engine::~Engine() = default;

unsigned
Engine::computeCoresPerUnit() const
{
    const unsigned per_node = config_.cluster.computeCoresPerNode();
    if (!config_.numaAware)
        return per_node;
    return std::max(1u, per_node / config_.cluster.socketsPerNode);
}

Count
Engine::run(const ExtendPlan &plan)
{
    return run(plan, nullptr);
}

Count
Engine::run(const ExtendPlan &plan, MatchVisitor *visitor)
{
    if (visitor) {
        KHUZDUL_REQUIRE(!plan.hasIep,
                        "visitors cannot observe IEP-folded embeddings");
        KHUZDUL_REQUIRE(plan.countDivisor == 1,
                        "visitors need complete symmetry breaking");
    }
    stats_.startupNs += config_.cost.engineStartupNs;
    std::int64_t raw = 0;
    for (unsigned u = 0; u < partition_.numUnits(); ++u) {
        UnitRun unit_run(*this, u, plan, visitor, stats_.nodes[u]);
        raw += unit_run.run();
    }
    KHUZDUL_CHECK(raw >= 0, "negative raw count");
    KHUZDUL_CHECK(raw % plan.countDivisor == 0,
                  "raw count " << raw << " not divisible by "
                  << plan.countDivisor);
    return static_cast<Count>(raw / plan.countDivisor);
}

void
Engine::resetStats()
{
    stats_ = sim::RunStats{};
    stats_.nodes.resize(partition_.numUnits());
    fabric_.reset();
    for (auto &cache : caches_)
        cache->resetCounters();
}

} // namespace core
} // namespace khuzdul
