#include "core/engine.hh"

#include <algorithm>
#include <chrono>
#include <span>

#include <limits>

#include "core/chunk.hh"
#include "core/circulant.hh"
#include "core/extender.hh"
#include "core/horizontal.hh"
#include "core/parallel/cancel.hh"
#include "core/parallel/thread_pool.hh"
#include "core/recovery/recovery.hh"
#include "core/steal/steal.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace core
{

/**
 * The BFS-DFS hybrid traversal (§4.2) of one execution unit: a
 * stack of fixed-budget chunks, DFS across levels, BFS within a
 * chunk.  Edge-list resolution is delegated to the unit's
 * EdgeListProvider, batching/timing to the per-level
 * CirculantScheduler, extension math to the PlanExtender.
 *
 * One explorer is one host-parallel task (§6): it only ever writes
 * its unit's NodeStats slot, its fabric delta journal, its slice of
 * the sent-bytes ledger and its buffering trace sink — never shared
 * engine state — so any number of explorers may run concurrently.
 */
class HybridExplorer
{
  public:
    /** Replays of one chunk before declaring the plan unrecoverable
     *  (finite triggers and bounded windows converge far earlier). */
    static constexpr unsigned kMaxChunkReplays = 64;

    HybridExplorer(Engine &engine, unsigned unit,
                   const ExtendPlan &plan, MatchVisitor *visitor,
                   sim::NodeStats &stats,
                   sim::TransferRecorder &recorder,
                   std::span<std::uint64_t> sent_bytes,
                   sim::TraceSink &sink,
                   std::vector<ChunkRecord> *steal_ledger,
                   CrashReport *crash_report)
        : engine_(engine), graph_(*engine.graph_), plan_(plan),
          visitor_(visitor), unit_(unit), stats_(stats),
          recorder_(recorder), sentBytes_(sent_bytes), sink_(sink),
          stealLedger_(steal_ledger), crash_(crash_report),
          provider_(*engine.providers_[unit]),
          faults_(engine.faultSessions_.empty()
                      ? nullptr
                      : engine.faultSessions_[unit].get()),
          extender_(*engine.graph_, plan, engine.config_.cost,
                    engine.config_.kernelMode),
          cores_(engine.computeCoresPerUnit()),
          deadlineNs_(engine.session_.deadlineNs),
          deadlineStartNs_(stats.totalNs()),
          cancel_(engine.cancel_)
    {
        const int n = plan.pattern.size();
        chunkedLevels_ = plan.hasIep ? plan.numMaterializedLevels()
                                     : std::max(1, n - 1);
        for (int i = 0; i < chunkedLevels_; ++i) {
            chunks_.emplace_back(engine.config_.chunkBytes);
            tables_.emplace_back(engine.config_.horizontalSlots);
            scheds_.emplace_back(unit, engine.partition_.numUnits(),
                                 engine.partition_.socketsPerNode());
        }
        if (crash_)
            chunkOpens_.assign(chunkedLevels_, 0);
        penalty_ = 1.0;
        if (!engine.config_.numaAware
            && engine.config_.cluster.socketsPerNode >= 2)
            penalty_ = engine.config_.numaComputePenalty;
    }

    /** Explore every tree rooted at this unit's owned vertices. */
    std::int64_t
    run()
    {
        const auto &roots = engine_.partition_.ownedVertices(unit_);
        const PlanLevel &root_level = plan_.levels[0];

        if (plan_.pattern.size() == 1) {
            for (const VertexId v : roots)
                if (!root_level.hasLabelFilter
                    || graph_.label(v) == root_level.labelFilter)
                    ++raw_;
            return raw_;
        }

        std::size_t cursor = 0;
        while (cursor < roots.size()) {
            Chunk &chunk0 = chunks_[0];
            while (cursor < roots.size() && !chunk0.full()) {
                const VertexId v = roots[cursor++];
                if (root_level.hasLabelFilter
                    && graph_.label(v) != root_level.labelFilter)
                    continue;
                chunk0.add(v, kNoParent, root_level.fetchEdgeList);
                ++stats_.embeddingsCreated;
            }
            if (!chunk0.empty()) {
                processLevel(0);
                checkpoint();
            }
            chunk0.reset();
            tables_[0].clear();
        }
        if (crash_ && crashed_)
            crash_->lost = std::move(sinceCheckpoint_);
        return raw_;
    }

  private:
    sim::TraceSink &trace() { return sink_; }

    /** Crash trigger (DESIGN.md §9): the unit dies the instant it
     *  opens its K-th chunk of level L, read purely from its own
     *  chunk ordinals — bit-identical at every thread count.  The
     *  host keeps enumerating (counts stay exact by construction);
     *  everything this ghost run charges past the crash point is
     *  restored away post-merge, and its chunks become the orphans
     *  survivors adopt. */
    void
    maybeCrash(int level)
    {
        if (!crash_ || crashed_)
            return;
        const std::uint64_t ordinal = ++chunkOpens_[level];
        for (const sim::FaultSpec &f :
             engine_.config_.faults.specs()) {
            if (f.kind != sim::FaultKind::Crash || f.unit != unit_
                || f.level != level || f.chunk != ordinal)
                continue;
            crashed_ = true;
            crash_->unit = unit_;
            crash_->level = level;
            crash_->chunkOrdinal = ordinal;
            crash_->computeNs = stats_.computeNs;
            crash_->commExposedNs = stats_.commExposedNs;
            crash_->commTotalNs = stats_.commTotalNs;
            crash_->schedulerNs = stats_.schedulerNs;
            crash_->cacheNs = stats_.cacheNs;
            trace().emit({sim::PhaseEvent::UnitCrashed, unit_,
                          level, ordinal, 0});
            return;
        }
    }

    /** Level-0 barrier checkpoint (DESIGN.md §9): the DFS stack is
     *  drained here, so the partial count and the closed-chunk
     *  ledger form a consistent cut.  Chunks closed before this cut
     *  are durable and can never be lost to a later crash. */
    void
    checkpoint()
    {
        if (!crash_ || crashed_)
            return;
        const double charge = engine_.config_.cost.checkpointNs;
        stats_.schedulerNs += charge;
        stats_.checkpointOverheadNs += charge;
        ++stats_.checkpointsTaken;
        trace().emit({sim::PhaseEvent::Checkpoint, unit_, 0,
                      sinceCheckpoint_.size(), 0});
        sinceCheckpoint_.clear();
    }

    /** Communication phase of one chunk: resolve every embedding's
     *  new edge list through the provider chain; Remote outcomes
     *  join the circulant scheduler's per-owner batches.
     *  @return false when a batch exhausted its retry budget and
     *  the chunk must be replayed (§9). */
    bool
    fetchPhase(int level)
    {
        Chunk &chunk = chunks_[level];
        CirculantScheduler &sched = scheds_[level];
        sched.begin(chunk.size());
        // The active-list column holds exactly the embeddings that
        // fetch, in insertion order — one contiguous run, no
        // per-embedding flag test (same resolution order as the flag
        // scan, so modeled outcomes are unchanged).
        const std::span<const VertexId> verts = chunk.vertexColumn();
        for (const std::uint32_t idx : chunk.fetchList()) {
            const Resolution r = provider_.resolve(
                unit_, verts[idx], &tables_[level], stats_,
                level, faults_);
            if (r.kind == ResolutionKind::Shared) {
                sched.noteShared(idx, r.owner);
            } else if (r.kind == ResolutionKind::Remote) {
                sched.noteRemote(idx, r.owner, r.bytes);
                chunk.addFetchedBytes(r.bytes);
            }
        }
        return sched.issue(recorder_, stats_, sentBytes_, trace(),
                           level, faults_, &engine_.config_.cost);
    }

    /** Run the communication phase until it succeeds, replaying the
     *  chunk after every retry exhaustion: the wasted attempt time
     *  of a failed phase is folded as pure communication (no work
     *  overlapped it — extension never started), the chunk's
     *  horizontal table is rebuilt, and the phase re-runs from
     *  resolution.  A chunk is never dropped, so counts stay exact
     *  under any fault plan; a defensive replay budget turns a plan
     *  with no recovery path into a FabricFault. */
    void
    fetchWithReplay(int level)
    {
        unsigned replays = 0;
        while (!fetchPhase(level)) {
            const auto wasted =
                scheds_[level].pipeline(cores_, penalty_);
            stats_.commTotalNs += wasted.commNs;
            stats_.commExposedNs += wasted.exposedNs;
            ++stats_.chunksReplayed;
            ++replays;
            trace().emit({sim::PhaseEvent::ChunkReplayed, unit_,
                          level, chunks_[level].size(), replays});
            tables_[level].clear();
            if (replays >= kMaxChunkReplays)
                throw sim::FabricFault(
                    "chunk replay budget exhausted: fault plan "
                    "leaves no recovery path");
        }
    }

    /** Process a filled chunk: fetch, then extend level by level
     *  (descending whenever the child chunk fills, §4.2), and fold
     *  the batch timeline through the circulant pipeline (§4.3). */
    void
    processLevel(int level)
    {
        if (cancel_ && cancel_->cancelled())
            throw sim::QueryCancelled(
                "query cancelled at a chunk boundary");
        maybeCrash(level);
        Chunk &chunk = chunks_[level];
        const sim::CostModel &cost = engine_.config_.cost;
        ++stats_.chunksProcessed;
        stats_.schedulerNs += cost.chunkSetupNs;
        stats_.peakChunkBytes =
            std::max(stats_.peakChunkBytes, chunk.modeledBytes());
        trace().emit({sim::PhaseEvent::ChunkOpen, unit_, level,
                      chunk.size(), chunk.modeledBytes()});

        fetchWithReplay(level);

        stats_.schedulerNs += CirculantScheduler::dispatchOverheadNs(
            chunk.size(), engine_.config_.miniBatchSize,
            cost.miniBatchDispatchNs, cores_);

        const bool terminal = level == chunkedLevels_ - 1;
        trace().emit({sim::PhaseEvent::ExtendStart, unit_, level,
                      chunk.size(), 0});
        for (std::uint32_t idx = 0; idx < chunk.size(); ++idx) {
            const double work_before = extender_.exchangeWork(0);
            if (terminal)
                raw_ += extender_.extendTerminal(chunks_, level, idx,
                                                 visitor_, stats_);
            else
                extender_.extendInner(chunks_, chunks_[level + 1],
                                      level, idx, stats_);
            scheds_[level].chargeWork(idx, extender_.workNs());
            extender_.exchangeWork(work_before);

            if (!terminal && chunks_[level + 1].full()) {
                processLevel(level + 1);
                chunks_[level + 1].reset();
                tables_[level + 1].clear();
            }
        }
        if (!terminal && !chunks_[level + 1].empty()) {
            processLevel(level + 1);
            chunks_[level + 1].reset();
            tables_[level + 1].clear();
        }
        trace().emit({sim::PhaseEvent::ExtendEnd, unit_, level,
                      chunk.size(), 0});

        const auto t = scheds_[level].pipeline(cores_, penalty_);
        stats_.computeNs += t.computeNs;
        stats_.commTotalNs += t.commNs;
        stats_.commExposedNs += t.exposedNs;
        if (stealLedger_ || crash_) {
            // Donation/recovery ledgers (DESIGN.md §9, §11):
            // remember what this chunk charged, and the fault-free
            // prices a healthy peer re-running it would pay.
            const ChunkRecord rec = [&] {
                const auto base =
                    scheds_[level].basePipeline(cores_, penalty_);
                return ChunkRecord{
                    unit_, level, chunk.size(),
                    columnWireBytes(chunk.size(), level),
                    t.computeNs, t.commNs, t.exposedNs, base.commNs,
                    base.exposedNs};
            }();
            if (crashed_) {
                // Past the crash point the chunk never ran on this
                // unit: it is an orphan a survivor adopts.
                crash_->orphans.push_back(rec);
            } else {
                if (stealLedger_)
                    stealLedger_->push_back(rec);
                if (crash_)
                    sinceCheckpoint_.push_back(rec);
            }
        }
        flushKernelCounters(level);
        trace().emit({sim::PhaseEvent::ChunkClose, unit_, level,
                      chunk.size(), 0});
        // The deadline is modeled state (the unit's own run-local
        // clock), so whether and where it fires is a pure function
        // of the config — unlike cancellation above, which is a
        // host-side request and makes no determinism claim.
        if (deadlineNs_ > 0
            && stats_.totalNs() - deadlineStartNs_ > deadlineNs_)
            throw sim::DeadlineExceeded(
                "modeled deadline exceeded at a chunk boundary "
                "(--deadline)");
    }

    /** Fold the dispatcher tallies accumulated since the previous
     *  flush into stats, and emit one KernelDispatch trace event
     *  carrying the total set-operation delta of the chunk (not the
     *  per-kind split: which kernel ran is host-dependent once the
     *  SIMD tier exists, but the number of set operations is not, so
     *  the event stays bit-identical across modes and builds). */
    void
    flushKernelCounters(int level)
    {
        static_assert(
            std::tuple_size_v<decltype(sim::NodeStats::kernelCalls)>
                == kNumKernelKinds,
            "NodeStats::kernelCalls must track core::KernelKind");
        const KernelCounters &now = extender_.kernelCounters();
        std::uint64_t total_delta = 0;
        for (std::size_t k = 0; k < kNumKernelKinds; ++k) {
            const std::uint64_t delta =
                now.calls[k] - lastKernelCalls_[k];
            if (delta == 0)
                continue;
            stats_.kernelCalls[k] += delta;
            total_delta += delta;
            lastKernelCalls_[k] = now.calls[k];
        }
        if (total_delta != 0)
            trace().emit({sim::PhaseEvent::KernelDispatch, unit_,
                          level, total_delta, 0});
    }

    Engine &engine_;
    const Graph &graph_;
    const ExtendPlan &plan_;
    MatchVisitor *visitor_;
    unsigned unit_;
    sim::NodeStats &stats_;
    sim::TransferRecorder &recorder_;
    std::span<std::uint64_t> sentBytes_;
    sim::TraceSink &sink_;
    std::vector<ChunkRecord> *stealLedger_;
    CrashReport *crash_;
    EdgeListProvider &provider_;
    sim::FaultSession *faults_;
    PlanExtender extender_;
    unsigned cores_;
    double deadlineNs_;
    double deadlineStartNs_;
    const CancelToken *cancel_;
    double penalty_ = 1.0;
    int chunkedLevels_ = 0;
    bool crashed_ = false;

    /** Per-level 1-based chunk-open ordinals (crash triggers). */
    std::vector<std::uint64_t> chunkOpens_;

    /** Chunks closed since the last checkpoint: lost if we crash. */
    std::vector<ChunkRecord> sinceCheckpoint_;

    std::vector<Chunk> chunks_;
    std::vector<HorizontalTable> tables_;
    std::vector<CirculantScheduler> scheds_;

    /** Dispatcher tallies already folded into stats/trace. */
    std::array<std::uint64_t, kNumKernelKinds> lastKernelCalls_{};

    std::int64_t raw_ = 0;
};

GraphSetup
EngineConfig::graphSetup() const
{
    GraphSetup setup;
    setup.cluster = cluster;
    setup.cost = cost;
    setup.cachePolicy = cachePolicy;
    setup.cacheFraction = cacheFraction;
    setup.cacheDegreeThreshold = cacheDegreeThreshold;
    setup.horizontalSharing = horizontalSharing;
    setup.horizontalSlots = horizontalSlots;
    setup.numaAware = numaAware;
    setup.numaComputePenalty = numaComputePenalty;
    setup.hubBitmapDegreeThreshold = hubBitmapDegreeThreshold;
    setup.hubBitmapMaxBytes = hubBitmapMaxBytes;
    return setup;
}

SessionConfig
EngineConfig::session() const
{
    SessionConfig session;
    session.chunkBytes = chunkBytes;
    session.miniBatchSize = miniBatchSize;
    session.kernelMode = kernelMode;
    session.hostThreads = hostThreads;
    session.faults = faults;
    session.stealEnabled = stealEnabled;
    session.stealBacklogThresholdNs = stealBacklogThresholdNs;
    session.deadlineNs = deadlineNs;
    session.checkpointEnabled = checkpointEnabled;
    session.maxQueryRetries = maxQueryRetries;
    return session;
}

namespace
{

/** The flat view HybridExplorer and accessors read: graph half from
 *  the context, query half from the session. */
EngineConfig
composeConfig(const GraphSetup &setup, const SessionConfig &session)
{
    EngineConfig config;
    config.cluster = setup.cluster;
    config.cost = setup.cost;
    config.cachePolicy = setup.cachePolicy;
    config.cacheFraction = setup.cacheFraction;
    config.cacheDegreeThreshold = setup.cacheDegreeThreshold;
    config.horizontalSharing = setup.horizontalSharing;
    config.horizontalSlots = setup.horizontalSlots;
    config.numaAware = setup.numaAware;
    config.numaComputePenalty = setup.numaComputePenalty;
    config.hubBitmapDegreeThreshold = setup.hubBitmapDegreeThreshold;
    config.hubBitmapMaxBytes = setup.hubBitmapMaxBytes;
    config.chunkBytes = session.chunkBytes;
    config.miniBatchSize = session.miniBatchSize;
    config.kernelMode = session.kernelMode;
    config.hostThreads = session.hostThreads;
    config.faults = session.faults;
    config.stealEnabled = session.stealEnabled;
    config.stealBacklogThresholdNs = session.stealBacklogThresholdNs;
    config.deadlineNs = session.deadlineNs;
    config.checkpointEnabled = session.checkpointEnabled;
    config.maxQueryRetries = session.maxQueryRetries;
    return config;
}

} // namespace

Engine::Engine(const Graph &g, const EngineConfig &config)
    : Engine(std::make_unique<GraphContext>(g, config.graphSetup()),
             nullptr, config.session())
{}

Engine::Engine(GraphContext &context, const SessionConfig &session)
    : Engine(nullptr, &context, session)
{}

Engine::Engine(std::unique_ptr<GraphContext> owned,
               GraphContext *context, const SessionConfig &session)
    : ownedContext_(std::move(owned)),
      context_(ownedContext_ ? ownedContext_.get() : context),
      graph_(&context_->graph()), session_(session),
      config_(composeConfig(context_->setup(), session)),
      partition_(context_->partition()),
      fabric_(partition_, config_.cost)
{
    const Graph &g = *graph_;
    config_.faults.validate(partition_.numNodes(),
                            partition_.numUnits());
    stats_.nodes.resize(partition_.numUnits());
    if ((config_.kernelMode == KernelMode::Auto
         || config_.kernelMode == KernelMode::Bitmap)
        && config_.hubBitmapMaxBytes > 0)
        context_->ensureHubBitmaps();
    const std::uint64_t per_unit = context_->cacheBytesPerUnit();
    for (unsigned u = 0; u < partition_.numUnits(); ++u) {
        unitSinks_.push_back(
            std::make_unique<sim::BufferingTraceSink>());
        caches_.push_back(std::make_unique<DataCache>(
            g, config_.cachePolicy, per_unit,
            config_.cacheDegreeThreshold));
        providers_.push_back(std::make_unique<EdgeListProvider>(
            g, partition_, caches_.back().get(),
            config_.horizontalSharing,
            EdgeListProvider::engineCosts(config_.cost,
                                          *caches_.back()),
            *unitSinks_.back()));
        providers_.back()->setResidency(&context_->residency());
        if (!config_.faults.empty())
            faultSessions_.push_back(
                std::make_unique<sim::FaultSession>(
                    config_.faults, partition_.numNodes()));
    }
}

Engine::~Engine() = default;

unsigned
Engine::computeCoresPerUnit() const
{
    const unsigned per_node = config_.cluster.computeCoresPerNode();
    if (!config_.numaAware)
        return per_node;
    return std::max(1u, per_node / config_.cluster.socketsPerNode);
}

Count
Engine::run(const ExtendPlan &plan)
{
    return run(plan, nullptr);
}

Count
Engine::run(const ExtendPlan &plan, MatchVisitor *visitor)
{
    if (visitor) {
        KHUZDUL_REQUIRE(!plan.hasIep,
                        "visitors cannot observe IEP-folded embeddings");
        KHUZDUL_REQUIRE(plan.countDivisor == 1,
                        "visitors need complete symmetry breaking");
    }
    stats_.startupNs += config_.cost.engineStartupNs;

    const unsigned units = partition_.numUnits();
    // Visitors are client UDFs of unknown thread-safety; their runs
    // stay sequential.  Counting runs use the configured cap.
    const unsigned threads = visitor
        ? 1u
        : std::min(ThreadPool::resolveThreadCount(config_.hostThreads),
                   units);
    // khuzdul-lint: allow(wall-clock) host observability: feeds RunStats::hostWallNs, excluded from toJson(false)
    const auto wall_start = std::chrono::steady_clock::now();

    // Per-unit isolation (§6): each unit journals fabric transfers
    // in a delta, attributes send-side bytes to a private ledger,
    // traces into its own buffering sink and writes doubles only
    // into its own NodeStats slot.  The same journals are used at
    // every thread count — including 1 — and merged in unit order
    // below, so modeled results are a pure function of the config,
    // never of the thread count or the interleaving.
    std::vector<sim::FabricDelta> deltas;
    deltas.reserve(units);
    for (unsigned u = 0; u < units; ++u)
        deltas.emplace_back(fabric_);
    std::vector<std::vector<std::uint64_t>> sent(
        units, std::vector<std::uint64_t>(units, 0));
    std::vector<std::int64_t> raws(units, 0);
    // Per-unit donation ledgers for the post-barrier steal pass
    // (DESIGN.md §11); each unit appends only to its own slot.
    std::vector<std::vector<ChunkRecord>> stealLedgers(
        session_.stealEnabled ? units : 0);
    // Per-unit crash reports for the post-barrier recovery pass
    // (DESIGN.md §9); chunkOrdinal == 0 marks an untouched slot.
    // A crash plan implies checkpointing; checkpointEnabled alone
    // arms the barriers (to measure fault-free overhead) without
    // any crash ever firing.
    const bool recovery_armed = session_.checkpointEnabled
        || config_.faults.hasCrash();
    std::vector<CrashReport> crashReports(
        recovery_armed ? units : 0);

    const auto run_unit = [&](std::size_t u) {
        unitSinks_[u]->clear(); // drop leftovers of a failed run
        HybridExplorer explorer(
            *this, static_cast<unsigned>(u), plan, visitor,
            stats_.nodes[u], deltas[u], sent[u], *unitSinks_[u],
            session_.stealEnabled ? &stealLedgers[u] : nullptr,
            recovery_armed ? &crashReports[u] : nullptr);
        raws[u] = explorer.run();
    };

    if (sharedPool_ && !visitor) {
        // Service mode: unit tasks go to the QueryService's shared
        // pool, where they interleave with co-running sessions'
        // units at task granularity.  run() blocks until this
        // session's units finish (the pool is reentrant).
        sharedPool_->run(units, run_unit);
    } else if (threads <= 1) {
        for (unsigned u = 0; u < units; ++u)
            run_unit(u);
    } else {
        if (!pool_ || pool_->workers() != threads)
            pool_ = std::make_unique<ThreadPool>(threads);
        pool_->run(units, run_unit);
    }

    // Ordered merge: replay each unit's trace buffer, fabric delta
    // (a configured byte cap throws here, in the same unit order it
    // would have sequentially) and send-side byte attribution.
    std::int64_t raw = 0;
    for (unsigned u = 0; u < units; ++u) {
        unitSinks_[u]->flushTo(tracer_);
        fabric_.apply(deltas[u]);
        for (unsigned o = 0; o < units; ++o)
            stats_.nodes[o].bytesSent += sent[u][o];
        raw += raws[u];
    }

    // Post-barrier recovery pass (DESIGN.md §9): runs strictly
    // after the ordered merge and before the steal pass, over
    // merged modeled state only — the same pure-function contract
    // as stealing.  Dead units are frozen at their crash snapshot
    // (the ghost charges of the host's continued enumeration are
    // restored away); their lost and orphaned chunks are adopted by
    // survivors at fault-free prices plus a handshake and the
    // fabric-priced column transfer.  Counts are never touched.
    std::vector<CrashReport> crashes;
    for (CrashReport &report : crashReports)
        if (report.chunkOrdinal != 0)
            crashes.push_back(std::move(report));
    if (!crashes.empty()) {
        for (const CrashReport &r : crashes) {
            sim::NodeStats &dead = stats_.nodes[r.unit];
            dead.computeNs = r.computeNs;
            dead.commExposedNs = r.commExposedNs;
            dead.commTotalNs = r.commTotalNs;
            dead.schedulerNs = r.schedulerNs;
            dead.cacheNs = r.cacheNs;
            dead.unitCrashes += 1;
            dead.chunksOrphaned += r.lost.size() + r.orphans.size();
        }
        std::vector<double> finish(units, 0);
        for (unsigned u = 0; u < units; ++u)
            finish[u] = stats_.nodes[u].totalNs();
        const RecoveryPlanner planner(fabric_);
        const auto adoptions = planner.plan(crashes, std::move(finish));
        const double handshake = config_.cost.adoptionHandshakeNs;
        const unsigned units_per_node = partition_.socketsPerNode();
        for (const AdoptionDecision &d : adoptions) {
            const ChunkRecord &rec = d.chunk;
            const NodeId an = d.adopter / units_per_node;
            const NodeId vn = d.victim / units_per_node;
            // khuzdul-lint: allow(fabric-mutation) adoption commit: the sequential post-merge pass IS the sanctioned entry point
            fabric_.recordTransfer(an, vn, rec.columnBytes, 1);
            sim::NodeStats &adopter = stats_.nodes[d.adopter];
            sim::NodeStats &victim = stats_.nodes[d.victim];
            // Mirror of the planner's finish[] update: the adopter
            // re-runs the chunk at fault-free prices from the
            // checkpointed columns.  Lost chunks are double-paid by
            // design — the dead unit's burned time stays in its
            // frozen snapshot AND the adopter replays the work,
            // which is exactly what re-execution from a checkpoint
            // costs.  The victim's frozen times are never touched;
            // only its send-side volume grows (the checkpoint store
            // on its node ships the columns).
            adopter.computeNs += rec.computeNs;
            adopter.commExposedNs += rec.baseExposedNs + d.transferNs;
            adopter.commTotalNs += rec.baseCommNs + d.transferNs;
            adopter.schedulerNs += handshake;
            adopter.bytesReceived += rec.columnBytes;
            adopter.messagesSent += 1;
            adopter.chunksAdopted += 1;
            adopter.adoptionBytesIn += rec.columnBytes;
            adopter.adoptionNs += handshake + d.transferNs;
            victim.bytesSent += rec.columnBytes;
            victim.adoptionBytesOut += rec.columnBytes;
            tracer_.emit({sim::PhaseEvent::ChunkAdopted, d.adopter,
                          rec.level, rec.embeddings, d.victim});
        }
    }

    // Post-barrier steal pass (DESIGN.md §11): rebalance tail
    // chunks from backlogged units onto idle ones.  Runs strictly
    // after the ordered merge, over merged modeled state only, so
    // the stolen schedule is the same pure function of the config
    // the rest of the modeled machine is.  Counts are never
    // touched — only modeled time, traffic and attribution move.
    if (session_.stealEnabled && units > 1) {
        std::vector<double> finish(units, 0);
        for (unsigned u = 0; u < units; ++u)
            finish[u] = stats_.nodes[u].totalNs();
        // Dead units neither donate nor steal: an empty ledger
        // disqualifies them as victims, an infinite finish as
        // thieves.  Their chunks already moved in the recovery pass.
        for (const CrashReport &r : crashes) {
            stealLedgers[r.unit].clear();
            finish[r.unit] = std::numeric_limits<double>::infinity();
        }
        const StealPlanner planner(
            fabric_, session_.stealBacklogThresholdNs);
        const auto decisions =
            planner.plan(std::move(stealLedgers), std::move(finish));
        const double handshake = config_.cost.stealHandshakeNs;
        const unsigned units_per_node = partition_.socketsPerNode();
        std::uint64_t steal_bytes = 0;
        for (const StealDecision &d : decisions) {
            const ChunkRecord &rec = d.chunk;
            const NodeId tn = d.thief / units_per_node;
            const NodeId vn = d.victim / units_per_node;
            tracer_.emit({sim::PhaseEvent::StealIssued, d.thief,
                          rec.level, rec.columnBytes, d.victim});
            // khuzdul-lint: allow(fabric-mutation) steal commit: the sequential post-merge pass IS the sanctioned entry point
            fabric_.recordTransfer(tn, vn, rec.columnBytes, 1);
            sim::NodeStats &thief = stats_.nodes[d.thief];
            sim::NodeStats &victim = stats_.nodes[d.victim];
            // Mirror of the planner's finish[] update: the thief
            // re-executes the chunk at fault-free prices plus the
            // column transfer; the victim sheds exactly what its
            // ledger recorded and keeps the handshake.  recoveryNs
            // and replay waste stay with the victim — the fault
            // history happened on its watch.
            thief.computeNs += rec.computeNs;
            thief.commExposedNs += rec.baseExposedNs + d.transferNs;
            thief.commTotalNs += rec.baseCommNs + d.transferNs;
            thief.schedulerNs += handshake;
            thief.bytesReceived += rec.columnBytes;
            thief.messagesSent += 1;
            thief.chunksStolen += 1;
            thief.stealBytesIn += rec.columnBytes;
            thief.stealOverheadNs += handshake + d.transferNs;
            victim.computeNs -= rec.computeNs;
            victim.commExposedNs -= rec.exposedNs;
            victim.commTotalNs -= rec.commNs;
            victim.schedulerNs += handshake;
            victim.bytesSent += rec.columnBytes;
            victim.chunksDonated += 1;
            victim.stealBytesOut += rec.columnBytes;
            victim.stealOverheadNs += handshake;
            steal_bytes += rec.columnBytes;
            tracer_.emit({sim::PhaseEvent::StealCompleted, d.thief,
                          rec.level, rec.embeddings, d.victim});
        }
        if (!decisions.empty())
            context_->absorbSteals(decisions.size(), steal_bytes);
    }

    // Cross-query residency observations (host block of the stats;
    // never part of the modeled dump).
    for (auto &provider : providers_) {
        stats_.sharedCacheProbes += provider->sharedProbes();
        stats_.sharedCacheHits += provider->sharedHits();
        provider->resetSharedCounters();
    }

    stats_.hostThreads = std::max(
        stats_.hostThreads,
        sharedPool_ && !visitor ? sharedPool_->workers() : threads);
    stats_.hostWallNs += std::chrono::duration<double, std::nano>(
        // khuzdul-lint: allow(wall-clock) host observability: feeds RunStats::hostWallNs, excluded from toJson(false)
        std::chrono::steady_clock::now() - wall_start)
                             .count();

    KHUZDUL_CHECK(raw >= 0, "negative raw count");
    KHUZDUL_CHECK(raw % plan.countDivisor == 0,
                  "raw count " << raw << " not divisible by "
                  << plan.countDivisor);
    return static_cast<Count>(raw / plan.countDivisor);
}

void
Engine::chargeQueryRetry(unsigned attempt)
{
    KHUZDUL_REQUIRE(attempt >= 1, "retry attempts are 1-based");
    double backoff = config_.cost.queryRetryBackoffNs;
    for (unsigned k = 1; k < attempt; ++k)
        backoff *= 2;
    stats_.startupNs += backoff;
    ++stats_.queryRetries;
    tracer_.emit({sim::PhaseEvent::QueryRetried, 0, 0, attempt, 0});
}

void
Engine::resetStats()
{
    stats_ = sim::RunStats{};
    stats_.nodes.resize(partition_.numUnits());
    // khuzdul-lint: allow(fabric-mutation) sequential ledger wipe between census patterns; no units in flight
    fabric_.reset();
    traceCounts_.reset();
    for (auto &sink : unitSinks_)
        sink->clear();
    for (auto &cache : caches_)
        cache->resetCounters();
    for (auto &provider : providers_)
        provider->resetSharedCounters();
    for (auto &session : faultSessions_)
        session->reset();
}

void
Engine::clearCaches()
{
    for (auto &cache : caches_)
        cache->clear();
    // A private context is this session's alone; a shared one
    // belongs to every co-running session and is never touched.
    if (ownedContext_)
        ownedContext_->clearCaches();
}

} // namespace core
} // namespace khuzdul
