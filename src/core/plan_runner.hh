/**
 * @file
 * Single-machine DFS plan interpreter.  This is the nested-loop
 * execution the paper's Figure 1 shows — the code shape Automine
 * and GraphPi compile to.  It backs the single-machine baselines
 * (AutomineIH, the Peregrine/Pangolin-like engines), the
 * replicated-graph GraphPi baseline, and the per-tree computation
 * of G-thinker; the distributed Khuzdul engine has its own chunked
 * interpreter in core/engine.hh.
 */

#ifndef KHUZDUL_CORE_PLAN_RUNNER_HH
#define KHUZDUL_CORE_PLAN_RUNNER_HH

#include <span>

#include "core/kernels/kernels.hh"
#include "core/visitor.hh"
#include "graph/graph.hh"
#include "pattern/plan.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace core
{

/** Observation hooks for baseline engines built on the runner. */
class RunnerHooks
{
  public:
    virtual ~RunnerHooks() = default;

    /** The enumeration just read the edge list of @p v. */
    virtual void onEdgeListAccess(VertexId v) { (void)v; }
};

/** Work and result counters of one runner invocation. */
struct RunnerResult
{
    /** Matches found, before dividing by plan.countDivisor. */
    std::int64_t rawCount = 0;

    /** Elements consumed by set kernels (compute-cost proxy). */
    WorkItems workItems = 0;

    /** Candidates examined against filters. */
    Count candidatesChecked = 0;

    /** Partial embeddings (internal tree nodes) visited. */
    Count embeddingsVisited = 0;

    void
    accumulate(const RunnerResult &other)
    {
        rawCount += other.rawCount;
        workItems += other.workItems;
        candidatesChecked += other.candidatesChecked;
        embeddingsVisited += other.embeddingsVisited;
    }
};

/**
 * Enumerate the embedding trees rooted at @p roots under @p plan.
 *
 * @param visitor optional; called per complete embedding (requires
 *        a plan without IEP and with countDivisor == 1).
 * @param hooks optional enumeration observer.
 */
RunnerResult runPlanDfs(const Graph &g, const ExtendPlan &plan,
                        std::span<const VertexId> roots,
                        MatchVisitor *visitor = nullptr,
                        RunnerHooks *hooks = nullptr);

/** Convenience: run from every vertex and apply the divisor. */
Count countWithPlan(const Graph &g, const ExtendPlan &plan);

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_PLAN_RUNNER_HH
