/**
 * @file
 * Circulant batch scheduling (§4.3).  Remote resolutions of one
 * chunk are grouped into per-owner batches ordered by circulant
 * position — owner (unit + i) mod N is batch i — so that across the
 * cluster every unit fetches from a different peer at every step.
 * The scheduler owns the slot assignment, the per-batch comm/work
 * ledgers, the handoff of batches to the fabric, and the pipelined
 * timeline fold
 *
 *     makespan = comm(b0) + Σ max(compute(b_i), comm(b_{i+1}))
 *
 * in which batch i's computation overlaps batch i+1's transfer.
 * One instance serves one (execution unit, chunk level) pair.
 */

#ifndef KHUZDUL_CORE_CIRCULANT_HH
#define KHUZDUL_CORE_CIRCULANT_HH

#include <cstdint>
#include <span>
#include <vector>

#include "sim/cost_model.hh"
#include "sim/fabric.hh"
#include "sim/faults.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace core
{

/** Per-owner batch grouping and pipeline timeline of one chunk. */
class CirculantScheduler
{
  public:
    /** Aggregate modeled time of one chunk's pipeline fold. */
    struct Timeline
    {
        double computeNs = 0;  ///< per-core extension work
        double commNs = 0;     ///< all transfer time (incl. hidden)
        double exposedNs = 0;  ///< transfer time not overlapped
    };

    CirculantScheduler(unsigned unit, unsigned num_units,
                       unsigned units_per_node);

    /** Circulant position of @p owner relative to this unit. */
    unsigned
    slotOf(unsigned owner) const
    {
        return (owner + numUnits_ - unit_) % numUnits_;
    }

    /** Owner unit fetched at circulant position @p slot. */
    unsigned
    ownerOf(unsigned slot) const
    {
        return (unit_ + slot) % numUnits_;
    }

    /** Start a chunk of @p num_embeddings (clears all ledgers). */
    void begin(std::uint32_t num_embeddings);

    /** Modeled dispatch cost of splitting @p num_embeddings into
     *  dynamically scheduled mini-batches over @p cores (§6). */
    static double
    dispatchOverheadNs(std::uint32_t num_embeddings,
                       unsigned mini_batch_size, double dispatch_ns,
                       unsigned cores)
    {
        const auto mini_batches =
            (num_embeddings + mini_batch_size - 1) / mini_batch_size;
        return static_cast<double>(mini_batches) * dispatch_ns / cores;
    }

    /** Embedding @p idx rides owner @p owner's batch without adding
     *  payload (horizontally shared fetch, §5.2). */
    void
    noteShared(std::uint32_t idx, unsigned owner)
    {
        slotOfEmbedding_[idx] =
            static_cast<std::uint16_t>(slotOf(owner));
    }

    /** Embedding @p idx adds a @p bytes list to @p owner's batch. */
    void noteRemote(std::uint32_t idx, unsigned owner,
                    std::uint64_t bytes);

    /**
     * Hand every non-empty batch to @p recorder in circulant order,
     * recording modeled transfer times, traffic attribution (the
     * receiving unit's @p stats plus send-side bytes on the owner's
     * slot of @p sent_bytes), and fetch-batch trace events.  Taking
     * a TransferRecorder and a sent-bytes ledger instead of the
     * fabric and whole-run stats keeps issue() writable from one
     * execution unit without touching another unit's state — the
     * contract the host-parallel runtime (§6) relies on.
     *
     * When @p faults is non-null (engine runs with a fault plan;
     * @p cost must then be non-null too), every cross-node batch is
     * a retry loop: a faulted attempt is charged (drop = the wasted
     * transfer, timeout/node-down = the timeout cost), backed off
     * exponentially (modeled, charged into the batch), and
     * re-attempted up to FaultPlan::maxRetries times.  Every attempt
     * is journalled through @p recorder, so the merged ledger prices
     * the failures in unit order, exactly like the byte cap.
     *
     * @return false when a batch exhausted its retry budget — the
     *         caller must replay the chunk (§9); already-charged
     *         attempt time stays in the batch ledgers for the
     *         caller to fold as wasted communication.
     */
    bool issue(sim::TransferRecorder &recorder, sim::NodeStats &stats,
               std::span<std::uint64_t> sent_bytes,
               sim::TraceSink &trace, int level,
               sim::FaultSession *faults = nullptr,
               const sim::CostModel *cost = nullptr);

    /** Convenience overload writing straight into the fabric and
     *  @p run (requester stats + owners' bytesSent). */
    bool issue(sim::Fabric &fabric, sim::RunStats &run,
               sim::TraceSink &trace, int level);

    /** Attribute @p work_ns of extension work to @p idx's batch. */
    void
    chargeWork(std::uint32_t idx, double work_ns)
    {
        batches_[slotOfEmbedding_[idx]].workNs += work_ns;
    }

    /**
     * Fold the batch ledgers through the pipeline: fetches are
     * issued eagerly in slot order and batch i's computation
     * (divided over @p cores, scaled by the NUMA @p penalty along
     * with the transfer path) overlaps batch i+1's transfer.
     */
    Timeline pipeline(unsigned cores, double penalty) const;

    /**
     * Same fold over the fault-free transfer prices: what this
     * chunk would have cost had no attempt faulted or been
     * degraded.  This is the donate/accept ledger the steal planner
     * (DESIGN.md §11) prices a migrated chunk with — a healthy
     * thief re-fetches the lists at clean prices, it does not
     * inherit the victim's fault history.
     */
    Timeline basePipeline(unsigned cores, double penalty) const;

  private:
    /** Transient per-owner batch ledger. */
    struct Batch
    {
        double commNs = 0;  ///< modeled transfer time of this batch
        /** Fault-free price of the batch: the clean transfer cost of
         *  the successful attempt only (no retries, no backoff, no
         *  degradation surcharge). */
        double baseCommNs = 0;
        double workNs = 0;  ///< raw single-core extension work
        std::uint64_t bytes = 0;
        std::uint64_t lists = 0;
    };

    Timeline foldPipeline(unsigned cores, double penalty,
                          double Batch::*comm_field) const;

    unsigned unit_;
    unsigned numUnits_;
    unsigned unitsPerNode_;
    NodeId node_;

    std::vector<Batch> batches_;
    std::vector<std::uint16_t> slotOfEmbedding_;
};

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_CIRCULANT_HH
