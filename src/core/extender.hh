/**
 * @file
 * The extension kernel of the chunked engine: everything one EXTEND
 * call does *after* its edge lists are available.  PlanExtender
 * recovers an embedding's vertices from the parent-pointer chain,
 * materializes candidate sets (with vertical computation sharing,
 * §5.1), applies the plan's per-candidate filters, and folds the
 * IEP terminal block — owning all scratch buffers so the explorer
 * loop in engine.cc stays a pure traversal.  Charged intersection
 * work accumulates in an exchangeable ledger that the explorer
 * attributes to the embedding's circulant batch.
 */

#ifndef KHUZDUL_CORE_EXTENDER_HH
#define KHUZDUL_CORE_EXTENDER_HH

#include <array>
#include <span>
#include <vector>

#include "core/chunk.hh"
#include "core/kernels/kernels.hh"
#include "core/visitor.hh"
#include "graph/graph.hh"
#include "pattern/plan.hh"
#include "sim/cost_model.hh"
#include "sim/stats.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace core
{

/** Per-unit extension state: vertices, candidates, scratch. */
class PlanExtender
{
  public:
    PlanExtender(const Graph &g, const ExtendPlan &plan,
                 const sim::CostModel &cost,
                 KernelMode kernel_mode = KernelMode::Auto)
        : graph_(&g), plan_(&plan), cost_(&cost),
          dispatcher_(kernel_mode, &g)
    {}

    /**
     * Walk parent pointers to recover the embedding's vertices.
     *
     * Children of one parent are contiguous in a chunk (the frontier
     * columns are filled in extension order), so sibling runs share
     * the whole recovered prefix: when the previous recovery at this
     * level had the same parent index the walk is skipped and only
     * the last vertex is refreshed.  The cached prefix can never go
     * stale across chunk refills — before any same-level recovery
     * can see a refilled chunk, an extension at the level above has
     * already re-run recovery there and retagged the cache.
     */
    void
    recoverVertices(const std::vector<Chunk> &chunks, int level,
                    std::uint32_t idx)
    {
        const std::uint32_t parent = chunks[level].parent(idx);
        if (level == prefixLevel_ && parent == prefixParent_
            && parent != kNoParent) {
            vertices_[level] = chunks[level].vertex(idx);
            ++prefixReuses_;
            return;
        }
        const std::span<const VertexId> col =
            chunks[level].vertexColumn();
        vertices_[level] = col[idx];
        std::uint32_t cursor = parent;
        for (int l = level - 1; l >= 0; --l) {
            vertices_[l] = chunks[l].vertex(cursor);
            cursor = chunks[l].parent(cursor);
        }
        prefixLevel_ = level;
        prefixParent_ = parent;
    }

    /** Host-side tally of sibling-run prefix reuses (bench probe;
     *  not part of the modeled state). */
    std::uint64_t prefixReuses() const { return prefixReuses_; }

    /**
     * Materialize the candidate set for position @p t of the
     * embedding.  @p stored is the parent's stored intermediate
     * result (used when the plan level reuses it, §5.1).
     */
    void buildCandidates(int t, std::span<const VertexId> stored,
                         sim::NodeStats &stats);

    /** Per-candidate filters (distinctness, restrictions, labels). */
    bool accept(int t, VertexId candidate);

    /**
     * IEP terminal block over the matched prefix (GraphPi, §IEP).
     * @return the raw-count contribution of this embedding.
     */
    std::int64_t iepTerminal(int prefix_len,
                             std::span<const VertexId> stored,
                             sim::NodeStats &stats);

    /** Extend non-terminal embedding (@p level, @p idx) of
     *  @p chunks, appending accepted children to @p child. */
    void extendInner(const std::vector<Chunk> &chunks, Chunk &child,
                     int level, std::uint32_t idx,
                     sim::NodeStats &stats);

    /**
     * Terminal extension of embedding (@p level, @p idx): IEP fold
     * or scan-count, delivering matches to @p visitor when set.
     * @return the raw-count contribution.
     */
    std::int64_t extendTerminal(const std::vector<Chunk> &chunks,
                                int level, std::uint32_t idx,
                                MatchVisitor *visitor,
                                sim::NodeStats &stats);

    /** The recovered/extended embedding (position-indexed). */
    std::array<VertexId, kMaxPatternSize> &vertices()
    {
        return vertices_;
    }

    const std::vector<VertexId> &candidates() const
    {
        return candidates_;
    }

    /** Charge @p ns of modeled work to the current ledger. */
    void addWork(double ns) { workNs_ += ns; }

    /** Swap the work ledger (explorer save/zero/restore per
     *  embedding so work lands on the right batch). */
    double
    exchangeWork(double value)
    {
        const double old = workNs_;
        workNs_ = value;
        return old;
    }

    double workNs() const { return workNs_; }

    /** Per-kind tallies of the kernels dispatched so far. */
    const KernelCounters &
    kernelCounters() const
    {
        return dispatcher_.counters();
    }

  private:
    const Graph *graph_;
    const ExtendPlan *plan_;
    const sim::CostModel *cost_;
    KernelDispatcher dispatcher_;

    std::array<VertexId, kMaxPatternSize> vertices_{};
    std::array<ListRef, kMaxPatternSize> listBuf_{};
    std::vector<VertexId> candidates_;
    std::vector<VertexId> scratchA_;
    std::vector<VertexId> scratchB_;
    double workNs_ = 0;
    int prefixLevel_ = -1;          ///< level of the cached prefix
    std::uint32_t prefixParent_ = kNoParent;
    std::uint64_t prefixReuses_ = 0;
};

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_EXTENDER_HH
