#include "core/service/service.hh"

#include <exception>
#include <utility>

#include "support/check.hh"

namespace khuzdul
{
namespace core
{

QueryService::QueryService(GraphContext &context,
                           const ServiceOptions &options)
    : context_(&context), options_(options),
      pool_(ThreadPool::resolveThreadCount(options.hostThreads))
{
    KHUZDUL_REQUIRE(options_.maxInFlight >= 1,
                    "service needs maxInFlight >= 1");
    dispatchers_.reserve(options_.maxInFlight);
    for (unsigned d = 0; d < options_.maxInFlight; ++d)
        dispatchers_.emplace_back([this] { dispatcherLoop(); });
}

QueryService::~QueryService()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &t : dispatchers_)
        t.join();
}

std::size_t
QueryService::submit(const ExtendPlan &plan,
                     const SessionConfig &session,
                     sim::TraceSink *sink)
{
    std::size_t id;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        KHUZDUL_CHECK(!stopping_,
                      "submit on a destructing QueryService");
        id = submittedCount_++;
        results_.emplace_back();
        results_.back().id = id;
        done_.push_back(false);
        cancelTokens_.push_back(std::make_shared<CancelToken>());
        pending_.push_back(PendingQuery{id, plan, session, sink,
                                        cancelTokens_.back()});
    }
    workAvailable_.notify_one();
    return id;
}

void
QueryService::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    queryDone_.wait(lock, [this] {
        return completedCount_ == submittedCount_;
    });
}

const QueryResult &
QueryService::result(std::size_t id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    KHUZDUL_REQUIRE(id < results_.size(), "unknown query id");
    KHUZDUL_CHECK(done_[id], "query still in flight; wait() first");
    return results_[id];
}

std::size_t
QueryService::submitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return submittedCount_;
}

std::size_t
QueryService::completed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return completedCount_;
}

bool
QueryService::finished(std::size_t id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return id < done_.size() && done_[id];
}

unsigned
QueryService::peakInFlight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return peakInFlight_;
}

void
QueryService::cancel(std::size_t id)
{
    std::shared_ptr<CancelToken> token;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        KHUZDUL_REQUIRE(id < cancelTokens_.size(),
                        "unknown query id");
        token = cancelTokens_[id];
    }
    token->cancel();
}

void
QueryService::dispatcherLoop()
{
    while (true) {
        PendingQuery query;
        std::size_t admission_index;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [this] {
                return stopping_ || !pending_.empty();
            });
            if (pending_.empty())
                return; // stopping and drained
            // FIFO admission: strictly the submission order.
            query = std::move(pending_.front());
            pending_.pop_front();
            admission_index = admittedCount_++;
            ++inFlight_;
            peakInFlight_ = std::max(peakInFlight_, inFlight_);
        }
        runOne(std::move(query), admission_index);
    }
}

void
QueryService::runOne(PendingQuery &&query,
                     std::size_t admission_index)
{
    QueryResult result;
    result.id = query.id;
    result.admissionIndex = admission_index;
    // Bounded whole-query retry (DESIGN.md §9): a failed session is
    // discarded and re-run as a fresh engine that carries the whole
    // modeled retry history — one exponential backoff charge per
    // prior failed attempt — so the surviving stats tell the full
    // story.  Cancellations are a user decision and never retried;
    // only the final attempt's ledger reaches the context.
    const unsigned max_retries = query.session.maxQueryRetries;
    unsigned attempt = 0;
    for (;;) {
        Engine engine(*context_, query.session);
        engine.setHostPool(&pool_);
        engine.setCancelToken(query.cancelToken.get());
        if (query.sink)
            engine.setTraceSink(query.sink);
        for (unsigned k = 1; k <= attempt; ++k)
            engine.chargeQueryRetry(k);
        bool retry = false;
        try {
            result.count = engine.run(query.plan);
            result.failed = false;
            result.error.clear();
        } catch (const sim::QueryCancelled &e) {
            result.failed = true;
            result.error = e.what();
        } catch (const std::exception &e) {
            result.failed = true;
            if (attempt < max_retries) {
                retry = true;
            } else if (max_retries > 0) {
                result.error = "retry budget exhausted after "
                    + std::to_string(attempt + 1)
                    + " attempts: " + e.what();
            } else {
                result.error = e.what();
            }
        }
        if (retry) {
            ++attempt;
            continue;
        }
        result.retries = attempt;
        result.stats = engine.stats();
        result.modeledJson = engine.stats().toJson(false);
        result.traceCounts.clear();
        result.traceCounts.reserve(sim::kNumPhaseEvents);
        for (std::size_t e = 0; e < sim::kNumPhaseEvents; ++e)
            result.traceCounts.push_back(engine.traceCounts().count(
                static_cast<sim::PhaseEvent>(e)));
        // Fold the query's attributed ledger into the context's
        // cumulative one (order-independent sums).
        context_->absorbTraffic(engine.fabric());
        break;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        results_[query.id] = std::move(result);
        done_[query.id] = true;
        ++completedCount_;
        --inFlight_;
    }
    queryDone_.notify_all();
}

} // namespace core
} // namespace khuzdul
