/**
 * @file
 * QueryService: the multi-query serving layer (DESIGN.md §10).
 *
 * One service wraps one GraphContext and schedules any number of
 * submitted queries onto a single shared work-stealing ThreadPool:
 *
 *   - admission control: at most maxInFlight queries execute at
 *     once; submissions beyond the bound queue FIFO and are
 *     admitted strictly in submission order;
 *   - fair unit-level interleaving: every admitted query is a
 *     per-query Engine session whose unit tasks run on the shared
 *     pool, where the pool's rotated seeding interleaves them with
 *     co-running queries' units at task granularity;
 *   - cross-query sharing: sessions probe the context's residency
 *     directory, so the "host" block of each query's stats reports
 *     how many of its remote fetches a long-lived deployment would
 *     have served from lists some earlier (or co-running) query
 *     already pulled in.
 *
 * Determinism contract (extends DESIGN.md §8): each query's modeled
 * results — its count, stats.toJson(false), its fabric ledger and
 * trace tallies — are bit-identical whether the query runs alone or
 * inside any workload mix, at any pool width, under any admission
 * order.  That holds because every modeled charge is sequenced by
 * the session's own deterministic ledgers (DataCaches, Fabric,
 * NodeStats, unit trace buffers); the only cross-query state is
 * host-side observability that no modeled path reads.
 */

#ifndef KHUZDUL_CORE_SERVICE_SERVICE_HH
#define KHUZDUL_CORE_SERVICE_SERVICE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/context.hh"
#include "core/engine.hh"
#include "core/parallel/cancel.hh"
#include "core/parallel/thread_pool.hh"
#include "pattern/plan.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace khuzdul
{
namespace core
{

/** QueryService tunables. */
struct ServiceOptions
{
    /** Queries executing concurrently; submissions beyond the
     *  bound wait FIFO (>= 1). */
    unsigned maxInFlight = 4;

    /** Workers of the shared unit pool (0 = all hardware
     *  threads).  Host-side only: modeled results are identical at
     *  every width. */
    unsigned hostThreads = 0;
};

/** Everything one finished query left behind. */
struct QueryResult
{
    /** Submission id (also the index into results()). */
    std::size_t id = 0;

    /** Embedding count (0 when failed). */
    Count count = 0;

    /** The session's cumulative stats, host block included. */
    sim::RunStats stats;

    /** stats.toJson(false): the purely modeled dump — the surface
     *  the determinism contract is stated (and tested) over. */
    std::string modeledJson;

    /** Per-event tallies of the session's trace stream. */
    std::vector<std::uint64_t> traceCounts;

    /** Order the query was admitted in (FIFO => equals id). */
    std::size_t admissionIndex = 0;

    /** Set when the session threw (e.g. an injected fault
     *  exhausted its retry budget, a modeled deadline elapsed, or
     *  the query was cancelled); error holds the message — typed
     *  failures keep their sim::DeadlineExceeded / QueryCancelled
     *  wording, and an exhausted retry budget is reported as
     *  "retry budget exhausted after N attempts: <last error>". */
    bool failed = false;
    std::string error;

    /** Whole-query retries spent (<= SessionConfig::maxQueryRetries;
     *  the surviving stats carry their modeled backoff). */
    unsigned retries = 0;
};

/**
 * A long-lived multi-query scheduler over one GraphContext.
 * Thread-safe: submit()/wait() may be called from any thread.
 */
class QueryService
{
  public:
    QueryService(GraphContext &context,
                 const ServiceOptions &options = {});

    /** Drains in-flight queries, then joins the dispatchers. */
    ~QueryService();

    QueryService(const QueryService &) = delete;
    QueryService &operator=(const QueryService &) = delete;

    GraphContext &context() { return *context_; }
    const ServiceOptions &options() const { return options_; }

    /**
     * Enqueue a query; returns its id.  The plan is copied.  An
     * optional @p sink observes the session's trace stream (it must
     * outlive completion; concurrent queries get distinct sessions,
     * so distinct sinks never interleave).
     */
    std::size_t submit(const ExtendPlan &plan,
                       const SessionConfig &session = {},
                       sim::TraceSink *sink = nullptr);

    /** Block until every submitted query has completed. */
    void wait();

    /** Result of query @p id (wait() first, or poll finished()). */
    const QueryResult &result(std::size_t id) const;

    /** All results so far, indexed by id (wait() first for a full
     *  workload view). */
    const std::vector<QueryResult> &results() const
    {
        return results_;
    }

    std::size_t submitted() const;
    std::size_t completed() const;
    bool finished(std::size_t id) const;

    /** Most queries observed executing at once (<= maxInFlight;
     *  admission-control observability). */
    unsigned peakInFlight() const;

    /**
     * Request cooperative cancellation of query @p id: a still-
     * pending query fails at its first chunk boundary, a running
     * one at its next, both with a typed sim::QueryCancelled error
     * in the result.  No-op on completed queries; cancelled queries
     * are never retried.
     */
    void cancel(std::size_t id);

  private:
    struct PendingQuery
    {
        std::size_t id = 0;
        ExtendPlan plan;
        SessionConfig session;
        sim::TraceSink *sink = nullptr;
        std::shared_ptr<CancelToken> cancelToken;
    };

    void dispatcherLoop();
    void runOne(PendingQuery &&query, std::size_t admission_index);

    GraphContext *context_;
    ServiceOptions options_;
    ThreadPool pool_;

    mutable std::mutex mutex_;
    std::condition_variable workAvailable_; ///< dispatchers wait
    std::condition_variable queryDone_;     ///< wait() waits
    std::deque<PendingQuery> pending_;      ///< FIFO beyond the bound
    std::vector<QueryResult> results_;
    std::vector<bool> done_;
    std::vector<std::shared_ptr<CancelToken>> cancelTokens_;
    std::size_t submittedCount_ = 0;
    std::size_t completedCount_ = 0;
    std::size_t admittedCount_ = 0;
    unsigned inFlight_ = 0;
    unsigned peakInFlight_ = 0;
    bool stopping_ = false;

    /** maxInFlight dispatcher threads: each admits the FIFO head,
     *  runs it as a session on the shared pool, repeats. */
    std::vector<std::thread> dispatchers_;
};

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_SERVICE_SERVICE_HH
