#include "core/residency.hh"

namespace khuzdul
{
namespace core
{

SharedResidency::SharedResidency(const Graph &g, unsigned units,
                                 std::uint64_t capacity_bytes_per_unit,
                                 EdgeId degree_threshold)
    : graph_(&g), capacityBytes_(capacity_bytes_per_unit),
      degreeThreshold_(degree_threshold)
{
    units_.reserve(units);
    for (unsigned u = 0; u < units; ++u)
        units_.push_back(std::make_unique<UnitDirectory>());
}

bool
SharedResidency::noteFetch(unsigned unit, VertexId v)
{
    UnitDirectory &dir = *units_[unit];
    // khuzdul-lint: allow(thread-primitive) host-side directory update; modeled charging never reads the outcome
    std::lock_guard<std::mutex> lock(dir.mutex);
    ++dir.probes;
    if (dir.resident.count(v)) {
        ++dir.hits;
        return true;
    }
    // Static admission, mirroring DataCache's paper policy (§5.3):
    // hot lists only, first fetched first resident, never evicted.
    const std::uint64_t bytes = graph_->edgeListBytes(v);
    if (capacityBytes_ > 0 && graph_->degree(v) >= degreeThreshold_
        && dir.usedBytes + bytes <= capacityBytes_) {
        dir.resident.insert(v);
        dir.usedBytes += bytes;
        ++dir.insertions;
    }
    return false;
}

std::uint64_t
SharedResidency::hits() const
{
    std::uint64_t total = 0;
    for (const auto &dir : units_) {
        // khuzdul-lint: allow(thread-primitive) host-side counter read under the unit lock
        std::lock_guard<std::mutex> lock(dir->mutex);
        total += dir->hits;
    }
    return total;
}

std::uint64_t
SharedResidency::probes() const
{
    std::uint64_t total = 0;
    for (const auto &dir : units_) {
        // khuzdul-lint: allow(thread-primitive) host-side counter read under the unit lock
        std::lock_guard<std::mutex> lock(dir->mutex);
        total += dir->probes;
    }
    return total;
}

std::uint64_t
SharedResidency::insertions() const
{
    std::uint64_t total = 0;
    for (const auto &dir : units_) {
        // khuzdul-lint: allow(thread-primitive) host-side counter read under the unit lock
        std::lock_guard<std::mutex> lock(dir->mutex);
        total += dir->insertions;
    }
    return total;
}

void
SharedResidency::clear()
{
    for (auto &dir : units_) {
        // khuzdul-lint: allow(thread-primitive) host-side directory wipe under the unit lock
        std::lock_guard<std::mutex> lock(dir->mutex);
        dir->resident.clear();
        dir->usedBytes = 0;
        dir->hits = dir->probes = dir->insertions = 0;
    }
}

} // namespace core
} // namespace khuzdul
