/**
 * @file
 * Sorted-list set kernels: the computational heart of pattern-aware
 * enumeration (every extension is an intersection of active edge
 * lists, §3.1).  All kernels return the number of elements consumed
 * so callers can charge modeled compute time.
 */

#ifndef KHUZDUL_CORE_INTERSECT_HH
#define KHUZDUL_CORE_INTERSECT_HH

#include <cstdint>
#include <span>
#include <vector>

#include "support/types.hh"

namespace khuzdul
{
namespace core
{

/** Work units consumed by a kernel (elements touched). */
using WorkItems = std::uint64_t;

/** out = a ∩ b (out may not alias inputs). */
WorkItems intersectInto(std::span<const VertexId> a,
                        std::span<const VertexId> b,
                        std::vector<VertexId> &out);

/** |a ∩ b| without materializing. */
WorkItems intersectCount(std::span<const VertexId> a,
                         std::span<const VertexId> b, Count &count);

/** out = a \ b (sorted difference; induced matching). */
WorkItems subtractInto(std::span<const VertexId> a,
                       std::span<const VertexId> b,
                       std::vector<VertexId> &out);

/**
 * out = intersection of all @p lists (>= 1).  Lists are folded
 * smallest-first to keep intermediate results tight.
 */
WorkItems intersectMany(std::span<const std::span<const VertexId>> lists,
                        std::vector<VertexId> &out,
                        std::vector<VertexId> &scratch);

/**
 * |intersection of all lists| without materializing the result.
 * Both scratch buffers are clobbered (allocation-free hot path).
 */
WorkItems intersectManyCount(
    std::span<const std::span<const VertexId>> lists, Count &count,
    std::vector<VertexId> &scratch_a, std::vector<VertexId> &scratch_b);

/** Whether sorted @p list contains @p v (binary search). */
bool contains(std::span<const VertexId> list, VertexId v);

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_INTERSECT_HH
