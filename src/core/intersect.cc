#include "core/intersect.hh"

#include <algorithm>

#include "support/check.hh"

namespace khuzdul
{
namespace core
{

WorkItems
intersectInto(std::span<const VertexId> a, std::span<const VertexId> b,
              std::vector<VertexId> &out)
{
    out.clear();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
            ++i;
        } else if (a[i] > b[j]) {
            ++j;
        } else {
            out.push_back(a[i]);
            ++i;
            ++j;
        }
    }
    return i + j;
}

WorkItems
intersectCount(std::span<const VertexId> a, std::span<const VertexId> b,
               Count &count)
{
    count = 0;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
            ++i;
        } else if (a[i] > b[j]) {
            ++j;
        } else {
            ++count;
            ++i;
            ++j;
        }
    }
    return i + j;
}

WorkItems
subtractInto(std::span<const VertexId> a, std::span<const VertexId> b,
             std::vector<VertexId> &out)
{
    out.clear();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size()) {
        if (j == b.size() || a[i] < b[j]) {
            out.push_back(a[i]);
            ++i;
        } else if (a[i] > b[j]) {
            ++j;
        } else {
            ++i;
            ++j;
        }
    }
    return i + j;
}

WorkItems
intersectMany(std::span<const std::span<const VertexId>> lists,
              std::vector<VertexId> &out, std::vector<VertexId> &scratch)
{
    KHUZDUL_CHECK(!lists.empty() && lists.size() <= 8,
                  "intersectMany needs 1..8 lists");
    // Fold smallest-first to keep intermediates tight; a fixed
    // array keeps this allocation-free (hot path).
    std::array<std::span<const VertexId>, 8> sorted;
    std::copy(lists.begin(), lists.end(), sorted.begin());
    std::sort(sorted.begin(), sorted.begin() + lists.size(),
              [](const auto &x, const auto &y) {
                  return x.size() < y.size();
              });
    if (lists.size() == 1) {
        out.assign(sorted[0].begin(), sorted[0].end());
        return 0;
    }
    WorkItems work = intersectInto(sorted[0], sorted[1], out);
    for (std::size_t k = 2; k < lists.size(); ++k) {
        if (out.empty())
            break;
        scratch.clear();
        work += intersectInto(out, sorted[k], scratch);
        out.swap(scratch);
    }
    return work;
}

WorkItems
intersectManyCount(std::span<const std::span<const VertexId>> lists,
                   Count &count, std::vector<VertexId> &scratch_a,
                   std::vector<VertexId> &scratch_b)
{
    KHUZDUL_CHECK(!lists.empty(), "intersectManyCount needs >= 1 list");
    if (lists.size() == 1) {
        count = lists[0].size();
        return 0;
    }
    if (lists.size() == 2)
        return intersectCount(lists[0], lists[1], count);
    WorkItems work = intersectMany(lists.first(lists.size() - 1),
                                   scratch_a, scratch_b);
    Count final_count = 0;
    work += intersectCount(scratch_a, lists.back(), final_count);
    count = final_count;
    return work;
}

bool
contains(std::span<const VertexId> list, VertexId v)
{
    return std::binary_search(list.begin(), list.end(), v);
}

} // namespace core
} // namespace khuzdul
