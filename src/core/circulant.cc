#include "core/circulant.hh"

#include <algorithm>

namespace khuzdul
{
namespace core
{

CirculantScheduler::CirculantScheduler(unsigned unit,
                                       unsigned num_units,
                                       unsigned units_per_node)
    : unit_(unit), numUnits_(num_units), unitsPerNode_(units_per_node),
      node_(unit / units_per_node)
{}

void
CirculantScheduler::begin(std::uint32_t num_embeddings)
{
    slotOfEmbedding_.assign(num_embeddings, 0);
    batches_.assign(numUnits_, Batch{});
}

void
CirculantScheduler::noteRemote(std::uint32_t idx, unsigned owner,
                               std::uint64_t bytes)
{
    const unsigned slot = slotOf(owner);
    slotOfEmbedding_[idx] = static_cast<std::uint16_t>(slot);
    batches_[slot].bytes += bytes;
    batches_[slot].lists += 1;
}

bool
CirculantScheduler::issue(sim::TransferRecorder &recorder,
                          sim::NodeStats &stats,
                          std::span<std::uint64_t> sent_bytes,
                          sim::TraceSink &trace, int level,
                          sim::FaultSession *faults,
                          const sim::CostModel *cost)
{
    for (unsigned slot = 1; slot < numUnits_; ++slot) {
        Batch &batch = batches_[slot];
        if (batch.lists == 0)
            continue;
        const unsigned owner = ownerOf(slot);
        const NodeId dst = owner / unitsPerNode_;
        const bool cross = dst != node_;
        unsigned attempt = 0;
        bool faulted_once = false;
        for (;;) {
            trace.emit({sim::PhaseEvent::FetchBatchIssued, unit_,
                        level, batch.bytes, batch.lists});
            // khuzdul-lint: allow(fabric-mutation) CirculantScheduler::issue IS the sanctioned transfer entry point
            const double base = recorder.recordTransfer(
                node_, dst, batch.bytes, batch.lists);
            if (cross) {
                // Every attempt moves bytes on the wire, so every
                // attempt is attributed — the traffic ledger, the
                // per-node volume counters and the journal must
                // agree whether the batch survived or not.
                stats.bytesReceived += batch.bytes;
                ++stats.messagesSent;
                sent_bytes[owner] += batch.bytes;
            }
            sim::FaultOutcome outcome;
            outcome.chargeNs = base;
            if (faults && cross)
                outcome = faults->onTransfer(node_, dst, base,
                                             cost->timeoutNs);
            if (!outcome.faulted) {
                batch.commNs += outcome.chargeNs;
                batch.baseCommNs += base;
                if (outcome.degraded)
                    stats.recoveryNs += outcome.chargeNs - base;
                if (cross)
                    stats.listsFetchedRemote += batch.lists;
                trace.emit({sim::PhaseEvent::FetchBatchCompleted,
                            unit_, level, batch.bytes, batch.lists});
                if (faulted_once) {
                    ++stats.faultsRecovered;
                    trace.emit({sim::PhaseEvent::FetchRecovered,
                                unit_, level, batch.bytes, attempt});
                }
                break;
            }
            // The attempt failed: charge its cost, then either give
            // the chunk back to the caller for a replay or back off
            // (modeled, exponential) and retry.
            faulted_once = true;
            ++stats.faultsInjected;
            batch.commNs += outcome.chargeNs;
            stats.recoveryNs += outcome.chargeNs;
            trace.emit({sim::PhaseEvent::FaultInjected, unit_, level,
                        batch.bytes,
                        static_cast<std::uint64_t>(outcome.kind)});
            if (attempt >= faults->maxRetries())
                return false;
            ++attempt;
            ++stats.faultsRetried;
            const double backoff = cost->retryBackoffNs
                * static_cast<double>(1ull << (attempt - 1));
            batch.commNs += backoff;
            stats.recoveryNs += backoff;
            faults->advance(backoff);
            trace.emit({sim::PhaseEvent::FetchRetry, unit_, level,
                        attempt,
                        static_cast<std::uint64_t>(outcome.kind)});
        }
    }
    return true;
}

bool
CirculantScheduler::issue(sim::Fabric &fabric, sim::RunStats &run,
                          sim::TraceSink &trace, int level)
{
    std::vector<std::uint64_t> sent(numUnits_, 0);
    const bool ok =
        issue(static_cast<sim::TransferRecorder &>(fabric),
              run.nodes[unit_], sent, trace, level);
    for (unsigned owner = 0; owner < numUnits_; ++owner)
        run.nodes[owner].bytesSent += sent[owner];
    return ok;
}

CirculantScheduler::Timeline
CirculantScheduler::foldPipeline(unsigned cores, double penalty,
                                 double Batch::*comm_field) const
{
    // Computation of batch i overlaps the fetch of batch i+1;
    // fetches are issued eagerly in order.
    double comm_done = 0;
    double finish = 0;
    Timeline t;
    for (const Batch &batch : batches_) {
        // Without NUMA awareness, communication buffers and the
        // graph partition live in interleaved memory, slowing the
        // transfer path along with computation.
        const double comm = batch.*comm_field * penalty;
        comm_done += comm;
        t.commNs += comm;
        const double work = batch.workNs / cores * penalty;
        t.computeNs += work;
        finish = std::max(finish, comm_done) + work;
    }
    t.exposedNs = finish - t.computeNs;
    return t;
}

CirculantScheduler::Timeline
CirculantScheduler::pipeline(unsigned cores, double penalty) const
{
    return foldPipeline(cores, penalty, &Batch::commNs);
}

CirculantScheduler::Timeline
CirculantScheduler::basePipeline(unsigned cores, double penalty) const
{
    return foldPipeline(cores, penalty, &Batch::baseCommNs);
}

} // namespace core
} // namespace khuzdul
