#include "core/circulant.hh"

#include <algorithm>

namespace khuzdul
{
namespace core
{

CirculantScheduler::CirculantScheduler(unsigned unit,
                                       unsigned num_units,
                                       unsigned units_per_node)
    : unit_(unit), numUnits_(num_units), unitsPerNode_(units_per_node),
      node_(unit / units_per_node)
{}

void
CirculantScheduler::begin(std::uint32_t num_embeddings)
{
    slotOfEmbedding_.assign(num_embeddings, 0);
    batches_.assign(numUnits_, Batch{});
}

void
CirculantScheduler::noteRemote(std::uint32_t idx, unsigned owner,
                               std::uint64_t bytes)
{
    const unsigned slot = slotOf(owner);
    slotOfEmbedding_[idx] = static_cast<std::uint16_t>(slot);
    batches_[slot].bytes += bytes;
    batches_[slot].lists += 1;
}

void
CirculantScheduler::issue(sim::TransferRecorder &recorder,
                          sim::NodeStats &stats,
                          std::span<std::uint64_t> sent_bytes,
                          sim::TraceSink &trace, int level)
{
    for (unsigned slot = 1; slot < numUnits_; ++slot) {
        Batch &batch = batches_[slot];
        if (batch.lists == 0)
            continue;
        const unsigned owner = ownerOf(slot);
        const NodeId dst = owner / unitsPerNode_;
        trace.emit({sim::PhaseEvent::FetchBatchIssued, unit_, level,
                    batch.bytes, batch.lists});
        // khuzdul-lint: allow(fabric-mutation) CirculantScheduler::issue IS the sanctioned transfer entry point
        batch.commNs = recorder.recordTransfer(node_, dst, batch.bytes,
                                               batch.lists);
        trace.emit({sim::PhaseEvent::FetchBatchCompleted, unit_, level,
                    batch.bytes, batch.lists});
        if (dst != node_) {
            stats.bytesReceived += batch.bytes;
            ++stats.messagesSent;
            stats.listsFetchedRemote += batch.lists;
            // Attribute send-side bytes to the owner unit.
            sent_bytes[owner] += batch.bytes;
        }
    }
}

void
CirculantScheduler::issue(sim::Fabric &fabric, sim::RunStats &run,
                          sim::TraceSink &trace, int level)
{
    std::vector<std::uint64_t> sent(numUnits_, 0);
    issue(static_cast<sim::TransferRecorder &>(fabric),
          run.nodes[unit_], sent, trace, level);
    for (unsigned owner = 0; owner < numUnits_; ++owner)
        run.nodes[owner].bytesSent += sent[owner];
}

CirculantScheduler::Timeline
CirculantScheduler::pipeline(unsigned cores, double penalty) const
{
    // Computation of batch i overlaps the fetch of batch i+1;
    // fetches are issued eagerly in order.
    double comm_done = 0;
    double finish = 0;
    Timeline t;
    for (const Batch &batch : batches_) {
        // Without NUMA awareness, communication buffers and the
        // graph partition live in interleaved memory, slowing the
        // transfer path along with computation.
        const double comm = batch.commNs * penalty;
        comm_done += comm;
        t.commNs += comm;
        const double work = batch.workNs / cores * penalty;
        t.computeNs += work;
        finish = std::max(finish, comm_done) + work;
    }
    t.exposedNs = finish - t.computeNs;
    return t;
}

} // namespace core
} // namespace khuzdul
