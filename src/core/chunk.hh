/**
 * @file
 * Extendable-embedding chunks (§4.2): a fixed-budget arena holding
 * all extendable embeddings of one tree level.  Embeddings are
 * stored structure-of-arrays with parent indices into the previous
 * level (the hierarchical representation of Fig 8), so a chunk
 * releases all of its memory at once when the level backtracks —
 * the paper's answer to BFS fragmentation.
 *
 * The columns are level-wise frontier arrays in the style of
 * Pangolin's EmbeddingList: one flat vertex column and one parent
 * column per level (vertexColumn/parentColumn), plus an explicit
 * active-list index column (fetchList) recording, in insertion
 * order, exactly the embeddings whose edge list must be resolved
 * before extension.  The fetch phase walks that column as one
 * contiguous run instead of re-testing a per-embedding flag, and
 * children of one parent are contiguous in the child chunk, which
 * is what lets the extender reuse the recovered parent prefix
 * across sibling runs and feed the SIMD kernels contiguous spans.
 */

#ifndef KHUZDUL_CORE_CHUNK_HH
#define KHUZDUL_CORE_CHUNK_HH

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "support/check.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace core
{

/** Parent index of root-level embeddings. */
inline constexpr std::uint32_t kNoParent = 0xffffffffu;

/**
 * One level's worth of extendable embeddings.
 *
 * The modeled byte budget covers the embedding records, stored
 * intermediate results (vertical computation sharing) and fetched
 * remote edge lists; full() gates further insertion, bounding the
 * per-level footprint like the paper's fixed chunk memory.
 */
class Chunk
{
  public:
    /** Modeled bytes per embedding record (id + parent + refs). */
    static constexpr std::uint64_t kEntryBytes = 24;

    explicit Chunk(std::uint64_t capacity_bytes)
        : capacityBytes_(capacity_bytes)
    {}

    /** Number of embeddings currently stored. */
    std::uint32_t
    size() const
    {
        return static_cast<std::uint32_t>(vertices_.size());
    }

    bool empty() const { return vertices_.empty(); }

    /** Whether the modeled budget is exhausted. */
    bool full() const { return modeledBytes_ >= capacityBytes_; }

    std::uint64_t capacityBytes() const { return capacityBytes_; }
    std::uint64_t modeledBytes() const { return modeledBytes_; }

    /**
     * Append an embedding extending @p parent with @p vertex.
     * @param needs_fetch whether its edge list must be made
     *        available before this embedding can be extended.
     * @return index of the new embedding.
     */
    std::uint32_t
    add(VertexId vertex, std::uint32_t parent, bool needs_fetch)
    {
        if (vertices_.empty()) {
            // The byte budget bounds the embedding count, so size
            // the per-embedding arrays for it up front: one
            // allocation per column per chunk lifetime instead of a
            // doubling cascade on every refill.
            const std::size_t entries = static_cast<std::size_t>(
                capacityBytes_ / kEntryBytes + 1);
            vertices_.reserve(entries);
            parents_.reserve(entries);
            fetchList_.reserve(entries);
            resultOffsets_.reserve(entries);
            resultLengths_.reserve(entries);
        }
        vertices_.push_back(vertex);
        parents_.push_back(parent);
        if (needs_fetch)
            fetchList_.push_back(size() - 1);
        resultOffsets_.push_back(0);
        resultLengths_.push_back(0);
        modeledBytes_ += kEntryBytes;
        return size() - 1;
    }

    VertexId vertex(std::uint32_t idx) const { return vertices_[idx]; }
    std::uint32_t parent(std::uint32_t idx) const { return parents_[idx]; }

    bool
    needsFetch(std::uint32_t idx) const
    {
        // O(log n) reverse lookup kept for tests/assertions; hot
        // paths walk fetchList() directly.
        return std::binary_search(fetchList_.begin(), fetchList_.end(),
                                  idx);
    }

    /** @name Level-wise frontier columns (Pangolin EmbeddingList) */
    /// @{

    /** Flat vertex column of this level. */
    std::span<const VertexId> vertexColumn() const { return vertices_; }

    /** Flat parent-index column into the previous level. */
    std::span<const std::uint32_t>
    parentColumn() const
    {
        return parents_;
    }

    /**
     * Active-list index column: the embeddings whose edge list must
     * be resolved before extension, in insertion order (ascending),
     * walked by the fetch phase as one contiguous run.
     */
    std::span<const std::uint32_t> fetchList() const { return fetchList_; }
    /// @}

    /**
     * Append a reusable intermediate result to the chunk arena (the
     * memory reserved by the third argument of the paper's
     * create_extendable_embedding()) and return its offset.  All
     * siblings of one extension share a single stored copy and
     * reference it via setResultRef().
     */
    std::uint32_t
    appendResult(std::span<const VertexId> result)
    {
        if (resultArena_.empty())
            // Stored results are budget-charged like embeddings, so
            // the budget also caps the arena's worst case.
            resultArena_.reserve(static_cast<std::size_t>(
                capacityBytes_ / sizeof(VertexId) + result.size()));
        const auto offset =
            static_cast<std::uint32_t>(resultArena_.size());
        resultArena_.insert(resultArena_.end(), result.begin(),
                            result.end());
        modeledBytes_ += result.size() * sizeof(VertexId);
        return offset;
    }

    /** Point embedding @p idx at a stored intermediate result. */
    void
    setResultRef(std::uint32_t idx, std::uint32_t offset,
                 std::uint32_t length)
    {
        resultOffsets_[idx] = offset;
        resultLengths_[idx] = length;
    }

    /** The stored intermediate result of @p idx (may be empty). */
    std::span<const VertexId>
    result(std::uint32_t idx) const
    {
        return {resultArena_.data() + resultOffsets_[idx],
                resultLengths_[idx]};
    }

    /** Charge @p bytes of fetched remote edge lists to the budget. */
    void addFetchedBytes(std::uint64_t bytes) { modeledBytes_ += bytes; }

    /**
     * Wholesale release (backtrack): every embedding of this level
     * is terminated together, honoring bottom-up deallocation.
     */
    void
    reset()
    {
        vertices_.clear();
        parents_.clear();
        fetchList_.clear();
        resultOffsets_.clear();
        resultLengths_.clear();
        resultArena_.clear();
        modeledBytes_ = 0;
    }

  private:
    std::uint64_t capacityBytes_;
    std::uint64_t modeledBytes_ = 0;
    std::vector<VertexId> vertices_;
    std::vector<std::uint32_t> parents_;
    std::vector<std::uint32_t> fetchList_;
    std::vector<std::uint32_t> resultOffsets_;
    std::vector<std::uint32_t> resultLengths_;
    std::vector<VertexId> resultArena_;
};

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_CHUNK_HH
