/**
 * @file
 * The Khuzdul distributed execution engine (§3-§6).
 *
 * The engine runs an ExtendPlan — the compiled EXTEND function of a
 * client GPM system — over a 1-D hash-partitioned graph on a
 * simulated cluster.  The runtime is layered; each layer is its own
 * translation unit with a narrow interface:
 *
 *   - EdgeListProvider (core/provider): classifies each embedding's
 *     needed edge list as local / cached / horizontally shared /
 *     remote and returns a typed Resolution (§5.2-§5.3);
 *   - CirculantScheduler (core/circulant): groups remote fetches
 *     into per-owner batches and folds the pipelined
 *     comm(b0) + Σ max(compute, comm) timeline (§4.3);
 *   - PlanExtender (core/extender): the intersection/filter/IEP
 *     extension kernel with vertical sharing (§5.1);
 *   - HybridExplorer (this TU): the BFS-DFS traversal — fixed-budget
 *     chunks per level, DFS across chunks, BFS within (§4.2) —
 *     driving the layers above;
 *   - TraceSink (sim/trace): phase-event observability across all
 *     layers, null by default.
 *
 * Enumeration is performed for real (counts are exact and tested
 * against brute force); time and traffic are modeled through
 * sim::CostModel / sim::Fabric so an 18-node cluster reproduces
 * deterministically on one host core.
 */

#ifndef KHUZDUL_CORE_ENGINE_HH
#define KHUZDUL_CORE_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cache.hh"
#include "core/context.hh"
#include "core/kernels/kernels.hh"
#include "core/provider.hh"
#include "core/visitor.hh"
#include "graph/graph.hh"
#include "graph/partition.hh"
#include "pattern/plan.hh"
#include "sim/cluster.hh"
#include "sim/cost_model.hh"
#include "sim/fabric.hh"
#include "sim/faults.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace khuzdul
{
namespace core
{

class ThreadPool;
class CancelToken;

/**
 * Per-query session tunables — the knobs that are legitimately a
 * property of one query rather than of the resident graph (those
 * live in GraphSetup / GraphContext).  Defaults mirror the paper's
 * configuration at stand-in scale.
 */
struct SessionConfig
{
    /**
     * Per-level chunk byte budget (§4.2).  The paper defaults to
     * 4 GB on ~10 GB graphs; scaled stand-ins default to 4 MB.
     */
    std::uint64_t chunkBytes = 4ull << 20;

    /** Embeddings per dynamically-dispatched mini-batch (§6). */
    unsigned miniBatchSize = 64;

    /** Set-kernel dispatch policy (core/kernels): Auto adapts per
     *  call; other modes force one kernel for A/B runs.  Charges
     *  are canonical, so the mode never changes modeled results. */
    KernelMode kernelMode = KernelMode::Auto;

    /**
     * Host worker threads executing simulated units in parallel
     * (§6); ignored when the session runs on a QueryService's
     * shared pool.  Purely host-side: every value produces
     * bit-identical modeled results.
     */
    unsigned hostThreads = 0;

    /**
     * Deterministic fault schedule (§9, CLI `--fault`).  Empty =
     * healthy fabric.
     */
    sim::FaultPlan faults;

    /**
     * Deterministic inter-unit work stealing (DESIGN.md §11, CLI
     * `--steal`).  A post-barrier planning pass over the merged
     * per-chunk ledgers migrates tail chunks from backlogged units
     * to idle ones, pricing the embedding-column transfer and a
     * handshake through the fabric.  Purely modeled: counts never
     * change, and for a fixed config the stolen schedule is
     * bit-identical at every hostThreads value and fault plan.
     */
    bool stealEnabled = false;

    /** Minimum remaining modeled backlog (ns) before a unit is
     *  considered a steal victim (CLI `--steal-threshold`). */
    double stealBacklogThresholdNs = 1.0e5;

    /**
     * Modeled per-query deadline (ns, CLI `--deadline`); 0 = none.
     * Checked at chunk boundaries against the unit's run-local
     * modeled time, so whether a run exceeds its deadline is a pure
     * function of the config — an exceeded deadline raises the
     * typed sim::DeadlineExceeded at every thread count.
     */
    double deadlineNs = 0;

    /**
     * Level-barrier checkpointing (DESIGN.md §9, CLI `--checkpoint`):
     * every unit logically snapshots its partial counts and pending
     * ledger at each level-0 barrier, charged CostModel::checkpointNs.
     * Implicitly armed whenever the fault plan contains a crash spec
     * (recovery needs the checkpoints); enable explicitly to measure
     * the fault-free overhead.
     */
    bool checkpointEnabled = false;

    /** Whole-query retries the service may spend on a failed run
     *  (CLI `--query-retries`); each attempt k charges a modeled
     *  backoff of queryRetryBackoffNs * 2^(k-1).  0 = fail fast. */
    unsigned maxQueryRetries = 0;
};

/** All engine tunables; defaults mirror the paper's configuration
 *  scaled to the ~1000x smaller stand-in datasets.
 *
 *  This flat struct predates the GraphContext/session ownership
 *  split and remains the convenient single-query surface (CLI,
 *  benches, most tests).  It is exactly the concatenation of the
 *  two halves: graphSetup() extracts the graph-resident half and
 *  session() the per-query half. */
struct EngineConfig
{
    /** Simulated machines. */
    sim::ClusterConfig cluster;

    /** Time constants. */
    sim::CostModel cost;

    /**
     * Per-level chunk byte budget (§4.2).  The paper defaults to
     * 4 GB on ~10 GB graphs; scaled stand-ins default to 4 MB.
     */
    std::uint64_t chunkBytes = 4ull << 20;

    /** Graph-data cache policy (STATIC is the paper's design). */
    CachePolicy cachePolicy = CachePolicy::Static;

    /** Cache capacity as a fraction of the graph size, per node. */
    double cacheFraction = 0.15;

    /** Static-cache admission degree threshold (§5.3). */
    EdgeId cacheDegreeThreshold = 32;

    /** Horizontal data sharing on/off (Fig 12 ablation). */
    bool horizontalSharing = true;

    /** Slots of the per-chunk horizontal table. */
    std::size_t horizontalSlots = 1 << 15;

    /** NUMA-aware sub-partitioning (§5.4, Table 7 ablation). */
    bool numaAware = true;

    /**
     * Compute slowdown on multi-socket nodes without NUMA-aware
     * placement (remote-socket DRAM on ~half the accesses).
     */
    double numaComputePenalty = 1.45;

    /** Embeddings per dynamically-dispatched mini-batch (§6). */
    unsigned miniBatchSize = 64;

    /** Set-kernel dispatch policy (core/kernels): Auto adapts per
     *  call; other modes force one kernel for A/B runs.  Charges
     *  are canonical, so the mode never changes modeled results. */
    KernelMode kernelMode = KernelMode::Auto;

    /** Hub-bitmap admission degree threshold, aligned with the
     *  static cache's §5.3 threshold: the same hot vertices whose
     *  lists are cached everywhere get dense bitsets. */
    EdgeId hubBitmapDegreeThreshold = 32;

    /** Byte cap on hub bitmap rows (hottest-first admission);
     *  0 disables the bitmap kernel entirely. */
    std::uint64_t hubBitmapMaxBytes = 32ull << 20;

    /**
     * Host worker threads executing simulated units in parallel
     * (§6).  Purely host-side: 0 means "all hardware threads", 1
     * forces sequential execution, and every value produces
     * bit-identical modeled results — counts, RunStats, the fabric
     * ledger and the trace stream never depend on it.
     */
    unsigned hostThreads = 0;

    /**
     * Deterministic fault schedule (§9, CLI `--fault`).  Empty =
     * healthy fabric.  Triggers read only modeled per-unit state, so
     * for a fixed plan the run stays bit-identical at every
     * hostThreads value; counts stay exact under any plan because
     * exhausted chunks are replayed, never dropped.
     */
    sim::FaultPlan faults;

    /** Deterministic inter-unit work stealing (DESIGN.md §11); see
     *  SessionConfig::stealEnabled for the contract. */
    bool stealEnabled = false;

    /** Minimum modeled backlog (ns) before a unit donates. */
    double stealBacklogThresholdNs = 1.0e5;

    /** Modeled per-query deadline (ns); 0 = none.  See
     *  SessionConfig::deadlineNs for the contract. */
    double deadlineNs = 0;

    /** Level-barrier checkpointing; see
     *  SessionConfig::checkpointEnabled. */
    bool checkpointEnabled = false;

    /** Whole-query retry budget of the service; see
     *  SessionConfig::maxQueryRetries. */
    unsigned maxQueryRetries = 0;

    /** The graph-resident half (GraphContext construction). */
    GraphSetup graphSetup() const;

    /** The per-query half (session construction). */
    SessionConfig session() const;
};

/**
 * The execution engine, structured as a per-query *session* over a
 * shared GraphContext.  The context owns everything graph-resident
 * (partition, hub bitmaps, cross-query residency directory,
 * cumulative traffic ledger); the session owns everything a query
 * must be able to account deterministically on its own — its
 * per-unit modeled DataCaches, its fabric ledger, its RunStats and
 * trace sinks.  run() can be invoked repeatedly (e.g. once per
 * motif pattern) and accumulates stats across runs.
 *
 * Reset vs. clear semantics (the PR-5 wart, now explicit):
 *   - resetStats() wipes statistics, trace counts and the session's
 *     traffic ledger but keeps cache *contents* warm — reruns after
 *     a reset model a long-lived deployment and may legitimately
 *     differ from a cold run (fewer misses, less traffic).
 *   - clearCaches() additionally drops the session's cache contents
 *     (and, when the engine owns its private context, the context's
 *     residency directory and cumulative ledger), so
 *     clearCaches() + resetStats() restores the full cold-start
 *     state: the next run is byte-identical to a fresh engine's
 *     under every cache policy, not just CachePolicy::None.
 */
class Engine
{
  public:
    /** Single-query convenience: builds a private GraphContext from
     *  the flat config's graph half and a session from its query
     *  half.  Exactly equivalent to the two-step form. */
    Engine(const Graph &g, const EngineConfig &config);

    /** A query session over a shared (possibly concurrent) context.
     *  @p context must outlive the engine. */
    explicit Engine(GraphContext &context,
                    const SessionConfig &session = {});

    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Count the embeddings of @p plan's pattern. */
    Count run(const ExtendPlan &plan);

    /**
     * Enumerate embeddings, passing each to @p visitor (the UDF of
     * Figure 5).  Requires a plan without IEP and with
     * countDivisor == 1.
     */
    Count run(const ExtendPlan &plan, MatchVisitor *visitor);

    const Graph &graph() const { return *graph_; }
    const Partition &partition() const { return partition_; }

    /** The shared context this session runs over (the engine's own
     *  private one when built from a flat EngineConfig). */
    GraphContext &context() { return *context_; }
    const GraphContext &context() const { return *context_; }

    /** Per-query tunables of this session. */
    const SessionConfig &session() const { return session_; }

    /** Flat view: the context's graph half concatenated with this
     *  session's query half. */
    const EngineConfig &config() const { return config_; }

    /** Cumulative statistics (one entry per execution unit). */
    const sim::RunStats &stats() const { return stats_; }

    /** Fabric ledger (per-link traffic; test fault injection). */
    sim::Fabric &fabric() { return fabric_; }

    /**
     * Install a phase-event sink observing every layer (nullptr
     * uninstalls).  Tracing never changes results or modeled time.
     */
    void setTraceSink(sim::TraceSink *sink) { tracer_.secondary(sink); }

    /** Per-event tallies of the engine's built-in counting sink
     *  (cross-checkable against stats(); cleared by resetStats). */
    const sim::CountingTraceSink &traceCounts() const
    {
        return traceCounts_;
    }

    /** Clear statistics, trace counts and the traffic ledger.
     *  Cache contents stay warm — see the class comment for the
     *  reset-vs-clear contract. */
    void resetStats();

    /**
     * Drop this session's cache contents (cold restart).  When the
     * engine owns its private context the context's residency
     * directory and cumulative ledger are cleared too; a *shared*
     * context is never touched — co-running sessions own that
     * decision via GraphContext::clearCaches().
     */
    void clearCaches();

    /**
     * Run units on an externally owned pool instead of a private
     * one (nullptr reverts).  The QueryService installs its shared
     * work-stealing pool here so concurrent sessions' unit tasks
     * interleave fairly at unit granularity.  Host-side only:
     * modeled results are identical on any pool.
     */
    void setHostPool(ThreadPool *pool) { sharedPool_ = pool; }

    /**
     * Install a cooperative cancellation token (nullptr uninstalls).
     * The explorer polls it at chunk boundaries and raises the typed
     * sim::QueryCancelled from run().  A run that is never cancelled
     * is bit-identical with or without a token installed.
     */
    void setCancelToken(const CancelToken *token) { cancel_ = token; }

    /**
     * Charge one whole-query retry to this session (DESIGN.md §9):
     * modeled backoff queryRetryBackoffNs * 2^(attempt-1) into
     * startupNs, a QueryRetried trace event, and the RunStats
     * queryRetries counter.  The QueryService calls this on the
     * fresh engine of attempt k once per prior failed attempt, so
     * the surviving stats carry the full retry history.
     */
    void chargeQueryRetry(unsigned attempt);

    /** Compute cores available to one execution unit. */
    unsigned computeCoresPerUnit() const;

  private:
    friend class HybridExplorer;

    Engine(std::unique_ptr<GraphContext> owned, GraphContext *context,
           const SessionConfig &session);

    /** Non-null iff this engine was built from a flat EngineConfig
     *  and owns its context. */
    std::unique_ptr<GraphContext> ownedContext_;
    GraphContext *context_;
    const Graph *graph_;
    SessionConfig session_;
    EngineConfig config_;
    const Partition &partition_;
    sim::Fabric fabric_;
    sim::RunStats stats_;
    sim::CountingTraceSink traceCounts_;
    sim::TeeTraceSink tracer_{traceCounts_};
    std::vector<std::unique_ptr<DataCache>> caches_;
    std::vector<std::unique_ptr<EdgeListProvider>> providers_;

    /** One deterministic fault cursor per execution unit (empty
     *  when config_.faults is); reset alongside the ledger. */
    std::vector<std::unique_ptr<sim::FaultSession>> faultSessions_;

    /** Per-unit event buffers flushed into tracer_ in unit order
     *  after each run, reproducing the sequential trace stream. */
    std::vector<std::unique_ptr<sim::BufferingTraceSink>> unitSinks_;

    /** Host worker pool, created lazily on the first parallel run
     *  and rebuilt when config_.hostThreads resolves differently. */
    std::unique_ptr<ThreadPool> pool_;

    /** Borrowed service pool (setHostPool); wins over pool_. */
    ThreadPool *sharedPool_ = nullptr;

    /** Borrowed cancellation token (setCancelToken); host-side. */
    const CancelToken *cancel_ = nullptr;
};

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_ENGINE_HH
