#include "core/recovery/recovery.hh"

#include <algorithm>

#include "sim/faults.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace core
{

std::vector<AdoptionDecision>
RecoveryPlanner::plan(const std::vector<CrashReport> &crashes,
                      std::vector<double> finish) const
{
    std::vector<AdoptionDecision> decisions;
    if (crashes.empty())
        return decisions;

    const unsigned units = static_cast<unsigned>(finish.size());
    std::vector<char> crashed(units, 0);
    for (const CrashReport &report : crashes) {
        KHUZDUL_CHECK(report.unit < units,
                      "recovery planner: crash unit out of range");
        crashed[report.unit] = 1;
    }

    unsigned survivors = 0;
    for (unsigned u = 0; u < units; ++u)
        survivors += crashed[u] ? 0u : 1u;
    if (survivors == 0)
        throw sim::FabricFault(
            "crash plan leaves no surviving execution unit to adopt "
            "orphaned chunks");

    const unsigned units_per_node =
        fabric_->partition().socketsPerNode();
    const double handshake = fabric_->cost().adoptionHandshakeNs;

    // Reports arrive from the merge pass in ascending unit order
    // already; keep a sorted view so the planning order is part of
    // the deterministic contract even if a caller reorders them.
    std::vector<const CrashReport *> ordered;
    ordered.reserve(crashes.size());
    for (const CrashReport &report : crashes)
        ordered.push_back(&report);
    std::sort(ordered.begin(), ordered.end(),
              [](const CrashReport *a, const CrashReport *b) {
                  return a->unit < b->unit;
              });

    for (const CrashReport *report : ordered) {
        const NodeId victim_node = report->unit / units_per_node;
        const auto adopt = [&](const ChunkRecord &rec,
                               bool replayed) {
            // Adopter: earliest running finish among survivors
            // (ties: lowest unit index).  Unlike stealing there is
            // no accept condition — orphans have no owner left, so
            // somebody must run them.
            unsigned adopter = units;
            for (unsigned u = 0; u < units; ++u) {
                if (crashed[u])
                    continue;
                if (adopter == units || finish[u] < finish[adopter])
                    adopter = u;
            }
            const NodeId adopter_node = adopter / units_per_node;
            const double transfer = fabric_->modeledTransferNs(
                adopter_node, victim_node, rec.columnBytes, 1);
            finish[adopter] += handshake + transfer + rec.computeNs
                + rec.baseExposedNs;
            decisions.push_back(
                {adopter, report->unit, replayed, rec, transfer});
        };
        for (const ChunkRecord &rec : report->lost)
            adopt(rec, true);
        for (const ChunkRecord &rec : report->orphans)
            adopt(rec, false);
    }
    return decisions;
}

} // namespace core
} // namespace khuzdul
