/**
 * @file
 * Deterministic execution-unit crash recovery (DESIGN.md §9).
 *
 * A `crash:UNIT:level=L[:chunk=K]` fault kills one execution unit
 * the moment it opens its K-th chunk of level L — a trigger read
 * purely from the unit's own modeled chunk ordinals, so the crash
 * point is bit-identical at every host thread count.  Units
 * checkpoint at level-0 barriers (the natural consistent cut of the
 * level-synchronous circulant schedule: the DFS stack is drained and
 * the partial counts are a pure prefix); each snapshot is charged
 * `CostModel::checkpointNs`.
 *
 * After the PR-3 ordered merge the engine hands the RecoveryPlanner
 * one CrashReport per dead unit: the unit's frozen time categories
 * plus two chunk ledgers — `lost` work the unit had done since its
 * last checkpoint (burned with the unit, must be replayed) and
 * `orphans` it would have processed after the crash point (shed to
 * survivors).  The planner mirrors the PR-8 StealPlanner's pricing
 * path — adoption handshake + fabric-priced column transfer + the
 * chunk's fault-free compute/exposed prices — but adoption is
 * mandatory: orphans have no owner to fall back to, so there is no
 * accept condition, only a deterministic assignment (survivor with
 * the earliest running finish, ties to the lowest unit index).
 *
 * Like the steal planner this type only *decides*; the engine
 * commits each decision by charging the adopter's NodeStats slot,
 * pricing the transfer through the fabric ledger and emitting
 * UnitCrashed/ChunkAdopted trace events in decision order.
 */

#ifndef KHUZDUL_CORE_RECOVERY_RECOVERY_HH
#define KHUZDUL_CORE_RECOVERY_RECOVERY_HH

#include <cstdint>
#include <vector>

#include "core/steal/steal.hh"
#include "sim/fabric.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace core
{

/**
 * Everything the merge pass knows about one crashed unit: where it
 * died, its NodeStats time categories frozen at the crash instant
 * (cumulative values — the engine restores the slot to exactly
 * these), and the two chunk ledgers the survivors must absorb.
 */
struct CrashReport
{
    unsigned unit = 0;          ///< the dead execution unit
    int level = 0;              ///< level of the fatal chunk
    std::uint64_t chunkOrdinal = 0; ///< 1-based ordinal within level

    /** @name Time categories frozen at the crash instant */
    /// @{
    double computeNs = 0;
    double commExposedNs = 0;
    double commTotalNs = 0;
    double schedulerNs = 0;
    double cacheNs = 0;
    /// @}

    /** Chunks the unit closed after its last checkpoint but before
     *  the crash: that work burned with the unit and an adopter
     *  replays it from the checkpointed columns. */
    std::vector<ChunkRecord> lost;

    /** Chunks the unit would have processed after the crash point:
     *  never executed by the dead unit, shed to adopters. */
    std::vector<ChunkRecord> orphans;
};

/** One mandatory adoption, in planning order. */
struct AdoptionDecision
{
    unsigned adopter = 0;
    unsigned victim = 0;  ///< the crashed unit
    bool replayed = false; ///< chunk came from the `lost` ledger
    ChunkRecord chunk;
    /** Clean fabric price of shipping the columns adopter<-victim
     *  (from the victim node's checkpoint store). */
    double transferNs = 0;
};

/**
 * Deterministic orphan-chunk adoption planner.  Pure function of
 * merged modeled state: crash reports (processed in ascending unit
 * order, `lost` before `orphans`, each in processing order),
 * per-unit finish times, and the fabric's timing oracle.  Every
 * chunk is assigned to the survivor with the earliest running
 * finish (ties: lowest unit index) at

 *   finish[adopter] += adoptionHandshakeNs + transfer
 *                    + chunk.computeNs + chunk.baseExposedNs
 *
 * — fault-free prices, because the adopter re-runs the chunk against
 * a healthy fetch path from the checkpointed columns.
 */
class RecoveryPlanner
{
  public:
    explicit RecoveryPlanner(const sim::Fabric &fabric)
        : fabric_(&fabric)
    {}

    /**
     * Plan adoptions for @p crashes over the surviving units.
     * @p finish is each unit's NodeStats::totalNs() after the merge
     * (crashed units' entries are ignored).  Throws sim::FabricFault
     * if every unit crashed — then nothing can adopt and the query
     * has genuinely failed.  Pure: mutates no engine state.
     */
    std::vector<AdoptionDecision>
    plan(const std::vector<CrashReport> &crashes,
         std::vector<double> finish) const;

  private:
    const sim::Fabric *fabric_;
};

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_RECOVERY_RECOVERY_HH
