/**
 * @file
 * The user-defined-function hook of the execution model: when the
 * EXTEND function reaches a complete embedding it passes it to the
 * application through this interface (Figure 5's UDF call).
 */

#ifndef KHUZDUL_CORE_VISITOR_HH
#define KHUZDUL_CORE_VISITOR_HH

#include <span>

#include "support/types.hh"

namespace khuzdul
{
namespace core
{

/** Receives complete embeddings (tuple[i] = vertex at position i). */
class MatchVisitor
{
  public:
    virtual ~MatchVisitor() = default;

    /**
     * One embedding matching the plan's pattern.  The span is only
     * valid during the call.
     */
    virtual void match(std::span<const VertexId> positions) = 0;
};

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_VISITOR_HH
