/**
 * @file
 * Cross-query residency directory.  A GraphContext shares one of
 * these among every query session mining the same resident graph:
 * it remembers which remote edge lists have *already been fetched
 * by some query* on each execution unit, so concurrent queries can
 * observe how much fetch traffic a long-lived deployment would
 * amortize (the HUGE-style bounded-shared-buffer effect the service
 * layer exists to exploit).
 *
 * The directory is host-side observability ONLY.  Modeled charging
 * — cache probe time, fetch bytes, the per-query fabric ledger —
 * always runs against the session's own deterministic DataCache
 * ledger, never against this directory, so a query's modeled
 * results are bit-identical whether it runs alone or next to any
 * mix of co-runners.  Directory *contents* legitimately depend on
 * admission order across queries; nothing modeled ever reads them.
 */

#ifndef KHUZDUL_CORE_RESIDENCY_HH
#define KHUZDUL_CORE_RESIDENCY_HH

#include <cstdint>
#include <memory>
// khuzdul-lint: allow(thread-primitive) host-side cross-query directory; synchronizes observability state only, never modeled charging
#include <mutex>
#include <unordered_set>
#include <vector>

#include "graph/graph.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace core
{

/**
 * Which remote edge lists are resident per execution unit, across
 * every query of a GraphContext.  Thread-safe: units of concurrent
 * query sessions probe and admit under a per-unit lock.
 */
class SharedResidency
{
  public:
    /**
     * @param g graph (for per-list byte sizes).
     * @param units execution units of the partition.
     * @param capacity_bytes_per_unit byte budget per unit, mirroring
     *        the session caches' geometry (0 disables admission, so
     *        every probe misses).
     * @param degree_threshold static-admission degree floor, same
     *        semantics as the paper's hot-vertex filter (§5.3).
     */
    SharedResidency(const Graph &g, unsigned units,
                    std::uint64_t capacity_bytes_per_unit,
                    EdgeId degree_threshold);

    /**
     * Note that some query is fetching N(@p v) remotely on
     * @p unit.  Returns true when the list was already resident —
     * a *cross-query* hit: a long-lived deployment would have
     * served this fetch from memory.  Otherwise admits the list
     * (static policy: first-fetched-first-resident under the byte
     * budget and degree threshold) and returns false.
     */
    bool noteFetch(unsigned unit, VertexId v);

    /** Cumulative cross-query hits over all units and queries. */
    std::uint64_t hits() const;

    /** Cumulative fetch probes over all units and queries. */
    std::uint64_t probes() const;

    /** Lists admitted (resident) over all units. */
    std::uint64_t insertions() const;

    /** Drop all residency state and counters (GraphContext::
     *  clearCaches). */
    void clear();

  private:
    struct UnitDirectory
    {
        // khuzdul-lint: allow(thread-primitive) guards one unit's host-side residency set across concurrent query sessions
        mutable std::mutex mutex;
        // khuzdul-lint: allow(unordered-iter) membership-only set (find/insert/clear); never iterated
        std::unordered_set<VertexId> resident;
        std::uint64_t usedBytes = 0;
        std::uint64_t hits = 0;
        std::uint64_t probes = 0;
        std::uint64_t insertions = 0;
    };

    const Graph *graph_;
    std::uint64_t capacityBytes_;
    EdgeId degreeThreshold_;
    std::vector<std::unique_ptr<UnitDirectory>> units_;
};

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_RESIDENCY_HH
