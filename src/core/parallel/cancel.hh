/**
 * @file
 * Cooperative query cancellation (DESIGN.md §9).
 *
 * A CancelToken is a host-side flag shared between a query's
 * submitter (QueryService::cancel, or any owner of the token) and
 * the engine running it.  The explorer polls the token only at
 * chunk boundaries — the same consistent cuts where checkpoints and
 * deadlines are evaluated — and raises sim::QueryCancelled, which
 * the run's owner reports as a typed failure.
 *
 * Cancellation is deliberately outside the determinism contract:
 * *when* a cancel lands depends on the host, so a cancelled run
 * makes no claim about its partial stats.  What is guaranteed is
 * that a run that was never cancelled is bit-identical whether or
 * not a token was installed, because polling a false flag has no
 * modeled effect.
 */

#ifndef KHUZDUL_CORE_PARALLEL_CANCEL_HH
#define KHUZDUL_CORE_PARALLEL_CANCEL_HH

#include <atomic>

namespace khuzdul
{
namespace core
{

/** Shared one-way cancellation flag (set-once, never cleared). */
class CancelToken
{
  public:
    /** Request cancellation; safe from any thread. */
    void
    cancel()
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> cancelled_{false};
};

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_PARALLEL_CANCEL_HH
