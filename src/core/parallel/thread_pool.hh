/**
 * @file
 * Host-parallel execution of simulated units (§5.4, §6).  The paper
 * saturates 16-32 cores per machine with dynamically dispatched
 * mini-batches; the reproduction models that machine exactly but —
 * before this pool existed — executed every simulated unit
 * back-to-back on one host core.  ThreadPool is the host-side
 * counterpart: a work-stealing pool that runs independent unit
 * tasks (one HybridExplorer::run() each) concurrently.
 *
 * Scheduling is aDFS-style: every worker owns a deque, seeded
 * round-robin; owners pop LIFO from the back (cache-warm), thieves
 * steal FIFO from the front (oldest, largest remaining work).  The
 * pool only decides *when* a task runs, never what it computes —
 * determinism of modeled results is the engine's job (per-unit
 * delta ledgers merged in unit order), so any interleaving the
 * pool produces yields bit-identical counts, stats and traces.
 *
 * Since the QueryService landed, run() is also reentrant across
 * dispatcher threads: concurrent calls are independent jobs whose
 * tasks share the worker deques, which is how N concurrent query
 * sessions interleave fairly on one pool (see run()).
 */

#ifndef KHUZDUL_CORE_PARALLEL_THREAD_POOL_HH
#define KHUZDUL_CORE_PARALLEL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace khuzdul
{
namespace core
{

/** Work-stealing pool of host threads executing indexed tasks. */
class ThreadPool
{
  public:
    /** Spin up @p workers persistent threads (>= 1). */
    explicit ThreadPool(unsigned workers);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned
    workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Resolve a configured thread-count request: 0 means "all
     * hardware threads" (EngineConfig::hostThreads convention);
     * anything else passes through.  Never returns 0.
     */
    static unsigned resolveThreadCount(unsigned requested);

    /**
     * Execute @p body(i) for every i in [0, num_tasks) and block
     * until all complete (the barrier of one run).  Tasks are
     * seeded round-robin across worker deques and stolen as
     * workers drain.  If tasks throw, the exception of the
     * lowest-indexed failing task is rethrown (deterministic
     * regardless of execution order).
     *
     * Reentrant across *threads*: any number of dispatcher threads
     * may have run() calls in flight on one pool — each call is an
     * independent job whose tasks interleave with the others' at
     * task granularity (concurrent jobs seed from rotated home
     * queues, so no job monopolizes the workers; this is the
     * QueryService's fair unit-level interleaving).  Must NOT be
     * called from one of the pool's own worker threads.
     */
    void run(std::size_t num_tasks,
             const std::function<void(std::size_t)> &body);

  private:
    /**
     * One run() call in flight: its body, per-task errors and
     * completion count.  Stack-allocated inside run(), which
     * outlives every queued Task pointing at it (run() returns only
     * when remaining hits 0).
     */
    struct Job
    {
        const std::function<void(std::size_t)> *body = nullptr;
        std::vector<std::exception_ptr> errors; ///< per task index
        std::size_t remaining = 0; ///< tasks not yet finished
    };

    /** One schedulable unit: a task index of one job. */
    struct Task
    {
        Job *job = nullptr;
        std::size_t index = 0;
    };

    /** One worker's task deque (own end = back, steal end = front). */
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void workerLoop(unsigned self);
    bool popOwn(unsigned self, Task &task);
    bool stealFrom(unsigned thief, Task &task);
    void execute(const Task &task);
    bool isWorkerThread() const;

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> threads_;

    /** Guards the shared state below and the cv predicates. */
    std::mutex controlMutex_;
    std::condition_variable workAvailable_; ///< workers wait here
    std::condition_variable jobDone_;       ///< run() calls wait here

    std::size_t queued_ = 0; ///< tasks sitting in deques (all jobs)
    unsigned seedStart_ = 0; ///< rotating home queue of the next job
    bool stop_ = false;
};

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_PARALLEL_THREAD_POOL_HH
