#include "core/parallel/thread_pool.hh"

#include <algorithm>

#include "support/check.hh"

namespace khuzdul
{
namespace core
{

ThreadPool::ThreadPool(unsigned workers)
{
    KHUZDUL_REQUIRE(workers >= 1, "thread pool needs >= 1 worker");
    queues_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(controlMutex_);
        stop_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

unsigned
ThreadPool::resolveThreadCount(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
ThreadPool::run(std::size_t num_tasks,
                const std::function<void(std::size_t)> &body)
{
    if (num_tasks == 0)
        return;
    {
        std::lock_guard<std::mutex> lock(controlMutex_);
        KHUZDUL_CHECK(remaining_ == 0 && body_ == nullptr,
                      "ThreadPool::run is not reentrant");
        body_ = &body;
        errors_.assign(num_tasks, nullptr);
        remaining_ = num_tasks;
        // Counted before the deques fill so queued_ can never
        // underflow: decrements only follow successful pops.
        queued_ = num_tasks;
    }
    // Seed the deques round-robin.  body_ was published under
    // controlMutex_ first, so workers get a release/acquire path to
    // it through whichever lock hands them their first task.
    for (std::size_t t = 0; t < num_tasks; ++t) {
        WorkerQueue &q = *queues_[t % queues_.size()];
        std::lock_guard<std::mutex> lock(q.mutex);
        q.tasks.push_back(t);
    }
    workAvailable_.notify_all();
    {
        std::unique_lock<std::mutex> lock(controlMutex_);
        jobDone_.wait(lock, [this] { return remaining_ == 0; });
        body_ = nullptr;
    }
    // Rethrow the lowest-indexed failure so the surfaced error does
    // not depend on the interleaving.
    for (std::exception_ptr &error : errors_)
        if (error)
            std::rethrow_exception(error);
}

void
ThreadPool::workerLoop(unsigned self)
{
    while (true) {
        {
            std::unique_lock<std::mutex> lock(controlMutex_);
            workAvailable_.wait(
                lock, [this] { return stop_ || queued_ > 0; });
            if (stop_)
                return;
        }
        std::size_t task;
        while (popOwn(self, task) || stealFrom(self, task))
            execute(task);
        // All deques observed empty: tasks never respawn, so the
        // job has no runnable work left for this worker.
    }
}

bool
ThreadPool::popOwn(unsigned self, std::size_t &task)
{
    WorkerQueue &q = *queues_[self];
    {
        std::lock_guard<std::mutex> lock(q.mutex);
        if (q.tasks.empty())
            return false;
        task = q.tasks.back();
        q.tasks.pop_back();
    }
    std::lock_guard<std::mutex> lock(controlMutex_);
    --queued_;
    return true;
}

bool
ThreadPool::stealFrom(unsigned thief, std::size_t &task)
{
    const unsigned n = workers();
    for (unsigned i = 1; i < n; ++i) {
        WorkerQueue &victim = *queues_[(thief + i) % n];
        {
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (victim.tasks.empty())
                continue;
            task = victim.tasks.front();
            victim.tasks.pop_front();
        }
        std::lock_guard<std::mutex> lock(controlMutex_);
        --queued_;
        return true;
    }
    return false;
}

void
ThreadPool::execute(std::size_t task)
{
    std::exception_ptr error;
    try {
        (*body_)(task);
    } catch (...) {
        error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(controlMutex_);
    if (error)
        errors_[task] = error;
    if (--remaining_ == 0)
        jobDone_.notify_all();
}

} // namespace core
} // namespace khuzdul
