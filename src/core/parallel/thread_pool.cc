#include "core/parallel/thread_pool.hh"

#include <algorithm>

#include "support/check.hh"

namespace khuzdul
{
namespace core
{

ThreadPool::ThreadPool(unsigned workers)
{
    KHUZDUL_REQUIRE(workers >= 1, "thread pool needs >= 1 worker");
    queues_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(controlMutex_);
        stop_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

unsigned
ThreadPool::resolveThreadCount(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

bool
ThreadPool::isWorkerThread() const
{
    const std::thread::id self = std::this_thread::get_id();
    return std::any_of(threads_.begin(), threads_.end(),
                       [self](const std::thread &t) {
                           return t.get_id() == self;
                       });
}

void
ThreadPool::run(std::size_t num_tasks,
                const std::function<void(std::size_t)> &body)
{
    if (num_tasks == 0)
        return;
    // A worker blocking in run() would wait on tasks only its own
    // loop (or siblings already saturated by it) could drain.
    KHUZDUL_CHECK(!isWorkerThread(),
                  "ThreadPool::run called from a pool worker thread");

    // The job outlives every queued Task pointing at it: run()
    // returns only after remaining hits 0.
    Job job;
    job.body = &body;
    job.errors.assign(num_tasks, nullptr);
    job.remaining = num_tasks;

    unsigned start;
    {
        std::lock_guard<std::mutex> lock(controlMutex_);
        // Counted before the deques fill so queued_ can never
        // underflow: decrements only follow successful pops.
        queued_ += num_tasks;
        // Concurrent jobs seed from rotated home queues so no job's
        // tasks pile up behind another's (unit-level fairness).
        start = seedStart_;
        seedStart_ = (seedStart_ + 1) % workers();
    }
    // Seed the deques round-robin.  The job state above was written
    // before the pushes, so workers get a release/acquire path to it
    // through whichever queue lock hands them their first task.
    for (std::size_t t = 0; t < num_tasks; ++t) {
        WorkerQueue &q = *queues_[(start + t) % queues_.size()];
        std::lock_guard<std::mutex> lock(q.mutex);
        q.tasks.push_back(Task{&job, t});
    }
    workAvailable_.notify_all();
    {
        std::unique_lock<std::mutex> lock(controlMutex_);
        jobDone_.wait(lock, [&job] { return job.remaining == 0; });
    }
    // Rethrow the lowest-indexed failure so the surfaced error does
    // not depend on the interleaving.
    for (std::exception_ptr &error : job.errors)
        if (error)
            std::rethrow_exception(error);
}

void
ThreadPool::workerLoop(unsigned self)
{
    while (true) {
        {
            std::unique_lock<std::mutex> lock(controlMutex_);
            workAvailable_.wait(
                lock, [this] { return stop_ || queued_ > 0; });
            if (stop_)
                return;
        }
        Task task;
        while (popOwn(self, task) || stealFrom(self, task))
            execute(task);
        // All deques observed empty: tasks never respawn, so no
        // runnable work is left for this worker right now.
    }
}

bool
ThreadPool::popOwn(unsigned self, Task &task)
{
    WorkerQueue &q = *queues_[self];
    {
        std::lock_guard<std::mutex> lock(q.mutex);
        if (q.tasks.empty())
            return false;
        task = q.tasks.back();
        q.tasks.pop_back();
    }
    std::lock_guard<std::mutex> lock(controlMutex_);
    --queued_;
    return true;
}

bool
ThreadPool::stealFrom(unsigned thief, Task &task)
{
    const unsigned n = workers();
    for (unsigned i = 1; i < n; ++i) {
        WorkerQueue &victim = *queues_[(thief + i) % n];
        {
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (victim.tasks.empty())
                continue;
            task = victim.tasks.front();
            victim.tasks.pop_front();
        }
        std::lock_guard<std::mutex> lock(controlMutex_);
        --queued_;
        return true;
    }
    return false;
}

void
ThreadPool::execute(const Task &task)
{
    std::exception_ptr error;
    try {
        (*task.job->body)(task.index);
    } catch (...) {
        error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(controlMutex_);
    if (error)
        task.job->errors[task.index] = error;
    if (--task.job->remaining == 0)
        jobDone_.notify_all();
}

} // namespace core
} // namespace khuzdul
