#include "core/plan_runner.hh"

#include <array>
#include <bit>
#include <vector>

#include "support/check.hh"

namespace khuzdul
{
namespace core
{

namespace
{

/** Recursive interpreter state shared across levels. */
struct Runner
{
    const Graph &g;
    const ExtendPlan &plan;
    MatchVisitor *visitor;
    RunnerHooks *hooks;
    RunnerResult result;

    /** vertices[i] = graph vertex matched at position i. */
    std::array<VertexId, kMaxPatternSize> vertices{};

    /** Candidate set each level was drawn from (VCS source). */
    std::array<std::vector<VertexId>, kMaxPatternSize> candidates{};

    std::vector<VertexId> scratchA;
    std::vector<VertexId> scratchB;
    std::array<ListRef, kMaxPatternSize> listBuf{};

    /** Baselines always run the adaptive dispatcher; charges are
     *  canonical, so their workItems match the pre-kernel runner. */
    KernelDispatcher dispatcher;

    explicit
    Runner(const Graph &graph, const ExtendPlan &p, MatchVisitor *vis,
           RunnerHooks *hk)
        : g(graph), plan(p), visitor(vis), hooks(hk),
          dispatcher(KernelMode::Auto, &graph)
    {}

    std::span<const VertexId>
    edgeList(VertexId v)
    {
        if (hooks)
            hooks->onEdgeListAccess(v);
        return g.neighbors(v);
    }

    /**
     * Materialize the candidate set for position @p t into
     * candidates[t] given matched positions 0..t-1.
     */
    void
    buildCandidates(int t)
    {
        const PlanLevel &level = plan.levels[t];
        std::vector<VertexId> &out = candidates[t];
        PositionMask dep = level.depMask;
        if (level.reuseParent) {
            // Vertical computation sharing: start from the parent's
            // stored result instead of re-intersecting its deps.
            out.assign(candidates[t - 1].begin(), candidates[t - 1].end());
            dep = level.extraDepMask;
        } else {
            std::size_t lists = 0;
            for (int j = 0; j < t; ++j)
                if ((dep >> j) & 1u)
                    listBuf[lists++] = {edgeList(vertices[j]),
                                        vertices[j]};
            if (lists == 1) {
                // Aliasing one already-fetched edge list is free in
                // the model (charging convention, kernels.hh).
                out.assign(listBuf[0].list.begin(),
                           listBuf[0].list.end());
            } else {
                result.workItems += dispatcher.intersectMany(
                    {listBuf.data(), lists}, out, scratchA);
            }
            dep = 0;
        }
        // Extra deps of a reused result are folded in one by one.
        for (int j = 0; j < t; ++j) {
            if ((dep >> j) & 1u) {
                scratchB.clear();
                result.workItems += dispatcher.intersectInto(
                    ListRef(out), {edgeList(vertices[j]), vertices[j]},
                    scratchB);
                out.swap(scratchB);
            }
        }
        // Induced matching: remove neighbors of non-adjacent
        // earlier positions.
        const PositionMask anti = level.reuseParent ? level.extraAntiMask
                                                    : level.antiMask;
        for (int j = 0; j < t; ++j) {
            if ((anti >> j) & 1u) {
                scratchB.clear();
                result.workItems += dispatcher.subtractInto(
                    ListRef(out), {edgeList(vertices[j]), vertices[j]},
                    scratchB);
                out.swap(scratchB);
            }
        }
    }

    /** Filters that are applied per candidate, not per set. */
    bool
    accept(int t, VertexId candidate)
    {
        ++result.candidatesChecked;
        const PlanLevel &level = plan.levels[t];
        if (level.hasLabelFilter && g.label(candidate) != level.labelFilter)
            return false;
        for (int j = 0; j < t; ++j) {
            if (vertices[j] == candidate)
                return false;
            if (((level.greaterThanMask >> j) & 1u)
                && candidate <= vertices[j])
                return false;
        }
        return true;
    }

    /** Terminal IEP block: count the suffix by inclusion-exclusion. */
    void
    terminalIep(int prefix_len)
    {
        std::array<std::int64_t, 32> sizes{};
        for (std::size_t m = 0; m < plan.iep.masks.size(); ++m) {
            const PositionMask mask = plan.iep.masks[m];
            const bool reuse = !plan.iep.maskReuse.empty()
                && plan.iep.maskReuse[m] && prefix_len >= 2;
            std::size_t lists = 0;
            if (reuse) {
                // Vertical sharing into the IEP block.
                listBuf[lists++] = ListRef(candidates[prefix_len - 1]);
                for (int j = 0; j < prefix_len; ++j)
                    if ((plan.iep.maskExtra[m] >> j) & 1u)
                        listBuf[lists++] = {edgeList(vertices[j]),
                                            vertices[j]};
            } else {
                for (int j = 0; j < prefix_len; ++j)
                    if ((mask >> j) & 1u)
                        listBuf[lists++] = {edgeList(vertices[j]),
                                            vertices[j]};
            }
            Count count = 0;
            result.workItems += dispatcher.intersectManyCount(
                {listBuf.data(), lists}, count, scratchA, scratchB);
            std::int64_t size = static_cast<std::int64_t>(count);
            // Candidate sets must exclude already-matched vertices.
            for (int j = 0; j < prefix_len; ++j) {
                bool inside = true;
                for (std::size_t l = 0; l < lists && inside; ++l)
                    inside = contains(listBuf[l].list, vertices[j]);
                if (inside)
                    --size;
            }
            sizes[m] = size;
        }
        for (const IepBlock::Term &term : plan.iep.terms) {
            std::int64_t product = term.coefficient;
            for (const int idx : term.maskIndex)
                product *= sizes[idx];
            result.rawCount += product;
        }
    }

    /** Terminal without IEP: scan position n-1 candidates. */
    void
    terminalScan()
    {
        const int t = plan.pattern.size() - 1;
        buildCandidates(t);
        for (const VertexId candidate : candidates[t]) {
            if (!accept(t, candidate))
                continue;
            ++result.rawCount;
            if (visitor) {
                vertices[t] = candidate;
                visitor->match({vertices.data(),
                                static_cast<std::size_t>(t + 1)});
            }
        }
    }

    void
    recurse(int level)
    {
        ++result.embeddingsVisited;
        const int n = plan.pattern.size();
        const int prefix_len = plan.numMaterializedLevels();
        if (plan.hasIep && level == prefix_len - 1) {
            terminalIep(prefix_len);
            return;
        }
        if (!plan.hasIep && level == n - 2) {
            terminalScan();
            return;
        }
        const int t = level + 1;
        buildCandidates(t);
        // candidates[t] is iterated by index because deeper levels
        // reuse it (VCS) via candidates[t] itself; reallocation is
        // impossible since buildCandidates(t') with t' > t writes
        // other slots.
        for (std::size_t i = 0; i < candidates[t].size(); ++i) {
            const VertexId candidate = candidates[t][i];
            if (!accept(t, candidate))
                continue;
            vertices[t] = candidate;
            recurse(t);
        }
    }
};

} // namespace

RunnerResult
runPlanDfs(const Graph &g, const ExtendPlan &plan,
           std::span<const VertexId> roots, MatchVisitor *visitor,
           RunnerHooks *hooks)
{
    const int n = plan.pattern.size();
    KHUZDUL_REQUIRE(n >= 1, "plan has no levels");
    if (visitor) {
        KHUZDUL_REQUIRE(!plan.hasIep,
                        "visitors cannot observe IEP-folded embeddings");
        KHUZDUL_REQUIRE(plan.countDivisor == 1,
                        "visitors need complete symmetry breaking");
    }
    Runner runner(g, plan, visitor, hooks);
    const PlanLevel &root = plan.levels[0];
    for (const VertexId v : roots) {
        if (root.hasLabelFilter && g.label(v) != root.labelFilter)
            continue;
        runner.vertices[0] = v;
        if (n == 1) {
            ++runner.result.rawCount;
            ++runner.result.embeddingsVisited;
            if (visitor)
                visitor->match({runner.vertices.data(), 1});
            continue;
        }
        runner.recurse(0);
    }
    return runner.result;
}

Count
countWithPlan(const Graph &g, const ExtendPlan &plan)
{
    std::vector<VertexId> roots(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        roots[v] = v;
    const RunnerResult result = runPlanDfs(g, plan, roots);
    KHUZDUL_CHECK(result.rawCount >= 0, "negative raw count");
    KHUZDUL_CHECK(result.rawCount % plan.countDivisor == 0,
                  "raw count " << result.rawCount
                  << " not divisible by divisor " << plan.countDivisor);
    return static_cast<Count>(result.rawCount / plan.countDivisor);
}

} // namespace core
} // namespace khuzdul
