#include "core/provider.hh"

#include "support/check.hh"

namespace khuzdul
{
namespace core
{

const char *
resolutionKindName(ResolutionKind kind)
{
    switch (kind) {
      case ResolutionKind::Local:
        return "local";
      case ResolutionKind::CacheHit:
        return "cache";
      case ResolutionKind::Shared:
        return "shared";
      case ResolutionKind::Remote:
        return "remote";
    }
    KHUZDUL_PANIC("unreachable resolution kind");
}

EdgeListProvider::EdgeListProvider(const Graph &g,
                                   const Partition &partition,
                                   DataCache *cache,
                                   bool horizontal_sharing, Costs costs,
                                   sim::TraceSink &trace)
    : graph_(&g), partition_(&partition), cache_(cache),
      horizontalSharing_(horizontal_sharing), costs_(costs),
      trace_(&trace)
{}

EdgeListProvider::Costs
EdgeListProvider::engineCosts(const sim::CostModel &cost,
                              const DataCache &cache)
{
    const bool replacement = cache.policy() != CachePolicy::Static
        && cache.policy() != CachePolicy::None;
    Costs costs;
    costs.cacheProbeNs = replacement ? cost.replacementCacheProbeNs
                                     : cost.staticCacheProbeNs;
    costs.cacheAdmitNs = replacement ? cost.replacementAllocNs : 0;
    costs.hashProbeNs = cost.hashProbeNs;
    return costs;
}

Resolution
EdgeListProvider::resolve(unsigned requester, VertexId v,
                          HorizontalTable *table,
                          sim::NodeStats &stats, int level)
{
    Resolution r;
    r.owner = partition_->ownerUnit(v);
    if (r.owner == requester) {
        ++stats.listsServedLocal;
        r.kind = ResolutionKind::Local;
        return r;
    }
    if (cache_) {
        stats.cacheNs += costs_.cacheProbeNs;
        if (cache_->lookup(v)) {
            ++stats.staticCacheHits;
            trace_->emit({sim::PhaseEvent::CacheHit, requester, level,
                          v, 0});
            r.kind = ResolutionKind::CacheHit;
            return r;
        }
        ++stats.staticCacheMisses;
        trace_->emit({sim::PhaseEvent::CacheMiss, requester, level, v,
                      0});
    }
    if (horizontalSharing_ && table) {
        stats.cacheNs += costs_.hashProbeNs;
        const auto probe = table->offer(v);
        if (probe == HorizontalTable::Probe::Hit) {
            ++stats.horizontalHits;
            r.kind = ResolutionKind::Shared;
            return r;
        }
        if (probe == HorizontalTable::Probe::Dropped)
            ++stats.horizontalDrops;
    }
    r.kind = ResolutionKind::Remote;
    r.bytes = graph_->edgeListBytes(v);
    // Admission attempt after the fetch.
    if (cache_ && cache_->insert(v)) {
        ++stats.staticCacheInsertions;
        stats.cacheNs += costs_.cacheAdmitNs;
        r.admitted = true;
    }
    return r;
}

} // namespace core
} // namespace khuzdul
