#include "core/provider.hh"

#include "support/check.hh"

namespace khuzdul
{
namespace core
{

const char *
resolutionKindName(ResolutionKind kind)
{
    switch (kind) {
      case ResolutionKind::Local:
        return "local";
      case ResolutionKind::CacheHit:
        return "cache";
      case ResolutionKind::Shared:
        return "shared";
      case ResolutionKind::Remote:
        return "remote";
      case ResolutionKind::Reconstructed:
        return "reconstructed";
    }
    KHUZDUL_PANIC("unreachable resolution kind");
}

EdgeListProvider::EdgeListProvider(const Graph &g,
                                   const Partition &partition,
                                   DataCache *cache,
                                   bool horizontal_sharing, Costs costs,
                                   sim::TraceSink &trace)
    : graph_(&g), partition_(&partition), cache_(cache),
      horizontalSharing_(horizontal_sharing), costs_(costs),
      trace_(&trace)
{}

EdgeListProvider::Costs
EdgeListProvider::engineCosts(const sim::CostModel &cost,
                              const DataCache &cache)
{
    const bool replacement = cache.policy() != CachePolicy::Static
        && cache.policy() != CachePolicy::None;
    Costs costs;
    costs.cacheProbeNs = replacement ? cost.replacementCacheProbeNs
                                     : cost.staticCacheProbeNs;
    costs.cacheAdmitNs = replacement ? cost.replacementAllocNs : 0;
    costs.hashProbeNs = cost.hashProbeNs;
    costs.reconstructScanNs = cost.candidateCheckNs;
    return costs;
}

Resolution
EdgeListProvider::resolve(unsigned requester, VertexId v,
                          HorizontalTable *table,
                          sim::NodeStats &stats, int level,
                          sim::FaultSession *faults)
{
    Resolution r;
    r.owner = partition_->ownerUnit(v);
    if (r.owner == requester) {
        ++stats.listsServedLocal;
        r.kind = ResolutionKind::Local;
        return r;
    }
    if (cache_) {
        stats.cacheNs += costs_.cacheProbeNs;
        if (cache_->lookup(v)) {
            ++stats.staticCacheHits;
            trace_->emit({sim::PhaseEvent::CacheHit, requester, level,
                          v, 0});
            r.kind = ResolutionKind::CacheHit;
            return r;
        }
        ++stats.staticCacheMisses;
        trace_->emit({sim::PhaseEvent::CacheMiss, requester, level, v,
                      0});
    }
    if (faults
        && faults->nodePermanentlyDown(partition_->ownerNode(v)))
        return resolveDownOwner(requester, v, stats, faults, r);
    if (horizontalSharing_ && table) {
        stats.cacheNs += costs_.hashProbeNs;
        const auto probe = table->offer(v);
        if (probe == HorizontalTable::Probe::Hit) {
            ++stats.horizontalHits;
            r.kind = ResolutionKind::Shared;
            return r;
        }
        if (probe == HorizontalTable::Probe::Dropped)
            ++stats.horizontalDrops;
    }
    r.kind = ResolutionKind::Remote;
    r.bytes = graph_->edgeListBytes(v);
    noteRemoteFetch(requester, v);
    // Admission attempt after the fetch.
    if (cache_ && cache_->insert(v)) {
        ++stats.staticCacheInsertions;
        stats.cacheNs += costs_.cacheAdmitNs;
        r.admitted = true;
    }
    return r;
}

Resolution
EdgeListProvider::resolveDownOwner(unsigned requester, VertexId v,
                                   sim::NodeStats &stats,
                                   sim::FaultSession *faults,
                                   Resolution r)
{
    // The cache already missed above; next rung is local CSR
    // reconstruction.  Every edge is stored at both endpoints
    // (partition §2.2), so N(v) is fully available locally exactly
    // when every neighbor of v lives on the requester's node.  The
    // feasibility scan is charged per examined neighbor whether it
    // succeeds or not.
    const NodeId req_node =
        static_cast<NodeId>(requester / partition_->socketsPerNode());
    std::uint64_t scanned = 0;
    bool reconstructable = true;
    for (const VertexId u : graph_->neighbors(v)) {
        ++scanned;
        if (partition_->ownerNode(u) != req_node) {
            reconstructable = false;
            break;
        }
    }
    const double scan_ns =
        costs_.reconstructScanNs * static_cast<double>(scanned);
    stats.cacheNs += scan_ns;
    stats.recoveryNs += scan_ns;
    if (reconstructable) {
        ++stats.reconstructedLists;
        r.kind = ResolutionKind::Reconstructed;
        return r;
    }
    // Last rung: re-fetch from the replica owner — the down owner's
    // socket slot on successive nodes of the hash chain, skipping
    // nodes that are down themselves.
    const unsigned step = partition_->socketsPerNode();
    const unsigned units = partition_->numUnits();
    unsigned replica = r.owner;
    do {
        replica = (replica + step) % units;
    } while (replica != r.owner
             && faults->nodePermanentlyDown(replica / step));
    if (replica == r.owner)
        throw sim::FabricFault(
            "no live replica for vertex owned by a down node");
    r.owner = replica;
    ++stats.reroutedFetches;
    r.kind = ResolutionKind::Remote;
    r.bytes = graph_->edgeListBytes(v);
    noteRemoteFetch(requester, v);
    if (cache_ && cache_->insert(v)) {
        ++stats.staticCacheInsertions;
        stats.cacheNs += costs_.cacheAdmitNs;
        r.admitted = true;
    }
    return r;
}

} // namespace core
} // namespace khuzdul
