/**
 * @file
 * Adaptive sorted-list set-kernel suite: the computational heart of
 * pattern-aware enumeration (every extension is an intersection of
 * active edge lists, §3.1).  Six interchangeable kernels implement
 * each set operation:
 *
 *   - Merge: the reference two-pointer merge (the modeled machine);
 *   - Blocked: an unrolled, branch-light merge for near-equal sizes;
 *   - Gallop: exponential-probe binary search driven by the smaller
 *     list, for skewed size ratios (hub vs. candidate lists);
 *   - Bitmap: per-element bit tests against a precomputed hub-vertex
 *     bitset stored on the Graph (Graph::buildHubBitmaps), with a
 *     word-parallel gather fast path when the SIMD tier is live;
 *   - SimdMerge: AVX2 shuffle-based all-pairs block merge for
 *     near-equal sizes (8x8 lane comparisons + table-driven lane
 *     compaction);
 *   - SimdGallop: galloping search whose landing window is resolved
 *     with one 8-lane vector compare instead of the final binary
 *     search steps.
 *
 * The SIMD tier is compiled per-function (target("avx2")) and gated
 * at runtime behind CPU-feature detection (simdAvailable()): on
 * hosts or builds without AVX2 every entry point falls back to the
 * scalar kernels with byte-identical outputs and charges.
 *
 * A KernelDispatcher picks the kernel per call from the size ratio
 * and hub-bitmap availability (or a forced KernelMode for A/B runs).
 *
 * ## Charging convention (canonical work)
 *
 * Kernels return WorkItems — the modeled compute charge consumed by
 * sim::CostModel.  The charge is *canonical*: every kernel reports
 * the element count the reference two-pointer merge would have
 * consumed on the same inputs, regardless of how few elements the
 * kernel actually touched.  For strictly-sorted duplicate-free
 * spans (the CSR invariant) that count has a closed form evaluated
 * with one binary search (canonicalIntersectWork /
 * canonicalSubtractWork), so modeled makespans, RunStats and every
 * EXPERIMENTS.md shape are bit-identical no matter which kernel
 * ran; only host wall-clock changes.  Operations that copy rather
 * than merge charge one WorkItem per element copied (the
 * intersectMany single-list pass-through); O(1) reads (the
 * intersectManyCount single-list size probe) charge 0.  Callers
 * that alias an already-materialized list instead of copying charge
 * nothing — the transfer was already charged by the provider layer.
 *
 * All kernels require strictly ascending, duplicate-free inputs and
 * produce outputs that are element-for-element identical to the
 * reference merge.
 */

#ifndef KHUZDUL_CORE_KERNELS_KERNELS_HH
#define KHUZDUL_CORE_KERNELS_KERNELS_HH

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace core
{

/** Work units charged by a kernel (canonical merge elements). */
using WorkItems = std::uint64_t;

/** The kernel that executed one set operation. */
enum class KernelKind : std::uint8_t
{
    Merge,      ///< reference two-pointer merge
    Blocked,    ///< unrolled branch-light merge (near-equal sizes)
    Gallop,     ///< galloping binary search (skewed ratios)
    Bitmap,     ///< hub-vertex bitset probe (Graph::hubBitmapRow)
    SimdMerge,  ///< AVX2 shuffle-based block merge
    SimdGallop, ///< galloping search with vectorized landing window
};

inline constexpr std::size_t kNumKernelKinds = 6;

/** Stable lowercase name ("merge", ..., "simd_merge", "simd_gallop"). */
const char *kernelKindName(KernelKind kind);

/** Dispatcher policy: adaptive, or one kernel forced for A/B. */
enum class KernelMode : std::uint8_t
{
    Auto,   ///< pick per call from size ratio + bitmap availability
    Merge,  ///< always the reference merge (the modeled machine)
    Gallop, ///< always galloping search
    Bitmap, ///< bitmap wherever a hub row exists, else merge
    Simd,   ///< SIMD tier wherever it applies (scalar when unavailable)
};

/** Stable lowercase name ("auto", "merge", "gallop", "bitmap", "simd"). */
const char *kernelModeName(KernelMode mode);

/** Parse a --kernel value; aborts on unknown names. */
KernelMode parseKernelMode(const std::string &name);

/** Per-kind dispatch tallies (pairwise kernel executions). */
struct KernelCounters
{
    std::array<std::uint64_t, kNumKernelKinds> calls{};

    std::uint64_t
    operator[](KernelKind kind) const
    {
        return calls[static_cast<std::size_t>(kind)];
    }

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const std::uint64_t c : calls)
            sum += c;
        return sum;
    }
};

/**
 * A sorted list plus its provenance: when the span is exactly the
 * full neighbor list N(source) the dispatcher can substitute the
 * source's hub bitmap.  Intermediate results carry no source.
 */
struct ListRef
{
    std::span<const VertexId> list;
    VertexId source = kInvalidVertex;

    ListRef() = default;
    ListRef(std::span<const VertexId> l, VertexId src = kInvalidVertex)
        : list(l), source(src)
    {}
    ListRef(const std::vector<VertexId> &l) : list(l) {}

    std::size_t size() const { return list.size(); }
};

/** @name Canonical (merge-equivalent) work, in closed form
 *
 * What the reference two-pointer loop would consume on
 * strictly-sorted duplicate-free inputs, computed with one binary
 * search instead of running the merge.
 */
/// @{
WorkItems canonicalIntersectWork(std::span<const VertexId> a,
                                 std::span<const VertexId> b);
WorkItems canonicalSubtractWork(std::span<const VertexId> a,
                                std::span<const VertexId> b);
/// @}

/** @name Reference merge kernels (today's modeled machine)
 *
 * These free functions are the canonical implementations: every
 * other kernel must match their output element-for-element and
 * their WorkItems exactly.
 */
/// @{

/** out = a ∩ b (out may not alias inputs). */
WorkItems intersectInto(std::span<const VertexId> a,
                        std::span<const VertexId> b,
                        std::vector<VertexId> &out);

/** |a ∩ b| without materializing. */
WorkItems intersectCount(std::span<const VertexId> a,
                         std::span<const VertexId> b, Count &count);

/** out = a \ b (sorted difference; induced matching). */
WorkItems subtractInto(std::span<const VertexId> a,
                       std::span<const VertexId> b,
                       std::vector<VertexId> &out);

/**
 * out = intersection of all @p lists (1..8), folded smallest-first
 * (stable on size ties) to keep intermediates tight.  A single list
 * is copied into @p out and charged one WorkItem per element copied.
 */
WorkItems intersectMany(std::span<const std::span<const VertexId>> lists,
                        std::vector<VertexId> &out,
                        std::vector<VertexId> &scratch);

/**
 * |intersection of all lists| without materializing the result.
 * Both scratch buffers are clobbered.  A single list is an O(1)
 * size probe and charges 0.
 */
WorkItems intersectManyCount(
    std::span<const std::span<const VertexId>> lists, Count &count,
    std::vector<VertexId> &scratch_a, std::vector<VertexId> &scratch_b);
/// @}

/** @name Membership probe
 *
 * Linear scan below kContainsLinearCutoff (branch-predictable, no
 * pipeline flush from the halving loop), binary search above; the
 * cutoff is benchmarked in micro_core (BM_Contains*).
 */
/// @{
inline constexpr std::size_t kContainsLinearCutoff = 32;

bool contains(std::span<const VertexId> list, VertexId v);
bool containsLinear(std::span<const VertexId> list, VertexId v);
bool containsBinary(std::span<const VertexId> list, VertexId v);
/// @}

/** @name Alternative kernels (dispatched; also exposed for bench) */
/// @{
WorkItems blockedIntersectInto(std::span<const VertexId> a,
                               std::span<const VertexId> b,
                               std::vector<VertexId> &out);
WorkItems blockedIntersectCount(std::span<const VertexId> a,
                                std::span<const VertexId> b,
                                Count &count);

/** Galloping kernels; @p a should be the smaller (driving) list. */
WorkItems gallopIntersectInto(std::span<const VertexId> a,
                              std::span<const VertexId> b,
                              std::vector<VertexId> &out);
WorkItems gallopIntersectCount(std::span<const VertexId> a,
                               std::span<const VertexId> b,
                               Count &count);
WorkItems gallopSubtractInto(std::span<const VertexId> a,
                             std::span<const VertexId> b,
                             std::vector<VertexId> &out);

/**
 * Bitmap kernels: @p hub_list is N(h) and @p row its bitmap words
 * (Graph::hubBitmapRow(h)); the smaller list @p a drives.
 */
WorkItems bitmapIntersectInto(std::span<const VertexId> a,
                              std::span<const VertexId> hub_list,
                              const std::uint64_t *row,
                              std::vector<VertexId> &out);
WorkItems bitmapIntersectCount(std::span<const VertexId> a,
                               std::span<const VertexId> hub_list,
                               const std::uint64_t *row, Count &count);
WorkItems bitmapSubtractInto(std::span<const VertexId> a,
                             std::span<const VertexId> hub_list,
                             const std::uint64_t *row,
                             std::vector<VertexId> &out);
/// @}

/** @name SIMD tier (AVX2, runtime-detected)
 *
 * Output and charge byte-identical to the reference merge; when the
 * tier is unavailable (build-time KHUZDUL_NO_SIMD, non-x86, or the
 * CPU lacks AVX2) every entry point transparently runs the matching
 * scalar kernel.
 */
/// @{

/** True when AVX2 code paths were compiled into this binary. */
bool simdCompiled();

/** True when compiled AND the CPU reports AVX2 AND not disabled. */
bool simdAvailable();

/**
 * Host-side kill switch (tests/bench force the scalar fallback in an
 * AVX2 binary to prove byte-identical outputs).  Dispatchers snapshot
 * availability at construction, so toggle before building an engine.
 */
void setSimdEnabled(bool enabled);

WorkItems simdMergeIntersectInto(std::span<const VertexId> a,
                                 std::span<const VertexId> b,
                                 std::vector<VertexId> &out);
WorkItems simdMergeIntersectCount(std::span<const VertexId> a,
                                  std::span<const VertexId> b,
                                  Count &count);

/** SIMD galloping kernels; @p a is the smaller (driving) list. */
WorkItems simdGallopIntersectInto(std::span<const VertexId> a,
                                  std::span<const VertexId> b,
                                  std::vector<VertexId> &out);
WorkItems simdGallopIntersectCount(std::span<const VertexId> a,
                                   std::span<const VertexId> b,
                                   Count &count);
WorkItems simdGallopSubtractInto(std::span<const VertexId> a,
                                 std::span<const VertexId> b,
                                 std::vector<VertexId> &out);

namespace detail
{
/** Word-parallel bitmap row probes (gather + variable shift); the
 *  bitmap kernels call these only when simdAvailable(). */
Count simdBitmapCount(std::span<const VertexId> a,
                      const std::uint64_t *row);
void simdBitmapFilter(std::span<const VertexId> a,
                      const std::uint64_t *row, bool keep_members,
                      std::vector<VertexId> &out);
} // namespace detail
/// @}

/** @name Dispatch heuristics (size-ratio thresholds)
 *
 * Retuned from the BENCH_kernels.json calibration sweep: gallop's
 * crossover against merge sits between ratio 4 (merge wins 1.15x)
 * and ratio 15 (gallop wins 1.7x), so the gallop threshold dropped
 * from 16 to 8; blocked lost to plain merge on every sweep row, so
 * Auto no longer selects it (the kernel stays for bench comparison).
 * On the skew branch Auto also prefers *scalar* gallop: the sweep
 * shows SimdGallop's vectorized landing window losing to the plain
 * binary narrow at every ratio >= kGallopRatio, so under Auto the
 * SIMD tier engages only as SimdMerge (near-equal sizes) and the
 * word-parallel bitmap path; SimdGallop stays reachable through
 * KernelMode::Simd and the benchmarks.
 */
/// @{
/** Gallop when the larger list is >= this multiple of the smaller. */
inline constexpr std::size_t kGallopRatio = 8;
/** Bitmap (if a hub row exists) at this ratio and above. */
inline constexpr std::size_t kBitmapRatio = 4;
/** Blocked merge only when both lists have at least this many. */
inline constexpr std::size_t kBlockedMinSize = 32;
/** SIMD kernels engage when the driving list has at least this many
 *  elements (below this the vector setup outweighs the win). */
inline constexpr std::size_t kSimdMinSize = 16;
/// @}

/**
 * Per-call kernel selection.  One dispatcher per execution unit
 * (PlanExtender / plan-runner instance); counters attribute every
 * pairwise set operation to the kernel that executed it.  Charged
 * WorkItems are canonical (see file header), so the choice of mode
 * never changes modeled time or stats — only wall-clock.
 */
class KernelDispatcher
{
  public:
    explicit KernelDispatcher(KernelMode mode = KernelMode::Auto,
                              const Graph *graph = nullptr)
        : mode_(mode), graph_(graph), simd_(simdAvailable())
    {}

    KernelMode mode() const { return mode_; }

    const KernelCounters &counters() const { return counters_; }

    WorkItems intersectInto(const ListRef &a, const ListRef &b,
                            std::vector<VertexId> &out);
    WorkItems intersectCount(const ListRef &a, const ListRef &b,
                             Count &count);
    WorkItems subtractInto(const ListRef &a, const ListRef &b,
                           std::vector<VertexId> &out);

    /** Smallest-first folds mirroring the reference free functions
     *  (identical fold order, hence identical canonical charges). */
    WorkItems intersectMany(std::span<const ListRef> lists,
                            std::vector<VertexId> &out,
                            std::vector<VertexId> &scratch);
    WorkItems intersectManyCount(std::span<const ListRef> lists,
                                 Count &count,
                                 std::vector<VertexId> &scratch_a,
                                 std::vector<VertexId> &scratch_b);

  private:
    /** Hub bitmap of @p ref's source, or nullptr. */
    const std::uint64_t *rowFor(const ListRef &ref) const;

    KernelMode mode_;
    const Graph *graph_;
    bool simd_; ///< simdAvailable() snapshot at construction
    KernelCounters counters_;
};

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_KERNELS_KERNELS_HH
