/**
 * @file
 * Galloping (exponential-probe binary search) kernels for skewed
 * list-size ratios: the smaller list drives, each of its elements
 * located in the larger list in O(log gap) from a moving cursor.
 * A hub list of 10k against a candidate list of 12 costs ~12 log 10k
 * probes instead of the merge's ~10k comparisons; the charge stays
 * the canonical merge-equivalent work.
 */

#include "core/kernels/kernels.hh"

#include <algorithm>

namespace khuzdul
{
namespace core
{

namespace
{

/**
 * First position in [first, last) with value >= x, found by
 * doubling probes from @p first then binary search in the bracketed
 * range — O(log distance) instead of O(log |list|).
 */
const VertexId *
gallopLowerBound(const VertexId *first, const VertexId *last, VertexId x)
{
    if (first == last || *first >= x)
        return first;
    // Invariant: first[lo] < x; first + hi is the probe.
    std::size_t lo = 0;
    std::size_t hi = 1;
    while (first + hi < last && first[hi] < x) {
        lo = hi;
        hi <<= 1;
    }
    const VertexId *begin = first + lo + 1;
    const VertexId *end = first + hi < last ? first + hi + 1 : last;
    return std::lower_bound(begin, end, x);
}

} // namespace

WorkItems
gallopIntersectInto(std::span<const VertexId> a,
                    std::span<const VertexId> b,
                    std::vector<VertexId> &out)
{
    out.clear();
    const WorkItems work = canonicalIntersectWork(a, b);
    const VertexId *cursor = b.data();
    const VertexId *const end = cursor + b.size();
    for (const VertexId x : a) {
        cursor = gallopLowerBound(cursor, end, x);
        if (cursor == end)
            break;
        if (*cursor == x) {
            out.push_back(x);
            ++cursor;
        }
    }
    return work;
}

WorkItems
gallopIntersectCount(std::span<const VertexId> a,
                     std::span<const VertexId> b, Count &count)
{
    count = 0;
    const WorkItems work = canonicalIntersectWork(a, b);
    const VertexId *cursor = b.data();
    const VertexId *const end = cursor + b.size();
    for (const VertexId x : a) {
        cursor = gallopLowerBound(cursor, end, x);
        if (cursor == end)
            break;
        if (*cursor == x) {
            ++count;
            ++cursor;
        }
    }
    return work;
}

WorkItems
gallopSubtractInto(std::span<const VertexId> a,
                   std::span<const VertexId> b,
                   std::vector<VertexId> &out)
{
    out.clear();
    const WorkItems work = canonicalSubtractWork(a, b);
    const VertexId *cursor = b.data();
    const VertexId *const end = cursor + b.size();
    for (const VertexId x : a) {
        cursor = gallopLowerBound(cursor, end, x);
        if (cursor != end && *cursor == x)
            ++cursor;
        else
            out.push_back(x);
    }
    return work;
}

} // namespace core
} // namespace khuzdul
