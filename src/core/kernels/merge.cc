/**
 * @file
 * Reference two-pointer merge kernels (the modeled machine every
 * other kernel must match bit-for-bit in output and charge), the
 * closed-form canonical work computation, the blocked branch-light
 * merge, the many-list folds and the membership probe.
 */

#include "core/kernels/kernels.hh"

#include <algorithm>

#include "support/check.hh"

namespace khuzdul
{
namespace core
{

WorkItems
canonicalIntersectWork(std::span<const VertexId> a,
                       std::span<const VertexId> b)
{
    // The two-pointer loop stops when one list is exhausted; for
    // strictly-sorted inputs the other pointer then sits past every
    // element <= the exhausted list's maximum.
    if (a.empty() || b.empty())
        return 0;
    if (a.back() <= b.back())
        return a.size()
            + static_cast<WorkItems>(
                std::upper_bound(b.begin(), b.end(), a.back())
                - b.begin());
    return b.size()
        + static_cast<WorkItems>(
            std::upper_bound(a.begin(), a.end(), b.back())
            - a.begin());
}

WorkItems
canonicalSubtractWork(std::span<const VertexId> a,
                      std::span<const VertexId> b)
{
    // Subtraction always consumes all of a, plus every b element
    // <= a's maximum.
    if (a.empty())
        return 0;
    return a.size()
        + static_cast<WorkItems>(
            std::upper_bound(b.begin(), b.end(), a.back())
            - b.begin());
}

WorkItems
intersectInto(std::span<const VertexId> a, std::span<const VertexId> b,
              std::vector<VertexId> &out)
{
    out.clear();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
            ++i;
        } else if (a[i] > b[j]) {
            ++j;
        } else {
            out.push_back(a[i]);
            ++i;
            ++j;
        }
    }
    return i + j;
}

WorkItems
intersectCount(std::span<const VertexId> a, std::span<const VertexId> b,
               Count &count)
{
    count = 0;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
            ++i;
        } else if (a[i] > b[j]) {
            ++j;
        } else {
            ++count;
            ++i;
            ++j;
        }
    }
    return i + j;
}

WorkItems
subtractInto(std::span<const VertexId> a, std::span<const VertexId> b,
             std::vector<VertexId> &out)
{
    out.clear();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size()) {
        if (j == b.size() || a[i] < b[j]) {
            out.push_back(a[i]);
            ++i;
        } else if (a[i] > b[j]) {
            ++j;
        } else {
            ++i;
            ++j;
        }
    }
    return i + j;
}

WorkItems
blockedIntersectInto(std::span<const VertexId> a,
                     std::span<const VertexId> b,
                     std::vector<VertexId> &out)
{
    out.clear();
    const VertexId *pa = a.data();
    const VertexId *pb = b.data();
    const VertexId *const ea = pa + a.size();
    const VertexId *const eb = pb + b.size();
    // Each step advances each pointer by at most one, so a 4-wide
    // block needs 4 elements of headroom on both sides.
    while (pa + 4 <= ea && pb + 4 <= eb) {
        for (int k = 0; k < 4; ++k) {
            const VertexId va = *pa;
            const VertexId vb = *pb;
            if (va == vb)
                out.push_back(va);
            pa += va <= vb;
            pb += vb <= va;
        }
    }
    while (pa < ea && pb < eb) {
        const VertexId va = *pa;
        const VertexId vb = *pb;
        if (va == vb)
            out.push_back(va);
        pa += va <= vb;
        pb += vb <= va;
    }
    return static_cast<WorkItems>(pa - a.data())
        + static_cast<WorkItems>(pb - b.data());
}

WorkItems
blockedIntersectCount(std::span<const VertexId> a,
                      std::span<const VertexId> b, Count &count)
{
    count = 0;
    const VertexId *pa = a.data();
    const VertexId *pb = b.data();
    const VertexId *const ea = pa + a.size();
    const VertexId *const eb = pb + b.size();
    while (pa + 4 <= ea && pb + 4 <= eb) {
        for (int k = 0; k < 4; ++k) {
            const VertexId va = *pa;
            const VertexId vb = *pb;
            count += va == vb;
            pa += va <= vb;
            pb += vb <= va;
        }
    }
    while (pa < ea && pb < eb) {
        const VertexId va = *pa;
        const VertexId vb = *pb;
        count += va == vb;
        pa += va <= vb;
        pb += vb <= va;
    }
    return static_cast<WorkItems>(pa - a.data())
        + static_cast<WorkItems>(pb - b.data());
}

namespace
{

/** Stable smallest-first ordering of <= 8 spans: insertion sort is
 *  branch-light at this size and, unlike std::sort, guarantees a
 *  deterministic order on size ties. */
template <typename List>
void
sortBySizeStable(std::array<List, 8> &lists, std::size_t n)
{
    for (std::size_t i = 1; i < n; ++i) {
        const List key = lists[i];
        std::size_t j = i;
        while (j > 0 && lists[j - 1].size() > key.size()) {
            lists[j] = lists[j - 1];
            --j;
        }
        lists[j] = key;
    }
}

} // namespace

WorkItems
intersectMany(std::span<const std::span<const VertexId>> lists,
              std::vector<VertexId> &out, std::vector<VertexId> &scratch)
{
    KHUZDUL_CHECK(!lists.empty() && lists.size() <= 8,
                  "intersectMany needs 1..8 lists");
    // Fold smallest-first to keep intermediates tight; a fixed
    // array keeps this allocation-free (hot path).
    std::array<std::span<const VertexId>, 8> sorted;
    std::copy(lists.begin(), lists.end(), sorted.begin());
    sortBySizeStable(sorted, lists.size());
    if (lists.size() == 1) {
        // Pass-through materializes a copy; charge it (one WorkItem
        // per element copied — see the charging convention).
        out.assign(sorted[0].begin(), sorted[0].end());
        return out.size();
    }
    WorkItems work = intersectInto(sorted[0], sorted[1], out);
    for (std::size_t k = 2; k < lists.size(); ++k) {
        if (out.empty())
            break;
        scratch.clear();
        work += intersectInto(out, sorted[k], scratch);
        out.swap(scratch);
    }
    return work;
}

WorkItems
intersectManyCount(std::span<const std::span<const VertexId>> lists,
                   Count &count, std::vector<VertexId> &scratch_a,
                   std::vector<VertexId> &scratch_b)
{
    KHUZDUL_CHECK(!lists.empty(), "intersectManyCount needs >= 1 list");
    if (lists.size() == 1) {
        // O(1) size probe: nothing is touched or copied, charge 0.
        count = lists[0].size();
        return 0;
    }
    if (lists.size() == 2)
        return intersectCount(lists[0], lists[1], count);
    WorkItems work = intersectMany(lists.first(lists.size() - 1),
                                   scratch_a, scratch_b);
    Count final_count = 0;
    work += intersectCount(scratch_a, lists.back(), final_count);
    count = final_count;
    return work;
}

bool
containsLinear(std::span<const VertexId> list, VertexId v)
{
    for (const VertexId x : list) {
        if (x >= v)
            return x == v;
    }
    return false;
}

bool
containsBinary(std::span<const VertexId> list, VertexId v)
{
    return std::binary_search(list.begin(), list.end(), v);
}

bool
contains(std::span<const VertexId> list, VertexId v)
{
    if (list.size() <= kContainsLinearCutoff)
        return containsLinear(list, v);
    return containsBinary(list, v);
}

} // namespace core
} // namespace khuzdul
