/**
 * @file
 * Per-call kernel selection.  The dispatcher orders each pairwise
 * operation small-list-first, then picks bitmap (hub row available
 * and ratio >= kBitmapRatio), galloping (ratio >= kGallopRatio) or
 * merging — vectorized variants when the SIMD tier is live and the
 * driving list clears kSimdMinSize — or obeys a forced KernelMode
 * for A/B runs.  Blocked merge is no longer selected by Auto: the
 * BENCH_kernels.json calibration sweep showed it losing to plain
 * merge on every row (speedup 0.56-0.90), the regression this
 * retune fixes.  Every path returns the canonical merge-equivalent
 * charge, so mode choice is invisible to the cost model.
 */

#include "core/kernels/kernels.hh"

#include <algorithm>

#include "support/check.hh"

namespace khuzdul
{
namespace core
{

const char *
kernelKindName(KernelKind kind)
{
    switch (kind) {
      case KernelKind::Merge:
        return "merge";
      case KernelKind::Blocked:
        return "blocked";
      case KernelKind::Gallop:
        return "gallop";
      case KernelKind::Bitmap:
        return "bitmap";
      case KernelKind::SimdMerge:
        return "simd_merge";
      case KernelKind::SimdGallop:
        return "simd_gallop";
    }
    KHUZDUL_PANIC("unreachable kernel kind");
}

const char *
kernelModeName(KernelMode mode)
{
    switch (mode) {
      case KernelMode::Auto:
        return "auto";
      case KernelMode::Merge:
        return "merge";
      case KernelMode::Gallop:
        return "gallop";
      case KernelMode::Bitmap:
        return "bitmap";
      case KernelMode::Simd:
        return "simd";
    }
    KHUZDUL_PANIC("unreachable kernel mode");
}

KernelMode
parseKernelMode(const std::string &name)
{
    if (name == "auto")
        return KernelMode::Auto;
    if (name == "merge")
        return KernelMode::Merge;
    if (name == "gallop")
        return KernelMode::Gallop;
    if (name == "bitmap")
        return KernelMode::Bitmap;
    if (name == "simd")
        return KernelMode::Simd;
    KHUZDUL_FATAL("unknown kernel mode '" << name
                  << "' (expected auto|merge|gallop|bitmap|simd)");
}

const std::uint64_t *
KernelDispatcher::rowFor(const ListRef &ref) const
{
    if (!graph_ || ref.source == kInvalidVertex)
        return nullptr;
    return graph_->hubBitmapRow(ref.source);
}

WorkItems
KernelDispatcher::intersectInto(const ListRef &a, const ListRef &b,
                                std::vector<VertexId> &out)
{
    const ListRef &small = a.size() <= b.size() ? a : b;
    const ListRef &large = a.size() <= b.size() ? b : a;
    const auto count = [this](KernelKind k) {
        ++counters_.calls[static_cast<std::size_t>(k)];
    };
    const bool wide = simd_ && small.size() >= kSimdMinSize;
    switch (mode_) {
      case KernelMode::Merge:
        break;
      case KernelMode::Gallop:
        count(KernelKind::Gallop);
        return gallopIntersectInto(small.list, large.list, out);
      case KernelMode::Bitmap:
        if (const std::uint64_t *row = rowFor(large)) {
            count(KernelKind::Bitmap);
            return bitmapIntersectInto(small.list, large.list, row,
                                       out);
        }
        break;
      case KernelMode::Simd:
        if (large.size() >= kGallopRatio * small.size()
            && !small.list.empty()) {
            count(wide ? KernelKind::SimdGallop : KernelKind::Gallop);
            return wide ? simdGallopIntersectInto(small.list,
                                                  large.list, out)
                        : gallopIntersectInto(small.list, large.list,
                                              out);
        }
        if (wide) {
            count(KernelKind::SimdMerge);
            return simdMergeIntersectInto(small.list, large.list, out);
        }
        break;
      case KernelMode::Auto: {
        if (small.list.empty())
            break; // trivial; merge returns immediately
        if (large.size() >= kBitmapRatio * small.size()) {
            if (const std::uint64_t *row = rowFor(large)) {
                count(KernelKind::Bitmap);
                return bitmapIntersectInto(small.list, large.list,
                                           row, out);
            }
        }
        if (large.size() >= kGallopRatio * small.size()) {
            // Scalar gallop, deliberately: the sweep shows the
            // vectorized landing window losing to the plain binary
            // narrow at every ratio >= kGallopRatio (the probe loads
            // cost more than the <= 3 scalar steps they replace).
            // SimdGallop stays reachable via KernelMode::Simd.
            count(KernelKind::Gallop);
            return gallopIntersectInto(small.list, large.list, out);
        }
        if (wide) {
            count(KernelKind::SimdMerge);
            return simdMergeIntersectInto(small.list, large.list, out);
        }
        break;
      }
    }
    count(KernelKind::Merge);
    return core::intersectInto(small.list, large.list, out);
}

WorkItems
KernelDispatcher::intersectCount(const ListRef &a, const ListRef &b,
                                 Count &result)
{
    const ListRef &small = a.size() <= b.size() ? a : b;
    const ListRef &large = a.size() <= b.size() ? b : a;
    const auto count = [this](KernelKind k) {
        ++counters_.calls[static_cast<std::size_t>(k)];
    };
    const bool wide = simd_ && small.size() >= kSimdMinSize;
    switch (mode_) {
      case KernelMode::Merge:
        break;
      case KernelMode::Gallop:
        count(KernelKind::Gallop);
        return gallopIntersectCount(small.list, large.list, result);
      case KernelMode::Bitmap:
        if (const std::uint64_t *row = rowFor(large)) {
            count(KernelKind::Bitmap);
            return bitmapIntersectCount(small.list, large.list, row,
                                        result);
        }
        break;
      case KernelMode::Simd:
        if (large.size() >= kGallopRatio * small.size()
            && !small.list.empty()) {
            count(wide ? KernelKind::SimdGallop : KernelKind::Gallop);
            return wide ? simdGallopIntersectCount(small.list,
                                                   large.list, result)
                        : gallopIntersectCount(small.list, large.list,
                                               result);
        }
        if (wide) {
            count(KernelKind::SimdMerge);
            return simdMergeIntersectCount(small.list, large.list,
                                           result);
        }
        break;
      case KernelMode::Auto: {
        if (small.list.empty())
            break;
        if (large.size() >= kBitmapRatio * small.size()) {
            if (const std::uint64_t *row = rowFor(large)) {
                count(KernelKind::Bitmap);
                return bitmapIntersectCount(small.list, large.list,
                                            row, result);
            }
        }
        if (large.size() >= kGallopRatio * small.size()) {
            // Scalar gallop on purpose — see intersectInto.
            count(KernelKind::Gallop);
            return gallopIntersectCount(small.list, large.list,
                                        result);
        }
        if (wide) {
            count(KernelKind::SimdMerge);
            return simdMergeIntersectCount(small.list, large.list,
                                           result);
        }
        break;
      }
    }
    count(KernelKind::Merge);
    return core::intersectCount(small.list, large.list, result);
}

WorkItems
KernelDispatcher::subtractInto(const ListRef &a, const ListRef &b,
                               std::vector<VertexId> &out)
{
    // Subtraction is not symmetric: a is the base, only b can play
    // the probed (hub) role.
    const auto count = [this](KernelKind k) {
        ++counters_.calls[static_cast<std::size_t>(k)];
    };
    const bool wide = simd_ && a.size() >= kSimdMinSize;
    switch (mode_) {
      case KernelMode::Merge:
        break;
      case KernelMode::Gallop:
        count(KernelKind::Gallop);
        return gallopSubtractInto(a.list, b.list, out);
      case KernelMode::Bitmap:
        if (const std::uint64_t *row = rowFor(b)) {
            count(KernelKind::Bitmap);
            return bitmapSubtractInto(a.list, b.list, row, out);
        }
        break;
      case KernelMode::Simd:
        if (!a.list.empty() && !b.list.empty()
            && b.size() >= kGallopRatio * a.size()) {
            count(wide ? KernelKind::SimdGallop : KernelKind::Gallop);
            return wide ? simdGallopSubtractInto(a.list, b.list, out)
                        : gallopSubtractInto(a.list, b.list, out);
        }
        break;
      case KernelMode::Auto: {
        if (a.list.empty() || b.list.empty())
            break;
        if (b.size() >= kBitmapRatio * a.size()) {
            if (const std::uint64_t *row = rowFor(b)) {
                count(KernelKind::Bitmap);
                return bitmapSubtractInto(a.list, b.list, row, out);
            }
        }
        if (b.size() >= kGallopRatio * a.size()) {
            // Scalar gallop on purpose — see intersectInto.
            count(KernelKind::Gallop);
            return gallopSubtractInto(a.list, b.list, out);
        }
        break;
      }
    }
    count(KernelKind::Merge);
    return core::subtractInto(a.list, b.list, out);
}

namespace
{

void
sortBySizeStable(std::array<ListRef, 8> &lists, std::size_t n)
{
    for (std::size_t i = 1; i < n; ++i) {
        const ListRef key = lists[i];
        std::size_t j = i;
        while (j > 0 && lists[j - 1].size() > key.size()) {
            lists[j] = lists[j - 1];
            --j;
        }
        lists[j] = key;
    }
}

} // namespace

WorkItems
KernelDispatcher::intersectMany(std::span<const ListRef> lists,
                                std::vector<VertexId> &out,
                                std::vector<VertexId> &scratch)
{
    KHUZDUL_CHECK(!lists.empty() && lists.size() <= 8,
                  "intersectMany needs 1..8 lists");
    std::array<ListRef, 8> sorted;
    std::copy(lists.begin(), lists.end(), sorted.begin());
    sortBySizeStable(sorted, lists.size());
    if (lists.size() == 1) {
        // Same convention as the free function: a materialized copy
        // charges one WorkItem per element.
        out.assign(sorted[0].list.begin(), sorted[0].list.end());
        return out.size();
    }
    WorkItems work = intersectInto(sorted[0], sorted[1], out);
    for (std::size_t k = 2; k < lists.size(); ++k) {
        if (out.empty())
            break;
        scratch.clear();
        work += intersectInto(ListRef(out), sorted[k], scratch);
        out.swap(scratch);
    }
    return work;
}

WorkItems
KernelDispatcher::intersectManyCount(std::span<const ListRef> lists,
                                     Count &count,
                                     std::vector<VertexId> &scratch_a,
                                     std::vector<VertexId> &scratch_b)
{
    KHUZDUL_CHECK(!lists.empty(), "intersectManyCount needs >= 1 list");
    if (lists.size() == 1) {
        count = lists[0].size();
        return 0;
    }
    if (lists.size() == 2)
        return intersectCount(lists[0], lists[1], count);
    WorkItems work = intersectMany(lists.first(lists.size() - 1),
                                   scratch_a, scratch_b);
    Count final_count = 0;
    work += intersectCount(ListRef(scratch_a), lists.back(),
                           final_count);
    count = final_count;
    return work;
}

} // namespace core
} // namespace khuzdul
