/**
 * @file
 * Hub-bitmap kernels: when one side of a set operation is the full
 * neighbor list of a hub vertex whose dense bitset was precomputed
 * (Graph::buildHubBitmaps), the smaller list drives and each element
 * costs one O(1) bit test — no merge scan over the (large) hub list.
 * Charges stay canonical merge-equivalent work.
 */

#include "core/kernels/kernels.hh"

namespace khuzdul
{
namespace core
{

namespace
{

inline bool
testBit(const std::uint64_t *row, VertexId v)
{
    return (row[v >> 6] >> (v & 63)) & 1u;
}

} // namespace

WorkItems
bitmapIntersectInto(std::span<const VertexId> a,
                    std::span<const VertexId> hub_list,
                    const std::uint64_t *row, std::vector<VertexId> &out)
{
    out.clear();
    const WorkItems work = canonicalIntersectWork(a, hub_list);
    for (const VertexId x : a)
        if (testBit(row, x))
            out.push_back(x);
    return work;
}

WorkItems
bitmapIntersectCount(std::span<const VertexId> a,
                     std::span<const VertexId> hub_list,
                     const std::uint64_t *row, Count &count)
{
    count = 0;
    const WorkItems work = canonicalIntersectWork(a, hub_list);
    for (const VertexId x : a)
        count += testBit(row, x);
    return work;
}

WorkItems
bitmapSubtractInto(std::span<const VertexId> a,
                   std::span<const VertexId> hub_list,
                   const std::uint64_t *row, std::vector<VertexId> &out)
{
    out.clear();
    const WorkItems work = canonicalSubtractWork(a, hub_list);
    for (const VertexId x : a)
        if (!testBit(row, x))
            out.push_back(x);
    return work;
}

} // namespace core
} // namespace khuzdul
