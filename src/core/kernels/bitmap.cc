/**
 * @file
 * Hub-bitmap kernels: when one side of a set operation is the full
 * neighbor list of a hub vertex whose dense bitset was precomputed
 * (Graph::buildHubBitmaps), the smaller list drives and each element
 * costs one O(1) bit test — no merge scan over the (large) hub list.
 * When the SIMD tier is live the bit tests run word-parallel, eight
 * driving elements per gather (detail::simdBitmap*).  Charges stay
 * canonical merge-equivalent work.
 */

#include "core/kernels/kernels.hh"

namespace khuzdul
{
namespace core
{

namespace
{

inline bool
testBit(const std::uint64_t *row, VertexId v)
{
    return (row[v >> 6] >> (v & 63)) & 1u;
}

} // namespace

WorkItems
bitmapIntersectInto(std::span<const VertexId> a,
                    std::span<const VertexId> hub_list,
                    const std::uint64_t *row, std::vector<VertexId> &out)
{
    const WorkItems work = canonicalIntersectWork(a, hub_list);
    if (a.size() >= kSimdMinSize && simdAvailable()) {
        detail::simdBitmapFilter(a, row, /*keep_members=*/true, out);
        return work;
    }
    out.clear();
    for (const VertexId x : a)
        if (testBit(row, x))
            out.push_back(x);
    return work;
}

WorkItems
bitmapIntersectCount(std::span<const VertexId> a,
                     std::span<const VertexId> hub_list,
                     const std::uint64_t *row, Count &count)
{
    const WorkItems work = canonicalIntersectWork(a, hub_list);
    if (a.size() >= kSimdMinSize && simdAvailable()) {
        count = detail::simdBitmapCount(a, row);
        return work;
    }
    count = 0;
    for (const VertexId x : a)
        count += testBit(row, x);
    return work;
}

WorkItems
bitmapSubtractInto(std::span<const VertexId> a,
                   std::span<const VertexId> hub_list,
                   const std::uint64_t *row, std::vector<VertexId> &out)
{
    const WorkItems work = canonicalSubtractWork(a, hub_list);
    if (a.size() >= kSimdMinSize && simdAvailable()) {
        detail::simdBitmapFilter(a, row, /*keep_members=*/false, out);
        return work;
    }
    out.clear();
    for (const VertexId x : a)
        if (!testBit(row, x))
            out.push_back(x);
    return work;
}

} // namespace core
} // namespace khuzdul
