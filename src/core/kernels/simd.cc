/**
 * @file
 * AVX2 SIMD tier: shuffle-based block merge intersection, galloping
 * search with a vectorized landing window, and word-parallel bitmap
 * row probes.  Every kernel here produces output element-for-element
 * identical to the reference merge and charges the same canonical
 * merge-equivalent WorkItems — the tier changes host wall-clock only.
 *
 * The AVX2 code is compiled per-function (target("avx2")) rather
 * than with a TU-wide -mavx2, so nothing outside the explicitly
 * vectorized bodies can pick up AVX encodings: calling the scalar
 * fallback path of this TU is safe on any x86-64 CPU.  Availability
 * is decided at runtime (simdCompiled && __builtin_cpu_supports)
 * with a host-side kill switch for equivalence tests; builds can
 * remove the tier entirely with -DKHUZDUL_NO_SIMD.
 */

#include "core/kernels/kernels.hh"

#include <algorithm>
#include <bit>

#if !defined(KHUZDUL_NO_SIMD) && defined(__x86_64__)                   \
    && (defined(__GNUC__) || defined(__clang__))
#define KHUZDUL_SIMD_AVX2 1
#include <immintrin.h>
#define KHUZDUL_SIMD_TARGET __attribute__((target("avx2")))
#else
#define KHUZDUL_SIMD_AVX2 0
#endif

namespace khuzdul
{
namespace core
{

namespace
{

/** Host-side kill switch; modeled results never depend on it. */
bool g_simd_enabled = true;

inline bool
testBit(const std::uint64_t *row, VertexId v)
{
    return (row[v >> 6] >> (v & 63)) & 1u;
}

#if KHUZDUL_SIMD_AVX2

bool
cpuHasAvx2()
{
    static const bool has = __builtin_cpu_supports("avx2");
    return has;
}

/**
 * Lane-compaction table: for every 8-bit match mask, the
 * permutevar8x32 index vector that moves the selected lanes to the
 * front (padding lanes repeat index 0; they are never stored past
 * popcount(mask)).
 */
struct CompactTable
{
    alignas(32) std::uint32_t idx[256][8];
};

constexpr CompactTable
makeCompactTable()
{
    CompactTable t{};
    for (int mask = 0; mask < 256; ++mask) {
        int n = 0;
        for (int lane = 0; lane < 8; ++lane)
            if (mask & (1 << lane))
                t.idx[mask][n++] = static_cast<std::uint32_t>(lane);
        for (; n < 8; ++n)
            t.idx[mask][n] = 0;
    }
    return t;
}

constexpr CompactTable kCompact = makeCompactTable();

/** 8-bit mask of lanes where @p va equals *any* lane of @p vb:
 *  compare against all 8 rotations of the b block. */
KHUZDUL_SIMD_TARGET inline __m256i
matchMask(__m256i va, __m256i vb)
{
    const __m256i rotate1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    __m256i m = _mm256_cmpeq_epi32(va, vb);
    __m256i rot = vb;
    for (int k = 1; k < 8; ++k) {
        rot = _mm256_permutevar8x32_epi32(rot, rotate1);
        m = _mm256_or_si256(m, _mm256_cmpeq_epi32(va, rot));
    }
    return m;
}

/**
 * Block merge: compare 8 a-lanes against 8 b-lanes all-pairs, emit
 * the matching a-lanes front-compacted, then advance whichever block
 * has the smaller maximum (both on ties — safe because inputs are
 * strictly sorted, so equal maxima are the same matched value).
 * Each (a-block, b-block) pair is visited at most once and every
 * element lives in exactly one block, so no match is emitted twice;
 * blocks advance only past elements that cannot match anything
 * later, so none is missed.
 */
KHUZDUL_SIMD_TARGET WorkItems
avx2MergeIntersectInto(std::span<const VertexId> a,
                       std::span<const VertexId> b,
                       std::vector<VertexId> &out)
{
    // The block store below always writes 8 lanes even when fewer
    // survive compaction.  Matches-so-far <= min(i, j) + 7 (a block
    // whose max is matched advances in the same iteration, so an
    // unadvanced block holds at most 7 matched lanes) and the loop
    // guard keeps min(i, j) <= min(size) - 8, so 8 slack elements
    // bound the furthest store; the final resize trims them.
    out.resize(std::min(a.size(), b.size()) + 8);
    VertexId *op = out.data();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i + 8 <= a.size() && j + 8 <= b.size()) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a.data() + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b.data() + j));
        const int mask = _mm256_movemask_ps(
            _mm256_castsi256_ps(matchMask(va, vb)));
        const __m256i perm = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(kCompact.idx[mask]));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(op),
                            _mm256_permutevar8x32_epi32(va, perm));
        op += std::popcount(static_cast<unsigned>(mask));
        const VertexId amax = a[i + 7];
        const VertexId bmax = b[j + 7];
        i += amax <= bmax ? 8 : 0;
        j += bmax <= amax ? 8 : 0;
    }
    while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
            ++i;
        } else if (a[i] > b[j]) {
            ++j;
        } else {
            *op++ = a[i];
            ++i;
            ++j;
        }
    }
    out.resize(static_cast<std::size_t>(op - out.data()));
    return canonicalIntersectWork(a, b);
}

KHUZDUL_SIMD_TARGET WorkItems
avx2MergeIntersectCount(std::span<const VertexId> a,
                        std::span<const VertexId> b, Count &count)
{
    Count c = 0;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i + 8 <= a.size() && j + 8 <= b.size()) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a.data() + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b.data() + j));
        const int mask = _mm256_movemask_ps(
            _mm256_castsi256_ps(matchMask(va, vb)));
        c += std::popcount(static_cast<unsigned>(mask));
        const VertexId amax = a[i + 7];
        const VertexId bmax = b[j + 7];
        i += amax <= bmax ? 8 : 0;
        j += bmax <= amax ? 8 : 0;
    }
    while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
            ++i;
        } else if (a[i] > b[j]) {
            ++j;
        } else {
            ++c;
            ++i;
            ++j;
        }
    }
    count = c;
    return canonicalIntersectWork(a, b);
}

/**
 * gallopLowerBound with the final binary-search steps replaced by
 * one 8-lane >= compare: doubling probes bracket the target, binary
 * narrowing shrinks the bracket to <= 8 elements, then a single
 * vector compare finds the first lane >= x.  AVX2 has no unsigned
 * compare, so lane >= x is tested as max_epu32(lane, x) == lane.
 */
KHUZDUL_SIMD_TARGET const VertexId *
avx2GallopLowerBound(const VertexId *first, const VertexId *last,
                     VertexId x)
{
    if (first == last || *first >= x)
        return first;
    std::size_t lo = 0;
    std::size_t hi = 1;
    while (first + hi < last && first[hi] < x) {
        lo = hi;
        hi <<= 1;
    }
    const VertexId *begin = first + lo + 1;
    const VertexId *end = first + hi < last ? first + hi + 1 : last;
    while (end - begin > 8) {
        const VertexId *mid = begin + (end - begin) / 2;
        if (*mid < x)
            begin = mid + 1;
        else
            end = mid;
    }
    if (begin + 8 <= last) {
        // Lanes past `end` are still inside the list and >= *end
        // (the bracket guarantees *(end-1) >= x when end < last), so
        // the first >=-lane is the lower bound either way.
        const __m256i xv = _mm256_set1_epi32(static_cast<int>(x));
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(begin));
        const int ge = _mm256_movemask_ps(_mm256_castsi256_ps(
            _mm256_cmpeq_epi32(_mm256_max_epu32(w, xv), w)));
        if (ge == 0)
            return begin + 8; // whole window < x; bracket ends there
        return begin + std::countr_zero(static_cast<unsigned>(ge));
    }
    return std::lower_bound(begin, end, x);
}

KHUZDUL_SIMD_TARGET WorkItems
avx2GallopIntersectInto(std::span<const VertexId> a,
                        std::span<const VertexId> b,
                        std::vector<VertexId> &out)
{
    out.clear();
    const WorkItems work = canonicalIntersectWork(a, b);
    const VertexId *cursor = b.data();
    const VertexId *const end = cursor + b.size();
    for (const VertexId x : a) {
        cursor = avx2GallopLowerBound(cursor, end, x);
        if (cursor == end)
            break;
        if (*cursor == x) {
            out.push_back(x);
            ++cursor;
        }
    }
    return work;
}

KHUZDUL_SIMD_TARGET WorkItems
avx2GallopIntersectCount(std::span<const VertexId> a,
                         std::span<const VertexId> b, Count &count)
{
    count = 0;
    const WorkItems work = canonicalIntersectWork(a, b);
    const VertexId *cursor = b.data();
    const VertexId *const end = cursor + b.size();
    for (const VertexId x : a) {
        cursor = avx2GallopLowerBound(cursor, end, x);
        if (cursor == end)
            break;
        if (*cursor == x) {
            ++count;
            ++cursor;
        }
    }
    return work;
}

KHUZDUL_SIMD_TARGET WorkItems
avx2GallopSubtractInto(std::span<const VertexId> a,
                       std::span<const VertexId> b,
                       std::vector<VertexId> &out)
{
    out.clear();
    const WorkItems work = canonicalSubtractWork(a, b);
    const VertexId *cursor = b.data();
    const VertexId *const end = cursor + b.size();
    for (const VertexId x : a) {
        cursor = avx2GallopLowerBound(cursor, end, x);
        if (cursor != end && *cursor == x)
            ++cursor;
        else
            out.push_back(x);
    }
    return work;
}

/** Per-lane bitmap bit: gather the 32-bit word holding each vertex's
 *  bit (little-endian u64 rows read as u32 words: word v>>5, bit
 *  v&31), variable-shift it down, mask to the low bit. */
KHUZDUL_SIMD_TARGET inline __m256i
gatherBits(const int *words, __m256i va)
{
    const __m256i word_idx = _mm256_srli_epi32(va, 5);
    const __m256i w = _mm256_i32gather_epi32(words, word_idx, 4);
    const __m256i shift = _mm256_and_si256(va, _mm256_set1_epi32(31));
    return _mm256_and_si256(_mm256_srlv_epi32(w, shift),
                            _mm256_set1_epi32(1));
}

KHUZDUL_SIMD_TARGET Count
avx2BitmapCount(std::span<const VertexId> a, const std::uint64_t *row)
{
    const int *words = reinterpret_cast<const int *>(row);
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 8 <= a.size(); i += 8) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a.data() + i));
        acc = _mm256_add_epi32(acc, gatherBits(words, va));
    }
    alignas(32) std::uint32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    Count c = 0;
    for (const std::uint32_t lane : lanes)
        c += lane;
    for (; i < a.size(); ++i)
        c += testBit(row, a[i]);
    return c;
}

KHUZDUL_SIMD_TARGET void
avx2BitmapFilter(std::span<const VertexId> a, const std::uint64_t *row,
                 bool keep_members, std::vector<VertexId> &out)
{
    const int *words = reinterpret_cast<const int *>(row);
    const int flip = keep_members ? 0 : 0xff;
    out.resize(a.size());
    VertexId *op = out.data();
    std::size_t i = 0;
    for (; i + 8 <= a.size(); i += 8) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a.data() + i));
        const __m256i hit = _mm256_cmpeq_epi32(gatherBits(words, va),
                                               _mm256_set1_epi32(1));
        const int mask =
            _mm256_movemask_ps(_mm256_castsi256_ps(hit)) ^ flip;
        const __m256i perm = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(kCompact.idx[mask]));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(op),
                            _mm256_permutevar8x32_epi32(va, perm));
        op += std::popcount(static_cast<unsigned>(mask));
    }
    for (; i < a.size(); ++i) {
        const VertexId x = a[i];
        if (testBit(row, x) == keep_members)
            *op++ = x;
    }
    out.resize(static_cast<std::size_t>(op - out.data()));
}

#endif // KHUZDUL_SIMD_AVX2

} // namespace

bool
simdCompiled()
{
    return KHUZDUL_SIMD_AVX2 != 0;
}

bool
simdAvailable()
{
#if KHUZDUL_SIMD_AVX2
    return g_simd_enabled && cpuHasAvx2();
#else
    return false;
#endif
}

void
setSimdEnabled(bool enabled)
{
    g_simd_enabled = enabled;
}

WorkItems
simdMergeIntersectInto(std::span<const VertexId> a,
                       std::span<const VertexId> b,
                       std::vector<VertexId> &out)
{
#if KHUZDUL_SIMD_AVX2
    if (simdAvailable())
        return avx2MergeIntersectInto(a, b, out);
#endif
    return intersectInto(a, b, out);
}

WorkItems
simdMergeIntersectCount(std::span<const VertexId> a,
                        std::span<const VertexId> b, Count &count)
{
#if KHUZDUL_SIMD_AVX2
    if (simdAvailable())
        return avx2MergeIntersectCount(a, b, count);
#endif
    return intersectCount(a, b, count);
}

WorkItems
simdGallopIntersectInto(std::span<const VertexId> a,
                        std::span<const VertexId> b,
                        std::vector<VertexId> &out)
{
#if KHUZDUL_SIMD_AVX2
    if (simdAvailable())
        return avx2GallopIntersectInto(a, b, out);
#endif
    return gallopIntersectInto(a, b, out);
}

WorkItems
simdGallopIntersectCount(std::span<const VertexId> a,
                         std::span<const VertexId> b, Count &count)
{
#if KHUZDUL_SIMD_AVX2
    if (simdAvailable())
        return avx2GallopIntersectCount(a, b, count);
#endif
    return gallopIntersectCount(a, b, count);
}

WorkItems
simdGallopSubtractInto(std::span<const VertexId> a,
                       std::span<const VertexId> b,
                       std::vector<VertexId> &out)
{
#if KHUZDUL_SIMD_AVX2
    if (simdAvailable())
        return avx2GallopSubtractInto(a, b, out);
#endif
    return gallopSubtractInto(a, b, out);
}

namespace detail
{

Count
simdBitmapCount(std::span<const VertexId> a, const std::uint64_t *row)
{
#if KHUZDUL_SIMD_AVX2
    if (simdAvailable())
        return avx2BitmapCount(a, row);
#endif
    Count c = 0;
    for (const VertexId x : a)
        c += testBit(row, x);
    return c;
}

void
simdBitmapFilter(std::span<const VertexId> a, const std::uint64_t *row,
                 bool keep_members, std::vector<VertexId> &out)
{
#if KHUZDUL_SIMD_AVX2
    if (simdAvailable()) {
        avx2BitmapFilter(a, row, keep_members, out);
        return;
    }
#endif
    out.clear();
    for (const VertexId x : a)
        if (testBit(row, x) == keep_members)
            out.push_back(x);
}

} // namespace detail

} // namespace core
} // namespace khuzdul
