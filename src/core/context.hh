/**
 * @file
 * GraphContext: the shared, query-independent half of the engine.
 *
 * Khuzdul's cacheable data structures are properties of the *graph*,
 * not of any one query: the 1-D hash partition, the hub bitmaps
 * backing the bitmap kernel, the planner's degree profile, the
 * degree-oriented DAG of the Pangolin-style baseline, the
 * cross-query residency directory and the cumulative traffic
 * ledger.  Before this type existed each `Engine` owned all of it,
 * tied to one `EngineConfig`, so concurrent queries could not
 * amortize anything.  Now one GraphContext is built per resident
 * graph and any number of per-query `Engine` sessions — and the
 * `core/service` QueryService scheduling them — share it.
 *
 * Determinism scope (DESIGN.md §10): everything a session *charges*
 * (cache probe time, fetch bytes, its fabric ledger) runs against
 * per-session deterministic state.  The context only holds state
 * whose contents may legitimately depend on co-runners — the
 * residency directory, the cumulative fabric, lazy build flags —
 * and nothing modeled ever reads it.
 */

#ifndef KHUZDUL_CORE_CONTEXT_HH
#define KHUZDUL_CORE_CONTEXT_HH

#include <cstdint>
#include <memory>
// khuzdul-lint: allow(thread-primitive) guards lazy shared artifacts + cumulative ledger; host-side, never modeled
#include <mutex>

#include "core/cache.hh"
#include "core/residency.hh"
#include "graph/graph.hh"
#include "graph/partition.hh"
#include "pattern/planner.hh"
#include "sim/cluster.hh"
#include "sim/cost_model.hh"
#include "sim/fabric.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace core
{

/**
 * Graph-resident configuration: everything that describes the
 * deployment a graph lives in, as opposed to how one query runs.
 * Shared verbatim by every session of a context.  Defaults mirror
 * the paper's configuration at stand-in scale.
 */
struct GraphSetup
{
    /** Simulated machines. */
    sim::ClusterConfig cluster;

    /** Time constants (also shared: the hardware doesn't change
     *  per query). */
    sim::CostModel cost;

    /** Graph-data cache policy (STATIC is the paper's design). */
    CachePolicy cachePolicy = CachePolicy::Static;

    /** Cache capacity as a fraction of the graph size, per node. */
    double cacheFraction = 0.15;

    /** Static-cache admission degree threshold (§5.3). */
    EdgeId cacheDegreeThreshold = 32;

    /** Horizontal data sharing on/off (Fig 12 ablation). */
    bool horizontalSharing = true;

    /** Slots of the per-chunk horizontal table. */
    std::size_t horizontalSlots = 1 << 15;

    /** NUMA-aware sub-partitioning (§5.4, Table 7 ablation). */
    bool numaAware = true;

    /** Compute slowdown on multi-socket nodes without NUMA-aware
     *  placement (remote-socket DRAM on ~half the accesses). */
    double numaComputePenalty = 1.45;

    /** Hub-bitmap admission degree threshold (§5.3-aligned). */
    EdgeId hubBitmapDegreeThreshold = 32;

    /** Byte cap on hub bitmap rows; 0 disables the bitmap kernel. */
    std::uint64_t hubBitmapMaxBytes = 32ull << 20;
};

/**
 * The shared per-graph half of the runtime.  Thread-safe: any
 * number of query sessions (and the QueryService's dispatchers) may
 * call into one context concurrently.
 */
class GraphContext
{
  public:
    GraphContext(const Graph &g, const GraphSetup &setup = {});

    GraphContext(const GraphContext &) = delete;
    GraphContext &operator=(const GraphContext &) = delete;

    const Graph &graph() const { return *graph_; }
    const GraphSetup &setup() const { return setup_; }
    const Partition &partition() const { return partition_; }

    /** Compute cores available to one execution unit. */
    unsigned computeCoresPerUnit() const;

    /** Byte budget of one unit's data cache (session caches and the
     *  cross-query directory use the same geometry). */
    std::uint64_t cacheBytesPerUnit() const;

    /** Build the graph's hub bitmaps once (idempotent, thread-safe;
     *  sessions with a bitmap-capable kernel mode call this). */
    void ensureHubBitmaps();

    /** Planner degree profile, computed once and shared. */
    const GraphProfile &profile();

    /** Degree-oriented DAG (Pangolin-style orientation, §7.2),
     *  built once and shared by single-machine baselines. */
    const Graph &orientedGraph();

    /** Cross-query residency directory (host observability). */
    SharedResidency &residency() { return residency_; }

    /** @name Cumulative traffic ledger
     *
     * Every session folds its per-query fabric ledger in after each
     * run.  Pure per-link sums, so the cumulative state is
     * independent of admission order; per-query attribution lives in
     * the sessions' own ledgers.
     */
    /// @{
    void absorbTraffic(const sim::Fabric &query_ledger);
    std::uint64_t sharedTotalBytes() const;
    std::uint64_t sharedLinkBytes(NodeId src, NodeId dst) const;
    std::uint64_t sharedLinkMessages(NodeId src, NodeId dst) const;
    /// @}

    /** @name Cumulative steal registry (DESIGN.md §11)
     *
     * Every session folds its steal pass's outcome in after each
     * run, mirroring the traffic ledger: pure uint64 sums, so the
     * cumulative tallies are independent of admission order.
     * Per-query attribution lives in the sessions' RunStats.
     */
    /// @{
    void absorbSteals(std::uint64_t chunks, std::uint64_t bytes);
    std::uint64_t sharedStealCount() const;
    std::uint64_t sharedStealBytes() const;
    /// @}

    /** @name Cross-query reuse counters (host observability) */
    /// @{
    std::uint64_t crossQueryHits() const { return residency_.hits(); }
    std::uint64_t crossQueryProbes() const
    {
        return residency_.probes();
    }
    /// @}

    /**
     * Drop the cross-query residency directory and the cumulative
     * traffic ledger.  Does NOT touch any session's own caches —
     * those are cleared by `Engine::clearCaches()` (see engine.hh
     * for the reset-vs-clear semantics).
     */
    void clearCaches();

  private:
    const Graph *graph_;
    GraphSetup setup_;
    Partition partition_;
    SharedResidency residency_;

    /** Guards the lazy artifacts and the cumulative ledger. */
    // khuzdul-lint: allow(thread-primitive) host-side guard; protects observability and build-once state only
    mutable std::mutex mutex_;
    sim::Fabric sharedFabric_;
    std::uint64_t sharedStealChunks_ = 0;
    std::uint64_t sharedStealBytes_ = 0;
    bool hubBitmapsBuilt_ = false;
    std::unique_ptr<GraphProfile> profile_;
    std::unique_ptr<Graph> oriented_;
};

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_CONTEXT_HH
