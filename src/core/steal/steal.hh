/**
 * @file
 * Deterministic inter-unit work stealing (DESIGN.md §11).
 *
 * During a run every execution unit keeps a per-chunk ledger of the
 * modeled time its circulant pipelines charged (core/circulant).
 * After the barrier — once the per-unit journals have been merged in
 * unit order — the StealPlanner replays a donation protocol over
 * those ledgers: while some unit's remaining backlog exceeds a
 * threshold and the least-loaded unit would finish a tail chunk
 * earlier than its owner (including the steal handshake and the
 * fabric transfer of the chunk's embedding columns), the chunk
 * migrates.  The planner is a pure function of merged modeled state
 * — ledger contents, finish times, the cost model and the fabric's
 * timing oracle — so stolen schedules are bit-identical at every
 * host thread count and under every fault plan, exactly like the
 * rest of the modeled machine.
 *
 * The planner only *decides*; the engine commits each decision by
 * moving the chunk's modeled time between NodeStats slots, pricing
 * the column transfer through the fabric ledger and emitting
 * StealIssued/StealCompleted trace events in decision order.
 */

#ifndef KHUZDUL_CORE_STEAL_STEAL_HH
#define KHUZDUL_CORE_STEAL_STEAL_HH

#include <cstdint>
#include <vector>

#include "sim/fabric.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace core
{

/**
 * One processed chunk's entry in a unit's donation ledger: the
 * modeled time its pipeline fold charged, plus the fault-free
 * ("base") prices a healthy thief would pay re-fetching the same
 * lists, and the wire size of the embedding columns a migration
 * ships.
 */
struct ChunkRecord
{
    unsigned unit = 0;          ///< owning execution unit
    int level = 0;              ///< chunk level (tree depth)
    std::uint32_t embeddings = 0; ///< entries in the chunk
    std::uint64_t columnBytes = 0; ///< wire size of the columns

    /** @name As charged to the owner (includes fault surcharges) */
    /// @{
    double computeNs = 0;
    double commNs = 0;
    double exposedNs = 0;
    /// @}

    /** @name Fault-free prices (CirculantScheduler::basePipeline) */
    /// @{
    double baseCommNs = 0;
    double baseExposedNs = 0;
    /// @}
};

/**
 * Wire size of one chunk's embedding columns at @p level: the
 * flattened prefix path (level+1 vertices per embedding, PR-7
 * column layout makes the copy flat) plus one per-entry
 * parent/flag word.
 */
inline std::uint64_t
columnWireBytes(std::uint32_t embeddings, int level)
{
    const std::uint64_t per_entry =
        static_cast<std::uint64_t>(level + 1) * sizeof(VertexId)
        + sizeof(std::uint32_t);
    return embeddings * per_entry;
}

/** One accepted migration, in planning order. */
struct StealDecision
{
    unsigned thief = 0;
    unsigned victim = 0;
    ChunkRecord chunk;
    /** Clean fabric price of shipping the columns thief<-victim. */
    double transferNs = 0;
};

/**
 * Richest-backlog-first greedy donation planner.
 *
 * Inputs are merged modeled state only: per-unit chunk ledgers (in
 * unit order), per-unit finish times (NodeStats::totalNs()), and
 * the fabric's pure timing oracle.  Victims are picked by largest
 * remaining backlog (ties: lowest unit index), thieves by earliest
 * finish (ties: lowest unit index); the candidate is the deepest
 * ledger chunk — scanning from the tail — that is accepted by
 *
 *   finish[thief] + handshake + transfer
 *                 + chunk.computeNs + chunk.baseExposedNs
 *       < finish[victim]                                   (1)
 *   chunk.computeNs + chunk.exposedNs > handshake          (2)
 *
 * (1) bounds the thief's new finish by the victim's old one and (2)
 * bounds the victim's new finish (it sheds the chunk but pays the
 * handshake), so the cluster makespan never increases — stealing
 * can only help, which is what lets the engine enable it on
 * unskewed runs without regressing them.  A victim none of whose
 * chunks fit even the earliest-finishing thief is deactivated, so
 * the loop terminates.
 */
class StealPlanner
{
  public:
    /** @param fabric timing oracle + unit/node geometry
     *  @param backlog_threshold_ns minimum remaining backlog before
     *         a unit is considered a victim */
    StealPlanner(const sim::Fabric &fabric,
                 double backlog_threshold_ns)
        : fabric_(&fabric), thresholdNs_(backlog_threshold_ns)
    {}

    /**
     * Plan migrations over the merged ledgers.  @p pending is
     * indexed by unit (each inner vector in processing order);
     * @p finish is each unit's NodeStats::totalNs().  Pure: mutates
     * neither the fabric nor any engine state.
     */
    std::vector<StealDecision>
    plan(std::vector<std::vector<ChunkRecord>> pending,
         std::vector<double> finish) const;

  private:
    const sim::Fabric *fabric_;
    double thresholdNs_;
};

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_STEAL_STEAL_HH
