#include "core/steal/steal.hh"

#include <algorithm>

#include "support/check.hh"

namespace khuzdul
{
namespace core
{

std::vector<StealDecision>
StealPlanner::plan(std::vector<std::vector<ChunkRecord>> pending,
                   std::vector<double> finish) const
{
    KHUZDUL_CHECK(pending.size() == finish.size(),
                  "steal planner: ledger/finish size mismatch");
    const unsigned units = static_cast<unsigned>(pending.size());
    std::vector<StealDecision> decisions;
    if (units < 2)
        return decisions;

    const unsigned units_per_node =
        fabric_->partition().socketsPerNode();
    const double handshake = fabric_->cost().stealHandshakeNs;

    // Remaining donatable backlog per unit: the modeled time of the
    // chunks still in its ledger.  Stolen chunks never re-enter a
    // backlog, so every iteration either shrinks a ledger or
    // deactivates a victim and the loop terminates.
    std::vector<double> backlog(units, 0);
    std::vector<char> active(units, 1);
    for (unsigned u = 0; u < units; ++u)
        for (const ChunkRecord &rec : pending[u])
            backlog[u] += rec.computeNs + rec.exposedNs;

    for (;;) {
        // Victim: richest remaining backlog above the threshold
        // (ties: lowest unit index).
        unsigned victim = units;
        for (unsigned u = 0; u < units; ++u) {
            if (!active[u] || pending[u].empty()
                || backlog[u] <= thresholdNs_)
                continue;
            if (victim == units || backlog[u] > backlog[victim])
                victim = u;
        }
        if (victim == units)
            break;

        // Thief: earliest finish (ties: lowest unit index).
        unsigned thief = units;
        for (unsigned u = 0; u < units; ++u) {
            if (u == victim)
                continue;
            if (thief == units || finish[u] < finish[thief])
                thief = u;
        }

        // Candidate: scan the victim's ledger from the tail for the
        // deepest chunk that satisfies both accept conditions — the
        // tail chunks of a level are small residuals, and one
        // unprofitable crumb must not shield the fat backlog behind
        // it.  The scan order is part of the deterministic contract.
        const NodeId thief_node = thief / units_per_node;
        const NodeId victim_node = victim / units_per_node;
        std::vector<ChunkRecord> &ledger = pending[victim];
        bool accepted = false;
        for (std::size_t i = ledger.size(); i-- > 0;) {
            const ChunkRecord rec = ledger[i];
            const double transfer = fabric_->modeledTransferNs(
                thief_node, victim_node, rec.columnBytes, 1);
            const double thief_cost = handshake + transfer
                + rec.computeNs + rec.baseExposedNs;
            const double shed = rec.computeNs + rec.exposedNs;

            // (1) the thief must beat the victim's old finish; (2)
            // the victim must come out ahead of its own handshake.
            // Both hold => the cluster makespan never increases.
            if (finish[thief] + thief_cost >= finish[victim]
                || shed <= handshake)
                continue;

            ledger.erase(ledger.begin()
                         + static_cast<std::ptrdiff_t>(i));
            backlog[victim] -= shed;
            finish[thief] += thief_cost;
            finish[victim] += handshake - shed;
            decisions.push_back({thief, victim, rec, transfer});
            accepted = true;
            break;
        }
        // No chunk fits even the earliest-finishing thief: this
        // victim is done donating.
        if (!accepted)
            active[victim] = 0;
    }
    return decisions;
}

} // namespace core
} // namespace khuzdul
