/**
 * @file
 * Edge-list resolution chain (§4.3, §5).  An extension needs the
 * active edge list of its frontier vertex; *how* that list is
 * acquired is a policy chain the paper layers explicitly:
 *
 *   local partition → static/replacement cache → horizontal
 *   (chunk-scoped) share → remote per-owner batch.
 *
 * EdgeListProvider walks that chain for one vertex and returns a
 * typed Resolution saying where the list will come from, charging
 * probe time and reuse counters to the requesting unit's NodeStats
 * along the way.  The distributed engine, the G-thinker baseline
 * and the moving-computation baseline all classify through this one
 * type, so the resolution semantics live in exactly one place;
 * batching and timing of the Remote outcomes belong to the
 * CirculantScheduler, not here.
 */

#ifndef KHUZDUL_CORE_PROVIDER_HH
#define KHUZDUL_CORE_PROVIDER_HH

#include <cstdint>

#include "core/cache.hh"
#include "core/horizontal.hh"
#include "core/residency.hh"
#include "graph/graph.hh"
#include "graph/partition.hh"
#include "sim/cost_model.hh"
#include "sim/faults.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace core
{

/** Where a needed edge list resolves to. */
enum class ResolutionKind : std::uint8_t
{
    Local,    ///< requester owns the vertex: zero-cost read
    CacheHit, ///< resident in the unit's data cache
    Shared,   ///< another embedding of the chunk fetches it (§5.2)
    Remote,   ///< must join a per-owner fetch batch
    /** Owner node is down; the list was rebuilt from the local CSR
     *  (every edge is stored at both endpoints, so N(v) is fully
     *  local when all of v's neighbors are; DESIGN.md §9). */
    Reconstructed,
};

const char *resolutionKindName(ResolutionKind kind);

/** Outcome of one resolution-chain walk. */
struct Resolution
{
    ResolutionKind kind = ResolutionKind::Local;

    /** Execution unit owning the vertex (valid for Shared/Remote). */
    unsigned owner = 0;

    /** Wire payload of the list (Remote only, else 0). */
    std::uint64_t bytes = 0;

    /** Whether the fetched list was admitted to the cache. */
    bool admitted = false;
};

/**
 * The resolution chain of one execution unit.  Stateless apart from
 * the cache it manages; chunk-scoped horizontal tables are passed
 * per call because their lifetime belongs to the chunk.
 */
class EdgeListProvider
{
  public:
    /** Probe-time constants charged to NodeStats::cacheNs. */
    struct Costs
    {
        double cacheProbeNs = 0; ///< per cache lookup (any outcome)
        double cacheAdmitNs = 0; ///< extra charge when admission allocates
        double hashProbeNs = 0;  ///< per horizontal-table probe
        /** Per neighbor examined while testing/doing a local CSR
         *  reconstruction of a down owner's list (§9). */
        double reconstructScanNs = 0;
    };

    /**
     * @param cache unit-local data cache, or nullptr for engines
     *        that fetch uncached (probe steps are skipped).
     * @param horizontal_sharing enables the chunk-table step when a
     *        table is supplied to resolve().
     */
    EdgeListProvider(const Graph &g, const Partition &partition,
                     DataCache *cache, bool horizontal_sharing,
                     Costs costs,
                     sim::TraceSink &trace = sim::nullTraceSink());

    /** The engine's probe-cost schedule for @p cache's policy
     *  (replacement policies pay their bookkeeping, §7.6). */
    static Costs engineCosts(const sim::CostModel &cost,
                             const DataCache &cache);

    /**
     * Resolve the edge list of @p v for @p requester, charging
     * probe time and reuse counters to @p stats.  @p table is the
     * requester's chunk-scoped dedup table (may be null).
     * @p level annotates emitted trace events only.
     *
     * When @p faults is non-null and the owner's node is permanently
     * down, the chain degrades to the recovery ladder (§9): cache →
     * local CSR reconstruction → re-fetch from the replica owner
     * (the owner's slot on the next node of the partition's hash
     * chain).  Throws FabricFault if every replica node is down.
     */
    Resolution resolve(unsigned requester, VertexId v,
                       HorizontalTable *table, sim::NodeStats &stats,
                       int level = 0,
                       sim::FaultSession *faults = nullptr);

    const Partition &partition() const { return *partition_; }
    DataCache *cache() { return cache_; }

    /**
     * Attach the GraphContext's cross-query residency directory
     * (nullptr detaches).  Every Remote outcome is then also noted
     * in the directory — host-side observability only: the
     * resolution chain's outcomes, charges and counters above are
     * computed before and independently of this hook, so modeled
     * results never depend on co-running queries.
     */
    void setResidency(SharedResidency *residency)
    {
        residency_ = residency;
    }

    /** @name Cross-query counters (host observability)
     *  Remote fetches noted in the shared directory, and how many
     *  found the list already fetched by some query.  Touched only
     *  by the owning unit's thread; folded into RunStats' host
     *  block after each run. */
    /// @{
    std::uint64_t sharedProbes() const { return sharedProbes_; }
    std::uint64_t sharedHits() const { return sharedHits_; }
    void
    resetSharedCounters()
    {
        sharedProbes_ = sharedHits_ = 0;
    }
    /// @}

  private:
    /** Note a Remote outcome in the shared directory (if attached). */
    void
    noteRemoteFetch(unsigned requester, VertexId v)
    {
        if (!residency_)
            return;
        ++sharedProbes_;
        if (residency_->noteFetch(requester, v))
            ++sharedHits_;
    }

    /** Recovery ladder below the cache rung for a permanently-down
     *  owner: local CSR reconstruction, then replica re-fetch. */
    Resolution resolveDownOwner(unsigned requester, VertexId v,
                                sim::NodeStats &stats,
                                sim::FaultSession *faults,
                                Resolution r);

    const Graph *graph_;
    const Partition *partition_;
    DataCache *cache_;
    bool horizontalSharing_;
    Costs costs_;
    sim::TraceSink *trace_;
    SharedResidency *residency_ = nullptr;
    std::uint64_t sharedProbes_ = 0;
    std::uint64_t sharedHits_ = 0;
};

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_PROVIDER_HH
