#include "core/extender.hh"

namespace khuzdul
{
namespace core
{

void
PlanExtender::buildCandidates(int t, std::span<const VertexId> stored,
                              sim::NodeStats &stats)
{
    const PlanLevel &level = plan_->levels[t];
    WorkItems work = 0;
    PositionMask dep = level.depMask;
    if (level.reuseParent) {
        candidates_.assign(stored.begin(), stored.end());
        dep = level.extraDepMask;
        ++stats.verticalReuses;
    } else {
        std::size_t lists = 0;
        for (int j = 0; j < t; ++j)
            if ((dep >> j) & 1u)
                listBuf_[lists++] = {graph_->neighbors(vertices_[j]),
                                     vertices_[j]};
        if (lists == 1) {
            // Aliasing one already-fetched edge list: the transfer
            // was charged by the provider layer, so the working copy
            // is free in the model (charging convention, kernels.hh).
            candidates_.assign(listBuf_[0].list.begin(),
                               listBuf_[0].list.end());
        } else {
            work += dispatcher_.intersectMany({listBuf_.data(), lists},
                                              candidates_, scratchA_);
        }
        dep = 0;
    }
    for (int j = 0; j < t; ++j) {
        if ((dep >> j) & 1u) {
            scratchB_.clear();
            work += dispatcher_.intersectInto(
                ListRef(candidates_),
                {graph_->neighbors(vertices_[j]), vertices_[j]},
                scratchB_);
            candidates_.swap(scratchB_);
        }
    }
    const PositionMask anti = level.reuseParent ? level.extraAntiMask
                                                : level.antiMask;
    for (int j = 0; j < t; ++j) {
        if ((anti >> j) & 1u) {
            scratchB_.clear();
            work += dispatcher_.subtractInto(
                ListRef(candidates_),
                {graph_->neighbors(vertices_[j]), vertices_[j]},
                scratchB_);
            candidates_.swap(scratchB_);
        }
    }
    stats.intersectionItems += work;
    workNs_ += static_cast<double>(work) * cost_->intersectPerItemNs;
}

bool
PlanExtender::accept(int t, VertexId candidate)
{
    const PlanLevel &level = plan_->levels[t];
    workNs_ += cost_->candidateCheckNs;
    if (level.hasLabelFilter
        && graph_->label(candidate) != level.labelFilter)
        return false;
    for (int j = 0; j < t; ++j) {
        if (vertices_[j] == candidate)
            return false;
        if (((level.greaterThanMask >> j) & 1u)
            && candidate <= vertices_[j])
            return false;
    }
    return true;
}

std::int64_t
PlanExtender::iepTerminal(int prefix_len,
                          std::span<const VertexId> stored,
                          sim::NodeStats &stats)
{
    std::array<std::int64_t, 32> sizes{};
    for (std::size_t m = 0; m < plan_->iep.masks.size(); ++m) {
        const PositionMask mask = plan_->iep.masks[m];
        const bool reuse = !plan_->iep.maskReuse.empty()
            && plan_->iep.maskReuse[m];
        std::size_t lists = 0;
        if (reuse) {
            // Vertical sharing into the IEP: start from this
            // embedding's stored candidate set.
            listBuf_[lists++] = ListRef(stored);
            ++stats.verticalReuses;
            for (int j = 0; j < prefix_len; ++j)
                if ((plan_->iep.maskExtra[m] >> j) & 1u)
                    listBuf_[lists++] =
                        {graph_->neighbors(vertices_[j]), vertices_[j]};
        } else {
            for (int j = 0; j < prefix_len; ++j)
                if ((mask >> j) & 1u)
                    listBuf_[lists++] =
                        {graph_->neighbors(vertices_[j]), vertices_[j]};
        }
        Count count = 0;
        const WorkItems work = dispatcher_.intersectManyCount(
            {listBuf_.data(), lists}, count, scratchA_, scratchB_);
        stats.intersectionItems += work;
        workNs_ += static_cast<double>(work) * cost_->intersectPerItemNs;
        std::int64_t size = static_cast<std::int64_t>(count);
        for (int j = 0; j < prefix_len; ++j) {
            bool inside = true;
            for (std::size_t l = 0; l < lists && inside; ++l)
                inside = contains(listBuf_[l].list, vertices_[j]);
            if (inside)
                --size;
        }
        sizes[m] = size;
    }
    std::int64_t raw = 0;
    for (const IepBlock::Term &term : plan_->iep.terms) {
        std::int64_t product = term.coefficient;
        for (const int mask_idx : term.maskIndex)
            product *= sizes[mask_idx];
        raw += product;
    }
    workNs_ += cost_->terminalNs;
    return raw;
}

void
PlanExtender::extendInner(const std::vector<Chunk> &chunks,
                          Chunk &child, int level, std::uint32_t idx,
                          sim::NodeStats &stats)
{
    recoverVertices(chunks, level, idx);
    const int t = level + 1;
    const PlanLevel &next = plan_->levels[t];
    buildCandidates(t, chunks[t - 1].result(idx), stats);
    // Siblings share one stored copy of the candidate set; it is
    // appended lazily when the first child materializes.
    std::uint32_t result_offset = 0;
    bool result_stored = false;
    for (const VertexId candidate : candidates_) {
        if (!accept(t, candidate))
            continue;
        const std::uint32_t child_idx =
            child.add(candidate, idx, next.fetchEdgeList);
        ++stats.embeddingsCreated;
        workNs_ += cost_->embeddingCreateNs;
        if (next.storeResult) {
            if (!result_stored) {
                result_offset = child.appendResult(candidates_);
                result_stored = true;
            }
            child.setResultRef(
                child_idx, result_offset,
                static_cast<std::uint32_t>(candidates_.size()));
        }
    }
}

std::int64_t
PlanExtender::extendTerminal(const std::vector<Chunk> &chunks,
                             int level, std::uint32_t idx,
                             MatchVisitor *visitor,
                             sim::NodeStats &stats)
{
    recoverVertices(chunks, level, idx);
    if (plan_->hasIep)
        return iepTerminal(level + 1, chunks[level].result(idx),
                           stats);
    const int t = plan_->pattern.size() - 1;
    buildCandidates(t, chunks[t - 1].result(idx), stats);
    std::int64_t raw = 0;
    for (const VertexId candidate : candidates_) {
        if (!accept(t, candidate))
            continue;
        ++raw;
        workNs_ += cost_->terminalNs;
        if (visitor) {
            vertices_[t] = candidate;
            visitor->match({vertices_.data(),
                            static_cast<std::size_t>(t + 1)});
        }
    }
    return raw;
}

} // namespace core
} // namespace khuzdul
