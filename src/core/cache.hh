/**
 * @file
 * Software graph-data caches.  The engine's default is the paper's
 * static no-replacement cache (§5.3): first-accessed-first-cached
 * with a degree threshold, never evicting — near-zero bookkeeping.
 * The replacement policies of the Fig 16 ablation (FIFO / LIFO /
 * LRU / MRU) are implemented too; they track recency/insertion
 * order and are charged their (much larger) maintenance costs by
 * the engine.
 */

#ifndef KHUZDUL_CORE_CACHE_HH
#define KHUZDUL_CORE_CACHE_HH

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "graph/graph.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace core
{

/** Cache management policy (Fig 16). */
enum class CachePolicy
{
    None,   ///< caching disabled (Table 6 "no cache")
    Static, ///< no replacement (the paper's design, §5.3)
    Fifo,
    Lifo,
    Lru,
    Mru,
};

/** Parse/print policy names for bench tables. */
std::string cachePolicyName(CachePolicy policy);

/**
 * Tracks which remote edge lists are notionally resident on one
 * execution unit.  Data reads stay zero-copy against the shared
 * graph; the cache only decides whether a fetch produces network
 * traffic.  Counters for hits/misses/insertions are maintained
 * here; time costs are charged by the engine via the cost model.
 */
class DataCache
{
  public:
    /**
     * @param g graph (for per-vertex sizes).
     * @param policy management policy.
     * @param capacity_bytes byte budget (0 disables).
     * @param degree_threshold Static policy only: minimum degree to
     *        admit (the paper's hot-vertex filter, default 64).
     */
    DataCache(const Graph &g, CachePolicy policy,
              std::uint64_t capacity_bytes, EdgeId degree_threshold);

    CachePolicy policy() const { return policy_; }

    /**
     * Whether N(v) is cached.  Replacement policies also update
     * their recency metadata (that is what makes them expensive).
     */
    bool lookup(VertexId v);

    /**
     * Offer a just-fetched list for admission.
     * @return true when the list was inserted.
     */
    bool insert(VertexId v);

    std::uint64_t usedBytes() const { return usedBytes_; }
    std::uint64_t capacityBytes() const { return capacityBytes_; }
    bool fullForever() const { return fullForever_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t insertions() const { return insertions_; }
    std::uint64_t evictions() const { return evictions_; }

    void
    resetCounters()
    {
        hits_ = misses_ = insertions_ = evictions_ = 0;
    }

    /** Drop all cached lists AND counters, returning the cache to
     *  its just-constructed (cold) state.  `resetCounters` keeps
     *  contents warm; this is the full cold restart behind
     *  `Engine::clearCaches()`. */
    void
    clear()
    {
        entries_.clear();
        order_.clear();
        usedBytes_ = 0;
        fullForever_ = false;
        resetCounters();
    }

  private:
    void evictOne();

    const Graph *graph_;
    CachePolicy policy_;
    std::uint64_t capacityBytes_;
    EdgeId degreeThreshold_;

    /** Cached vertex -> position in order_ (replacement policies).
     *  Never iterated: residency queries go through find/contains
     *  and eviction order comes from order_, so hash layout cannot
     *  leak into modeled results. */
    // khuzdul-lint: allow(unordered-iter) lookup-only (find/emplace/erase); eviction order lives in order_
    std::unordered_map<VertexId, std::list<VertexId>::iterator> entries_;
    /** Eviction order bookkeeping (front = next victim candidate
     *  end depends on policy). */
    std::list<VertexId> order_;

    std::uint64_t usedBytes_ = 0;
    bool fullForever_ = false;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t insertions_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace core
} // namespace khuzdul

#endif // KHUZDUL_CORE_CACHE_HH
