#include "graph/generators.hh"

#include <algorithm>
#include <bit>

#include "graph/builder.hh"
#include "support/check.hh"
#include "support/rng.hh"

namespace khuzdul
{
namespace gen
{

Graph
rmat(VertexId num_vertices, EdgeId num_edges,
     double a, double b, double c, std::uint64_t seed)
{
    KHUZDUL_REQUIRE(num_vertices >= 2, "rmat needs >= 2 vertices");
    const double d = 1.0 - a - b - c;
    KHUZDUL_REQUIRE(a > 0 && b >= 0 && c >= 0 && d > 0,
                    "rmat quadrant probabilities must be positive");

    const int levels = std::bit_width(
        std::bit_ceil<std::uint64_t>(num_vertices)) - 1;
    Rng rng(seed);
    GraphBuilder builder(num_vertices);
    // R-MAT's recursive quadrants put hubs at low ids; real graph
    // ids are crawl order, uncorrelated with degree.  Shuffle ids
    // (Fisher-Yates) so id-based symmetry breaking and hash
    // partitioning see realistic id structure.
    std::vector<VertexId> relabel(num_vertices);
    for (VertexId v = 0; v < num_vertices; ++v)
        relabel[v] = v;
    for (VertexId v = num_vertices - 1; v > 0; --v)
        std::swap(relabel[v],
                  relabel[static_cast<VertexId>(rng.nextBounded(v + 1))]);
    for (EdgeId i = 0; i < num_edges; ++i) {
        std::uint64_t u = 0;
        std::uint64_t v = 0;
        for (int level = 0; level < levels; ++level) {
            const double r = rng.nextDouble();
            u <<= 1;
            v <<= 1;
            if (r < a) {
                // top-left: no bits set
            } else if (r < a + b) {
                v |= 1;
            } else if (r < a + b + c) {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        builder.addEdge(relabel[u % num_vertices],
                        relabel[v % num_vertices]);
    }
    return builder.build();
}

Graph
erdosRenyi(VertexId num_vertices, EdgeId num_edges, std::uint64_t seed)
{
    KHUZDUL_REQUIRE(num_vertices >= 2, "erdosRenyi needs >= 2 vertices");
    Rng rng(seed);
    GraphBuilder builder(num_vertices);
    for (EdgeId i = 0; i < num_edges; ++i) {
        const auto u = static_cast<VertexId>(rng.nextBounded(num_vertices));
        const auto v = static_cast<VertexId>(rng.nextBounded(num_vertices));
        if (u != v)
            builder.addEdge(u, v);
    }
    return builder.build();
}

Graph
citation(VertexId num_vertices, unsigned out_degree, std::uint64_t seed)
{
    KHUZDUL_REQUIRE(num_vertices >= 2, "citation needs >= 2 vertices");
    Rng rng(seed);
    GraphBuilder builder(num_vertices);
    for (VertexId v = 1; v < num_vertices; ++v) {
        const unsigned links = 1
            + static_cast<unsigned>(rng.nextBounded(out_degree));
        for (unsigned i = 0; i < links; ++i) {
            // Bias mildly toward recent vertices, like citations do,
            // but without heavy hubs: pick among the previous window.
            const VertexId window = std::min<VertexId>(v, 4096);
            const auto back =
                static_cast<VertexId>(rng.nextBounded(window)) + 1;
            builder.addEdge(v, v - back);
        }
    }
    return builder.build();
}

Graph
smallWorld(VertexId num_vertices, unsigned k, double beta,
           std::uint64_t seed)
{
    KHUZDUL_REQUIRE(num_vertices >= 2 * k + 1,
                    "smallWorld needs > 2k vertices");
    KHUZDUL_REQUIRE(beta >= 0.0 && beta <= 1.0,
                    "rewiring probability must be in [0, 1]");
    Rng rng(seed);
    GraphBuilder builder(num_vertices);
    for (VertexId v = 0; v < num_vertices; ++v) {
        for (unsigned i = 1; i <= k; ++i) {
            VertexId target = (v + i) % num_vertices;
            if (rng.coin(beta))
                target = static_cast<VertexId>(
                    rng.nextBounded(num_vertices));
            if (target != v)
                builder.addEdge(v, target);
        }
    }
    return builder.build();
}

Graph
merge(const Graph &a, const Graph &b)
{
    GraphBuilder builder(std::max(a.numVertices(), b.numVertices()));
    for (const Graph *g : {&a, &b})
        for (VertexId u = 0; u < g->numVertices(); ++u)
            for (const VertexId v : g->neighbors(u))
                if (u < v)
                    builder.addEdge(u, v);
    return builder.build();
}

Graph
complete(VertexId num_vertices)
{
    GraphBuilder builder(num_vertices);
    for (VertexId u = 0; u < num_vertices; ++u)
        for (VertexId v = u + 1; v < num_vertices; ++v)
            builder.addEdge(u, v);
    return builder.build();
}

Graph
cycle(VertexId num_vertices)
{
    KHUZDUL_REQUIRE(num_vertices >= 3, "cycle needs >= 3 vertices");
    GraphBuilder builder(num_vertices);
    for (VertexId v = 0; v < num_vertices; ++v)
        builder.addEdge(v, (v + 1) % num_vertices);
    return builder.build();
}

Graph
star(VertexId num_vertices)
{
    KHUZDUL_REQUIRE(num_vertices >= 2, "star needs >= 2 vertices");
    GraphBuilder builder(num_vertices);
    for (VertexId v = 1; v < num_vertices; ++v)
        builder.addEdge(0, v);
    return builder.build();
}

Graph
path(VertexId num_vertices)
{
    KHUZDUL_REQUIRE(num_vertices >= 2, "path needs >= 2 vertices");
    GraphBuilder builder(num_vertices);
    for (VertexId v = 0; v + 1 < num_vertices; ++v)
        builder.addEdge(v, v + 1);
    return builder.build();
}

Graph
grid(VertexId rows, VertexId cols)
{
    KHUZDUL_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dims");
    GraphBuilder builder(rows * cols);
    const auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
    for (VertexId r = 0; r < rows; ++r) {
        for (VertexId c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                builder.addEdge(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                builder.addEdge(id(r, c), id(r + 1, c));
        }
    }
    return builder.build();
}

void
randomizeLabels(Graph &g, Label num_labels, std::uint64_t seed)
{
    KHUZDUL_REQUIRE(num_labels >= 1, "need at least one label");
    Rng rng(seed);
    std::vector<Label> labels(g.numVertices());
    for (auto &l : labels)
        l = static_cast<Label>(rng.nextBounded(num_labels));
    g.setLabels(std::move(labels));
}

} // namespace gen
} // namespace khuzdul
