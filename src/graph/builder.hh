/**
 * @file
 * Edge-list accumulator that applies the paper's preprocessing
 * (Section 7.1): drop self loops, deduplicate edges, symmetrize
 * (treat directed input as undirected), then emit a CSR Graph.
 */

#ifndef KHUZDUL_GRAPH_BUILDER_HH
#define KHUZDUL_GRAPH_BUILDER_HH

#include <utility>
#include <vector>

#include "graph/graph.hh"
#include "support/types.hh"

namespace khuzdul
{

/**
 * Accumulates edges and builds a clean undirected CSR graph.
 *
 * Usage: addEdge() any number of times (duplicates, self loops and
 * both orientations are fine), then build().
 */
class GraphBuilder
{
  public:
    /** @param num_vertices number of vertices; ids must be < this. */
    explicit GraphBuilder(VertexId num_vertices);

    /** Record an undirected edge {u, v}; self loops are dropped. */
    void addEdge(VertexId u, VertexId v);

    /** Number of raw (pre-dedup) edge records accepted so far. */
    std::size_t rawEdgeCount() const { return edges_.size(); }

    /**
     * Produce the graph.  The builder is consumed (edge storage is
     * released).  @param labels optional per-vertex labels.
     */
    Graph build(std::vector<Label> labels = {});

  private:
    VertexId numVertices_;
    std::vector<std::pair<VertexId, VertexId>> edges_;
};

} // namespace khuzdul

#endif // KHUZDUL_GRAPH_BUILDER_HH
