/**
 * @file
 * Synthetic graph generators.  The paper evaluates on SNAP/WebGraph
 * datasets that are not available offline; these generators produce
 * stand-ins whose degree-distribution shape (skewed power law vs.
 * near-uniform) matches the property each experiment isolates.
 */

#ifndef KHUZDUL_GRAPH_GENERATORS_HH
#define KHUZDUL_GRAPH_GENERATORS_HH

#include <cstdint>

#include "graph/graph.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace gen
{

/**
 * R-MAT generator (Chakrabarti et al.).  Produces skewed power-law
 * graphs; higher @p a relative to the rest increases skewness.
 *
 * @param num_vertices vertex count (rounded up to a power of two
 *                     internally; ids above @p num_vertices are
 *                     remapped down with a modulo).
 * @param num_edges    number of undirected edges to sample (the
 *                     final graph may have slightly fewer after
 *                     dedup / self-loop removal).
 */
Graph rmat(VertexId num_vertices, EdgeId num_edges,
           double a, double b, double c, std::uint64_t seed);

/** Erdős–Rényi G(n, m): near-uniform degrees (low skew). */
Graph erdosRenyi(VertexId num_vertices, EdgeId num_edges,
                 std::uint64_t seed);

/**
 * Low-skew "citation-like" generator: each vertex links to a
 * handful of approximately uniform random earlier vertices,
 * yielding a light-tailed degree distribution.
 */
Graph citation(VertexId num_vertices, unsigned out_degree,
               std::uint64_t seed);

/**
 * Watts-Strogatz small world: ring lattice with @p k neighbors per
 * side, each edge rewired with probability @p beta.  Light-tailed
 * degrees with high clustering — the Patents stand-in (plenty of
 * triangles, no hubs).
 */
Graph smallWorld(VertexId num_vertices, unsigned k, double beta,
                 std::uint64_t seed);

/** Union of two graphs over max(|V|) vertices (edge overlay). */
Graph merge(const Graph &a, const Graph &b);

/** Complete graph K_n (every pair connected). */
Graph complete(VertexId num_vertices);

/** Cycle C_n. */
Graph cycle(VertexId num_vertices);

/** Star with one hub and n-1 leaves (hub is vertex 0). */
Graph star(VertexId num_vertices);

/** Path P_n. */
Graph path(VertexId num_vertices);

/** 2-D grid of rows x cols vertices. */
Graph grid(VertexId rows, VertexId cols);

/** Attach uniformly random labels from [0, num_labels) to @p g. */
void randomizeLabels(Graph &g, Label num_labels, std::uint64_t seed);

} // namespace gen
} // namespace khuzdul

#endif // KHUZDUL_GRAPH_GENERATORS_HH
