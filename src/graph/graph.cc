#include "graph/graph.hh"

#include <algorithm>

namespace khuzdul
{

Graph::Graph(std::vector<EdgeId> offsets, std::vector<VertexId> adjacency,
             std::vector<Label> labels)
    : offsets_(std::move(offsets)), adjacency_(std::move(adjacency))
{
    KHUZDUL_REQUIRE(!offsets_.empty(), "CSR offsets must have >= 1 entry");
    KHUZDUL_REQUIRE(offsets_.front() == 0, "CSR offsets must start at 0");
    KHUZDUL_REQUIRE(offsets_.back() == adjacency_.size(),
                    "CSR offsets must end at the adjacency size");
    const VertexId n = numVertices();
    for (VertexId v = 0; v < n; ++v) {
        KHUZDUL_REQUIRE(offsets_[v] <= offsets_[v + 1],
                        "CSR offsets must be non-decreasing");
        maxDegree_ = std::max(maxDegree_, degree(v));
    }
    if (!labels.empty())
        setLabels(std::move(labels));
}

bool
Graph::hasEdge(VertexId u, VertexId v) const
{
    const auto list = neighbors(u);
    return std::binary_search(list.begin(), list.end(), v);
}

void
Graph::setLabels(std::vector<Label> labels)
{
    KHUZDUL_REQUIRE(labels.size() == numVertices(),
                    "label vector size must match vertex count");
    labels_ = std::move(labels);
    numLabels_ = 0;
    for (const Label l : labels_)
        numLabels_ = std::max(numLabels_, l + 1);
}

} // namespace khuzdul
