#include "graph/graph.hh"

#include <algorithm>

namespace khuzdul
{

Graph::Graph(std::vector<EdgeId> offsets, std::vector<VertexId> adjacency,
             std::vector<Label> labels)
    : offsets_(std::move(offsets)), adjacency_(std::move(adjacency))
{
    KHUZDUL_REQUIRE(!offsets_.empty(), "CSR offsets must have >= 1 entry");
    KHUZDUL_REQUIRE(offsets_.front() == 0, "CSR offsets must start at 0");
    KHUZDUL_REQUIRE(offsets_.back() == adjacency_.size(),
                    "CSR offsets must end at the adjacency size");
    const VertexId n = numVertices();
    for (VertexId v = 0; v < n; ++v) {
        KHUZDUL_REQUIRE(offsets_[v] <= offsets_[v + 1],
                        "CSR offsets must be non-decreasing");
        maxDegree_ = std::max(maxDegree_, degree(v));
    }
    if (!labels.empty())
        setLabels(std::move(labels));
}

bool
Graph::hasEdge(VertexId u, VertexId v) const
{
    const auto list = neighbors(u);
    return std::binary_search(list.begin(), list.end(), v);
}

void
Graph::buildHubBitmaps(EdgeId degree_threshold,
                       std::uint64_t max_bytes) const
{
    if (hubBitmapsBuilt_ && hubThreshold_ == degree_threshold
        && hubMaxBytes_ == max_bytes)
        return;
    const VertexId n = numVertices();
    hubWords_.clear();
    hubSlots_.assign(n, kNoHubSlot);
    hubWordsPerRow_ = (static_cast<std::size_t>(n) + 63) / 64;
    hubCount_ = 0;
    hubThreshold_ = degree_threshold;
    hubMaxBytes_ = max_bytes;
    hubBitmapsBuilt_ = true;

    const std::uint64_t row_bytes =
        hubWordsPerRow_ * sizeof(std::uint64_t);
    if (n == 0 || degree_threshold == 0 || row_bytes == 0
        || row_bytes > max_bytes)
        return;

    // Hottest-first admission under the byte cap: degree descending,
    // vertex id ascending on ties — deterministic, so the dispatch
    // decisions downstream are too.
    std::vector<VertexId> hubs;
    for (VertexId v = 0; v < n; ++v)
        if (degree(v) >= degree_threshold)
            hubs.push_back(v);
    std::sort(hubs.begin(), hubs.end(),
              [this](VertexId a, VertexId b) {
                  const EdgeId da = degree(a);
                  const EdgeId db = degree(b);
                  return da != db ? da > db : a < b;
              });
    const std::size_t cap = static_cast<std::size_t>(max_bytes / row_bytes);
    if (hubs.size() > cap)
        hubs.resize(cap);

    hubWords_.assign(hubs.size() * hubWordsPerRow_, 0);
    for (std::size_t slot = 0; slot < hubs.size(); ++slot) {
        const VertexId v = hubs[slot];
        std::uint64_t *row = hubWords_.data() + slot * hubWordsPerRow_;
        for (const VertexId u : neighbors(v))
            row[u >> 6] |= std::uint64_t{1} << (u & 63);
        hubSlots_[v] = static_cast<std::uint32_t>(slot);
    }
    hubCount_ = hubs.size();
}

void
Graph::setLabels(std::vector<Label> labels)
{
    KHUZDUL_REQUIRE(labels.size() == numVertices(),
                    "label vector size must match vertex count");
    labels_ = std::move(labels);
    numLabels_ = 0;
    for (const Label l : labels_)
        numLabels_ = std::max(numLabels_, l + 1);
}

} // namespace khuzdul
