/**
 * @file
 * 1-D hash graph partitioning (paper §2.2).  The vertex set is
 * hash-partitioned over N machines; machine i stores every edge with
 * at least one endpoint it owns, i.e. it can serve the full edge
 * list N(v) of each owned vertex v.  For NUMA-aware execution
 * (§5.4) each node's partition is further split into one
 * sub-partition per socket; an (node, socket) pair is an
 * "execution unit".
 */

#ifndef KHUZDUL_GRAPH_PARTITION_HH
#define KHUZDUL_GRAPH_PARTITION_HH

#include <cstdint>
#include <vector>

#include "graph/graph.hh"
#include "support/types.hh"

namespace khuzdul
{

/**
 * Hash partition of a graph over numNodes() machines with
 * socketsPerNode() sub-partitions each.
 */
class Partition
{
  public:
    /**
     * @param g graph to partition (must outlive the partition).
     * @param num_nodes cluster size.
     * @param sockets_per_node NUMA sub-partitions per node (1 = NUMA
     *        support off).
     */
    Partition(const Graph &g, NodeId num_nodes,
              unsigned sockets_per_node = 1);

    const Graph &graph() const { return *graph_; }

    NodeId numNodes() const { return numNodes_; }
    unsigned socketsPerNode() const { return socketsPerNode_; }

    /** Total execution units = nodes x sockets. */
    unsigned numUnits() const { return numNodes_ * socketsPerNode_; }

    /** Execution unit owning vertex @p v. */
    unsigned
    ownerUnit(VertexId v) const
    {
        return static_cast<unsigned>(hash(v) % numUnits());
    }

    /** Machine owning vertex @p v. */
    NodeId
    ownerNode(VertexId v) const
    {
        return ownerUnit(v) / socketsPerNode_;
    }

    /** Socket (within its node) owning vertex @p v. */
    unsigned
    ownerSocket(VertexId v) const
    {
        return ownerUnit(v) % socketsPerNode_;
    }

    /** Vertices owned by execution unit @p unit, ascending. */
    const std::vector<VertexId> &
    ownedVertices(unsigned unit) const
    {
        return owned_[unit];
    }

    /**
     * Bytes of graph data node @p node keeps resident: the edge
     * lists of owned vertices plus offset metadata.  Used for
     * memory-capacity checks and cache sizing.
     */
    std::uint64_t nodeResidentBytes(NodeId node) const;

    /** Number of vertices owned by node @p node. */
    VertexId nodeVertexCount(NodeId node) const;

  private:
    static std::uint64_t hash(VertexId v);

    const Graph *graph_;
    NodeId numNodes_;
    unsigned socketsPerNode_;
    std::vector<std::vector<VertexId>> owned_;
};

} // namespace khuzdul

#endif // KHUZDUL_GRAPH_PARTITION_HH
