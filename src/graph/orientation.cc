#include "graph/orientation.hh"

#include <vector>

namespace khuzdul
{
namespace graph
{

Graph
orient(const Graph &g)
{
    const VertexId n = g.numVertices();
    const auto precedes = [&g](VertexId u, VertexId v) {
        const EdgeId du = g.degree(u);
        const EdgeId dv = g.degree(v);
        return du < dv || (du == dv && u < v);
    };

    std::vector<EdgeId> offsets(n + 1, 0);
    for (VertexId u = 0; u < n; ++u) {
        EdgeId kept = 0;
        for (const VertexId v : g.neighbors(u))
            if (precedes(u, v))
                ++kept;
        offsets[u + 1] = offsets[u] + kept;
    }
    std::vector<VertexId> adjacency(offsets.back());
    for (VertexId u = 0; u < n; ++u) {
        EdgeId cursor = offsets[u];
        for (const VertexId v : g.neighbors(u))
            if (precedes(u, v))
                adjacency[cursor++] = v;
    }
    Graph out(std::move(offsets), std::move(adjacency));
    out.setDirected(true);
    return out;
}

} // namespace graph
} // namespace khuzdul
