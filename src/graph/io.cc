#include "graph/io.hh"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/builder.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace io
{

namespace
{

constexpr std::uint64_t kBinaryMagic = 0x4b48555a44554c31ULL; // "KHUZDUL1"

template <typename T>
void
writePod(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    KHUZDUL_REQUIRE(in.good(), "truncated binary graph stream");
    return value;
}

template <typename T>
void
writeVector(std::ostream &out, const std::vector<T> &vec)
{
    writePod<std::uint64_t>(out, vec.size());
    out.write(reinterpret_cast<const char *>(vec.data()),
              static_cast<std::streamsize>(vec.size() * sizeof(T)));
}

template <typename T>
std::vector<T>
readVector(std::istream &in)
{
    const auto size = readPod<std::uint64_t>(in);
    std::vector<T> vec(size);
    in.read(reinterpret_cast<char *>(vec.data()),
            static_cast<std::streamsize>(size * sizeof(T)));
    KHUZDUL_REQUIRE(in.good(), "truncated binary graph stream");
    return vec;
}

} // namespace

Graph
readEdgeList(std::istream &in)
{
    std::vector<std::pair<VertexId, VertexId>> edges;
    VertexId max_vertex = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream ls(line);
        std::uint64_t u = 0;
        std::uint64_t v = 0;
        if (!(ls >> u >> v))
            KHUZDUL_FATAL("malformed edge-list line: '" << line << "'");
        KHUZDUL_REQUIRE(u < kInvalidVertex && v < kInvalidVertex,
                        "vertex id too large: " << u << " " << v);
        edges.emplace_back(static_cast<VertexId>(u),
                           static_cast<VertexId>(v));
        max_vertex = std::max({max_vertex, static_cast<VertexId>(u),
                               static_cast<VertexId>(v)});
    }
    GraphBuilder builder(edges.empty() ? 0 : max_vertex + 1);
    for (const auto &[u, v] : edges)
        builder.addEdge(u, v);
    return builder.build();
}

Graph
readEdgeListFile(const std::string &path)
{
    std::ifstream in(path);
    KHUZDUL_REQUIRE(in.is_open(), "cannot open graph file: " << path);
    return readEdgeList(in);
}

void
writeEdgeList(const Graph &g, std::ostream &out)
{
    for (VertexId u = 0; u < g.numVertices(); ++u)
        for (const VertexId v : g.neighbors(u))
            if (u < v || g.directed())
                out << u << " " << v << "\n";
}

void
writeBinary(const Graph &g, std::ostream &out)
{
    writePod(out, kBinaryMagic);
    writePod<std::uint8_t>(out, g.directed() ? 1 : 0);
    writePod<std::uint64_t>(out, g.numVertices());
    std::vector<EdgeId> offsets(g.numVertices() + 1, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        offsets[v + 1] = offsets[v] + g.degree(v);
    writeVector(out, offsets);
    std::vector<VertexId> adjacency;
    adjacency.reserve(g.numArcs());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        for (const VertexId u : g.neighbors(v))
            adjacency.push_back(u);
    writeVector(out, adjacency);
    std::vector<Label> labels;
    if (g.labeled()) {
        labels.resize(g.numVertices());
        for (VertexId v = 0; v < g.numVertices(); ++v)
            labels[v] = g.label(v);
    }
    writeVector(out, labels);
}

Graph
readBinary(std::istream &in)
{
    const auto magic = readPod<std::uint64_t>(in);
    KHUZDUL_REQUIRE(magic == kBinaryMagic,
                    "not a Khuzdul binary graph (bad magic)");
    const auto directed = readPod<std::uint8_t>(in);
    const auto n = readPod<std::uint64_t>(in);
    auto offsets = readVector<EdgeId>(in);
    auto adjacency = readVector<VertexId>(in);
    auto labels = readVector<Label>(in);
    KHUZDUL_REQUIRE(offsets.size() == n + 1,
                    "binary graph offsets size mismatch");
    Graph g(std::move(offsets), std::move(adjacency), std::move(labels));
    g.setDirected(directed != 0);
    return g;
}

} // namespace io
} // namespace khuzdul
