/**
 * @file
 * Immutable CSR graph.  This is the substrate every engine in the
 * reproduction operates on: undirected simple graphs stored as
 * sorted adjacency (both directions materialized), with optional
 * vertex labels for labeled mining (FSM).
 */

#ifndef KHUZDUL_GRAPH_GRAPH_HH
#define KHUZDUL_GRAPH_GRAPH_HH

#include <span>
#include <vector>

#include "support/check.hh"
#include "support/types.hh"

namespace khuzdul
{

/**
 * Compressed-sparse-row graph.
 *
 * Invariants: neighbor lists are sorted ascending, contain no
 * duplicates and no self loops.  For an undirected graph both arc
 * directions are present; orientation (graph::orient) produces a DAG
 * where only one direction remains.
 */
class Graph
{
  public:
    Graph() = default;

    /**
     * Construct from raw CSR arrays.
     *
     * @param offsets size numVertices()+1, offsets[v]..offsets[v+1]
     *                delimit v's neighbors in @p adjacency.
     * @param adjacency concatenated sorted neighbor lists.
     * @param labels optional per-vertex labels (empty = unlabeled).
     */
    Graph(std::vector<EdgeId> offsets, std::vector<VertexId> adjacency,
          std::vector<Label> labels = {});

    /** Number of vertices. */
    VertexId
    numVertices() const
    {
        return offsets_.empty()
            ? 0 : static_cast<VertexId>(offsets_.size() - 1);
    }

    /** Number of stored arcs (2x undirected edge count). */
    EdgeId numArcs() const { return adjacency_.size(); }

    /** Number of undirected edges (arcs / 2); for DAGs equals arcs. */
    EdgeId numEdges() const { return numArcs() / (directed_ ? 1 : 2); }

    /** Degree (neighbor count) of @p v. */
    EdgeId
    degree(VertexId v) const
    {
        return offsets_[v + 1] - offsets_[v];
    }

    /** Sorted neighbor list of @p v. */
    std::span<const VertexId>
    neighbors(VertexId v) const
    {
        return {adjacency_.data() + offsets_[v],
                adjacency_.data() + offsets_[v + 1]};
    }

    /** Binary-search membership test for the arc (u, v). */
    bool hasEdge(VertexId u, VertexId v) const;

    /** Largest degree over all vertices. */
    EdgeId maxDegree() const { return maxDegree_; }

    /** Whether labels are attached. */
    bool labeled() const { return !labels_.empty(); }

    /** Label of @p v; graphs without labels report label 0. */
    Label
    label(VertexId v) const
    {
        return labels_.empty() ? 0 : labels_[v];
    }

    /** Number of distinct labels (0 when unlabeled). */
    Label numLabels() const { return numLabels_; }

    /** Attach per-vertex labels (size must equal numVertices()). */
    void setLabels(std::vector<Label> labels);

    /**
     * Whether the adjacency is directed (true after orientation);
     * affects how numEdges() interprets the arc count.
     */
    bool directed() const { return directed_; }

    /** Mark this graph as directed (used by graph::orient). */
    void setDirected(bool directed) { directed_ = directed; }

    /**
     * Bytes needed to store the adjacency structure; this is the
     * figure "graph size" ratios (cache sizing) are computed from.
     */
    std::uint64_t
    sizeBytes() const
    {
        return adjacency_.size() * sizeof(VertexId)
            + offsets_.size() * sizeof(EdgeId);
    }

    /** Bytes of the edge list payload of one vertex. */
    std::uint64_t
    edgeListBytes(VertexId v) const
    {
        return degree(v) * sizeof(VertexId);
    }

    /** @name Hub-vertex bitmap index
     *
     * Dense neighbor bitsets for hot (high-degree) vertices, the
     * backing store of the bitmap intersection kernel
     * (core/kernels).  Admission is hottest-first (degree
     * descending, vertex id ascending on ties) among vertices with
     * degree >= the threshold, until @p max_bytes of rows are
     * allocated — deterministic, so kernel dispatch is too.  The
     * index is a lazily built, observation-only acceleration
     * structure: it never affects counts, modeled time or traffic,
     * which is why building through a const Graph is sound.
     */
    /// @{

    /** Build (or rebuild, when parameters change) the index. */
    void buildHubBitmaps(EdgeId degree_threshold,
                         std::uint64_t max_bytes) const;

    bool hubBitmapsBuilt() const { return hubBitmapsBuilt_; }

    /** Admission degree threshold of the last build. */
    EdgeId hubBitmapDegreeThreshold() const { return hubThreshold_; }

    /** Bytes held by bitmap rows (the memory-overhead figure). */
    std::uint64_t
    hubBitmapBytes() const
    {
        return hubWords_.size() * sizeof(std::uint64_t);
    }

    /** Number of vertices with a bitmap row. */
    std::size_t hubBitmapCount() const { return hubCount_; }

    /** Bitmap words of N(v), or nullptr when v has no row. */
    const std::uint64_t *
    hubBitmapRow(VertexId v) const
    {
        if (hubSlots_.empty() || hubSlots_[v] == kNoHubSlot)
            return nullptr;
        return hubWords_.data()
            + static_cast<std::size_t>(hubSlots_[v]) * hubWordsPerRow_;
    }
    /// @}

  private:
    static constexpr std::uint32_t kNoHubSlot = 0xffffffffu;

    std::vector<EdgeId> offsets_;
    std::vector<VertexId> adjacency_;
    std::vector<Label> labels_;
    EdgeId maxDegree_ = 0;
    Label numLabels_ = 0;
    bool directed_ = false;

    /** Hub bitmap index (lazily built; see buildHubBitmaps). */
    mutable std::vector<std::uint64_t> hubWords_;
    mutable std::vector<std::uint32_t> hubSlots_;
    mutable std::size_t hubWordsPerRow_ = 0;
    mutable std::size_t hubCount_ = 0;
    mutable EdgeId hubThreshold_ = 0;
    mutable std::uint64_t hubMaxBytes_ = 0;
    mutable bool hubBitmapsBuilt_ = false;
};

} // namespace khuzdul

#endif // KHUZDUL_GRAPH_GRAPH_HH
