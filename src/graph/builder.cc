#include "graph/builder.hh"

#include <algorithm>

#include "support/check.hh"

namespace khuzdul
{

GraphBuilder::GraphBuilder(VertexId num_vertices)
    : numVertices_(num_vertices)
{}

void
GraphBuilder::addEdge(VertexId u, VertexId v)
{
    KHUZDUL_REQUIRE(u < numVertices_ && v < numVertices_,
                    "edge endpoint out of range: " << u << "," << v);
    if (u == v)
        return; // self loops are removed during preprocessing
    if (u > v)
        std::swap(u, v);
    edges_.emplace_back(u, v);
}

Graph
GraphBuilder::build(std::vector<Label> labels)
{
    std::sort(edges_.begin(), edges_.end());
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

    std::vector<EdgeId> degrees(numVertices_ + 1, 0);
    for (const auto &[u, v] : edges_) {
        ++degrees[u + 1];
        ++degrees[v + 1];
    }
    std::vector<EdgeId> offsets(numVertices_ + 1, 0);
    for (VertexId v = 0; v < numVertices_; ++v)
        offsets[v + 1] = offsets[v] + degrees[v + 1];

    std::vector<VertexId> adjacency(offsets.back());
    std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    for (const auto &[u, v] : edges_) {
        adjacency[cursor[u]++] = v;
        adjacency[cursor[v]++] = u;
    }
    edges_.clear();
    edges_.shrink_to_fit();

    // Edges were inserted in sorted (u, v) order with u < v, so the
    // suffix of each list (neighbors > v) is sorted but the prefix
    // interleaves; sort each list to restore the CSR invariant.
    for (VertexId v = 0; v < numVertices_; ++v) {
        std::sort(adjacency.begin() + offsets[v],
                  adjacency.begin() + offsets[v + 1]);
    }

    return Graph(std::move(offsets), std::move(adjacency),
                 std::move(labels));
}

} // namespace khuzdul
