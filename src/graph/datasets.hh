/**
 * @file
 * Registry of named stand-in datasets.  The paper evaluates on
 * SNAP/WebGraph graphs (Table 1) that are not available offline, so
 * each is replaced by a deterministic synthetic graph whose
 * degree-distribution *shape* (skewed power law vs. light-tailed)
 * matches — scaled down ~1000x so a single-core run completes.  The
 * per-dataset substitution is part of DESIGN.md §2.
 */

#ifndef KHUZDUL_GRAPH_DATASETS_HH
#define KHUZDUL_GRAPH_DATASETS_HH

#include <string>
#include <vector>

#include "graph/graph.hh"

namespace khuzdul
{
namespace datasets
{

/** A generated stand-in plus the paper's reference statistics. */
struct Dataset
{
    /** Paper abbreviation, e.g. "lj". */
    std::string abbr;
    /** Full paper name, e.g. "LiveJournal". */
    std::string name;
    /** How the stand-in is generated. */
    std::string recipe;
    /** |V| of the paper's original dataset. */
    std::uint64_t paperVertices;
    /** |E| of the paper's original dataset. */
    std::uint64_t paperEdges;
    /** The generated stand-in graph. */
    Graph graph;
};

/**
 * Fetch (generating and memoizing on first use) the stand-in for the
 * paper abbreviation @p abbr.  Known: mc, pt, lj, uk, tw, fr, cl,
 * uk14, wdc, skitter, orkut.  Throws FatalError for unknown names.
 */
const Dataset &byName(const std::string &abbr);

/** All known abbreviations in the paper's Table 1 order. */
std::vector<std::string> allNames();

} // namespace datasets
} // namespace khuzdul

#endif // KHUZDUL_GRAPH_DATASETS_HH
