/**
 * @file
 * Orientation preprocessing (Pangolin's optimization, paper §7.2):
 * convert the undirected graph into a DAG by keeping each edge only
 * in the direction of increasing (degree, id).  Triangle and clique
 * counting on the DAG visits each embedding exactly once, slashing
 * work on skewed graphs.
 */

#ifndef KHUZDUL_GRAPH_ORIENTATION_HH
#define KHUZDUL_GRAPH_ORIENTATION_HH

#include "graph/graph.hh"

namespace khuzdul
{
namespace graph
{

/**
 * Produce the degree-oriented DAG of @p g: the arc (u, v) is kept iff
 * (deg(u), u) < (deg(v), v).  The result is marked directed().
 */
Graph orient(const Graph &g);

} // namespace graph
} // namespace khuzdul

#endif // KHUZDUL_GRAPH_ORIENTATION_HH
