#include "graph/partition.hh"

#include "support/check.hh"
#include "support/rng.hh"

namespace khuzdul
{

Partition::Partition(const Graph &g, NodeId num_nodes,
                     unsigned sockets_per_node)
    : graph_(&g), numNodes_(num_nodes), socketsPerNode_(sockets_per_node)
{
    KHUZDUL_REQUIRE(num_nodes >= 1, "partition needs >= 1 node");
    KHUZDUL_REQUIRE(sockets_per_node >= 1,
                    "partition needs >= 1 socket per node");
    owned_.resize(numUnits());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        owned_[ownerUnit(v)].push_back(v);
}

std::uint64_t
Partition::nodeResidentBytes(NodeId node) const
{
    std::uint64_t bytes = 0;
    for (unsigned s = 0; s < socketsPerNode_; ++s) {
        for (const VertexId v : owned_[node * socketsPerNode_ + s]) {
            bytes += graph_->edgeListBytes(v) + sizeof(EdgeId);
            // A machine also stores the remote endpoints of owned
            // edges (every edge with >= 1 owned endpoint); that is
            // already covered because each owned vertex's full edge
            // list is resident.
        }
    }
    return bytes;
}

VertexId
Partition::nodeVertexCount(NodeId node) const
{
    VertexId count = 0;
    for (unsigned s = 0; s < socketsPerNode_; ++s)
        count += static_cast<VertexId>(
            owned_[node * socketsPerNode_ + s].size());
    return count;
}

std::uint64_t
Partition::hash(VertexId v)
{
    return mix64(v);
}

} // namespace khuzdul
