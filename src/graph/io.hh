/**
 * @file
 * Graph serialization: SNAP-style whitespace edge-list text and a
 * compact binary CSR format for fast reload.
 */

#ifndef KHUZDUL_GRAPH_IO_HH
#define KHUZDUL_GRAPH_IO_HH

#include <iosfwd>
#include <string>

#include "graph/graph.hh"

namespace khuzdul
{
namespace io
{

/**
 * Parse a whitespace-separated edge list ("u v" per line, '#' or '%'
 * comment lines ignored).  Vertex ids are as written; the vertex
 * count is 1 + max id.  Preprocessing (dedup, self-loop removal,
 * symmetrization) is applied.
 */
Graph readEdgeList(std::istream &in);

/** Convenience wrapper opening @p path. */
Graph readEdgeListFile(const std::string &path);

/** Write "u v" lines, one per undirected edge (u < v). */
void writeEdgeList(const Graph &g, std::ostream &out);

/** Write the binary CSR format. */
void writeBinary(const Graph &g, std::ostream &out);

/** Read the binary CSR format written by writeBinary(). */
Graph readBinary(std::istream &in);

} // namespace io
} // namespace khuzdul

#endif // KHUZDUL_GRAPH_IO_HH
