/**
 * @file
 * Pattern isomorphism machinery: isomorphism tests, automorphism
 * groups and canonical codes.  Patterns have <= 8 vertices, so
 * permutation enumeration (with degree pruning) is exact and fast;
 * these routines back symmetry breaking, motif-pattern dedup and FSM
 * candidate dedup.
 */

#ifndef KHUZDUL_PATTERN_ISOMORPHISM_HH
#define KHUZDUL_PATTERN_ISOMORPHISM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "pattern/pattern.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace iso
{

/** A vertex permutation; entry v is the image of vertex v. */
using Permutation = std::array<int, kMaxPatternSize>;

/** Whether two (possibly labeled) patterns are isomorphic. */
bool isomorphic(const Pattern &a, const Pattern &b);

/**
 * All automorphisms of @p p (label-preserving when labeled).
 * Always contains the identity.
 */
std::vector<Permutation> automorphisms(const Pattern &p);

/**
 * Canonical code: equal iff patterns are isomorphic.  Packs the
 * size, the lexicographically-maximal upper-triangle adjacency over
 * all permutations, and (for labeled patterns) the corresponding
 * label sequence.
 */
struct CanonicalCode
{
    std::uint64_t structure = 0;
    std::uint64_t labels = 0;

    auto operator<=>(const CanonicalCode &) const = default;
};

CanonicalCode canonicalCode(const Pattern &p);

/** The isomorphism-canonical relabeling of @p p. */
Pattern canonicalForm(const Pattern &p);

/**
 * The permutation used by canonicalForm(): position perm[v] of the
 * canonical pattern corresponds to vertex v of @p p.
 */
Permutation canonicalPermutation(const Pattern &p);

} // namespace iso
} // namespace khuzdul

#endif // KHUZDUL_PATTERN_ISOMORPHISM_HH
