#include "pattern/isomorphism.hh"

#include <algorithm>
#include <numeric>

#include "support/check.hh"

namespace khuzdul
{
namespace iso
{

namespace
{

/** Apply each size-n permutation of 0..n-1 to @p fn until it says stop. */
template <typename Fn>
void
forEachPermutation(int n, Fn &&fn)
{
    Permutation perm{};
    std::iota(perm.begin(), perm.begin() + n, 0);
    do {
        if (!fn(perm))
            return;
    } while (std::next_permutation(perm.begin(), perm.begin() + n));
}

/** Whether perm maps pattern @p a exactly onto pattern @p b. */
bool
mapsOnto(const Pattern &a, const Pattern &b, const Permutation &perm)
{
    const int n = a.size();
    for (int v = 0; v < n; ++v) {
        if (a.labeled() && a.label(v) != b.label(perm[v]))
            return false;
        for (int u = v + 1; u < n; ++u)
            if (a.hasEdge(u, v) != b.hasEdge(perm[u], perm[v]))
                return false;
    }
    return true;
}

/** Degree multiset comparison: cheap non-isomorphism filter. */
bool
degreesMatch(const Pattern &a, const Pattern &b)
{
    std::array<int, kMaxPatternSize> da{};
    std::array<int, kMaxPatternSize> db{};
    for (int v = 0; v < a.size(); ++v) {
        da[v] = a.degree(v);
        db[v] = b.degree(v);
    }
    std::sort(da.begin(), da.begin() + a.size());
    std::sort(db.begin(), db.begin() + b.size());
    return std::equal(da.begin(), da.begin() + a.size(), db.begin());
}

CanonicalCode
codeOf(const Pattern &p, const Permutation &perm)
{
    CanonicalCode code;
    const int n = p.size();
    code.structure = static_cast<std::uint64_t>(n) << 56;
    int bit = 0;
    for (int u = 0; u < n; ++u) {
        for (int v = u + 1; v < n; ++v, ++bit) {
            if (p.hasEdge(u, v)) {
                // Position of the permuted pair in the canonical
                // upper triangle.
                int a = perm[u];
                int b = perm[v];
                if (a > b)
                    std::swap(a, b);
                const int idx = a * (2 * n - a - 1) / 2 + (b - a - 1);
                code.structure |= 1ULL << idx;
            }
        }
    }
    if (p.labeled()) {
        for (int v = 0; v < n; ++v) {
            const Label label = p.label(v);
            KHUZDUL_REQUIRE(label < 256,
                            "canonical codes support labels < 256");
            code.labels |= static_cast<std::uint64_t>(label)
                << (8 * perm[v]);
        }
    }
    return code;
}

} // namespace

bool
isomorphic(const Pattern &a, const Pattern &b)
{
    if (a.size() != b.size() || a.numEdges() != b.numEdges()
        || a.labeled() != b.labeled() || !degreesMatch(a, b))
        return false;
    bool found = false;
    forEachPermutation(a.size(), [&](const Permutation &perm) {
        if (mapsOnto(a, b, perm)) {
            found = true;
            return false;
        }
        return true;
    });
    return found;
}

std::vector<Permutation>
automorphisms(const Pattern &p)
{
    std::vector<Permutation> autos;
    forEachPermutation(p.size(), [&](const Permutation &perm) {
        if (mapsOnto(p, p, perm))
            autos.push_back(perm);
        return true;
    });
    return autos;
}

CanonicalCode
canonicalCode(const Pattern &p)
{
    CanonicalCode best;
    bool have = false;
    forEachPermutation(p.size(), [&](const Permutation &perm) {
        const CanonicalCode code = codeOf(p, perm);
        if (!have || code > best) {
            best = code;
            have = true;
        }
        return true;
    });
    return best;
}

Pattern
canonicalForm(const Pattern &p)
{
    return p.permuted(canonicalPermutation(p));
}

Permutation
canonicalPermutation(const Pattern &p)
{
    CanonicalCode best;
    Permutation best_perm{};
    bool have = false;
    forEachPermutation(p.size(), [&](const Permutation &perm) {
        const CanonicalCode code = codeOf(p, perm);
        if (!have || code > best) {
            best = code;
            best_perm = perm;
            have = true;
        }
        return true;
    });
    if (!have)
        for (int i = 0; i < kMaxPatternSize; ++i)
            best_perm[i] = i;
    return best_perm;
}

} // namespace iso
} // namespace khuzdul
