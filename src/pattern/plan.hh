/**
 * @file
 * Extension plans: the compiled form of a pattern-enumeration
 * algorithm.  A plan is what a client GPM system (k-Automine,
 * k-GraphPi, ...) hands to the engine; the engine's EXTEND function
 * interprets one plan level per extendable-embedding extension,
 * exactly like one loop level of the paper's generated nested loops
 * (Figure 5).
 */

#ifndef KHUZDUL_PATTERN_PLAN_HH
#define KHUZDUL_PATTERN_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pattern/pattern.hh"
#include "support/types.hh"

namespace khuzdul
{

/** Bitmask over matching-order positions (bit i = position i). */
using PositionMask = std::uint32_t;

/**
 * How position @p i of the matching order is matched.
 * levels[0] is the root level and carries no constraints.
 */
struct PlanLevel
{
    /**
     * Earlier positions whose edge lists are intersected to produce
     * the candidate set for this position.
     */
    PositionMask depMask = 0;

    /**
     * Induced matching only: earlier positions whose neighbors must
     * be excluded from the candidate set.
     */
    PositionMask antiMask = 0;

    /**
     * Symmetry breaking: the candidate must be greater than the
     * vertex at every position in this mask.
     */
    PositionMask greaterThanMask = 0;

    /**
     * Positions whose edge lists any later level still needs — the
     * paper's active vertices (anti-monotone by construction).
     */
    PositionMask activeMask = 0;

    /**
     * Whether the edge list of the vertex matched at this position
     * must be available for later levels (drives fetching).
     */
    bool fetchEdgeList = false;

    /**
     * Vertical computation sharing (paper §5.1): when true the
     * candidate set is the parent's stored intermediate result
     * intersected with extraDepMask's edge lists only.
     */
    bool reuseParent = false;

    /** Extra dependencies on top of the parent's stored result. */
    PositionMask extraDepMask = 0;

    /** Induced mode: extra exclusions on top of the parent result. */
    PositionMask extraAntiMask = 0;

    /**
     * Whether embeddings at this level store their originating
     * candidate set as a reusable intermediate result for children.
     */
    bool storeResult = false;

    /** Labeled matching: candidate must carry this label. */
    bool hasLabelFilter = false;
    Label labelFilter = 0;
};

/**
 * Inclusion-exclusion terminal block (GraphPi's IEP): the last
 * suffixSize positions are pairwise non-adjacent in the pattern, so
 * instead of materializing them the engine computes candidate-set
 * sizes and combines them over set partitions.
 */
struct IepBlock
{
    /** Number of trailing positions folded into the IEP. */
    int suffixSize = 0;

    /** Unique combined dependency masks whose sizes are needed. */
    std::vector<PositionMask> masks;

    /**
     * Vertical sharing into the IEP: masks[i] with maskReuse[i] set
     * extend the last prefix level's stored candidate set, so only
     * maskExtra[i]'s lists are intersected on top of it.
     */
    std::vector<bool> maskReuse;
    std::vector<PositionMask> maskExtra;

    /** One term per set partition of the suffix. */
    struct Term
    {
        /** prod of (-1)^(|B|-1) (|B|-1)! over blocks. */
        std::int64_t coefficient = 1;
        /** Index into masks, one per block of the partition. */
        std::vector<int> maskIndex;
    };
    std::vector<Term> terms;
};

/**
 * A complete extension plan for one pattern.
 *
 * The pattern is stored reordered so that matching-order position i
 * is pattern vertex i.  Counts produced by running the plan must be
 * divided by countDivisor (a group-theoretic constant; 1 when the
 * symmetry-breaking restrictions are complete).
 */
struct ExtendPlan
{
    /** Reordered pattern (position = vertex). */
    Pattern pattern;

    /** Induced (exact-adjacency) or non-induced matching. */
    bool induced = false;

    /** Per-position matching description; size = pattern.size(). */
    std::vector<PlanLevel> levels;

    /** Present when the plan ends in an IEP terminal block. */
    bool hasIep = false;
    IepBlock iep;

    /** Divide raw match counts by this to get embedding counts. */
    std::int64_t countDivisor = 1;

    /** Number of levels materialized as extendable embeddings. */
    int
    numMaterializedLevels() const
    {
        return pattern.size() - (hasIep ? iep.suffixSize : 0);
    }

    /** Debug rendering of the plan. */
    std::string toString() const;
};

} // namespace khuzdul

#endif // KHUZDUL_PATTERN_PLAN_HH
