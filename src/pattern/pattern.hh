/**
 * @file
 * Pattern graphs: the small connected graphs (<= 8 vertices) whose
 * embeddings GPM applications enumerate.  Stored as per-vertex
 * adjacency bitmasks for O(1) edge tests and cheap permutation.
 */

#ifndef KHUZDUL_PATTERN_PATTERN_HH
#define KHUZDUL_PATTERN_PATTERN_HH

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "support/types.hh"

namespace khuzdul
{

/**
 * A small undirected pattern graph with optional vertex labels.
 *
 * Vertices are 0..size()-1; adjacency is a bitmask per vertex.
 */
class Pattern
{
  public:
    /** An empty pattern with @p size isolated vertices. */
    explicit Pattern(int size = 0);

    /** Build from an edge list, e.g. Pattern(3, {{0,1},{1,2},{0,2}}). */
    Pattern(int size,
            std::initializer_list<std::pair<int, int>> edges);

    /** Build from an edge vector. */
    Pattern(int size, const std::vector<std::pair<int, int>> &edges);

    /** Number of vertices. */
    int size() const { return size_; }

    /** Number of undirected edges. */
    int numEdges() const;

    /** Add the undirected edge {u, v}. */
    void addEdge(int u, int v);

    /** Whether {u, v} is an edge. */
    bool
    hasEdge(int u, int v) const
    {
        return (adj_[u] >> v) & 1u;
    }

    /** Adjacency bitmask of @p v (bit i set iff {v, i} is an edge). */
    std::uint32_t adjacency(int v) const { return adj_[v]; }

    /** Degree of @p v within the pattern. */
    int degree(int v) const;

    /** Whether the pattern is connected (empty patterns are not). */
    bool connected() const;

    /** Whether vertex labels are attached. */
    bool labeled() const { return labeled_; }

    /** Label of @p v (0 when unlabeled). */
    Label label(int v) const { return labels_[v]; }

    /** Attach a label to @p v. */
    void setLabel(int v, Label label);

    /** Relabel vertices: result vertex perm[v] has v's edges/label. */
    Pattern permuted(const std::array<int, kMaxPatternSize> &perm) const;

    /** Human-readable form, e.g. "P4[0-1,1-2,2-3]". */
    std::string toString() const;

    bool operator==(const Pattern &other) const;

    /** @name Named constructors for common patterns. */
    /// @{
    static Pattern triangle() { return clique(3); }
    static Pattern clique(int k);
    static Pattern pathOf(int k);
    static Pattern cycleOf(int k);
    static Pattern starOf(int k);
    /** Triangle with a pendant edge (4 vertices). */
    static Pattern tailedTriangle();
    /** 4-cycle with one chord (the "diamond"). */
    static Pattern diamond();
    /// @}

  private:
    int size_ = 0;
    bool labeled_ = false;
    std::array<std::uint32_t, kMaxPatternSize> adj_{};
    std::array<Label, kMaxPatternSize> labels_{};
};

} // namespace khuzdul

#endif // KHUZDUL_PATTERN_PATTERN_HH
