/**
 * @file
 * Brute-force pattern matching by plain backtracking.  This is the
 * correctness oracle for every engine in the repository, and the
 * enumeration substrate of the pattern-oblivious (Fractal-like)
 * baseline.  It is deliberately simple and makes no use of
 * schedules, restrictions or IEP.
 */

#ifndef KHUZDUL_PATTERN_BRUTEFORCE_HH
#define KHUZDUL_PATTERN_BRUTEFORCE_HH

#include <array>
#include <functional>

#include "graph/graph.hh"
#include "pattern/pattern.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace brute
{

/** One ordered match: tuple[i] = graph vertex for pattern vertex i. */
using Match = std::array<VertexId, kMaxPatternSize>;

/**
 * Invoke @p fn for every ordered match (monomorphism; with
 * @p induced, exact-adjacency embedding) of @p p in @p g.  Labeled
 * patterns require matching vertex labels.
 */
void forEachOrderedMatch(const Graph &g, const Pattern &p, bool induced,
                         const std::function<void(const Match &)> &fn);

/**
 * Number of (unordered) embeddings of @p p in @p g — ordered matches
 * divided by |Aut(p)|.
 */
Count countEmbeddings(const Graph &g, const Pattern &p,
                      bool induced = false);

} // namespace brute
} // namespace khuzdul

#endif // KHUZDUL_PATTERN_BRUTEFORCE_HH
