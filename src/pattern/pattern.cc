#include "pattern/pattern.hh"

#include <bit>
#include <sstream>

#include "support/check.hh"

namespace khuzdul
{

Pattern::Pattern(int size)
    : size_(size)
{
    KHUZDUL_REQUIRE(size >= 0 && size <= kMaxPatternSize,
                    "pattern size must be in [0, " << kMaxPatternSize
                    << "], got " << size);
}

Pattern::Pattern(int size, std::initializer_list<std::pair<int, int>> edges)
    : Pattern(size)
{
    for (const auto &[u, v] : edges)
        addEdge(u, v);
}

Pattern::Pattern(int size, const std::vector<std::pair<int, int>> &edges)
    : Pattern(size)
{
    for (const auto &[u, v] : edges)
        addEdge(u, v);
}

int
Pattern::numEdges() const
{
    int twice = 0;
    for (int v = 0; v < size_; ++v)
        twice += std::popcount(adj_[v]);
    return twice / 2;
}

void
Pattern::addEdge(int u, int v)
{
    KHUZDUL_REQUIRE(u >= 0 && u < size_ && v >= 0 && v < size_ && u != v,
                    "bad pattern edge " << u << "-" << v);
    adj_[u] |= 1u << v;
    adj_[v] |= 1u << u;
}

int
Pattern::degree(int v) const
{
    return std::popcount(adj_[v]);
}

bool
Pattern::connected() const
{
    if (size_ == 0)
        return false;
    std::uint32_t visited = 1;
    std::uint32_t frontier = 1;
    while (frontier) {
        std::uint32_t next = 0;
        for (int v = 0; v < size_; ++v)
            if ((frontier >> v) & 1u)
                next |= adj_[v];
        frontier = next & ~visited;
        visited |= next;
    }
    return std::popcount(visited) == size_;
}

void
Pattern::setLabel(int v, Label label)
{
    KHUZDUL_REQUIRE(v >= 0 && v < size_, "label target out of range");
    labels_[v] = label;
    labeled_ = true;
}

Pattern
Pattern::permuted(const std::array<int, kMaxPatternSize> &perm) const
{
    Pattern out(size_);
    out.labeled_ = labeled_;
    for (int v = 0; v < size_; ++v) {
        out.labels_[perm[v]] = labels_[v];
        std::uint32_t row = 0;
        for (int u = 0; u < size_; ++u)
            if ((adj_[v] >> u) & 1u)
                row |= 1u << perm[u];
        out.adj_[perm[v]] = row;
    }
    return out;
}

std::string
Pattern::toString() const
{
    std::ostringstream os;
    os << "P" << size_ << "[";
    bool first = true;
    for (int u = 0; u < size_; ++u) {
        for (int v = u + 1; v < size_; ++v) {
            if (hasEdge(u, v)) {
                if (!first)
                    os << ",";
                os << u << "-" << v;
                first = false;
            }
        }
    }
    os << "]";
    if (labeled_) {
        os << "{";
        for (int v = 0; v < size_; ++v)
            os << (v ? "," : "") << labels_[v];
        os << "}";
    }
    return os.str();
}

bool
Pattern::operator==(const Pattern &other) const
{
    if (size_ != other.size_ || labeled_ != other.labeled_)
        return false;
    for (int v = 0; v < size_; ++v)
        if (adj_[v] != other.adj_[v] || labels_[v] != other.labels_[v])
            return false;
    return true;
}

Pattern
Pattern::clique(int k)
{
    Pattern p(k);
    for (int u = 0; u < k; ++u)
        for (int v = u + 1; v < k; ++v)
            p.addEdge(u, v);
    return p;
}

Pattern
Pattern::pathOf(int k)
{
    Pattern p(k);
    for (int v = 0; v + 1 < k; ++v)
        p.addEdge(v, v + 1);
    return p;
}

Pattern
Pattern::cycleOf(int k)
{
    KHUZDUL_REQUIRE(k >= 3, "cycle pattern needs >= 3 vertices");
    Pattern p(k);
    for (int v = 0; v < k; ++v)
        p.addEdge(v, (v + 1) % k);
    return p;
}

Pattern
Pattern::starOf(int k)
{
    KHUZDUL_REQUIRE(k >= 2, "star pattern needs >= 2 vertices");
    Pattern p(k);
    for (int v = 1; v < k; ++v)
        p.addEdge(0, v);
    return p;
}

Pattern
Pattern::tailedTriangle()
{
    return Pattern(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
}

Pattern
Pattern::diamond()
{
    return Pattern(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
}

} // namespace khuzdul
