/**
 * @file
 * Pattern-set generation: all connected size-k patterns (the k-motif
 * census of k-MC) and labeled FSM candidate patterns bounded by edge
 * count, deduplicated by canonical code.
 */

#ifndef KHUZDUL_PATTERN_GENERATION_HH
#define KHUZDUL_PATTERN_GENERATION_HH

#include <vector>

#include "pattern/pattern.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace gen
{

/**
 * All non-isomorphic connected unlabeled patterns with exactly
 * @p num_vertices vertices (e.g. 2 for k=3: wedge + triangle;
 * 6 for k=4).
 */
std::vector<Pattern> connectedPatterns(int num_vertices);

/**
 * All non-isomorphic connected unlabeled patterns with at most
 * @p max_edges edges (>= 1) and any vertex count that a connected
 * graph with that many edges allows.
 */
std::vector<Pattern> connectedPatternsUpToEdges(int max_edges);

/**
 * All non-isomorphic labelings of @p base with labels drawn from
 * [0, num_labels).
 */
std::vector<Pattern> labelings(const Pattern &base, Label num_labels);

} // namespace gen
} // namespace khuzdul

#endif // KHUZDUL_PATTERN_GENERATION_HH
