#include "pattern/planner.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "pattern/isomorphism.hh"
#include "support/check.hh"

namespace khuzdul
{

namespace
{

/** Factorial for IEP coefficients (n <= 7). */
std::int64_t
factorial(int n)
{
    std::int64_t f = 1;
    for (int i = 2; i <= n; ++i)
        f *= i;
    return f;
}

/**
 * Orbit-chain symmetry breaking (GraphZero style).  Given the group
 * @p autos acting on positions, emit "position i < position j"
 * restrictions that keep exactly one representative per group orbit
 * of each injective tuple; only positions < prefix_len are
 * considered (the group must map that prefix to itself).
 */
void
orbitRestrictions(std::vector<iso::Permutation> autos, int prefix_len,
                  std::vector<PlanLevel> &levels)
{
    for (int i = 0; i < prefix_len; ++i) {
        PositionMask orbit = 0;
        for (const auto &sigma : autos)
            orbit |= 1u << sigma[i];
        orbit &= ~(1u << i);
        for (int j = 0; j < prefix_len; ++j)
            if ((orbit >> j) & 1u)
                levels[j].greaterThanMask |= 1u << i;
        std::erase_if(autos, [i](const iso::Permutation &sigma) {
            return sigma[i] != i;
        });
    }
}

/** Lists needed to extend a level-(i-1) embedding to level i. */
PositionMask
neededLists(const ExtendPlan &plan, int i)
{
    const PlanLevel &level = plan.levels[i];
    PositionMask mask = level.reuseParent
        ? (level.extraDepMask | level.extraAntiMask)
        : (level.depMask | level.antiMask);
    return mask;
}

} // namespace

GraphProfile
GraphProfile::fromGraph(const Graph &g)
{
    GraphProfile profile;
    profile.numVertices = std::max<double>(1.0, g.numVertices());
    profile.avgDegree = g.numVertices() == 0
        ? 1.0
        : static_cast<double>(g.numArcs()) / g.numVertices();
    return profile;
}

ExtendPlan
buildPlan(const Pattern &p, const std::vector<int> &order,
          const PlanOptions &options, int iep_suffix)
{
    const int n = p.size();
    KHUZDUL_REQUIRE(n >= 1 && p.connected(),
                    "plans need a connected non-empty pattern");
    KHUZDUL_REQUIRE(static_cast<int>(order.size()) == n,
                    "matching order size must equal pattern size");
    KHUZDUL_REQUIRE(iep_suffix >= 0 && iep_suffix < n,
                    "IEP suffix must leave at least one prefix level");
    if (options.induced)
        KHUZDUL_REQUIRE(iep_suffix == 0,
                        "IEP is incompatible with induced matching");

    // Reorder the pattern so that position i == pattern vertex i.
    iso::Permutation to_position{};
    std::uint32_t used = 0;
    for (int i = 0; i < n; ++i) {
        const int v = order[i];
        KHUZDUL_REQUIRE(v >= 0 && v < n && !((used >> v) & 1u),
                        "matching order must be a permutation");
        used |= 1u << v;
        to_position[v] = i;
    }
    ExtendPlan plan;
    plan.pattern = p.permuted(to_position);
    plan.induced = options.induced;
    plan.levels.resize(n);

    const int prefix_len = n - iep_suffix;

    // Dependency and exclusion masks; validate prefix connectivity.
    for (int i = 1; i < n; ++i) {
        PlanLevel &level = plan.levels[i];
        const PositionMask earlier = (1u << i) - 1;
        level.depMask = plan.pattern.adjacency(i) & earlier;
        KHUZDUL_REQUIRE(level.depMask != 0,
                        "matching order prefix must stay connected "
                        "(position " << i << ")");
        if (options.induced)
            level.antiMask = earlier & ~level.depMask;
        if (plan.pattern.labeled()) {
            level.hasLabelFilter = true;
            level.labelFilter = plan.pattern.label(i);
        }
    }
    if (plan.pattern.labeled()) {
        plan.levels[0].hasLabelFilter = true;
        plan.levels[0].labelFilter = plan.pattern.label(0);
    }

    // IEP terminal block: trailing positions must be pairwise
    // non-adjacent so injective assignments can be counted by
    // inclusion-exclusion over set partitions.
    if (iep_suffix >= 1) {
        KHUZDUL_REQUIRE(!plan.pattern.labeled(),
                        "IEP is unsupported for labeled patterns");
        for (int a = prefix_len; a < n; ++a)
            for (int b = a + 1; b < n; ++b)
                KHUZDUL_REQUIRE(!plan.pattern.hasEdge(a, b),
                                "IEP suffix positions must be pairwise "
                                "non-adjacent");
        plan.hasIep = true;
        plan.iep.suffixSize = iep_suffix;
        const auto partitions = setPartitions(iep_suffix);
        for (const auto &partition : partitions) {
            IepBlock::Term term;
            for (const auto &block : partition) {
                PositionMask mask = 0;
                for (const int t : block)
                    mask |= plan.levels[prefix_len + t].depMask;
                const int b = static_cast<int>(block.size());
                term.coefficient *= (b % 2 == 0 ? -1 : 1) * factorial(b - 1);
                auto it = std::find(plan.iep.masks.begin(),
                                    plan.iep.masks.end(), mask);
                if (it == plan.iep.masks.end()) {
                    plan.iep.masks.push_back(mask);
                    it = std::prev(plan.iep.masks.end());
                }
                term.maskIndex.push_back(
                    static_cast<int>(it - plan.iep.masks.begin()));
            }
            plan.iep.terms.push_back(std::move(term));
        }
    }

    // Symmetry breaking and the count divisor.  With
    //   G  = Aut(reordered pattern),
    //   K  = {sigma in G : sigma maps the prefix to itself},
    //   K0 = {sigma in G : sigma fixes every prefix position},
    // orbit-chain restrictions over K keep one canonical prefix per
    // K-orbit, so every embedding is matched (|G|/|K|) * |K0| times.
    const auto group = iso::automorphisms(plan.pattern);
    std::vector<iso::Permutation> prefix_stable;
    std::int64_t k0_size = 0;
    for (const auto &sigma : group) {
        bool stable = true;
        bool fixes_all = true;
        for (int i = 0; i < prefix_len; ++i) {
            if (sigma[i] >= prefix_len)
                stable = false;
            if (sigma[i] != i)
                fixes_all = false;
        }
        if (stable)
            prefix_stable.push_back(sigma);
        if (fixes_all)
            ++k0_size;
    }
    const auto g_size = static_cast<std::int64_t>(group.size());
    const auto k_size = static_cast<std::int64_t>(prefix_stable.size());
    if (options.symmetryBreaking) {
        orbitRestrictions(prefix_stable, prefix_len, plan.levels);
        plan.countDivisor = (g_size / k_size) * k0_size;
    } else {
        plan.countDivisor = g_size;
    }

    // Vertical computation sharing: reuse the parent's materialized
    // candidate set when this level's constraints extend it.
    if (options.verticalSharing) {
        for (int i = 2; i < prefix_len; ++i) {
            PlanLevel &level = plan.levels[i];
            const PlanLevel &parent = plan.levels[i - 1];
            const bool deps_extend =
                (level.depMask & parent.depMask) == parent.depMask;
            const bool antis_extend =
                (level.antiMask & parent.antiMask) == parent.antiMask;
            // Reusing a one-list "intersection" saves nothing.
            if (deps_extend && antis_extend
                && std::popcount(parent.depMask) >= 2) {
                level.reuseParent = true;
                level.extraDepMask = level.depMask & ~parent.depMask;
                level.extraAntiMask = level.antiMask & ~parent.antiMask;
                plan.levels[i - 1].storeResult = true;
            }
        }
    }

    // Vertical sharing into the IEP terminal block: a mask that
    // extends the last prefix level's dependency set can reuse its
    // stored candidate set (GraphPi computes these intersections
    // incrementally too).
    if (plan.hasIep && options.verticalSharing && prefix_len >= 2) {
        PlanLevel &last = plan.levels[prefix_len - 1];
        plan.iep.maskReuse.assign(plan.iep.masks.size(), false);
        plan.iep.maskExtra.assign(plan.iep.masks.size(), 0);
        if (std::popcount(last.depMask) >= 2 && last.antiMask == 0) {
            for (std::size_t m = 0; m < plan.iep.masks.size(); ++m) {
                const PositionMask mask = plan.iep.masks[m];
                if ((mask & last.depMask) == last.depMask) {
                    plan.iep.maskReuse[m] = true;
                    plan.iep.maskExtra[m] = mask & ~last.depMask;
                    last.storeResult = true;
                }
            }
        }
    }

    // Active edge lists (anti-monotone): a position stays active at
    // level i when some later extension or the IEP still reads its
    // edge list.
    PositionMask iep_union = 0;
    if (plan.hasIep)
        for (const PositionMask mask : plan.iep.masks)
            iep_union |= mask;
    for (int i = 0; i < prefix_len; ++i) {
        PositionMask future = iep_union;
        for (int j = i + 1; j < prefix_len; ++j)
            future |= neededLists(plan, j);
        plan.levels[i].activeMask = future & ((1u << (i + 1)) - 1);
        plan.levels[i].fetchEdgeList = ((future >> i) & 1u) != 0;
    }

    return plan;
}

std::vector<int>
automineOrder(const Pattern &p)
{
    const int n = p.size();
    std::vector<int> order;
    std::uint32_t chosen = 0;
    // Start at a maximum-degree vertex; then greedily add the vertex
    // with the most edges into the prefix (ties: higher degree, then
    // lower id), which keeps intersections selective early.
    int best = 0;
    for (int v = 1; v < n; ++v)
        if (p.degree(v) > p.degree(best))
            best = v;
    order.push_back(best);
    chosen |= 1u << best;
    while (static_cast<int>(order.size()) < n) {
        int pick = -1;
        int pick_links = -1;
        for (int v = 0; v < n; ++v) {
            if ((chosen >> v) & 1u)
                continue;
            const int links = std::popcount(p.adjacency(v) & chosen);
            if (links == 0)
                continue;
            if (links > pick_links
                || (links == pick_links
                    && p.degree(v) > p.degree(pick))) {
                pick = v;
                pick_links = links;
            }
        }
        KHUZDUL_CHECK(pick >= 0, "disconnected pattern in order search");
        order.push_back(pick);
        chosen |= 1u << pick;
    }
    return order;
}

ExtendPlan
compileAutomine(const Pattern &p, const PlanOptions &options)
{
    PlanOptions opts = options;
    opts.useIep = false;
    return buildPlan(p, automineOrder(p), opts, 0);
}

double
estimatePlanCost(const ExtendPlan &plan, const GraphProfile &profile)
{
    const int n = plan.pattern.size();
    const int prefix_len = plan.numMaterializedLevels();
    const double v = profile.numVertices;
    const double d = std::max(1.0, profile.avgDegree);
    const double p_edge = std::min(1.0, d / v);

    double matches = v; // expected level-0 embeddings
    double cost = 0;
    // Materialized levels; the last position (scan) or the IEP
    // block is charged separately below.
    const int loop_end = plan.hasIep ? prefix_len : n - 1;
    for (int i = 1; i < loop_end; ++i) {
        const PlanLevel &level = plan.levels[i];
        const int deps = std::popcount(level.depMask);
        // Intersecting |deps| sorted lists costs ~ deps * d; with a
        // stored parent result only the extra lists are merged.
        const int lists = level.reuseParent
            ? std::popcount(level.extraDepMask | level.extraAntiMask) + 1
            : deps + std::popcount(level.antiMask);
        cost += matches * (static_cast<double>(lists) * d + 8.0);
        double expected = v * std::pow(p_edge, deps);
        // Each ">" restriction roughly halves surviving candidates.
        expected /= std::pow(2.0, std::popcount(level.greaterThanMask));
        matches *= std::max(expected, 1e-3);
    }
    if (plan.hasIep) {
        // IEP replaces the last loops with pure size computations:
        // no per-candidate filtering, no materialization.
        double per_prefix = 0;
        for (const PositionMask mask : plan.iep.masks)
            per_prefix += static_cast<double>(std::popcount(mask)) * d;
        cost += matches * (per_prefix + 8.0);
    } else if (n >= 2) {
        // Terminal candidates are scanned and filtered one by one;
        // the per-candidate checks are what IEP saves.
        const PlanLevel &last = plan.levels[n - 1];
        const int deps = std::popcount(last.depMask);
        const double candidates = v * std::pow(p_edge, deps);
        cost += matches
            * (static_cast<double>(deps) * d + candidates * 2.0 + 8.0);
    }
    return cost;
}

ExtendPlan
compileGraphPi(const Pattern &p, const GraphProfile &profile,
               const PlanOptions &options)
{
    const int n = p.size();
    std::vector<int> order(n);
    for (int i = 0; i < n; ++i)
        order[i] = i;

    ExtendPlan best;
    double best_cost = 0;
    bool have = false;

    // Exhaustive order search is exact for the pattern sizes GPM
    // uses (<= 7); fall back to the heuristic order above that.
    if (n > 7)
        return compileAutomine(p, options);

    std::sort(order.begin(), order.end());
    do {
        // Prefix connectivity check (cheap reject before building).
        std::uint32_t seen = 1u << order[0];
        bool connected = true;
        for (int i = 1; i < n && connected; ++i) {
            if ((p.adjacency(order[i]) & seen) == 0)
                connected = false;
            seen |= 1u << order[i];
        }
        if (!connected)
            continue;

        // Largest admissible IEP suffix for this order.
        int max_suffix = 0;
        if (options.useIep && !options.induced && !p.labeled()) {
            while (max_suffix + 1 < n) {
                const int a = order[n - 1 - max_suffix];
                bool independent = true;
                for (int t = 0; t < max_suffix; ++t)
                    if (p.hasEdge(a, order[n - 1 - t]))
                        independent = false;
                if (!independent)
                    break;
                ++max_suffix;
            }
        }
        for (int suffix = 0; suffix <= max_suffix; ++suffix) {
            ExtendPlan plan = buildPlan(p, order, options, suffix);
            const double cost = estimatePlanCost(plan, profile);
            if (!have || cost < best_cost) {
                best = std::move(plan);
                best_cost = cost;
                have = true;
            }
        }
    } while (std::next_permutation(order.begin(), order.end()));

    KHUZDUL_CHECK(have, "no valid matching order found");
    return best;
}

std::vector<std::vector<std::vector<int>>>
setPartitions(int n)
{
    std::vector<std::vector<std::vector<int>>> result;
    std::vector<std::vector<int>> current;
    // Standard recursion: element i joins an existing block or opens
    // a new one.
    auto recurse = [&](auto &&self, int i) -> void {
        if (i == n) {
            result.push_back(current);
            return;
        }
        // Index loop: recursion may grow `current`, invalidating
        // references held by a range-for.
        const std::size_t blocks = current.size();
        for (std::size_t b = 0; b < blocks; ++b) {
            current[b].push_back(i);
            self(self, i + 1);
            current[b].pop_back();
        }
        current.push_back({i});
        self(self, i + 1);
        current.pop_back();
    };
    recurse(recurse, 0);
    return result;
}

std::string
ExtendPlan::toString() const
{
    std::ostringstream os;
    os << "plan(" << pattern.toString()
       << (induced ? ", induced" : "")
       << ", divisor=" << countDivisor << ")\n";
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const PlanLevel &level = levels[i];
        os << "  L" << i << ": dep=" << std::hex << level.depMask
           << " anti=" << level.antiMask
           << " gt=" << level.greaterThanMask
           << " active=" << level.activeMask << std::dec
           << (level.fetchEdgeList ? " fetch" : "")
           << (level.reuseParent ? " reuse" : "")
           << (level.storeResult ? " store" : "") << "\n";
    }
    if (hasIep)
        os << "  IEP suffix=" << iep.suffixSize
           << " masks=" << iep.masks.size()
           << " terms=" << iep.terms.size() << "\n";
    return os.str();
}

} // namespace khuzdul
