#include "pattern/bruteforce.hh"

#include "pattern/isomorphism.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace brute
{

namespace
{

struct Search
{
    const Graph &g;
    const Pattern &p;
    bool induced;
    const std::function<void(const Match &)> &fn;
    Match match{};

    bool
    consistent(int i, VertexId candidate) const
    {
        if (p.labeled() && g.label(candidate) != p.label(i))
            return false;
        for (int j = 0; j < i; ++j) {
            if (match[j] == candidate)
                return false;
            const bool g_edge = g.hasEdge(match[j], candidate);
            const bool p_edge = p.hasEdge(j, i);
            if (p_edge && !g_edge)
                return false;
            if (induced && !p_edge && g_edge)
                return false;
        }
        return true;
    }

    void
    recurse(int i)
    {
        if (i == p.size()) {
            fn(match);
            return;
        }
        // Pick candidates from a matched pattern-neighbor's list when
        // one exists (pattern connectivity makes i=0 the only root).
        int anchor = -1;
        for (int j = 0; j < i; ++j)
            if (p.hasEdge(j, i))
                anchor = j;
        if (anchor < 0) {
            for (VertexId v = 0; v < g.numVertices(); ++v)
                if (consistent(i, v)) {
                    match[i] = v;
                    recurse(i + 1);
                }
        } else {
            for (const VertexId v : g.neighbors(match[anchor]))
                if (consistent(i, v)) {
                    match[i] = v;
                    recurse(i + 1);
                }
        }
    }
};

} // namespace

void
forEachOrderedMatch(const Graph &g, const Pattern &p, bool induced,
                    const std::function<void(const Match &)> &fn)
{
    KHUZDUL_REQUIRE(p.size() >= 1 && p.connected(),
                    "brute-force matching needs a connected pattern");
    Search search{g, p, induced, fn, {}};
    search.recurse(0);
}

Count
countEmbeddings(const Graph &g, const Pattern &p, bool induced)
{
    Count ordered = 0;
    forEachOrderedMatch(g, p, induced, [&](const Match &) { ++ordered; });
    const auto autos = iso::automorphisms(p).size();
    KHUZDUL_CHECK(ordered % autos == 0,
                  "ordered match count must be divisible by |Aut|");
    return ordered / autos;
}

} // namespace brute
} // namespace khuzdul
