/**
 * @file
 * Plan compilation: turns a pattern into an ExtendPlan.  This plays
 * the role of the Automine / GraphPi compilers in the paper — the
 * ~500-line "porting" layer that emits the EXTEND function.  Two
 * compilation styles are provided:
 *
 *  - compileAutomine(): Automine/GraphZero style — a locality
 *    heuristic matching order, full symmetry-breaking restrictions,
 *    vertical-computation-sharing annotations, no IEP;
 *  - compileGraphPi(): GraphPi style — exhaustive matching-order
 *    search under a degree-based cost model plus the
 *    inclusion-exclusion (IEP) terminal block for counting.
 */

#ifndef KHUZDUL_PATTERN_PLANNER_HH
#define KHUZDUL_PATTERN_PLANNER_HH

#include <vector>

#include "graph/graph.hh"
#include "pattern/pattern.hh"
#include "pattern/plan.hh"

namespace khuzdul
{

/** Input-graph statistics driving cost-based order selection. */
struct GraphProfile
{
    double numVertices = 1.0;
    double avgDegree = 1.0;

    static GraphProfile fromGraph(const Graph &g);
};

/** Knobs for plan compilation (ablation switches map to Fig 11). */
struct PlanOptions
{
    /** Induced (exact-adjacency) matching; disables IEP. */
    bool induced = false;

    /** Allow the IEP terminal block (GraphPi only). */
    bool useIep = true;

    /** Emit vertical-computation-sharing annotations (§5.1). */
    bool verticalSharing = true;

    /**
     * Emit symmetry-breaking restrictions.  When false the plan
     * counts every ordered match and sets countDivisor = |Aut|.
     */
    bool symmetryBreaking = true;
};

/**
 * Build a plan for @p p matched in @p order (order[i] = pattern
 * vertex matched at position i).  Every prefix of the order must be
 * connected in @p p.  Restrictions and countDivisor are derived from
 * the automorphism group so that counts are exact for any valid
 * order.
 *
 * @param iep_suffix number of trailing positions to fold into an
 *        IEP block (0 = none); they must be pairwise non-adjacent.
 */
ExtendPlan buildPlan(const Pattern &p, const std::vector<int> &order,
                     const PlanOptions &options, int iep_suffix = 0);

/** Automine-style heuristic matching order. */
std::vector<int> automineOrder(const Pattern &p);

/** Compile with the Automine heuristic order (no IEP). */
ExtendPlan compileAutomine(const Pattern &p, const PlanOptions &options);

/**
 * Compile GraphPi style: search all connected matching orders and
 * IEP suffix sizes under the cost model, return the cheapest plan.
 */
ExtendPlan compileGraphPi(const Pattern &p, const GraphProfile &profile,
                          const PlanOptions &options);

/** All set partitions of {0..n-1}; each partition is a block list. */
std::vector<std::vector<std::vector<int>>> setPartitions(int n);

/**
 * Rough work estimate for executing @p plan on a graph with profile
 * @p profile; used by compileGraphPi() and exposed for tests.
 */
double estimatePlanCost(const ExtendPlan &plan,
                        const GraphProfile &profile);

} // namespace khuzdul

#endif // KHUZDUL_PATTERN_PLANNER_HH
