#include "pattern/generation.hh"

#include <bit>
#include <map>
#include <utility>

#include "pattern/isomorphism.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace gen
{

namespace
{

/** Insert @p p into @p seen/out when its canonical code is new. */
void
dedupInsert(const Pattern &p,
            std::map<iso::CanonicalCode, bool> &seen,
            std::vector<Pattern> &out)
{
    const auto code = iso::canonicalCode(p);
    if (seen.emplace(code, true).second)
        out.push_back(iso::canonicalForm(p));
}

} // namespace

std::vector<Pattern>
connectedPatterns(int num_vertices)
{
    KHUZDUL_REQUIRE(num_vertices >= 1 && num_vertices <= 6,
                    "connectedPatterns supports 1..6 vertices, got "
                    << num_vertices);
    const int pairs = num_vertices * (num_vertices - 1) / 2;
    std::map<iso::CanonicalCode, bool> seen;
    std::vector<Pattern> out;
    for (std::uint32_t mask = 0; mask < (1u << pairs); ++mask) {
        Pattern p(num_vertices);
        int bit = 0;
        for (int u = 0; u < num_vertices; ++u)
            for (int v = u + 1; v < num_vertices; ++v, ++bit)
                if ((mask >> bit) & 1u)
                    p.addEdge(u, v);
        if (p.connected())
            dedupInsert(p, seen, out);
    }
    return out;
}

std::vector<Pattern>
connectedPatternsUpToEdges(int max_edges)
{
    KHUZDUL_REQUIRE(max_edges >= 1 && max_edges <= 7,
                    "connectedPatternsUpToEdges supports 1..7 edges");
    std::map<iso::CanonicalCode, bool> seen;
    std::vector<Pattern> out;
    // A connected graph with e edges has at most e+1 vertices.
    for (int n = 2; n <= max_edges + 1 && n <= kMaxPatternSize; ++n) {
        const int pairs = n * (n - 1) / 2;
        for (std::uint32_t mask = 0; mask < (1u << pairs); ++mask) {
            if (std::popcount(mask) > max_edges)
                continue;
            Pattern p(n);
            int bit = 0;
            for (int u = 0; u < n; ++u)
                for (int v = u + 1; v < n; ++v, ++bit)
                    if ((mask >> bit) & 1u)
                        p.addEdge(u, v);
            if (p.connected())
                dedupInsert(p, seen, out);
        }
    }
    return out;
}

std::vector<Pattern>
labelings(const Pattern &base, Label num_labels)
{
    KHUZDUL_REQUIRE(num_labels >= 1, "need at least one label");
    std::map<iso::CanonicalCode, bool> seen;
    std::vector<Pattern> out;
    const int n = base.size();
    std::vector<Label> assignment(n, 0);
    while (true) {
        Pattern p = base;
        for (int v = 0; v < n; ++v)
            p.setLabel(v, assignment[v]);
        dedupInsert(p, seen, out);
        // Odometer increment over label assignments.
        int pos = 0;
        while (pos < n) {
            if (++assignment[pos] < num_labels)
                break;
            assignment[pos] = 0;
            ++pos;
        }
        if (pos == n)
            break;
    }
    return out;
}

} // namespace gen
} // namespace khuzdul
