/**
 * @file
 * "Moving computation to data" baseline (aDFS-like, §2.3 / Fig 10).
 * Instead of pulling remote edge lists, partially-constructed
 * embeddings travel to the machine owning the data they need next,
 * carrying the active edge lists required for the coming
 * intersection.  The paper identifies two penalties — extra edge
 * lists on the wire and no opportunity for data reuse — and this
 * engine charges both: every owner change ships the embedding plus
 * its active lists, with no cache to absorb repeats.
 */

#ifndef KHUZDUL_ENGINES_MOVE_COMPUTATION_HH
#define KHUZDUL_ENGINES_MOVE_COMPUTATION_HH

#include <memory>

#include "core/context.hh"
#include "core/plan_runner.hh"
#include "graph/graph.hh"
#include "graph/partition.hh"
#include "pattern/planner.hh"
#include "sim/cluster.hh"
#include "sim/cost_model.hh"
#include "sim/stats.hh"

namespace khuzdul
{
namespace engines
{

/** Deployment knobs of the aDFS-like engine. */
struct MoveComputationConfig
{
    sim::ClusterConfig cluster;
    sim::CostModel cost;

    /** Embeddings shipped per message (aDFS batches its queues). */
    unsigned shipBatch = 32;

    /**
     * Fraction of shipping time hidden by its almost-DFS pipeline;
     * GPM's intersections need whole edge lists attached, so
     * overlap is poor.
     */
    double overlapFraction = 0.25;
};

/** Result of one run. */
struct MoveComputationResult
{
    Count count = 0;
    double makespanNs = 0;
    sim::RunStats stats;
};

/** The engine. */
class MoveComputationEngine
{
  public:
    MoveComputationEngine(const Graph &g,
                          const MoveComputationConfig &config);

    /** Re-seated form: shares the context's partition when its
     *  geometry matches this single-socket deployment, else builds
     *  a private one over the context's graph. */
    MoveComputationEngine(core::GraphContext &context,
                          const MoveComputationConfig &config);

    Count run(const Pattern &p, MoveComputationResult &result,
              const PlanOptions &options = {});

    /** Convenience wrapper returning the full result. */
    MoveComputationResult count(const Pattern &p,
                                const PlanOptions &options = {});

  private:
    const Graph *graph_;
    MoveComputationConfig config_;

    /** Set iff the context's partition could not be shared. */
    std::unique_ptr<Partition> ownedPartition_;
    const Partition *partition_;
};

} // namespace engines
} // namespace khuzdul

#endif // KHUZDUL_ENGINES_MOVE_COMPUTATION_HH
