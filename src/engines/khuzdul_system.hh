/**
 * @file
 * The two Khuzdul-based GPM systems of the paper: k-Automine and
 * k-GraphPi.  Each pairs a client compiler (the "ported" ~500-line
 * layer emitting EXTEND plans) with the shared distributed engine.
 */

#ifndef KHUZDUL_ENGINES_KHUZDUL_SYSTEM_HH
#define KHUZDUL_ENGINES_KHUZDUL_SYSTEM_HH

#include <memory>

#include "core/engine.hh"
#include "pattern/planner.hh"

namespace khuzdul
{
namespace engines
{

/** Which single-machine system's compiler drives plan generation. */
enum class CompilerStyle
{
    Automine, ///< locality-heuristic order, no IEP (k-Automine)
    GraphPi,  ///< cost-model order search + IEP (k-GraphPi)
};

/** A complete distributed GPM system: compiler + Khuzdul engine. */
class KhuzdulSystem
{
  public:
    KhuzdulSystem(const Graph &g, const core::EngineConfig &config,
                  CompilerStyle style);

    /** Session form: run over a shared GraphContext (the planner
     *  profile is the context's shared one, computed once per
     *  graph rather than per system). */
    KhuzdulSystem(core::GraphContext &context,
                  const core::SessionConfig &session,
                  CompilerStyle style);

    /** Compile @p p in this system's style. */
    ExtendPlan compile(const Pattern &p,
                       const PlanOptions &options = {}) const;

    /** Count embeddings of @p p. */
    Count count(const Pattern &p, const PlanOptions &options = {});

    /**
     * Enumerate embeddings of @p p through @p visitor (forces a
     * visitor-compatible plan: no IEP, full symmetry breaking).
     */
    Count enumerate(const Pattern &p, core::MatchVisitor *visitor,
                    const PlanOptions &options = {});

    CompilerStyle style() const { return style_; }
    const Graph &graph() const { return engine_->graph(); }
    core::Engine &engine() { return *engine_; }
    const sim::RunStats &stats() const { return engine_->stats(); }
    void resetStats() { engine_->resetStats(); }

    /** Factory helpers matching the paper's system names. */
    static std::unique_ptr<KhuzdulSystem>
    kAutomine(const Graph &g, const core::EngineConfig &config)
    {
        return std::make_unique<KhuzdulSystem>(g, config,
                                               CompilerStyle::Automine);
    }

    static std::unique_ptr<KhuzdulSystem>
    kGraphPi(const Graph &g, const core::EngineConfig &config)
    {
        return std::make_unique<KhuzdulSystem>(g, config,
                                               CompilerStyle::GraphPi);
    }

  private:
    std::unique_ptr<core::Engine> engine_;
    CompilerStyle style_;

    /** The engine's context's shared profile (never owned). */
    const GraphProfile *profile_;
};

} // namespace engines
} // namespace khuzdul

#endif // KHUZDUL_ENGINES_KHUZDUL_SYSTEM_HH
