/**
 * @file
 * Pattern-oblivious baseline (Fractal/Arabesque style, Table 4):
 * enumerate *every* connected edge-induced subgraph up to an edge
 * budget, canonicalize each instance with an isomorphism
 * computation, and aggregate per-pattern MNI supports.  This is the
 * first-generation GPM approach the paper contrasts with
 * pattern-aware enumeration — correct, general and slow, because
 * the expensive canonicalization runs once per *instance*.
 */

#ifndef KHUZDUL_ENGINES_PATTERN_OBLIVIOUS_HH
#define KHUZDUL_ENGINES_PATTERN_OBLIVIOUS_HH

#include <utility>
#include <vector>

#include "graph/graph.hh"
#include "pattern/pattern.hh"
#include "sim/cluster.hh"
#include "sim/cost_model.hh"
#include "sim/stats.hh"

namespace khuzdul
{
namespace engines
{

/** Deployment knobs. */
struct PatternObliviousConfig
{
    sim::ClusterConfig cluster;
    sim::CostModel cost;

    /** Modeled canonicalization cost per enumerated instance. */
    double canonicalizeNs = 450.0;
};

/** Support of one discovered labeled pattern. */
struct PatternSupport
{
    Pattern pattern;
    Count support = 0;      ///< MNI (minimum image) support
    Count instances = 0;    ///< enumerated subgraph instances
};

/** Result of a frequent-subgraph-mining run. */
struct PatternObliviousResult
{
    std::vector<PatternSupport> patterns;
    Count totalInstances = 0;
    double makespanNs = 0;
    sim::RunStats stats;
};

/** The engine. */
class PatternObliviousEngine
{
  public:
    PatternObliviousEngine(const Graph &g,
                           const PatternObliviousConfig &config);

    /**
     * Enumerate all connected subgraphs with <= @p max_edges edges
     * and aggregate MNI supports per canonical labeled pattern;
     * patterns below @p min_support are filtered from the result
     * (but still paid for — the pattern-oblivious tax).
     */
    PatternObliviousResult mineFrequent(int max_edges,
                                        Count min_support);

  private:
    const Graph *graph_;
    PatternObliviousConfig config_;
};

} // namespace engines
} // namespace khuzdul

#endif // KHUZDUL_ENGINES_PATTERN_OBLIVIOUS_HH
