#include "engines/khuzdul_system.hh"

namespace khuzdul
{
namespace engines
{

KhuzdulSystem::KhuzdulSystem(const Graph &g,
                             const core::EngineConfig &config,
                             CompilerStyle style)
    : engine_(std::make_unique<core::Engine>(g, config)), style_(style),
      profile_(&engine_->context().profile())
{}

KhuzdulSystem::KhuzdulSystem(core::GraphContext &context,
                             const core::SessionConfig &session,
                             CompilerStyle style)
    : engine_(std::make_unique<core::Engine>(context, session)),
      style_(style), profile_(&context.profile())
{}

ExtendPlan
KhuzdulSystem::compile(const Pattern &p, const PlanOptions &options) const
{
    if (style_ == CompilerStyle::Automine)
        return compileAutomine(p, options);
    return compileGraphPi(p, *profile_, options);
}

Count
KhuzdulSystem::count(const Pattern &p, const PlanOptions &options)
{
    return engine_->run(compile(p, options));
}

Count
KhuzdulSystem::enumerate(const Pattern &p, core::MatchVisitor *visitor,
                         const PlanOptions &options)
{
    PlanOptions opts = options;
    opts.useIep = false;
    opts.symmetryBreaking = true;
    return engine_->run(compile(p, opts), visitor);
}

} // namespace engines
} // namespace khuzdul
