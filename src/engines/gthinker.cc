#include "engines/gthinker.hh"

#include <algorithm>

#include "core/cache.hh"
#include "core/provider.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace engines
{

namespace
{

/**
 * Collects the distinct edge lists one task (tree) touches.
 * Accesses accumulate with duplicates and are deduplicated into
 * ascending order on read: the k-hop pull below resolves lists
 * through a stateful (LRU) cache, so the iteration order must be a
 * pure function of the access set — a hash-set walk would let the
 * modeled hit pattern depend on bucket layout.
 */
class AccessCollector : public core::RunnerHooks
{
  public:
    void
    onEdgeListAccess(VertexId v) override
    {
        accessed_.push_back(v);
    }

    /** Distinct accessed vertices, ascending. */
    const std::vector<VertexId> &
    distinctSorted()
    {
        std::sort(accessed_.begin(), accessed_.end());
        accessed_.erase(
            std::unique(accessed_.begin(), accessed_.end()),
            accessed_.end());
        return accessed_;
    }

  private:
    std::vector<VertexId> accessed_;
};

} // namespace

GThinkerEngine::GThinkerEngine(const Graph &g,
                               const GThinkerConfig &config)
    : graph_(&g), config_(config),
      ownedPartition_(std::make_unique<Partition>(
          g, config.cluster.numNodes, 1)),
      partition_(ownedPartition_.get())
{}

GThinkerEngine::GThinkerEngine(core::GraphContext &context,
                               const GThinkerConfig &config)
    : graph_(&context.graph()), config_(config)
{
    const Partition &shared = context.partition();
    if (shared.numNodes() == config.cluster.numNodes
        && shared.socketsPerNode() == 1) {
        partition_ = &shared;
    } else {
        ownedPartition_ = std::make_unique<Partition>(
            *graph_, config.cluster.numNodes, 1);
        partition_ = ownedPartition_.get();
    }
}

GThinkerResult
GThinkerEngine::count(const Pattern &p, const PlanOptions &options)
{
    // G-thinker enumerates with the same pattern-aware nested loops
    // (compiled Automine-style); its problems are architectural,
    // not algorithmic.
    PlanOptions opts = options;
    opts.useIep = false;
    const ExtendPlan plan = compileAutomine(p, opts);
    const sim::CostModel &cost = config_.cost;
    const NodeId nodes = config_.cluster.numNodes;

    GThinkerResult result;
    result.stats.nodes.resize(nodes);
    std::int64_t raw = 0;

    const double contention = config_.cluster.socketsPerNode >= 2
        ? config_.socketContentionFactor : 1.0;
    const unsigned cores = config_.cluster.computeCoresPerNode();

    for (NodeId n = 0; n < nodes; ++n) {
        sim::NodeStats &st = result.stats.nodes[n];
        core::DataCache cache(*graph_, core::CachePolicy::Lru,
                              config_.cacheBytes, 0);
        // G-thinker resolves through the same chain as the engine,
        // minus horizontal sharing; its task<->data map update is
        // the (expensive) per-probe cost.
        core::EdgeListProvider provider(
            *graph_, *partition_, &cache, /*horizontal_sharing=*/false,
            {.cacheProbeNs = cost.gthinkerMapUpdateNs * contention,
             .cacheAdmitNs = 0, .hashProbeNs = 0});
        double compute_ns = 0;
        double comm_ns = 0;
        std::uint64_t subgraph_bytes_total = 0;
        std::uint64_t tasks = 0;

        for (const VertexId root : partition_->ownedVertices(n)) {
            AccessCollector collector;
            const VertexId roots[1] = {root};
            const auto work = core::runPlanDfs(*graph_, plan,
                                               {roots, 1}, nullptr,
                                               &collector);
            raw += work.rawCount;
            ++tasks;

            compute_ns +=
                static_cast<double>(work.workItems)
                    * cost.intersectPerItemNs
                + static_cast<double>(work.candidatesChecked)
                    * cost.candidateCheckNs
                + static_cast<double>(work.embeddingsVisited)
                    * cost.embeddingCreateNs;
            st.intersectionItems += work.workItems;
            st.embeddingsCreated += work.embeddingsVisited;

            // The task pulls the k-hop subgraph before computing:
            // every distinct non-local edge list is resolved
            // through the provider chain, whose cache probe models
            // the task<->data map update (the expensive part).
            std::uint64_t pull_bytes = 0;
            std::uint64_t pull_lists = 0;
            std::uint64_t subgraph_bytes = 0;
            const std::vector<VertexId> &accessed =
                collector.distinctSorted();
            for (const VertexId v : accessed) {
                subgraph_bytes += graph_->edgeListBytes(v);
                const core::Resolution r =
                    provider.resolve(n, v, nullptr, st);
                if (r.kind != core::ResolutionKind::Remote)
                    continue;
                pull_bytes += r.bytes;
                ++pull_lists;
            }
            subgraph_bytes_total += subgraph_bytes;
            if (pull_lists > 0) {
                comm_ns += cost.transferNs(pull_bytes, pull_lists);
                st.bytesReceived += pull_bytes;
                ++st.messagesSent;
                st.listsFetchedRemote += pull_lists;
            }
            // Garbage-collection sweep: the cache checks whether the
            // tasks using each cached list have completed.
            st.cacheNs += cost.gthinkerGcCheckNs * contention
                * static_cast<double>(accessed.size());
        }

        // Scheduler: readiness scans over in-flight tasks.  With
        // concurrency limited by task memory, every task is scanned
        // several times while it waits for its data.
        const double avg_subgraph = tasks == 0 ? 1.0
            : static_cast<double>(subgraph_bytes_total)
                / static_cast<double>(tasks);
        // The paper measures 150-300 concurrent tasks; the k-hop
        // footprint caps it well below what overlap would need.
        const double concurrency = std::clamp(
            static_cast<double>(config_.taskMemoryBytes)
                / std::max(1.0, avg_subgraph),
            1.0, 300.0);
        const double scans_per_task = 10.0;
        st.schedulerNs += static_cast<double>(tasks) * scans_per_task
            * cost.gthinkerSchedulerScanNs * contention;

        // Limited concurrency also limits communication hiding:
        // with C in-flight tasks only a fraction of fetch latency
        // overlaps computation.
        const double hidden = std::min(0.6, concurrency / 1000.0);
        st.computeNs = compute_ns / cores;
        st.commTotalNs = comm_ns;
        st.commExposedNs = comm_ns * (1.0 - hidden);
    }

    // Sender-side byte attribution: symmetric under hash
    // partitioning; mirror the received volume.
    std::uint64_t received = 0;
    for (const auto &node : result.stats.nodes)
        received += node.bytesReceived;
    for (auto &node : result.stats.nodes)
        node.bytesSent = received / result.stats.nodes.size();

    KHUZDUL_CHECK(raw >= 0 && raw % plan.countDivisor == 0,
                  "inconsistent raw count");
    result.count = static_cast<Count>(raw / plan.countDivisor);
    result.stats.startupNs = cost.engineStartupNs;
    result.makespanNs = result.stats.makespanNs();
    return result;
}

} // namespace engines
} // namespace khuzdul
