/**
 * @file
 * Replicated-graph distributed GraphPi (the paper's strongest
 * replication-based competitor, Table 2 / Fig 13).  Every node
 * holds the whole graph, so there is no edge-list communication;
 * instead the first matching loop is split into coarse task chunks
 * distributed statically across nodes.  The two weaknesses the
 * paper calls out are modeled: a fixed task-partitioning overhead,
 * and coarse-grained parallelism whose imbalance hurts scaling on
 * skewed graphs.  The graph must fit in each node's memory —
 * exceeding it raises FatalError (the paper's "CRASHED" rows).
 */

#ifndef KHUZDUL_ENGINES_GRAPHPI_REP_HH
#define KHUZDUL_ENGINES_GRAPHPI_REP_HH

#include <memory>

#include "core/context.hh"
#include "core/plan_runner.hh"
#include "graph/graph.hh"
#include "pattern/planner.hh"
#include "sim/cluster.hh"
#include "sim/cost_model.hh"
#include "sim/stats.hh"

namespace khuzdul
{
namespace engines
{

/** Configuration of the replicated GraphPi deployment. */
struct GraphPiRepConfig
{
    sim::ClusterConfig cluster;
    sim::CostModel cost;

    /**
     * Fixed cost of GraphPi's task partitioning / distribution
     * machinery per run (§7.2 attributes its slowness on small
     * inputs to this).
     */
    double taskPartitionOverheadNs = 2.0e6;

    /** Coarse task chunks per node (first-loop granularity). */
    unsigned taskChunksPerNode = 16;
};

/** Result of a replicated-GraphPi run. */
struct GraphPiRepResult
{
    Count count = 0;
    double makespanNs = 0;
    sim::RunStats stats;
};

/** The engine itself. */
class GraphPiRepEngine
{
  public:
    GraphPiRepEngine(const Graph &g, const GraphPiRepConfig &config);

    /** Re-seated form: shares the context's planner profile
     *  (computed once per graph) instead of recomputing it. */
    GraphPiRepEngine(core::GraphContext &context,
                     const GraphPiRepConfig &config);

    /**
     * Count embeddings of @p p.  Throws FatalError when the
     * replicated graph exceeds per-node memory.
     */
    GraphPiRepResult count(const Pattern &p,
                           const PlanOptions &options = {});

  private:
    const Graph *graph_;
    GraphPiRepConfig config_;

    /** Set iff this engine computed its own profile (legacy ctor). */
    std::unique_ptr<GraphProfile> ownedProfile_;
    const GraphProfile *profile_;
};

} // namespace engines
} // namespace khuzdul

#endif // KHUZDUL_ENGINES_GRAPHPI_REP_HH
