/**
 * @file
 * Single-machine baseline systems (Table 3): AutomineIH (the
 * authors' in-house Automine), a Peregrine-like pattern-aware
 * runtime, and a Pangolin-like engine whose distinguishing feature
 * is the orientation (DAG) optimization for triangles and cliques.
 * All run the DFS plan interpreter on the whole (replicated) graph;
 * modeled time = measured work / cores + per-system overheads.
 */

#ifndef KHUZDUL_ENGINES_SINGLE_MACHINE_HH
#define KHUZDUL_ENGINES_SINGLE_MACHINE_HH

#include <memory>

#include "core/context.hh"
#include "core/plan_runner.hh"
#include "graph/graph.hh"
#include "pattern/planner.hh"
#include "sim/cost_model.hh"

namespace khuzdul
{
namespace engines
{

/** Which single-machine system is being modeled. */
enum class SingleMachineStyle
{
    AutomineIH,    ///< compiled nested loops, Automine scheduling
    PeregrineLike, ///< pattern-aware runtime (interpretation tax)
    PangolinLike,  ///< orientation-optimized clique/TC engine
};

/** Configuration of a single machine run. */
struct SingleMachineConfig
{
    /** Compute cores of the machine (16 in the paper's nodes). */
    unsigned cores = 16;

    /** Memory capacity; counting fails when the graph exceeds it. */
    std::uint64_t memoryBytes = 64ull << 30;

    sim::CostModel cost;
};

/** Result of one single-machine counting run. */
struct SingleMachineResult
{
    Count count = 0;
    double runtimeNs = 0;
    core::RunnerResult work;
};

/**
 * One single-machine GPM system.  Owns an oriented copy of the
 * graph when the style uses orientation.
 */
class SingleMachineEngine
{
  public:
    SingleMachineEngine(const Graph &g, SingleMachineStyle style,
                        const SingleMachineConfig &config);

    /** Re-seated form: a Pangolin-style engine borrows the
     *  context's shared degree-oriented DAG (built once per graph)
     *  instead of orienting a private copy. */
    SingleMachineEngine(core::GraphContext &context,
                        SingleMachineStyle style,
                        const SingleMachineConfig &config);

    /** Count embeddings of @p p (non-induced by default). */
    SingleMachineResult count(const Pattern &p,
                              const PlanOptions &options = {});

    SingleMachineStyle style() const { return style_; }

    /** Whether this run would use the orientation fast path. */
    bool usesOrientation(const Pattern &p) const;

  private:
    const Graph *graph_;
    SingleMachineStyle style_;
    SingleMachineConfig config_;

    /** Owned orientation (legacy ctor only). */
    std::unique_ptr<Graph> ownedOriented_;

    /** The DAG count() matches cliques on (owned or shared). */
    const Graph *oriented_ = nullptr;
};

/** True when @p p is a complete graph (clique) pattern. */
bool isCliquePattern(const Pattern &p);

} // namespace engines
} // namespace khuzdul

#endif // KHUZDUL_ENGINES_SINGLE_MACHINE_HH
