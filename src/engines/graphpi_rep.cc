#include "engines/graphpi_rep.hh"

#include <algorithm>

#include "support/check.hh"

namespace khuzdul
{
namespace engines
{

GraphPiRepEngine::GraphPiRepEngine(const Graph &g,
                                   const GraphPiRepConfig &config)
    : graph_(&g), config_(config),
      ownedProfile_(std::make_unique<GraphProfile>(
          GraphProfile::fromGraph(g))),
      profile_(ownedProfile_.get())
{}

GraphPiRepEngine::GraphPiRepEngine(core::GraphContext &context,
                                   const GraphPiRepConfig &config)
    : graph_(&context.graph()), config_(config),
      profile_(&context.profile())
{}

GraphPiRepResult
GraphPiRepEngine::count(const Pattern &p, const PlanOptions &options)
{
    KHUZDUL_REQUIRE(
        graph_->sizeBytes() <= config_.cluster.memoryBytesPerNode,
        "replicated graph (" << graph_->sizeBytes()
        << "B) exceeds per-node memory ("
        << config_.cluster.memoryBytesPerNode << "B)");

    const ExtendPlan plan = compileGraphPi(p, *profile_, options);
    const NodeId nodes = config_.cluster.numNodes;
    const unsigned chunks_per_node = config_.taskChunksPerNode;
    const unsigned total_chunks = nodes * chunks_per_node;

    // Coarse static first-loop split: strided vertex assignment
    // (GraphPi interleaves tasks so hubs spread across chunks).
    std::vector<VertexId> roots(graph_->numVertices());
    for (VertexId v = 0; v < graph_->numVertices(); ++v)
        roots[v] = v;

    GraphPiRepResult result;
    result.stats.nodes.resize(nodes);
    std::int64_t raw = 0;
    std::vector<double> node_work(nodes, 0);
    std::vector<double> node_max_chunk(nodes, 0);

    const sim::CostModel &cost = config_.cost;
    std::vector<VertexId> chunk_roots;
    for (unsigned c = 0; c < total_chunks; ++c) {
        chunk_roots.clear();
        for (std::size_t i = c; i < roots.size(); i += total_chunks)
            chunk_roots.push_back(roots[i]);
        if (chunk_roots.empty())
            continue;
        const auto work = core::runPlanDfs(
            *graph_, plan,
            {chunk_roots.data(), chunk_roots.size()});
        raw += work.rawCount;
        const double work_ns =
            static_cast<double>(work.workItems) * cost.intersectPerItemNs
            + static_cast<double>(work.candidatesChecked)
                * cost.candidateCheckNs
            + static_cast<double>(work.embeddingsVisited)
                * cost.embeddingCreateNs;
        const NodeId node = c % nodes;
        node_work[node] += work_ns;
        node_max_chunk[node] = std::max(node_max_chunk[node], work_ns);
        result.stats.nodes[node].intersectionItems += work.workItems;
        result.stats.nodes[node].embeddingsCreated +=
            work.embeddingsVisited;
    }

    KHUZDUL_CHECK(raw >= 0 && raw % plan.countDivisor == 0,
                  "inconsistent raw count");
    result.count = static_cast<Count>(raw / plan.countDivisor);

    // Intra-node parallelism is coarse (first few loops only): the
    // largest statically-assigned chunk leaves a straggler tail.
    const unsigned cores = config_.cluster.computeCoresPerNode();
    for (NodeId n = 0; n < nodes; ++n)
        result.stats.nodes[n].computeNs =
            node_work[n] / cores + 0.3 * node_max_chunk[n];
    result.stats.startupNs = config_.taskPartitionOverheadNs
        + cost.engineStartupNs;
    result.makespanNs = result.stats.makespanNs();
    return result;
}

} // namespace engines
} // namespace khuzdul
