#include "engines/single_machine.hh"

#include "graph/orientation.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace engines
{

bool
isCliquePattern(const Pattern &p)
{
    return p.numEdges() == p.size() * (p.size() - 1) / 2 && p.size() >= 2;
}

SingleMachineEngine::SingleMachineEngine(const Graph &g,
                                         SingleMachineStyle style,
                                         const SingleMachineConfig &config)
    : graph_(&g), style_(style), config_(config)
{
    KHUZDUL_REQUIRE(config.cores >= 1, "need at least one core");
    if (style_ == SingleMachineStyle::PangolinLike) {
        ownedOriented_ = std::make_unique<Graph>(graph::orient(g));
        oriented_ = ownedOriented_.get();
    }
}

SingleMachineEngine::SingleMachineEngine(
    core::GraphContext &context, SingleMachineStyle style,
    const SingleMachineConfig &config)
    : graph_(&context.graph()), style_(style), config_(config)
{
    KHUZDUL_REQUIRE(config.cores >= 1, "need at least one core");
    if (style_ == SingleMachineStyle::PangolinLike)
        oriented_ = &context.orientedGraph();
}

bool
SingleMachineEngine::usesOrientation(const Pattern &p) const
{
    return style_ == SingleMachineStyle::PangolinLike
        && isCliquePattern(p) && !p.labeled();
}

SingleMachineResult
SingleMachineEngine::count(const Pattern &p, const PlanOptions &options)
{
    KHUZDUL_REQUIRE(graph_->sizeBytes() <= config_.memoryBytes,
                    "graph (" << graph_->sizeBytes()
                    << "B) exceeds single-machine memory ("
                    << config_.memoryBytes << "B)");

    const Graph *g = graph_;
    ExtendPlan plan;
    if (usesOrientation(p)) {
        // Orientation (Pangolin, §7.2): on the degree-oriented DAG
        // every clique matches exactly once in ascending order, so
        // no symmetry-breaking filters are needed at all.
        g = oriented_;
        PlanOptions opts = options;
        opts.symmetryBreaking = false;
        opts.useIep = false;
        plan = compileAutomine(p, opts);
        plan.countDivisor = 1;
    } else if (style_ == SingleMachineStyle::AutomineIH) {
        PlanOptions opts = options;
        opts.useIep = false;
        plan = compileAutomine(p, opts);
    } else {
        // Peregrine matches with its own pattern-aware runtime; use
        // the heuristic order too (its plans are comparable).
        PlanOptions opts = options;
        opts.useIep = false;
        plan = compileAutomine(p, opts);
    }

    std::vector<VertexId> roots(g->numVertices());
    for (VertexId v = 0; v < g->numVertices(); ++v)
        roots[v] = v;

    SingleMachineResult result;
    result.work = core::runPlanDfs(*g, plan, roots);
    KHUZDUL_CHECK(result.work.rawCount >= 0
                  && result.work.rawCount % plan.countDivisor == 0,
                  "inconsistent raw count");
    result.count = static_cast<Count>(result.work.rawCount
                                      / plan.countDivisor);

    // Modeled runtime: measured work on one core, divided over the
    // machine's cores, plus per-system constants.
    const sim::CostModel &cost = config_.cost;
    double work_ns =
        static_cast<double>(result.work.workItems)
            * cost.intersectPerItemNs
        + static_cast<double>(result.work.candidatesChecked)
            * cost.candidateCheckNs
        + static_cast<double>(result.work.embeddingsVisited)
            * cost.embeddingCreateNs;
    // Peregrine interprets the pattern at runtime instead of
    // compiling it; a modest per-operation tax models that.
    if (style_ == SingleMachineStyle::PeregrineLike)
        work_ns *= 1.2;
    result.runtimeNs = work_ns / config_.cores + cost.engineStartupNs;
    // Orientation is not free: a full relabel-and-rebuild pass over
    // the graph precedes counting.
    if (usesOrientation(p))
        result.runtimeNs += 12.0
            * static_cast<double>(graph_->numArcs()) / config_.cores;
    return result;
}

} // namespace engines
} // namespace khuzdul
