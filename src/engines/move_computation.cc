#include "engines/move_computation.hh"

#include <algorithm>

#include "core/provider.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace engines
{

namespace
{

/**
 * Tracks embedding migrations: each edge-list access happens at the
 * data's owner; when the provider chain resolves an access Remote
 * the embedding (plus carried lists) crosses the wire and execution
 * continues at the owner.
 */
class MigrationTracker : public core::RunnerHooks
{
  public:
    MigrationTracker(core::EdgeListProvider &provider,
                     sim::NodeStats &stats, NodeId start)
        : provider_(&provider), stats_(&stats), current_(start)
    {}

    void
    onEdgeListAccess(VertexId v) override
    {
        const core::Resolution r =
            provider_->resolve(current_, v, nullptr, *stats_);
        if (r.kind != core::ResolutionKind::Remote)
            return;
        ++migrations;
        // The embedding ships with the edge list(s) needed for the
        // intersection at the destination (the paper's example
        // sends N(v0) along with (v0, v2)).
        bytesShipped += 32 + r.bytes;
        current_ = static_cast<NodeId>(r.owner);
    }

    std::uint64_t migrations = 0;
    std::uint64_t bytesShipped = 0;

  private:
    core::EdgeListProvider *provider_;
    sim::NodeStats *stats_;
    NodeId current_;
};

} // namespace

MoveComputationEngine::MoveComputationEngine(
    const Graph &g, const MoveComputationConfig &config)
    : graph_(&g), config_(config),
      ownedPartition_(std::make_unique<Partition>(
          g, config.cluster.numNodes, 1)),
      partition_(ownedPartition_.get())
{}

MoveComputationEngine::MoveComputationEngine(
    core::GraphContext &context, const MoveComputationConfig &config)
    : graph_(&context.graph()), config_(config)
{
    const Partition &shared = context.partition();
    if (shared.numNodes() == config.cluster.numNodes
        && shared.socketsPerNode() == 1) {
        partition_ = &shared;
    } else {
        ownedPartition_ = std::make_unique<Partition>(
            *graph_, config.cluster.numNodes, 1);
        partition_ = ownedPartition_.get();
    }
}

Count
MoveComputationEngine::run(const Pattern &p,
                           MoveComputationResult &result,
                           const PlanOptions &options)
{
    PlanOptions opts = options;
    opts.useIep = false;
    const ExtendPlan plan = compileAutomine(p, opts);
    const sim::CostModel &cost = config_.cost;
    const NodeId nodes = config_.cluster.numNodes;
    const unsigned cores = config_.cluster.computeCoresPerNode();

    result.stats.nodes.resize(nodes);
    // Owner classification without cache or horizontal steps: a
    // moving-computation engine fetches nothing, it relocates.
    core::EdgeListProvider provider(*graph_, *partition_, nullptr,
                                    false, {});
    std::int64_t raw = 0;
    for (NodeId n = 0; n < nodes; ++n) {
        sim::NodeStats &st = result.stats.nodes[n];
        MigrationTracker tracker(provider, st, n);
        const auto &roots = partition_->ownedVertices(n);
        const auto work = core::runPlanDfs(
            *graph_, plan, {roots.data(), roots.size()}, nullptr,
            &tracker);
        raw += work.rawCount;

        const double compute_ns =
            static_cast<double>(work.workItems) * cost.intersectPerItemNs
            + static_cast<double>(work.candidatesChecked)
                * cost.candidateCheckNs
            + static_cast<double>(work.embeddingsVisited)
                * cost.embeddingCreateNs;
        const double messages = static_cast<double>(tracker.migrations)
            / config_.shipBatch;
        const double comm_ns = messages * cost.netLatencyNs
            + static_cast<double>(tracker.bytesShipped)
                / cost.netBytesPerNs
            + static_cast<double>(tracker.bytesShipped)
                * cost.netCopyPerByteNs;

        st.computeNs = compute_ns / cores;
        st.commTotalNs = comm_ns;
        st.commExposedNs = comm_ns * (1.0 - config_.overlapFraction);
        st.bytesSent = tracker.bytesShipped;
        st.bytesReceived = tracker.bytesShipped;
        st.messagesSent = static_cast<std::uint64_t>(messages) + 1;
        st.intersectionItems = work.workItems;
        st.embeddingsCreated = work.embeddingsVisited;
    }
    KHUZDUL_CHECK(raw >= 0 && raw % plan.countDivisor == 0,
                  "inconsistent raw count");
    result.stats.startupNs = cost.engineStartupNs;
    result.makespanNs = result.stats.makespanNs();
    result.count = static_cast<Count>(raw / plan.countDivisor);
    return result.count;
}

MoveComputationResult
MoveComputationEngine::count(const Pattern &p, const PlanOptions &options)
{
    MoveComputationResult result;
    run(p, result, options);
    return result;
}

} // namespace engines
} // namespace khuzdul
