/**
 * @file
 * G-thinker baseline (§2.3, Table 2, Fig 15): the state-of-the-art
 * partitioned-graph competitor.  Each task explores one whole
 * embedding tree after pulling the k-hop subgraph it needs; a
 * general-purpose LRU software cache shared by all tasks
 * deduplicates pulls, at the price of maintaining the task<->data
 * map on every request and periodic scheduler readiness scans.
 * Those two costs — the paper measures them at ~41% and ~45% of
 * runtime — are charged per operation through the cost model.
 * Enumeration itself is exact (same plan interpreter), so counts
 * can be cross-checked against every other engine.
 */

#ifndef KHUZDUL_ENGINES_GTHINKER_HH
#define KHUZDUL_ENGINES_GTHINKER_HH

#include <memory>

#include "core/context.hh"
#include "core/plan_runner.hh"
#include "graph/graph.hh"
#include "graph/partition.hh"
#include "pattern/planner.hh"
#include "sim/cluster.hh"
#include "sim/cost_model.hh"
#include "sim/stats.hh"

namespace khuzdul
{
namespace engines
{

/** G-thinker deployment knobs. */
struct GThinkerConfig
{
    sim::ClusterConfig cluster;
    sim::CostModel cost;

    /** Software cache capacity per node (bytes). */
    std::uint64_t cacheBytes = 512 << 10;

    /**
     * Memory budget for in-flight tasks per node; with the k-hop
     * subgraph footprint this caps concurrency at a few hundred
     * tasks (the paper measures 150-300 for TC on Patents).
     */
    std::uint64_t taskMemoryBytes = 4 << 20;

    /**
     * Contention multiplier on cache/scheduler costs per extra
     * socket: G-thinker has no NUMA support and its shared
     * structures degrade badly on two sockets (Table 2 runs it
     * single-socket for this reason).
     */
    double socketContentionFactor = 4.0;
};

/** Result of one G-thinker run. */
struct GThinkerResult
{
    Count count = 0;
    double makespanNs = 0;
    sim::RunStats stats;
};

/** The engine. */
class GThinkerEngine
{
  public:
    GThinkerEngine(const Graph &g, const GThinkerConfig &config);

    /**
     * Re-seated form: run over a GraphContext's graph, sharing its
     * partition when the geometry matches G-thinker's single-socket
     * deployment (same node count, one sub-partition per node);
     * otherwise a private single-socket partition is built — the
     * baseline has no NUMA support, so it can never reuse a
     * NUMA-split partition.
     */
    GThinkerEngine(core::GraphContext &context,
                   const GThinkerConfig &config);

    /** Count embeddings of @p p on the partitioned graph. */
    GThinkerResult count(const Pattern &p,
                         const PlanOptions &options = {});

  private:
    const Graph *graph_;
    GThinkerConfig config_;

    /** Set iff the context's partition could not be shared. */
    std::unique_ptr<Partition> ownedPartition_;
    const Partition *partition_;
};

} // namespace engines
} // namespace khuzdul

#endif // KHUZDUL_ENGINES_GTHINKER_HH
