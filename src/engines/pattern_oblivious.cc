#include "engines/pattern_oblivious.hh"

#include <algorithm>
#include <map>
#include <set>

#include "pattern/isomorphism.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace engines
{

namespace
{

/** One undirected edge of the input graph, id = index. */
struct EdgeRec
{
    VertexId u;
    VertexId v;
};

/** Memoized canonicalization of tiny instance patterns. */
struct CanonEntry
{
    iso::CanonicalCode code;
    iso::Permutation perm;
};

/**
 * Aggregation state of one canonical labeled pattern.  Domains are
 * ordered sets: they are merged by iteration during orbit folding
 * below, and the determinism contract (DESIGN.md §8) bans
 * hash-order walks in modeled zones.
 */
struct Aggregate
{
    Pattern canon;
    Count instances = 0;
    std::vector<std::set<VertexId>> domains;
};

/**
 * Exact-once connected edge-subset enumerator (edge-set ESU).
 *
 * Each connected edge subset is generated exactly once per minimum
 * edge (the root): an edge enters the extension list the first time
 * one of its endpoints joins the subgraph; candidates popped from
 * the list are excluded from the remainder of their branch (the ESU
 * rule), which the stamp trail enforces and unwinds on backtrack.
 */
class SubgraphEnumerator
{
  public:
    SubgraphEnumerator(const Graph &g, int max_edges)
        : maxEdges_(max_edges)
    {
        for (VertexId u = 0; u < g.numVertices(); ++u)
            for (const VertexId v : g.neighbors(u))
                if (u < v)
                    edges_.push_back({u, v});
        incident_.resize(g.numVertices());
        for (std::size_t e = 0; e < edges_.size(); ++e) {
            incident_[edges_[e].u].push_back(e);
            incident_[edges_[e].v].push_back(e);
        }
        edgeStamp_.assign(edges_.size(), 0);
        vertexStamp_.assign(g.numVertices(), 0);
    }

    std::size_t numEdges() const { return edges_.size(); }
    const std::vector<EdgeRec> &edges() const { return edges_; }

    /**
     * Enumerate every connected edge subset whose minimum edge id
     * is @p root, invoking @p fn with (vertex list, edge list).
     */
    template <typename Fn>
    void
    enumerateFromRoot(std::size_t root, Fn &&fn)
    {
        ++stamp_;
        root_ = root;
        subEdges_.clear();
        subVertices_.clear();
        offered_.clear();
        std::vector<std::size_t> ext;
        edgeStamp_[root] = stamp_; // the root is never re-offered
        const Frame frame = addEdge(root, ext);
        recurse(ext, fn);
        undo(frame);
    }

  private:
    struct Frame
    {
        std::size_t vertexMark;
        std::size_t offeredMark;
    };

    Frame
    addEdge(std::size_t e, std::vector<std::size_t> &ext)
    {
        const Frame frame{subVertices_.size(), offered_.size()};
        subEdges_.push_back(e);
        for (const VertexId w : {edges_[e].u, edges_[e].v}) {
            if (vertexStamp_[w] == stamp_)
                continue;
            vertexStamp_[w] = stamp_;
            subVertices_.push_back(w);
        }
        // Edges incident to just-joined vertices become candidates
        // exactly once along this branch.
        for (std::size_t i = frame.vertexMark; i < subVertices_.size();
             ++i) {
            for (const std::size_t f : incident_[subVertices_[i]]) {
                if (f <= root_ || edgeStamp_[f] == stamp_)
                    continue;
                edgeStamp_[f] = stamp_;
                offered_.push_back(f);
                ext.push_back(f);
            }
        }
        return frame;
    }

    void
    undo(const Frame &frame)
    {
        subEdges_.pop_back();
        while (offered_.size() > frame.offeredMark) {
            edgeStamp_[offered_.back()] = 0;
            offered_.pop_back();
        }
        while (subVertices_.size() > frame.vertexMark) {
            vertexStamp_[subVertices_.back()] = 0;
            subVertices_.pop_back();
        }
    }

    template <typename Fn>
    void
    recurse(std::vector<std::size_t> ext, Fn &&fn)
    {
        fn(subVertices_, subEdges_);
        if (static_cast<int>(subEdges_.size()) >= maxEdges_)
            return;
        while (!ext.empty()) {
            const std::size_t e = ext.back();
            ext.pop_back();
            std::vector<std::size_t> next = ext;
            const Frame frame = addEdge(e, next);
            recurse(next, fn);
            undo(frame);
        }
    }

    int maxEdges_;
    std::vector<EdgeRec> edges_;
    std::vector<std::vector<std::size_t>> incident_;
    std::vector<std::uint64_t> edgeStamp_;
    std::vector<std::uint64_t> vertexStamp_;
    std::uint64_t stamp_ = 0;
    std::size_t root_ = 0;
    std::vector<std::size_t> subEdges_;
    std::vector<VertexId> subVertices_;
    std::vector<std::size_t> offered_;
};

} // namespace

PatternObliviousEngine::PatternObliviousEngine(
    const Graph &g, const PatternObliviousConfig &config)
    : graph_(&g), config_(config)
{}

PatternObliviousResult
PatternObliviousEngine::mineFrequent(int max_edges, Count min_support)
{
    KHUZDUL_REQUIRE(max_edges >= 1 && max_edges <= 6,
                    "pattern-oblivious mining supports 1..6 edges");
    KHUZDUL_REQUIRE(
        graph_->sizeBytes() <= config_.cluster.memoryBytesPerNode,
        "replicated graph exceeds per-node memory");

    const Graph &g = *graph_;
    SubgraphEnumerator enumerator(g, max_edges);
    PatternObliviousResult result;
    const NodeId nodes = config_.cluster.numNodes;
    result.stats.nodes.resize(nodes);

    std::map<iso::CanonicalCode, Aggregate> aggregates;
    // Canonicalization memo: instances repeat a handful of tiny
    // shapes, so the expensive permutation search runs once per
    // distinct (structure, labels) key.  Time is still charged per
    // instance — that is precisely the pattern-oblivious tax.
    std::map<std::pair<std::uint64_t, std::uint64_t>, CanonEntry> memo;
    std::vector<Count> node_instances(nodes, 0);

    for (std::size_t root = 0; root < enumerator.numEdges(); ++root) {
        const NodeId node = static_cast<NodeId>(root % nodes);
        enumerator.enumerateFromRoot(root, [&](
            const std::vector<VertexId> &vertices,
            const std::vector<std::size_t> &edge_ids) {
            const int n = static_cast<int>(vertices.size());
            if (n > kMaxPatternSize)
                return;
            // Build the instance pattern over local indices.
            Pattern inst(n);
            std::uint64_t adj_key = 0;
            for (const std::size_t e : edge_ids) {
                int a = -1;
                int b = -1;
                for (int i = 0; i < n; ++i) {
                    if (vertices[i] == enumerator.edges()[e].u)
                        a = i;
                    if (vertices[i] == enumerator.edges()[e].v)
                        b = i;
                }
                inst.addEdge(a, b);
            }
            std::uint64_t label_key = 0;
            for (int i = 0; i < n; ++i) {
                const Label label = g.labeled() ? g.label(vertices[i])
                                                : 0;
                inst.setLabel(i, label);
                label_key |= static_cast<std::uint64_t>(label & 0xff)
                    << (8 * i);
                adj_key |= static_cast<std::uint64_t>(inst.adjacency(i))
                    << (8 * i);
            }
            adj_key |= static_cast<std::uint64_t>(n) << 56;

            auto memo_it = memo.find({adj_key, label_key});
            if (memo_it == memo.end()) {
                CanonEntry entry;
                entry.perm = iso::canonicalPermutation(inst);
                entry.code = iso::canonicalCode(inst);
                memo_it = memo.emplace(
                    std::make_pair(adj_key, label_key), entry).first;
            }
            const CanonEntry &entry = memo_it->second;

            auto agg_it = aggregates.find(entry.code);
            if (agg_it == aggregates.end()) {
                Aggregate aggregate;
                aggregate.canon = inst.permuted(entry.perm);
                aggregate.domains.resize(n);
                agg_it = aggregates.emplace(entry.code,
                                            std::move(aggregate)).first;
            }
            Aggregate &aggregate = agg_it->second;
            ++aggregate.instances;
            for (int i = 0; i < n; ++i)
                aggregate.domains[entry.perm[i]].insert(vertices[i]);
            ++result.totalInstances;
            ++node_instances[node];
        });
    }

    // MNI support with automorphism-orbit domain merging.
    for (auto &[code, aggregate] : aggregates) {
        const auto autos = iso::automorphisms(aggregate.canon);
        const int n = aggregate.canon.size();
        std::vector<bool> done(n, false);
        Count support = std::numeric_limits<Count>::max();
        for (int i = 0; i < n; ++i) {
            if (done[i])
                continue;
            std::set<VertexId> merged;
            for (const auto &sigma : autos) {
                const int j = sigma[i];
                if (!done[j]) {
                    merged.insert(aggregate.domains[j].begin(),
                                  aggregate.domains[j].end());
                    done[j] = true;
                }
            }
            support = std::min(support,
                               static_cast<Count>(merged.size()));
        }
        if (support >= min_support)
            result.patterns.push_back({aggregate.canon, support,
                                       aggregate.instances});
    }

    // Modeled time: enumeration plus per-instance canonicalization,
    // distributed over nodes and cores (replicated graph, no comm).
    const unsigned cores = config_.cluster.computeCoresPerNode();
    for (NodeId n = 0; n < nodes; ++n) {
        result.stats.nodes[n].computeNs =
            static_cast<double>(node_instances[n])
            * (config_.canonicalizeNs + 80.0) / cores;
        result.stats.nodes[n].embeddingsCreated = node_instances[n];
    }
    result.stats.startupNs = config_.cost.engineStartupNs;
    result.makespanNs = result.stats.makespanNs();
    return result;
}

} // namespace engines
} // namespace khuzdul
