#include "apps/gpm_apps.hh"

#include "pattern/generation.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace apps
{

Count
triangleCount(engines::KhuzdulSystem &system)
{
    return system.count(Pattern::triangle());
}

Count
cliqueCount(engines::KhuzdulSystem &system, int k)
{
    KHUZDUL_REQUIRE(k >= 2 && k <= kMaxPatternSize,
                    "clique size must be in [2, " << kMaxPatternSize
                    << "]");
    return system.count(Pattern::clique(k));
}

std::vector<MotifCount>
motifCount(engines::KhuzdulSystem &system, int k)
{
    KHUZDUL_REQUIRE(k >= 3 && k <= 5, "motif census supports k in [3, 5]");
    PlanOptions options;
    options.induced = true;
    std::vector<MotifCount> result;
    for (const Pattern &p : gen::connectedPatterns(k))
        result.push_back({p, system.count(p, options)});
    return result;
}

std::vector<MotifCount>
motifCount(core::QueryService &service, engines::CompilerStyle style,
           int k)
{
    KHUZDUL_REQUIRE(k >= 3 && k <= 5, "motif census supports k in [3, 5]");
    PlanOptions options;
    options.induced = true;
    std::vector<MotifCount> result;
    std::vector<std::size_t> ids;
    for (const Pattern &p : gen::connectedPatterns(k)) {
        const ExtendPlan plan =
            style == engines::CompilerStyle::Automine
            ? compileAutomine(p, options)
            : compileGraphPi(p, service.context().profile(), options);
        ids.push_back(service.submit(plan));
        result.push_back({p, 0});
    }
    service.wait();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const core::QueryResult &query = service.result(ids[i]);
        KHUZDUL_CHECK(!query.failed,
                      "motif query failed: " << query.error);
        result[i].count = query.count;
    }
    return result;
}

} // namespace apps
} // namespace khuzdul
