#include "apps/fsm.hh"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "core/plan_runner.hh"
#include "pattern/isomorphism.hh"
#include "pattern/planner.hh"
#include "support/check.hh"

namespace khuzdul
{
namespace apps
{

namespace
{

/** Collects per-position vertex domains from the embedding stream. */
class DomainVisitor : public core::MatchVisitor
{
  public:
    explicit DomainVisitor(int positions)
        : domains_(positions)
    {}

    void
    match(std::span<const VertexId> positions) override
    {
        for (std::size_t i = 0; i < positions.size(); ++i)
            domains_[i].insert(positions[i]);
    }

    /**
     * MNI support: minimum domain size after merging domains over
     * the automorphism orbits of the positioned pattern (needed
     * because symmetry breaking keeps only canonical embeddings).
     */
    Count
    support(const Pattern &positioned) const
    {
        const auto autos = iso::automorphisms(positioned);
        const int n = positioned.size();
        std::vector<bool> done(n, false);
        Count result = std::numeric_limits<Count>::max();
        for (int i = 0; i < n; ++i) {
            if (done[i])
                continue;
            std::unordered_set<VertexId> merged;
            for (const auto &sigma : autos) {
                const int j = sigma[i];
                if (!done[j]) {
                    merged.insert(domains_[j].begin(),
                                  domains_[j].end());
                    done[j] = true;
                }
            }
            result = std::min(result,
                              static_cast<Count>(merged.size()));
        }
        return result;
    }

  private:
    std::vector<std::unordered_set<VertexId>> domains_;
};

} // namespace

Pattern
KhuzdulFsmBackend::enumerate(const Pattern &p,
                             core::MatchVisitor *visitor)
{
    PlanOptions options;
    options.useIep = false;
    options.symmetryBreaking = true;
    const ExtendPlan plan = system_->compile(p, options);
    system_->engine().run(plan, visitor);
    return plan.pattern;
}

Pattern
SingleMachineFsmBackend::enumerate(const Pattern &p,
                                   core::MatchVisitor *visitor)
{
    PlanOptions options;
    options.useIep = false;
    const ExtendPlan plan = compileAutomine(p, options);
    std::vector<VertexId> roots(graph_->numVertices());
    for (VertexId v = 0; v < graph_->numVertices(); ++v)
        roots[v] = v;
    const auto work = core::runPlanDfs(*graph_, plan, roots, visitor);
    workItems_ += work.workItems;
    candidates_ += work.candidatesChecked;
    embeddings_ += work.embeddingsVisited;
    return plan.pattern;
}

Count
mniSupport(FsmBackend &backend, const Pattern &p)
{
    DomainVisitor visitor(p.size());
    const Pattern positioned = backend.enumerate(p, &visitor);
    return visitor.support(positioned);
}

FsmResult
mineFrequentSubgraphs(FsmBackend &backend, const Graph &g,
                      const FsmConfig &config)
{
    KHUZDUL_REQUIRE(g.labeled(), "FSM needs a labeled graph");
    KHUZDUL_REQUIRE(config.maxEdges >= 1 && config.maxEdges <= 3,
                    "FSM mines patterns with 1..3 edges (like the "
                    "paper's evaluation)");
    const Label num_labels = g.numLabels();

    FsmResult result;
    std::vector<Pattern> frontier;

    // Level 1: all labeled single edges.
    for (Label a = 0; a < num_labels; ++a) {
        for (Label b = a; b < num_labels; ++b) {
            Pattern edge(2, {{0, 1}});
            edge.setLabel(0, a);
            edge.setLabel(1, b);
            ++result.patternsEvaluated;
            const Count support = mniSupport(backend, edge);
            if (support >= config.minSupport) {
                result.frequent.push_back({edge, support});
                frontier.push_back(edge);
            }
        }
    }

    // Level-wise extension with anti-monotone pruning: every
    // frequent (e+1)-edge pattern extends some frequent e-edge
    // pattern by one edge (closing a cycle or attaching a new
    // labeled leaf), so growing only from the frequent frontier is
    // complete.
    for (int edges = 2; edges <= config.maxEdges; ++edges) {
        std::map<iso::CanonicalCode, Pattern> candidates;
        for (const Pattern &parent : frontier) {
            const int n = parent.size();
            // Close a cycle between existing vertices.
            for (int u = 0; u < n; ++u) {
                for (int v = u + 1; v < n; ++v) {
                    if (parent.hasEdge(u, v))
                        continue;
                    Pattern child = parent;
                    child.addEdge(u, v);
                    candidates.emplace(iso::canonicalCode(child),
                                       child);
                }
            }
            // Attach a new labeled vertex.
            if (n < kMaxPatternSize) {
                for (int u = 0; u < n; ++u) {
                    for (Label l = 0; l < num_labels; ++l) {
                        Pattern child(n + 1);
                        for (int a = 0; a < n; ++a) {
                            child.setLabel(a, parent.label(a));
                            for (int b = a + 1; b < n; ++b)
                                if (parent.hasEdge(a, b))
                                    child.addEdge(a, b);
                        }
                        child.setLabel(n, l);
                        child.addEdge(u, n);
                        candidates.emplace(iso::canonicalCode(child),
                                           child);
                    }
                }
            }
        }
        frontier.clear();
        for (const auto &[code, candidate] : candidates) {
            ++result.patternsEvaluated;
            const Count support = mniSupport(backend, candidate);
            if (support >= config.minSupport) {
                result.frequent.push_back({candidate, support});
                frontier.push_back(candidate);
            }
        }
    }
    return result;
}

} // namespace apps
} // namespace khuzdul
