/**
 * @file
 * The paper's four GPM application categories (§7.1): Triangle
 * Counting (TC), k-Clique Counting (k-CC), k-Motif Counting (k-MC)
 * and Frequent Subgraph Mining (FSM, see apps/fsm.hh).  These are
 * thin front-ends over a Khuzdul system: the application picks the
 * patterns, the client compiler and engine do the rest.
 */

#ifndef KHUZDUL_APPS_GPM_APPS_HH
#define KHUZDUL_APPS_GPM_APPS_HH

#include <vector>

#include "core/service/service.hh"
#include "engines/khuzdul_system.hh"
#include "pattern/pattern.hh"

namespace khuzdul
{
namespace apps
{

/** Count triangles. */
Count triangleCount(engines::KhuzdulSystem &system);

/** Count k-cliques (complete subgraphs on k vertices). */
Count cliqueCount(engines::KhuzdulSystem &system, int k);

/** One motif of the k-motif census. */
struct MotifCount
{
    Pattern pattern;
    Count count = 0;
};

/**
 * k-Motif counting: the number of *induced* embeddings of every
 * connected size-k pattern (2 motifs for k=3, 6 for k=4).
 */
std::vector<MotifCount> motifCount(engines::KhuzdulSystem &system,
                                   int k);

/**
 * Concurrent k-motif census: every motif's query is submitted to
 * @p service up front and mined as its own session over the shared
 * graph, so the census saturates the host pool instead of running
 * motifs back-to-back.  Counts are identical to the serial overload
 * (the service's determinism contract).  @p style picks the client
 * compiler, matching KhuzdulSystem's.
 */
std::vector<MotifCount> motifCount(core::QueryService &service,
                                   engines::CompilerStyle style,
                                   int k);

} // namespace apps
} // namespace khuzdul

#endif // KHUZDUL_APPS_GPM_APPS_HH
