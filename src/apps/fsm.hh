/**
 * @file
 * Frequent Subgraph Mining (§7.1): find every labeled pattern with
 * at most a given number of edges whose MNI (minimum-image) support
 * reaches a threshold.  Mining is level-wise over edge count with
 * anti-monotone pruning (MNI support never grows when a pattern is
 * extended), and support is computed from the engine's UDF stream
 * of embeddings with automorphism-orbit domain merging.
 *
 * The miner is backend-agnostic so the same algorithm runs on the
 * distributed Khuzdul systems and on single-machine baselines.
 */

#ifndef KHUZDUL_APPS_FSM_HH
#define KHUZDUL_APPS_FSM_HH

#include <vector>

#include "core/visitor.hh"
#include "engines/khuzdul_system.hh"
#include "graph/graph.hh"
#include "pattern/pattern.hh"

namespace khuzdul
{
namespace apps
{

/** FSM parameters (the paper mines patterns with <= 3 edges). */
struct FsmConfig
{
    Count minSupport = 1;
    int maxEdges = 3;
};

/** One frequent pattern with its MNI support. */
struct FrequentPattern
{
    Pattern pattern;
    Count support = 0;
};

/** Mining outcome plus evaluation counters. */
struct FsmResult
{
    std::vector<FrequentPattern> frequent;
    Count patternsEvaluated = 0;
};

/**
 * Enumeration backend: runs a pattern's embedding stream through a
 * visitor.  The pattern is labeled; plans must use full symmetry
 * breaking (the miner merges domains over orbits itself).
 */
class FsmBackend
{
  public:
    virtual ~FsmBackend() = default;

    /**
     * Enumerate embeddings of @p p through @p visitor.
     * @return the position-indexed (matching-order) pattern, which
     *         the caller needs to interpret the visitor's tuples.
     */
    virtual Pattern enumerate(const Pattern &p,
                              core::MatchVisitor *visitor) = 0;
};

/** Backend running on a Khuzdul system (k-Automine / k-GraphPi). */
class KhuzdulFsmBackend : public FsmBackend
{
  public:
    explicit KhuzdulFsmBackend(engines::KhuzdulSystem &system)
        : system_(&system)
    {}

    Pattern enumerate(const Pattern &p,
                      core::MatchVisitor *visitor) override;

  private:
    engines::KhuzdulSystem *system_;
};

/**
 * Backend running the single-machine DFS interpreter; accumulates
 * modeled work for runtime reporting.
 */
class SingleMachineFsmBackend : public FsmBackend
{
  public:
    explicit SingleMachineFsmBackend(const Graph &g)
        : graph_(&g)
    {}

    Pattern enumerate(const Pattern &p,
                      core::MatchVisitor *visitor) override;

    /** Set-kernel elements consumed so far (cost proxy). */
    std::uint64_t workItems() const { return workItems_; }
    std::uint64_t candidatesChecked() const { return candidates_; }
    std::uint64_t embeddingsVisited() const { return embeddings_; }

  private:
    const Graph *graph_;
    std::uint64_t workItems_ = 0;
    std::uint64_t candidates_ = 0;
    std::uint64_t embeddings_ = 0;
};

/**
 * MNI support of one pattern: enumerate through @p backend and
 * report the orbit-merged minimum image size.
 */
Count mniSupport(FsmBackend &backend, const Pattern &p);

/** Level-wise FSM over labeled patterns. */
FsmResult mineFrequentSubgraphs(FsmBackend &backend, const Graph &g,
                                const FsmConfig &config);

} // namespace apps
} // namespace khuzdul

#endif // KHUZDUL_APPS_FSM_HH
