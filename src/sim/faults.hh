/**
 * @file
 * Deterministic fault injection for the simulated fabric (DESIGN.md
 * §9).  A FaultPlan is a list of declarative FaultSpecs parsed from
 * repeatable CLI `--fault <spec>` options; every trigger is a pure
 * function of *modeled* state — the per-unit message ordinal on a
 * link, or the per-unit modeled communication clock — never of the
 * wall clock or a PRNG, so a fixed (config, plan) pair produces
 * bit-identical counts, RunStats, ledger and trace stream at every
 * host thread count.
 *
 * Each execution unit owns one FaultSession: the deterministic
 * per-unit cursor (link ordinals + modeled clock) that the circulant
 * scheduler consults on every transfer attempt and that the
 * provider's recovery ladder consults for permanently-down owners.
 * Fault *decisions* are made from this per-unit state during the
 * unit's pass; their *ledger effects* are the journalled attempt
 * entries that Fabric::apply replays in unit order — the same merge
 * point where the byte cap fires.
 */

#ifndef KHUZDUL_SIM_FAULTS_HH
#define KHUZDUL_SIM_FAULTS_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/types.hh"

namespace khuzdul
{
namespace sim
{

/**
 * An injected (or detected) fabric failure.  Deliberately NOT a
 * FatalError: engines and tests must be able to distinguish a
 * modeled fault outcome from a genuine invariant violation.
 */
class FabricFault : public std::runtime_error
{
  public:
    explicit FabricFault(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** The fabric's configured byte budget was exceeded. */
class ByteCapExceededFault : public FabricFault
{
  public:
    explicit ByteCapExceededFault(const std::string &what)
        : FabricFault(what)
    {}
};

/** A query's modeled deadline elapsed before it finished. */
class DeadlineExceeded : public FabricFault
{
  public:
    explicit DeadlineExceeded(const std::string &what)
        : FabricFault(what)
    {}
};

/** A query was cooperatively cancelled at a level barrier. */
class QueryCancelled : public FabricFault
{
  public:
    explicit QueryCancelled(const std::string &what)
        : FabricFault(what)
    {}
};

/** The injectable failure modes. */
enum class FaultKind : std::uint8_t
{
    Drop,     ///< batch lost in flight; transfer time wasted
    Timeout,  ///< no reply; requester charged the timeout cost
    Degrade,  ///< link serves, but at a cost multiplier (epoch)
    NodeDown, ///< node unreachable over a window (or forever)
    Crash,    ///< execution unit dies at a chunk ordinal of a level
};

const char *faultKindName(FaultKind kind);

/** Wildcard endpoint in a fault spec (`*` on the CLI). */
inline constexpr NodeId kAnyNode = static_cast<NodeId>(-1);

/** Modeled-time value meaning "no end of window". */
inline constexpr double kForeverNs = -1.0;

/**
 * One declarative fault.  Triggers are ledger-state based: Drop and
 * Timeout fire on the requesting unit's @p firstMsg-th message on
 * the (src, dst) link (1-based, counting that unit's own attempts)
 * and stay armed for @p count consecutive messages; Degrade and
 * NodeDown fire while the unit's modeled communication clock lies in
 * [fromNs, untilNs) — untilNs == kForeverNs keeps a NodeDown
 * permanent, which reroutes fetches instead of being retried.
 */
struct FaultSpec
{
    FaultKind kind = FaultKind::Drop;
    NodeId src = kAnyNode;  ///< requester-side node filter
    NodeId dst = kAnyNode;  ///< owner-side node filter
    NodeId node = kAnyNode; ///< NodeDown target
    std::uint64_t firstMsg = 1; ///< 1-based ordinal trigger
    std::uint64_t count = 1;    ///< consecutive messages affected
    double factor = 1.0;        ///< Degrade cost multiplier
    double fromNs = 0;          ///< window start (modeled ns)
    double untilNs = kForeverNs; ///< window end, kForeverNs = open
    unsigned unit = 0;          ///< Crash: execution unit that dies
    int level = 0;              ///< Crash: level of the fatal chunk
    std::uint64_t chunk = 1;    ///< Crash: 1-based chunk ordinal
};

/**
 * The whole run's fault schedule: an ordered spec list plus the
 * retry budget.  Copyable plain data (lives inside EngineConfig).
 *
 * Spec grammar (one per `--fault`, all fields after the kind are
 * `key=value` or `SRC-DST` link selectors, `*` = any node):
 *
 *   drop:SRC-DST:msg=N[:count=K]
 *   timeout:SRC-DST:msg=N[:count=K]
 *   degrade:SRC-DST:factor=F[:from=NS][:until=NS]
 *   down:node=D[:from=NS][:until=NS]     (no until -> permanent)
 *   crash:UNIT:level=L[:chunk=K]         (K-th chunk of level L)
 *
 * Parse-time hardening: count=0 (a vacuously-inert spec) and
 * self-links (SRC-DST with both endpoints concrete and equal — a
 * node never faults its own local accesses) are rejected with clear
 * messages; id *ranges* depend on the deployment, so validate()
 * checks them once the cluster geometry is known.
 */
class FaultPlan
{
  public:
    /** Parse and append one spec; throws FatalError on bad syntax. */
    void add(const std::string &spec);

    void
    add(const FaultSpec &spec)
    {
        specs_.push_back(spec);
    }

    const std::vector<FaultSpec> &specs() const { return specs_; }

    bool empty() const { return specs_.empty(); }

    /** Check every endpoint / node / unit id against the deployment
     *  geometry; throws FatalError naming the offending spec.  The
     *  engine calls this at construction. */
    void validate(NodeId num_nodes, unsigned num_units) const;

    /** True if any spec is a unit crash (arms checkpointing). */
    bool hasCrash() const;

    /** Retry attempts after the first failure of a batch. */
    unsigned maxRetries = 3;

  private:
    std::vector<FaultSpec> specs_;
};

/** What the fault layer decided about one transfer attempt. */
struct FaultOutcome
{
    bool faulted = false;  ///< attempt failed (retry or give up)
    bool degraded = false; ///< attempt served at a degraded price
    FaultKind kind = FaultKind::Drop; ///< valid when faulted/degraded
    double chargeNs = 0;   ///< modeled cost of this attempt
};

/**
 * One execution unit's deterministic fault cursor: a per-link
 * message-ordinal counter and a modeled communication clock, both
 * advanced only by the unit's own deterministic activity (transfer
 * charges and retry backoffs).  Everything here is per-unit state,
 * which is what makes fault decisions independent of the host
 * thread count.
 */
class FaultSession
{
  public:
    FaultSession(const FaultPlan &plan, NodeId num_nodes);

    /**
     * Consult the plan for the next message on link (src, dst):
     * advances the link ordinal, decides the outcome, charges it to
     * the modeled clock and returns it.  @p base_ns is the fault-free
     * modeled transfer time; @p timeout_ns the configured timeout
     * charge for unanswered attempts.
     */
    FaultOutcome onTransfer(NodeId src, NodeId dst, double base_ns,
                            double timeout_ns);

    /** Advance the modeled clock by a retry backoff. */
    void advance(double ns) { clockNs_ += ns; }

    /** The unit's modeled communication clock (ns). */
    double clockNs() const { return clockNs_; }

    /** @p node unreachable forever (reroute, don't retry). */
    bool nodePermanentlyDown(NodeId node) const;

    /** Retry attempts after the first failure of a batch. */
    unsigned maxRetries() const { return plan_->maxRetries; }

    /** Clear ordinals and the clock (with the stats/ledger wipe). */
    void reset();

  private:
    bool nodeDownNow(NodeId node) const;

    const FaultPlan *plan_;
    NodeId numNodes_;
    std::vector<std::uint64_t> linkMsgs_;
    double clockNs_ = 0;
};

} // namespace sim
} // namespace khuzdul

#endif // KHUZDUL_SIM_FAULTS_HH
