/**
 * @file
 * Simulated cluster topology.  Mirrors the paper's testbeds: the
 * default is the 8-node cluster of §7.1 (two 8-core sockets per
 * node); Table 5 uses an 18-node cluster with two 16-core sockets.
 */

#ifndef KHUZDUL_SIM_CLUSTER_HH
#define KHUZDUL_SIM_CLUSTER_HH

#include "support/check.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace sim
{

/** Static description of the simulated machines. */
struct ClusterConfig
{
    /** Number of machines. */
    NodeId numNodes = 8;

    /** Sockets per machine (NUMA domains, §5.4). */
    unsigned socketsPerNode = 2;

    /** Physical cores per socket. */
    unsigned coresPerSocket = 8;

    /**
     * Cores per node dedicated to communication threads (the paper
     * reserves them 1:3 against compute and pins them, §6).
     */
    unsigned commCoresPerNode = 4;

    /** Memory per node in bytes (64 GB in §7.1). */
    std::uint64_t memoryBytesPerNode = 64ull << 30;

    /** Total cores of one node. */
    unsigned
    coresPerNode() const
    {
        return socketsPerNode * coresPerSocket;
    }

    /** Cores of one node that run computation threads. */
    unsigned
    computeCoresPerNode() const
    {
        KHUZDUL_REQUIRE(coresPerNode() > commCoresPerNode,
                        "need at least one compute core per node");
        return coresPerNode() - commCoresPerNode;
    }

    /** The paper's default evaluation cluster (§7.1). */
    static ClusterConfig
    paperDefault(NodeId num_nodes = 8)
    {
        ClusterConfig config;
        config.numNodes = num_nodes;
        return config;
    }

    /** Single-socket variant (Table 2 parenthesised runtimes). */
    static ClusterConfig
    singleSocket(NodeId num_nodes = 8)
    {
        ClusterConfig config;
        config.numNodes = num_nodes;
        config.socketsPerNode = 1;
        config.commCoresPerNode = 2;
        return config;
    }

    /** Table 5's larger cluster (two 16-core sockets, 128 GB). */
    static ClusterConfig
    largeCluster(NodeId num_nodes = 18)
    {
        ClusterConfig config;
        config.numNodes = num_nodes;
        config.coresPerSocket = 16;
        config.commCoresPerNode = 8;
        config.memoryBytesPerNode = 128ull << 30;
        return config;
    }
};

} // namespace sim
} // namespace khuzdul

#endif // KHUZDUL_SIM_CLUSTER_HH
