#include "sim/faults.hh"

#include "support/check.hh"

namespace khuzdul
{
namespace sim
{
namespace
{

/** Split @p s on ':' (empty segments preserved). */
std::vector<std::string>
splitColons(const std::string &s)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t colon = s.find(':', start);
        parts.push_back(s.substr(start, colon - start));
        if (colon == std::string::npos)
            break;
        start = colon + 1;
    }
    return parts;
}

NodeId
parseEndpoint(const std::string &token, const std::string &spec)
{
    if (token == "*")
        return kAnyNode;
    KHUZDUL_REQUIRE(!token.empty()
                        && token.find_first_not_of("0123456789")
                            == std::string::npos,
                    "bad fault endpoint '" << token << "' in '" << spec
                                           << "' (node id or *)");
    return static_cast<NodeId>(std::stoul(token));
}

/** Parse the "SRC-DST" link selector of drop/timeout/degrade. */
void
parseLink(const std::string &token, const std::string &spec,
          FaultSpec &out)
{
    const std::size_t dash = token.find('-');
    KHUZDUL_REQUIRE(dash != std::string::npos,
                    "fault spec '" << spec
                                   << "' needs a SRC-DST link selector");
    out.src = parseEndpoint(token.substr(0, dash), spec);
    out.dst = parseEndpoint(token.substr(dash + 1), spec);
    KHUZDUL_REQUIRE(out.src == kAnyNode || out.src != out.dst,
                    "fault spec '"
                        << spec << "': self-link " << out.src << "-"
                        << out.dst
                        << " can never fire (local accesses bypass "
                           "the fabric)");
}

double
parseNumber(const std::string &value, const std::string &spec)
{
    try {
        std::size_t used = 0;
        const double parsed = std::stod(value, &used);
        KHUZDUL_REQUIRE(used == value.size(), "trailing junk");
        return parsed;
    } catch (const std::exception &) {
        KHUZDUL_FATAL("bad numeric value '" << value << "' in fault"
                      " spec '" << spec << "'");
    }
}

/** Apply one key=value field; returns false on an unknown key. */
bool
applyField(const std::string &key, const std::string &value,
           const std::string &spec, FaultSpec &out)
{
    if (key == "msg") {
        out.firstMsg = static_cast<std::uint64_t>(
            parseNumber(value, spec));
        KHUZDUL_REQUIRE(out.firstMsg >= 1,
                        "fault spec '" << spec
                                       << "': msg ordinals are 1-based");
        return true;
    }
    if (key == "count") {
        out.count = static_cast<std::uint64_t>(
            parseNumber(value, spec));
        KHUZDUL_REQUIRE(out.count >= 1,
                        "fault spec '"
                            << spec
                            << "': count=0 would never fire; use "
                               "count>=1 or drop the spec");
        return true;
    }
    if (key == "level") {
        const double level = parseNumber(value, spec);
        KHUZDUL_REQUIRE(level >= 0, "fault spec '"
                                        << spec
                                        << "': level must be >= 0");
        out.level = static_cast<int>(level);
        return true;
    }
    if (key == "chunk") {
        out.chunk = static_cast<std::uint64_t>(
            parseNumber(value, spec));
        KHUZDUL_REQUIRE(out.chunk >= 1,
                        "fault spec '" << spec
                                       << "': chunk ordinals are "
                                          "1-based");
        return true;
    }
    if (key == "factor") {
        out.factor = parseNumber(value, spec);
        return true;
    }
    if (key == "from") {
        out.fromNs = parseNumber(value, spec);
        return true;
    }
    if (key == "until") {
        out.untilNs = parseNumber(value, spec);
        return true;
    }
    if (key == "node") {
        out.node = parseEndpoint(value, spec);
        return true;
    }
    return false;
}

bool
matchesLink(const FaultSpec &f, NodeId src, NodeId dst)
{
    return (f.src == kAnyNode || f.src == src)
        && (f.dst == kAnyNode || f.dst == dst);
}

bool
inWindow(const FaultSpec &f, double now_ns)
{
    return now_ns >= f.fromNs
        && (f.untilNs == kForeverNs || now_ns < f.untilNs);
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Drop:
        return "drop";
      case FaultKind::Timeout:
        return "timeout";
      case FaultKind::Degrade:
        return "degrade";
      case FaultKind::NodeDown:
        return "down";
      case FaultKind::Crash:
        return "crash";
    }
    KHUZDUL_PANIC("unreachable fault kind");
}

void
FaultPlan::add(const std::string &spec)
{
    const std::vector<std::string> parts = splitColons(spec);
    FaultSpec f;
    std::size_t next = 1;
    const std::string &kind = parts[0];
    if (kind == "drop" || kind == "timeout") {
        f.kind = kind == "drop" ? FaultKind::Drop : FaultKind::Timeout;
        KHUZDUL_REQUIRE(parts.size() >= 3,
                        "fault spec '" << spec << "' needs "
                        << kind << ":SRC-DST:msg=N[:count=K]");
        parseLink(parts[next++], spec, f);
    } else if (kind == "degrade") {
        f.kind = FaultKind::Degrade;
        KHUZDUL_REQUIRE(parts.size() >= 3,
                        "fault spec '" << spec << "' needs "
                        "degrade:SRC-DST:factor=F[:from=NS][:until=NS]");
        parseLink(parts[next++], spec, f);
    } else if (kind == "down") {
        f.kind = FaultKind::NodeDown;
        KHUZDUL_REQUIRE(parts.size() >= 2,
                        "fault spec '" << spec << "' needs "
                        "down:node=D[:from=NS][:until=NS]");
    } else if (kind == "crash") {
        f.kind = FaultKind::Crash;
        KHUZDUL_REQUIRE(parts.size() >= 3,
                        "fault spec '" << spec << "' needs "
                        "crash:UNIT:level=L[:chunk=K]");
        const std::string &unit = parts[next++];
        KHUZDUL_REQUIRE(!unit.empty()
                            && unit.find_first_not_of("0123456789")
                                == std::string::npos,
                        "bad crash unit '" << unit << "' in '" << spec
                                           << "' (unit index)");
        f.unit = static_cast<unsigned>(std::stoul(unit));
    } else {
        KHUZDUL_FATAL("unknown fault kind '" << kind << "' in '"
                      << spec
                      << "' (drop | timeout | degrade | down | crash)");
    }
    bool saw_msg = false;
    bool saw_level = false;
    for (; next < parts.size(); ++next) {
        const std::string &field = parts[next];
        const std::size_t eq = field.find('=');
        KHUZDUL_REQUIRE(eq != std::string::npos,
                        "fault spec '" << spec << "': field '" << field
                                       << "' is not key=value");
        const std::string key = field.substr(0, eq);
        KHUZDUL_REQUIRE(
            applyField(key, field.substr(eq + 1), spec, f),
            "fault spec '" << spec << "': unknown field '" << key
                           << "'");
        saw_msg = saw_msg || key == "msg";
        saw_level = saw_level || key == "level";
    }
    if (f.kind == FaultKind::Drop || f.kind == FaultKind::Timeout)
        KHUZDUL_REQUIRE(saw_msg, "fault spec '" << spec
                        << "' needs a msg=N trigger");
    if (f.kind == FaultKind::Degrade)
        KHUZDUL_REQUIRE(f.factor >= 1.0, "fault spec '" << spec
                        << "': factor must be >= 1");
    if (f.kind == FaultKind::NodeDown)
        KHUZDUL_REQUIRE(f.node != kAnyNode, "fault spec '" << spec
                        << "' needs node=D");
    if (f.kind == FaultKind::Crash)
        KHUZDUL_REQUIRE(saw_level, "fault spec '" << spec
                        << "' needs a level=L trigger");
    specs_.push_back(f);
}

void
FaultPlan::validate(NodeId num_nodes, unsigned num_units) const
{
    for (const FaultSpec &f : specs_) {
        const char *name = faultKindName(f.kind);
        if (f.kind == FaultKind::Crash) {
            KHUZDUL_REQUIRE(f.unit < num_units,
                            "fault plan: crash unit "
                                << f.unit << " out of range (run has "
                                << num_units << " execution units)");
            continue;
        }
        if (f.kind == FaultKind::NodeDown) {
            KHUZDUL_REQUIRE(f.node < num_nodes,
                            "fault plan: down node "
                                << f.node << " out of range (cluster "
                                "has " << num_nodes << " nodes)");
            continue;
        }
        KHUZDUL_REQUIRE(f.src == kAnyNode || f.src < num_nodes,
                        "fault plan: " << name << " src node "
                            << f.src << " out of range (cluster has "
                            << num_nodes << " nodes)");
        KHUZDUL_REQUIRE(f.dst == kAnyNode || f.dst < num_nodes,
                        "fault plan: " << name << " dst node "
                            << f.dst << " out of range (cluster has "
                            << num_nodes << " nodes)");
    }
}

bool
FaultPlan::hasCrash() const
{
    for (const FaultSpec &f : specs_)
        if (f.kind == FaultKind::Crash)
            return true;
    return false;
}

FaultSession::FaultSession(const FaultPlan &plan, NodeId num_nodes)
    : plan_(&plan), numNodes_(num_nodes)
{
    linkMsgs_.assign(
        static_cast<std::size_t>(num_nodes) * num_nodes, 0);
}

bool
FaultSession::nodeDownNow(NodeId node) const
{
    for (const FaultSpec &f : plan_->specs())
        if (f.kind == FaultKind::NodeDown && f.node == node
            && inWindow(f, clockNs_))
            return true;
    return false;
}

bool
FaultSession::nodePermanentlyDown(NodeId node) const
{
    for (const FaultSpec &f : plan_->specs())
        if (f.kind == FaultKind::NodeDown && f.node == node
            && f.untilNs == kForeverNs && clockNs_ >= f.fromNs)
            return true;
    return false;
}

FaultOutcome
FaultSession::onTransfer(NodeId src, NodeId dst, double base_ns,
                         double timeout_ns)
{
    const std::size_t link =
        static_cast<std::size_t>(src) * numNodes_ + dst;
    const std::uint64_t ordinal = ++linkMsgs_[link];

    FaultOutcome out;
    out.chargeNs = base_ns;
    // The destination being down dominates any per-message fault:
    // nothing answers, so the requester burns the timeout.
    if (nodeDownNow(dst)) {
        out.faulted = true;
        out.kind = FaultKind::NodeDown;
        out.chargeNs = timeout_ns;
    }
    for (const FaultSpec &f : plan_->specs()) {
        if (out.faulted)
            break;
        if (!matchesLink(f, src, dst))
            continue;
        if ((f.kind == FaultKind::Drop
             || f.kind == FaultKind::Timeout)
            && ordinal >= f.firstMsg
            && ordinal < f.firstMsg + f.count) {
            out.faulted = true;
            out.kind = f.kind;
            // A dropped batch still crossed the wire before it was
            // lost; a timeout burns the configured wait instead.
            out.chargeNs =
                f.kind == FaultKind::Drop ? base_ns : timeout_ns;
        } else if (f.kind == FaultKind::Degrade
                   && inWindow(f, clockNs_)) {
            out.degraded = true;
            out.kind = FaultKind::Degrade;
            out.chargeNs = base_ns * f.factor;
        }
    }
    clockNs_ += out.chargeNs;
    return out;
}

void
FaultSession::reset()
{
    linkMsgs_.assign(linkMsgs_.size(), 0);
    clockNs_ = 0;
}

} // namespace sim
} // namespace khuzdul
