/**
 * @file
 * Phase-event tracing for the layered runtime.  Every layer of the
 * engine (chunk explorer, edge-list provider, circulant scheduler)
 * reports its phase transitions — chunk open/close, fetch batch
 * issued/completed, extend start/end, cache hit/miss — through one
 * TraceSink hook.  Tracing only observes: enabling or disabling a
 * sink never changes counts, stats, or modeled time.
 *
 * Three sinks ship with the engine: the no-op NullTraceSink (the
 * default), a CountingTraceSink whose per-event tallies cross-check
 * the RunStats counters, and a JsonLinesTraceSink that streams one
 * JSON object per event for offline analysis (CLI `--trace`).
 */

#ifndef KHUZDUL_SIM_TRACE_HH
#define KHUZDUL_SIM_TRACE_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace khuzdul
{
namespace sim
{

/** Runtime phase transitions a TraceSink can observe. */
enum class PhaseEvent : std::uint8_t
{
    ChunkOpen,           ///< a filled chunk enters processing
    ChunkClose,          ///< the chunk's level is fully processed
    FetchBatchIssued,    ///< one per-owner batch handed to the fabric
    FetchBatchCompleted, ///< the batch's modeled transfer finished
    ExtendStart,         ///< extension sweep over a chunk begins
    ExtendEnd,           ///< extension sweep over a chunk ends
    CacheHit,            ///< edge list served by the data cache
    CacheMiss,           ///< cache probe missed; resolution continues
    KernelDispatch,      ///< set-kernel executions (per-chunk delta)
    FaultInjected,       ///< a transfer attempt hit an injected fault
    FetchRetry,          ///< failed batch re-attempted after backoff
    FetchRecovered,      ///< batch eventually served after >=1 fault
    ChunkReplayed,       ///< chunk re-enqueued after retry exhaustion
    StealIssued,         ///< idle unit requested a peer's pending chunk
    StealCompleted,      ///< stolen chunk's columns arrived at the thief
    Checkpoint,          ///< unit snapshotted state at a level barrier
    UnitCrashed,         ///< execution unit died (injected crash fault)
    ChunkAdopted,        ///< survivor adopted a dead unit's chunk
    QueryRetried,        ///< failed query re-admitted by the service
};

inline constexpr std::size_t kNumPhaseEvents = 19;

/** Stable lowercase name (used by the JSON sink and tests). */
const char *phaseEventName(PhaseEvent event);

/** One phase transition.  The payload fields are event-specific:
 *  bytes/lists for fetch batches, embedding counts for chunk and
 *  extend events, the vertex id for cache probes, and for
 *  KernelDispatch the total set-operation delta (value) over the
 *  chunk just closed, all kernel kinds combined (aux = 0).  Steal
 *  events report from the thief's unit: StealIssued carries the
 *  column bytes requested (value) and the victim unit (aux),
 *  StealCompleted the stolen embedding count (value) and the victim
 *  unit (aux).  The
 *  total is kernel-mode- and host-invariant — the sequence of set
 *  operations never depends on which kernel ran them — so trace
 *  tallies stay bit-identical across --kernel modes and SIMD-on/off
 *  builds; the per-kind split is host-only detail
 *  (NodeStats::kernelCalls). */
struct TraceRecord
{
    PhaseEvent event;
    unsigned unit = 0;        ///< reporting execution unit
    int level = 0;            ///< chunk level (tree depth)
    std::uint64_t value = 0;  ///< primary payload
    std::uint64_t aux = 0;    ///< secondary payload
};

/** Phase-event hook.  Implementations must not mutate engine
 *  state; they are observation only. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    virtual void emit(const TraceRecord &record) = 0;
};

/** Discards every event (the engine default). */
class NullTraceSink final : public TraceSink
{
  public:
    void emit(const TraceRecord &) override {}
};

/** Process-wide shared no-op sink. */
TraceSink &nullTraceSink();

/**
 * Tallies events per type.  The engine keeps one internally so
 * RunStats-level counters (chunks processed, cache hits/misses) can
 * be cross-checked against the event stream.
 */
class CountingTraceSink final : public TraceSink
{
  public:
    void
    emit(const TraceRecord &record) override
    {
        ++counts_[static_cast<std::size_t>(record.event)];
        values_[static_cast<std::size_t>(record.event)] += record.value;
    }

    std::uint64_t
    count(PhaseEvent event) const
    {
        return counts_[static_cast<std::size_t>(event)];
    }

    /** Sum of the primary payload over all events of @p event. */
    std::uint64_t
    valueSum(PhaseEvent event) const
    {
        return values_[static_cast<std::size_t>(event)];
    }

    std::uint64_t total() const;

    void reset();

  private:
    std::array<std::uint64_t, kNumPhaseEvents> counts_{};
    std::array<std::uint64_t, kNumPhaseEvents> values_{};
};

/**
 * Buffers events in arrival order for a deferred, ordered replay.
 * The engine gives every execution unit one of these so units can
 * trace from concurrent host threads without interleaving; after
 * the barrier the buffers are flushed into the real sink in unit
 * order, reproducing the sequential event stream byte for byte.
 */
class BufferingTraceSink final : public TraceSink
{
  public:
    void
    emit(const TraceRecord &record) override
    {
        records_.push_back(record);
    }

    /** Buffered events not yet flushed. */
    std::size_t size() const { return records_.size(); }

    bool empty() const { return records_.empty(); }

    void clear() { records_.clear(); }

    /** Replay every buffered event into @p sink, then clear. */
    void
    flushTo(TraceSink &sink)
    {
        for (const TraceRecord &record : records_)
            sink.emit(record);
        records_.clear();
    }

  private:
    std::vector<TraceRecord> records_;
};

/** Streams one JSON object per event (JSON-lines). */
class JsonLinesTraceSink final : public TraceSink
{
  public:
    /** @param out stream to append to (must outlive the sink). */
    explicit JsonLinesTraceSink(std::ostream &out) : out_(&out) {}

    void emit(const TraceRecord &record) override;

  private:
    std::ostream *out_;
};

/**
 * Fans one event stream out to a fixed primary sink plus an
 * optional, swappable secondary (how the engine chains its internal
 * counters with a user-installed sink).
 */
class TeeTraceSink final : public TraceSink
{
  public:
    explicit TeeTraceSink(TraceSink &primary) : primary_(&primary) {}

    /** Install/replace/remove (nullptr) the secondary sink. */
    void secondary(TraceSink *sink) { secondary_ = sink; }

    void
    emit(const TraceRecord &record) override
    {
        primary_->emit(record);
        if (secondary_)
            secondary_->emit(record);
    }

  private:
    TraceSink *primary_;
    TraceSink *secondary_ = nullptr;
};

} // namespace sim
} // namespace khuzdul

#endif // KHUZDUL_SIM_TRACE_HH
