#include "sim/stats.hh"

#include <algorithm>
#include <sstream>

#include "support/format.hh"

namespace khuzdul
{
namespace sim
{

double
RunStats::makespanNs() const
{
    double slowest = 0;
    for (const NodeStats &node : nodes)
        slowest = std::max(slowest, node.totalNs());
    return slowest + startupNs;
}

std::uint64_t
RunStats::totalBytesSent() const
{
    std::uint64_t total = 0;
    for (const NodeStats &node : nodes)
        total += node.bytesSent;
    return total;
}

std::uint64_t
RunStats::totalMessages() const
{
    std::uint64_t total = 0;
    for (const NodeStats &node : nodes)
        total += node.messagesSent;
    return total;
}

double
RunStats::totalComputeNs() const
{
    double total = 0;
    for (const NodeStats &node : nodes)
        total += node.computeNs;
    return total;
}

double
RunStats::totalCommExposedNs() const
{
    double total = 0;
    for (const NodeStats &node : nodes)
        total += node.commExposedNs;
    return total;
}

double
RunStats::totalCommTotalNs() const
{
    double total = 0;
    for (const NodeStats &node : nodes)
        total += node.commTotalNs;
    return total;
}

double
RunStats::totalSchedulerNs() const
{
    double total = 0;
    for (const NodeStats &node : nodes)
        total += node.schedulerNs;
    return total;
}

double
RunStats::totalCacheNs() const
{
    double total = 0;
    for (const NodeStats &node : nodes)
        total += node.cacheNs;
    return total;
}

std::uint64_t
RunStats::totalEmbeddings() const
{
    std::uint64_t total = 0;
    for (const NodeStats &node : nodes)
        total += node.embeddingsCreated;
    return total;
}

std::uint64_t
RunStats::totalFaultsInjected() const
{
    std::uint64_t total = 0;
    for (const NodeStats &node : nodes)
        total += node.faultsInjected;
    return total;
}

std::uint64_t
RunStats::totalFaultsRecovered() const
{
    std::uint64_t total = 0;
    for (const NodeStats &node : nodes)
        total += node.faultsRecovered;
    return total;
}

std::uint64_t
RunStats::totalChunksReplayed() const
{
    std::uint64_t total = 0;
    for (const NodeStats &node : nodes)
        total += node.chunksReplayed;
    return total;
}

double
RunStats::totalRecoveryNs() const
{
    double total = 0;
    for (const NodeStats &node : nodes)
        total += node.recoveryNs;
    return total;
}

std::uint64_t
RunStats::totalChunksStolen() const
{
    std::uint64_t total = 0;
    for (const NodeStats &node : nodes)
        total += node.chunksStolen;
    return total;
}

std::uint64_t
RunStats::totalStealBytes() const
{
    std::uint64_t total = 0;
    for (const NodeStats &node : nodes)
        total += node.stealBytesIn;
    return total;
}

double
RunStats::totalStealOverheadNs() const
{
    double total = 0;
    for (const NodeStats &node : nodes)
        total += node.stealOverheadNs;
    return total;
}

std::uint64_t
RunStats::totalCheckpoints() const
{
    std::uint64_t total = 0;
    for (const NodeStats &node : nodes)
        total += node.checkpointsTaken;
    return total;
}

std::uint64_t
RunStats::totalUnitCrashes() const
{
    std::uint64_t total = 0;
    for (const NodeStats &node : nodes)
        total += node.unitCrashes;
    return total;
}

std::uint64_t
RunStats::totalChunksAdopted() const
{
    std::uint64_t total = 0;
    for (const NodeStats &node : nodes)
        total += node.chunksAdopted;
    return total;
}

double
RunStats::totalCheckpointOverheadNs() const
{
    double total = 0;
    for (const NodeStats &node : nodes)
        total += node.checkpointOverheadNs;
    return total;
}

double
RunStats::totalAdoptionNs() const
{
    double total = 0;
    for (const NodeStats &node : nodes)
        total += node.adoptionNs;
    return total;
}

double
RunStats::staticCacheHitRate() const
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (const NodeStats &node : nodes) {
        hits += node.staticCacheHits;
        misses += node.staticCacheMisses;
    }
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits)
                          / static_cast<double>(total);
}

double
RunStats::networkUtilization(double bytes_per_ns) const
{
    const double makespan = makespanNs();
    if (makespan <= 0 || nodes.empty())
        return 0.0;
    // Each node has a full-duplex link; utilization is measured on
    // the send side like the paper's per-node NIC counters.
    double busiest = 0;
    for (const NodeStats &node : nodes) {
        const double util = static_cast<double>(node.bytesSent)
            / (bytes_per_ns * makespan);
        busiest = std::max(busiest, util);
    }
    return std::min(1.0, busiest);
}

void
RunStats::accumulate(const RunStats &other)
{
    if (nodes.size() < other.nodes.size())
        nodes.resize(other.nodes.size());
    for (std::size_t i = 0; i < other.nodes.size(); ++i) {
        NodeStats &dst = nodes[i];
        const NodeStats &src = other.nodes[i];
        dst.computeNs += src.computeNs;
        dst.commExposedNs += src.commExposedNs;
        dst.commTotalNs += src.commTotalNs;
        dst.schedulerNs += src.schedulerNs;
        dst.cacheNs += src.cacheNs;
        dst.bytesSent += src.bytesSent;
        dst.bytesReceived += src.bytesReceived;
        dst.messagesSent += src.messagesSent;
        dst.listsFetchedRemote += src.listsFetchedRemote;
        dst.listsServedLocal += src.listsServedLocal;
        dst.faultsInjected += src.faultsInjected;
        dst.faultsRetried += src.faultsRetried;
        dst.faultsRecovered += src.faultsRecovered;
        dst.chunksReplayed += src.chunksReplayed;
        dst.reroutedFetches += src.reroutedFetches;
        dst.reconstructedLists += src.reconstructedLists;
        dst.recoveryNs += src.recoveryNs;
        dst.chunksStolen += src.chunksStolen;
        dst.chunksDonated += src.chunksDonated;
        dst.stealBytesIn += src.stealBytesIn;
        dst.stealBytesOut += src.stealBytesOut;
        dst.stealOverheadNs += src.stealOverheadNs;
        dst.checkpointsTaken += src.checkpointsTaken;
        dst.unitCrashes += src.unitCrashes;
        dst.chunksAdopted += src.chunksAdopted;
        dst.chunksOrphaned += src.chunksOrphaned;
        dst.adoptionBytesIn += src.adoptionBytesIn;
        dst.adoptionBytesOut += src.adoptionBytesOut;
        dst.checkpointOverheadNs += src.checkpointOverheadNs;
        dst.adoptionNs += src.adoptionNs;
        dst.staticCacheHits += src.staticCacheHits;
        dst.staticCacheMisses += src.staticCacheMisses;
        dst.staticCacheInsertions += src.staticCacheInsertions;
        dst.horizontalHits += src.horizontalHits;
        dst.horizontalDrops += src.horizontalDrops;
        dst.verticalReuses += src.verticalReuses;
        dst.embeddingsCreated += src.embeddingsCreated;
        dst.intersectionItems += src.intersectionItems;
        dst.chunksProcessed += src.chunksProcessed;
        dst.peakChunkBytes = std::max(dst.peakChunkBytes,
                                      src.peakChunkBytes);
        for (std::size_t k = 0; k < dst.kernelCalls.size(); ++k)
            dst.kernelCalls[k] += src.kernelCalls[k];
    }
    startupNs += other.startupNs;
    queryRetries += other.queryRetries;
    hostThreads = std::max(hostThreads, other.hostThreads);
    hostWallNs += other.hostWallNs;
    sharedCacheProbes += other.sharedCacheProbes;
    sharedCacheHits += other.sharedCacheHits;
}

std::string
RunStats::toJson(bool include_host) const
{
    // Index order follows core::KernelKind.
    static const char *const kKernelNames[] = {
        "merge", "blocked", "gallop",
        "bitmap", "simd_merge", "simd_gallop"};
    std::array<std::uint64_t, 6> kernel_totals{};
    for (const NodeStats &node : nodes)
        for (std::size_t k = 0; k < kernel_totals.size(); ++k)
            kernel_totals[k] += node.kernelCalls[k];

    std::ostringstream os;
    os.precision(15);
    os << "{\n"
       << "  \"makespan_ns\": " << makespanNs() << ",\n"
       << "  \"startup_ns\": " << startupNs << ",\n"
       << "  \"compute_ns\": " << totalComputeNs() << ",\n"
       << "  \"comm_exposed_ns\": " << totalCommExposedNs() << ",\n"
       << "  \"comm_total_ns\": " << totalCommTotalNs() << ",\n"
       << "  \"scheduler_ns\": " << totalSchedulerNs() << ",\n"
       << "  \"cache_ns\": " << totalCacheNs() << ",\n"
       << "  \"bytes_sent\": " << totalBytesSent() << ",\n"
       << "  \"messages\": " << totalMessages() << ",\n"
       << "  \"embeddings\": " << totalEmbeddings() << ",\n"
       << "  \"static_cache_hit_rate\": " << staticCacheHitRate()
       << ",\n";
    if (include_host) {
        // Which kernel executed each set operation depends on the
        // host (SIMD availability, CPU features), so the per-kind
        // split lives with the host-only facts: the modeled dump
        // stays bit-identical across --kernel modes and builds.
        os << "  \"kernel_calls\": {";
        for (std::size_t k = 0; k < kernel_totals.size(); ++k)
            os << (k == 0 ? "" : ", ") << "\"" << kKernelNames[k]
               << "\": " << kernel_totals[k];
        os << "},\n";
    }
    std::uint64_t faults_retried = 0;
    std::uint64_t faults_rerouted = 0;
    std::uint64_t faults_reconstructed = 0;
    for (const NodeStats &node : nodes) {
        faults_retried += node.faultsRetried;
        faults_rerouted += node.reroutedFetches;
        faults_reconstructed += node.reconstructedLists;
    }
    os << "  \"faults\": {\"injected\": " << totalFaultsInjected()
       << ", \"retried\": " << faults_retried
       << ", \"recovered\": " << totalFaultsRecovered()
       << ", \"chunks_replayed\": " << totalChunksReplayed()
       << ", \"rerouted\": " << faults_rerouted
       << ", \"reconstructed\": " << faults_reconstructed
       << ", \"recovery_ns\": " << totalRecoveryNs() << "},\n";
    std::uint64_t chunks_donated = 0;
    for (const NodeStats &node : nodes)
        chunks_donated += node.chunksDonated;
    os << "  \"steals\": {\"stolen\": " << totalChunksStolen()
       << ", \"donated\": " << chunks_donated
       << ", \"bytes\": " << totalStealBytes()
       << ", \"overhead_ns\": " << totalStealOverheadNs() << "},\n";
    std::uint64_t chunks_orphaned = 0;
    std::uint64_t adoption_bytes = 0;
    for (const NodeStats &node : nodes) {
        chunks_orphaned += node.chunksOrphaned;
        adoption_bytes += node.adoptionBytesIn;
    }
    os << "  \"recovery\": {\"checkpoints\": " << totalCheckpoints()
       << ", \"crashes\": " << totalUnitCrashes()
       << ", \"adopted\": " << totalChunksAdopted()
       << ", \"orphaned\": " << chunks_orphaned
       << ", \"adoption_bytes\": " << adoption_bytes
       << ", \"checkpoint_ns\": " << totalCheckpointOverheadNs()
       << ", \"adoption_ns\": " << totalAdoptionNs()
       << ", \"query_retries\": " << queryRetries << "},\n";
    if (include_host && hostThreads > 0) {
        os << "  \"host\": {\"threads\": " << hostThreads
           << ", \"wall_ns\": " << hostWallNs;
        if (sharedCacheProbes > 0)
            os << ", \"shared_cache_probes\": " << sharedCacheProbes
               << ", \"shared_cache_hits\": " << sharedCacheHits;
        os << "},\n";
    }
    os << "  \"nodes\": [";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const NodeStats &n = nodes[i];
        os << (i == 0 ? "\n" : ",\n")
           << "    {\"compute_ns\": " << n.computeNs
           << ", \"comm_exposed_ns\": " << n.commExposedNs
           << ", \"comm_total_ns\": " << n.commTotalNs
           << ", \"scheduler_ns\": " << n.schedulerNs
           << ", \"cache_ns\": " << n.cacheNs
           << ", \"bytes_sent\": " << n.bytesSent
           << ", \"bytes_received\": " << n.bytesReceived
           << ", \"messages_sent\": " << n.messagesSent
           << ", \"lists_fetched_remote\": " << n.listsFetchedRemote
           << ", \"lists_served_local\": " << n.listsServedLocal
           << ", \"static_cache_hits\": " << n.staticCacheHits
           << ", \"static_cache_misses\": " << n.staticCacheMisses
           << ", \"static_cache_insertions\": "
           << n.staticCacheInsertions
           << ", \"horizontal_hits\": " << n.horizontalHits
           << ", \"horizontal_drops\": " << n.horizontalDrops
           << ", \"vertical_reuses\": " << n.verticalReuses
           << ", \"embeddings_created\": " << n.embeddingsCreated
           << ", \"intersection_items\": " << n.intersectionItems
           << ", \"chunks_processed\": " << n.chunksProcessed
           << ", \"peak_chunk_bytes\": " << n.peakChunkBytes
           << ", \"faults_injected\": " << n.faultsInjected
           << ", \"faults_retried\": " << n.faultsRetried
           << ", \"faults_recovered\": " << n.faultsRecovered
           << ", \"chunks_replayed\": " << n.chunksReplayed
           << ", \"rerouted\": " << n.reroutedFetches
           << ", \"reconstructed\": " << n.reconstructedLists
           << ", \"recovery_ns\": " << n.recoveryNs
           << ", \"chunks_stolen\": " << n.chunksStolen
           << ", \"chunks_donated\": " << n.chunksDonated
           << ", \"steal_bytes_in\": " << n.stealBytesIn
           << ", \"steal_bytes_out\": " << n.stealBytesOut
           << ", \"steal_overhead_ns\": " << n.stealOverheadNs
           << ", \"checkpoints\": " << n.checkpointsTaken
           << ", \"unit_crashes\": " << n.unitCrashes
           << ", \"chunks_adopted\": " << n.chunksAdopted
           << ", \"chunks_orphaned\": " << n.chunksOrphaned
           << ", \"adoption_bytes_in\": " << n.adoptionBytesIn
           << ", \"adoption_bytes_out\": " << n.adoptionBytesOut
           << ", \"checkpoint_ns\": " << n.checkpointOverheadNs
           << ", \"adoption_ns\": " << n.adoptionNs;
        if (include_host) {
            os << ", \"kernel_calls\": [";
            for (std::size_t k = 0; k < n.kernelCalls.size(); ++k)
                os << (k == 0 ? "" : ", ") << n.kernelCalls[k];
            os << "]";
        }
        os << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

std::string
RunStats::summary() const
{
    std::ostringstream os;
    os << "makespan " << formatTime(static_cast<std::uint64_t>(makespanNs()))
       << ", traffic " << formatBytes(totalBytesSent())
       << " in " << formatCount(totalMessages()) << " messages\n";
    os << "compute " << formatTime(static_cast<std::uint64_t>(
            totalComputeNs()))
       << ", exposed comm " << formatTime(static_cast<std::uint64_t>(
            totalCommExposedNs()))
       << ", scheduler " << formatTime(static_cast<std::uint64_t>(
            totalSchedulerNs()))
       << ", cache " << formatTime(static_cast<std::uint64_t>(
            totalCacheNs())) << "\n";
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (const NodeStats &node : nodes) {
        hits += node.staticCacheHits;
        misses += node.staticCacheMisses;
    }
    if (hits + misses > 0)
        os << "static cache hit rate "
           << formatPercent(staticCacheHitRate()) << "\n";
    if (totalChunksStolen() > 0)
        os << "steals " << formatCount(totalChunksStolen())
           << " chunks, " << formatBytes(totalStealBytes())
           << " moved, overhead "
           << formatTime(static_cast<std::uint64_t>(
                totalStealOverheadNs())) << "\n";
    if (totalUnitCrashes() > 0)
        os << "crashes " << formatCount(totalUnitCrashes())
           << " units, " << formatCount(totalChunksAdopted())
           << " chunks adopted, overhead "
           << formatTime(static_cast<std::uint64_t>(
                totalAdoptionNs())) << "\n";
    return os.str();
}

} // namespace sim
} // namespace khuzdul
