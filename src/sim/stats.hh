/**
 * @file
 * Execution statistics for simulated runs: per-node modeled time
 * split into the categories of the paper's Figure 15 (compute,
 * network, scheduler, cache), a per-link traffic matrix, and cache
 * counters.  Every bench table/figure is printed from these.
 */

#ifndef KHUZDUL_SIM_STATS_HH
#define KHUZDUL_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "support/types.hh"

namespace khuzdul
{
namespace sim
{

/** Counters and modeled time for one simulated node. */
struct NodeStats
{
    /** @name Modeled time (ns) */
    /// @{
    double computeNs = 0;       ///< embedding extension work
    double commExposedNs = 0;   ///< communication on the critical path
    double commTotalNs = 0;     ///< all communication (incl. hidden)
    double schedulerNs = 0;     ///< chunk/mini-batch/task scheduling
    double cacheNs = 0;         ///< software-cache maintenance
    /// @}

    /** @name Communication volume */
    /// @{
    std::uint64_t bytesSent = 0;
    std::uint64_t bytesReceived = 0;
    std::uint64_t messagesSent = 0;
    std::uint64_t listsFetchedRemote = 0;
    std::uint64_t listsServedLocal = 0;
    /// @}

    /** @name Data-reuse counters */
    /// @{
    std::uint64_t staticCacheHits = 0;
    std::uint64_t staticCacheMisses = 0;
    std::uint64_t staticCacheInsertions = 0;
    std::uint64_t horizontalHits = 0;
    std::uint64_t horizontalDrops = 0;
    std::uint64_t verticalReuses = 0;
    /// @}

    /** @name Fault-injection and recovery (DESIGN.md §9)
     *
     * recoveryNs is an attribution overlay: the modeled time spent
     * on failed attempts, backoffs, degraded surcharges, reroute and
     * reconstruction work.  It is already included in the comm/cache
     * categories above, so it never contributes to totalNs() again.
     */
    /// @{
    std::uint64_t faultsInjected = 0;   ///< attempts that faulted
    std::uint64_t faultsRetried = 0;    ///< re-attempts after backoff
    std::uint64_t faultsRecovered = 0;  ///< batches served after >=1 fault
    std::uint64_t chunksReplayed = 0;   ///< chunks re-enqueued whole
    std::uint64_t reroutedFetches = 0;  ///< lists routed to a replica owner
    std::uint64_t reconstructedLists = 0; ///< lists rebuilt from local CSR
    double recoveryNs = 0;              ///< modeled recovery overhead
    /// @}

    /** @name Work stealing (DESIGN.md §11)
     *
     * stealOverheadNs is an attribution overlay like recoveryNs: the
     * modeled handshake and column-transfer time a steal cost this
     * unit.  It is already folded into the scheduler/comm categories
     * above, so it never contributes to totalNs() again.
     */
    /// @{
    std::uint64_t chunksStolen = 0;  ///< peer chunks executed here
    std::uint64_t chunksDonated = 0; ///< chunks handed to an idle peer
    std::uint64_t stealBytesIn = 0;  ///< embedding-column bytes received
    std::uint64_t stealBytesOut = 0; ///< embedding-column bytes shipped
    double stealOverheadNs = 0;      ///< modeled steal overhead
    /// @}

    /** @name Crash recovery (DESIGN.md §9)
     *
     * checkpointOverheadNs and adoptionNs are attribution overlays
     * like recoveryNs/stealOverheadNs: the modeled snapshot and
     * adoption time is already folded into the scheduler/comm
     * categories above, so it never contributes to totalNs() again.
     */
    /// @{
    std::uint64_t checkpointsTaken = 0; ///< level-barrier snapshots
    std::uint64_t unitCrashes = 0;      ///< injected crashes on this node
    std::uint64_t chunksAdopted = 0;    ///< dead peers' chunks run here
    std::uint64_t chunksOrphaned = 0;   ///< own chunks lost to a crash
    std::uint64_t adoptionBytesIn = 0;  ///< column bytes received
    std::uint64_t adoptionBytesOut = 0; ///< column bytes shipped
    double checkpointOverheadNs = 0;    ///< modeled snapshot time
    double adoptionNs = 0;              ///< modeled adoption overhead
    /// @}

    /** @name Work counters */
    /// @{
    std::uint64_t embeddingsCreated = 0;
    std::uint64_t intersectionItems = 0;
    std::uint64_t chunksProcessed = 0;
    std::uint64_t peakChunkBytes = 0;

    /**
     * Set-operation executions per kernel, indexed by
     * core::KernelKind (merge, blocked, gallop, bitmap, simd_merge,
     * simd_gallop).  A plain array keeps sim/ below core/ in the
     * layering (engine.cc static_asserts the size against
     * core::kNumKernelKinds); charges are canonical, so these
     * tallies never affect modeled time.  Which kernel ran is
     * host-dependent (SIMD availability), so the split is emitted
     * only in the host section of the JSON dump — the modeled dump
     * (toJson(false)) stays bit-identical across modes and builds.
     */
    std::array<std::uint64_t, 6> kernelCalls{};
    /// @}

    /** Total modeled wall time of this node. */
    double
    totalNs() const
    {
        return computeNs + commExposedNs + schedulerNs + cacheNs;
    }
};

/** Whole-run statistics: one NodeStats per node plus globals. */
struct RunStats
{
    std::vector<NodeStats> nodes;

    /** Modeled startup charged once (engine/plan installation). */
    double startupNs = 0;

    /** Whole-query retries the service charged to this run's
     *  session (modeled backoff lands in startupNs). */
    std::uint64_t queryRetries = 0;

    /** @name Host-side execution observability (not modeled)
     *
     * How the simulation itself ran on the host: worker threads
     * used by the parallel unit runtime and accumulated wall-clock
     * of run() calls.  Never part of the modeled machine — the
     * determinism invariant is that everything *else* in this
     * struct is bit-identical for every thread count.
     */
    /// @{
    /** Host worker threads of the latest run (0 = never ran). */
    unsigned hostThreads = 0;

    /** Accumulated host wall-clock across run() calls (ns). */
    double hostWallNs = 0;

    /**
     * Cross-query shared-cache counters (core/service): probes of
     * the GraphContext's residency directory and how many found a
     * list already fetched by *some* query.  Contents of that
     * directory depend on co-runners and admission order, so these
     * live in the host block — the modeled cache counters above are
     * the per-query deterministic ledger.
     */
    std::uint64_t sharedCacheProbes = 0;
    std::uint64_t sharedCacheHits = 0;
    /// @}

    /** Makespan: slowest node plus startup. */
    double makespanNs() const;

    /** Sum of a NodeStats field across nodes. */
    std::uint64_t totalBytesSent() const;
    std::uint64_t totalMessages() const;
    double totalComputeNs() const;
    double totalCommExposedNs() const;
    double totalCommTotalNs() const;
    double totalSchedulerNs() const;
    double totalCacheNs() const;
    std::uint64_t totalEmbeddings() const;
    std::uint64_t totalFaultsInjected() const;
    std::uint64_t totalFaultsRecovered() const;
    std::uint64_t totalChunksReplayed() const;
    double totalRecoveryNs() const;
    std::uint64_t totalChunksStolen() const;
    std::uint64_t totalStealBytes() const;
    double totalStealOverheadNs() const;
    std::uint64_t totalCheckpoints() const;
    std::uint64_t totalUnitCrashes() const;
    std::uint64_t totalChunksAdopted() const;
    double totalCheckpointOverheadNs() const;
    double totalAdoptionNs() const;

    /** Static-cache hit rate over all nodes (0 when unused). */
    double staticCacheHitRate() const;

    /**
     * Mean per-link utilization: bytes moved vs. what the bisection
     * could move within the makespan (paper Fig 19).
     */
    double networkUtilization(double bytes_per_ns) const;

    /** Merge two runs (e.g. per-pattern runs of a motif census). */
    void accumulate(const RunStats &other);

    /** Multi-line human-readable dump (for examples/debugging). */
    std::string summary() const;

    /**
     * Machine-readable dump: one JSON object with the run-level
     * breakdown (compute/comm/scheduler/cache, traffic, cache hit
     * rate) plus a per-node array — what `khuzdul --stats-json`
     * writes so bench trajectories need no stdout parsing.
     *
     * @param include_host also emit the "host" object (threads,
     *        wall-clock) when the stats come from a real run.  Pass
     *        false to get the purely modeled dump, which must be
     *        byte-identical for every host thread count.
     */
    std::string toJson(bool include_host = true) const;
};

} // namespace sim
} // namespace khuzdul

#endif // KHUZDUL_SIM_STATS_HH
