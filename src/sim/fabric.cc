#include "sim/fabric.hh"

#include "support/check.hh"

namespace khuzdul
{
namespace sim
{

Fabric::Fabric(const Partition &partition, const CostModel &cost)
    : partition_(&partition), cost_(&cost)
{
    const std::size_t links = static_cast<std::size_t>(
        partition.numNodes()) * partition.numNodes();
    bytes_.assign(links, 0);
    messages_.assign(links, 0);
}

double
Fabric::recordTransfer(NodeId src, NodeId dst, std::uint64_t bytes,
                       std::uint64_t lists)
{
    bytes_[linkIndex(src, dst)] += bytes;
    messages_[linkIndex(src, dst)] += 1;
    if (src == dst)
        return cost_->numaTransferNs(bytes, lists);
    crossNodeBytes_ += bytes;
    if (byteCap_ != 0 && crossNodeBytes_ > byteCap_)
        throw ByteCapExceededFault(
            "fabric byte cap exceeded: "
            + std::to_string(crossNodeBytes_) + " > "
            + std::to_string(byteCap_));
    return cost_->transferNs(bytes, lists);
}

double
Fabric::modeledTransferNs(NodeId src, NodeId dst, std::uint64_t bytes,
                          std::uint64_t lists) const
{
    return src == dst ? cost_->numaTransferNs(bytes, lists)
                      : cost_->transferNs(bytes, lists);
}

void
Fabric::apply(FabricDelta &delta)
{
    KHUZDUL_CHECK(delta.base_ == this,
                  "delta journalled against a different fabric");
    for (const FabricDelta::Entry &e : delta.entries_)
        recordTransfer(e.src, e.dst, e.bytes, e.lists);
    delta.clear();
}

void
Fabric::absorb(const Fabric &other)
{
    KHUZDUL_CHECK(bytes_.size() == other.bytes_.size(),
                  "absorbing a ledger of a different cluster size");
    for (std::size_t i = 0; i < bytes_.size(); ++i) {
        bytes_[i] += other.bytes_[i];
        messages_[i] += other.messages_[i];
    }
    crossNodeBytes_ += other.crossNodeBytes_;
}

std::uint64_t
Fabric::linkBytes(NodeId src, NodeId dst) const
{
    return bytes_[linkIndex(src, dst)];
}

std::uint64_t
Fabric::linkMessages(NodeId src, NodeId dst) const
{
    return messages_[linkIndex(src, dst)];
}

std::uint64_t
Fabric::totalBytes() const
{
    return crossNodeBytes_;
}

void
Fabric::reset()
{
    bytes_.assign(bytes_.size(), 0);
    messages_.assign(messages_.size(), 0);
    crossNodeBytes_ = 0;
}

} // namespace sim
} // namespace khuzdul
