/**
 * @file
 * The simulated interconnect.  In the paper, remote edge lists move
 * over MPI/InfiniBand; here the graph is immutable and shared, so a
 * "fetch" is a zero-copy read of the owner's partition plus an
 * accounting entry: the fabric tracks every (src, dst, bytes,
 * lists) transfer and converts batches to modeled transfer times
 * via the CostModel.  This keeps engine logic identical to a real
 * deployment while making runs deterministic on one host core.
 */

#ifndef KHUZDUL_SIM_FABRIC_HH
#define KHUZDUL_SIM_FABRIC_HH

#include <cstdint>
#include <span>
#include <vector>

#include "graph/partition.hh"
#include "sim/cost_model.hh"
#include "sim/faults.hh"
#include "support/types.hh"

namespace khuzdul
{
namespace sim
{

class FabricDelta;

/**
 * Anything that can account for one batched fetch and price it.
 * Two implementations ship: the Fabric itself (direct ledger
 * update, the sequential path) and FabricDelta (a private per-unit
 * journal merged into the Fabric after a parallel run's barrier).
 * The modeled duration is a pure function of the endpoints and
 * payload — never of ledger state — so both return bit-identical
 * times for the same transfer.
 */
class TransferRecorder
{
  public:
    virtual ~TransferRecorder() = default;

    /** Account a batched fetch of @p lists edge lists totalling
     *  @p bytes from node @p dst to node @p src; return its modeled
     *  duration. */
    virtual double recordTransfer(NodeId src, NodeId dst,
                                  std::uint64_t bytes,
                                  std::uint64_t lists) = 0;
};

/** Per-link transfer ledger plus timing oracle. */
class Fabric : public TransferRecorder
{
  public:
    Fabric(const Partition &partition, const CostModel &cost);

    const Partition &partition() const { return *partition_; }
    const CostModel &cost() const { return *cost_; }

    /** Zero-copy read of N(v) (the owner's resident copy). */
    std::span<const VertexId>
    edgeList(VertexId v) const
    {
        return partition_->graph().neighbors(v);
    }

    /** Payload bytes of N(v) on the wire. */
    std::uint64_t
    edgeListBytes(VertexId v) const
    {
        return partition_->graph().edgeListBytes(v);
    }

    /**
     * Record one batched fetch of @p lists edge lists totalling
     * @p bytes from node @p dst to node @p src and return its
     * modeled duration.  Same-node transfers (cross-socket) use the
     * NUMA model.
     */
    double recordTransfer(NodeId src, NodeId dst, std::uint64_t bytes,
                          std::uint64_t lists) override;

    /**
     * Pure timing oracle: the modeled duration recordTransfer()
     * would return for this transfer, without touching the ledger.
     * Depends only on the endpoints, the payload and the cost model,
     * which is what makes per-unit delta journals exact.
     */
    double modeledTransferNs(NodeId src, NodeId dst,
                             std::uint64_t bytes,
                             std::uint64_t lists) const;

    /**
     * Replay a per-unit journal into the ledger and clear it.
     * Entries apply in their recorded order, so merging every
     * unit's delta in unit order reproduces the sequential ledger
     * byte for byte — including where the byte-cap fault fires.
     */
    void apply(FabricDelta &delta);

    /**
     * Fold another ledger's totals into this one (per-link byte and
     * message sums plus the cross-node total).  Pure uint64
     * addition, so absorbing N per-query ledgers yields the same
     * cumulative state in any order — which is what lets a
     * GraphContext accumulate traffic across concurrently admitted
     * queries without an ordering contract.  The byte cap is NOT
     * consulted: caps are a per-query property of the source
     * ledgers.  Both fabrics must span the same number of nodes.
     */
    void absorb(const Fabric &other);

    /** Bytes moved from @p dst to @p src so far. */
    std::uint64_t linkBytes(NodeId src, NodeId dst) const;

    /** Messages (batches) from @p dst to @p src so far. */
    std::uint64_t linkMessages(NodeId src, NodeId dst) const;

    /** Total bytes over all links (excluding same-node traffic). */
    std::uint64_t totalBytes() const;

    /**
     * Failure injection for tests: throw ByteCapExceededFault once
     * more than @p cap bytes have crossed the network (0 disables).
     */
    void setByteCap(std::uint64_t cap) { byteCap_ = cap; }

    /** Reset the ledger (e.g. between patterns of a census). */
    void reset();

  private:
    std::size_t
    linkIndex(NodeId src, NodeId dst) const
    {
        return static_cast<std::size_t>(src) * partition_->numNodes()
            + dst;
    }

    const Partition *partition_;
    const CostModel *cost_;
    std::vector<std::uint64_t> bytes_;
    std::vector<std::uint64_t> messages_;
    std::uint64_t byteCap_ = 0;
    std::uint64_t crossNodeBytes_ = 0;
};

/**
 * A private transfer journal for one execution unit: records the
 * same (src, dst, bytes, lists) entries a Fabric would, and prices
 * them through the base fabric's pure timing oracle, but defers
 * every ledger mutation until Fabric::apply() replays the journal.
 * This is what lets units run on concurrent host threads without
 * sharing a single mutable ledger, while keeping the merged state
 * bit-identical to a sequential run.
 */
class FabricDelta final : public TransferRecorder
{
  public:
    explicit FabricDelta(const Fabric &base) : base_(&base) {}

    double
    recordTransfer(NodeId src, NodeId dst, std::uint64_t bytes,
                   std::uint64_t lists) override
    {
        entries_.push_back({src, dst, bytes, lists});
        return base_->modeledTransferNs(src, dst, bytes, lists);
    }

    /** Journalled transfers not yet merged. */
    std::size_t size() const { return entries_.size(); }

    bool empty() const { return entries_.empty(); }

    void clear() { entries_.clear(); }

  private:
    friend class Fabric;

    struct Entry
    {
        NodeId src;
        NodeId dst;
        std::uint64_t bytes;
        std::uint64_t lists;
    };

    const Fabric *base_;
    std::vector<Entry> entries_;
};

} // namespace sim
} // namespace khuzdul

#endif // KHUZDUL_SIM_FABRIC_HH
