#include "sim/trace.hh"

#include <ostream>

#include "support/check.hh"

namespace khuzdul
{
namespace sim
{

const char *
phaseEventName(PhaseEvent event)
{
    switch (event) {
      case PhaseEvent::ChunkOpen:
        return "chunk_open";
      case PhaseEvent::ChunkClose:
        return "chunk_close";
      case PhaseEvent::FetchBatchIssued:
        return "fetch_batch_issued";
      case PhaseEvent::FetchBatchCompleted:
        return "fetch_batch_completed";
      case PhaseEvent::ExtendStart:
        return "extend_start";
      case PhaseEvent::ExtendEnd:
        return "extend_end";
      case PhaseEvent::CacheHit:
        return "cache_hit";
      case PhaseEvent::CacheMiss:
        return "cache_miss";
      case PhaseEvent::KernelDispatch:
        return "kernel_dispatch";
      case PhaseEvent::FaultInjected:
        return "fault_injected";
      case PhaseEvent::FetchRetry:
        return "retry";
      case PhaseEvent::FetchRecovered:
        return "recovered";
      case PhaseEvent::ChunkReplayed:
        return "chunk_replayed";
      case PhaseEvent::StealIssued:
        return "steal_issued";
      case PhaseEvent::StealCompleted:
        return "steal_completed";
      case PhaseEvent::Checkpoint:
        return "checkpoint";
      case PhaseEvent::UnitCrashed:
        return "unit_crashed";
      case PhaseEvent::ChunkAdopted:
        return "chunk_adopted";
      case PhaseEvent::QueryRetried:
        return "query_retried";
    }
    KHUZDUL_PANIC("unreachable phase event");
}

TraceSink &
nullTraceSink()
{
    static NullTraceSink sink;
    return sink;
}

std::uint64_t
CountingTraceSink::total() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts_)
        total += c;
    return total;
}

void
CountingTraceSink::reset()
{
    counts_.fill(0);
    values_.fill(0);
}

void
JsonLinesTraceSink::emit(const TraceRecord &record)
{
    *out_ << "{\"event\":\"" << phaseEventName(record.event)
          << "\",\"unit\":" << record.unit
          << ",\"level\":" << record.level
          << ",\"value\":" << record.value
          << ",\"aux\":" << record.aux << "}\n";
}

} // namespace sim
} // namespace khuzdul
