/**
 * @file
 * Calibrated cost model for the simulated cluster.  The paper runs
 * on real hardware (8x dual-socket Xeon E5-2630 v3, 56 Gbps
 * InfiniBand); this reproduction executes the same algorithms on one
 * host core and *models* time from measured operation counts.  The
 * constants below approximate a 2.4 GHz 2015 Xeon core on
 * intersection-bound code and the paper's fabric; every engine
 * charges work through this one model so relative comparisons are
 * apples-to-apples.
 */

#ifndef KHUZDUL_SIM_COST_MODEL_HH
#define KHUZDUL_SIM_COST_MODEL_HH

#include <cstdint>

#include "support/types.hh"

namespace khuzdul
{
namespace sim
{

/** All tunable time constants (nanoseconds unless noted). */
struct CostModel
{
    /** @name Computation */
    /// @{
    /** Per element consumed by a sorted-list intersection. */
    double intersectPerItemNs = 1.2;
    /** Per candidate vertex examined (restriction/label checks). */
    double candidateCheckNs = 1.0;
    /** Per extendable embedding created (arena append). */
    double embeddingCreateNs = 4.0;
    /** Per UDF/count invocation at the terminal level. */
    double terminalNs = 0.8;
    /** Per horizontal-hash-table probe (simplified table, §5.2). */
    double hashProbeNs = 2.5;
    /** Per static-cache lookup (no bookkeeping, §5.3). */
    double staticCacheProbeNs = 2.0;
    /** Per lookup/update of a *replacement* cache (Fig 16): list
     *  maintenance, refcounts and allocator pressure. */
    double replacementCacheProbeNs = 130.0;
    /** General-purpose allocation per cached list (replacement
     *  policies cannot use a fixed-size pool, §7.6). */
    double replacementAllocNs = 550.0;
    /// @}

    /** @name Scheduling */
    /// @{
    /** Mini-batch dispatch cost (lock-free queue pop, §6). */
    double miniBatchDispatchNs = 150.0;
    /** Per chunk: shuffle + pipeline setup (§4.3). */
    double chunkSetupNs = 4000.0;
    /** Per-pattern engine startup (chunk arenas, plan install);
     *  the FSM experiment (§7.2) shows this matters. */
    double engineStartupNs = 3.0e4;
    /// @}

    /** @name Network */
    /// @{
    /** One-way message latency. */
    double netLatencyNs = 1800.0;
    /** Link bandwidth in bytes per nanosecond (56 Gbps = 7 GB/s). */
    double netBytesPerNs = 7.0;
    /** Responder-side gather/copy into the send buffer per byte
     *  (poor locality for many small lists, §7.8). */
    double netCopyPerByteNs = 0.35;
    /** Fixed responder cost per requested edge list. */
    double netPerListNs = 60.0;
    /** Extra latency for cross-socket (NUMA) accesses. */
    double numaRemoteLatencyNs = 150.0;
    /** Cross-socket bandwidth (bytes/ns); QPI-ish. */
    double numaBytesPerNs = 12.0;
    /// @}

    /** @name Fault recovery (DESIGN.md §9) */
    /// @{
    /** Charge for a transfer attempt that never got an answer
     *  (timeout and node-down outcomes). */
    double timeoutNs = 1.0e6;
    /** Base retry backoff; attempt k waits 2^(k-1) times this. */
    double retryBackoffNs = 1.0e5;
    /// @}

    /** @name Crash recovery (DESIGN.md §9) */
    /// @{
    /** Per-unit snapshot charge at each level-0 barrier when
     *  checkpointing is armed: serializing the partial counts and
     *  the pending-chunk ledger into node-local stable storage. */
    double checkpointNs = 8000.0;
    /** Fixed handshake per adopted chunk: the survivor claims the
     *  orphan from the dead unit's last checkpoint, on top of the
     *  fabric transfer of the embedding columns. */
    double adoptionHandshakeNs = 4000.0;
    /** Base whole-query retry backoff charged by the service;
     *  attempt k waits 2^(k-1) times this. */
    double queryRetryBackoffNs = 2.0e5;
    /// @}

    /** @name Work stealing (DESIGN.md §11) */
    /// @{
    /** Fixed handshake per stolen chunk: steal request, grant and
     *  donation-ledger bookkeeping on both ends.  Charged to thief
     *  and victim alike, on top of the fabric transfer of the
     *  embedding columns. */
    double stealHandshakeNs = 2500.0;
    /// @}

    /** @name G-thinker specific overheads (§2.3, Fig 15) */
    /// @{
    /** Cache map update per requested vertex (task<->data map). */
    double gthinkerMapUpdateNs = 640.0;
    /** Scheduler readiness scan per task per round. */
    double gthinkerSchedulerScanNs = 360.0;
    /** Garbage-collection check per cached list per round. */
    double gthinkerGcCheckNs = 120.0;
    /// @}

    /** Transfer time of one batched request of @p bytes. */
    double
    transferNs(std::uint64_t bytes, std::uint64_t lists) const
    {
        return netLatencyNs
            + static_cast<double>(bytes) / netBytesPerNs
            + static_cast<double>(bytes) * netCopyPerByteNs
            + static_cast<double>(lists) * netPerListNs;
    }

    /** Cross-socket transfer time (NUMA sub-partition fetch). */
    double
    numaTransferNs(std::uint64_t bytes, std::uint64_t lists) const
    {
        return numaRemoteLatencyNs
            + static_cast<double>(bytes) / numaBytesPerNs
            + static_cast<double>(lists) * 2.0;
    }
};

} // namespace sim
} // namespace khuzdul

#endif // KHUZDUL_SIM_COST_MODEL_HH
