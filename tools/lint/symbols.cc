#include "tools/lint/symbols.hh"

#include <algorithm>
#include <cctype>
#include <regex>

namespace khuzdul
{
namespace lint
{

// ---------------------------------------------------------------
// Text and path utilities.
// ---------------------------------------------------------------

std::string
normalizePath(std::string path)
{
    std::replace(path.begin(), path.end(), '\\', '/');
    while (path.rfind("./", 0) == 0)
        path.erase(0, 2);
    return path;
}

bool
pathHasDir(const std::string &path, const std::string &dir)
{
    const std::string needle = dir + "/";
    std::size_t pos = path.find(needle);
    while (pos != std::string::npos) {
        if (pos == 0 || path[pos - 1] == '/')
            return true;
        pos = path.find(needle, pos + 1);
    }
    return false;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size()
        && s.compare(s.size() - suffix.size(), suffix.size(), suffix)
        == 0;
}

bool
isHeaderPath(const std::string &path)
{
    return endsWith(path, ".hh") || endsWith(path, ".hpp")
        || endsWith(path, ".h");
}

bool
isSourcePath(const std::string &path)
{
    return isHeaderPath(path) || endsWith(path, ".cc")
        || endsWith(path, ".cpp") || endsWith(path, ".cxx");
}

bool
isModeledZone(const std::string &path)
{
    return pathHasDir(path, "src/core") || pathHasDir(path, "src/sim")
        || pathHasDir(path, "src/engines");
}

bool
isParallelRuntime(const std::string &path)
{
    return pathHasDir(path, "src/core/parallel");
}

bool
isServiceRuntime(const std::string &path)
{
    return pathHasDir(path, "src/core/service");
}

bool
isFabricImpl(const std::string &path)
{
    return pathHasDir(path, "src/sim")
        && (endsWith(path, "/fabric.cc") || endsWith(path, "/fabric.hh")
            || path == "fabric.cc" || path == "fabric.hh");
}

bool
isRecoveryPath(const std::string &path)
{
    const auto isFile = [&](const std::string &dir,
                            const std::string &stem) {
        return pathHasDir(path, dir)
            && (endsWith(path, "/" + stem + ".cc")
                || endsWith(path, "/" + stem + ".hh"));
    };
    return isFile("src/sim", "faults") || isFile("src/core", "provider")
        || isFile("src/core", "circulant")
        || pathHasDir(path, "src/core/steal")
        || pathHasDir(path, "src/core/recovery");
}

bool
isKernelTier(const std::string &path)
{
    return pathHasDir(path, "src/core/kernels");
}

std::string
sanitizeLine(const std::string &raw, bool &in_block_comment)
{
    std::string out(raw.size(), ' ');
    std::size_t i = 0;
    while (i < raw.size()) {
        if (in_block_comment) {
            if (raw[i] == '*' && i + 1 < raw.size()
                && raw[i + 1] == '/') {
                in_block_comment = false;
                i += 2;
                continue;
            }
            ++i;
            continue;
        }
        const char c = raw[i];
        if (c == '/' && i + 1 < raw.size()) {
            if (raw[i + 1] == '/')
                break; // rest of line is a comment
            if (raw[i + 1] == '*') {
                in_block_comment = true;
                i += 2;
                continue;
            }
        }
        if (c == '"' || c == '\'') {
            // Raw strings: skip R"( ... )" without custom delimiters.
            if (c == '"' && i > 0 && raw[i - 1] == 'R') {
                const std::size_t close = raw.find(")\"", i + 1);
                out[i] = '"';
                if (close == std::string::npos) {
                    i = raw.size();
                } else {
                    out[close + 1] = '"';
                    i = close + 2;
                }
                continue;
            }
            const char quote = c;
            out[i] = quote;
            ++i;
            while (i < raw.size()) {
                if (raw[i] == '\\') {
                    i += 2;
                    continue;
                }
                if (raw[i] == quote) {
                    out[i] = quote;
                    ++i;
                    break;
                }
                ++i;
            }
            continue;
        }
        out[i] = c;
        ++i;
    }
    while (!out.empty() && out.back() == ' ')
        out.pop_back();
    return out;
}

bool
isBlank(const std::string &s)
{
    return std::all_of(s.begin(), s.end(), [](unsigned char c) {
        return std::isspace(c) != 0;
    });
}

std::string
trimCopy(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

// ---------------------------------------------------------------
// Fact patterns (shared with the analyzer's token rules).
// ---------------------------------------------------------------

const std::vector<std::pair<std::string, std::string>> &
factPatterns()
{
    static const std::vector<std::pair<std::string, std::string>> table
        = {
            {"wall-clock",
             R"(\b(steady_clock|system_clock|high_resolution_clock|clock_gettime|gettimeofday|timespec_get)\b)"},
            {"prng",
             R"(\b(random_device|mt19937(_64)?|default_random_engine|minstd_rand0?|ranlux(24|48)(_base)?|knuth_b|srand|drand48|lrand48|mrand48)\b|\brand\s*\(|#\s*include\s*<random>)"},
            {"unordered-iter",
             R"(\bunordered_(map|set|multimap|multiset)\b)"},
            {"thread-primitive",
             R"(\bstd\s*::\s*(thread|jthread|this_thread|atomic\w*|mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|shared_mutex|shared_timed_mutex|condition_variable(_any)?|lock_guard|unique_lock|shared_lock|scoped_lock|future|shared_future|promise|async|counting_semaphore|binary_semaphore|barrier|latch|stop_token|call_once|once_flag)\b|\bthread\s*::\s*id\b|#\s*include\s*<(thread|atomic|mutex|shared_mutex|condition_variable|future|semaphore|barrier|latch|stop_token)>)"},
            {"fabric-mutation",
             R"(\b(recordTransfer|setByteCap)\s*\(|\bfabric_?\s*(\.|->)\s*reset\s*\()"},
            {"fault-modeled-state",
             R"(\b(hostWallNs|elapsedNs|elapsedSeconds|Timer)\b|\btimer\.hh\b)"},
        };
    return table;
}

// ---------------------------------------------------------------
// Extraction state machine.
// ---------------------------------------------------------------

namespace
{

struct Scope
{
    enum Kind
    {
        Namespace,
        Class,
        Function,
        InitList,
        Other,
    };
    Kind kind = Other;
    std::string name;
    int fn = -1; ///< index into program.functions for Function scopes
};

/** Declaration text accumulated since the last `;`, `{` or `}`,
 *  with a parallel per-character source-line array so regex match
 *  positions map back to lines. */
struct Pending
{
    std::string text;
    std::vector<int> lines;

    void
    add(char c, int line)
    {
        text.push_back(c);
        lines.push_back(line);
    }

    void
    clear()
    {
        text.clear();
        lines.clear();
    }
};

/** Remove `template <...>` parameter lists (angle-balanced, paren
 *  aware) so template headers never confuse classification. */
Pending
stripTemplates(const Pending &in)
{
    Pending out;
    std::size_t i = 0;
    while (i < in.text.size()) {
        if (in.text.compare(i, 8, "template") == 0
            && (i == 0
                || !(std::isalnum(static_cast<unsigned char>(
                         in.text[i - 1]))
                     || in.text[i - 1] == '_'))
            && (i + 8 == in.text.size()
                || !(std::isalnum(static_cast<unsigned char>(
                         in.text[i + 8]))
                     || in.text[i + 8] == '_'))) {
            std::size_t j = i + 8;
            while (j < in.text.size()
                   && std::isspace(
                       static_cast<unsigned char>(in.text[j])))
                ++j;
            if (j < in.text.size() && in.text[j] == '<') {
                int angle = 0;
                int paren = 0;
                while (j < in.text.size()) {
                    const char c = in.text[j];
                    if (c == '(')
                        ++paren;
                    else if (c == ')')
                        --paren;
                    else if (paren == 0 && c == '<')
                        ++angle;
                    else if (paren == 0 && c == '>' && --angle == 0) {
                        ++j;
                        break;
                    }
                    ++j;
                }
                i = j;
                continue;
            }
        }
        out.add(in.text[i], in.lines[i]);
        ++i;
    }
    return out;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0
        || c == '_';
}

/** Words that can never be a function name's last component. */
bool
isReservedWord(const std::string &w)
{
    static const std::set<std::string> words = {
        "if",       "for",      "while",    "switch",   "return",
        "sizeof",   "alignof",  "alignas",  "decltype", "catch",
        "new",      "delete",   "throw",    "void",     "int",
        "bool",     "char",     "short",    "long",     "float",
        "double",   "unsigned", "signed",   "auto",     "const",
        "constexpr", "static",  "inline",   "explicit", "virtual",
        "typename", "noexcept", "defined",  "assert",   "case",
        "do",       "else",     "goto",     "not",      "and",
        "or",       "static_assert", "co_await", "co_return",
        "co_yield", "operator",
    };
    return words.count(w) != 0;
}

std::string
lastComponent(const std::string &qualified)
{
    const std::size_t pos = qualified.rfind("::");
    return pos == std::string::npos ? qualified
                                    : qualified.substr(pos + 2);
}

std::string
stripSpaces(const std::string &s)
{
    std::string out;
    for (const char c : s)
        if (!std::isspace(static_cast<unsigned char>(c)))
            out.push_back(c);
    return out;
}

/** What a `{` at declaration scope opens. */
struct Classified
{
    Scope::Kind kind = Scope::Other;
    std::string name; ///< namespace/class/function name
    int nameLine = 0;
};

const std::regex &
nameRegex()
{
    static const std::regex re(
        R"((?:~?[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*)");
    return re;
}

/** `operator` with its symbol (e.g. `X::operator==`, `operator()`). */
const std::regex &
operatorRegex()
{
    static const std::regex re(
        R"((?:[A-Za-z_]\w*\s*::\s*)*operator\s*(\(\s*\)|\[\s*\]|[^\s(]+))");
    return re;
}

bool
hasTopLevelEquals(const std::string &text)
{
    int paren = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '(' || c == '[')
            ++paren;
        else if (c == ')' || c == ']')
            --paren;
        else if (c == '=' && paren == 0) {
            // Not ==, !=, <=, >=, +=, ... and not operator=.
            const char prev = i > 0 ? text[i - 1] : ' ';
            const char next = i + 1 < text.size() ? text[i + 1] : ' ';
            if (prev == '=' || next == '=' || prev == '!' || prev == '<'
                || prev == '>' || prev == '+' || prev == '-'
                || prev == '*' || prev == '/' || prev == '%'
                || prev == '&' || prev == '|' || prev == '^')
                continue;
            // operator= definitions: `=` directly after `operator`.
            if (i >= 8 && text.compare(i - 8, 8, "operator") == 0)
                continue;
            return true;
        }
    }
    return false;
}

Classified
classifyPending(const Pending &raw)
{
    Classified result;
    const Pending p = stripTemplates(raw);
    const std::string &text = p.text;
    if (isBlank(text))
        return result;

    // namespace?
    {
        static const std::regex ns(
            R"(^\s*(inline\s+)?namespace\b([\s\w:]*)$)");
        std::smatch m;
        if (std::regex_match(text, m, ns)) {
            result.kind = Scope::Namespace;
            result.name = trimCopy(m[2].str());
            return result;
        }
    }

    // enum bodies hold no functions.
    {
        static const std::regex en(R"(\benum\b)");
        if (std::regex_search(text, en))
            return result;
    }

    // Initializer (array/aggregate/lambda at declaration scope).
    if (hasTopLevelEquals(text))
        return result;

    // class/struct/union definition: identifier after the last
    // class keyword, not followed by `(` (which would make the
    // keyword part of a function signature's parameter).
    {
        static const std::regex cls(
            R"(\b(class|struct|union)\s+(\[\[[^\]]*\]\]\s*)?([A-Za-z_]\w*(\s*::\s*[A-Za-z_]\w*)*))");
        std::sregex_iterator it(text.begin(), text.end(), cls), end;
        std::smatch last;
        for (; it != end; ++it)
            last = *it;
        if (!last.empty()) {
            const std::size_t after
                = static_cast<std::size_t>(last.position(0))
                + last.length(0);
            if (text.find('(', after) == std::string::npos) {
                result.kind = Scope::Class;
                result.name = stripSpaces(last[3].str());
                result.nameLine
                    = p.lines[static_cast<std::size_t>(last.position(3))];
                return result;
            }
        }
    }

    // Function definition: the first `name(` whose name is not a
    // reserved word, or an operator.
    std::string name;
    std::size_t namePos = std::string::npos;
    {
        static const std::regex op(R"(\boperator\b)");
        if (std::regex_search(text, op)) {
            std::smatch m;
            if (std::regex_search(text, m, operatorRegex())) {
                name = stripSpaces(m[0].str());
                namePos = static_cast<std::size_t>(m.position(0));
            }
        }
    }
    if (name.empty()) {
        std::sregex_iterator it(text.begin(), text.end(), nameRegex()),
            end;
        for (; it != end; ++it) {
            const std::size_t pos
                = static_cast<std::size_t>(it->position(0));
            std::size_t after = pos + it->length(0);
            while (after < text.size()
                   && std::isspace(
                       static_cast<unsigned char>(text[after])))
                ++after;
            if (after >= text.size() || text[after] != '(')
                continue;
            const std::string candidate = stripSpaces(it->str());
            if (isReservedWord(lastComponent(candidate)))
                continue;
            name = candidate;
            namePos = pos;
            break;
        }
    }
    if (name.empty())
        return result;

    // Distinguish a function body `{` from a brace-initialized
    // member in a constructor initializer list: a body brace is
    // preceded by `)` or a trailing qualifier.
    std::string tail = trimCopy(text);
    bool body = false;
    if (!tail.empty()) {
        if (tail.back() == ')') {
            body = true;
        } else {
            std::size_t e = tail.size();
            while (e > 0 && isIdentChar(tail[e - 1]))
                --e;
            const std::string lastWord = tail.substr(e);
            static const std::set<std::string> qualifiers
                = {"const",    "noexcept", "override",
                   "final",    "try",      "mutable"};
            if (qualifiers.count(lastWord) != 0)
                body = true;
        }
    }
    if (!body) {
        // Only a constructor initializer list can put a brace here.
        const std::size_t lastClose = text.rfind(')');
        if (lastClose != std::string::npos
            && text.find(':', lastClose) != std::string::npos) {
            result.kind = Scope::InitList;
            return result;
        }
        body = true; // be permissive: treat as a body
    }

    result.kind = Scope::Function;
    result.name = name;
    result.nameLine = p.lines[namePos];
    return result;
}

/** Call-shaped tokens: possibly qualified identifier + `(`. */
const std::regex &
callRegex()
{
    static const std::regex re(
        R"(((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*\()");
    return re;
}

struct CompiledFact
{
    std::string fact;
    std::regex pattern;
};

const std::vector<CompiledFact> &
compiledFacts()
{
    static const std::vector<CompiledFact> table = [] {
        std::vector<CompiledFact> out;
        for (const auto &[fact, source] : factPatterns())
            out.push_back({fact, std::regex(source)});
        return out;
    }();
    return table;
}

bool
isDirectiveLine(const std::string &code)
{
    const std::string t = trimCopy(code);
    return !t.empty() && t[0] == '#';
}

} // namespace

void
extractFile(Program &program, SourceFile file,
            const std::vector<std::string> &rawLines)
{
    // Includes come from raw lines: sanitization blanks the quoted
    // path.
    static const std::regex inc(R"rx(^\s*#\s*include\s*"([^"]+)")rx");
    for (std::size_t i = 0; i < rawLines.size(); ++i) {
        std::smatch m;
        if (std::regex_search(rawLines[i], m, inc))
            file.includes.push_back(
                {normalizePath(m[1].str()), static_cast<int>(i + 1)});
    }

    const std::vector<std::string> &code = file.codeLines;
    std::vector<Scope> stack;
    Pending pending;
    std::vector<int> lineOwner(code.size(), -1);
    const int fnBase = static_cast<int>(program.functions.size());
    int activeFn = -1;
    int fnDepth = 0; ///< nested brace depth inside the active body

    const auto currentQualifier = [&]() {
        std::string q;
        for (const Scope &s : stack) {
            if ((s.kind != Scope::Namespace && s.kind != Scope::Class)
                || s.name.empty())
                continue;
            if (!q.empty())
                q += "::";
            q += s.name;
        }
        return q;
    };
    const auto inAnonNamespace = [&]() {
        for (const Scope &s : stack)
            if (s.kind == Scope::Namespace && s.name.empty())
                return true;
        return false;
    };

    bool prevContinues = false;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const int lineNo = static_cast<int>(i + 1);
        const bool directive
            = prevContinues || isDirectiveLine(code[i]);
        prevContinues = !rawLines.empty() && i < rawLines.size()
            && !rawLines[i].empty() && rawLines[i].back() == '\\'
            && (directive || prevContinues);
        if (directive)
            continue;

        if (activeFn >= 0)
            lineOwner[i] = activeFn;

        for (std::size_t c = 0; c < code[i].size(); ++c) {
            const char ch = code[i][c];
            if (activeFn >= 0) {
                // Inside a function body: only track nesting.
                if (ch == '{') {
                    ++fnDepth;
                } else if (ch == '}') {
                    if (--fnDepth == 0) {
                        program.functions[static_cast<std::size_t>(
                                              activeFn)]
                            .bodyEnd = lineNo;
                        stack.pop_back();
                        activeFn = -1;
                        pending.clear();
                    }
                }
                continue;
            }
            if (ch == ';') {
                pending.clear();
                continue;
            }
            if (ch == '{') {
                const Classified what = classifyPending(pending);
                Scope scope;
                scope.kind = what.kind;
                scope.name = what.name;
                if (what.kind == Scope::InitList) {
                    // Keep accumulating the constructor signature.
                    stack.push_back(scope);
                    continue;
                }
                if (what.kind == Scope::Function) {
                    FunctionDef fn;
                    const std::string qual = currentQualifier();
                    fn.qualified = qual.empty()
                        ? what.name
                        : qual + "::" + what.name;
                    fn.file = file.path;
                    fn.line = what.nameLine;
                    fn.bodyBegin = lineNo;
                    fn.bodyEnd = lineNo;
                    fn.inClass = !stack.empty()
                        && stack.back().kind == Scope::Class;
                    fn.anonNamespace = inAnonNamespace();
                    activeFn = static_cast<int>(
                        program.functions.size());
                    fnDepth = 1;
                    scope.fn = activeFn;
                    program.functions.push_back(std::move(fn));
                    lineOwner[i] = activeFn;
                } else if (what.kind == Scope::Class) {
                    const std::string qual = currentQualifier();
                    const std::string full = qual.empty()
                        ? what.name
                        : qual + "::" + what.name;
                    program.classQualified.insert(full);
                    program.classNames.insert(
                        lastComponent(what.name));
                }
                stack.push_back(scope);
                pending.clear();
                continue;
            }
            if (ch == '}') {
                if (!stack.empty()) {
                    const bool initList
                        = stack.back().kind == Scope::InitList;
                    stack.pop_back();
                    if (initList)
                        continue; // signature continues after `}`
                }
                pending.clear();
                continue;
            }
            pending.add(ch, lineNo);
        }
        // A newline separates tokens just like a space does; without
        // this, `void\nRunStats::accumulate(...)` would glue the
        // return type onto the qualified name.
        if (activeFn < 0)
            pending.add(' ', lineNo);
    }

    // Close any function left open by unbalanced input.
    if (activeFn >= 0)
        program.functions[static_cast<std::size_t>(activeFn)].bodyEnd
            = static_cast<int>(code.size());

    // Harvest call and fact sites from owned lines.
    for (std::size_t i = 0; i < code.size(); ++i) {
        const int owner = lineOwner[i];
        if (owner < fnBase)
            continue;
        FunctionDef &fn
            = program.functions[static_cast<std::size_t>(owner)];
        const std::string &line = code[i];
        const int lineNo = static_cast<int>(i + 1);
        std::sregex_iterator it(line.begin(), line.end(), callRegex()),
            end;
        for (; it != end; ++it) {
            const std::string token = stripSpaces(it->str(1));
            if (isReservedWord(lastComponent(token)))
                continue;
            std::size_t before
                = static_cast<std::size_t>(it->position(1));
            bool member = false;
            bool skip = false;
            if (before > 0) {
                std::size_t b = before;
                while (b > 0
                       && std::isspace(
                           static_cast<unsigned char>(line[b - 1])))
                    --b;
                if (b > 0) {
                    const char prev = line[b - 1];
                    if (prev == '.') {
                        member = true;
                    } else if (prev == '>' && b > 1
                               && line[b - 2] == '-') {
                        member = true;
                    } else if (prev == '~') {
                        skip = true; // destructor call
                    }
                }
            }
            if (!skip)
                fn.calls.push_back({token, lineNo, member});
        }
        for (const CompiledFact &f : compiledFacts())
            if (std::regex_search(line, f.pattern))
                fn.facts.push_back({f.fact, lineNo});
    }

    program.files.push_back(std::move(file));
}

void
finalizeProgram(Program &program)
{
    std::sort(program.files.begin(), program.files.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.path < b.path;
              });
    std::sort(program.functions.begin(), program.functions.end(),
              [](const FunctionDef &a, const FunctionDef &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.qualified < b.qualified;
              });
    for (FunctionDef &fn : program.functions) {
        if (fn.inClass) {
            fn.method = true;
            continue;
        }
        const std::size_t pos = fn.qualified.rfind("::");
        if (pos == std::string::npos)
            continue;
        const std::string parent = fn.qualified.substr(0, pos);
        fn.method = program.classQualified.count(parent) != 0
            || program.classNames.count(lastComponent(parent)) != 0;
    }
}

} // namespace lint
} // namespace khuzdul
