/**
 * @file
 * khuzdul_lint CLI.  `khuzdul_lint --strict --layering --allowlist
 * tools/lint_allowlist.txt src` is the invocation ctest and CI run;
 * see DESIGN.md §8 for the contract the rules enforce.
 *
 * Exit status (documented in --help, asserted in lint_test):
 *   0  clean (and, under --strict, no stale suppressions)
 *   1  contract violations, or stale suppressions under --strict
 *   2  usage or I/O error, or an unknown --why symbol
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/analyzer.hh"

int
main(int argc, char **argv)
{
    bool strict = false;
    bool json = false;
    bool facts = false;
    std::string why_symbol;
    khuzdul::lint::Options options;
    std::string allowlist_file;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--strict") {
            strict = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--layering") {
            options.layering = true;
        } else if (arg == "--no-taint") {
            options.taint = false;
        } else if (arg == "--facts") {
            facts = true;
        } else if (arg == "--why") {
            if (i + 1 >= argc) {
                std::cerr << "khuzdul_lint: --why needs a symbol\n";
                return 2;
            }
            why_symbol = argv[++i];
        } else if (arg == "--rules") {
            std::cout << khuzdul::lint::rulesText();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << khuzdul::lint::usageText();
            return 0;
        } else if (arg == "--allowlist") {
            if (i + 1 >= argc) {
                std::cerr << "khuzdul_lint: --allowlist needs a file\n";
                return 2;
            }
            allowlist_file = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "khuzdul_lint: unknown option " << arg << "\n";
            std::cerr << khuzdul::lint::usageText();
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        std::cerr << khuzdul::lint::usageText();
        return 2;
    }
    // --facts and --why are taint queries; the pass must run.
    if (facts || !why_symbol.empty())
        options.taint = true;

    std::vector<khuzdul::lint::AllowlistEntry> allowlist;
    std::vector<std::string> allowlist_errors;
    if (!allowlist_file.empty()) {
        std::ifstream in(allowlist_file, std::ios::binary);
        if (!in) {
            std::cerr << "khuzdul_lint: cannot read allowlist "
                      << allowlist_file << "\n";
            return 2;
        }
        std::ostringstream content;
        content << in.rdbuf();
        allowlist = khuzdul::lint::parseAllowlist(
            content.str(), allowlist_file, allowlist_errors);
    }

    khuzdul::lint::Analysis analysis = khuzdul::lint::analyzeProgram(
        paths, std::move(allowlist), allowlist_file, options);
    khuzdul::lint::Report &report = analysis.report;
    report.errors.insert(report.errors.begin(),
                         allowlist_errors.begin(),
                         allowlist_errors.end());

    if (facts) {
        std::cout << khuzdul::lint::factsJson(
            analysis.program, analysis.graph, analysis.taint);
        return report.errors.empty() ? 0 : 2;
    }
    if (!why_symbol.empty()) {
        bool found = false;
        const std::string text = khuzdul::lint::whyText(
            analysis.program, analysis.taint, why_symbol, found);
        if (!found) {
            std::cerr << "khuzdul_lint: no function matches symbol `"
                      << why_symbol << "`\n";
            return 2;
        }
        std::cout << text;
        return 0;
    }

    if (json)
        std::cout << khuzdul::lint::toJson(report, strict);
    else
        std::cout << khuzdul::lint::toText(report, strict);

    return report.passes(strict) ? 0 : 1;
}
