/**
 * @file
 * khuzdul_lint CLI.  `khuzdul_lint --strict --allowlist
 * tools/lint_allowlist.txt src` is the invocation ctest and CI run;
 * see DESIGN.md §8 for the contract the rules enforce.
 *
 * Exit status: 0 clean, 1 contract violations (or, under --strict,
 * stale suppressions), 2 usage or I/O error.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/analyzer.hh"

namespace
{

void
printUsage(std::ostream &out)
{
    out << "usage: khuzdul_lint [options] <path>...\n"
           "\n"
           "Static determinism-contract analyzer for the khuzdul\n"
           "modeled zones (DESIGN.md section 8).\n"
           "\n"
           "options:\n"
           "  --allowlist <file>  load whole-file suppressions\n"
           "  --strict            fail on stale suppressions too\n"
           "  --json              machine-readable report on stdout\n"
           "  --rules             print the rules table and exit\n"
           "  --help              this text\n";
}

void
printRules()
{
    std::cout << "rule                     scope     contract\n";
    std::cout << "----                     -----     --------\n";
    for (const khuzdul::lint::RuleInfo &r : khuzdul::lint::rules()) {
        const char *scope = "src";
        if (r.scope == khuzdul::lint::RuleScope::ModeledZones)
            scope = "modeled";
        else if (r.scope == khuzdul::lint::RuleScope::HeadersOnly)
            scope = "headers";
        else if (r.scope == khuzdul::lint::RuleScope::RecoveryPaths)
            scope = "recovery";
        std::printf("%-24s %-9s %s\n", r.id.c_str(), scope,
                    r.summary.c_str());
    }
    std::cout << "\nsuppress one line:  // khuzdul-lint: allow(<rule>) "
                 "<reason>\n";
    std::cout << "suppress one file:  `<path> <rule> <reason>` in the "
                 "allowlist\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool strict = false;
    bool json = false;
    std::string allowlist_file;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--strict") {
            strict = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--rules") {
            printRules();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            return 0;
        } else if (arg == "--allowlist") {
            if (i + 1 >= argc) {
                std::cerr << "khuzdul_lint: --allowlist needs a file\n";
                return 2;
            }
            allowlist_file = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "khuzdul_lint: unknown option " << arg << "\n";
            printUsage(std::cerr);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        printUsage(std::cerr);
        return 2;
    }

    std::vector<khuzdul::lint::AllowlistEntry> allowlist;
    std::vector<std::string> allowlist_errors;
    if (!allowlist_file.empty()) {
        std::ifstream in(allowlist_file, std::ios::binary);
        if (!in) {
            std::cerr << "khuzdul_lint: cannot read allowlist "
                      << allowlist_file << "\n";
            return 2;
        }
        std::ostringstream content;
        content << in.rdbuf();
        allowlist = khuzdul::lint::parseAllowlist(
            content.str(), allowlist_file, allowlist_errors);
    }

    khuzdul::lint::Report report = khuzdul::lint::analyzePaths(
        paths, std::move(allowlist), allowlist_file);
    report.errors.insert(report.errors.begin(),
                         allowlist_errors.begin(),
                         allowlist_errors.end());

    if (json)
        std::cout << khuzdul::lint::toJson(report, strict);
    else
        std::cout << khuzdul::lint::toText(report, strict);

    return report.passes(strict) ? 0 : 1;
}
